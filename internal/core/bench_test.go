package core

import (
	"fmt"
	"testing"

	"fabricsharp/internal/intern"
	"fabricsharp/internal/kvstore"
	"fabricsharp/internal/seqno"
)

// benchArrivals drives the manager with a contended synthetic stream,
// forming a block every blockSize arrivals.
func benchArrivals(b *testing.B, opts Options, keySpace, blockSize int) {
	m := NewManager(opts)
	height := uint64(0)
	keys := make([]string, keySpace)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := keys[(i*7)%keySpace]
		w := keys[(i*3)%keySpace]
		if _, err := m.OnArrival(TxID(fmt.Sprintf("t%d", i)), height, []string{r}, []string{w}); err != nil {
			b.Fatal(err)
		}
		if m.PendingCount() >= blockSize {
			ids, block, err := m.OnBlockFormation()
			if err != nil {
				b.Fatal(err)
			}
			if len(ids) > 0 {
				height = block
			}
		}
	}
}

func BenchmarkManagerArrivalLowContention(b *testing.B) {
	benchArrivals(b, Options{}, 10000, 100)
}

func BenchmarkManagerArrivalHighContention(b *testing.B) {
	benchArrivals(b, Options{}, 20, 100)
}

func BenchmarkManagerLargeBlocks(b *testing.B) {
	benchArrivals(b, Options{}, 200, 500)
}

func BenchmarkMemIndexPutAfter(b *testing.B) {
	keys := intern.NewTable()
	idx := NewMemIndex()
	ks := make([]intern.Key, 64)
	for i := range ks {
		ks[i] = keys.Intern(fmt.Sprintf("k%d", i))
	}
	var buf []TxID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := ks[i%64]
		seq := seqno.Commit(uint64(i/100+1), uint32(i%100+1))
		if err := idx.Put(key, seq, TxID(fmt.Sprintf("t%d", i))); err != nil {
			b.Fatal(err)
		}
		var err error
		if buf, err = idx.After(buf[:0], key, seqno.Snapshot(uint64(i/100))); err != nil {
			b.Fatal(err)
		}
		if i%1000 == 999 {
			if err := idx.PruneBefore(uint64(i/100) - 5); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkKVIndexPutAfter(b *testing.B) {
	db, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	keys := intern.NewTable()
	idx := NewKVIndex(db, keys)
	ks := make([]intern.Key, 64)
	for i := range ks {
		ks[i] = keys.Intern(fmt.Sprintf("k%d", i))
	}
	var buf []TxID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := ks[i%64]
		seq := seqno.Commit(uint64(i/100+1), uint32(i%100+1))
		if err := idx.Put(key, seq, TxID(fmt.Sprintf("t%d", i))); err != nil {
			b.Fatal(err)
		}
		var err error
		if buf, err = idx.After(buf[:0], key, seqno.Snapshot(uint64(i/100))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCycleCheck(b *testing.B) {
	// A realistic-size neighborhood test: the cost the orderer pays per
	// arrival on a contended key.
	g := newGraph(1<<14, 4)
	var nodes []*txNode
	for i := 0; i < 50; i++ {
		n := g.newNode(TxID(fmt.Sprintf("n%d", i)), seqno.Snapshot(0), nil, nil)
		g.nodes[n.id] = n
		if i > 0 {
			g.insert(n, map[*txNode]struct{}{nodes[i-1]: {}}, nil, 1)
		}
		nodes = append(nodes, n)
	}
	pred := map[*txNode]struct{}{nodes[45]: {}}
	succ := map[*txNode]struct{}{nodes[5]: {}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !hasCycle(pred, succ) {
			b.Fatal("expected cycle")
		}
	}
}
