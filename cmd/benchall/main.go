// Command benchall regenerates the paper's evaluation: every table and
// figure of Section 5, printed as ASCII tables, plus the repository's own
// ordering-phase hot-path benchmark.
//
// Usage:
//
//	benchall [-quick] [-seed N] [-fig id] [-json path] [-label s]
//	         [-cpuprofile path] [-memprofile path]
//
// where id is one of: 1, t1, 10, 11, 12, 13, 14, 15, reorder, ablation,
// ordering, all. With -fig ordering, -json appends a labelled record to the
// benchmark trajectory file (BENCH_PR2.json at the repo root is the
// committed history — the ongoing append-only trajectory; the PR-2 name
// just records which PR introduced the file).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"fabricsharp/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "short measurement windows (5s virtual instead of 20s)")
	seed := flag.Int64("seed", 42, "random seed for every run")
	fig := flag.String("fig", "all", "which exhibit: 1, t1, 10, 11, 12, 13, 14, 15, reorder, ablation, ordering, workload, all")
	workloadName := flag.String("workload", "", "scenario for -fig workload (empty = every registered scenario)")
	jsonPath := flag.String("json", "", "append the ordering results to this trajectory file (with -fig ordering)")
	label := flag.String("label", "", "record label for -json (e.g. pr2)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the runs to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile after the runs to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	opts := bench.Options{Quick: *quick, Seed: *seed}
	start := time.Now()
	var tables []*bench.Table
	switch *fig {
	case "1":
		tables = []*bench.Table{bench.Figure1(opts)}
	case "t1":
		tables = []*bench.Table{bench.Table1()}
	case "10":
		tables = bench.Figure10(opts)
	case "11":
		tables = bench.Figure11(opts)
	case "12":
		tables = bench.Figure12(opts)
	case "13":
		tables = bench.Figure13(opts)
	case "14":
		tables = bench.Figure14(opts)
	case "15":
		tables = []*bench.Table{bench.Figure15(opts)}
	case "reorder":
		tables = []*bench.Table{bench.ReorderCost()}
	case "ablation":
		tables = bench.Ablations(opts)
	case "ordering":
		tbl, results, err := bench.Ordering(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ordering benchmark: %v\n", err)
			os.Exit(1)
		}
		tables = []*bench.Table{tbl}
		if *jsonPath != "" {
			lbl := *label
			if lbl == "" {
				lbl = "unlabelled"
			}
			rec := bench.NewBenchRecord(lbl, opts, results)
			if err := bench.AppendBenchRecord(*jsonPath, rec); err != nil {
				fmt.Fprintf(os.Stderr, "trajectory file: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("(appended record %q to %s)\n", lbl, *jsonPath)
		}
	case "workload":
		var err error
		if tables, err = bench.ScenarioMatrixAll(opts, *workloadName); err != nil {
			for _, t := range tables {
				fmt.Println(t)
			}
			fmt.Fprintf(os.Stderr, "workload matrix: %v\n", err)
			os.Exit(1)
		}
	case "all":
		tables = bench.All(opts)
	default:
		fmt.Fprintf(os.Stderr, "unknown exhibit %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
	for _, t := range tables {
		fmt.Println(t)
	}
	fmt.Printf("(regenerated in %.1fs, quick=%v, seed=%d)\n", time.Since(start).Seconds(), *quick, *seed)

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}
