// Command fabricnode runs one node of a process-per-node EOV cluster: the
// ordering service (-role orderer) or a validating peer (-role peer),
// speaking the versioned wire protocol over TCP.
//
// A minimal 3-process cluster (see docs/transport.md and README):
//
//	fabricnode -role orderer -listen 127.0.0.1:7050 -peers peer0,peer1 -system fabric#
//	fabricnode -role peer -name peer0 -listen 127.0.0.1:7051 -orderer 127.0.0.1:7050 -peers peer0,peer1 -system fabric#
//	fabricnode -role peer -name peer1 -listen 127.0.0.1:7052 -orderer 127.0.0.1:7050 -peers peer0,peer1 -system fabric#
//
// then drive it with `sharpnet load -orderer 127.0.0.1:7050 -peer-addrs
// 127.0.0.1:7051,127.0.0.1:7052` (add -target-tps for open-loop pacing, and
// `sharpnet trace` to drain the stage-tracing rings — docs/observability.md).
// Nodes shut down gracefully on SIGINT or SIGTERM (peers finish committing
// every delivered block first).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fabricsharp/internal/node"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/scenario"
	"fabricsharp/internal/sched"
)

func main() {
	role := flag.String("role", "", "orderer | peer")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	name := flag.String("name", "", "peer identity (role peer; must appear in -peers)")
	ordererAddr := flag.String("orderer", "", "comma-separated orderer addresses (role peer; the subscription fails over across them)")
	peerNames := flag.String("peers", "peer0,peer1", "comma-separated validating peer names (cluster-wide, identical on every node)")
	system := flag.String("system", "fabric#", "fabric | fabric++ | fabric# | focc-s | focc-l")
	blockSize := flag.Int("block-size", 100, "transactions per block (orderer)")
	blockTimeout := flag.Duration("block-timeout", 100*time.Millisecond, "partial-block cut timeout (orderer)")
	orderers := flag.Int("orderers", 2, "in-process orderer replicas (orderer)")
	maxSpan := flag.Uint64("max-span", 0, "Sharp pruning horizon (0 = default)")
	compactEvery := flag.Uint64("compact-every", 0, "intern-table compaction epoch in blocks (0 = off)")
	dedupHorizon := flag.Uint64("dedup-horizon", 0, "duplicate-suppression horizon in blocks (0 = default)")
	dataDir := flag.String("data-dir", "", "persist ledger+state under this directory (role peer)")
	workers := flag.Int("workers", 0, "validation workers (role peer; 0 = GOMAXPROCS)")
	rescue := flag.Bool("rescue", false, "post-order re-execution of MVCC-aborted transactions (must match cluster-wide)")
	raftID := flag.String("raft-id", "", "this orderer's raft address (role orderer; must appear in -raft-cluster)")
	raftCluster := flag.String("raft-cluster", "", "comma-separated raft addresses of every ordering member (empty = standalone orderer)")
	raftRedirects := flag.String("raft-redirects", "", "comma-separated raftAddr=clientAddr pairs for NotLeader redirect hints")
	raftDir := flag.String("raft-dir", "", "persist raft term+vote under this directory (role orderer)")
	raftElection := flag.Duration("raft-election-timeout", 0, "base raft election timeout (0 = default)")
	workloadName := flag.String("workload", "", "registered scenario whose genesis state this node installs (identical cluster-wide; empty = no genesis)")
	accounts := flag.Int("accounts", 0, "scenario pool-size override (requires -workload; 0 = scenario default)")
	traceEvents := flag.Int("trace-events", 0, "stage-tracing ring capacity in events (0 = default; tracing is always on)")
	flag.Parse()

	names := splitNonEmpty(*peerNames)
	redirects, err := parseRedirects(*raftRedirects)
	if err != nil {
		fatal(err)
	}
	nf := nodeFlags{
		Role:          *role,
		Name:          *name,
		OrdererAddrs:  splitNonEmpty(*ordererAddr),
		PeerNames:     names,
		RaftID:        *raftID,
		RaftCluster:   splitNonEmpty(*raftCluster),
		RaftRedirects: redirects,
		RaftDir:       *raftDir,
		RaftElection:  *raftElection,
		Workload:      *workloadName,
		Accounts:      *accounts,
	}
	if err := nf.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "fabricnode:", err)
		fmt.Fprintln(os.Stderr, "usage: fabricnode -role orderer|peer [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	// Every node of a cluster resolves the same -workload/-accounts pair to
	// the same write set, so all replicas install bit-identical genesis.
	var genesis []protocol.WriteItem
	if *workloadName != "" {
		sc, _ := scenario.Get(*workloadName) // existence validated above
		genesis = sc.GenesisWrites(scenario.Params{Accounts: *accounts})
	}
	var (
		addr     string
		shutdown func() error
		errFn    func() error
	)
	switch *role {
	case "orderer":
		ord, err := node.StartOrderer(node.OrdererConfig{
			Listen:              *listen,
			System:              sched.System(*system),
			PeerNames:           names,
			Orderers:            *orderers,
			BlockSize:           *blockSize,
			BlockTimeout:        *blockTimeout,
			MaxSpan:             *maxSpan,
			CompactEvery:        *compactEvery,
			DedupHorizon:        *dedupHorizon,
			Rescue:              *rescue,
			Genesis:             genesis,
			RaftID:              *raftID,
			RaftCluster:         nf.RaftCluster,
			RaftRedirects:       redirects,
			RaftDir:             *raftDir,
			RaftElectionTimeout: *raftElection,
			TraceEvents:         *traceEvents,
		})
		if err != nil {
			fatal(err)
		}
		addr, shutdown, errFn = ord.Addr(), ord.Close, ord.Err
	case "peer":
		p, err := node.StartPeer(node.PeerConfig{
			Name:              *name,
			Listen:            *listen,
			OrdererAddrs:      nf.OrdererAddrs,
			System:            sched.System(*system),
			PeerNames:         names,
			DataDir:           *dataDir,
			ValidationWorkers: *workers,
			Rescue:            *rescue,
			Genesis:           genesis,
			TraceEvents:       *traceEvents,
		})
		if err != nil {
			fatal(err)
		}
		addr, shutdown, errFn = p.Addr(), p.Close, p.Err
	default:
		fmt.Fprintln(os.Stderr, "usage: fabricnode -role orderer|peer [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	// The listen line is machine-readable: harnesses parse it to learn
	// ephemeral ports.
	fmt.Printf("fabricnode %s listening on %s (system %s, peers %s)\n",
		*role, addr, *system, strings.Join(names, ","))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case s := <-sig:
			fmt.Printf("fabricnode %s: %v, shutting down\n", *role, s)
			if err := shutdown(); err != nil {
				fatal(err)
			}
			return
		case <-ticker.C:
			if err := errFn(); err != nil {
				_ = shutdown()
				fatal(err)
			}
		}
	}
}

// parseRedirects parses "raftAddr=clientAddr,raftAddr=clientAddr" pairs.
func parseRedirects(s string) (map[string]string, error) {
	pairs := splitNonEmpty(s)
	if len(pairs) == 0 {
		return nil, nil
	}
	out := make(map[string]string, len(pairs))
	for _, p := range pairs {
		raftAddr, clientAddr, ok := strings.Cut(p, "=")
		if !ok || raftAddr == "" || clientAddr == "" {
			return nil, fmt.Errorf("malformed -raft-redirects entry %q (want raftAddr=clientAddr)", p)
		}
		out[raftAddr] = clientAddr
	}
	return out, nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fabricnode:", err)
	os.Exit(1)
}
