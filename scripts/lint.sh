#!/usr/bin/env bash
# lint.sh — the local mirror of CI's lint job: formatting, go vet, and the
# sharpvet determinism suite (docs/determinism.md). Run it before pushing;
# CI runs exactly these gates and will reject what this rejects.
#
# Usage: scripts/lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== go vet"
go vet ./...

echo "== sharpvet (replica-identical determinism contract)"
# -list prints the suppression inventory after a clean run so reviewers see
# every justified exception; any unsuppressed finding or inventory drift
# exits nonzero.
go run ./cmd/sharpvet -list ./...

echo "lint: all gates green"
