package core

import (
	"sort"
	"sync"

	"fabricsharp/internal/bloom"
	"fabricsharp/internal/intern"
	"fabricsharp/internal/seqno"
)

// txNode is one transaction in the dependency graph G. Edges are stored as
// explicit successor links (p.succ holds every node depending on p), and the
// full ancestor closure is summarized in the `anti` bloom filter
// (anti_reachable in the paper: the set of transactions that can reach this
// node, plus the node itself).
type txNode struct {
	id        TxID
	arrival   uint64 // monotone arrival index: the deterministic tie-break
	startTS   seqno.Seq
	endTS     seqno.Seq // zero until committed
	committed bool
	pruned    bool
	readKeys  []intern.Key
	writeKeys []intern.Key
	succ      map[*txNode]struct{}
	anti      *bloom.Filter
	age       uint64 // block recency of the node's newest committed ancestor (incl. itself)

	// idPos caches the node id's bloom bit positions (computed once at
	// admission, reused by every reachability probe instead of re-hashing
	// string(id)). idPosBuf is its inline backing array for the default
	// filter geometries, so admission allocates nothing extra.
	idPos    []uint64
	idPosBuf [8]uint64

	// Single-goroutine traversal scratch (the Manager serializes all graph
	// access): stamp marks visited nodes per graph epoch, indeg and pos are
	// the topological sort's working state.
	stamp uint64
	indeg int
	pos   int
}

// graph is the dependency graph with its reachability machinery.
type graph struct {
	nodes       map[TxID]*txNode
	bloomBits   uint64
	bloomHashes int
	arrivals    uint64

	// filterPool and succPool recycle the per-node ancestor filters (2 KiB
	// of bits at the default geometry) and successor maps across the prune
	// horizon — the dominant allocation of the arrival path before pooling.
	filterPool sync.Pool
	succPool   sync.Pool

	// epoch-stamp visited marking plus reusable traversal scratch.
	epoch    uint64
	stack    []*txNode
	topoAll  []*txNode
	topoOut  []*txNode
	topoHeap nodeHeap
}

func newGraph(bloomBits uint64, bloomHashes int) *graph {
	g := &graph{
		nodes:       make(map[TxID]*txNode),
		bloomBits:   bloomBits,
		bloomHashes: bloomHashes,
	}
	g.filterPool.New = func() interface{} { return bloom.New(bloomBits, bloomHashes) }
	g.succPool.New = func() interface{} { return make(map[*txNode]struct{}) }
	return g
}

// visit returns false if n was already visited in the current epoch, marking
// it otherwise. Callers bump the epoch (nextEpoch) once per traversal.
func (g *graph) visit(n *txNode) bool {
	if n.stamp == g.epoch {
		return false
	}
	n.stamp = g.epoch
	return true
}

func (g *graph) nextEpoch() { g.epoch++ }

func (g *graph) newNode(id TxID, startTS seqno.Seq, readKeys, writeKeys []intern.Key) *txNode {
	g.arrivals++
	n := &txNode{
		id:        id,
		arrival:   g.arrivals,
		startTS:   startTS,
		readKeys:  append([]intern.Key(nil), readKeys...),
		writeKeys: append([]intern.Key(nil), writeKeys...),
		succ:      g.succPool.Get().(map[*txNode]struct{}),
		anti:      g.filterPool.Get().(*bloom.Filter),
	}
	n.idPos = n.anti.Positions(n.idPosBuf[:0], string(id))
	n.anti.AddPositions(n.idPos)
	return n
}

// release returns a pruned node's pooled resources. The filter and map are
// exclusively owned by the node (unions copy bits, edges were unlinked), so
// recycling them is safe.
func (g *graph) release(n *txNode) {
	n.anti.Reset()
	g.filterPool.Put(n.anti)
	n.anti = nil
	clear(n.succ)
	g.succPool.Put(n.succ)
	n.succ = nil
}

// lookup resolves an index hit to a live node; pruned or unknown
// transactions are beyond the reachability horizon and are safely ignored
// (Section 4.6's age argument).
func (g *graph) lookup(id TxID) (*txNode, bool) {
	n, ok := g.nodes[id]
	if !ok || n.pruned {
		return nil, false
	}
	return n, true
}

// hasCycle implements the arrival-time reorderability test of Algorithm 2:
// inserting txn with the given predecessors and successors closes a cycle
// iff some successor can already reach some predecessor. Bloom false
// positives report a cycle where none exists — a preventive abort, never a
// missed cycle.
func hasCycle(pred, succ map[*txNode]struct{}) bool {
	if len(pred) == 0 || len(succ) == 0 {
		return false
	}
	//sharp:orderinvariant existential probe: returns whether any (p,s) pair hits; visit order cannot change the answer
	for p := range pred {
		//sharp:orderinvariant existential probe: returns whether any (p,s) pair hits; visit order cannot change the answer
		for s := range succ {
			if p == s {
				return true
			}
			// anti(p) = {ancestors of p} ∪ {p}; a hit means s -> ... -> p.
			if p.anti.MayContainPositions(s.idPos) {
				return true
			}
		}
	}
	return false
}

// insert wires txn into the graph per Algorithm 4: predecessor edges are
// created, the ancestor filter is assembled from the predecessors', and the
// filter (which includes txn itself) is pushed to every node reachable from
// txn's successors. nextBlock is M, the presumptive commit block, used as
// the age hint. It returns the number of nodes traversed (the "# of hops"
// statistic of Figure 13).
func (g *graph) insert(txn *txNode, pred, succ map[*txNode]struct{}, nextBlock uint64) (hops int) {
	//sharp:orderinvariant idempotent set insert plus bloom union (bitwise OR) per predecessor; both commute
	for p := range pred {
		p.succ[txn] = struct{}{}
		txn.anti.Union(p.anti)
	}
	for s := range succ {
		txn.succ[s] = struct{}{}
	}
	txn.age = nextBlock
	g.nodes[txn.id] = txn

	// Push txn's ancestor set (which includes txn) to all descendants and
	// refresh their age: txn is a new, soon-to-commit ancestor of each.
	g.nextEpoch()
	g.visit(txn)
	stack := g.stack[:0]
	//sharp:orderinvariant DFS seed order; the walk effects (visited-set, bloom union, age max) are order-insensitive
	for s := range succ {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.pruned || !g.visit(n) {
			continue
		}
		hops++
		n.anti.Union(txn.anti)
		if n.age < nextBlock {
			n.age = nextBlock
		}
		//sharp:orderinvariant DFS push order; visited-set, bloom-union (bitwise OR), and age-max effects all commute
		for s := range n.succ {
			stack = append(stack, s)
		}
	}
	g.stack = stack[:0]
	return hops
}

// topoOrder returns every live node in a deterministic topological order
// (Kahn's algorithm with arrival-index tie-breaking). It is used both for
// block formation (the pending sub-sequence of this order is the commit
// order) and for the reachability rebuilds. The returned slice is scratch
// owned by the graph — it is valid until the next topoOrder call.
func (g *graph) topoOrder() []*txNode {
	all := g.topoAll[:0]
	//sharp:orderinvariant collection order is washed: zero-indegree seeds enter an arrival-index min-heap and emission follows heap order alone
	for _, n := range g.nodes {
		if n.pruned {
			continue
		}
		n.indeg = 0
		all = append(all, n)
	}
	for _, n := range all {
		for s := range n.succ {
			if !s.pruned {
				s.indeg++
			}
		}
	}
	// Ready min-heap by arrival index, seeded with all zero-indegree nodes.
	ready := &g.topoHeap
	ready.reset()
	for _, n := range all {
		if n.indeg == 0 {
			ready.push(n)
		}
	}
	out := g.topoOut[:0]
	for ready.len() > 0 {
		n := ready.pop()
		out = append(out, n)
		//sharp:orderinvariant indegree decrements commute; emission order is fixed by the arrival-index min-heap, not visit order
		for s := range n.succ {
			if s.pruned {
				continue
			}
			s.indeg--
			if s.indeg == 0 {
				ready.push(s)
			}
		}
	}
	if len(out) != len(all) {
		// The arrival-time cycle test makes this unreachable; failing loud
		// beats emitting an unserializable block.
		panic("core: dependency graph contains a cycle")
	}
	g.topoAll = all
	g.topoOut = out
	return out
}

// rebuildReachability recomputes every live node's ancestor filter from the
// explicit edges (reset filters in place, forward propagation in topological
// order). This is the relay mechanism of Section 4.4: periodically resetting
// the filters bounds their fill ratio — and with it the false-positive rate —
// without ever losing a true member.
func (g *graph) rebuildReachability() {
	order := g.topoOrder()
	for _, n := range order {
		n.anti.Reset()
		n.anti.AddPositions(n.idPos)
	}
	for _, n := range order {
		//sharp:orderinvariant bloom union is bitwise OR; successor visit order cannot change the resulting filters
		for s := range n.succ {
			if !s.pruned {
				s.anti.Union(n.anti)
			}
		}
	}
}

// bumpCommitted refreshes ages after the given nodes committed in block B:
// each is now a committed ancestor of everything it reaches, so descendants'
// ages rise to B. The arrival-time hint may have underestimated (the
// transaction might have been deferred to a later block); re-bumping at
// commit keeps pruning strictly conservative.
func (g *graph) bumpCommitted(committed []*txNode, block uint64) {
	g.nextEpoch()
	stack := g.stack[:0]
	stack = append(stack, committed...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.pruned || !g.visit(n) {
			continue
		}
		if n.age < block {
			n.age = block
		}
		//sharp:orderinvariant DFS push order; visited-set marking and age-max both commute
		for s := range n.succ {
			stack = append(stack, s)
		}
	}
	g.stack = stack[:0]
}

// prune removes committed nodes whose age fell below the horizon: no future
// transaction can be part of a cycle through them (Section 4.6). Pending
// nodes are never pruned. It returns the number of pruned nodes.
func (g *graph) prune(horizon uint64) int {
	doomed := g.stack[:0]
	//sharp:orderinvariant doomed-collection order only affects pool recycling; graph deletions are keyed by unique id and commute
	for id, n := range g.nodes {
		if !n.committed || n.pruned {
			continue
		}
		if n.age < horizon {
			n.pruned = true
			delete(g.nodes, id)
			doomed = append(doomed, n)
		}
	}
	if len(doomed) > 0 {
		// Drop dangling successor links so traversals stay tight, then
		// recycle the pruned nodes' filters and maps (nothing else can
		// reach them: lookups consult g.nodes, and every traversal guards
		// on n.pruned before touching a node).
		//sharp:orderinvariant per-node successor-set subtraction; each node is pruned independently and deletions commute
		for _, n := range g.nodes {
			for s := range n.succ {
				if s.pruned {
					delete(n.succ, s)
				}
			}
		}
		for _, n := range doomed {
			g.release(n)
		}
	}
	pruned := len(doomed)
	g.stack = doomed[:0]
	return pruned
}

// size returns the number of live nodes.
func (g *graph) size() int { return len(g.nodes) }

// nodeHeap is a minimal min-heap of nodes ordered by arrival index; it keeps
// the topological sort deterministic across replicas. The backing slice is
// reused across sorts.
type nodeHeap struct{ ns []*txNode }

func (h *nodeHeap) len() int { return len(h.ns) }

func (h *nodeHeap) reset() { h.ns = h.ns[:0] }

func (h *nodeHeap) push(n *txNode) {
	h.ns = append(h.ns, n)
	i := len(h.ns) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.ns[parent].arrival <= h.ns[i].arrival {
			break
		}
		h.ns[parent], h.ns[i] = h.ns[i], h.ns[parent]
		i = parent
	}
}

func (h *nodeHeap) pop() *txNode {
	top := h.ns[0]
	last := len(h.ns) - 1
	h.ns[0] = h.ns[last]
	h.ns = h.ns[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.ns) && h.ns[l].arrival < h.ns[smallest].arrival {
			smallest = l
		}
		if r < len(h.ns) && h.ns[r].arrival < h.ns[smallest].arrival {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.ns[i], h.ns[smallest] = h.ns[smallest], h.ns[i]
		i = smallest
	}
	return top
}

// restoreWW implements Algorithm 5: after the commit order has been fixed,
// write-write dependencies between pending transactions are installed so
// that future cycle checks see them. groups holds, per contended key (in a
// deterministic key order chosen by the Manager), the key's pending writers
// sorted by commit position; adjacent writer pairs not already connected
// receive an edge and the downstream reachability is refreshed in one
// topologically ordered pass from the collected heads.
func (g *graph) restoreWW(groups [][]*txNode) {
	var heads []*txNode
	g.nextEpoch()
	headEpoch := g.epoch
	for _, writers := range groups {
		for i := 0; i+1 < len(writers); i++ {
			t1, t2 := writers[i], writers[i+1]
			if t2.anti.MayContainPositions(t1.idPos) {
				// Already connected (possibly via another key): the edge is
				// implicit, as with Txn0 -> Txn3 in Figure 9.
				continue
			}
			t1.succ[t2] = struct{}{}
			t2.anti.Union(t1.anti)
			if t2.stamp != headEpoch {
				t2.stamp = headEpoch
				heads = append(heads, t2)
			}
		}
	}
	if len(heads) == 0 {
		return
	}
	// Propagate from the heads in topological order so each node's filter
	// is final before its successors consume it (Figure 9's single-pass
	// iteration). Mark everything reachable from a head, then walk the
	// global topological order unioning along marked nodes' edges.
	g.nextEpoch()
	stack := g.stack[:0]
	stack = append(stack, heads...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.pruned || !g.visit(n) {
			continue
		}
		//sharp:orderinvariant DFS push order; the walk only marks a visited-set, which is order-insensitive
		for s := range n.succ {
			stack = append(stack, s)
		}
	}
	g.stack = stack[:0]
	reachEpoch := g.epoch
	for _, n := range g.topoOrder() {
		if n.stamp != reachEpoch {
			continue
		}
		//sharp:orderinvariant bloom union is bitwise OR; successor visit order cannot change the merged filter
		for s := range n.succ {
			if !s.pruned {
				s.anti.Union(n.anti)
			}
		}
	}
}

// sortWriters orders one key's pending writers by commit position (set by
// the formation's topological pass).
func sortWriters(writers []*txNode) {
	sort.Slice(writers, func(i, j int) bool { return writers[i].pos < writers[j].pos })
}
