package chaincode

import "fmt"

// Auction is a single-object English auction: every bid reads and writes the
// same high-bid key, making the contract a deliberate worst case for
// optimistic validation — concurrent bids always conflict — and a best case
// for ordering-aware schedulers, which can serialize them without aborts.
//
// Keys: AuctionHighKey holds the standing high bid, AuctionLeaderKey the
// bidder holding it, and "bid:<bidder>" each bidder's last accepted bid.
type Auction struct{}

// AuctionHighKey holds the standing high bid (genesis seeds it to 0).
const AuctionHighKey = "auction:high"

// AuctionLeaderKey holds the bidder with the standing high bid.
const AuctionLeaderKey = "auction:leader"

// BidKey returns the state key recording a bidder's last accepted bid.
func BidKey(bidder string) string { return "bid:" + bidder }

// Name implements Contract.
func (Auction) Name() string { return "auction" }

// Invoke implements Contract.
//
// Functions:
//
//	bid bidder amount — beat the standing high bid or fail
//	watch             — read-only view of the leader and high bid
func (Auction) Invoke(stub Stub) error {
	args := stub.Args()
	switch stub.Function() {
	case "bid":
		if err := needArgs(stub, 2); err != nil {
			return err
		}
		amount, err := parseInt(args[1])
		if err != nil {
			return err
		}
		high, err := readInt(stub, AuctionHighKey)
		if err != nil {
			return err
		}
		if amount <= high {
			return fmt.Errorf("chaincode: bid %d does not beat the standing %d", amount, high)
		}
		if err := stub.PutState(AuctionHighKey, formatInt(amount)); err != nil {
			return err
		}
		if err := stub.PutState(AuctionLeaderKey, []byte(args[0])); err != nil {
			return err
		}
		return stub.PutState(BidKey(args[0]), formatInt(amount))
	case "watch":
		high, err := readInt(stub, AuctionHighKey)
		if err != nil {
			return err
		}
		leader, err := stub.GetState(AuctionLeaderKey)
		if err != nil {
			return err
		}
		stub.SetResult([]byte(fmt.Sprintf("leader=%s high=%d", leader, high)))
		return nil
	default:
		return fmt.Errorf("chaincode: auction has no function %q", stub.Function())
	}
}
