package chaincode

import "fmt"

// Smallbank implements the original Smallbank benchmark contract used in
// the FastFabric(Sharp) experiments (Figure 15): every customer has a
// checking and a savings account, and seven operations exercise them.
//
// Keys: "checking:<id>" and "savings:<id>", balances stored as decimal
// integers.
type Smallbank struct{}

// Name implements Contract.
func (Smallbank) Name() string { return "smallbank" }

// CheckingKey returns the state key of a customer's checking account.
func CheckingKey(id string) string { return "checking:" + id }

// SavingsKey returns the state key of a customer's savings account.
func SavingsKey(id string) string { return "savings:" + id }

// Invoke implements Contract.
//
// Functions (amounts are decimal integers):
//
//	create_account id checking savings   — blind writes (contention-free)
//	query id                             — read-only: both balances
//	deposit_checking id amount           — single-account update
//	write_check id amount                — single-account update
//	transact_savings id amount           — single-account update
//	send_payment from to amount          — two-account update
//	amalgamate from to                   — two-account update
func (Smallbank) Invoke(stub Stub) error {
	switch stub.Function() {
	case "create_account":
		if err := needArgs(stub, 3); err != nil {
			return err
		}
		id := stub.Args()[0]
		checking, err := parseInt(stub.Args()[1])
		if err != nil {
			return err
		}
		savings, err := parseInt(stub.Args()[2])
		if err != nil {
			return err
		}
		if err := stub.PutState(CheckingKey(id), formatInt(checking)); err != nil {
			return err
		}
		return stub.PutState(SavingsKey(id), formatInt(savings))

	case "query":
		if err := needArgs(stub, 1); err != nil {
			return err
		}
		id := stub.Args()[0]
		checking, err := readInt(stub, CheckingKey(id))
		if err != nil {
			return err
		}
		savings, err := readInt(stub, SavingsKey(id))
		if err != nil {
			return err
		}
		stub.SetResult([]byte(fmt.Sprintf(`{"checking":%d,"savings":%d}`, checking, savings)))
		return nil

	case "deposit_checking":
		return addTo(stub, CheckingKey, false)

	case "write_check":
		// Write a check against checking; Smallbank allows overdraft with a
		// penalty, which we fold into a plain subtraction.
		return addTo(stub, CheckingKey, true)

	case "transact_savings":
		return addTo(stub, SavingsKey, false)

	case "send_payment":
		if err := needArgs(stub, 3); err != nil {
			return err
		}
		from, to := stub.Args()[0], stub.Args()[1]
		amount, err := parseInt(stub.Args()[2])
		if err != nil {
			return err
		}
		fromBal, err := readInt(stub, CheckingKey(from))
		if err != nil {
			return err
		}
		toBal, err := readInt(stub, CheckingKey(to))
		if err != nil {
			return err
		}
		if err := stub.PutState(CheckingKey(from), formatInt(fromBal-amount)); err != nil {
			return err
		}
		return stub.PutState(CheckingKey(to), formatInt(toBal+amount))

	case "amalgamate":
		if err := needArgs(stub, 2); err != nil {
			return err
		}
		from, to := stub.Args()[0], stub.Args()[1]
		savings, err := readInt(stub, SavingsKey(from))
		if err != nil {
			return err
		}
		checking, err := readInt(stub, CheckingKey(to))
		if err != nil {
			return err
		}
		if err := stub.PutState(SavingsKey(from), formatInt(0)); err != nil {
			return err
		}
		return stub.PutState(CheckingKey(to), formatInt(checking+savings))

	default:
		return fmt.Errorf("chaincode: smallbank has no function %q", stub.Function())
	}
}

// addTo applies a single-account delta: args are (id, amount). negate
// subtracts instead.
func addTo(stub Stub, key func(string) string, negate bool) error {
	if err := needArgs(stub, 2); err != nil {
		return err
	}
	id := stub.Args()[0]
	amount, err := parseInt(stub.Args()[1])
	if err != nil {
		return err
	}
	if negate {
		amount = -amount
	}
	bal, err := readInt(stub, key(id))
	if err != nil {
		return err
	}
	return stub.PutState(key(id), formatInt(bal+amount))
}

// ModifiedSmallbank is the Fabric++ evaluation workload's contract
// (Section 5.2): every transaction reads 4 accounts and writes 4 accounts
// out of 10k, with independently chosen read/write targets so that the
// read-hot and write-hot ratios steer rw- and ww-conflicts separately.
//
// Keys: "acct:<id>".
type ModifiedSmallbank struct{}

// Name implements Contract.
func (ModifiedSmallbank) Name() string { return "msmallbank" }

// AccountKey returns the state key of a modified-Smallbank account.
func AccountKey(id string) string { return "acct:" + id }

// Invoke implements Contract.
//
// Functions:
//
//	init id balance                — create an account (blind write)
//	op r1 r2 r3 r4 w1 w2 w3 w4     — read the four r-accounts, then write
//	                                 each w-account to a value derived from
//	                                 the sum read (keeps re-execution
//	                                 deterministic for the serializability
//	                                 verifier)
func (ModifiedSmallbank) Invoke(stub Stub) error {
	switch stub.Function() {
	case "init":
		if err := needArgs(stub, 2); err != nil {
			return err
		}
		bal, err := parseInt(stub.Args()[1])
		if err != nil {
			return err
		}
		return stub.PutState(AccountKey(stub.Args()[0]), formatInt(bal))

	case "op":
		if err := needArgs(stub, 8); err != nil {
			return err
		}
		args := stub.Args()
		var sum int64
		for i := 0; i < 4; i++ {
			bal, err := readInt(stub, AccountKey(args[i]))
			if err != nil {
				return err
			}
			sum += bal
		}
		for i := 4; i < 8; i++ {
			// Derivation keeps balances bounded while remaining a pure
			// function of the values read.
			v := sum/4 + int64(i)
			if err := stub.PutState(AccountKey(args[i]), formatInt(v)); err != nil {
				return err
			}
		}
		return nil

	default:
		return fmt.Errorf("chaincode: msmallbank has no function %q", stub.Function())
	}
}
