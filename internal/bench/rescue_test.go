package bench

import (
	"testing"

	"fabricsharp/internal/sched"
)

// TestRescueRaisesContendedCommitRate is the acceptance check of the
// post-order rescue phase on the ordering hot path: on the contended
// SmallBank shape, the MVCC systems' committed count (valid + rescued) must
// rise substantially over the rescue-off baseline. (The two runs' valid
// counts differ slightly — rescued writes advance key versions, so the
// endorsement window sees a different state trajectory — but committed can
// only go up: the rescue phase flips MVCCConflict verdicts and never touches
// a Valid one.)
func TestRescueRaisesContendedCommitRate(t *testing.T) {
	if testing.Short() {
		t.Skip("contended 20k-tx drive loop")
	}
	shape := OrderingShapes()[1] // contended
	if shape.Name != "contended" {
		t.Fatalf("shape order changed: %q", shape.Name)
	}
	const txCount = 20000
	for _, system := range []sched.System{sched.SystemFabric, sched.SystemFoccL} {
		base, err := RunOrdering(system, shape, txCount, Params.Defaults.BlockSize, 42, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunOrdering(system, shape, txCount, Params.Defaults.BlockSize, 42, true)
		if err != nil {
			t.Fatal(err)
		}
		committed := res.Valid + res.Rescued
		t.Logf("%s: baseline valid %d/%d; with rescue valid %d + rescued %d = %d/%d (rounds/groups over run)",
			system, base.Valid, base.Txs, res.Valid, res.Rescued, committed, res.Txs)
		if res.Rescued == 0 {
			t.Errorf("%s: rescue phase rescued nothing on the contended shape", system)
		}
		// ISSUE 6 acceptance: ~9.7k committed/20000 baseline must reach 15k+.
		if committed < 15000 {
			t.Errorf("%s: committed %d < 15000 with rescue enabled", system, committed)
		}
		if committed <= base.Valid {
			t.Errorf("%s: rescue did not raise committed count (%d <= %d)", system, committed, base.Valid)
		}
	}
}
