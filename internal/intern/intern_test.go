package intern

import (
	"fmt"
	"testing"
)

func TestInternDenseAndStable(t *testing.T) {
	tbl := NewTable()
	if got := tbl.Intern("a"); got != 0 {
		t.Fatalf("first key = %d, want 0", got)
	}
	if got := tbl.Intern("b"); got != 1 {
		t.Fatalf("second key = %d, want 1", got)
	}
	if got := tbl.Intern("a"); got != 0 {
		t.Fatalf("re-intern = %d, want 0", got)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tbl.Len())
	}
	if tbl.Lookup(0) != "a" || tbl.Lookup(1) != "b" {
		t.Fatalf("Lookup roundtrip broken: %q %q", tbl.Lookup(0), tbl.Lookup(1))
	}
}

func TestInternAllAppendsToScratch(t *testing.T) {
	tbl := NewTable()
	scratch := make([]Key, 0, 8)
	out := tbl.InternAll(scratch, []string{"x", "y", "x"})
	if fmt.Sprint(out) != "[0 1 0]" {
		t.Fatalf("InternAll = %v", out)
	}
	// Reusing the scratch must not leak earlier contents.
	out = tbl.InternAll(out[:0], []string{"z"})
	if fmt.Sprint(out) != "[2]" {
		t.Fatalf("InternAll reuse = %v", out)
	}
}

func TestCompactRemapsInOldIDOrder(t *testing.T) {
	tbl := NewTable()
	for _, s := range []string{"a", "b", "c", "d", "e"} {
		tbl.Intern(s)
	}
	// Keep b (1), d (3), e (4).
	remap := tbl.Compact(func(k Key) bool { return k == 1 || k == 3 || k == 4 })
	if fmt.Sprint(remap) != fmt.Sprint([]Key{Dropped, 0, Dropped, 1, 2}) {
		t.Fatalf("remap = %v", remap)
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tbl.Len())
	}
	for want, s := range map[Key]string{0: "b", 1: "d", 2: "e"} {
		if tbl.Lookup(want) != s {
			t.Errorf("Lookup(%d) = %q, want %q", want, tbl.Lookup(want), s)
		}
		if got, ok := tbl.Find(s); !ok || got != want {
			t.Errorf("Find(%q) = %d,%v, want %d", s, got, ok, want)
		}
	}
	// Dropped keys are gone from the map and re-intern under fresh IDs.
	if _, ok := tbl.Find("a"); ok {
		t.Error("dropped key still findable")
	}
	if got := tbl.Intern("a"); got != 3 {
		t.Errorf("re-interned dropped key = %d, want 3", got)
	}
	if got := tbl.Intern("b"); got != 0 {
		t.Errorf("retained key moved: Intern(b) = %d, want 0", got)
	}
}

func TestCompactDeterministicAcrossTables(t *testing.T) {
	// Two replicas interning the same stream and compacting with the same
	// liveness predicate end bit-identical — the cross-replica agreement
	// property epoch compaction rests on.
	build := func() *Table {
		tbl := NewTable()
		for i := 0; i < 40; i++ {
			tbl.Intern(fmt.Sprintf("k%d", i%17))
		}
		tbl.Compact(func(k Key) bool { return k%3 == 0 })
		for i := 0; i < 10; i++ {
			tbl.Intern(fmt.Sprintf("post%d", i%5))
		}
		return tbl
	}
	a, b := build(), build()
	if a.Len() != b.Len() {
		t.Fatalf("lengths diverged: %d vs %d", a.Len(), b.Len())
	}
	for k := Key(0); int(k) < a.Len(); k++ {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("key %d diverged: %q vs %q", k, a.Lookup(k), b.Lookup(k))
		}
	}
}

func TestRemapHelpers(t *testing.T) {
	remap := []Key{Dropped, 0, 1, Dropped, 2}
	keys := []Key{4, 1, 2}
	RemapInPlace(keys, remap)
	if fmt.Sprint(keys) != "[2 0 1]" {
		t.Fatalf("RemapInPlace = %v", keys)
	}
	defer func() {
		if recover() == nil {
			t.Error("RemapInPlace of a dropped key did not panic")
		}
	}()
	RemapInPlace([]Key{0}, remap)
}

func TestRemapSlotsMovesAndReleases(t *testing.T) {
	slots := [][]int{{10}, {11, 12}, nil, {13}}
	remap := []Key{Dropped, 0, Dropped, 1, Dropped} // slots shorter than remap
	out := RemapSlots(slots, remap, 2)
	if len(out) != 2 || fmt.Sprint(out[0]) != "[11 12]" || fmt.Sprint(out[1]) != "[13]" {
		t.Fatalf("RemapSlots = %v", out)
	}
}

func TestDeterministicAcrossTables(t *testing.T) {
	// Two tables fed the same stream assign identical keys — the replica
	// agreement property interning relies on.
	stream := []string{"k3", "k1", "k3", "k2", "k1", "k4"}
	a, b := NewTable(), NewTable()
	for _, s := range stream {
		if ka, kb := a.Intern(s), b.Intern(s); ka != kb {
			t.Fatalf("tables diverged on %q: %d vs %d", s, ka, kb)
		}
	}
}
