package node

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fabricsharp/internal/consensus"
	"fabricsharp/internal/fabric"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/metrics"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/trace"
	"fabricsharp/internal/transport"
	"fabricsharp/internal/wire"
)

// OrdererConfig parameterizes an ordering process.
type OrdererConfig struct {
	// Listen is the TCP address for client submits/polls and peer
	// subscriptions ("127.0.0.1:0" picks an ephemeral port).
	Listen string
	// System selects the ordering-phase concurrency control.
	System sched.System
	// PeerNames are the validating peers of the cluster (remote processes).
	PeerNames []string
	// Orderers is the number of in-process orderer replicas (default 2:
	// lead + follower, keeping the agreement property under live exercise).
	Orderers int
	// BlockSize, BlockTimeout, MaxSpan, CompactEvery, DedupHorizon tune the
	// schedulers exactly as in fabric.Options.
	BlockSize    int
	BlockTimeout time.Duration
	MaxSpan      uint64
	CompactEvery uint64
	DedupHorizon uint64
	// ResultHorizon bounds the result map (default DefaultResultHorizon).
	ResultHorizon int
	// Rescue enables post-order speculative re-execution of MVCC-aborted
	// transactions; must match the peers' setting (the rescue digest is
	// byte-asserted across the cluster).
	Rescue bool
	// Genesis writes seed the orderer's shadow validation states (and any
	// in-process peer states) at the shared genesis version; every replica
	// of the cluster — orderers and remote peers alike — must receive the
	// identical set or MVCC verdicts diverge. Resolve it once from the
	// scenario registry and hand the same slice to every node config.
	Genesis []protocol.WriteItem

	// RaftCluster, when non-empty, joins this process to a wire Raft
	// ordering cluster: submissions go through the replicated log, every
	// member seals byte-identical blocks, and followers answer submits with
	// a NotLeader redirect. Each entry is a member's raft address; RaftID
	// must be one of them (this process's own).
	RaftCluster []string
	// RaftID is this member's raft address within RaftCluster.
	RaftID string
	// RaftRedirects maps raft addresses to the matching member's
	// client-facing Listen address — the redirect hint followers attach to
	// NotLeader acks. Missing entries degrade to hint-less redirects
	// (clients rotate instead of jumping straight to the leader).
	RaftRedirects map[string]string
	// RaftDir, when non-empty, persists this member's term and vote so a
	// restart cannot double-vote within a term.
	RaftDir string
	// RaftElectionTimeout overrides the base election timeout (default
	// 250ms, randomized per member).
	RaftElectionTimeout time.Duration
	// RaftDial overrides the raft layer's outbound connection establishment
	// (fault-injection seam; the raft protocol retransmits, so lossy
	// wrappers are safe here). Default: transport.Dial.
	RaftDial func(addr string) (transport.FrameConn, error)
	// TraceEvents sizes the always-on stage-tracing ring (events retained;
	// rounded up to a power of two). 0 selects trace.DefaultRingSize;
	// tracing cannot be disabled — it is cheap enough to stay on.
	TraceEvents int
}

// Orderer is a running ordering process: an ordering-only fabric.Network
// behind a TCP server speaking the wire protocol.
type Orderer struct {
	net     *fabric.Network
	srv     *transport.Server
	results *resultStore

	// raft is the wire consensus service when RaftCluster is configured;
	// nil for a standalone orderer. The fabric network owns its lifecycle
	// (Network.Close closes it), but the node keeps the handle for redirect
	// hints and status reporting.
	raft      *transport.RaftService
	redirects map[string]string
	name      string
	consensus metrics.ConsensusMetrics
	tracer    *trace.Tracer

	// sealed broadcasts "a block was sealed" to delivery streams: each
	// waiter grabs the current channel and blocks until it closes.
	sealedMu sync.Mutex
	sealed   chan struct{}

	done      chan struct{}
	closeOnce sync.Once
	errs      errOnce
}

// StartOrderer boots an ordering process and starts serving.
func StartOrderer(cfg OrdererConfig) (*Orderer, error) {
	if err := nonEmpty(cfg.PeerNames, "PeerNames"); err != nil {
		return nil, err
	}
	name := "orderer0"
	if len(cfg.RaftCluster) > 0 {
		name = cfg.RaftID
	}
	o := &Orderer{
		results:   newResultStore(cfg.ResultHorizon),
		redirects: cfg.RaftRedirects,
		name:      name,
		tracer:    trace.New(name, "orderer", cfg.TraceEvents),
		sealed:    make(chan struct{}),
		done:      make(chan struct{}),
	}
	opts := fabric.Options{
		System:       cfg.System,
		RemotePeers:  cfg.PeerNames,
		Orderers:     cfg.Orderers,
		BlockSize:    cfg.BlockSize,
		BlockTimeout: cfg.BlockTimeout,
		MaxSpan:      cfg.MaxSpan,
		CompactEvery: cfg.CompactEvery,
		DedupHorizon: cfg.DedupHorizon,
		Rescue:       cfg.Rescue,
		Genesis:      cfg.Genesis,
		Tracer:       o.tracer,
		OnResult:     func(res fabric.TxResult) { o.results.put(res) },
	}
	if len(cfg.RaftCluster) > 0 {
		raft, err := transport.StartRaft(transport.RaftConfig{
			ID:              cfg.RaftID,
			Cluster:         cfg.RaftCluster,
			Dir:             cfg.RaftDir,
			ElectionTimeout: cfg.RaftElectionTimeout,
			Dial:            cfg.RaftDial,
			Metrics:         &o.consensus,
		})
		if err != nil {
			return nil, err
		}
		o.raft = raft
		opts.Ordering = raft
	}
	net, err := fabric.NewNetwork(opts)
	if err != nil {
		if o.raft != nil {
			o.raft.Close()
		}
		return nil, err
	}
	o.net = net
	// Block delivery: the notifier wakes every subscription stream; the
	// streams read sealed blocks (with verdicts) off the lead orderer's
	// chain at their own pace — catch-up and live tail are the same loop.
	net.AttachDelivery(transport.DeliveryFunc(func(*ledger.Block) error {
		o.sealedMu.Lock()
		close(o.sealed)
		o.sealed = make(chan struct{})
		o.sealedMu.Unlock()
		return nil
	}))
	srv, err := transport.Listen(cfg.Listen, o.handle)
	if err != nil {
		net.Close()
		return nil, err
	}
	o.srv = srv
	return o, nil
}

// Addr returns the server's bound address.
func (o *Orderer) Addr() string { return o.srv.Addr() }

// Network exposes the underlying ordering network (tests, metrics).
func (o *Orderer) Network() *fabric.Network { return o.net }

// Raft exposes the wire consensus service; nil for a standalone orderer.
func (o *Orderer) Raft() *transport.RaftService { return o.raft }

// ConsensusMetrics exposes this member's election/replication counters.
func (o *Orderer) ConsensusMetrics() *metrics.ConsensusMetrics { return &o.consensus }

// Err returns the node's first fatal error, nil while healthy.
func (o *Orderer) Err() error {
	if err := o.errs.get(); err != nil {
		return err
	}
	return o.net.Err()
}

// Close shuts the process down: stop accepting, close every conn (delivery
// streams unblock), drain the ordering network.
func (o *Orderer) Close() error {
	o.closeOnce.Do(func() {
		close(o.done)
		_ = o.srv.Close()
		o.net.Close()
	})
	return nil
}

// sealedWait returns the channel closed at the next seal.
func (o *Orderer) sealedWait() <-chan struct{} {
	o.sealedMu.Lock()
	defer o.sealedMu.Unlock()
	return o.sealed
}

// handle serves one connection: a request/response loop that hands off to
// the streaming path when the peer subscribes.
func (o *Orderer) handle(c *transport.Conn) {
	for {
		typ, payload, err := c.Recv()
		if err != nil {
			return
		}
		switch typ {
		case wire.MsgSubmit:
			o.handleSubmit(c, payload)
		case wire.MsgResultPoll:
			id := protocol.TxID(payload)
			res, ok := o.results.get(id)
			_ = c.Send(wire.MsgResult, wire.EncodeResult(wire.Result{
				Found: ok, TxID: string(res.TxID), Code: res.Code, Block: res.Block,
			}))
		case wire.MsgSubscribe:
			sub, err := wire.DecodeSubscribe(payload)
			if err != nil {
				return
			}
			o.streamBlocks(c, sub.From)
			return // the stream owns the connection until it dies
		case wire.MsgStatusReq:
			chain := o.net.OrdererChain(0)
			height, _ := chain.Height()
			st := wire.Status{
				Role:        "orderer",
				Name:        o.name,
				Height:      height,
				Blocks:      uint64(chain.Len()),
				TipHash:     chain.TipHash(),
				CommittedTx: committedTxCount(chain),
			}
			if o.raft != nil {
				st.Term = o.raft.Term()
				st.Leader = o.leaderHint()
			}
			_ = c.Send(wire.MsgStatus, wire.EncodeStatus(st))
		case wire.MsgTraceReq:
			_ = c.Send(wire.MsgTraceDump, wire.EncodeTraceDump(dumpToWire(o.tracer.Dump())))
		default:
			// Unknown request: answer with an error rather than going mute,
			// then drop the conn (the peer is confused or newer than us).
			_ = c.Send(wire.MsgAck, wire.EncodeAck(wire.Ack{Err: fmt.Sprintf("unexpected %v", typ)}))
			return
		}
	}
}

func (o *Orderer) handleSubmit(c *transport.Conn, payload []byte) {
	tx, err := wire.DecodeTransaction(payload)
	if err != nil {
		_ = c.Send(wire.MsgAck, wire.EncodeAck(wire.Ack{Err: err.Error()}))
		return
	}
	o.tracer.Record(string(tx.ID), trace.StageSubmit, 0)
	// DecodeTransaction precomputed the key caches, so the schedulers see
	// exactly what an in-process submit would hand them.
	if err := o.net.SubmitEnvelope(consensus.Envelope{Tx: tx, SubmittedBy: tx.ClientID}); err != nil {
		var nl consensus.ErrNotLeader
		if errors.As(err, &nl) {
			// Not this member's job: redirect the client to the leader's
			// client-facing address (empty while an election is in flight —
			// the client rotates until a leader emerges).
			_ = c.Send(wire.MsgAck, wire.EncodeAck(wire.Ack{
				NotLeader: true,
				Leader:    o.redirects[nl.LeaderID],
				Err:       err.Error(),
			}))
			return
		}
		_ = c.Send(wire.MsgAck, wire.EncodeAck(wire.Ack{Err: err.Error()}))
		return
	}
	if o.raft != nil {
		// A raft Submit returns once the entry is quorum-durable in the
		// replicated log — the raft-commit stage boundary.
		o.tracer.Record(string(tx.ID), trace.StageRaftCommit, 0)
	}
	_ = c.Send(wire.MsgAck, wire.EncodeAck(wire.Ack{OK: true}))
}

// leaderHint maps the raft leader's member address to its client-facing
// address, falling back to the raw raft address when no redirect is known.
func (o *Orderer) leaderHint() string {
	leader := o.raft.Leader()
	if leader == "" {
		return ""
	}
	if addr, ok := o.redirects[leader]; ok {
		return addr
	}
	return leader
}

// streamBlocks walks the lead orderer's sealed chain from block from+1,
// sending each block and waiting for the next seal when it reaches the tip.
// Slow consumers exert backpressure only on their own stream; the ordering
// pipeline never waits for a peer.
func (o *Orderer) streamBlocks(c *transport.Conn, from uint64) {
	chain := o.net.OrdererChain(0)
	next := from + 1
	for {
		// Fetch the wakeup channel BEFORE probing the chain: a seal landing
		// between a miss and the wait would otherwise be signalled on the
		// old channel and lost, stalling the stream until the next seal.
		wait := o.sealedWait()
		if blk, ok := chain.Get(next); ok {
			if err := c.Send(wire.MsgBlock, wire.EncodeBlock(blk)); err != nil {
				return // subscriber went away; it will redial and resubscribe
			}
			next++
			continue
		}
		select {
		case <-wait:
		case <-o.done:
			return
		}
	}
}
