package analysis

import (
	"sort"
	"strings"
)

// ModulePath is the import-path prefix of the module sharpvet polices.
const ModulePath = "fabricsharp"

// deterministicPackages are the consensus-critical packages whose sealed
// output must be a pure function of the consensus stream: one unsorted map
// iteration or stray wall-clock read here ships as a cross-replica
// divergence (fatal Network.Err) under load. The list is the normative half
// of docs/determinism.md — change them together.
var deterministicPackages = map[string]bool{
	ModulePath + "/internal/commit":     true,
	ModulePath + "/internal/conflict":   true,
	ModulePath + "/internal/consensus":  true,
	ModulePath + "/internal/core":       true,
	ModulePath + "/internal/intern":     true,
	ModulePath + "/internal/kvstore":    true,
	ModulePath + "/internal/protocol":   true,
	ModulePath + "/internal/reexec":     true,
	ModulePath + "/internal/sched":      true,
	ModulePath + "/internal/statedb":    true,
	ModulePath + "/internal/trace":      true,
	ModulePath + "/internal/validation": true,
	ModulePath + "/internal/wire":       true,
}

// deterministicFiles extends the contract into packages that are only
// partially consensus-critical: the sealing half of internal/fabric (the
// orderer replica loop that seals blocks and the commitment broker that
// fixes disclosure order) is deterministic, while the client/network glue
// around it is free to touch wall clocks and sockets.
var deterministicFiles = map[string]map[string]bool{
	ModulePath + "/internal/fabric": {
		"orderer.go":    true,
		"commitment.go": true,
	},
}

// Deterministic reports whether file (base name) of package pkgPath is
// bound by the replica-identical contract.
func Deterministic(pkgPath, file string) bool {
	if deterministicPackages[pkgPath] {
		return true
	}
	return deterministicFiles[pkgPath][file]
}

// DeterministicScope is the Scope shared by the analyzers that police the
// replica-identical contract (maporder, wallclock, seaminject).
func DeterministicScope(pkgPath, file string) bool { return Deterministic(pkgPath, file) }

// PackageScope returns a Scope covering every file of the given module
// packages (named by their path below ModulePath, e.g. "internal/transport").
func PackageScope(rel ...string) Scope {
	set := make(map[string]bool, len(rel))
	for _, r := range rel {
		set[ModulePath+"/"+r] = true
	}
	return func(pkgPath, file string) bool { return set[pkgPath] }
}

// ModuleScope covers every file of every module package (used by errdrop:
// fatal-propagation paths must be checked module-wide, callers included).
func ModuleScope(pkgPath, file string) bool {
	return pkgPath == ModulePath || strings.HasPrefix(pkgPath, ModulePath+"/")
}

// DeterministicPackages lists the fully-covered packages plus the
// file-scoped extensions, for docs and the CLI's -contract listing.
func DeterministicPackages() []string {
	var out []string
	for p := range deterministicPackages {
		out = append(out, p)
	}
	for p, files := range deterministicFiles {
		for f := range files {
			out = append(out, p+"/"+f)
		}
	}
	sort.Strings(out)
	return out
}
