package main

import (
	"strings"
	"testing"
)

func TestValidateAcceptsWellFormedModes(t *testing.T) {
	cluster := []string{"127.0.0.1:7050"}
	peers := []string{"127.0.0.1:7051", "127.0.0.1:7052"}
	for name, f := range map[string]clientFlags{
		"demo":            {Mode: "demo", Clients: 4, Txs: 200},
		"load":            {Mode: "load", Orderers: cluster, Peers: peers, Clients: 4, Txs: 125, Accounts: 32},
		"status both":     {Mode: "status", Orderers: cluster, Peers: peers},
		"status orderers": {Mode: "status", Orderers: cluster},
		"check":           {Mode: "check", Orderers: cluster, Peers: peers, ExpectCommitted: 500},
		"check no tally":  {Mode: "check", Orderers: cluster, Peers: peers},
		"load scenario":   {Mode: "load", Orderers: cluster, Peers: peers, Clients: 4, Txs: 125, Workload: "auction"},
		"load scenario with pool": {
			Mode: "load", Orderers: cluster, Peers: peers, Clients: 4, Txs: 125, Workload: "token", Accounts: 16,
		},
	} {
		if err := f.validate(); err != nil {
			t.Errorf("%s: unexpected error: %v", name, err)
		}
	}
}

func TestValidateRejectsMisuse(t *testing.T) {
	cluster := []string{"127.0.0.1:7050"}
	peers := []string{"127.0.0.1:7051"}
	cases := map[string]struct {
		flags   clientFlags
		wantErr string
	}{
		"empty mode":             {clientFlags{}, "-mode is required"},
		"unknown mode":           {clientFlags{Mode: "bench"}, "unknown mode"},
		"demo with cluster":      {clientFlags{Mode: "demo", Orderers: cluster, Clients: 1, Txs: 1}, "ignores -orderer"},
		"demo with tally":        {clientFlags{Mode: "demo", Clients: 1, Txs: 1, ExpectCommitted: 5}, "check-mode flag"},
		"demo zero clients":      {clientFlags{Mode: "demo", Txs: 1}, "-clients must be positive"},
		"demo zero txs":          {clientFlags{Mode: "demo", Clients: 1}, "-txs must be positive"},
		"load without orderers":  {clientFlags{Mode: "load", Peers: peers, Clients: 1, Txs: 1, Accounts: 1}, "requires -orderer"},
		"load without peers":     {clientFlags{Mode: "load", Orderers: cluster, Clients: 1, Txs: 1, Accounts: 1}, "requires -orderer and -peer-addrs"},
		"load with tally":        {clientFlags{Mode: "load", Orderers: cluster, Peers: peers, Clients: 1, Txs: 1, Accounts: 1, ExpectCommitted: 5}, "check-mode flag"},
		"load zero accounts":     {clientFlags{Mode: "load", Orderers: cluster, Peers: peers, Clients: 1, Txs: 1}, "-accounts must be positive"},
		"status with no targets": {clientFlags{Mode: "status"}, "needs -orderer and/or -peer-addrs"},
		"check without peers":    {clientFlags{Mode: "check", Orderers: cluster}, "requires -orderer and -peer-addrs"},
		"load unknown workload":  {clientFlags{Mode: "load", Orderers: cluster, Peers: peers, Clients: 1, Txs: 1, Workload: "nosuch"}, "unknown -workload"},
		"load negative accounts": {clientFlags{Mode: "load", Orderers: cluster, Peers: peers, Clients: 1, Txs: 1, Workload: "token", Accounts: -1}, "non-negative"},
		"demo with workload":     {clientFlags{Mode: "demo", Clients: 1, Txs: 1, Workload: "token"}, "load-mode flag"},
		"check with workload":    {clientFlags{Mode: "check", Orderers: cluster, Peers: peers, Workload: "token"}, "load-mode flag"},
	}
	for name, c := range cases {
		err := c.flags.validate()
		if err == nil {
			t.Errorf("%s: want error containing %q, got nil", name, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not contain %q", name, err, c.wantErr)
		}
	}
}
