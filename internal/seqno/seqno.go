// Package seqno defines the sequence numbers that order everything in an
// execute-order-validate blockchain: block numbers, transaction commit
// positions, snapshot identifiers, and the start/end timestamps of the
// paper's transactional model (Definitions 1-5).
//
// A sequence number is a lexicographically ordered pair (Block, Pos).
// A blockchain snapshot taken after block M has sequence number (M+1, 0),
// so that every transaction committed at (M, p), p >= 1 sorts strictly
// before the snapshot that follows block M, and every transaction committed
// in block M+1 sorts strictly after it.
package seqno

import (
	"encoding/binary"
	"fmt"
)

// Seq is a (block, position) sequence number. Position 0 is reserved for
// snapshot identifiers; committed transactions occupy positions >= 1.
type Seq struct {
	Block uint64
	Pos   uint32
}

// Snapshot returns the sequence number of the blockchain snapshot observed
// after block `block` has committed, i.e. (block+1, 0) per Definition 1.
func Snapshot(block uint64) Seq { return Seq{Block: block + 1, Pos: 0} }

// Commit returns the sequence number of the pos-th transaction (1-based)
// in block `block`.
func Commit(block uint64, pos uint32) Seq { return Seq{Block: block, Pos: pos} }

// Compare returns -1, 0 or +1 depending on whether s orders before, equal
// to, or after t in lexicographic order.
func (s Seq) Compare(t Seq) int {
	switch {
	case s.Block < t.Block:
		return -1
	case s.Block > t.Block:
		return 1
	case s.Pos < t.Pos:
		return -1
	case s.Pos > t.Pos:
		return 1
	default:
		return 0
	}
}

// Less reports whether s orders strictly before t.
func (s Seq) Less(t Seq) bool { return s.Compare(t) < 0 }

// LessEq reports whether s orders before or equal to t.
func (s Seq) LessEq(t Seq) bool { return s.Compare(t) <= 0 }

// IsSnapshot reports whether s denotes a blockchain snapshot (Pos == 0).
func (s Seq) IsSnapshot() bool { return s.Pos == 0 }

// SnapshotBlock returns the block number whose post-commit state a snapshot
// sequence number denotes. It panics if s is not a snapshot sequence.
func (s Seq) SnapshotBlock() uint64 {
	if !s.IsSnapshot() {
		panic(fmt.Sprintf("seqno: %v is not a snapshot sequence", s))
	}
	if s.Block == 0 {
		return 0 // the genesis snapshot denotes the empty pre-genesis state
	}
	return s.Block - 1
}

// String renders the sequence number in the paper's "(block, pos)" notation.
func (s Seq) String() string { return fmt.Sprintf("(%d,%d)", s.Block, s.Pos) }

// encodedLen is the length of the binary encoding produced by AppendTo.
const encodedLen = 12

// AppendTo appends a big-endian, order-preserving binary encoding of s to
// dst. The encoding sorts bytewise exactly as Compare orders sequence
// numbers, which lets ordered key-value stores index by sequence number.
func (s Seq) AppendTo(dst []byte) []byte {
	var buf [encodedLen]byte
	binary.BigEndian.PutUint64(buf[0:8], s.Block)
	binary.BigEndian.PutUint32(buf[8:12], s.Pos)
	return append(dst, buf[:]...)
}

// Bytes returns the order-preserving binary encoding of s.
func (s Seq) Bytes() []byte { return s.AppendTo(nil) }

// FromBytes decodes a sequence number previously encoded with AppendTo.
func FromBytes(b []byte) (Seq, error) {
	if len(b) < encodedLen {
		return Seq{}, fmt.Errorf("seqno: short encoding: %d bytes", len(b))
	}
	return Seq{
		Block: binary.BigEndian.Uint64(b[0:8]),
		Pos:   binary.BigEndian.Uint32(b[8:12]),
	}, nil
}

// EncodedLen returns the number of bytes AppendTo writes.
func EncodedLen() int { return encodedLen }

// Max returns the later of s and t.
func Max(s, t Seq) Seq {
	if s.Less(t) {
		return t
	}
	return s
}

// Min returns the earlier of s and t.
func Min(s, t Seq) Seq {
	if t.Less(s) {
		return t
	}
	return s
}
