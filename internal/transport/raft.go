package transport

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"fabricsharp/internal/consensus"
	"fabricsharp/internal/metrics"
	"fabricsharp/internal/wire"
)

// RaftService runs one member of a Raft ordering cluster over TCP, turning
// the pure consensus.RaftCore into a consensus.Service: Submit appends to
// the replicated log and returns once the entry is committed by a quorum
// (so an acknowledged submission survives any minority of crashes), and
// Subscribe delivers the committed prefix from offset zero with the same
// replay semantics as the in-process Kafka — every replica's subscription
// yields the identical stream, which is what lets every orderer process
// seal byte-identical blocks.
//
// Networking is message passing, not RPC: each member dials every peer and
// keeps one outbound connection per peer, carrying its requests out and the
// peer's responses back; the peer's requests arrive on this member's server
// connections, answered in place. Every protocol message is idempotent and
// term-guarded, so a dropped frame costs one retransmission interval (the
// heartbeat tick regenerates state), and duplicated or reordered frames are
// no-ops — the property the FaultConn tests lean on. Outbound messages are
// fire-and-forget through a bounded per-peer outbox; when a peer is down,
// its outbox drains to the floor and the tick loop keeps regenerating
// fresher messages.
//
// Liveness is clock-driven: a follower that hears nothing for a randomized
// election timeout in [T, 2T) starts an election; the leader heartbeats
// every Heartbeat interval. The timing rules live here, the transition
// rules in RaftCore — the lock (mu) serializes every core access.
type RaftService struct {
	cfg  RaftConfig
	core *consensus.RaftCore
	srv  *Server

	mu       sync.Mutex
	cond     *sync.Cond
	closed   bool
	deadline time.Time  // election deadline (followers/candidates)
	rng      *rand.Rand // election jitter; guarded by mu
	last     string     // last observed leader ID, for failover counting

	peers map[string]*raftPeer
	conns map[FrameConn]struct{} // every conn a goroutine may block on

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// RaftConfig configures one cluster member.
type RaftConfig struct {
	// ID is this member's identity: its Raft address, as listed in Cluster
	// and dialed by peers.
	ID string
	// Listen is the bind address; defaults to ID (use a pre-reserved
	// ephemeral port in tests, where bind and advertised address differ).
	Listen string
	// Cluster is the full membership (Raft addresses, including ID).
	Cluster []string
	// Dir, when non-empty, persists term and vote across restarts (the
	// paper's durable state; the log itself is rebuilt from the leader).
	Dir string
	// ElectionTimeout is the base T of the randomized [T, 2T) election
	// timer. Default 250ms.
	ElectionTimeout time.Duration
	// Heartbeat is the leader's append/heartbeat interval. Default T/10.
	Heartbeat time.Duration
	// SubmitTimeout bounds how long Submit waits for quorum commit.
	// Default 15s.
	SubmitTimeout time.Duration
	// Dial overrides outbound connection establishment (fault injection
	// seam). Default: transport.Dial.
	Dial func(addr string) (FrameConn, error)
	// Metrics, when set, observes elections, failovers, term, and
	// replication lag.
	Metrics *metrics.ConsensusMetrics
	// Seed drives the election-jitter rng; 0 derives one from the clock
	// and the member ID.
	Seed int64
}

type raftFrame struct {
	t       wire.MsgType
	payload []byte
}

// raftPeer is the outbound side of one peering: a bounded outbox drained by
// a sender goroutine that owns the connection.
type raftPeer struct {
	addr string
	out  chan raftFrame
}

// StartRaft boots a cluster member: restores durable state, starts the
// Raft server, the per-peer senders, and the tick loop.
func StartRaft(cfg RaftConfig) (*RaftService, error) {
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 250 * time.Millisecond
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = cfg.ElectionTimeout / 10
		if cfg.Heartbeat < 5*time.Millisecond {
			cfg.Heartbeat = 5 * time.Millisecond
		}
	}
	if cfg.SubmitTimeout <= 0 {
		cfg.SubmitTimeout = 15 * time.Second
	}
	if cfg.Listen == "" {
		cfg.Listen = cfg.ID
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (FrameConn, error) { return Dial(addr) }
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
		for _, b := range []byte(cfg.ID) {
			seed = seed*131 + int64(b)
		}
	}

	core, err := consensus.NewRaftCore(cfg.ID, cfg.Cluster)
	if err != nil {
		return nil, err
	}
	s := &RaftService{
		cfg:   cfg,
		core:  core,
		rng:   rand.New(rand.NewSource(seed)),
		peers: make(map[string]*raftPeer),
		conns: make(map[FrameConn]struct{}),
		done:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)

	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("transport: raft state dir: %w", err)
		}
		term, vote, err := loadRaftState(s.statePath())
		if err != nil {
			return nil, err
		}
		core.Restore(term, vote)
		core.Persist = func(term uint64, vote string) {
			// Called under mu, before any message reveals the new state —
			// a granted vote must survive a crash or the replica could vote
			// twice in one term.
			if err := saveRaftState(s.statePath(), term, vote); err != nil {
				panic(fmt.Sprintf("transport: raft persist: %v", err))
			}
		}
	}

	srv, err := Listen(cfg.Listen, s.serveConn)
	if err != nil {
		return nil, err
	}
	s.srv = srv

	for _, addr := range core.Others() {
		p := &raftPeer{addr: addr, out: make(chan raftFrame, 1024)}
		s.peers[addr] = p
		s.wg.Add(1)
		go s.sender(p)
	}
	s.mu.Lock()
	s.resetDeadlineLocked()
	s.mu.Unlock()
	s.wg.Add(1)
	go s.tick()
	return s, nil
}

func (s *RaftService) statePath() string { return filepath.Join(s.cfg.Dir, "raft-state") }

// saveRaftState writes term and vote atomically (temp + rename).
func saveRaftState(path string, term uint64, vote string) error {
	tmp := path + ".tmp"
	data := strconv.FormatUint(term, 10) + "\n" + vote + "\n"
	if err := os.WriteFile(tmp, []byte(data), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadRaftState reads state saved by saveRaftState; a missing file is a
// fresh member.
func loadRaftState(path string) (uint64, string, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, "", nil
	}
	if err != nil {
		return 0, "", fmt.Errorf("transport: raft state: %w", err)
	}
	lines := strings.SplitN(string(data), "\n", 3)
	if len(lines) < 2 {
		return 0, "", fmt.Errorf("transport: raft state %s: malformed", path)
	}
	term, err := strconv.ParseUint(strings.TrimSpace(lines[0]), 10, 64)
	if err != nil {
		return 0, "", fmt.Errorf("transport: raft state %s: %w", path, err)
	}
	return term, lines[1], nil
}

// Addr returns the bound Raft address (useful when Listen used port 0).
func (s *RaftService) Addr() string { return s.srv.Addr() }

// resetDeadlineLocked draws a fresh randomized election deadline.
func (s *RaftService) resetDeadlineLocked() {
	t := s.cfg.ElectionTimeout
	s.deadline = time.Now().Add(t + time.Duration(s.rng.Int63n(int64(t))))
}

// noteLocked refreshes observability state after any core transition:
// failover counting and the term gauge.
func (s *RaftService) noteLocked() {
	if m := s.cfg.Metrics; m != nil {
		m.Term.Set(int64(s.core.Term()))
	}
	cur := s.core.LeaderID()
	if cur != "" && cur != s.last {
		if s.last != "" && s.cfg.Metrics != nil {
			s.cfg.Metrics.Failovers.Inc()
		}
		s.last = cur
	}
}

// trackConn registers a connection for teardown on Close; it reports false
// (and closes the conn) if the service is already closing.
func (s *RaftService) trackConn(c FrameConn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		_ = c.Close()
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *RaftService) untrackConn(c FrameConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// sender drains one peer's outbox, owning the outbound connection: dial on
// demand, drop frames while the peer is unreachable (the tick loop
// regenerates), start a read loop for the peer's responses.
func (s *RaftService) sender(p *raftPeer) {
	defer s.wg.Done()
	var conn FrameConn
	drop := func() {
		if conn != nil {
			s.untrackConn(conn)
			_ = conn.Close()
			conn = nil
		}
	}
	defer drop()
	for {
		var m raftFrame
		select {
		case <-s.done:
			return
		case m = <-p.out:
		}
		if conn == nil {
			nc, err := s.cfg.Dial(p.addr)
			if err != nil {
				continue // peer down: this frame is lost, later ticks retry
			}
			if !s.trackConn(nc) {
				return
			}
			conn = nc
			s.wg.Add(1)
			go s.readLoop(nc)
		}
		if err := conn.Send(m.t, m.payload); err != nil {
			drop()
		}
	}
}

// readLoop consumes a connection until it breaks, feeding each frame to the
// dispatcher (on outbound connections these are the peer's responses).
func (s *RaftService) readLoop(conn FrameConn) {
	defer s.wg.Done()
	for {
		t, payload, err := conn.Recv()
		if err != nil {
			return
		}
		s.handle(t, payload, conn)
	}
}

// serveConn handles one inbound connection (a peer's requests; responses go
// back on the same connection).
func (s *RaftService) serveConn(c *Conn) {
	if !s.trackConn(c) {
		return
	}
	defer s.untrackConn(c)
	for {
		t, payload, err := c.Recv()
		if err != nil {
			return
		}
		s.handle(t, payload, c)
	}
}

// enqueueLocked queues a frame for a peer, dropping when the outbox is full
// (the protocol regenerates state; backpressure would deadlock the tick
// loop against a dead peer).
func (s *RaftService) enqueueLocked(addr string, t wire.MsgType, payload []byte) {
	p := s.peers[addr]
	if p == nil {
		return
	}
	select {
	case p.out <- raftFrame{t: t, payload: payload}:
	default:
	}
}

// replicateToAllLocked queues one AppendEntries (entries or heartbeat) per
// follower.
func (s *RaftService) replicateToAllLocked() {
	for _, addr := range s.core.Others() {
		req := s.core.AppendRequestFor(addr)
		s.enqueueLocked(addr, wire.MsgRaftAppend, wire.EncodeRaftAppend(&req))
	}
}

// handle dispatches one protocol frame. reply is the connection the frame
// arrived on; requests are answered on it.
func (s *RaftService) handle(t wire.MsgType, payload []byte, reply FrameConn) {
	switch t {
	case wire.MsgRaftVote:
		req, err := wire.DecodeRaftVote(payload)
		if err != nil {
			return
		}
		s.mu.Lock()
		resp := s.core.HandleVote(req)
		if resp.Granted {
			// Granting a vote concedes the current timeout window.
			s.resetDeadlineLocked()
		}
		s.noteLocked()
		s.mu.Unlock()
		if reply != nil {
			_ = reply.Send(wire.MsgRaftVoteResp, wire.EncodeRaftVoteResp(resp))
		}

	case wire.MsgRaftVoteResp:
		resp, err := wire.DecodeRaftVoteResp(payload)
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.core.HandleVoteResponse(resp) {
			// Won: announce leadership immediately rather than waiting a
			// tick, so followers' timers reset and clients unblock.
			s.replicateToAllLocked()
			s.cond.Broadcast()
		}
		s.noteLocked()
		s.mu.Unlock()

	case wire.MsgRaftAppend:
		req, err := wire.DecodeRaftAppend(payload)
		if err != nil {
			return
		}
		s.mu.Lock()
		resp := s.core.HandleAppend(*req)
		if req.Term == s.core.Term() {
			// Heard from the legitimate leader: hold the election timer.
			s.resetDeadlineLocked()
		}
		s.noteLocked()
		s.cond.Broadcast() // commit index may have advanced
		s.mu.Unlock()
		if reply != nil {
			_ = reply.Send(wire.MsgRaftAppendResp, wire.EncodeRaftAppendResp(resp))
		}

	case wire.MsgRaftAppendResp:
		resp, err := wire.DecodeRaftAppendResp(payload)
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.core.HandleAppendResponse(resp) {
			s.cond.Broadcast()
		}
		if s.core.Role() == consensus.RoleLeader && s.core.Behind(resp.From) {
			// Catch-up streaming: keep batches flowing to a lagging
			// follower without waiting for the next tick.
			req := s.core.AppendRequestFor(resp.From)
			s.enqueueLocked(resp.From, wire.MsgRaftAppend, wire.EncodeRaftAppend(&req))
		}
		s.noteLocked()
		s.mu.Unlock()
	}
}

// tick drives the clocks: leader heartbeats, follower election timeouts,
// and a periodic broadcast so timed waiters (Submit deadlines) re-check.
func (s *RaftService) tick() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		if s.core.Role() == consensus.RoleLeader {
			s.replicateToAllLocked()
			if m := s.cfg.Metrics; m != nil {
				m.ReplicationLag.Set(int64(s.core.LastIndex() - s.core.CommitIndex()))
			}
		} else if time.Now().After(s.deadline) {
			req := s.core.StartElection()
			if m := s.cfg.Metrics; m != nil {
				m.Elections.Inc()
			}
			s.resetDeadlineLocked()
			payload := wire.EncodeRaftVote(req)
			for _, addr := range s.core.Others() {
				s.enqueueLocked(addr, wire.MsgRaftVote, payload)
			}
			if s.core.Role() == consensus.RoleLeader {
				// Single-member cluster: the self-vote was the quorum.
				s.replicateToAllLocked()
			}
		}
		s.noteLocked()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// Submit implements consensus.Service with commit-wait semantics: a nil
// return means the entry is committed on a quorum and will appear in every
// replica's stream — the acknowledgement the zero-loss chaos assertion is
// built on. Followers refuse with consensus.ErrNotLeader (the node layer
// turns it into a client redirect).
func (s *RaftService) Submit(env consensus.Envelope) error {
	deadline := time.Now().Add(s.cfg.SubmitTimeout)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("transport: raft service closed")
	}
	idx, err := s.core.Append(env)
	if err != nil {
		return err
	}
	term := s.core.Term()
	s.replicateToAllLocked() // don't wait for the tick
	for {
		if s.core.CommitIndex() >= idx {
			if s.core.Entry(idx).Term == term {
				return nil
			}
			// Overwritten by a newer leader's log: not committed here.
			return consensus.ErrNotLeader{LeaderID: s.core.LeaderID()}
		}
		if s.core.Role() != consensus.RoleLeader || s.core.Term() != term {
			// Lost leadership mid-wait. The entry may yet commit, but we
			// can no longer promise it; the client's retry path resubmits
			// and the orderer's dedup horizon absorbs the duplicate.
			return consensus.ErrNotLeader{LeaderID: s.core.LeaderID()}
		}
		if s.closed {
			return fmt.Errorf("transport: raft service closed")
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: raft submit: no quorum within %s", s.cfg.SubmitTimeout)
		}
		s.cond.Wait() // the tick loop broadcasts at heartbeat cadence
	}
}

// Subscribe implements consensus.Service: the committed prefix from offset
// zero plus the live tail, exactly the in-process Kafka contract. Leader
// no-op entries are delivered too — identically on every replica, so the
// streams stay byte-for-byte equal.
func (s *RaftService) Subscribe() (<-chan consensus.Sequenced, func()) {
	ch := make(chan consensus.Sequenced, 128)
	done := make(chan struct{})
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			close(done)
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(ch)
		next := uint64(1) // 1-based log index
		for {
			s.mu.Lock()
			for next > s.core.CommitIndex() && !s.closed {
				select {
				case <-done:
					s.mu.Unlock()
					return
				default:
				}
				s.cond.Wait()
			}
			if next > s.core.CommitIndex() && s.closed {
				s.mu.Unlock()
				return
			}
			entry := s.core.Entry(next)
			s.mu.Unlock()
			select {
			case ch <- consensus.Sequenced{Offset: next - 1, Env: entry.Env}:
				next++
			case <-done:
				return
			case <-s.done:
				return
			}
		}
	}()
	return ch, cancel
}

// Close implements consensus.Service: stop the clocks, the server, and
// every connection, then join all goroutines.
func (s *RaftService) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		conns := make([]FrameConn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		close(s.done)
		_ = s.srv.Close()
		for _, c := range conns {
			_ = c.Close()
		}
		s.wg.Wait()
	})
}

// IsLeader reports whether this member currently leads.
func (s *RaftService) IsLeader() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.Role() == consensus.RoleLeader
}

// Leader returns the last known leader's Raft address ("" when unknown).
func (s *RaftService) Leader() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.LeaderID()
}

// Term returns the current Raft term.
func (s *RaftService) Term() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.Term()
}

// CommitIndex returns the committed log length.
func (s *RaftService) CommitIndex() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.CommitIndex()
}

var _ consensus.Service = (*RaftService)(nil)
