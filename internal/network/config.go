// Package network models the full execute-order-validate pipeline on the
// discrete-event simulator: clients submitting at a request rate, endorsing
// peers running real contract simulations against the real state database
// (with per-read intervals and, for vanilla Fabric, the simulation/commit
// read-write lock), the client delay, the consensus latency, a replicated
// orderer running one of the five schedulers, the block cutter (size or
// timeout), and the validation phase committing to state and hash-chained
// ledger.
//
// Every commit/abort/reorder decision comes from the real implementations in
// internal/{sched,core,validation,chaincode,statedb,ledger}; only service
// times are modelled, calibrated to the constants the paper reports
// (Section 5: ~677 tps Fabric raw peak, ~3114 tps FastFabric raw, Fabric++
// reorder 4.3 ms @ 50 txns to 401 ms @ 500, Focc-l 0.12 ms to 5.19 ms).
package network

import (
	"math"
	"math/rand"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/scenario"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/sim"
	"fabricsharp/internal/workload"
)

// Profile selects the hardware/architecture model.
type Profile string

// The two evaluation platforms.
const (
	// ProfileFabric models the four-peer Fabric v1.3 cluster of Section 5.1.
	ProfileFabric Profile = "fabric"
	// ProfileFastFabric models FastFabric's split peers (dedicated
	// endorsers, storage and validator), whose validation pipeline runs
	// ~4.5x faster (Section 5.4).
	ProfileFastFabric Profile = "fastfabric"
)

// TimingModel carries the virtual service times. Zero fields take profile
// defaults.
type TimingModel struct {
	// ExecBase is the CPU cost of one contract simulation (excluding the
	// read intervals, which are latency, not occupancy).
	ExecBase sim.Time
	// EndorserSlots bounds concurrent simulations across the endorsing
	// peers.
	EndorserSlots int
	// ConsensusLatency is the Kafka round-trip.
	ConsensusLatency sim.Time
	// DeliveryLatency is orderer-to-peer block delivery.
	DeliveryLatency sim.Time
	// ValidatePerBlock and ValidatePerTx shape the validation-phase
	// bottleneck: a block costs ValidatePerBlock + n*ValidatePerTx.
	ValidatePerBlock sim.Time
	ValidatePerTx    sim.Time
	// CommitTime is the state/ledger write at the end of validation; under
	// vanilla Fabric it holds the write lock (against all simulations).
	CommitTime sim.Time
}

func (t TimingModel) withProfileDefaults(p Profile) TimingModel {
	def := func(v *sim.Time, d sim.Time) {
		if *v == 0 {
			*v = d
		}
	}
	switch p {
	case ProfileFastFabric:
		def(&t.ExecBase, 300*sim.Microsecond)
		def(&t.ValidatePerBlock, 2*sim.Millisecond)
		def(&t.ValidatePerTx, 300*sim.Microsecond)
		def(&t.CommitTime, 2*sim.Millisecond)
	default:
		def(&t.ExecBase, 1*sim.Millisecond)
		def(&t.ValidatePerBlock, 15*sim.Millisecond)
		def(&t.ValidatePerTx, 1300*sim.Microsecond)
		def(&t.CommitTime, 5*sim.Millisecond)
	}
	def(&t.ConsensusLatency, 10*sim.Millisecond)
	def(&t.DeliveryLatency, 5*sim.Millisecond)
	if t.EndorserSlots == 0 {
		t.EndorserSlots = 2048 // read intervals are waits, not CPU
	}
	return t
}

// formationCost models each system's block-formation (reordering) cost as a
// function of the batch size, calibrated to the reorder latencies the paper
// measured (Section 5.3): Fabric++ enumerates cycles (superlinear: 4.3 ms at
// 50 txns, 401 ms at 500), Focc-l's greedy is light (0.12 ms to 5.19 ms),
// Sharp shifted the heavy lifting to arrival time so formation stays cheap.
func formationCost(system sched.System, n int) sim.Time {
	if n == 0 {
		return 0
	}
	fn := float64(n)
	switch system {
	case sched.SystemFabricPP:
		return sim.Time(1.7 * fn * fn) // µs: 1.7µs·n² → 4.2ms@50, 425ms@500
	case sched.SystemFoccL:
		return sim.Time(0.2 * math.Pow(fn, 1.63)) // µs: 0.12ms@50, 5.0ms@500
	case sched.SystemSharp:
		return sim.Time(100 + 50*fn) // µs: order + ww restoration + persist
	default: // fabric, focc-s: batching only
		return sim.Time(50)
	}
}

// arrivalCost models the orderer's per-transaction processing (Figure 12's
// right panel, in virtual time; the real measured breakdown is reported from
// the core.Manager stats).
func arrivalCost(system sched.System) sim.Time {
	switch system {
	case sched.SystemSharp:
		return 60 * sim.Microsecond // dependency resolution + reachability
	case sched.SystemFoccS:
		return 20 * sim.Microsecond // conflict identification
	default:
		return 5 * sim.Microsecond // enqueue + index
	}
}

// Config describes one experiment run.
type Config struct {
	// System selects the scheduler.
	System sched.System
	// Profile selects the platform model.
	Profile Profile
	// Workload generates the submitted operations. Leave nil and set
	// Scenario to resolve one from the registry instead.
	Workload workload.Generator
	// Scenario, when Workload is nil, names a registered scenario whose
	// generator (built from Rng/Seed and ScenarioParams) drives the run.
	Scenario string
	// ScenarioParams tunes the named Scenario.
	ScenarioParams scenario.Params
	// Contracts overrides the deployed contract set; the default,
	// scenario.AllContracts(), can endorse every registered scenario.
	Contracts []chaincode.Contract
	// Seed drives every random choice the pipeline itself makes.
	Seed int64
	// Rng, when non-nil, is the explicit random stream the pipeline draws
	// from instead of deriving one from Seed. Threading a *rand.Rand in
	// (rather than seeding any process-global source) keeps concurrent
	// harness use reproducible: each Run owns its stream, so parallel CI
	// shards or side-by-side experiments cannot perturb each other. The
	// default derivation rand.New(rand.NewSource(Seed)) is what every
	// historical result used; pass exactly that to reproduce them.
	Rng *rand.Rand
	// Duration is the submission window of virtual time; the run drains
	// in-flight work afterwards. Throughput = committed / Duration.
	Duration sim.Time
	// RequestRate is the client submission rate in tx/s (paper: 700 fixed
	// for the Fabric experiments).
	RequestRate float64
	// BlockSize cuts a block at this many pending transactions.
	BlockSize int
	// BlockTimeout cuts a partial block after this long (Fabric's batch
	// timeout).
	BlockTimeout sim.Time
	// ClientDelay is the client-side delay between endorsement and
	// broadcast to the orderers (Table 2).
	ClientDelay sim.Time
	// ReadInterval is the delay between consecutive reads during
	// simulation (Table 2, "simulates computation-heavy transactions").
	ReadInterval sim.Time
	// MaxSpan is the pruning parameter of Section 4.6 (paper fixes 10).
	MaxSpan uint64
	// Timing overrides individual service times.
	Timing TimingModel
}

func (c Config) withDefaults() Config {
	if c.Profile == "" {
		c.Profile = ProfileFabric
	}
	if c.Duration == 0 {
		c.Duration = 30 * sim.Second
	}
	if c.RequestRate == 0 {
		c.RequestRate = 700
	}
	if c.BlockSize == 0 {
		c.BlockSize = 100
	}
	if c.BlockTimeout == 0 {
		c.BlockTimeout = 1 * sim.Second
	}
	if c.MaxSpan == 0 {
		c.MaxSpan = 10
	}
	if len(c.Contracts) == 0 {
		c.Contracts = scenario.AllContracts()
	}
	c.Timing = c.Timing.withProfileDefaults(c.Profile)
	return c
}
