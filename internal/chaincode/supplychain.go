package chaincode

import (
	"encoding/json"
	"fmt"
	"sort"
)

// SupplyChain is a small asset-tracking contract for the examples: the kind
// of permissioned-blockchain application (supply chain, per the paper's
// introduction) whose concurrent updates benefit from Sharp's reordering.
//
// Keys: "item:<id>" holding a JSON Item document.
type SupplyChain struct{}

// Item is the tracked asset document.
type Item struct {
	ID       string `json:"id"`
	Owner    string `json:"owner"`
	Location string `json:"location"`
	Hops     int    `json:"hops"`
	Status   string `json:"status"`
}

// Name implements Contract.
func (SupplyChain) Name() string { return "supplychain" }

// ItemKey returns the state key of an item.
func ItemKey(id string) string { return "item:" + id }

func getItem(stub Stub, id string) (*Item, error) {
	raw, err := stub.GetState(ItemKey(id))
	if err != nil {
		return nil, err
	}
	if raw == nil {
		return nil, fmt.Errorf("chaincode: item %q not found", id)
	}
	var it Item
	if err := json.Unmarshal(raw, &it); err != nil {
		return nil, fmt.Errorf("chaincode: corrupt item %q: %w", id, err)
	}
	return &it, nil
}

func putItem(stub Stub, it *Item) error {
	raw, err := json.Marshal(it)
	if err != nil {
		return err
	}
	return stub.PutState(ItemKey(it.ID), raw)
}

// Invoke implements Contract.
//
// Functions:
//
//	register id owner location      — create an item
//	ship id to                      — move to a new location (+1 hop)
//	transfer id newOwner            — change ownership
//	inspect id status               — stamp a status after reading it
//	track id                        — read-only
func (SupplyChain) Invoke(stub Stub) error {
	args := stub.Args()
	switch stub.Function() {
	case "register":
		if err := needArgs(stub, 3); err != nil {
			return err
		}
		return putItem(stub, &Item{ID: args[0], Owner: args[1], Location: args[2], Status: "registered"})
	case "ship":
		if err := needArgs(stub, 2); err != nil {
			return err
		}
		it, err := getItem(stub, args[0])
		if err != nil {
			return err
		}
		it.Location = args[1]
		it.Hops++
		it.Status = "in-transit"
		return putItem(stub, it)
	case "transfer":
		if err := needArgs(stub, 2); err != nil {
			return err
		}
		it, err := getItem(stub, args[0])
		if err != nil {
			return err
		}
		it.Owner = args[1]
		return putItem(stub, it)
	case "inspect":
		if err := needArgs(stub, 2); err != nil {
			return err
		}
		it, err := getItem(stub, args[0])
		if err != nil {
			return err
		}
		it.Status = args[1]
		return putItem(stub, it)
	case "track":
		if err := needArgs(stub, 1); err != nil {
			return err
		}
		it, err := getItem(stub, args[0])
		if err != nil {
			return err
		}
		raw, err := json.Marshal(it)
		if err != nil {
			return err
		}
		stub.SetResult(raw)
		return nil
	case "manifest":
		// Read-only range scan over every registered item; returns the
		// sorted item IDs as JSON.
		if err := needArgs(stub, 0); err != nil {
			return err
		}
		items, err := stub.GetStateRange("item:", "item;") // ';' = ':'+1
		if err != nil {
			return err
		}
		ids := make([]string, 0, len(items))
		for k := range items {
			ids = append(ids, k[len("item:"):])
		}
		sort.Strings(ids)
		raw, err := json.Marshal(ids)
		if err != nil {
			return err
		}
		stub.SetResult(raw)
		return nil
	default:
		return fmt.Errorf("chaincode: supplychain has no function %q", stub.Function())
	}
}
