package metrics

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"fabricsharp/internal/protocol"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.P50() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Errorf("N = %d", h.N())
	}
	if h.Mean() != 50.5 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.P50() != 50 {
		t.Errorf("P50 = %v", h.P50())
	}
	if h.P95() != 95 {
		t.Errorf("P95 = %v", h.P95())
	}
	if h.P99() != 99 {
		t.Errorf("P99 = %v", h.P99())
	}
	if h.Max() != 100 {
		t.Errorf("Max = %v", h.Max())
	}
}

func TestHistogramAddAfterPercentile(t *testing.T) {
	var h Histogram
	h.Add(10)
	_ = h.P50()
	h.Add(1) // must re-sort lazily
	if h.P50() != 1 {
		t.Errorf("P50 after re-add = %v", h.P50())
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		var h Histogram
		for _, v := range raw {
			h.Add(v)
		}
		return h.P50() <= h.P95() && h.P95() <= h.P99() && h.P99() <= h.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestAbortTally(t *testing.T) {
	tally := AbortTally{}
	tally.Inc(protocol.MVCCConflict)
	tally.Inc(protocol.MVCCConflict)
	tally.Inc(protocol.AbortCycle)
	tally.Inc(protocol.Valid) // valid does not count toward Total
	if tally.Total() != 3 {
		t.Errorf("Total = %d", tally.Total())
	}
	s := tally.String()
	if !strings.Contains(s, "mvcc-conflict=2") || !strings.Contains(s, "cycle=1") {
		t.Errorf("String = %q", s)
	}
	// Busiest first.
	if strings.Index(s, "mvcc-conflict") > strings.Index(s, "cycle") {
		t.Errorf("ordering wrong: %q", s)
	}
}

func TestAbortTallyEmptyString(t *testing.T) {
	if s := (AbortTally{}).String(); s != "" {
		t.Errorf("empty tally renders %q", s)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(2)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*1000+8*2 {
		t.Errorf("Counter = %d", got)
	}
}

func TestGaugeTracksHighWater(t *testing.T) {
	var g Gauge
	g.Add(3)
	g.Add(4)
	g.Add(-5)
	if g.Value() != 2 {
		t.Errorf("Value = %d", g.Value())
	}
	if g.Max() != 7 {
		t.Errorf("Max = %d", g.Max())
	}
}

func TestGaugeConcurrentMax(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Errorf("Value = %d", g.Value())
	}
	if g.Max() < 1 || g.Max() > 8 {
		t.Errorf("Max = %d", g.Max())
	}
}

func TestSyncHistogram(t *testing.T) {
	var h SyncHistogram
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 100; i++ {
				h.Add(float64(i))
			}
		}()
	}
	wg.Wait()
	if h.N() != 400 {
		t.Errorf("N = %d", h.N())
	}
	if h.Mean() != 50.5 {
		t.Errorf("Mean = %v", h.Mean())
	}
	snap := h.Snapshot()
	if snap.P50() != 50 || snap.Max() != 100 {
		t.Errorf("snapshot P50 = %v Max = %v", snap.P50(), snap.Max())
	}
}

func TestSyncHistogramBoundedRetention(t *testing.T) {
	var h SyncHistogram
	const total = 3 * maxRetainedSamples
	for i := 0; i < total; i++ {
		h.Add(7)
	}
	if h.N() != total {
		t.Errorf("N = %d want %d", h.N(), total)
	}
	if h.Mean() != 7 {
		t.Errorf("Mean = %v", h.Mean())
	}
	snap := h.Snapshot()
	if got := snap.N(); got != maxRetainedSamples {
		t.Errorf("retained %d samples, want cap %d", got, maxRetainedSamples)
	}
}
