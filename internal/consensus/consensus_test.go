package consensus

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fabricsharp/internal/protocol"
)

func env(id string) Envelope {
	return Envelope{Tx: &protocol.Transaction{ID: protocol.TxID(id)}, SubmittedBy: "client"}
}

func collect(t *testing.T, ch <-chan Sequenced, n int) []Sequenced {
	t.Helper()
	out := make([]Sequenced, 0, n)
	timeout := time.After(5 * time.Second)
	for len(out) < n {
		select {
		case s, ok := <-ch:
			if !ok {
				t.Fatalf("stream closed after %d of %d", len(out), n)
			}
			out = append(out, s)
		case <-timeout:
			t.Fatalf("timed out after %d of %d", len(out), n)
		}
	}
	return out
}

func TestTotalOrderAcrossSubscribers(t *testing.T) {
	k := NewKafka()
	defer k.Close()
	ch1, cancel1 := k.Subscribe()
	defer cancel1()
	ch2, cancel2 := k.Subscribe()
	defer cancel2()

	// Concurrent submitters, like Orderer1 and Orderer2 in Figure 2a.
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := k.Submit(env(fmt.Sprintf("s%d-t%d", s, i))); err != nil {
					t.Error(err)
				}
			}
		}(s)
	}
	wg.Wait()

	a := collect(t, ch1, 100)
	b := collect(t, ch2, 100)
	for i := range a {
		if a[i].Offset != uint64(i) {
			t.Fatalf("offsets not dense: %d at %d", a[i].Offset, i)
		}
		if a[i].Env.Tx.ID != b[i].Env.Tx.ID {
			t.Fatalf("subscribers diverge at %d: %s vs %s", i, a[i].Env.Tx.ID, b[i].Env.Tx.ID)
		}
	}
}

func TestLateSubscriberReplays(t *testing.T) {
	k := NewKafka()
	defer k.Close()
	for i := 0; i < 10; i++ {
		if err := k.Submit(env(fmt.Sprintf("t%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ch, cancel := k.Subscribe()
	defer cancel()
	got := collect(t, ch, 10)
	for i, s := range got {
		if string(s.Env.Tx.ID) != fmt.Sprintf("t%d", i) {
			t.Fatalf("replay out of order at %d: %s", i, s.Env.Tx.ID)
		}
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	k := NewKafka()
	k.Close()
	if err := k.Submit(env("x")); err == nil {
		t.Error("submit after close succeeded")
	}
}

func TestCloseDrainsSubscribers(t *testing.T) {
	k := NewKafka()
	ch, cancel := k.Subscribe()
	defer cancel()
	k.Submit(env("a"))
	k.Submit(env("b"))
	k.Close()
	got := collect(t, ch, 2)
	if len(got) != 2 {
		t.Fatalf("got %d", len(got))
	}
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("unexpected extra message")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("channel not closed after Close")
	}
}

func TestCancelDetachesSubscriber(t *testing.T) {
	k := NewKafka()
	defer k.Close()
	ch, cancel := k.Subscribe()
	k.Submit(env("a"))
	collect(t, ch, 1)
	cancel()
	// Further submissions must not block even with the subscriber gone.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			k.Submit(env(fmt.Sprintf("flood%d", i)))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("submit blocked on a cancelled subscriber")
	}
	if k.Len() != 1001 {
		t.Errorf("log length = %d", k.Len())
	}
}
