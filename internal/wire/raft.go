package wire

// This file holds the Raft consensus message codecs (wire v3). These frames
// flow only between orderer replicas; the same canonical-encoding rules
// apply as everywhere else — fixed field order, one encoding per value,
// defensive decoding — so fault-injection tests can replay, duplicate, and
// truncate frames without ever tripping a panic.

import (
	"fmt"

	"fabricsharp/internal/consensus"
)

// appendEnvelope appends the canonical encoding of a consensus envelope:
// a presence flag plus transaction body, then the control fields.
func appendEnvelope(dst []byte, env *consensus.Envelope) []byte {
	if env.Tx == nil {
		dst = appendBool(dst, false)
	} else {
		dst = appendBool(dst, true)
		dst = appendBytes(dst, EncodeTransaction(env.Tx))
	}
	dst = appendString(dst, env.SubmittedBy)
	dst = appendU64(dst, env.CutBlock)
	dst = appendString(dst, env.Commitment)
	return appendBool(dst, env.Disclosure)
}

func decodeEnvelopeBody(d *decoder) consensus.Envelope {
	var env consensus.Envelope
	if d.bool() {
		body := d.take(int(d.u32()))
		if d.err == nil {
			sub := &decoder{buf: body}
			tx := decodeTransactionBody(sub)
			if err := sub.finish(); err != nil {
				d.fail("envelope tx: %v", err)
			} else {
				tx.RWSet.Precompute()
				env.Tx = tx
			}
		}
	}
	env.SubmittedBy = d.string()
	env.CutBlock = d.u64()
	env.Commitment = d.string()
	env.Disclosure = d.bool()
	return env
}

// minEnvelopeSize is the smallest envelope encoding: presence flag, two
// empty strings, CutBlock, Disclosure.
const minEnvelopeSize = 1 + 4 + 8 + 4 + 1

// EncodeRaftAppend renders an AppendEntries request canonically.
func EncodeRaftAppend(req *consensus.AppendRequest) []byte {
	dst := appendU64(nil, req.Term)
	dst = appendString(dst, req.LeaderID)
	dst = appendU64(dst, req.PrevIndex)
	dst = appendU64(dst, req.PrevTerm)
	dst = appendU64(dst, req.LeaderCommit)
	dst = appendU32(dst, uint32(len(req.Entries)))
	for i := range req.Entries {
		dst = appendU64(dst, req.Entries[i].Term)
		dst = appendEnvelope(dst, &req.Entries[i].Env)
	}
	return dst
}

// DecodeRaftAppend decodes an AppendEntries request.
func DecodeRaftAppend(b []byte) (*consensus.AppendRequest, error) {
	d := &decoder{buf: b}
	req := &consensus.AppendRequest{
		Term:         d.u64(),
		LeaderID:     d.string(),
		PrevIndex:    d.u64(),
		PrevTerm:     d.u64(),
		LeaderCommit: d.u64(),
	}
	if n := d.count(8 + minEnvelopeSize); n > 0 {
		req.Entries = make([]consensus.LogEntry, n)
		for i := range req.Entries {
			req.Entries[i].Term = d.u64()
			req.Entries[i].Env = decodeEnvelopeBody(d)
		}
	}
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("raft-append: %w", err)
	}
	return req, nil
}

// EncodeRaftAppendResp renders an AppendEntries response canonically.
func EncodeRaftAppendResp(resp consensus.AppendResponse) []byte {
	dst := appendString(nil, resp.From)
	dst = appendU64(dst, resp.Term)
	dst = appendBool(dst, resp.Success)
	return appendU64(dst, resp.MatchIndex)
}

// DecodeRaftAppendResp decodes an AppendEntries response.
func DecodeRaftAppendResp(b []byte) (consensus.AppendResponse, error) {
	d := &decoder{buf: b}
	resp := consensus.AppendResponse{
		From:       d.string(),
		Term:       d.u64(),
		Success:    d.bool(),
		MatchIndex: d.u64(),
	}
	if err := d.finish(); err != nil {
		return consensus.AppendResponse{}, fmt.Errorf("raft-append-resp: %w", err)
	}
	return resp, nil
}

// EncodeRaftVote renders a RequestVote canonically.
func EncodeRaftVote(req consensus.VoteRequest) []byte {
	dst := appendU64(nil, req.Term)
	dst = appendString(dst, req.CandidateID)
	dst = appendU64(dst, req.LastIndex)
	return appendU64(dst, req.LastTerm)
}

// DecodeRaftVote decodes a RequestVote.
func DecodeRaftVote(b []byte) (consensus.VoteRequest, error) {
	d := &decoder{buf: b}
	req := consensus.VoteRequest{
		Term:        d.u64(),
		CandidateID: d.string(),
		LastIndex:   d.u64(),
		LastTerm:    d.u64(),
	}
	if err := d.finish(); err != nil {
		return consensus.VoteRequest{}, fmt.Errorf("raft-vote: %w", err)
	}
	return req, nil
}

// EncodeRaftVoteResp renders a RequestVote response canonically.
func EncodeRaftVoteResp(resp consensus.VoteResponse) []byte {
	dst := appendString(nil, resp.From)
	dst = appendU64(dst, resp.Term)
	return appendBool(dst, resp.Granted)
}

// DecodeRaftVoteResp decodes a RequestVote response.
func DecodeRaftVoteResp(b []byte) (consensus.VoteResponse, error) {
	d := &decoder{buf: b}
	resp := consensus.VoteResponse{
		From:    d.string(),
		Term:    d.u64(),
		Granted: d.bool(),
	}
	if err := d.finish(); err != nil {
		return consensus.VoteResponse{}, fmt.Errorf("raft-vote-resp: %w", err)
	}
	return resp, nil
}
