package core

import (
	"fmt"
	"math/rand"
	"testing"

	"fabricsharp/internal/kvstore"
	"fabricsharp/internal/seqno"
)

func newKVIndexForTest(t *testing.T) *KVIndex {
	t.Helper()
	db, err := kvstore.Open(kvstore.Options{}) // in-memory
	if err != nil {
		t.Fatal(err)
	}
	return NewKVIndex(db)
}

func testIndexBasics(t *testing.T, idx VersionIndex) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(idx.Put("A", seqno.Commit(3, 2), "txn1"))
	must(idx.Put("A", seqno.Commit(4, 1), "txn7"))
	must(idx.Put("A", seqno.Commit(5, 3), "txn9"))
	must(idx.Put("B", seqno.Commit(4, 2), "txn8"))

	// Last
	if id, ok, _ := idx.Last("A"); !ok || id != "txn9" {
		t.Errorf("Last(A) = %v,%v", id, ok)
	}
	if _, ok, _ := idx.Last("missing"); ok {
		t.Error("Last(missing) found something")
	}
	// Before: the paper's CW.Before(key, seq) — last committed strictly
	// earlier than seq.
	if id, ok, _ := idx.Before("A", seqno.Snapshot(3)); !ok || id != "txn1" {
		t.Errorf("Before(A,(4,0)) = %v,%v want txn1", id, ok)
	}
	if _, ok, _ := idx.Before("A", seqno.Commit(3, 2)); ok {
		t.Error("Before at the exact first seq should be empty")
	}
	// After: CW[key][seq:].
	got, _ := idx.After("A", seqno.Snapshot(3))
	if fmt.Sprint(got) != "[txn7 txn9]" {
		t.Errorf("After(A,(4,0)) = %v", got)
	}
	got, _ = idx.After("A", seqno.Seq{})
	if fmt.Sprint(got) != "[txn1 txn7 txn9]" {
		t.Errorf("After(A,zero) = %v", got)
	}
	// All
	got, _ = idx.All("B")
	if fmt.Sprint(got) != "[txn8]" {
		t.Errorf("All(B) = %v", got)
	}
	// PruneBefore drops block < 4.
	must(idx.PruneBefore(4))
	got, _ = idx.All("A")
	if fmt.Sprint(got) != "[txn7 txn9]" {
		t.Errorf("after prune All(A) = %v", got)
	}
	if id, ok, _ := idx.Last("B"); !ok || id != "txn8" {
		t.Errorf("prune damaged B: %v,%v", id, ok)
	}
}

func TestMemIndexBasics(t *testing.T) { testIndexBasics(t, NewMemIndex()) }
func TestKVIndexBasics(t *testing.T)  { testIndexBasics(t, newKVIndexForTest(t)) }

func TestIndexDifferential(t *testing.T) {
	// MemIndex and KVIndex must agree on every query under a random
	// operation stream — the kvstore-backed index is the LevelDB-equivalent
	// layout, the memory index is the model.
	mem := NewMemIndex()
	kv := newKVIndexForTest(t)
	rng := rand.New(rand.NewSource(5))
	keys := []string{"A", "B", "acct:17", "checking:alice"}
	seq := seqno.Seq{Block: 1, Pos: 1}
	for i := 0; i < 500; i++ {
		key := keys[rng.Intn(len(keys))]
		id := TxID(fmt.Sprintf("t%d", i))
		if err := mem.Put(key, seq, id); err != nil {
			t.Fatal(err)
		}
		if err := kv.Put(key, seq, id); err != nil {
			t.Fatal(err)
		}
		// advance commit seq
		if rng.Intn(3) == 0 {
			seq = seqno.Commit(seq.Block+1, 1)
		} else {
			seq = seqno.Commit(seq.Block, seq.Pos+1)
		}
		if rng.Intn(40) == 0 {
			h := seq.Block / 2
			if err := mem.PruneBefore(h); err != nil {
				t.Fatal(err)
			}
			if err := kv.PruneBefore(h); err != nil {
				t.Fatal(err)
			}
		}
		// Compare queries at random probe points.
		probe := seqno.Commit(uint64(rng.Intn(int(seq.Block)+1)), uint32(rng.Intn(4)))
		for _, k := range keys {
			ma, _ := mem.After(k, probe)
			ka, _ := kv.After(k, probe)
			if fmt.Sprint(ma) != fmt.Sprint(ka) {
				t.Fatalf("After(%q,%v) diverged: %v vs %v", k, probe, ma, ka)
			}
			mb, mok, _ := mem.Before(k, probe)
			kb, kok, _ := kv.Before(k, probe)
			if mok != kok || mb != kb {
				t.Fatalf("Before(%q,%v) diverged: %v,%v vs %v,%v", k, probe, mb, mok, kb, kok)
			}
			ml, mok2, _ := mem.Last(k)
			kl, kok2, _ := kv.Last(k)
			if mok2 != kok2 || ml != kl {
				t.Fatalf("Last(%q) diverged", k)
			}
			mall, _ := mem.All(k)
			kall, _ := kv.All(k)
			if fmt.Sprint(mall) != fmt.Sprint(kall) {
				t.Fatalf("All(%q) diverged: %v vs %v", k, mall, kall)
			}
		}
	}
}

func TestMemIndexOutOfOrderInsert(t *testing.T) {
	idx := NewMemIndex()
	idx.Put("K", seqno.Commit(5, 1), "late")
	idx.Put("K", seqno.Commit(3, 1), "early") // defensive path
	got, _ := idx.All("K")
	if fmt.Sprint(got) != "[early late]" {
		t.Errorf("All = %v", got)
	}
}

func TestManagerWithKVIndices(t *testing.T) {
	// The manager must behave identically over kvstore-backed indices.
	mkManager := func(kvBacked bool) *Manager {
		opts := Options{}
		if kvBacked {
			dbw, _ := kvstore.Open(kvstore.Options{})
			dbr, _ := kvstore.Open(kvstore.Options{})
			opts.CW = NewKVIndex(dbw)
			opts.CR = NewKVIndex(dbr)
		}
		return NewManager(opts)
	}
	run := func(m *Manager) []string {
		var log []string
		height := uint64(0)
		for i := 0; i < 150; i++ {
			r := fmt.Sprintf("k%d", (i*3)%7)
			w := fmt.Sprintf("k%d", (i*5)%7)
			code, err := m.OnArrival(TxID(fmt.Sprintf("t%d", i)), height, []string{r}, []string{w})
			if err != nil {
				t.Fatal(err)
			}
			log = append(log, fmt.Sprintf("%d:%v", i, code))
			if (i+1)%25 == 0 {
				ids, block, err := m.OnBlockFormation()
				if err != nil {
					t.Fatal(err)
				}
				if len(ids) > 0 {
					height = block
				}
				log = append(log, fmt.Sprint(ids))
			}
		}
		return log
	}
	a := run(mkManager(false))
	b := run(mkManager(true))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("kv-backed manager diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
