package analysis

import (
	"path/filepath"
	"testing"
)

// TestRealModuleIsClean is the integration gate: the shipped tree must
// carry zero unsuppressed findings, zero machinery errors (no stale or
// malformed //sharp: directives, no type errors), and a suppression
// inventory that byte-agrees with the tree. A violation introduced
// anywhere in the module fails this test the same way `sharpvet ./...`
// fails in CI.
func TestRealModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	res := Run(mod, Analyzers())
	for _, e := range res.Errors {
		t.Errorf("machinery error: %v", e)
	}
	for _, d := range res.Unsuppressed() {
		t.Errorf("unsuppressed finding: %v", d)
	}
	if len(res.Suppressed()) == 0 {
		t.Error("expected a non-empty suppression baseline (the tree carries reviewed //sharp: directives)")
	}

	diffs, err := DiffInventory(filepath.Join(root, "sharpvet.inventory"), res.Directives)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diffs {
		t.Errorf("inventory out of sync: %s (regenerate with `go run ./cmd/sharpvet -write-inventory ./...`)", d)
	}

	// Every suppression must carry prose: the directive parser enforces a
	// non-empty reason, so assert the invariant held end to end.
	for _, dir := range res.Directives {
		if dir.Reason == "" {
			t.Errorf("%s: directive with empty reason survived parsing", dir.File)
		}
	}
}
