// Command sharpvet mechanically enforces the replica-identical determinism
// contract (docs/determinism.md): it loads the whole module with the pure
// stdlib toolchain (go/parser + go/types), resolves types, and runs the
// determinism & concurrency analyzer suite from internal/analysis over the
// consensus-critical packages.
//
// Usage:
//
//	go run ./cmd/sharpvet ./...              # gate: exit 0 iff clean
//	go run ./cmd/sharpvet -list ./...        # also print the suppression inventory
//	go run ./cmd/sharpvet -write-inventory ./...  # regenerate sharpvet.inventory
//
// Exit status 0 requires all of: zero unsuppressed diagnostics, no
// malformed or stale //sharp: directives, no type errors, and the
// checked-in suppression inventory byte-agreeing with the tree.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fabricsharp/internal/analysis"
)

func main() {
	inventory := flag.String("inventory", "sharpvet.inventory", "suppression inventory path, relative to the module root")
	write := flag.Bool("write-inventory", false, "regenerate the inventory from the tree's //sharp: directives and exit")
	list := flag.Bool("list", false, "print the suppression inventory after a clean run")
	contract := flag.Bool("contract", false, "print the deterministic package contract and exit")
	flag.Usage = usage
	flag.Parse()

	if *contract {
		fmt.Println("replica-identical contract covers:")
		for _, p := range analysis.DeterministicPackages() {
			fmt.Println("  ", p)
		}
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	res := analysis.Run(mod, analysis.Analyzers())
	invPath := filepath.Join(root, *inventory)

	if *write {
		if err := analysis.WriteInventory(invPath, res.Directives); err != nil {
			fatal(err)
		}
		fmt.Printf("sharpvet: wrote %d suppressions to %s\n", len(res.Directives), invPath)
		// Fall through: a regenerated inventory doesn't excuse live
		// findings, so the gate below still applies.
	}

	failed := false
	for _, err := range res.Errors {
		fmt.Fprintln(os.Stderr, "sharpvet:", err)
		failed = true
	}
	unsuppressed := res.Unsuppressed()
	for _, d := range unsuppressed {
		fmt.Fprintln(os.Stderr, d)
		failed = true
	}
	diffs, err := analysis.DiffInventory(invPath, res.Directives)
	if err != nil {
		fatal(err)
	}
	for _, d := range diffs {
		fmt.Fprintf(os.Stderr, "sharpvet: inventory out of sync (%s): run `go run ./cmd/sharpvet -write-inventory ./...`\n", d)
		failed = true
	}

	if failed {
		fmt.Fprintf(os.Stderr, "sharpvet: %d unsuppressed finding(s), %d machinery error(s), %d inventory drift(s)\n",
			len(unsuppressed), len(res.Errors), len(diffs))
		os.Exit(1)
	}
	fmt.Printf("sharpvet: clean — %d suppressed finding(s) across %d package(s), 0 unsuppressed\n",
		len(res.Suppressed()), len(mod.Packages))
	if *list {
		fmt.Print(analysis.FormatInventory(res.Directives))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sharpvet [flags] ./...")
	fmt.Fprintln(os.Stderr, "enforces the replica-identical determinism contract (docs/determinism.md)")
	fmt.Fprintln(os.Stderr, "analyzers:")
	for _, a := range analysis.Analyzers() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sharpvet:", err)
	os.Exit(1)
}
