package fabric

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/sched"
)

// TestCrossPeerValidationAgreement hammers an MVCC system with a contended
// mixed workload and then asserts the property the old inline commit only
// assumed: every peer, validating independently on its own committer,
// produced identical per-block validation codes, identical chains, and an
// identical state fingerprint. (Before the pipeline split, cut() silently
// kept only the first peer's codes.)
func TestCrossPeerValidationAgreement(t *testing.T) {
	for _, system := range []sched.System{sched.SystemFabric, sched.SystemFabricPP, sched.SystemSharp} {
		system := system
		t.Run(string(system), func(t *testing.T) {
			n := newNet(t, Options{System: system, BlockSize: 8})
			client, err := n.NewClient("agree")
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < 6; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 12; i++ {
						switch i % 3 {
						case 0: // hot-key read-modify-write: MVCC/cycle aborts
							client.Submit("kv", "rmw", "hot", "1")
						case 1: // disjoint writes: always valid
							client.Submit("kv", "put", fmt.Sprintf("cold-%d-%d", w, i), "v")
						default: // warm keys shared by workers
							client.Submit("kv", "rmw", fmt.Sprintf("warm%d", i%4), "1")
						}
					}
				}(w)
			}
			wg.Wait()
			if !n.WaitIdle(10 * time.Second) {
				t.Fatal("network did not go idle")
			}
			if err := n.Err(); err != nil {
				t.Fatal(err)
			}

			ref := n.Peer(0)
			if ref.Chain().Len() == 0 {
				t.Fatal("no blocks committed")
			}
			refFP := ref.State().StateFingerprint()
			for i := 1; i < 4; i++ {
				p := n.Peer(i)
				if !bytes.Equal(p.Chain().TipHash(), ref.Chain().TipHash()) {
					t.Fatalf("peer %d chain tip diverged", i)
				}
				if got := p.State().StateFingerprint(); got != refFP {
					t.Fatalf("peer %d state fingerprint diverged", i)
				}
				// Block-by-block: validation codes must agree exactly.
				ref.Chain().ForEach(func(rb *ledger.Block) bool {
					pb, ok := p.Chain().Get(rb.Header.Number)
					if !ok {
						t.Fatalf("peer %d missing block %d", i, rb.Header.Number)
					}
					if len(pb.Validation) != len(rb.Validation) {
						t.Fatalf("peer %d block %d: %d codes vs %d", i, rb.Header.Number, len(pb.Validation), len(rb.Validation))
					}
					for j := range rb.Validation {
						if pb.Validation[j] != rb.Validation[j] {
							t.Fatalf("peer %d block %d tx %d: code %v vs lead %v",
								i, rb.Header.Number, j, pb.Validation[j], rb.Validation[j])
						}
					}
					return true
				})
			}
			// The contended workload actually exercised the abort paths on an
			// MVCC system (otherwise the agreement above is vacuous).
			if system == sched.SystemFabric {
				aborts := 0
				ref.Chain().ForEach(func(b *ledger.Block) bool {
					for _, c := range b.Validation {
						if c != protocol.Valid {
							aborts++
						}
					}
					return true
				})
				if aborts == 0 {
					t.Error("no validation aborts under contention — workload not contended?")
				}
			}
		})
	}
}

// TestPersistenceResumeThroughCommitter boots a durable network, commits
// contended blocks through the new pipeline, restarts it, and checks that
// heights, fingerprints, per-peer replay, and scheduler fast-forward all
// line up.
func TestPersistenceResumeThroughCommitter(t *testing.T) {
	dir := t.TempDir()
	boot := func() *Network {
		n, err := NewNetwork(Options{
			System:       sched.SystemFabric, // MVCC path: aborted txs persist in block metadata
			BlockSize:    4,
			BlockTimeout: 50 * time.Millisecond,
			DataDir:      dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	n1 := boot()
	c1, err := n1.NewClient("writer")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				c1.Submit("kv", "rmw", fmt.Sprintf("slot%d", i%3), "1") // contended
				c1.Submit("kv", "put", fmt.Sprintf("own-%d-%d", w, i), "v")
			}
		}(w)
	}
	wg.Wait()
	if !n1.WaitIdle(10 * time.Second) {
		t.Fatal("session 1 did not go idle")
	}
	height1 := n1.Height()
	tip1 := n1.Peer(0).Chain().TipHash()
	fp1 := n1.Peer(0).State().StateFingerprint()
	hadAborts := false
	n1.Peer(0).Chain().ForEach(func(b *ledger.Block) bool {
		for _, c := range b.Validation {
			if c != protocol.Valid {
				hadAborts = true
			}
		}
		return true
	})
	n1.Close()
	if height1 == 0 {
		t.Fatal("no blocks in session 1")
	}
	if !hadAborts {
		t.Error("stored chain carries no aborted transactions — contention missing")
	}

	n2 := boot()
	defer n2.Close()
	if got := n2.Height(); got != height1 {
		t.Fatalf("resumed height %d want %d", got, height1)
	}
	if !bytes.Equal(n2.Peer(0).Chain().TipHash(), tip1) {
		t.Fatal("resumed chain tip differs")
	}
	// Every peer — durable peer 0 and the in-memory replicas replayed
	// through their committers — matches the pre-restart state exactly.
	for i := 0; i < 4; i++ {
		if got := n2.Peer(i).State().StateFingerprint(); got != fp1 {
			t.Fatalf("peer %d fingerprint differs after resume", i)
		}
		if h := n2.Peer(i).State().Height(); h != height1 {
			t.Fatalf("peer %d height %d want %d", i, h, height1)
		}
		if err := n2.Peer(i).Chain().Verify(); err != nil {
			t.Fatalf("peer %d chain: %v", i, err)
		}
	}
	// Scheduler fast-forward: the next committed block extends the stored
	// height, and a fresh rmw against restored state validates cleanly.
	c2, err := n2.NewClient("resumer")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c2.MustSubmit("kv", "rmw", "slot0", "1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Block <= height1 {
		t.Fatalf("post-restart block %d does not extend height %d", res.Block, height1)
	}
	if !n2.WaitIdle(5 * time.Second) {
		t.Fatal("session 2 did not go idle")
	}
	if err := n2.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestCommitPipelineStats checks the new instrumentation is actually wired:
// blocks flow through every committer, latency samples accumulate, and on
// an MVCC system the conflict partition reports its parallelism.
func TestCommitPipelineStats(t *testing.T) {
	n := newNet(t, Options{System: sched.SystemFabric, BlockSize: 6})
	client, err := n.NewClient("stats")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 18; i++ {
		if _, err := client.MustSubmit("kv", "put", fmt.Sprintf("s%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if !n.WaitIdle(5 * time.Second) {
		t.Fatal("not idle")
	}
	blocks := uint64(n.Peer(0).Chain().Len())
	for i := 0; i < 4; i++ {
		st := n.Peer(i).Committer().Stats()
		if st.BlocksCommitted.Value() != blocks {
			t.Errorf("peer %d: BlocksCommitted = %d want %d", i, st.BlocksCommitted.Value(), blocks)
		}
		if st.TxsValidated.Value() == 0 {
			t.Errorf("peer %d: no transactions validated", i)
		}
		if st.CommitLatencyMS.N() != int(blocks) {
			t.Errorf("peer %d: %d latency samples want %d", i, st.CommitLatencyMS.N(), blocks)
		}
		// Disjoint-key puts: each block's transactions form independent
		// conflict groups, so parallelism was available and recorded.
		if st.ValidationGroups.Value() == 0 {
			t.Errorf("peer %d: no validation groups recorded on an MVCC system", i)
		}
		if st.QueueDepth.Value() != 0 {
			t.Errorf("peer %d: delivery queue not drained (%d)", i, st.QueueDepth.Value())
		}
	}
}
