package fabricsharp

// One benchmark per table/figure of the paper's evaluation. Each runs the
// corresponding experiment sweep on the deterministic simulator (quick
// windows) and reports the headline series as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. cmd/benchall prints the full tables.

import (
	"fmt"
	"math/rand"
	"testing"

	"fabricsharp/internal/bench"
	"fabricsharp/internal/commit"
	"fabricsharp/internal/identity"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/network"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/sim"
	"fabricsharp/internal/statedb"
	"fabricsharp/internal/validation"
	"fabricsharp/internal/workload"
)

var benchOpts = bench.Options{Quick: true, Seed: 42}

func reportTable(b *testing.B, tables ...*bench.Table) {
	b.Helper()
	for _, t := range tables {
		b.Log("\n" + t.String())
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, Figure1(benchOpts))
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, Table1())
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, Figure10(benchOpts)...)
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, Figure11(benchOpts)...)
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, Figure12(benchOpts)...)
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, Figure13(benchOpts)...)
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, Figure14(benchOpts)...)
	}
}

func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, Figure15(benchOpts))
	}
}

func BenchmarkReorderCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, ReorderCost())
	}
}

// BenchmarkSingleRunPerSystem measures one default-configuration run per
// system and reports effective throughput — the quickest way to see the
// paper's headline ordering (Fabric# > Fabric++ > Fabric > Focc-l > Focc-s
// at the default contention).
func BenchmarkSingleRunPerSystem(b *testing.B) {
	for _, system := range sched.Systems() {
		system := system
		b.Run(string(system), func(b *testing.B) {
			var eff float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(42))
				w, err := workload.NewModifiedSmallbank(rng, 0, 0.1, 0.1)
				if err != nil {
					b.Fatal(err)
				}
				res, err := network.Run(network.Config{
					System:      system,
					Workload:    w,
					Seed:        42,
					Duration:    5 * sim.Second,
					RequestRate: 700,
					BlockSize:   100,
				})
				if err != nil {
					b.Fatal(err)
				}
				eff = res.EffectiveTPS
			}
			b.ReportMetric(eff, "effective-tps")
		})
	}
}

// BenchmarkOrdering drives each scheduler's bare OnArrival/OnBlockFormation
// hot path over the two canonical SmallBank stream shapes (contended and
// conflict-free), reporting allocations — the perf-trajectory benchmark whose
// results BENCH_PR2.json records (see docs/perf.md).
func BenchmarkOrdering(b *testing.B) {
	const blockSize = 100
	for _, system := range sched.Systems() {
		for _, shape := range bench.OrderingShapes() {
			system, shape := system, shape
			b.Run(fmt.Sprintf("%s/%s", system, shape.Name), func(b *testing.B) {
				txs := shape.Stream(b.N, 42)
				sc, err := sched.New(system, sched.Options{CompactEvery: shape.CompactEvery})
				if err != nil {
					b.Fatal(err)
				}
				height := uint64(0)
				b.ReportAllocs()
				b.ResetTimer()
				for _, tx := range txs {
					tx.SnapshotBlock = height
					if _, err := sc.OnArrival(tx); err != nil {
						b.Fatal(err)
					}
					if sc.PendingCount() >= blockSize {
						fr, err := sc.OnBlockFormation()
						if err != nil {
							b.Fatal(err)
						}
						if len(fr.Ordered) > 0 {
							height = fr.Block
						}
					}
				}
			})
		}
	}
}

// BenchmarkSharpArrival micro-benchmarks the core manager's arrival path
// (Algorithm 2 + Algorithm 4) under a contended stream.
func BenchmarkSharpArrival(b *testing.B) {
	s := sched.NewSharp(sched.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := mkBenchTx(fmt.Sprintf("t%d", i), i)
		if _, err := s.OnArrival(tx); err != nil {
			b.Fatal(err)
		}
		if s.PendingCount() >= 100 {
			if _, err := s.OnBlockFormation(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCommitThroughput compares the retired sequential commit path
// (validation.ValidateAndCommit, the reference implementation) against the
// commit pipeline's parallel validator on conflict-free blocks — the
// workload where intra-block parallelism should pay. Each transaction
// carries a real ed25519 endorsement, so the benchmark measures what a peer
// actually spends per block: signature checks, the MVCC rule, and the
// batched state apply.
func BenchmarkCommitThroughput(b *testing.B) {
	msp := identity.NewService()
	endorser, err := msp.Enroll("peer0", identity.RolePeer)
	if err != nil {
		b.Fatal(err)
	}
	policy := identity.SignedBy("peer0")

	mkBlockTxs := func(txCount int) []*protocol.Transaction {
		txs := make([]*protocol.Transaction, txCount)
		for i := range txs {
			tx := &protocol.Transaction{
				ID: protocol.TxID(fmt.Sprintf("t%d", i)),
				RWSet: protocol.RWSet{
					// A read of a never-written key (fresh forever) plus a
					// write to the transaction's own key: conflict-free.
					Reads:  []protocol.ReadItem{{Key: fmt.Sprintf("ro%d", i)}},
					Writes: []protocol.WriteItem{{Key: fmt.Sprintf("acct%d", i), Value: []byte("balance")}},
				},
			}
			tx.Endorsements = []protocol.Endorsement{{
				EndorserID: endorser.ID,
				Signature:  endorser.Sign(tx.Digest()),
			}}
			txs[i] = tx
		}
		return txs
	}

	// Both arms would report bogus throughput if a regression started
	// aborting transactions (less work per block); fail instead.
	allValid := func(b *testing.B, codes []protocol.ValidationCode) {
		b.Helper()
		for i, c := range codes {
			if c != protocol.Valid {
				b.Fatalf("conflict-free tx %d validated as %v", i, c)
			}
		}
	}

	for _, txCount := range []int{8, 64, 256} {
		txs := mkBlockTxs(txCount)
		blockFor := func(num uint64) *ledger.Block {
			return &ledger.Block{Header: ledger.Header{Number: num}, Transactions: txs}
		}
		b.Run(fmt.Sprintf("sequential/%dtx", txCount), func(b *testing.B) {
			db, err := statedb.New(statedb.Options{})
			if err != nil {
				b.Fatal(err)
			}
			opts := validation.Options{MVCC: true, MSP: msp, Policy: policy}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				codes, err := validation.ValidateAndCommit(db, blockFor(uint64(i+1)), opts)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					allValid(b, codes)
				}
			}
			b.ReportMetric(float64(txCount)*float64(b.N)/b.Elapsed().Seconds(), "tx/s")
		})
		b.Run(fmt.Sprintf("parallel/%dtx", txCount), func(b *testing.B) {
			db, err := statedb.New(statedb.Options{})
			if err != nil {
				b.Fatal(err)
			}
			opts := commit.Options{Options: validation.Options{MVCC: true, MSP: msp, Policy: policy}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blk := blockFor(uint64(i + 1))
				res := commit.ValidateBlock(db, blk, opts)
				if err := db.ApplyBlock(blk.Header.Number, res.Writes); err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					allValid(b, res.Codes)
				}
			}
			b.ReportMetric(float64(txCount)*float64(b.N)/b.Elapsed().Seconds(), "tx/s")
		})
	}
}

// BenchmarkValidationMVCC micro-benchmarks the validation phase.
func BenchmarkValidationMVCC(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w, err := workload.NewModifiedSmallbank(rng, 0, 0.1, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := network.Run(network.Config{
		System: sched.SystemFabric, Workload: w, Seed: 1,
		Duration: 2 * sim.Second, RequestRate: 400, BlockSize: 50,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := network.VerifySerializability(res); err != nil {
			b.Fatal(err)
		}
	}
}
