package fabric

import (
	"fmt"
	"runtime"
	"time"

	"fabricsharp/internal/consensus"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/reexec"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/trace"
	"fabricsharp/internal/validation"
)

// orderer is one replicated orderer: it consumes the consensus stream, runs
// its scheduler (Algorithm 2 on arrival, Algorithm 3 at formation for
// Sharp), seals blocks on its own hash chain, and — when it is the lead
// replica — fans them out to the peers' committers. Because every replica
// runs the same deterministic scheduler over the same stream, all orderer
// chains are identical (the agreement property of Section 3.5, asserted in
// tests).
//
// Commit feedback is a pure function of the stream: right after sealing
// block N, every replica runs the shadow validator (ComputeVerdicts over a
// value-free ShadowState) to derive the exact codes the peers will compute,
// feeds them to its own scheduler's OnBlockCommitted, and embeds them in the
// sealed block. This makes the agreement property exact even for schedulers
// whose block contents depend on verdicts (Focc-l's doomed-transaction
// detection): lead and followers see identical feedback at identical stream
// positions. The peers' committers assert byte-equality against the
// embedded codes, so a drift between the two derivations fails loudly.
//
// The orderer never touches peer state: delivery is a channel send, and
// consensus-stream consumption stays pipelined with peer commits.
type orderer struct {
	net       *Network
	name      string
	scheduler sched.Scheduler
	chain     *ledger.Chain
	deliver   bool
	// shadow is the replica's version state (value-tracking when rescue is
	// on); vopts carries the same validation switches the peers run, so
	// ComputeVerdicts here and ValidateBlock there are the same function
	// over the same inputs. rescue enables the post-order re-execution pass
	// at cut time, mirroring the peers' committer phase 3.
	shadow *validation.ShadowState
	vopts  validation.Options
	rescue bool
	// seen dedups TxIDs. Entries are bucketed by the block being assembled
	// when they were first seen and evicted DedupHorizon sealed blocks
	// later — eviction happens at cut time, a stream-determined position, so
	// every replica's seen-set stays identical. seenFloor is the lowest
	// bucket not yet evicted.
	seen        map[protocol.TxID]bool
	seenByBlock map[uint64][]protocol.TxID
	seenFloor   uint64
	broker      *CommitmentBroker // non-nil when the network runs hash commitments
}

func (o *orderer) run() {
	defer o.net.wg.Done()
	stream, cancel := o.net.kafka.Subscribe()
	defer cancel()
	//sharp:allow seaminject block-cut timer only proposes TTC cut markers into the consensus stream; sealed output remains a pure function of that stream
	timer := time.NewTimer(o.net.opts.BlockTimeout)
	defer timer.Stop()
	timerArmed := false
	disarm := func() {
		if timerArmed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timerArmed = false
	}
	arm := func() {
		disarm()
		timer.Reset(o.net.opts.BlockTimeout)
		timerArmed = true
	}

	for {
		// Fatal check first, non-blocking: select picks ready cases at
		// random, so without this a busy consensus stream could keep
		// winning over the closed fatalCh and the orderer would go on
		// driving a faulted scheduler.
		select {
		case <-o.net.fatalCh:
			return
		default:
		}
		select {
		case <-o.net.done:
			return
		case <-o.net.fatalCh:
			// A poisoned block or scheduler fault elsewhere: stop consuming
			// rather than extending a chain nobody will commit.
			return
		case <-timer.C:
			timerArmed = false
			if o.scheduler.PendingCount() > 0 {
				// Do not cut locally: post a time-to-cut marker through
				// consensus so every replica cuts at the same stream
				// position (deterministic block boundaries). The submit is
				// best-effort — on a Raft follower it fails with ErrNotLeader
				// by design (the leader's replica proposes the marker) — so
				// re-arm and keep proposing until the cut lands. Without the
				// retry a replica that fired as a follower and later won an
				// election would sit on pending transactions forever.
				_ = o.net.kafka.Submit(consensusCutMarker(o.name, o.nextCutBlock()))
				arm()
			}
		case seq, ok := <-stream:
			if !ok {
				// Consensus closed: cut the tail so waiters resolve.
				if o.scheduler.PendingCount() > 0 {
					o.cut()
				}
				return
			}
			if seq.Env.Commitment != "" {
				// Phase-1 hash commitment (Section 3.5): only the digest's
				// position is fixed now.
				if o.broker != nil {
					o.broker.Commit(seq.Env.Commitment)
				}
				continue
			}
			if seq.Env.Tx == nil {
				// Time-to-cut marker. Cut if it targets the block still
				// being assembled; stale markers (another replica already
				// triggered the cut, or the block filled up) are ignored.
				if seq.Env.CutBlock == o.nextCutBlock() && o.scheduler.PendingCount() > 0 {
					o.cut()
					disarm()
				}
				continue
			}
			if seq.Env.Disclosure && o.broker != nil {
				// Phase-2 payload reveal: process whatever became
				// releasable, in commitment order.
				released, err := o.broker.Disclose(seq.Env.Tx)
				if err != nil {
					// Disclosure without (or not matching) a commitment:
					// the client broke its security commitment.
					if o.deliver {
						o.net.resolve(seq.Env.Tx.ID, TxResult{TxID: seq.Env.Tx.ID, Code: protocol.EndorsementFailure})
					}
					continue
				}
				for _, tx := range released {
					o.processArrival(tx, arm, disarm)
				}
				continue
			}
			o.processArrival(seq.Env.Tx, arm, disarm)
		}
	}
}

// processArrival runs one transaction through dedup and the scheduler,
// cutting a block when the batch fills.
func (o *orderer) processArrival(tx *protocol.Transaction, arm, disarm func()) {
	if o.seen[tx.ID] {
		if o.deliver {
			o.net.resolve(tx.ID, TxResult{TxID: tx.ID, Code: protocol.AbortDuplicate})
		}
		return
	}
	o.seen[tx.ID] = true
	bucket := o.nextCutBlock()
	o.seenByBlock[bucket] = append(o.seenByBlock[bucket], tx.ID)
	code, err := o.scheduler.OnArrival(tx)
	if err != nil {
		o.net.fail(fmt.Errorf("fabric: orderer %s arrival: %w", o.name, err))
		return
	}
	if code != protocol.Valid {
		if o.deliver {
			o.net.resolve(tx.ID, TxResult{TxID: tx.ID, Code: code})
		}
		return
	}
	if o.deliver {
		// Stage telemetry (lead replica only, so one event per tx): the
		// scheduler admitted the transaction from the consensus stream.
		o.net.opts.Tracer.Record(string(tx.ID), trace.StageOrder, 0)
	}
	if o.scheduler.PendingCount() >= o.net.opts.BlockSize {
		o.cut()
		disarm()
	} else if o.scheduler.PendingCount() == 1 {
		arm()
	}
}

// nextCutBlock returns the number of the block currently being assembled.
func (o *orderer) nextCutBlock() uint64 {
	return uint64(o.chain.Len()) + 1
}

// consensusCutMarker builds a TTC control envelope.
func consensusCutMarker(from string, block uint64) (env consensus.Envelope) {
	env.SubmittedBy = from
	env.CutBlock = block
	return env
}

// evictSeen drops dedup entries first seen while assembling blocks at least
// DedupHorizon sealed blocks ago. Sealed-block count is a pure function of
// the stream, so eviction — and therefore the dedup decision for any future
// TxID — is identical on every replica. A duplicate resubmitted after its
// original fell past the horizon is re-admitted; the horizon bounds the map
// for sustained million-transaction runs and is sized so that only a client
// deliberately replaying ancient transactions can cross it.
func (o *orderer) evictSeen(sealed uint64) {
	horizon := o.net.opts.DedupHorizon
	if sealed < horizon {
		return
	}
	for b := o.seenFloor; b+horizon <= sealed; b++ {
		for _, id := range o.seenByBlock[b] {
			delete(o.seen, id)
		}
		delete(o.seenByBlock, b)
		o.seenFloor = b + 1
	}
}

// cut forms a block, seals it on the orderer's chain with the shadow
// verdicts embedded, feeds those verdicts to the scheduler, and (lead only)
// fans the block out to every peer's committer. Ordering never waits for
// validation: the only way this blocks is backpressure from a full delivery
// queue.
//
// The cut is also where intern-table epoch compaction fires (inside
// OnBlockFormation, when Options.CompactEvery is set): a cut lands at the
// same consensus-stream position on every replica, which is what makes the
// KeyID remappings replica-deterministic. The shadow validator's state is
// string-keyed and unaffected.
func (o *orderer) cut() {
	res, err := o.scheduler.OnBlockFormation()
	if err != nil {
		o.net.fail(fmt.Errorf("fabric: orderer %s formation: %w", o.name, err))
		return
	}
	for _, d := range res.DroppedTxs {
		if o.deliver {
			o.net.resolve(d.Tx.ID, TxResult{TxID: d.Tx.ID, Code: d.Code})
		}
	}
	if len(res.Ordered) == 0 {
		return
	}
	num := o.nextCutBlock()
	if res.Block != num {
		o.net.fail(fmt.Errorf("fabric: orderer %s block numbering drifted: scheduler %d, chain %d", o.name, res.Block, num))
		return
	}
	// The shadow validation pass: the same verdict function the peers run,
	// over the value-free version state this replica has accumulated from
	// the stream alone. Synchronous on every replica, so the scheduler
	// receives feedback for block N before any input that follows it. The
	// endorsement phase — ed25519 verification, the dominant CPU cost — is
	// a per-transaction pure function, so it fans out across cores; only
	// the overlay-coupled MVCC pass is serial.
	endorseFailed := validation.PrecheckEndorsements(res.Ordered, o.vopts, runtime.GOMAXPROCS(0))
	codes := validation.ComputeVerdictsPrechecked(o.shadow, num, res.Ordered, o.vopts, endorseFailed)
	// The post-order rescue pass: re-execute the MVCC casualties against the
	// value shadow (still at height num-1) under the block's valid writes —
	// the same deterministic phase the peer committers run, so the rescued
	// codes and digest sealed here are exactly what every peer re-derives.
	var rescueWrites [][]protocol.WriteItem
	var rescueDigest []byte
	if o.rescue {
		out := reexec.Run(o.shadow, num, res.Ordered, codes,
			reexec.Options{Registry: o.net.registry, Workers: runtime.GOMAXPROCS(0)})
		codes = out.Codes
		rescueWrites = out.Writes
		rescueDigest = out.Digest
	}
	blk, err := o.chain.SealRescued(res.Ordered, codes, rescueDigest)
	if err != nil {
		o.net.fail(fmt.Errorf("fabric: orderer %s seal: %w", o.name, err))
		return
	}
	o.shadow.ApplyRescued(num, res.Ordered, codes, rescueWrites)
	o.scheduler.OnBlockCommitted(num, res.Ordered, codes)
	o.evictSeen(num)
	if !o.deliver {
		return
	}
	for _, tx := range res.Ordered {
		o.net.opts.Tracer.Record(string(tx.ID), trace.StageSeal, num)
	}
	o.net.dispatch(blk)
	if len(o.net.peers) == 0 {
		// Ordering-only process: there is no local commit barrier to settle
		// waiters, and the sealed verdicts already ARE the final codes (the
		// agreement property — every peer's validation must byte-match
		// them or fail fatally). Resolve at seal so wire clients can poll.
		for i, tx := range res.Ordered {
			o.net.resolve(tx.ID, TxResult{TxID: tx.ID, Code: codes[i], Block: num})
		}
	}
}
