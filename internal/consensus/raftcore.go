package consensus

import "fmt"

// This file is the *pure* Raft replicated-log state machine that backs the
// wire ordering cluster (internal/transport.RaftService drives it over TCP).
// It owns exactly the state the Raft paper calls persistent-plus-volatile —
// currentTerm, votedFor, the log, commitIndex, and the leader's
// nextIndex/matchIndex tables — and the transition rules: randomized-timeout
// elections are *decided* here (who to vote for, when a quorum is reached)
// but *timed* by the driver, which owns clocks, sockets, and retries. Keeping
// the rules free of I/O makes every safety property unit-testable without a
// network: no double vote in a term, log-matching truncation, commit only
// through a current-term entry, leader completeness via the up-to-date check.
//
// Unlike the in-process Raft above (deterministic elections, one address
// space), RaftCore models real cluster membership: each OS process owns one
// replica, messages arrive from sockets in any order, and liveness comes
// from the driver's randomized election timeouts.
//
// Scope note: the log itself is volatile (a restarted node rejoins empty and
// is caught up by the leader from index 1), while term and vote may be made
// durable through the Persist hook — the crash model the ordering service
// needs, since every committed entry survives on the quorum that
// acknowledged it and the chain above replays deterministically from the
// log. Indexes are 1-based, per the paper; index 0 is the empty-log
// sentinel.

// RaftRole is a replica's current mode.
type RaftRole uint8

// The three Raft roles.
const (
	RoleFollower RaftRole = iota
	RoleCandidate
	RoleLeader
)

// String names the role for diagnostics.
func (r RaftRole) String() string {
	switch r {
	case RoleFollower:
		return "follower"
	case RoleCandidate:
		return "candidate"
	case RoleLeader:
		return "leader"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// LogEntry pairs an envelope with the term it was proposed in.
type LogEntry struct {
	Term uint64
	Env  Envelope
}

// AppendRequest is the AppendEntries RPC: replication and, with no entries,
// the leader's heartbeat.
type AppendRequest struct {
	Term         uint64
	LeaderID     string
	PrevIndex    uint64
	PrevTerm     uint64
	LeaderCommit uint64
	Entries      []LogEntry
}

// AppendResponse answers an AppendRequest. On success MatchIndex is the
// highest index known replicated on the follower; on failure it is the
// follower's last log index — the leader's next-index backoff hint, which
// lets a freshly restarted (empty-log) follower be caught up in one round
// trip instead of one decrement per missing entry.
type AppendResponse struct {
	From       string
	Term       uint64
	Success    bool
	MatchIndex uint64
}

// VoteRequest is the RequestVote RPC.
type VoteRequest struct {
	Term        uint64
	CandidateID string
	LastIndex   uint64
	LastTerm    uint64
}

// VoteResponse answers a VoteRequest.
type VoteResponse struct {
	From    string
	Term    uint64
	Granted bool
}

// ErrNotLeader reports a submission to a replica that is not the cluster
// leader. LeaderID names the last leader this replica heard from ("" when
// unknown — e.g. mid-election); the node layer translates it into a client
// redirect hint.
type ErrNotLeader struct {
	LeaderID string
}

// Error implements error.
func (e ErrNotLeader) Error() string {
	if e.LeaderID == "" {
		return "consensus: not the leader (no leader known)"
	}
	return fmt.Sprintf("consensus: not the leader (try %s)", e.LeaderID)
}

// RaftCore is one replica's Raft state. It is not goroutine-safe: the driver
// serializes every call (internal/transport.RaftService holds one mutex
// across core access).
type RaftCore struct {
	id     string
	others []string // every member but this one

	term     uint64
	votedFor string
	role     RaftRole
	leader   string // last known leader's ID ("" when unknown)
	log      []LogEntry
	commit   uint64

	// Leader volatile state (rebuilt at each election win).
	nextIndex  map[string]uint64
	matchIndex map[string]uint64
	votes      map[string]bool

	// Persist, when set, is called after every term or vote change — the
	// paper's "persistent state" write point. The driver stores both before
	// any message that could reveal them (a reply granting a vote must not
	// be forgotten by a crash, or the replica could vote twice in a term).
	Persist func(term uint64, votedFor string)
}

// NewRaftCore creates a replica. members is the full cluster membership
// (including id); quorum is a majority of it.
func NewRaftCore(id string, members []string) (*RaftCore, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("consensus: raft cluster needs at least one member")
	}
	c := &RaftCore{id: id, role: RoleFollower}
	seen := false
	for _, m := range members {
		if m == id {
			seen = true
			continue
		}
		c.others = append(c.others, m)
	}
	if !seen {
		return nil, fmt.Errorf("consensus: member %q not in cluster %v", id, members)
	}
	return c, nil
}

// Restore installs durable term and vote state recovered from disk; call
// before the driver starts timers.
func (c *RaftCore) Restore(term uint64, votedFor string) {
	c.term = term
	c.votedFor = votedFor
}

// ID returns this replica's member ID.
func (c *RaftCore) ID() string { return c.id }

// Others returns every cluster member but this replica.
func (c *RaftCore) Others() []string { return c.others }

// Role returns the replica's current role.
func (c *RaftCore) Role() RaftRole { return c.role }

// Term returns the current term.
func (c *RaftCore) Term() uint64 { return c.term }

// LeaderID returns the last known leader ("" when unknown).
func (c *RaftCore) LeaderID() string {
	if c.role == RoleLeader {
		return c.id
	}
	return c.leader
}

// CommitIndex returns the highest committed log index.
func (c *RaftCore) CommitIndex() uint64 { return c.commit }

// LastIndex returns the highest log index (0 for an empty log).
func (c *RaftCore) LastIndex() uint64 { return uint64(len(c.log)) }

// Entry returns the log entry at 1-based index i (panics if out of range —
// callers only read committed, and therefore present, indexes).
func (c *RaftCore) Entry(i uint64) LogEntry { return c.log[i-1] }

func (c *RaftCore) termAt(i uint64) uint64 {
	if i == 0 {
		return 0
	}
	return c.log[i-1].Term
}

func (c *RaftCore) persist() {
	if c.Persist != nil {
		c.Persist(c.term, c.votedFor)
	}
}

// stepDown adopts a higher term as a follower.
func (c *RaftCore) stepDown(term uint64) {
	c.term = term
	c.votedFor = ""
	c.role = RoleFollower
	c.leader = ""
	c.votes = nil
	c.persist()
}

// quorum returns the majority threshold.
func (c *RaftCore) quorum() int { return (len(c.others)+1)/2 + 1 }

// StartElection moves to candidate in a fresh term, votes for itself, and
// returns the VoteRequest to broadcast. In a single-member cluster it wins
// immediately (the self-vote is the quorum).
func (c *RaftCore) StartElection() VoteRequest {
	c.term++
	c.role = RoleCandidate
	c.votedFor = c.id
	c.leader = ""
	c.votes = map[string]bool{c.id: true}
	c.persist()
	if len(c.votes) >= c.quorum() {
		c.becomeLeader()
	}
	return VoteRequest{
		Term:        c.term,
		CandidateID: c.id,
		LastIndex:   c.LastIndex(),
		LastTerm:    c.termAt(c.LastIndex()),
	}
}

// HandleVote answers a RequestVote: grant iff the candidate's term is
// current, this replica has not voted for someone else this term, and the
// candidate's log is at least as up to date (the leader-completeness check —
// a candidate missing committed entries cannot gather a quorum, because
// every committed entry lives on a majority).
func (c *RaftCore) HandleVote(req VoteRequest) VoteResponse {
	if req.Term > c.term {
		c.stepDown(req.Term)
	}
	grant := false
	if req.Term == c.term &&
		(c.votedFor == "" || c.votedFor == req.CandidateID) &&
		c.candidateUpToDate(req) {
		c.votedFor = req.CandidateID
		c.persist()
		grant = true
	}
	return VoteResponse{From: c.id, Term: c.term, Granted: grant}
}

// candidateUpToDate implements the Raft §5.4.1 comparison: last terms, then
// last indexes.
func (c *RaftCore) candidateUpToDate(req VoteRequest) bool {
	myLast := c.LastIndex()
	myTerm := c.termAt(myLast)
	if req.LastTerm != myTerm {
		return req.LastTerm > myTerm
	}
	return req.LastIndex >= myLast
}

// HandleVoteResponse tallies a vote; it reports whether this replica just
// won the election (the driver then broadcasts initial heartbeats).
func (c *RaftCore) HandleVoteResponse(resp VoteResponse) bool {
	if resp.Term > c.term {
		c.stepDown(resp.Term)
		return false
	}
	if c.role != RoleCandidate || resp.Term != c.term || !resp.Granted {
		return false
	}
	c.votes[resp.From] = true
	if len(c.votes) >= c.quorum() {
		c.becomeLeader()
		return true
	}
	return false
}

// becomeLeader installs the leader tables and appends a no-op entry in the
// new term. The no-op matters for liveness: a leader may only count
// replicas toward commit through an entry of its *own* term (§5.4.2), so
// without it, entries inherited from a dead leader would stay uncommitted
// until the next client submission. The ordering layer skips the empty
// envelope (it carries no transaction and no valid cut marker) identically
// on every replica, so block contents are unaffected.
func (c *RaftCore) becomeLeader() {
	c.role = RoleLeader
	c.leader = c.id
	c.nextIndex = make(map[string]uint64, len(c.others))
	c.matchIndex = make(map[string]uint64, len(c.others))
	for _, p := range c.others {
		c.nextIndex[p] = c.LastIndex() + 1
		c.matchIndex[p] = 0
	}
	c.log = append(c.log, LogEntry{Term: c.term, Env: Envelope{SubmittedBy: c.id}})
	c.advanceCommit()
}

// Append appends a client envelope to the leader's log and returns its
// index. Followers refuse with ErrNotLeader naming the leader to try.
func (c *RaftCore) Append(env Envelope) (uint64, error) {
	if c.role != RoleLeader {
		return 0, ErrNotLeader{LeaderID: c.LeaderID()}
	}
	c.log = append(c.log, LogEntry{Term: c.term, Env: env})
	c.advanceCommit() // single-member cluster commits immediately
	return c.LastIndex(), nil
}

// maxEntriesPerAppend bounds one AppendRequest's batch so a from-scratch
// catch-up streams in frames of a few hundred entries instead of one
// arbitrarily large frame; the driver keeps issuing requests while a
// follower's nextIndex trails the log.
const maxEntriesPerAppend = 256

// AppendRequestFor builds the next AppendEntries for a follower: entries
// from its nextIndex (empty = heartbeat), with the consistency-check
// predecessor and the leader's commit index.
func (c *RaftCore) AppendRequestFor(peer string) AppendRequest {
	next := c.nextIndex[peer]
	if next == 0 { // unknown peer: treat as fully behind
		next = 1
	}
	prev := next - 1
	req := AppendRequest{
		Term:         c.term,
		LeaderID:     c.id,
		PrevIndex:    prev,
		PrevTerm:     c.termAt(prev),
		LeaderCommit: c.commit,
	}
	if last := c.LastIndex(); next <= last {
		end := next + maxEntriesPerAppend - 1
		if end > last {
			end = last
		}
		req.Entries = append([]LogEntry(nil), c.log[next-1:end]...)
	}
	return req
}

// Behind reports whether the follower's replication cursor trails the log —
// the driver's signal to keep streaming catch-up batches.
func (c *RaftCore) Behind(peer string) bool {
	return c.role == RoleLeader && c.nextIndex[peer] <= c.LastIndex()
}

// HandleAppend applies an AppendEntries request: term check, §5.3 log
// consistency check, conflict truncation, append, commit advance. It
// reports the follower's new state to the leader.
func (c *RaftCore) HandleAppend(req AppendRequest) AppendResponse {
	if req.Term > c.term {
		c.stepDown(req.Term)
	}
	resp := AppendResponse{From: c.id, Term: c.term}
	if req.Term < c.term {
		resp.MatchIndex = c.LastIndex()
		return resp
	}
	// A current-term AppendEntries establishes its sender as leader; a
	// candidate that receives one concedes the election.
	c.role = RoleFollower
	c.leader = req.LeaderID
	if req.PrevIndex > c.LastIndex() || c.termAt(req.PrevIndex) != req.PrevTerm {
		// Log-matching failure: tell the leader how far back to rewind. The
		// hint is this replica's last index when the log is short, or just
		// below the conflicting predecessor otherwise.
		hint := c.LastIndex()
		if req.PrevIndex <= hint {
			hint = req.PrevIndex - 1
		}
		resp.MatchIndex = hint
		return resp
	}
	// Append, truncating at the first conflicting entry. Entries already
	// present with matching terms are skipped (duplicate AppendEntries — a
	// retransmitted or reordered frame — must be idempotent).
	idx := req.PrevIndex
	for _, e := range req.Entries {
		idx++
		if idx <= c.LastIndex() {
			if c.termAt(idx) == e.Term {
				continue
			}
			if idx <= c.commit {
				// Never reachable under Raft safety; a truncation below the
				// commit index would un-deliver sealed blocks upstream.
				panic(fmt.Sprintf("consensus: raft %s asked to truncate committed index %d (commit %d)", c.id, idx, c.commit))
			}
			c.log = c.log[:idx-1]
		}
		c.log = append(c.log, e)
	}
	resp.Success = true
	resp.MatchIndex = req.PrevIndex + uint64(len(req.Entries))
	if req.LeaderCommit > c.commit {
		limit := resp.MatchIndex
		if req.LeaderCommit < limit {
			limit = req.LeaderCommit
		}
		if limit > c.commit {
			c.commit = limit
		}
	}
	return resp
}

// HandleAppendResponse digests a follower's reply; it reports whether the
// commit index advanced (the driver's wake-up signal for submit waiters and
// subscribers).
func (c *RaftCore) HandleAppendResponse(resp AppendResponse) bool {
	if resp.Term > c.term {
		c.stepDown(resp.Term)
		return false
	}
	if c.role != RoleLeader || resp.Term != c.term {
		return false
	}
	if resp.Success {
		if resp.MatchIndex > c.matchIndex[resp.From] {
			c.matchIndex[resp.From] = resp.MatchIndex
		}
		c.nextIndex[resp.From] = c.matchIndex[resp.From] + 1
		return c.advanceCommit()
	}
	// Rewind toward the follower's hint (never below 1, never above the
	// current nextIndex - 1).
	next := c.nextIndex[resp.From]
	if next > 1 {
		next--
	}
	if resp.MatchIndex+1 < next {
		next = resp.MatchIndex + 1
	}
	if next < 1 {
		next = 1
	}
	c.nextIndex[resp.From] = next
	return false
}

// advanceCommit commits the highest index replicated on a quorum whose entry
// is of the current term (§5.4.2: a leader never counts replicas for an
// older term's entry — those commit transitively).
func (c *RaftCore) advanceCommit() bool {
	advanced := false
	for n := c.LastIndex(); n > c.commit; n-- {
		if c.termAt(n) != c.term {
			break
		}
		count := 1 // self
		for _, m := range c.matchIndex {
			if m >= n {
				count++
			}
		}
		if count >= c.quorum() {
			c.commit = n
			advanced = true
			break
		}
	}
	return advanced
}
