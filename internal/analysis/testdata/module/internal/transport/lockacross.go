// Package transport is the lockacross fixture corpus: blocking
// communication (channel sends, module Submit, socket writes) under a held
// sync.Mutex/RWMutex.
package transport

import (
	"net"
	"sync"
)

// Conn mimics the real transport connection: Send is a socket write on a
// module type, so calling it under a lock is the policed shape.
type Conn struct {
	nc net.Conn
}

func (c *Conn) Send(b []byte) error {
	_, err := c.nc.Write(b)
	return err
}

// Cluster mimics the consensus handle: Submit blocks until commit.
type Cluster struct{}

func (c *Cluster) Submit(b []byte) error { return nil }

type worker struct {
	mu   sync.Mutex
	rmu  sync.RWMutex
	out  chan int
	conn *Conn
}

func (w *worker) flagSendUnderLock(v int) {
	w.mu.Lock()
	w.out <- v // want lockacross "channel send while w.mu is held"
	w.mu.Unlock()
}

func (w *worker) okSendAfterUnlock(v int) {
	w.mu.Lock()
	w.mu.Unlock()
	w.out <- v
}

func (w *worker) flagSocketWriteUnderDeferredUnlock(b []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.conn.Send(b) // want lockacross "Send (socket write) while w.mu is held"
}

func (w *worker) flagRawNetWrite(b []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.conn.nc.Write(b) // want lockacross "Write (socket write) while w.mu is held"
}

func (w *worker) flagSubmitUnderRLock(c *Cluster, b []byte) error {
	w.rmu.RLock()
	defer w.rmu.RUnlock()
	return c.Submit(b) // want lockacross "Submit (commit-wait) while w.rmu is held"
}

func (w *worker) okNonBlockingSend(v int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	select {
	case w.out <- v: // a default clause makes the send non-blocking
	default:
	}
}

func (w *worker) okGoroutineOwnStack(v int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	go func() {
		w.out <- v // runs on its own stack, without our locks
	}()
}

func (w *worker) okSendOutsideCriticalSection(v int) {
	w.mu.Lock()
	staged := v * 2
	w.mu.Unlock()
	w.out <- staged
}

func (w *worker) suppressedCallPairing(b []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	//sharp:allow lockacross fixture: reviewed suppression — serialization is this lock's purpose
	return w.conn.Send(b) // wantsup lockacross "Send (socket write)"
}
