// Smallbank: concurrent banking on the blockchain. Many tellers hammer the
// same accounts with payments; the Sharp ordering commits every serializable
// interleaving and the audit proves money conservation at the end.
//
//	go run ./examples/smallbank [-system fabric|fabric++|fabric#|focc-s|focc-l]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	fabricsharp "fabricsharp"
)

const (
	accounts       = 10
	initialBalance = 1000
	tellers        = 4
	paymentsEach   = 25
)

func main() {
	system := flag.String("system", "fabric#", "concurrency control scheme")
	flag.Parse()

	net, err := fabricsharp.NewNetwork(fabricsharp.NetworkOptions{
		System:       fabricsharp.System(*system),
		BlockSize:    20,
		BlockTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	bank, err := net.NewClient("bank")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < accounts; i++ {
		if _, err := bank.Submit("smallbank", "create_account",
			fmt.Sprint(i), fmt.Sprint(initialBalance), fmt.Sprint(initialBalance)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("created %d accounts with %d/%d checking/savings each\n", accounts, initialBalance, initialBalance)

	var committed, aborted int64
	var wg sync.WaitGroup
	for tlr := 0; tlr < tellers; tlr++ {
		wg.Add(1)
		go func(tlr int) {
			defer wg.Done()
			teller, err := net.NewClient(fmt.Sprintf("teller%d", tlr))
			if err != nil {
				log.Print(err)
				return
			}
			for i := 0; i < paymentsEach; i++ {
				from := (tlr + i) % accounts
				to := (tlr + i + 1 + i%3) % accounts
				if from == to {
					to = (to + 1) % accounts
				}
				res, err := teller.Submit("smallbank", "send_payment",
					fmt.Sprint(from), fmt.Sprint(to), "7")
				switch {
				case err != nil:
					log.Printf("teller %d: %v", tlr, err)
				case res.Committed():
					atomic.AddInt64(&committed, 1)
				default:
					atomic.AddInt64(&aborted, 1)
				}
			}
		}(tlr)
	}
	wg.Wait()
	net.WaitIdle(5 * time.Second)

	fmt.Printf("payments: %d committed, %d aborted (%s)\n", committed, aborted, *system)

	// Audit: total money must be exactly accounts*2*initialBalance — every
	// committed schedule is serializable, so conservation holds no matter
	// how the payments interleaved.
	total := 0
	for i := 0; i < accounts; i++ {
		raw, err := bank.Query("smallbank", "query", fmt.Sprint(i))
		if err != nil {
			log.Fatal(err)
		}
		var acct struct{ Checking, Savings int }
		if err := json.Unmarshal(raw, &acct); err != nil {
			log.Fatal(err)
		}
		total += acct.Checking + acct.Savings
	}
	want := accounts * 2 * initialBalance
	fmt.Printf("audit: total balance %d (expected %d) — %s\n", total, want, verdict(total == want))
}

func verdict(ok bool) string {
	if ok {
		return "conserved"
	}
	return "VIOLATED"
}
