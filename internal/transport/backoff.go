package transport

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff produces jittered exponential delays: each Next doubles the base
// delay up to Max and draws uniformly from [d/2, d] ("equal jitter"), so a
// fleet of clients that lost the same orderer at the same instant does not
// reconnect in lockstep. The zero value is not ready — use NewBackoff.
//
// Transport timing is the one place the repository tolerates wall-clock
// seeded randomness: retry spacing affects only liveness, never the bytes a
// replica seals, so determinism is not load-bearing here (the harness-side
// no-global-math/rand rule is about reproducible workloads).
type Backoff struct {
	base time.Duration
	max  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
	cur time.Duration
}

// NewBackoff builds a backoff ramp from base to max. A non-zero seed makes
// the jitter sequence reproducible (tests); seed 0 derives one from the
// clock.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max < base {
		max = base
	}
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed)), cur: base}
}

// Next returns the next delay and advances the ramp.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := b.cur
	if b.cur *= 2; b.cur > b.max {
		b.cur = b.max
	}
	half := d / 2
	return half + time.Duration(b.rng.Int63n(int64(half)+1))
}

// Reset rewinds the ramp to the base delay (call after a success).
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.cur = b.base
	b.mu.Unlock()
}

// Retry runs fn until it returns nil or the next backed-off attempt would
// land past deadline, in which case the last error is returned. It absorbs
// transient connection failures — a node mid-restart answers the dial but
// resets in-flight calls, which a bare DialRetry budget does not cover.
func Retry(deadline time.Time, bo *Backoff, fn func() error) error {
	for {
		err := fn()
		if err == nil {
			return nil
		}
		d := bo.Next()
		if time.Now().Add(d).After(deadline) {
			return err
		}
		time.Sleep(d)
	}
}
