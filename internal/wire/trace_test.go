package wire

import (
	"reflect"
	"testing"
)

func TestTraceDumpRoundTrip(t *testing.T) {
	dump := &TraceDump{
		Node:     "peer0",
		Role:     "peer",
		Recorded: 123456,
		Events: []TraceEvent{
			{TxID: "load3-000042", Stage: 1, Block: 0, WallNS: 1700000000000000001, Seq: 1},
			{TxID: "load3-000042", Stage: 7, Block: 12, WallNS: 1700000000000500001, Seq: 999},
			{TxID: "", Stage: 8, Block: 12, WallNS: -1, Seq: 1000}, // negative stamp survives
		},
	}
	got, err := DecodeTraceDump(EncodeTraceDump(dump))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, dump) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, dump)
	}
	if string(EncodeTraceDump(got)) != string(EncodeTraceDump(dump)) {
		t.Fatal("re-encode is not byte-identical")
	}
}

func TestTraceDumpEmptyRoundTrip(t *testing.T) {
	dump := &TraceDump{Node: "ord0", Role: "orderer"}
	got, err := DecodeTraceDump(EncodeTraceDump(dump))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, dump) {
		t.Fatalf("empty dump mismatch: %+v != %+v", got, dump)
	}
}

func TestTraceReqRoundTrip(t *testing.T) {
	if _, err := DecodeTraceReq(EncodeTraceReq(TraceReq{})); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTraceReq([]byte{0}); err == nil {
		t.Fatal("trailing bytes must be rejected")
	}
}

func TestTraceDumpDecodeBoundsHostileCount(t *testing.T) {
	enc := EncodeTraceDump(&TraceDump{Node: "n", Role: "peer", Events: []TraceEvent{{TxID: "x", Stage: 1}}})
	// Blow the event count up far past the remaining bytes: the decoder must
	// fail cleanly rather than allocate.
	countOff := 4 + 1 + 4 + 4 + 8 // "n" + "peer" + recorded
	enc[countOff] = 0xff
	if _, err := DecodeTraceDump(enc); err == nil {
		t.Fatal("hostile count must be rejected")
	}
	// Truncation mid-event fails too.
	good := EncodeTraceDump(&TraceDump{Node: "n", Role: "peer", Events: []TraceEvent{{TxID: "x", Stage: 1}}})
	if _, err := DecodeTraceDump(good[:len(good)-3]); err == nil {
		t.Fatal("truncated dump must be rejected")
	}
}
