module fabricsharp

go 1.22
