package network

import (
	"fmt"
	"math"
	"math/rand"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/core"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/metrics"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/scenario"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/seqno"
	"fabricsharp/internal/sim"
	"fabricsharp/internal/statedb"
	"fabricsharp/internal/validation"
	"fabricsharp/internal/workload"
)

// Result aggregates one run's measurements.
type Result struct {
	Config Config

	// Counts.
	Submitted   uint64
	InLedger    uint64 // transactions that consumed ledger space (raw)
	Committed   uint64 // valid transactions (effective)
	Blocks      uint64
	EarlyAborts metrics.AbortTally // before the ledger (simulation, arrival, formation)
	LateAborts  metrics.AbortTally // in-ledger validation failures

	// Rates (per second of submission window).
	RawTPS       float64
	EffectiveTPS float64

	// End-to-end latency of committed transactions, seconds.
	Latency metrics.Histogram

	// RescuedAntiRW counts committed transactions whose readset was stale
	// against the committed state at commit time — transactions vanilla
	// Fabric's MVCC check would have aborted, recovered by the ordering-
	// phase serializability guarantee (the "antiRW" share of Figure 15).
	// Only meaningful for systems that skip MVCC validation.
	RescuedAntiRW uint64

	// Scheduler-side measurements.
	SchedulerTiming sched.Timing
	SharpStats      *core.Stats // non-nil for the sharp system

	// Artifacts for verification.
	Chain   *ledger.Chain
	State   *statedb.DB
	Genesis *statedb.DB
}

// AbortRate returns 1 - committed/submitted.
func (r *Result) AbortRate() float64 {
	if r.Submitted == 0 {
		return 0
	}
	return 1 - float64(r.Committed)/float64(r.Submitted)
}

// pipeline is the wired-up network.
type pipeline struct {
	cfg       Config
	eng       *sim.Engine
	rng       *rand.Rand
	registry  *chaincode.Registry
	state     *statedb.DB
	chain     *ledger.Chain
	scheduler sched.Scheduler

	endorsers *sim.Station
	orderer   *sim.Station
	validator *sim.Station
	stateLock *sim.RWLock // vanilla Fabric's simulation/commit lock

	submittedAt map[protocol.TxID]sim.Time
	cutGen      uint64 // invalidates stale batch timeouts
	txSeq       uint64

	// Windowed counters: only commits that land inside the submission
	// window count toward throughput, so the post-window drain (which lets
	// waiters resolve) cannot credit an overloaded system with work it
	// deferred past the measurement.
	windowInLedger  uint64
	windowCommitted uint64

	res *Result
}

// Run executes one experiment.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	if cfg.Workload == nil && cfg.Scenario != "" {
		sc, ok := scenario.Get(cfg.Scenario)
		if !ok {
			return nil, fmt.Errorf("network: unknown scenario %q (have %v)", cfg.Scenario, scenario.Names())
		}
		gen, err := sc.Generator(rng, cfg.ScenarioParams)
		if err != nil {
			return nil, fmt.Errorf("network: scenario %q: %w", cfg.Scenario, err)
		}
		cfg.Workload = gen
	}
	if cfg.Workload == nil {
		return nil, fmt.Errorf("network: config needs a workload")
	}
	state, err := statedb.New(statedb.Options{})
	if err != nil {
		return nil, err
	}
	if err := cfg.Workload.Seed(state); err != nil {
		return nil, fmt.Errorf("network: seeding workload: %w", err)
	}
	genesis := state.Clone()
	scheduler, err := sched.New(cfg.System, sched.Options{MaxSpan: cfg.MaxSpan})
	if err != nil {
		return nil, err
	}
	chain, err := ledger.NewChain(nil)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	p := &pipeline{
		cfg:         cfg,
		eng:         eng,
		rng:         rng,
		registry:    chaincode.NewRegistry(cfg.Contracts...),
		state:       state,
		chain:       chain,
		scheduler:   scheduler,
		endorsers:   sim.NewStation(eng, cfg.Timing.EndorserSlots),
		orderer:     sim.NewStation(eng, 1),
		validator:   sim.NewStation(eng, 1),
		stateLock:   sim.NewRWLock(),
		submittedAt: map[protocol.TxID]sim.Time{},
		res: &Result{
			Config:      cfg,
			EarlyAborts: metrics.AbortTally{},
			LateAborts:  metrics.AbortTally{},
			Chain:       chain,
			State:       state,
			Genesis:     genesis,
		},
	}

	// Generate the arrival process up front (deterministic given the seed).
	t := sim.Time(0)
	for {
		t += p.expInterval()
		if t >= cfg.Duration {
			break
		}
		at := t
		eng.At(at, func() { p.submit(at) })
	}

	// Drain long enough for timeouts, validation queues and lock waits.
	drain := cfg.Duration + 20*sim.Second
	eng.Run(drain)

	p.finalize()
	return p.res, nil
}

// expInterval draws an exponential inter-arrival time for the Poisson
// submission process.
func (p *pipeline) expInterval() sim.Time {
	u := p.rng.Float64()
	for u == 0 {
		u = p.rng.Float64()
	}
	sec := -math.Log(u) / p.cfg.RequestRate
	d := sim.Time(sec * float64(sim.Second))
	if d < 1 {
		d = 1
	}
	return d
}

// submit is a client submitting one operation at virtual time `at`.
func (p *pipeline) submit(at sim.Time) {
	op := p.cfg.Workload.Next()
	p.txSeq++
	id := protocol.TxID(fmt.Sprintf("tx-%08d", p.txSeq))
	p.res.Submitted++
	p.eng.StartProcess(func(proc *sim.Proc) { p.endorse(proc, id, op, at) })
}

// desReader resolves contract reads on virtual time.
type desReader struct {
	p        *sim.Proc
	state    *statedb.DB
	snap     uint64
	latest   bool // Fabric++: read the live state at each read instant
	interval sim.Time
}

func (r *desReader) Read(key string) ([]byte, seqno.Seq, bool, error) {
	if r.interval > 0 {
		r.p.Sleep(r.interval)
	}
	if r.latest {
		vv, ok := r.state.Get(key)
		if !ok {
			return nil, seqno.Seq{}, false, nil
		}
		return vv.Value, vv.Version, true, nil
	}
	vv, ok, err := r.state.GetAt(key, r.snap)
	if err != nil || !ok {
		return nil, seqno.Seq{}, false, err
	}
	return vv.Value, vv.Version, true, nil
}

// ReadRange implements chaincode.RangeReader against the read snapshot (or
// the live state in Fabric++'s latest mode).
func (r *desReader) ReadRange(start, end string) ([]string, error) {
	if r.latest {
		return r.state.KeysInRange(start, end, r.state.Height()), nil
	}
	return r.state.KeysInRange(start, end, r.snap), nil
}

// endorse runs the execution phase for one transaction.
func (p *pipeline) endorse(proc *sim.Proc, id protocol.TxID, op workload.Op, submitted sim.Time) {
	contract, ok := p.registry.Get(op.Contract)
	if !ok {
		p.res.EarlyAborts.Inc(protocol.EndorsementFailure)
		return
	}
	vanilla := p.cfg.System == sched.SystemFabric
	if vanilla {
		// Vanilla Fabric holds a read lock on the state database for the
		// whole simulation; commits take the write side (Section 2.1).
		proc.Block(p.stateLock.AcquireRead)
	}
	snap := p.state.Height()
	reader := &desReader{
		p:        proc,
		state:    p.state,
		snap:     snap,
		latest:   p.cfg.System == sched.SystemFabricPP,
		interval: p.cfg.ReadInterval,
	}
	// CPU occupancy of the simulation itself.
	proc.Block(func(wake func()) { p.endorsers.Submit(p.cfg.Timing.ExecBase, wake) })
	rwset, simErr := chaincode.Simulate(contract, op.Function, op.Args, reader)
	if vanilla {
		p.stateLock.ReleaseRead()
	}
	if simErr != nil {
		p.res.EarlyAborts.Inc(protocol.EndorsementFailure)
		return
	}
	tx := &protocol.Transaction{
		ID:            id,
		ClientID:      "client",
		Contract:      op.Contract,
		Function:      op.Function,
		Args:          op.Args,
		SnapshotBlock: snap,
		RWSet:         rwset,
	}
	// Fill the key caches before the transaction is shared with the
	// scheduler and validator stages.
	tx.RWSet.Precompute()
	if p.cfg.System == sched.SystemFabricPP && sched.ReadsAcrossBlocks(tx) {
		// Fabric++'s simulation-phase early abort.
		p.res.EarlyAborts.Inc(protocol.AbortSimulation)
		return
	}
	// Client-side delay, then broadcast through consensus.
	if d := p.cfg.ClientDelay + p.cfg.Timing.ConsensusLatency; d > 0 {
		proc.Sleep(d)
	}
	p.submittedAt[id] = submitted
	p.ordererArrive(tx)
}

// ordererArrive runs the (replicated, deterministic) orderer's arrival
// processing.
func (p *pipeline) ordererArrive(tx *protocol.Transaction) {
	p.orderer.Submit(arrivalCost(p.cfg.System), func() {
		code, err := p.scheduler.OnArrival(tx)
		if err != nil {
			// Arrival errors indicate a pipeline bug; surface loudly.
			panic(fmt.Sprintf("network: scheduler arrival: %v", err))
		}
		if code != protocol.Valid {
			p.res.EarlyAborts.Inc(code)
			delete(p.submittedAt, tx.ID)
			return
		}
		n := p.scheduler.PendingCount()
		if n >= p.cfg.BlockSize {
			p.cutBlock()
			return
		}
		if n == 1 {
			// First transaction since the last cut: arm the batch timeout.
			gen := p.cutGen
			p.eng.After(p.cfg.BlockTimeout, func() {
				if p.cutGen == gen && p.scheduler.PendingCount() > 0 {
					p.cutBlock()
				}
			})
		}
	})
}

// cutBlock runs the formation step on the orderer (occupying it for the
// system's reordering cost — Fabric++'s expensive reorder stalls arrivals
// exactly as the paper describes).
func (p *pipeline) cutBlock() {
	p.cutGen++
	n := p.scheduler.PendingCount()
	p.orderer.Submit(formationCost(p.cfg.System, n), func() {
		res, err := p.scheduler.OnBlockFormation()
		if err != nil {
			panic(fmt.Sprintf("network: formation: %v", err))
		}
		for _, d := range res.DroppedTxs {
			p.res.EarlyAborts.Inc(d.Code)
			delete(p.submittedAt, d.Tx.ID)
		}
		if len(res.Ordered) == 0 {
			return
		}
		blk, err := p.chain.Seal(res.Ordered, nil)
		if err != nil {
			panic(fmt.Sprintf("network: seal: %v", err))
		}
		p.eng.After(p.cfg.Timing.DeliveryLatency, func() { p.deliver(blk) })
	})
}

// deliver hands a block to the validating peer.
func (p *pipeline) deliver(blk *ledger.Block) {
	service := p.cfg.Timing.ValidatePerBlock + sim.Time(len(blk.Transactions))*p.cfg.Timing.ValidatePerTx
	p.validator.Submit(service, func() {
		p.eng.StartProcess(func(proc *sim.Proc) { p.commit(proc, blk) })
	})
}

// commit applies a validated block to the ledger state. Under vanilla
// Fabric it first takes the write lock, waiting out every in-flight
// simulation — the contention that collapses Figure 14's vanilla curve.
func (p *pipeline) commit(proc *sim.Proc, blk *ledger.Block) {
	vanilla := p.cfg.System == sched.SystemFabric
	if vanilla {
		proc.Block(p.stateLock.AcquireWrite)
	}
	proc.Sleep(p.cfg.Timing.CommitTime)
	if !p.scheduler.NeedsMVCCValidation() {
		// Count the transactions only the ordering-phase guarantee saves
		// (stale against committed state yet serializable): Figure 15's
		// "antiRW" share.
		for _, tx := range blk.Transactions {
			if validation.Stale(p.state, tx) {
				p.res.RescuedAntiRW++
			}
		}
	}
	codes, err := validation.ValidateAndCommit(p.state, blk, validation.Options{
		MVCC: p.scheduler.NeedsMVCCValidation(),
	})
	if err != nil {
		panic(fmt.Sprintf("network: commit: %v", err))
	}
	if vanilla {
		p.stateLock.ReleaseWrite()
	}
	if err := p.chain.SetValidation(blk.Header.Number, codes); err != nil {
		panic(err)
	}
	p.scheduler.OnBlockCommitted(blk.Header.Number, blk.Transactions, codes)

	now := p.eng.Now()
	inWindow := now <= p.cfg.Duration
	for i, tx := range blk.Transactions {
		p.res.InLedger++
		if inWindow {
			p.windowInLedger++
		}
		if codes[i].Committed() {
			p.res.Committed++
			if inWindow {
				p.windowCommitted++
			}
			if t0, ok := p.submittedAt[tx.ID]; ok {
				p.res.Latency.Add((now - t0).Seconds())
			}
		} else {
			p.res.LateAborts.Inc(codes[i])
		}
		delete(p.submittedAt, tx.ID)
	}
	p.res.Blocks++

	// Bounded history: prune snapshots beyond the max_span horizon.
	if h := p.state.Height(); h > p.cfg.MaxSpan+1 {
		p.state.PruneSnapshots(h - p.cfg.MaxSpan - 1)
	}
}

// finalize computes the derived rates.
func (p *pipeline) finalize() {
	durationSec := p.cfg.Duration.Seconds()
	p.res.RawTPS = float64(p.windowInLedger) / durationSec
	p.res.EffectiveTPS = float64(p.windowCommitted) / durationSec
	p.res.SchedulerTiming = p.scheduler.Timing()
	if s, ok := p.scheduler.(*sched.Sharp); ok {
		stats := s.Manager().Stats()
		p.res.SharpStats = &stats
	}
}
