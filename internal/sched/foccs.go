package sched

import (
	"fmt"

	"fabricsharp/internal/core"
	"fabricsharp/internal/intern"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
)

// FoccS adapts the standard serializable-OCC certifier of Cahill et al. [10]
// to the ordering phase, per Section 5.1: an incoming transaction is
// immediately aborted when it
//
//   - write-write conflicts with a concurrent transaction (first-committer-
//     wins under snapshot isolation), or
//   - completes a dangerous structure — two consecutive concurrent
//     read-write conflicts with at least one anti-rw.
//
// Dependency-edge bookkeeping exploits that Focc-s never reorders: commit
// order is arrival (FIFO) order. An rw edge created when the *reader*
// arrives points at a writer that is committed or arrived earlier — the
// writer commits first, an anti-rw. An rw edge created when the *writer*
// arrives points from a reader that commits first — a c-rw. Per Fekete et
// al.'s theorem, every unserializable snapshot-isolation history contains a
// pivot with an incoming rw and an outgoing *anti*-rw, so certification
// aborts an arrival whenever it would give some transaction both flags.
//
// Record keys are interned on first sight (internal/intern): the committed
// and pending indices are all KeyID-indexed slices, so certification probes
// are slice lookups rather than string-map hashing.
//
// Nothing happens on block formation ("Focc-s does nothing on block
// formation"), and since every admitted transaction is certified
// serializable, the validation phase skips the MVCC check.
// Index errors — possible once CW/CR are KVIndex-backed — are propagated to
// the caller, never swallowed: a disk fault that silently dropped an index
// write would corrupt certification state and make replicas diverge, so the
// orderer treats a returned error as fatal (Network.Err), matching the
// divergence policy of the commit pipeline.
type FoccS struct {
	maxSpan      uint64
	compactEvery uint64
	keys         *intern.Table
	cw           core.VersionIndex // committed writes: key -> (commit seq, tx)
	cr           core.VersionIndex // committed reads:  key -> (commit seq, tx)
	flags        map[protocol.TxID]*rwFlags
	endBlock     map[protocol.TxID]uint64  // commit block, for flag pruning
	pw           [][]*protocol.Transaction // pending writers per KeyID
	pr           [][]*protocol.Transaction // pending readers per KeyID
	pending      []*protocol.Transaction
	nextBlock    uint64
	timing       Timing

	// Arrival scratch (single-goroutine, reused to stay allocation-free).
	rbuf, wbuf []intern.Key
	idbuf      []protocol.TxID
	outWriters []protocol.TxID
	inReaders  []protocol.TxID
}

// rwFlags carries the certifier's conflict markers: in is an incoming rw
// edge (someone read a key this transaction overwrites); outAnti is an
// outgoing anti-rw edge (this transaction read a key whose overwriting
// transaction commits first).
type rwFlags struct {
	in      bool
	outAnti bool
}

// NewFoccS returns the Focc-s scheduler.
func NewFoccS(opts Options) *FoccS {
	if opts.MaxSpan == 0 {
		opts.MaxSpan = 10
	}
	keys := opts.Keys
	if keys == nil {
		keys = intern.NewTable()
	}
	cw, cr := opts.CW, opts.CR
	if cw == nil {
		cw = core.NewMemIndex()
	}
	if cr == nil {
		cr = core.NewMemIndex()
	}
	return &FoccS{
		maxSpan:      opts.MaxSpan,
		compactEvery: opts.CompactEvery,
		keys:         keys,
		cw:           cw,
		cr:           cr,
		flags:        map[protocol.TxID]*rwFlags{},
		endBlock:     map[protocol.TxID]uint64{},
		nextBlock:    1,
	}
}

// System implements Scheduler.
func (f *FoccS) System() System { return SystemFoccS }

// grow extends the KeyID-indexed pending slices to the table size.
func (f *FoccS) grow() {
	n := f.keys.Len()
	for len(f.pw) < n {
		f.pw = append(f.pw, nil)
	}
	for len(f.pr) < n {
		f.pr = append(f.pr, nil)
	}
}

// OnArrival implements Scheduler: the certification step. An index error
// aborts certification and is returned — the orderer turns it fatal.
func (f *FoccS) OnArrival(tx *protocol.Transaction) (protocol.ValidationCode, error) {
	w := startWatch()
	code, err := f.certify(tx)
	f.timing.Arrivals++
	f.timing.ArrivalNS += w.elapsedNS()
	return code, err
}

func (f *FoccS) certify(tx *protocol.Transaction) (protocol.ValidationCode, error) {
	if f.nextBlock > f.maxSpan && tx.SnapshotBlock <= f.nextBlock-f.maxSpan {
		return protocol.AbortStaleSnapshot, nil
	}
	startTS := tx.StartTS()
	f.rbuf = f.keys.InternAll(f.rbuf[:0], tx.RWSet.ReadKeys())
	f.wbuf = f.keys.InternAll(f.wbuf[:0], tx.RWSet.WriteKeys())
	f.grow()

	// Rule 1: concurrent write-write conflict => abort (the prevention
	// whose cost Figure 11 charts as the write-hot ratio grows).
	for _, k := range f.wbuf {
		if len(f.pw[k]) > 0 {
			return protocol.AbortConcurrentWW, nil
		}
		committed, err := f.cw.After(f.idbuf[:0], k, startTS)
		f.idbuf = committed[:0]
		if err != nil {
			return 0, err
		}
		if len(committed) > 0 {
			return protocol.AbortConcurrentWW, nil
		}
	}

	// Outgoing anti-rw edges: tx reads k, a concurrent transaction that
	// commits first (already committed after tx's snapshot, or pending and
	// ahead in FIFO order) overwrites k.
	var err error
	outWriters := f.outWriters[:0]
	for _, k := range f.rbuf {
		if outWriters, err = f.cw.After(outWriters, k, startTS); err != nil {
			f.outWriters = outWriters[:0]
			return 0, err
		}
		for _, w := range f.pw[k] {
			outWriters = append(outWriters, w.ID)
		}
	}
	// Incoming rw edges: a concurrent earlier transaction read a key tx
	// overwrites (it commits first: c-rw into tx).
	inReaders := f.inReaders[:0]
	for _, k := range f.wbuf {
		if inReaders, err = f.cr.After(inReaders, k, startTS); err != nil {
			f.outWriters, f.inReaders = outWriters[:0], inReaders[:0]
			return 0, err
		}
		for _, r := range f.pr[k] {
			inReaders = append(inReaders, r.ID)
		}
	}
	f.outWriters, f.inReaders = outWriters, inReaders

	// Rule 2, the dangerous structure. tx itself as pivot: its outgoing
	// edges are all anti-rw, so in+out suffices ...
	if len(inReaders) > 0 && len(outWriters) > 0 {
		return protocol.AbortDangerousStructure, nil
	}
	// ... or a neighbouring writer becoming one: tx's anti-rw out edge is
	// W's incoming rw; W is dangerous if W already has an anti-rw out.
	for _, w := range outWriters {
		if fl := f.flags[w]; fl != nil && fl.outAnti {
			return protocol.AbortDangerousStructure, nil
		}
	}
	// Readers feeding into tx gain only a c-rw out edge (they commit
	// first), which cannot complete a dangerous structure.

	// Admit: install flags and pending indices.
	fl := &rwFlags{}
	for _, w := range outWriters {
		fl.outAnti = true
		if o := f.flags[w]; o != nil {
			o.in = true
		}
	}
	if len(inReaders) > 0 {
		fl.in = true
	}
	f.flags[tx.ID] = fl
	for _, k := range f.rbuf {
		f.pr[k] = append(f.pr[k], tx)
	}
	for _, k := range f.wbuf {
		f.pw[k] = append(f.pw[k], tx)
	}
	f.pending = append(f.pending, tx)
	return protocol.Valid, nil
}

// OnBlockFormation implements Scheduler: FIFO emission, bookkeeping of the
// committed indices, window pruning, and (when enabled) epoch compaction.
// Index errors surface to the caller rather than silently desynchronizing
// the certifier from its committed state.
func (f *FoccS) OnBlockFormation() (FormationResult, error) {
	if len(f.pending) == 0 {
		return FormationResult{Block: f.nextBlock}, nil
	}
	w := startWatch()
	block := f.nextBlock
	res := FormationResult{Block: block, Ordered: f.pending}
	for i, tx := range f.pending {
		seq := seqno.Commit(block, uint32(i+1))
		for _, k := range f.keys.InternAll(f.wbuf[:0], tx.RWSet.WriteKeys()) {
			if err := f.cw.Put(k, seq, tx.ID); err != nil {
				return FormationResult{}, err
			}
			f.pw[k] = f.pw[k][:0]
		}
		for _, k := range f.keys.InternAll(f.rbuf[:0], tx.RWSet.ReadKeys()) {
			if err := f.cr.Put(k, seq, tx.ID); err != nil {
				return FormationResult{}, err
			}
			f.pr[k] = f.pr[k][:0]
		}
		f.endBlock[tx.ID] = block
	}
	f.pending = nil
	f.nextBlock++
	if f.nextBlock > f.maxSpan {
		h := f.nextBlock - f.maxSpan
		if err := f.cw.PruneBefore(h); err != nil {
			return FormationResult{}, err
		}
		if err := f.cr.PruneBefore(h); err != nil {
			return FormationResult{}, err
		}
		// A committed transaction can gain edges only while some arrival's
		// snapshot predates its commit; beyond the max-span horizon none
		// can, so its flags are garbage.
		for id, end := range f.endBlock {
			if end < h {
				delete(f.endBlock, id)
				delete(f.flags, id)
			}
		}
	}
	if f.compactEvery > 0 && block%f.compactEvery == 0 {
		if err := f.compact(); err != nil {
			return FormationResult{}, err
		}
	}
	f.timing.Formations++
	f.timing.FormationNS += w.elapsedNS()
	return res, nil
}

// compact rebuilds the intern table around the keys the pruned committed
// indices (and any pending slots — empty right after a formation, but the
// invariant is stated generally) still reference, then remaps the
// KeyID-indexed slot tables. Runs at sealed-block boundaries only, so every
// replica compacts identically; a dropped key has no retained entries, so
// certification decisions are unchanged (see TestFoccSCompactionEquivalence).
func (f *FoccS) compact() error {
	pw, pr, _, err := core.CompactKeyState(f.keys, f.cw, f.cr, f.pw, f.pr, nil)
	if err != nil {
		return err
	}
	f.pw, f.pr = pw, pr
	f.rbuf, f.wbuf = f.rbuf[:0], f.wbuf[:0]
	return nil
}

// OnBlockCommitted implements Scheduler (certification already decided).
func (f *FoccS) OnBlockCommitted(uint64, []*protocol.Transaction, []protocol.ValidationCode) {}

// NeedsMVCCValidation implements Scheduler: admitted transactions are
// certified serializable.
func (f *FoccS) NeedsMVCCValidation() bool { return false }

// PendingCount implements Scheduler.
func (f *FoccS) PendingCount() int { return len(f.pending) }

// ResidentKeys implements Scheduler.
func (f *FoccS) ResidentKeys() int { return f.keys.Len() }

// FastForward implements Scheduler.
func (f *FoccS) FastForward(height uint64) error {
	if f.timing.Arrivals > 0 {
		return fmt.Errorf("sched: cannot fast-forward a scheduler with history")
	}
	f.nextBlock = height + 1
	return nil
}

// Timing implements Scheduler.
func (f *FoccS) Timing() Timing { return f.timing }
