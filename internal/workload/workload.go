// Package workload implements the benchmark drivers of Section 5.2: the
// modified Smallbank workload of the Fabric++ evaluation (4 reads + 4 writes
// over 10k accounts with hot-access ratios), the original Smallbank mix and
// Create Account workloads of the FastFabric experiments (Figure 15), and
// the no-op / single-modification micro-workloads of Figure 1 — plus the
// zipfian generator that skews account selection.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/statedb"
)

// Op is one contract invocation a client submits.
type Op struct {
	Contract string
	Function string
	Args     []string
}

// Generator produces a stream of operations. Implementations are
// deterministic given their seed.
type Generator interface {
	// Name identifies the workload in reports.
	Name() string
	// Next returns the next operation.
	Next() Op
	// Seed populates the genesis state the workload expects.
	Seed(db *statedb.DB) error
}

// ---------------------------------------------------------------------------
// Zipfian generator
// ---------------------------------------------------------------------------

// Zipf samples [0, n) with P(i) ∝ 1/(i+1)^theta via an exact inverse-CDF
// table. theta = 0 degenerates to uniform; unlike the YCSB closed form it
// stays exact for theta >= 1 (Figure 1 sweeps theta up to 1.2).
type Zipf struct {
	rng *rand.Rand
	cdf []float64
}

// NewZipf builds the sampler.
func NewZipf(rng *rand.Rand, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("workload: zipf needs n > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Next samples one value.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(z.cdf) {
		lo = len(z.cdf) - 1
	}
	return lo
}

// seedAccounts writes initial modified-Smallbank balances as genesis
// (block 0) state.
func seedAccounts(db *statedb.DB, n int, key func(int) string, balance int64) error {
	writes := make([]protocol.WriteItem, 0, n)
	for i := 0; i < n; i++ {
		writes = append(writes, protocol.WriteItem{
			Key:   key(i),
			Value: []byte(fmt.Sprintf("%d", balance)),
		})
	}
	return db.ApplyBlock(0, []statedb.BlockWrites{{Pos: 1, Writes: writes}})
}

// ---------------------------------------------------------------------------
// Figure 1 micro-workloads
// ---------------------------------------------------------------------------

// NoOp issues transactions with no data access.
type NoOp struct{}

// Name implements Generator.
func (NoOp) Name() string { return "no-op" }

// Next implements Generator.
func (NoOp) Next() Op { return Op{Contract: "kv", Function: "noop"} }

// Seed implements Generator.
func (NoOp) Seed(*statedb.DB) error { return nil }

// SingleMod issues single read-modify-write transactions over Accounts keys
// with zipfian skew — Figure 1's "single modification transactions with
// varying skewness".
type SingleMod struct {
	Accounts int
	Theta    float64
	zipf     *Zipf
}

// NewSingleMod builds the workload.
func NewSingleMod(rng *rand.Rand, accounts int, theta float64) *SingleMod {
	return &SingleMod{Accounts: accounts, Theta: theta, zipf: NewZipf(rng, accounts, theta)}
}

// Name implements Generator.
func (s *SingleMod) Name() string { return fmt.Sprintf("single-mod(θ=%.1f)", s.Theta) }

// Next implements Generator.
func (s *SingleMod) Next() Op {
	acct := s.zipf.Next()
	return Op{Contract: "kv", Function: "rmw", Args: []string{chaincode.AccountKey(fmt.Sprint(acct)), "1"}}
}

// Seed implements Generator.
func (s *SingleMod) Seed(db *statedb.DB) error {
	return seedAccounts(db, s.Accounts, func(i int) string { return chaincode.AccountKey(fmt.Sprint(i)) }, 1000)
}

// ---------------------------------------------------------------------------
// Modified Smallbank (Fabric++ evaluation; Figures 10-14)
// ---------------------------------------------------------------------------

// ModifiedSmallbank issues the Fabric++ evaluation's transactions: each
// reads 4 accounts and writes 4 accounts out of Accounts (default 10k), of
// which HotFrac (default 1%) are hot. Each read targets a hot account with
// probability ReadHotRatio; each write with probability WriteHotRatio.
type ModifiedSmallbank struct {
	Accounts      int
	HotFrac       float64
	ReadHotRatio  float64
	WriteHotRatio float64
	rng           *rand.Rand
}

// NewModifiedSmallbank builds the workload with the paper's defaults for
// unset fields (10k accounts, 1% hot).
func NewModifiedSmallbank(rng *rand.Rand, readHot, writeHot float64) *ModifiedSmallbank {
	return &ModifiedSmallbank{
		Accounts:      10000,
		HotFrac:       0.01,
		ReadHotRatio:  readHot,
		WriteHotRatio: writeHot,
		rng:           rng,
	}
}

// Name implements Generator.
func (m *ModifiedSmallbank) Name() string {
	return fmt.Sprintf("msmallbank(rh=%.0f%%,wh=%.0f%%)", 100*m.ReadHotRatio, 100*m.WriteHotRatio)
}

// pick returns 4 distinct accounts, each hot with probability hotRatio.
func (m *ModifiedSmallbank) pick(hotRatio float64) []string {
	hot := int(float64(m.Accounts) * m.HotFrac)
	if hot < 1 {
		hot = 1
	}
	seen := map[int]bool{}
	out := make([]string, 0, 4)
	for len(out) < 4 {
		var acct int
		if m.rng.Float64() < hotRatio {
			acct = m.rng.Intn(hot)
		} else {
			acct = hot + m.rng.Intn(m.Accounts-hot)
		}
		if !seen[acct] {
			seen[acct] = true
			out = append(out, fmt.Sprint(acct))
		}
	}
	return out
}

// Next implements Generator.
func (m *ModifiedSmallbank) Next() Op {
	args := append(m.pick(m.ReadHotRatio), m.pick(m.WriteHotRatio)...)
	return Op{Contract: "msmallbank", Function: "op", Args: args}
}

// Seed implements Generator.
func (m *ModifiedSmallbank) Seed(db *statedb.DB) error {
	return seedAccounts(db, m.Accounts, func(i int) string { return chaincode.AccountKey(fmt.Sprint(i)) }, 1000)
}

// ---------------------------------------------------------------------------
// Original Smallbank (FastFabric experiments; Figure 15)
// ---------------------------------------------------------------------------

// CreateAccount issues uniform, contention-free account creations (blind
// writes) — Figure 15's first workload.
type CreateAccount struct {
	next int
}

// Name implements Generator.
func (c *CreateAccount) Name() string { return "create-account" }

// Next implements Generator.
func (c *CreateAccount) Next() Op {
	c.next++
	return Op{
		Contract: "smallbank",
		Function: "create_account",
		Args:     []string{fmt.Sprintf("new%d", c.next), "1000", "1000"},
	}
}

// Seed implements Generator.
func (c *CreateAccount) Seed(*statedb.DB) error { return nil }

// MixedSmallbank issues Figure 15's mixed workload: 50% read-only queries,
// 30% single-account updates (deposit_checking, write_check,
// transact_savings), 20% two-account updates (send_payment, amalgamate),
// with zipfian account skew theta.
type MixedSmallbank struct {
	Accounts int
	Theta    float64
	rng      *rand.Rand
	zipf     *Zipf
}

// NewMixedSmallbank builds the workload.
func NewMixedSmallbank(rng *rand.Rand, accounts int, theta float64) *MixedSmallbank {
	return &MixedSmallbank{Accounts: accounts, Theta: theta, rng: rng, zipf: NewZipf(rng, accounts, theta)}
}

// Name implements Generator.
func (m *MixedSmallbank) Name() string { return fmt.Sprintf("mixed-smallbank(θ=%.2f)", m.Theta) }

// Next implements Generator.
func (m *MixedSmallbank) Next() Op {
	a := fmt.Sprint(m.zipf.Next())
	switch r := m.rng.Float64(); {
	case r < 0.50:
		return Op{Contract: "smallbank", Function: "query", Args: []string{a}}
	case r < 0.80:
		fn := []string{"deposit_checking", "write_check", "transact_savings"}[m.rng.Intn(3)]
		return Op{Contract: "smallbank", Function: fn, Args: []string{a, "5"}}
	default:
		b := fmt.Sprint(m.zipf.Next())
		for b == a {
			b = fmt.Sprint(m.zipf.Next())
		}
		if m.rng.Intn(2) == 0 {
			return Op{Contract: "smallbank", Function: "send_payment", Args: []string{a, b, "5"}}
		}
		return Op{Contract: "smallbank", Function: "amalgamate", Args: []string{a, b}}
	}
}

// Seed implements Generator.
func (m *MixedSmallbank) Seed(db *statedb.DB) error {
	writes := make([]protocol.WriteItem, 0, 2*m.Accounts)
	for i := 0; i < m.Accounts; i++ {
		id := fmt.Sprint(i)
		writes = append(writes,
			protocol.WriteItem{Key: chaincode.CheckingKey(id), Value: []byte("10000")},
			protocol.WriteItem{Key: chaincode.SavingsKey(id), Value: []byte("10000")},
		)
	}
	return db.ApplyBlock(0, []statedb.BlockWrites{{Pos: 1, Writes: writes}})
}
