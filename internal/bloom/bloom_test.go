package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1<<12, 4)
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("txn-%d", i)
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestPositionsMatchDirectHashing(t *testing.T) {
	// Precomputed positions must behave identically to the string paths, and
	// positions computed on one filter must be valid on any same-geometry
	// filter.
	proto := New(1<<12, 4)
	other := New(1<<12, 4)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("txn-%d", i)
		pos := proto.Positions(nil, key)
		if len(pos) != 4 {
			t.Fatalf("positions len = %d", len(pos))
		}
		other.AddPositions(pos)
		if !other.MayContain(key) {
			t.Fatalf("AddPositions lost %q for string probe", key)
		}
		if !other.MayContainPositions(pos) {
			t.Fatalf("AddPositions lost %q for position probe", key)
		}
	}
	// A filter that never saw the keys reports them absent via positions too.
	empty := New(1<<12, 4)
	misses := 0
	for i := 0; i < 300; i++ {
		if !empty.MayContainPositions(proto.Positions(nil, fmt.Sprintf("txn-%d", i))) {
			misses++
		}
	}
	if misses != 300 {
		t.Fatalf("empty filter reported %d/300 keys present", 300-misses)
	}
}

func TestPositionsGeometryMismatchPanics(t *testing.T) {
	f := New(1<<10, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched position count")
		}
	}()
	f.AddPositions(make([]uint64, 5))
}

func TestNoFalseNegativesProperty(t *testing.T) {
	prop := func(keys []string) bool {
		f := New(1<<10, 3)
		for _, k := range keys {
			f.Add(k)
		}
		for _, k := range keys {
			if !f.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	f := NewWithEstimate(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("member-%d", i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain(fmt.Sprintf("nonmember-%d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Errorf("false positive rate %v way above target 0.01", rate)
	}
}

func TestUnionEquivalentToInsertAll(t *testing.T) {
	prop := func(as, bs []string) bool {
		a := New(1<<10, 3)
		b := New(1<<10, 3)
		both := New(1<<10, 3)
		for _, k := range as {
			a.Add(k)
			both.Add(k)
		}
		for _, k := range bs {
			b.Add(k)
			both.Add(k)
		}
		a.Union(b)
		// The union must agree with insert-all on every bit, hence on every
		// query. Compare via the members plus random probes.
		for _, k := range append(append([]string(nil), as...), bs...) {
			if !a.MayContain(k) {
				return false
			}
		}
		for i := range a.bits {
			if a.bits[i] != both.bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for incompatible union")
		}
	}()
	New(64, 2).Union(New(128, 2))
}

func TestUnionNilIsNoop(t *testing.T) {
	f := New(64, 2)
	f.Add("x")
	f.Union(nil)
	if !f.MayContain("x") {
		t.Error("nil union clobbered filter")
	}
}

func TestReset(t *testing.T) {
	f := New(256, 3)
	for i := 0; i < 50; i++ {
		f.Add(fmt.Sprintf("k%d", i))
	}
	f.Reset()
	if f.FillRatio() != 0 {
		t.Error("reset filter should be empty")
	}
	if f.ApproxItems() != 0 {
		t.Error("reset filter should report zero items")
	}
	// An empty filter rejects everything.
	for i := 0; i < 50; i++ {
		if f.MayContain(fmt.Sprintf("k%d", i)) {
			t.Error("empty filter reported membership")
		}
	}
}

func TestClone(t *testing.T) {
	f := New(256, 3)
	f.Add("a")
	c := f.Clone()
	c.Add("b")
	if f.MayContain("b") {
		t.Error("clone mutation leaked into original")
	}
	if !c.MayContain("a") || !c.MayContain("b") {
		t.Error("clone lost members")
	}
}

func TestNewPanicsOnZero(t *testing.T) {
	for _, tc := range []struct {
		bits   uint64
		hashes int
	}{{0, 3}, {64, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", tc.bits, tc.hashes)
				}
			}()
			New(tc.bits, tc.hashes)
		}()
	}
}

func TestNewWithEstimatePanicsOnBadRate(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWithEstimate(_, %v) should panic", p)
				}
			}()
			NewWithEstimate(10, p)
		}()
	}
}

func TestFillRatioMonotone(t *testing.T) {
	f := New(1<<10, 4)
	prev := 0.0
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		f.Add(fmt.Sprintf("key-%d", rng.Int()))
		if r := f.FillRatio(); r < prev {
			t.Fatalf("fill ratio decreased: %v -> %v", prev, r)
		} else {
			prev = r
		}
	}
	if prev <= 0 {
		t.Error("fill ratio should be positive after inserts")
	}
	if fpr := f.EstimatedFalsePositiveRate(); fpr <= 0 || fpr >= 1 {
		t.Errorf("implausible estimated FPR %v", fpr)
	}
}

func TestBitsGeometry(t *testing.T) {
	f := New(100, 5) // rounds up to 128
	nbits, hashes := f.Bits()
	if nbits != 128 || hashes != 5 {
		t.Errorf("geometry = (%d,%d), want (128,5)", nbits, hashes)
	}
}
