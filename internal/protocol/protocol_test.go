package protocol

import (
	"bytes"
	"testing"

	"fabricsharp/internal/seqno"
)

func sampleTx() *Transaction {
	return &Transaction{
		ID:            "tx1",
		ClientID:      "alice",
		Contract:      "kv",
		Function:      "transfer",
		Args:          []string{"a", "b", "10"},
		SnapshotBlock: 4,
		RWSet: RWSet{
			Reads: []ReadItem{
				{Key: "a", Version: seqno.Commit(3, 1)},
				{Key: "b", Version: seqno.Commit(4, 2)},
			},
			Writes: []WriteItem{
				{Key: "a", Value: []byte("90")},
				{Key: "b", Value: []byte("110")},
			},
		},
	}
}

func TestStartTS(t *testing.T) {
	tx := sampleTx()
	if got := tx.StartTS(); got != seqno.Snapshot(4) {
		t.Errorf("StartTS = %v", got)
	}
}

func TestDigestDeterministicAndSensitive(t *testing.T) {
	a, b := sampleTx(), sampleTx()
	if !bytes.Equal(a.Digest(), b.Digest()) {
		t.Fatal("digest not deterministic")
	}
	mutations := []func(*Transaction){
		func(tx *Transaction) { tx.ID = "tx2" },
		func(tx *Transaction) { tx.Args[2] = "11" },
		func(tx *Transaction) { tx.SnapshotBlock = 5 },
		func(tx *Transaction) { tx.RWSet.Reads[0].Version = seqno.Commit(3, 2) },
		func(tx *Transaction) { tx.RWSet.Writes[0].Value = []byte("91") },
		func(tx *Transaction) { tx.RWSet.Writes[0].Delete = true },
	}
	for i, mutate := range mutations {
		tx := sampleTx()
		mutate(tx)
		if bytes.Equal(tx.Digest(), a.Digest()) {
			t.Errorf("mutation %d did not change the digest", i)
		}
	}
	if len(a.DigestHex()) != 64 {
		t.Errorf("DigestHex length = %d", len(a.DigestHex()))
	}
}

func TestValidationCodeStrings(t *testing.T) {
	codes := []ValidationCode{
		Valid, MVCCConflict, EndorsementFailure, AbortCycle, AbortStaleSnapshot,
		AbortConcurrentWW, AbortDangerousStructure, AbortSimulation,
		AbortReorderCycle, AbortDuplicate,
	}
	seen := map[string]bool{}
	for _, c := range codes {
		s := c.String()
		if s == "" || seen[s] {
			t.Errorf("code %d renders %q (empty or duplicate)", c, s)
		}
		seen[s] = true
	}
	if ValidationCode(200).String() == "" {
		t.Error("unknown code renders empty")
	}
}

func TestIsEarlyAbort(t *testing.T) {
	early := []ValidationCode{AbortCycle, AbortStaleSnapshot, AbortConcurrentWW,
		AbortDangerousStructure, AbortSimulation, AbortReorderCycle, AbortDuplicate}
	for _, c := range early {
		if !c.IsEarlyAbort() {
			t.Errorf("%v should be early", c)
		}
	}
	for _, c := range []ValidationCode{Valid, MVCCConflict, EndorsementFailure} {
		if c.IsEarlyAbort() {
			t.Errorf("%v should not be early", c)
		}
	}
}

func TestReadWriteKeysDedupSorted(t *testing.T) {
	rw := RWSet{
		Reads:  []ReadItem{{Key: "z"}, {Key: "a"}, {Key: "z"}},
		Writes: []WriteItem{{Key: "m"}, {Key: "b"}, {Key: "m"}},
	}
	if got := rw.ReadKeys(); len(got) != 2 || got[0] != "a" || got[1] != "z" {
		t.Errorf("ReadKeys = %v", got)
	}
	if got := rw.WriteKeys(); len(got) != 2 || got[0] != "b" || got[1] != "m" {
		t.Errorf("WriteKeys = %v", got)
	}
}
