// Package kvstore implements an ordered, persistent key-value store in the
// spirit of LevelDB: a skiplist memtable in front of a write-ahead log,
// flushed into immutable sorted-table (SSTable) files that a background-free,
// deterministic compactor merges. The paper stores its CommittedWriteTxns and
// CommittedReadTxns indices in LevelDB (Section 4.3); this package is the
// stdlib-only substitute and also backs the ledger block store and state
// database persistence.
//
// The store offers point reads, ordered iteration, range and prefix scans —
// exactly the query shapes (point query, Before, Last, range-from) the
// dependency-resolution indices need.
package kvstore

import (
	"bytes"
	"math/rand"
)

const (
	skiplistMaxHeight = 16
	skiplistBranch    = 4 // expected fan-out: height grows with prob 1/4
)

// skipNode is a single skiplist tower. next has one forward pointer per
// level the tower participates in.
type skipNode struct {
	key       []byte
	value     []byte
	tombstone bool
	next      []*skipNode
}

// skiplist is an ordered map from []byte keys to ([]byte value, tombstone)
// entries. It is the memtable of the store and is not safe for concurrent
// mutation; the DB serializes writers.
type skiplist struct {
	head   *skipNode
	height int
	length int
	bytes  int // approximate payload size, drives memtable flushes
	rng    *rand.Rand
}

func newSkiplist() *skiplist {
	return &skiplist{
		head:   &skipNode{next: make([]*skipNode, skiplistMaxHeight)},
		height: 1,
		// Deterministic seed: tower heights only affect performance, and a
		// fixed seed keeps test runs and replicated orderers bit-identical.
		//sharp:allow seaminject fixed seed 0x5ee01e55: tower heights shape performance only, never contents or iteration results
		rng: rand.New(rand.NewSource(0x5ee01e55)),
	}
}

func (s *skiplist) randomHeight() int {
	h := 1
	for h < skiplistMaxHeight && s.rng.Intn(skiplistBranch) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= target, also filling
// prev with the rightmost node before the target at every level (the splice
// points for insertion).
func (s *skiplist) findGreaterOrEqual(target []byte, prev []*skipNode) *skipNode {
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].key, target) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// set inserts or overwrites key with (value, tombstone).
func (s *skiplist) set(key, value []byte, tombstone bool) {
	prev := make([]*skipNode, skiplistMaxHeight)
	for i := range prev {
		prev[i] = s.head
	}
	if node := s.findGreaterOrEqual(key, prev); node != nil && bytes.Equal(node.key, key) {
		s.bytes += len(value) - len(node.value)
		node.value = value
		node.tombstone = tombstone
		return
	}
	h := s.randomHeight()
	if h > s.height {
		s.height = h
	}
	node := &skipNode{
		key:       append([]byte(nil), key...),
		value:     value,
		tombstone: tombstone,
		next:      make([]*skipNode, h),
	}
	for level := 0; level < h; level++ {
		node.next[level] = prev[level].next[level]
		prev[level].next[level] = node
	}
	s.length++
	s.bytes += len(key) + len(value) + 24
}

// get returns the entry for key. ok distinguishes "absent" from "present
// but deleted" (tombstone).
func (s *skiplist) get(key []byte) (value []byte, tombstone, ok bool) {
	node := s.findGreaterOrEqual(key, nil)
	if node == nil || !bytes.Equal(node.key, key) {
		return nil, false, false
	}
	return node.value, node.tombstone, true
}

// first returns the smallest-keyed node, or nil if empty.
func (s *skiplist) first() *skipNode { return s.head.next[0] }

// seek returns the first node with key >= target.
func (s *skiplist) seek(target []byte) *skipNode {
	return s.findGreaterOrEqual(target, nil)
}

// skiplistIterator walks the memtable in ascending key order, surfacing
// tombstones so merge layers can shadow older tables.
type skiplistIterator struct {
	node *skipNode
}

func (s *skiplist) iterator() *skiplistIterator {
	return &skiplistIterator{node: s.first()}
}

func (s *skiplist) iteratorFrom(start []byte) *skiplistIterator {
	if start == nil {
		return s.iterator()
	}
	return &skiplistIterator{node: s.seek(start)}
}

func (it *skiplistIterator) valid() bool { return it.node != nil }

func (it *skiplistIterator) next() { it.node = it.node.next[0] }

func (it *skiplistIterator) entry() (key, value []byte, tombstone bool) {
	return it.node.key, it.node.value, it.node.tombstone
}
