// Package fabric is the runnable, real-time in-process EOV blockchain: the
// library mode of this repository. It wires the membership service, the
// chaincode runtime, endorsing peers with snapshot reads (Algorithm 1), the
// Kafka-model ordering service, replicated orderers running any of the five
// schedulers, and validating peers committing to hash-chained ledgers — the
// full transaction lifecycle of Section 2.1 over Go channels instead of
// gRPC.
//
// A minimal session:
//
//	net, _ := fabric.NewNetwork(fabric.Options{System: sched.SystemSharp})
//	defer net.Close()
//	client, _ := net.NewClient("alice")
//	res, _ := client.Submit("kv", "put", "greeting", "hello")
//	val, _ := client.Query("kv", "get", "greeting")
package fabric

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/consensus"
	"fabricsharp/internal/identity"
	"fabricsharp/internal/kvstore"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/seqno"
	"fabricsharp/internal/statedb"
)

// Options configures a network.
type Options struct {
	// System selects the ordering-phase concurrency control
	// (default sched.SystemSharp).
	System sched.System
	// Peers is the number of endorsing/validating peers (default 4, the
	// paper's setup).
	Peers int
	// Orderers is the number of replicated orderers (default 2). All run
	// the same scheduler on the same consensus stream; the first one
	// delivers blocks.
	Orderers int
	// BlockSize cuts a block at this many pending transactions
	// (default 100).
	BlockSize int
	// BlockTimeout cuts a partial block (default 500ms).
	BlockTimeout time.Duration
	// Contracts to deploy; defaults to the built-in suite (kv, smallbank,
	// msmallbank, supplychain).
	Contracts []chaincode.Contract
	// MaxSpan is Sharp's pruning horizon (default 10).
	MaxSpan uint64
	// SubmitTimeout bounds Client.Submit waiting for a commit
	// (default 10s).
	SubmitTimeout time.Duration
	// HashCommitment enables the Section 3.5 two-phase submission: clients
	// sequence a digest commitment first and disclose the payload after;
	// orderers process disclosures in commitment order, which blinds
	// order-choosing adversaries to transaction contents (see
	// Client.SubmitCommitted).
	HashCommitment bool
	// DataDir, when non-empty, persists peer 0's ledger and latest state in
	// kvstore databases under it; a network booted again on the same
	// directory resumes from the stored chain (crash recovery is inherited
	// from the kvstore WAL).
	DataDir string
	// Consensus selects the ordering service backend: "kafka" (default,
	// the paper's setup) or "raft" (the crash-fault replicated log that
	// replaced Kafka in later Fabric versions). The schedulers are
	// oblivious to the choice.
	Consensus string
	// RaftNodes sizes the raft cluster (default 3; kafka ignores it).
	RaftNodes int
}

func (o Options) withDefaults() Options {
	if o.System == "" {
		o.System = sched.SystemSharp
	}
	if o.Peers == 0 {
		o.Peers = 4
	}
	if o.Orderers == 0 {
		o.Orderers = 2
	}
	if o.BlockSize == 0 {
		o.BlockSize = 100
	}
	if o.BlockTimeout == 0 {
		o.BlockTimeout = 500 * time.Millisecond
	}
	if len(o.Contracts) == 0 {
		o.Contracts = []chaincode.Contract{
			chaincode.KVContract{}, chaincode.Smallbank{},
			chaincode.ModifiedSmallbank{}, chaincode.SupplyChain{},
		}
	}
	if o.MaxSpan == 0 {
		o.MaxSpan = 10
	}
	if o.SubmitTimeout == 0 {
		o.SubmitTimeout = 10 * time.Second
	}
	if o.Consensus == "" {
		o.Consensus = "kafka"
	}
	if o.RaftNodes == 0 {
		o.RaftNodes = 3
	}
	return o
}

// TxResult reports a transaction's fate.
type TxResult struct {
	TxID  protocol.TxID
	Code  protocol.ValidationCode
	Block uint64 // 0 when dropped before the ledger
}

// Committed reports whether the transaction made it into the state.
func (r TxResult) Committed() bool { return r.Code == protocol.Valid }

// Network is a running blockchain network.
type Network struct {
	opts      Options
	msp       *identity.Service
	registry  *chaincode.Registry
	policy    identity.Policy
	kafka     consensus.Service
	peers     []*Peer
	orderers  []*orderer
	waitersMu sync.Mutex
	waiters   map[protocol.TxID]chan TxResult
	txSeq     uint64
	seqMu     sync.Mutex
	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
	closers   []interface{ Close() error }
}

// Peer is an endorsing + validating peer with its own state and ledger.
type Peer struct {
	id    *identity.Identity
	state *statedb.DB
	chain *ledger.Chain
}

// State exposes the peer's state database (read-only use).
func (p *Peer) State() *statedb.DB { return p.state }

// Chain exposes the peer's ledger.
func (p *Peer) Chain() *ledger.Chain { return p.chain }

// NewNetwork boots a network.
func NewNetwork(opts Options) (*Network, error) {
	opts = opts.withDefaults()
	var ordering consensus.Service
	switch opts.Consensus {
	case "kafka":
		ordering = consensus.NewKafka()
	case "raft":
		ordering = consensus.NewRaft(opts.RaftNodes)
	default:
		return nil, fmt.Errorf("fabric: unknown consensus backend %q", opts.Consensus)
	}
	n := &Network{
		opts:     opts,
		msp:      identity.NewService(),
		registry: chaincode.NewRegistry(opts.Contracts...),
		kafka:    ordering,
		waiters:  map[protocol.TxID]chan TxResult{},
		done:     make(chan struct{}),
	}
	var peerIDs []string
	for i := 0; i < opts.Peers; i++ {
		name := fmt.Sprintf("peer%d", i)
		id, err := n.msp.Enroll(name, identity.RolePeer)
		if err != nil {
			return nil, err
		}
		var (
			stateOpts statedb.Options
			chainKV   *kvstore.DB
		)
		if opts.DataDir != "" && i == 0 {
			// Peer 0 is the durable replica: its ledger blocks and latest
			// state live in kvstore databases under DataDir.
			stateKV, err := kvstore.Open(kvstore.Options{Dir: filepath.Join(opts.DataDir, "state")})
			if err != nil {
				return nil, err
			}
			n.closers = append(n.closers, stateKV)
			stateOpts.Backing = stateKV
			if chainKV, err = kvstore.Open(kvstore.Options{Dir: filepath.Join(opts.DataDir, "blocks")}); err != nil {
				return nil, err
			}
			n.closers = append(n.closers, chainKV)
		}
		state, err := statedb.New(stateOpts)
		if err != nil {
			return nil, err
		}
		chain, err := ledger.NewChain(chainKV)
		if err != nil {
			return nil, err
		}
		n.peers = append(n.peers, &Peer{id: id, state: state, chain: chain})
		peerIDs = append(peerIDs, name)
	}
	// The paper's endorsement policy: any single peer endorses
	// (Section 5.1), so any of the peers can spread the load.
	n.policy = identity.AnyPeerOf(peerIDs...)

	for i := 0; i < opts.Orderers; i++ {
		name := fmt.Sprintf("orderer%d", i)
		if _, err := n.msp.Enroll(name, identity.RoleOrderer); err != nil {
			return nil, err
		}
		scheduler, err := sched.New(opts.System, sched.Options{MaxSpan: opts.MaxSpan})
		if err != nil {
			return nil, err
		}
		chain, err := ledger.NewChain(nil)
		if err != nil {
			return nil, err
		}
		o := &orderer{
			net:       n,
			name:      name,
			scheduler: scheduler,
			chain:     chain,
			deliver:   i == 0, // the lead orderer delivers to peers
			seen:      map[protocol.TxID]bool{},
		}
		if opts.HashCommitment {
			o.broker = NewCommitmentBroker()
		}
		n.orderers = append(n.orderers, o)
	}
	// When resuming from disk, adopt the stored chain everywhere before the
	// orderers start consuming the stream.
	if opts.DataDir != "" && n.peers[0].chain.Len() > 0 {
		if err := n.replayStoredChain(); err != nil {
			return nil, err
		}
	}
	for _, o := range n.orderers {
		n.wg.Add(1)
		go o.run()
	}
	return n, nil
}

// replayStoredChain distributes peer 0's persisted blocks to the in-memory
// peers and the orderers, and fast-forwards every scheduler past the stored
// height. Restart semantics are clean-shutdown: nothing was pending across
// the restart, so new transactions (whose snapshots are at or above the
// stored height) cannot conflict with pre-restart history and the schedulers
// may start from an empty dependency graph.
func (n *Network) replayStoredChain() error {
	ref := n.peers[0]
	var walkErr error
	apply := func(p *Peer, b *ledger.Block) error {
		blk := *b
		if err := p.chain.Append(&blk); err != nil {
			return err
		}
		if len(blk.Validation) != len(blk.Transactions) {
			return fmt.Errorf("fabric: stored block %d missing validation metadata", blk.Header.Number)
		}
		var writes []statedb.BlockWrites
		for i, tx := range blk.Transactions {
			if blk.Validation[i] == protocol.Valid {
				writes = append(writes, statedb.BlockWrites{Pos: uint32(i + 1), Writes: tx.RWSet.Writes})
			}
		}
		return p.state.ApplyBlock(blk.Header.Number, writes)
	}
	ref.chain.ForEach(func(b *ledger.Block) bool {
		for _, p := range n.peers[1:] {
			if walkErr = apply(p, b); walkErr != nil {
				return false
			}
		}
		for _, o := range n.orderers {
			blk := *b
			if walkErr = o.chain.Append(&blk); walkErr != nil {
				return false
			}
		}
		return true
	})
	if walkErr != nil {
		return walkErr
	}
	height, _ := ref.chain.Height()
	for _, o := range n.orderers {
		if err := o.scheduler.FastForward(height); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts the network down and waits for the orderers to stop.
func (n *Network) Close() {
	n.closeOnce.Do(func() {
		close(n.done)
		n.kafka.Close()
	})
	n.wg.Wait()
	for _, c := range n.closers {
		_ = c.Close()
	}
}

// Peer returns peer i.
func (n *Network) Peer(i int) *Peer { return n.peers[i] }

// Orderers returns the number of orderer replicas.
func (n *Network) Orderers() int { return len(n.orderers) }

// OrdererChain exposes orderer i's sealed chain (agreement checks).
func (n *Network) OrdererChain(i int) *ledger.Chain { return n.orderers[i].chain }

// Height returns the lead peer's committed block height.
func (n *Network) Height() uint64 { return n.peers[0].state.Height() }

// WaitIdle blocks until every submitted transaction has been resolved or the
// timeout elapses; it reports whether the network went idle.
func (n *Network) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		n.waitersMu.Lock()
		idle := len(n.waiters) == 0
		n.waitersMu.Unlock()
		if idle {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// resolve delivers a transaction result to its waiter.
func (n *Network) resolve(id protocol.TxID, res TxResult) {
	n.waitersMu.Lock()
	ch, ok := n.waiters[id]
	if ok {
		delete(n.waiters, id)
	}
	n.waitersMu.Unlock()
	if ok {
		ch <- res
	}
}

// snapshotReader performs Algorithm 1's snapshot reads on a peer.
type snapshotReader struct {
	state *statedb.DB
	snap  uint64
}

func (r snapshotReader) Read(key string) ([]byte, seqno.Seq, bool, error) {
	vv, ok, err := r.state.GetAt(key, r.snap)
	if err != nil || !ok {
		return nil, seqno.Seq{}, false, err
	}
	return vv.Value, vv.Version, true, nil
}

// ReadRange implements chaincode.RangeReader over the same snapshot.
func (r snapshotReader) ReadRange(start, end string) ([]string, error) {
	return r.state.KeysInRange(start, end, r.snap), nil
}

// simulateOnPeer runs a read-only evaluation against the peer's latest
// snapshot (the query path — no endorsement, no ordering).
func simulateOnPeer(contract chaincode.Contract, function string, args []string, p *Peer) (protocol.RWSet, []byte, error) {
	return chaincode.SimulateFull(contract, function, args, snapshotReader{state: p.state, snap: p.state.Height()})
}

// Endorse simulates a proposal on this peer against its latest block
// snapshot and signs the result.
func (p *Peer) Endorse(registry *chaincode.Registry, tx *protocol.Transaction) ([]byte, error) {
	contract, ok := registry.Get(tx.Contract)
	if !ok {
		return nil, fmt.Errorf("fabric: unknown contract %q", tx.Contract)
	}
	snap := p.state.Height()
	rwset, result, err := chaincode.SimulateFull(contract, tx.Function, tx.Args, snapshotReader{state: p.state, snap: snap})
	if err != nil {
		return nil, fmt.Errorf("fabric: simulation failed: %w", err)
	}
	tx.SnapshotBlock = snap
	tx.RWSet = rwset
	tx.Endorsements = append(tx.Endorsements, protocol.Endorsement{
		EndorserID: p.id.ID,
		Signature:  p.id.Sign(tx.Digest()),
	})
	return result, nil
}
