package scenario

import (
	"math/rand"
	"reflect"
	"testing"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/statedb"
	"fabricsharp/internal/workload"
)

func freshDB(t *testing.T) *statedb.DB {
	t.Helper()
	db, err := statedb.New(statedb.Options{})
	if err != nil {
		t.Fatalf("statedb.New: %v", err)
	}
	return db
}

func TestRegisterRejectsBadDescriptors(t *testing.T) {
	kv := func() []chaincode.Contract { return []chaincode.Contract{chaincode.KVContract{}} }
	gen := func(rng *rand.Rand, p Params) (workload.Generator, error) { return workload.NoOp{}, nil }
	r := NewRegistry()
	cases := map[string]Scenario{
		"empty name":    {Contracts: kv, Generator: gen},
		"nil contracts": {Name: "x", Generator: gen},
		"nil generator": {Name: "x", Contracts: kv},
	}
	for name, s := range cases {
		if err := r.Register(s); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
	if err := r.Register(Scenario{Name: "x", Contracts: kv, Generator: gen}); err != nil {
		t.Fatalf("valid descriptor rejected: %v", err)
	}
	if err := r.Register(Scenario{Name: "x", Contracts: kv, Generator: gen}); err == nil {
		t.Fatalf("duplicate name accepted")
	}
	if _, ok := r.Get("x"); !ok {
		t.Fatalf("registered scenario not resolvable")
	}
	if _, ok := r.Get("nosuch"); ok {
		t.Fatalf("unknown name resolved")
	}
}

func TestNamesSortedAndDeterministic(t *testing.T) {
	kv := func() []chaincode.Contract { return []chaincode.Contract{chaincode.KVContract{}} }
	gen := func(rng *rand.Rand, p Params) (workload.Generator, error) { return workload.NoOp{}, nil }
	r := NewRegistry()
	// Register out of order; Names must come back sorted regardless.
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if err := r.Register(Scenario{Name: name, Contracts: kv, Generator: gen}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	want := []string{"alpha", "mid", "zeta"}
	for i := 0; i < 5; i++ {
		if got := r.Names(); !reflect.DeepEqual(got, want) {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestBuiltinRoster(t *testing.T) {
	want := []string{"analytics", "auction", "create", "mixed", "msmallbank", "noop", "singlemod", "token"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("builtin names = %v, want %v", got, want)
	}
	for _, name := range want {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("Get(%q) missing", name)
		}
		if sc.Doc == "" {
			t.Errorf("%s: empty Doc", name)
		}
		if len(sc.Contracts()) == 0 {
			t.Errorf("%s: no contracts", name)
		}
	}
}

func TestContractsDedupAndSort(t *testing.T) {
	contracts := Builtin().Contracts()
	if len(contracts) == 0 {
		t.Fatal("no contracts from builtin registry")
	}
	seen := map[string]bool{}
	prev := ""
	for _, c := range contracts {
		name := c.Name()
		if seen[name] {
			t.Errorf("contract %q appears twice", name)
		}
		seen[name] = true
		if name <= prev {
			t.Errorf("contracts out of order: %q after %q", name, prev)
		}
		prev = name
	}
	// Extras merge in and an extra that shadows an existing name never
	// introduces a duplicate entry.
	withExtra := Builtin().Contracts(chaincode.SupplyChain{}, chaincode.SupplyChain{})
	if len(withExtra) != len(contracts)+1 {
		t.Fatalf("extras: got %d contracts, want %d", len(withExtra), len(contracts)+1)
	}
	if !reflect.DeepEqual(withExtra, AllContracts()) {
		// AllContracts is exactly builtin + supply chain.
		t.Fatalf("AllContracts diverges from Builtin().Contracts(SupplyChain)")
	}
}

// TestGenesisSatisfiesInvariant seeds each builtin scenario's genesis into a
// fresh database and checks the scenario's own invariant against it: a
// scenario whose declared starting state violates its declared invariant
// could never pass the chaos matrix.
func TestGenesisSatisfiesInvariant(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			sc, _ := Get(name)
			p := Params{Accounts: 8, Theta: 0.5, ReadHot: 0.3, WriteHot: 0.3}
			db := freshDB(t)
			if err := sc.Seed(db, p); err != nil {
				t.Fatalf("Seed: %v", err)
			}
			if err := sc.CheckInvariant(db, p); err != nil {
				t.Fatalf("genesis state violates invariant: %v", err)
			}
			// The generator must construct under the same params it will be
			// driven with, and emit ops that target the scenario's contracts.
			gen, err := sc.Generator(rand.New(rand.NewSource(1)), p)
			if err != nil {
				t.Fatalf("Generator: %v", err)
			}
			names := map[string]bool{}
			for _, c := range sc.Contracts() {
				names[c.Name()] = true
			}
			for i := 0; i < 50; i++ {
				op := gen.Next()
				if !names[op.Contract] {
					t.Fatalf("op %d targets contract %q, not declared by scenario", i, op.Contract)
				}
			}
		})
	}
}

func TestGeneratorDeterministicPerSeed(t *testing.T) {
	for _, name := range Names() {
		sc, _ := Get(name)
		p := Params{Accounts: 16, Theta: 0.5, ReadHot: 0.3, WriteHot: 0.3}
		a, err := sc.Generator(rand.New(rand.NewSource(7)), p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := sc.Generator(rand.New(rand.NewSource(7)), p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < 100; i++ {
			if x, y := a.Next(), b.Next(); !reflect.DeepEqual(x, y) {
				t.Fatalf("%s: op %d diverges under identical seeds: %+v vs %+v", name, i, x, y)
			}
		}
	}
}

func TestNilSafeAccessors(t *testing.T) {
	s := Scenario{Name: "bare"}
	if w := s.GenesisWrites(Params{}); w != nil {
		t.Fatalf("GenesisWrites on nil Genesis = %v, want nil", w)
	}
	db := freshDB(t)
	if err := s.Seed(db, Params{}); err != nil {
		t.Fatalf("Seed with nil Genesis: %v", err)
	}
	if err := s.CheckInvariant(db, Params{}); err != nil {
		t.Fatalf("CheckInvariant with nil Verify: %v", err)
	}
}
