#!/usr/bin/env bash
# cluster_smoke.sh — boot a real 3-OS-process EOV cluster (1 orderer +
# 2 peers), drive SmallBank traffic through it with the sharpnet wire
# client, and assert every peer converges to bit-identical chain tip hashes
# and state fingerprints. Runs once per requested system. CI runs this as
# the cluster-smoke job; node logs land in $LOGDIR for artifact upload.
#
# Environment knobs:
#   SYSTEMS   systems to exercise              (default: "fabric# focc-l")
#   CLIENTS   concurrent load clients          (default: 4)
#   TXS       transactions per client          (default: 118)
#   ACCOUNTS  SmallBank account pool           (default: 28; total tx =
#             ACCOUNTS + CLIENTS*TXS = 500 with the defaults)
#   PORT_BASE first TCP port                   (default: 27050)
#   LOGDIR    where node logs go               (default: ./cluster-logs)
#   RESCUE    1 = post-order re-execution on   (default: 1; set 0 to disable)
set -euo pipefail

SYSTEMS=${SYSTEMS:-"fabric# focc-l"}
CLIENTS=${CLIENTS:-4}
TXS=${TXS:-118}
ACCOUNTS=${ACCOUNTS:-28}
PORT_BASE=${PORT_BASE:-27050}
LOGDIR=${LOGDIR:-cluster-logs}
RESCUE=${RESCUE:-1}
BIN=$(mktemp -d)

RESCUE_FLAG=""
if [ "$RESCUE" = "1" ]; then
  RESCUE_FLAG="-rescue"
fi

mkdir -p "$LOGDIR"
go build -o "$BIN" ./cmd/fabricnode ./cmd/sharpnet

PIDS=()
teardown() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]:-}"; do
    wait "$pid" 2>/dev/null || true
  done
  PIDS=()
}
trap teardown EXIT

port=$PORT_BASE
for system in $SYSTEMS; do
  slug=$(printf '%s' "$system" | tr -c 'a-z0-9' '-')
  orderer_port=$port; peer0_port=$((port+1)); peer1_port=$((port+2))
  port=$((port+3))
  echo "=== cluster smoke: $system (orderer :$orderer_port, peers :$peer0_port :$peer1_port) ==="

  "$BIN/fabricnode" -role orderer -listen "127.0.0.1:$orderer_port" \
      -peers peer0,peer1 -system "$system" -block-size 50 -block-timeout 50ms \
      $RESCUE_FLAG \
      > "$LOGDIR/orderer-$slug.log" 2>&1 &
  PIDS+=($!)
  "$BIN/fabricnode" -role peer -name peer0 -listen "127.0.0.1:$peer0_port" \
      -orderer "127.0.0.1:$orderer_port" -peers peer0,peer1 -system "$system" \
      $RESCUE_FLAG \
      > "$LOGDIR/peer0-$slug.log" 2>&1 &
  PIDS+=($!)
  "$BIN/fabricnode" -role peer -name peer1 -listen "127.0.0.1:$peer1_port" \
      -orderer "127.0.0.1:$orderer_port" -peers peer0,peer1 -system "$system" \
      $RESCUE_FLAG \
      > "$LOGDIR/peer1-$slug.log" 2>&1 &
  PIDS+=($!)

  # The wire client retries dials, so no explicit readiness wait is needed.
  "$BIN/sharpnet" -mode load -orderer "127.0.0.1:$orderer_port" \
      -peer-addrs "127.0.0.1:$peer0_port,127.0.0.1:$peer1_port" \
      -clients "$CLIENTS" -txs "$TXS" -accounts "$ACCOUNTS" \
      | tee "$LOGDIR/load-$slug.log"

  teardown
  echo "=== $system: OK ==="
done
echo "cluster smoke passed for: $SYSTEMS"
