package wire

import "fmt"

// Trace messages drain a node's always-on stage-tracing ring (see
// internal/trace) over the wire. They are purely additive message types —
// the frame Version stays unchanged; nodes that predate them fail loudly at
// dispatch, which is the versioning contract for new types.

// TraceEvent mirrors trace.Event for the wire: one recorded stage timestamp.
// wire does not import internal/trace (the codec stays leaf-level); the node
// layer converts between the two shapes.
type TraceEvent struct {
	TxID   string
	Stage  uint8
	Block  uint64
	WallNS int64
	Seq    uint64
}

// TraceReq asks a node to drain its tracing ring. It has no parameters —
// the payload exists so the message still round-trips canonically.
type TraceReq struct{}

// EncodeTraceReq renders a TraceReq canonically (empty payload).
func EncodeTraceReq(TraceReq) []byte { return nil }

// DecodeTraceReq decodes a TraceReq.
func DecodeTraceReq(b []byte) (TraceReq, error) {
	d := &decoder{buf: b}
	if err := d.finish(); err != nil {
		return TraceReq{}, fmt.Errorf("trace-req: %w", err)
	}
	return TraceReq{}, nil
}

// TraceDump answers TraceReq: one node's drained ring, oldest event first.
type TraceDump struct {
	// Node and Role identify the origin node.
	Node string
	Role string
	// Recorded is the ring's lifetime event count; Recorded - len(Events)
	// events were lost to wraparound.
	Recorded uint64
	Events   []TraceEvent
}

// traceEventEncodedMin is the minimum encoded size of one TraceEvent:
// u32 TxID length + u8 stage + u64 block + u64 wall + u64 seq.
const traceEventEncodedMin = 4 + 1 + 8 + 8 + 8

// EncodeTraceDump renders t canonically.
func EncodeTraceDump(t *TraceDump) []byte {
	dst := appendString(nil, t.Node)
	dst = appendString(dst, t.Role)
	dst = appendU64(dst, t.Recorded)
	dst = appendU32(dst, uint32(len(t.Events)))
	for _, ev := range t.Events {
		dst = appendString(dst, ev.TxID)
		dst = appendU8(dst, ev.Stage)
		dst = appendU64(dst, ev.Block)
		dst = appendU64(dst, uint64(ev.WallNS))
		dst = appendU64(dst, ev.Seq)
	}
	return dst
}

// DecodeTraceDump decodes a TraceDump.
func DecodeTraceDump(b []byte) (*TraceDump, error) {
	d := &decoder{buf: b}
	t := &TraceDump{
		Node:     d.string(),
		Role:     d.string(),
		Recorded: d.u64(),
	}
	if n := d.count(traceEventEncodedMin); n > 0 {
		t.Events = make([]TraceEvent, n)
		for i := range t.Events {
			t.Events[i] = TraceEvent{
				TxID:   d.string(),
				Stage:  d.u8(),
				Block:  d.u64(),
				WallNS: int64(d.u64()),
				Seq:    d.u64(),
			}
		}
	}
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("trace-dump: %w", err)
	}
	return t, nil
}
