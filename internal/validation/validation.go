// Package validation implements the third phase of the EOV pipeline: each
// peer checks a delivered block's transactions against the endorsement
// policy and (for systems that need it) the MVCC serializability rule, then
// commits the valid writes to the state database.
//
// The MVCC rule is vanilla Fabric's: a transaction is valid iff every key it
// read still carries the version it observed — considering both committed
// state and the writes of earlier valid transactions in the same block. For
// FabricSharp and Focc-s the ordering phase already guarantees
// serializability, so peers skip the concurrency check entirely (Figure 8).
//
// ValidateAndCommit is the sequential reference implementation, a thin
// wrapper over ComputeVerdicts — the shared verdict function that the
// orderers' shadow validators (see ShadowState) run against a value-free
// version overlay at every cut. The internal/commit package builds the
// parallel production path on the same Overlay and ReadsFresh primitives,
// partitioning a block into key-disjoint conflict groups that validate
// concurrently, and asserts its codes byte-equal against the orderer's
// precomputed ones.
package validation

import (
	"fmt"

	"fabricsharp/internal/identity"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
	"fabricsharp/internal/statedb"
)

// Options configures block validation.
type Options struct {
	// MVCC enables the stale-read serializability check.
	MVCC bool
	// MSP and Policy, when both set, enable endorsement verification.
	MSP    *identity.Service
	Policy identity.Policy
}

// Overlay tracks the versions written by earlier valid transactions of the
// block being validated, shadowing committed state. Deleted keys are
// recorded as explicit tombstones so a read of a freshly deleted key
// observes "absent" rather than the committed version underneath. An Overlay
// is confined to one validation goroutine; it is not safe for concurrent
// use.
type Overlay struct {
	entries map[string]overlayEntry
}

type overlayEntry struct {
	version seqno.Seq
	deleted bool
}

// NewOverlay returns an empty overlay.
func NewOverlay() *Overlay {
	return &Overlay{entries: map[string]overlayEntry{}}
}

// Record shadows the keys of writes with version ver (tombstoning deletes).
func (o *Overlay) Record(ver seqno.Seq, writes []protocol.WriteItem) {
	for _, w := range writes {
		o.entries[w.Key] = overlayEntry{version: ver, deleted: w.Delete}
	}
}

// Version resolves key's current version: the overlay first, then the
// committed versions in base.
func (o *Overlay) Version(base VersionSource, key string) (seqno.Seq, bool) {
	if e, ok := o.entries[key]; ok {
		if e.deleted {
			return seqno.Seq{}, false
		}
		return e.version, true
	}
	return base.Version(key)
}

// ValidateAndCommit validates every transaction of blk in order and commits
// the valid ones' writes to db with versions (block, position). It returns
// the per-transaction validation codes, in block order. The verdicts come
// from ComputeVerdicts over the database's version view — the same function
// the orderers' shadow validators run, so the two paths cannot drift.
func ValidateAndCommit(db *statedb.DB, blk *ledger.Block, opts Options) ([]protocol.ValidationCode, error) {
	codes := ComputeVerdicts(DBVersions(db), blk.Header.Number, blk.Transactions, opts)
	var writes []statedb.BlockWrites
	for i, tx := range blk.Transactions {
		if codes[i] != protocol.Valid {
			continue
		}
		writes = append(writes, statedb.BlockWrites{Pos: uint32(i + 1), Writes: tx.RWSet.Writes})
	}
	if err := db.ApplyBlock(blk.Header.Number, writes); err != nil {
		return nil, fmt.Errorf("validation: commit block %d: %w", blk.Header.Number, err)
	}
	return codes, nil
}

// ReadsFresh reports whether every read version matches the current version
// of its key (zero version matching "absent").
func ReadsFresh(tx *protocol.Transaction, current func(string) (seqno.Seq, bool)) bool {
	for _, r := range tx.RWSet.Reads {
		ver, exists := current(r.Key)
		observedExisting := r.Version != seqno.Seq{}
		if exists != observedExisting {
			return false
		}
		if exists && ver != r.Version {
			return false
		}
	}
	return true
}

// Stale is a convenience wrapper reporting whether tx would fail the MVCC
// check against the database's latest state (no block overlay). The
// endorser-side early aborts of Fabric++ and the doomed-transaction
// detection of Focc-l use it.
func Stale(db *statedb.DB, tx *protocol.Transaction) bool {
	return !ReadsFresh(tx, func(key string) (seqno.Seq, bool) {
		vv, ok := db.Get(key)
		if !ok {
			return seqno.Seq{}, false
		}
		return vv.Version, true
	})
}
