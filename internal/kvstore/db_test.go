package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T, opts Options) *DB {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPutGetDelete(t *testing.T) {
	for _, mode := range []string{"disk", "memory"} {
		t.Run(mode, func(t *testing.T) {
			var db *DB
			if mode == "disk" {
				db = openTemp(t, Options{})
			} else {
				var err error
				db, err = Open(Options{})
				if err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Put([]byte("a"), []byte("1")); err != nil {
				t.Fatal(err)
			}
			v, ok, err := db.Get([]byte("a"))
			if err != nil || !ok || string(v) != "1" {
				t.Fatalf("Get=%q,%v,%v", v, ok, err)
			}
			if err := db.Put([]byte("a"), []byte("2")); err != nil {
				t.Fatal(err)
			}
			v, _, _ = db.Get([]byte("a"))
			if string(v) != "2" {
				t.Fatalf("overwrite failed: %q", v)
			}
			if err := db.Delete([]byte("a")); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := db.Get([]byte("a")); ok {
				t.Fatal("deleted key still present")
			}
			if _, ok, _ := db.Get([]byte("never")); ok {
				t.Fatal("absent key reported present")
			}
		})
	}
}

func TestIterationSortedAndBounded(t *testing.T) {
	db := openTemp(t, Options{})
	keys := []string{"d", "a", "c", "b", "e"}
	for _, k := range keys {
		if err := db.Put([]byte(k), []byte("v"+k)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for it := db.NewIterator(nil, nil); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	want := []string{"a", "b", "c", "d", "e"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("full scan = %v want %v", got, want)
	}
	got = nil
	for it := db.NewIterator([]byte("b"), []byte("d")); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	if fmt.Sprint(got) != fmt.Sprint([]string{"b", "c"}) {
		t.Fatalf("bounded scan = %v", got)
	}
}

func TestPrefixIterator(t *testing.T) {
	db := openTemp(t, Options{})
	for _, k := range []string{"acct/1", "acct/2", "acct/3", "balance/1", "aard"} {
		if err := db.Put([]byte(k), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for it := db.NewPrefixIterator([]byte("acct/")); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	if fmt.Sprint(got) != fmt.Sprint([]string{"acct/1", "acct/2", "acct/3"}) {
		t.Fatalf("prefix scan = %v", got)
	}
}

func TestPrefixSuccessor(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte
	}{
		{[]byte("abc"), []byte("abd")},
		{[]byte{0x01, 0xff}, []byte{0x02}},
		{[]byte{0xff, 0xff}, nil},
		{nil, nil},
	}
	for _, c := range cases {
		if got := PrefixSuccessor(c.in); !bytes.Equal(got, c.want) {
			t.Errorf("PrefixSuccessor(%x)=%x want %x", c.in, got, c.want)
		}
	}
}

func TestFlushAndReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Post-flush writes live only in the WAL.
	if err := db.Put([]byte("wal-only"), []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("k005")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, ok, _ := db2.Get([]byte("k042")); !ok || string(v) != "v42" {
		t.Fatalf("flushed key lost: %q %v", v, ok)
	}
	if v, ok, _ := db2.Get([]byte("wal-only")); !ok || string(v) != "yes" {
		t.Fatalf("wal key lost: %q %v", v, ok)
	}
	if _, ok, _ := db2.Get([]byte("k005")); ok {
		t.Fatal("wal tombstone lost")
	}
}

func TestRecoveryWithoutClose(t *testing.T) {
	// Simulate a crash: write, never Close, reopen from the same directory.
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("c%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Flush the WAL buffer as the OS would have on a real crash of the
	// process (the data made it to the file, fsync pending).
	if err := db.wal.flush(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n := db2.Len(); n != 50 {
		t.Fatalf("recovered %d keys, want 50", n)
	}
}

func TestTornWALTailTolerated(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.Put([]byte(fmt.Sprintf("t%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate the WAL mid-record.
	walPath := filepath.Join(dir, walName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n := db2.Len(); n != 9 {
		t.Fatalf("recovered %d keys after torn tail, want 9", n)
	}
}

func TestCompactionPreservesContent(t *testing.T) {
	// Tiny memtable forces many flushes and compactions.
	db := openTemp(t, Options{MemtableBytes: 512, CompactAfter: 2})
	model := map[string]string{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(300))
		switch rng.Intn(4) {
		case 0:
			delete(model, k)
			if err := db.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
		default:
			v := fmt.Sprintf("val-%d", i)
			model[k] = v
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	checkAgainstModel(t, db, model)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	checkAgainstModel(t, db, model)
}

func checkAgainstModel(t *testing.T, db *DB, model map[string]string) {
	t.Helper()
	for k, want := range model {
		v, ok, err := db.Get([]byte(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("Get(%q)=%q,%v,%v want %q", k, v, ok, err, want)
		}
	}
	var modelKeys []string
	for k := range model {
		modelKeys = append(modelKeys, k)
	}
	sort.Strings(modelKeys)
	var got []string
	for it := db.NewIterator(nil, nil); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
		if want := model[string(it.Key())]; want != string(it.Value()) {
			t.Fatalf("iterator value mismatch at %q", it.Key())
		}
	}
	if fmt.Sprint(got) != fmt.Sprint(modelKeys) {
		t.Fatalf("iterator keys %d != model keys %d", len(got), len(modelKeys))
	}
}

func TestModelEquivalenceProperty(t *testing.T) {
	type op struct {
		Del bool
		K   uint8
		V   uint16
	}
	prop := func(ops []op) bool {
		db, err := Open(Options{}) // in-memory
		if err != nil {
			return false
		}
		model := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("k%d", o.K%32)
			if o.Del {
				delete(model, k)
				if err := db.Delete([]byte(k)); err != nil {
					return false
				}
			} else {
				v := fmt.Sprintf("v%d", o.V)
				model[k] = v
				if err := db.Put([]byte(k), []byte(v)); err != nil {
					return false
				}
			}
		}
		for k, want := range model {
			v, ok, err := db.Get([]byte(k))
			if err != nil || !ok || string(v) != want {
				return false
			}
		}
		n := 0
		for it := db.NewIterator(nil, nil); it.Valid(); it.Next() {
			n++
		}
		return n == len(model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteRange(t *testing.T) {
	db := openTemp(t, Options{})
	for i := 0; i < 10; i++ {
		if err := db.Put([]byte(fmt.Sprintf("r%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DeleteRange([]byte("r2"), []byte("r7")); err != nil {
		t.Fatal(err)
	}
	want := []string{"r0", "r1", "r7", "r8", "r9"}
	var got []string
	for it := db.NewIterator(nil, nil); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after DeleteRange: %v want %v", got, want)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	db := openTemp(t, Options{})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("x"), []byte("y")); err == nil {
		t.Error("Put on closed store should fail")
	}
	if _, _, err := db.Get([]byte("x")); err == nil {
		t.Error("Get on closed store should fail")
	}
	if err := db.Close(); err != nil {
		t.Error("double close should be a no-op")
	}
}

func TestLargeValuesAcrossFlush(t *testing.T) {
	db := openTemp(t, Options{MemtableBytes: 1024})
	big := bytes.Repeat([]byte("x"), 10_000)
	if err := db.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("small"), []byte("s")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("big"))
	if err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatal("large value corrupted across flush")
	}
}

func TestEmptyKeyAndValue(t *testing.T) {
	db := openTemp(t, Options{})
	if err := db.Put([]byte{}, []byte{}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte{})
	if err != nil || !ok || len(v) != 0 {
		t.Fatalf("empty key round trip: %q %v %v", v, ok, err)
	}
}

func TestSkiplistSeek(t *testing.T) {
	s := newSkiplist()
	for _, k := range []string{"b", "d", "f"} {
		s.set([]byte(k), []byte("v"), false)
	}
	cases := []struct{ target, want string }{
		{"a", "b"}, {"b", "b"}, {"c", "d"}, {"f", "f"}, {"g", ""},
	}
	for _, c := range cases {
		n := s.seek([]byte(c.target))
		got := ""
		if n != nil {
			got = string(n.key)
		}
		if got != c.want {
			t.Errorf("seek(%q)=%q want %q", c.target, got, c.want)
		}
	}
}

func TestSSTableRoundTrip(t *testing.T) {
	s := newSkiplist()
	for i := 0; i < 200; i++ {
		s.set([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("val%d", i)), i%7 == 0)
	}
	path := filepath.Join(t.TempDir(), "test.sst")
	if err := writeSSTable(path, s.iterator()); err != nil {
		t.Fatal(err)
	}
	tab, err := openSSTable(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key%04d", i))
		v, tomb, ok := tab.get(k)
		if !ok {
			t.Fatalf("missing %q", k)
		}
		if tomb != (i%7 == 0) {
			t.Fatalf("tombstone flag wrong for %q", k)
		}
		if !tomb && string(v) != fmt.Sprintf("val%d", i) {
			t.Fatalf("value wrong for %q: %q", k, v)
		}
	}
	if _, _, ok := tab.get([]byte("absent")); ok {
		t.Fatal("absent key found")
	}
	// Seeked iteration.
	it := tab.iteratorFrom([]byte("key0150"))
	k, _, _ := it.entry()
	if string(k) != "key0150" {
		t.Fatalf("iteratorFrom landed on %q", k)
	}
	n := 0
	for ; it.valid(); it.next() {
		n++
	}
	if n != 50 {
		t.Fatalf("iterated %d entries from key0150, want 50", n)
	}
}

func TestSSTableCorruptionDetected(t *testing.T) {
	s := newSkiplist()
	for i := 0; i < 50; i++ {
		s.set([]byte(fmt.Sprintf("k%02d", i)), []byte("v"), false)
	}
	path := filepath.Join(t.TempDir(), "c.sst")
	if err := writeSSTable(path, s.iterator()); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0xff // clobber the magic
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openSSTable(path); err == nil {
		t.Fatal("corrupt table opened without error")
	}
}

func TestApplyBatch(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("doomed"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	ops := []BatchOp{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Value: []byte("2")},
		{Key: []byte("a"), Value: []byte("1b")}, // later op wins
		{Key: []byte("doomed"), Delete: true},
	}
	if err := db.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	check := func(db *DB) {
		t.Helper()
		if v, ok, _ := db.Get([]byte("a")); !ok || string(v) != "1b" {
			t.Fatalf("a = %q,%v", v, ok)
		}
		if v, ok, _ := db.Get([]byte("b")); !ok || string(v) != "2" {
			t.Fatalf("b = %q,%v", v, ok)
		}
		if _, ok, _ := db.Get([]byte("doomed")); ok {
			t.Fatal("delete op did not apply")
		}
	}
	check(db)
	// Batch contents must survive a WAL replay.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	check(db2)
}

func BenchmarkPut(b *testing.B) {
	db, _ := Open(Options{})
	key := make([]byte, 16)
	val := bytes.Repeat([]byte("v"), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binaryKey(key, uint64(i))
		_ = db.Put(key, val)
	}
}

func BenchmarkGet(b *testing.B) {
	db, _ := Open(Options{})
	key := make([]byte, 16)
	for i := 0; i < 100_000; i++ {
		binaryKey(key, uint64(i))
		_ = db.Put(key, []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binaryKey(key, uint64(i%100_000))
		_, _, _ = db.Get(key)
	}
}

func binaryKey(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (8 * (7 - i)))
	}
}
