// Package conflict holds the key-overlap partitioning and worker-pool
// helpers shared by the two parallel phases of the pipeline: in-block MVCC
// validation (internal/commit) and post-order speculative re-execution
// (internal/reexec). Both phases exploit the same structural fact — the
// overlay/scratch rule only couples transactions that share a key — so a
// block partitions into key-disjoint groups that run concurrently without
// changing any outcome.
package conflict

import (
	"sync"
	"sync/atomic"

	"fabricsharp/internal/protocol"
)

// Partition groups the included transaction indices by transitive
// read/write key overlap (union-find with path halving). Within a group,
// indices stay in block order, so group-sequential processing observes
// exactly the state a sequential whole-block pass would. Indices for which
// include(i) is false are excluded and constrain nothing.
//
// Reads only couple through keys some included transaction writes: a key
// nobody (included) writes keeps its pre-block value for the whole pass, so
// a hot read-only key (a config record every transaction consults) does not
// collapse the block into one serial group.
func Partition(txs []*protocol.Transaction, include func(i int) bool) [][]int {
	written := map[string]bool{}
	for i, tx := range txs {
		if !include(i) {
			continue
		}
		for _, w := range tx.RWSet.Writes {
			written[w.Key] = true
		}
	}
	parent := make([]int, len(txs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]] // path halving
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			// Root at the smaller index so group identity is deterministic.
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}

	keyOwner := map[string]int{}
	claim := func(i int, key string) {
		if o, ok := keyOwner[key]; ok {
			union(o, i)
		} else {
			keyOwner[key] = i
		}
	}
	for i, tx := range txs {
		if !include(i) {
			continue
		}
		for _, r := range tx.RWSet.Reads {
			if written[r.Key] {
				claim(i, r.Key)
			}
		}
		for _, w := range tx.RWSet.Writes {
			claim(i, w.Key)
		}
	}

	byRoot := map[int][]int{}
	var roots []int
	for i := range txs {
		if !include(i) {
			continue
		}
		r := find(i)
		if _, seen := byRoot[r]; !seen {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], i) // ascending i: block order
	}
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}

// ParallelFor runs fn(i) for i in [0, n) on up to `workers` goroutines.
func ParallelFor(n, workers int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// RunGroups dispatches conflict groups to up to `workers` goroutines. Groups
// touch disjoint key sets, so their per-group state never interacts and any
// shared base is only read.
func RunGroups(groups [][]int, workers int, fn func(group []int)) {
	ParallelFor(len(groups), workers, func(i int) { fn(groups[i]) })
}
