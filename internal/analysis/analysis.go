// Package analysis is sharpvet's engine: a stdlib-only static-analysis
// driver (go/parser + go/types, no x/tools) that loads the whole module,
// resolves types, and enforces the replica-identical determinism contract
// over consensus-critical packages. See docs/determinism.md for the written
// contract and cmd/sharpvet for the CLI.
//
// The design mirrors golang.org/x/tools/go/analysis in miniature — named
// analyzers receive a type-checked package via a Pass and report position
// -ed diagnostics — but stays within the standard library so the module's
// no-dependency rule holds.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one determinism check. Run is invoked once per loaded
// package; it must confine itself to files for which pass.InScope reports
// true (the driver pre-filters nothing, because some analyzers need
// package-wide type information even when only a subset of files is in
// scope).
type Analyzer struct {
	// Name is the analyzer's identifier: the token used in
	// "//sharp:allow <name> <reason>" directives and diagnostic output.
	Name string
	// Doc is a one-line description printed by `sharpvet -help`.
	Doc string
	// Scope classifies which files of which packages the analyzer
	// polices. Diagnostics reported against out-of-scope files are
	// driver errors (a bug in the analyzer), not user findings.
	Scope Scope
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// A Scope decides whether a file participates in an analyzer's check.
// pkgPath is the package's import path, file the base name of the source
// file within it.
type Scope func(pkgPath, file string) bool

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	PkgPath  string
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// InScope reports whether the given file participates in this analyzer's
// scope. Analyzers call it to skip out-of-contract files.
func (p *Pass) InScope(f *ast.File) bool {
	return p.Analyzer.Scope(p.PkgPath, baseFilename(p.Fset, f))
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: an analyzer, a position, a message, and —
// after suppression matching — the directive that silenced it, if any.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string

	// Suppressed is set by the driver when a matching directive covers
	// the diagnostic's line.
	Suppressed bool
	// Reason is the suppressing directive's justification (set iff
	// Suppressed).
	Reason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in deterministic order. sharpvet runs
// exactly this set; tests index it by name.
func Analyzers() []*Analyzer {
	all := []*Analyzer{
		MapOrder,
		WallClock,
		SeamInject,
		ErrDrop,
		LockAcross,
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// AnalyzerByName returns the named analyzer, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

func baseFilename(fset *token.FileSet, f *ast.File) string {
	full := fset.Position(f.Package).Filename
	for i := len(full) - 1; i >= 0; i-- {
		if full[i] == '/' {
			return full[i+1:]
		}
	}
	return full
}
