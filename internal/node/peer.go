package node

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync/atomic"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/commit"
	"fabricsharp/internal/identity"
	"fabricsharp/internal/kvstore"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/metrics"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/seqno"
	"fabricsharp/internal/statedb"
	"fabricsharp/internal/trace"
	"fabricsharp/internal/transport"
	"fabricsharp/internal/validation"
	"fabricsharp/internal/wire"
	"fabricsharp/internal/workload"
)

// PeerConfig parameterizes a validating-peer process.
type PeerConfig struct {
	// Name is this peer's enrolled identity; it must appear in PeerNames.
	Name string
	// Listen is the TCP address for proposals and status requests.
	Listen string
	// OrdererAddrs lists the ordering service's delivery addresses. With a
	// Raft ordering cluster every replica serves the identical chain, so
	// the subscription fails over across them freely.
	OrdererAddrs []string
	// System must match the orderer's (it decides the MVCC switch).
	System sched.System
	// PeerNames is the cluster's full validating set — every name's
	// deterministic public key joins this process's MSP so endorsements
	// from any peer verify during validation.
	PeerNames []string
	// DataDir, when non-empty, persists this peer's ledger and state; a
	// restart resumes from the stored chain and re-subscribes from its
	// height (catch-up over the wire).
	DataDir string
	// Contracts to deploy (default: the scenario registry's union).
	Contracts []chaincode.Contract
	// Genesis writes seed a fresh peer's state database at the shared
	// genesis version before any block is delivered; the set must be
	// identical on every replica (peers and orderer shadows) or MVCC
	// verdicts diverge. Ignored when DataDir resumes a stored chain.
	Genesis []protocol.WriteItem
	// DialOrderer overrides how the block subscription connects (fault
	// injection seam; see transport.Subscriber.Dial for the no-drops
	// caveat). Default: transport.DialRetry.
	DialOrderer func(addr string) (transport.FrameConn, error)
	// ValidationWorkers caps intra-block validation parallelism
	// (default GOMAXPROCS).
	ValidationWorkers int
	// QueueDepth buffers the committer's delivery channel.
	QueueDepth int
	// Rescue enables post-order speculative re-execution of MVCC-aborted
	// transactions; must match the orderer's setting (the rescue digest is
	// byte-asserted across the cluster).
	Rescue bool
	// TraceEvents sizes the always-on stage-tracing ring (events retained;
	// rounded up to a power of two). 0 selects trace.DefaultRingSize.
	TraceEvents int
}

// Peer is a running validating-peer process: endorsement and status over
// TCP, block delivery via a reconnecting subscription feeding the pipelined
// committer.
type Peer struct {
	name      string
	id        *identity.Identity
	msp       *identity.Service
	registry  *chaincode.Registry
	state     *statedb.DB
	chain     *ledger.Chain
	committer *commit.Committer
	srv       *transport.Server
	sub       *transport.Subscriber
	tracer    *trace.Tracer
	closers   []interface{ Close() error }

	// delivered tracks the highest block number handed to the committer —
	// the resubscription cursor. Monotonic; duplicates the orderer replays
	// after a reconnect are dropped before they can double-commit.
	delivered atomic.Uint64

	// failovers counts delivery-subscription moves to a different orderer.
	failovers metrics.Counter

	closed chan struct{}
	errs   errOnce
}

// StartPeer boots a validating-peer process: state, ledger, committer,
// block subscription, and the TCP server.
func StartPeer(cfg PeerConfig) (*Peer, error) {
	if err := nonEmpty(cfg.PeerNames, "PeerNames"); err != nil {
		return nil, err
	}
	mvcc, err := needsMVCC(cfg.System)
	if err != nil {
		return nil, err
	}
	contracts := cfg.Contracts
	if len(contracts) == 0 {
		contracts = defaultContracts()
	}
	p := &Peer{
		name:     cfg.Name,
		msp:      identity.NewService(),
		registry: chaincode.NewRegistry(contracts...),
		tracer:   trace.New(cfg.Name, "peer", cfg.TraceEvents),
		closed:   make(chan struct{}),
	}
	// The deterministic dev MSP: every cluster process derives the same
	// key pairs, so endorsements verify across process boundaries.
	for _, name := range cfg.PeerNames {
		id := identity.Deterministic(name, identity.RolePeer)
		if err := p.msp.Register(name, identity.RolePeer, id.Public()); err != nil {
			return nil, err
		}
		if name == cfg.Name {
			p.id = id
		}
	}
	if p.id == nil {
		return nil, fmt.Errorf("node: peer %q not in cluster peer set %v", cfg.Name, cfg.PeerNames)
	}
	var stateOpts statedb.Options
	var chainKV *kvstore.DB
	if cfg.DataDir != "" {
		stateKV, err := kvstore.Open(kvstore.Options{Dir: filepath.Join(cfg.DataDir, "state")})
		if err != nil {
			return nil, err
		}
		p.closers = append(p.closers, stateKV)
		stateOpts.Backing = stateKV
		if chainKV, err = kvstore.Open(kvstore.Options{Dir: filepath.Join(cfg.DataDir, "blocks")}); err != nil {
			p.closeStores()
			return nil, err
		}
		p.closers = append(p.closers, chainKV)
	}
	if p.state, err = statedb.New(stateOpts); err != nil {
		p.closeStores()
		return nil, err
	}
	if p.chain, err = ledger.NewChain(chainKV); err != nil {
		p.closeStores()
		return nil, err
	}
	if height, ok := p.chain.Height(); ok {
		// Resuming from disk: the committer's chain and state already hold
		// the stored blocks; the subscription resumes just above them.
		p.delivered.Store(height)
	} else if p.state.Keys() == 0 {
		// Fresh replica: install the scenario genesis before the first block
		// can be delivered, at the same version every other replica uses.
		if err := workload.SeedGenesis(p.state, cfg.Genesis); err != nil {
			p.closeStores()
			return nil, fmt.Errorf("node: peer %s genesis: %w", cfg.Name, err)
		}
	}
	workers := cfg.ValidationWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p.committer = commit.New(commit.Config{
		Name:  cfg.Name,
		State: p.state,
		Chain: p.chain,
		Validation: commit.Options{
			Options: validation.Options{
				MVCC:   mvcc,
				MSP:    p.msp,
				Policy: identity.AnyPeerOf(cfg.PeerNames...),
			},
			Workers:  workers,
			Rescue:   cfg.Rescue,
			Registry: p.registry,
		},
		QueueDepth: cfg.QueueDepth,
		OnError:    func(err error) { p.errs.set(err) },
		Tracer:     p.tracer,
	})
	p.committer.Start()
	p.sub = &transport.Subscriber{
		Addrs:  cfg.OrdererAddrs,
		Height: p.delivered.Load,
		Deliver: transport.DeliveryFunc(func(blk *ledger.Block) error {
			// Drop a block the orderer replays after a reconnect (the
			// delivery cursor can trail a redial, never lead it).
			if blk.Header.Number <= p.delivered.Load() {
				return nil
			}
			if err := p.errs.get(); err != nil {
				return err // committer poisoned: stop pulling blocks
			}
			p.committer.Deliver(blk)
			p.delivered.Store(blk.Header.Number)
			return nil
		}),
		OnError:    func(err error) { p.errs.set(err) },
		OnFailover: p.failovers.Inc,
		Dial:       cfg.DialOrderer,
	}
	p.sub.Start()
	srv, err := transport.Listen(cfg.Listen, p.handle)
	if err != nil {
		p.sub.Close()
		p.committer.Close()
		p.closeStores()
		return nil, err
	}
	p.srv = srv
	return p, nil
}

func (p *Peer) closeStores() {
	for _, c := range p.closers {
		_ = c.Close()
	}
}

// Addr returns the server's bound address.
func (p *Peer) Addr() string { return p.srv.Addr() }

// Err returns the peer's first fatal error, nil while healthy.
func (p *Peer) Err() error { return p.errs.get() }

// Chain exposes the peer's ledger (tests, tools).
func (p *Peer) Chain() *ledger.Chain { return p.chain }

// Failovers reports how many times the block subscription moved to a
// different orderer.
func (p *Peer) Failovers() uint64 { return p.failovers.Value() }

// State exposes the peer's state database (tests, tools).
func (p *Peer) State() *statedb.DB { return p.state }

// Close shuts the peer down: stop the subscription, drain the committer,
// stop serving, close the stores. Idempotent.
func (p *Peer) Close() error {
	select {
	case <-p.closed:
		return nil
	default:
		close(p.closed)
	}
	p.sub.Close()
	p.committer.Close()
	_ = p.srv.Close()
	p.closeStores()
	return nil
}

// handle serves one connection.
func (p *Peer) handle(c *transport.Conn) {
	for {
		typ, payload, err := c.Recv()
		if err != nil {
			return
		}
		switch typ {
		case wire.MsgProposal:
			p.handleProposal(c, payload)
		case wire.MsgStatusReq:
			_ = c.Send(wire.MsgStatus, wire.EncodeStatus(wire.Status{
				Role:        "peer",
				Name:        p.name,
				Height:      p.state.Height(),
				Blocks:      uint64(p.chain.Len()),
				TipHash:     p.chain.TipHash(),
				StateHash:   p.state.StateFingerprint(),
				CommittedTx: committedTxCount(p.chain),
			}))
		case wire.MsgTraceReq:
			_ = c.Send(wire.MsgTraceDump, wire.EncodeTraceDump(dumpToWire(p.tracer.Dump())))
		default:
			_ = c.Send(wire.MsgAck, wire.EncodeAck(wire.Ack{Err: fmt.Sprintf("unexpected %v", typ)}))
			return
		}
	}
}

// handleProposal runs the execution phase for a wire client: simulate the
// invocation against this peer's latest committed snapshot (Algorithm 1)
// and sign the effects — the same endorsement the in-process path produces.
func (p *Peer) handleProposal(c *transport.Conn, payload []byte) {
	fail := func(err error) {
		_ = c.Send(wire.MsgProposalResp, wire.EncodeProposalResp(&wire.ProposalResp{Err: err.Error()}))
	}
	prop, err := wire.DecodeProposal(payload)
	if err != nil {
		fail(err)
		return
	}
	contract, ok := p.registry.Get(prop.Contract)
	if !ok {
		fail(fmt.Errorf("node: unknown contract %q", prop.Contract))
		return
	}
	snap := p.state.Height()
	rwset, _, err := chaincode.SimulateFull(contract, prop.Function, prop.Args,
		snapshotReader{state: p.state, snap: snap})
	if err != nil {
		fail(fmt.Errorf("node: simulation failed: %w", err))
		return
	}
	tx := &protocol.Transaction{
		ID:            protocol.TxID(prop.TxID),
		ClientID:      prop.ClientID,
		Contract:      prop.Contract,
		Function:      prop.Function,
		Args:          prop.Args,
		SnapshotBlock: snap,
		RWSet:         rwset,
	}
	tx.Endorsements = append(tx.Endorsements, protocol.Endorsement{
		EndorserID: p.id.ID,
		Signature:  p.id.Sign(tx.Digest()),
	})
	_ = c.Send(wire.MsgProposalResp, wire.EncodeProposalResp(&wire.ProposalResp{OK: true, Tx: tx}))
}

// snapshotReader performs snapshot reads against a block height, mirroring
// the in-process endorsement path.
type snapshotReader struct {
	state *statedb.DB
	snap  uint64
}

func (r snapshotReader) Read(key string) ([]byte, seqno.Seq, bool, error) {
	vv, ok, err := r.state.GetAt(key, r.snap)
	if err != nil || !ok {
		return nil, seqno.Seq{}, false, err
	}
	return vv.Value, vv.Version, true, nil
}

// ReadRange implements chaincode.RangeReader over the same snapshot.
func (r snapshotReader) ReadRange(start, end string) ([]string, error) {
	return r.state.KeysInRange(start, end, r.snap), nil
}
