package kvstore

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Options configures a store.
type Options struct {
	// Dir is the directory holding the WAL, SSTables and manifest. Empty
	// means a purely in-memory store: no persistence, never flushed.
	Dir string
	// MemtableBytes is the flush threshold. Default 4 MiB.
	MemtableBytes int
	// CompactAfter triggers a full merge once the table count exceeds it.
	// Default 4.
	CompactAfter int
	// SyncWrites fsyncs the WAL on every mutation. Durable but slow;
	// off by default (the WAL is still flushed on Close).
	SyncWrites bool
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MemtableBytes <= 0 {
		out.MemtableBytes = 4 << 20
	}
	if out.CompactAfter <= 0 {
		out.CompactAfter = 4
	}
	return out
}

// DB is an ordered key-value store. All methods are safe for concurrent use
// except that iterators must not overlap mutations (the callers in this
// repository all iterate under their own synchronization).
type DB struct {
	mu     sync.RWMutex
	opts   Options
	mem    *skiplist
	tables []*sstable // newest first
	wal    *wal
	nextID uint64
	closed bool
}

const (
	manifestName = "MANIFEST"
	walName      = "wal.log"
)

// Open opens (creating if necessary) the store described by opts.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	db := &DB{opts: opts, mem: newSkiplist(), nextID: 1}
	if opts.Dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: mkdir: %w", err)
	}
	ids, err := readManifest(filepath.Join(opts.Dir, manifestName))
	if err != nil {
		return nil, err
	}
	for _, id := range ids { // manifest lists newest first
		t, err := openSSTable(db.tablePath(id))
		if err != nil {
			return nil, err
		}
		db.tables = append(db.tables, t)
		if id >= db.nextID {
			db.nextID = id + 1
		}
	}
	db.removeStaleTables(ids)
	if _, err := replayWAL(filepath.Join(opts.Dir, walName), func(op byte, key, value []byte) {
		db.mem.set(key, append([]byte(nil), value...), op == walOpDelete)
	}); err != nil {
		return nil, err
	}
	w, err := openWAL(filepath.Join(opts.Dir, walName), opts.SyncWrites)
	if err != nil {
		return nil, err
	}
	db.wal = w
	return db, nil
}

func (db *DB) tablePath(id uint64) string {
	return filepath.Join(db.opts.Dir, fmt.Sprintf("%06d.sst", id))
}

// removeStaleTables deletes .sst files not referenced by the manifest —
// leftovers from a crash between table write and manifest swap.
func (db *DB) removeStaleTables(live []uint64) {
	alive := make(map[uint64]bool, len(live))
	for _, id := range live {
		alive[id] = true
	}
	entries, err := os.ReadDir(db.opts.Dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".sst") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(name, ".sst"), 10, 64)
		if err != nil || alive[id] {
			continue
		}
		_ = os.Remove(filepath.Join(db.opts.Dir, name))
	}
}

func readManifest(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	var ids []uint64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		id, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("kvstore: corrupt manifest: %w", err)
		}
		ids = append(ids, id)
	}
	return ids, sc.Err()
}

// writeManifest atomically replaces the manifest with the given table ids
// (newest first) via a temp-file rename.
func (db *DB) writeManifest(ids []uint64) error {
	var sb strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&sb, "%d\n", id)
	}
	tmp := filepath.Join(db.opts.Dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, []byte(sb.String()), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(db.opts.Dir, manifestName))
}

func (db *DB) liveTableIDs() []uint64 {
	ids := make([]uint64, 0, len(db.tables))
	for _, t := range db.tables {
		base := strings.TrimSuffix(filepath.Base(t.path), ".sst")
		id, _ := strconv.ParseUint(base, 10, 64)
		ids = append(ids, id)
	}
	return ids
}

// Put stores value under key, overwriting any previous value.
func (db *DB) Put(key, value []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("kvstore: store closed")
	}
	if db.wal != nil {
		if err := db.wal.append(walOpPut, key, value); err != nil {
			return err
		}
	}
	db.mem.set(key, append([]byte(nil), value...), false)
	return db.maybeFlushLocked()
}

// Delete removes key. Deleting an absent key is a no-op.
func (db *DB) Delete(key []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("kvstore: store closed")
	}
	if db.wal != nil {
		if err := db.wal.append(walOpDelete, key, nil); err != nil {
			return err
		}
	}
	db.mem.set(key, nil, true)
	return db.maybeFlushLocked()
}

// BatchOp is one mutation of a write batch.
type BatchOp struct {
	Key, Value []byte
	Delete     bool
}

// ApplyBatch applies every operation under one lock acquisition and defers
// the memtable-flush decision to the end of the batch — the per-block commit
// path's alternative to len(ops) individual Put/Delete round-trips. The WAL
// records each operation, so a crash mid-batch replays a prefix, exactly as
// it would for the equivalent sequence of single Puts.
func (db *DB) ApplyBatch(ops []BatchOp) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("kvstore: store closed")
	}
	for _, op := range ops {
		if db.wal != nil {
			walOp := byte(walOpPut)
			if op.Delete {
				walOp = walOpDelete
			}
			if err := db.wal.append(walOp, op.Key, op.Value); err != nil {
				return err
			}
		}
		if op.Delete {
			db.mem.set(op.Key, nil, true)
		} else {
			db.mem.set(op.Key, append([]byte(nil), op.Value...), false)
		}
	}
	return db.maybeFlushLocked()
}

// Get returns the value stored under key.
func (db *DB) Get(key []byte) (value []byte, found bool, err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, false, fmt.Errorf("kvstore: store closed")
	}
	if v, tomb, ok := db.mem.get(key); ok {
		if tomb {
			return nil, false, nil
		}
		return append([]byte(nil), v...), true, nil
	}
	for _, t := range db.tables {
		if v, tomb, ok := t.get(key); ok {
			if tomb {
				return nil, false, nil
			}
			return append([]byte(nil), v...), true, nil
		}
	}
	return nil, false, nil
}

// Has reports whether key is present.
func (db *DB) Has(key []byte) (bool, error) {
	_, found, err := db.Get(key)
	return found, err
}

// maybeFlushLocked flushes the memtable to a new SSTable when it exceeds
// the configured threshold, then compacts if too many tables accumulated.
func (db *DB) maybeFlushLocked() error {
	if db.opts.Dir == "" || db.mem.bytes < db.opts.MemtableBytes {
		return nil
	}
	return db.flushLocked()
}

func (db *DB) flushLocked() error {
	if db.mem.length == 0 {
		return nil
	}
	id := db.nextID
	db.nextID++
	path := db.tablePath(id)
	if err := writeSSTable(path, db.mem.iterator()); err != nil {
		return err
	}
	t, err := openSSTable(path)
	if err != nil {
		return err
	}
	db.tables = append([]*sstable{t}, db.tables...)
	if err := db.writeManifest(db.liveTableIDs()); err != nil {
		return err
	}
	// The WAL's contents are now durable in the table; start a fresh log.
	if err := db.wal.close(); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(db.opts.Dir, walName)); err != nil && !os.IsNotExist(err) {
		return err
	}
	w, err := openWAL(filepath.Join(db.opts.Dir, walName), db.opts.SyncWrites)
	if err != nil {
		return err
	}
	db.wal = w
	db.mem = newSkiplist()
	if len(db.tables) > db.opts.CompactAfter {
		return db.compactLocked()
	}
	return nil
}

// compactLocked merges every table into one, dropping tombstones (a full
// merge sees the complete history, so deletions become safe to forget).
func (db *DB) compactLocked() error {
	merged := newSkiplist()
	// Iterate oldest table first so newer entries overwrite older ones.
	for i := len(db.tables) - 1; i >= 0; i-- {
		for it := db.tables[i].iteratorFrom(nil); it.valid(); it.next() {
			k, v, tomb := it.entry()
			merged.set(k, append([]byte(nil), v...), tomb)
		}
	}
	// Drop tombstones by rebuilding without them.
	clean := newSkiplist()
	for it := merged.iterator(); it.valid(); it.next() {
		k, v, tomb := it.entry()
		if !tomb {
			clean.set(k, v, false)
		}
	}
	old := db.tables
	if clean.length == 0 {
		db.tables = nil
	} else {
		id := db.nextID
		db.nextID++
		path := db.tablePath(id)
		if err := writeSSTable(path, clean.iterator()); err != nil {
			return err
		}
		t, err := openSSTable(path)
		if err != nil {
			return err
		}
		db.tables = []*sstable{t}
	}
	if err := db.writeManifest(db.liveTableIDs()); err != nil {
		return err
	}
	for _, t := range old {
		_ = os.Remove(t.path)
	}
	return nil
}

// Flush forces the memtable to disk (no-op for in-memory stores).
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.opts.Dir == "" {
		return nil
	}
	return db.flushLocked()
}

// Close flushes the WAL and releases the store.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if db.wal != nil {
		return db.wal.close()
	}
	return nil
}

// DeleteRange tombstones every key in [start, limit). It exists for the
// dependency indices' pruning sweeps; ranges there are short.
func (db *DB) DeleteRange(start, limit []byte) error {
	var doomed [][]byte
	db.mu.RLock()
	for it := db.newIteratorLocked(start, limit); it.Valid(); it.Next() {
		doomed = append(doomed, append([]byte(nil), it.Key()...))
	}
	db.mu.RUnlock()
	for _, k := range doomed {
		if err := db.Delete(k); err != nil {
			return err
		}
	}
	return nil
}

// Len reports the number of live keys (linear scan; meant for tests and
// small stores).
func (db *DB) Len() int {
	n := 0
	for it := db.NewIterator(nil, nil); it.Valid(); it.Next() {
		n++
	}
	return n
}

// PrefixSuccessor returns the smallest byte string greater than every string
// having the given prefix, or nil when no such bound exists (all-0xff).
func PrefixSuccessor(prefix []byte) []byte {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xff {
			out := append([]byte(nil), prefix[:i+1]...)
			out[i]++
			return out
		}
	}
	return nil
}

// NewIterator returns an ascending iterator over keys in [start, limit);
// nil bounds are unbounded. The iterator observes the store as of the call
// and must not overlap mutations.
func (db *DB) NewIterator(start, limit []byte) *Iterator {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.newIteratorLocked(start, limit)
}

// NewPrefixIterator iterates every key beginning with prefix.
func (db *DB) NewPrefixIterator(prefix []byte) *Iterator {
	return db.NewIterator(prefix, PrefixSuccessor(prefix))
}

func (db *DB) newIteratorLocked(start, limit []byte) *Iterator {
	sources := make([]tableSource, 0, 1+len(db.tables))
	sources = append(sources, &memSource{it: db.mem.iteratorFrom(start)})
	for _, t := range db.tables {
		sources = append(sources, &sstSource{it: t.iteratorFrom(start)})
	}
	it := &Iterator{sources: sources, limit: limit}
	it.advance()
	return it
}

// tableSource is one layer of the merge: the memtable or an SSTable.
// Sources are ordered newest-first, and the merge lets the newest layer
// shadow older ones.
type tableSource interface {
	valid() bool
	next()
	entry() (key, value []byte, tombstone bool)
}

type memSource struct{ it *skiplistIterator }

func (s *memSource) valid() bool { return s.it.valid() }
func (s *memSource) next()       { s.it.next() }
func (s *memSource) entry() (key, value []byte, tombstone bool) {
	return s.it.entry()
}

type sstSource struct{ it *sstableIterator }

func (s *sstSource) valid() bool { return s.it.valid() }
func (s *sstSource) next()       { s.it.next() }
func (s *sstSource) entry() (key, value []byte, tombstone bool) {
	return s.it.entry()
}

// Iterator merges the memtable and SSTables into one ascending stream of
// live (non-tombstoned) entries.
type Iterator struct {
	sources []tableSource // newest first
	limit   []byte
	key     []byte
	value   []byte
	done    bool
}

// advance finds the next live entry at or after the sources' current
// positions.
func (it *Iterator) advance() {
	for {
		var (
			minKey []byte
			found  bool
		)
		for _, s := range it.sources {
			if !s.valid() {
				continue
			}
			k, _, _ := s.entry()
			if !found || bytes.Compare(k, minKey) < 0 {
				minKey, found = k, true
			}
		}
		if !found || (it.limit != nil && bytes.Compare(minKey, it.limit) >= 0) {
			it.done = true
			return
		}
		// The newest source holding minKey wins; all holders advance.
		var (
			value     []byte
			tombstone bool
			taken     bool
		)
		for _, s := range it.sources {
			if !s.valid() {
				continue
			}
			if k, v, tomb := s.entry(); bytes.Equal(k, minKey) {
				if !taken {
					value, tombstone, taken = v, tomb, true
				}
				s.next()
			}
		}
		if tombstone {
			continue
		}
		it.key = append(it.key[:0], minKey...)
		it.value = append(it.value[:0], value...)
		return
	}
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool { return !it.done }

// Next moves to the following live entry.
func (it *Iterator) Next() { it.advance() }

// Key returns the current key. The slice is reused by Next; copy to retain.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value. The slice is reused by Next; copy to
// retain.
func (it *Iterator) Value() []byte { return it.value }

// Collect drains the iterator into (key, value) pairs — convenient for the
// short range scans the dependency indices perform.
func (it *Iterator) Collect() (keys, values [][]byte) {
	for ; it.Valid(); it.Next() {
		keys = append(keys, append([]byte(nil), it.Key()...))
		values = append(values, append([]byte(nil), it.Value()...))
	}
	return keys, values
}

// SortedKeys is a test helper returning every live key in order.
func (db *DB) SortedKeys() [][]byte {
	keys, _ := db.NewIterator(nil, nil).Collect()
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	return keys
}
