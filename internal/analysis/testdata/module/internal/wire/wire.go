// Package wire stubs the codec surface the errdrop fixture calls into:
// errdrop polices Encode*/Decode* by name within this package path.
package wire

type Thing struct{ V int }

func EncodeThing(t Thing) ([]byte, error) { return nil, nil }

func DecodeThing(b []byte) (Thing, error) { return Thing{}, nil }

// EncodeHint has no error result: errdrop must leave its callers alone.
func EncodeHint(t Thing) []byte { return nil }
