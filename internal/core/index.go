// Package core implements the paper's primary contribution: the
// fine-grained, reordering-based concurrency control for execute-order-
// validate blockchains (Sections 3.4 and 4).
//
// The Manager ingests transactions in consensus order (Algorithm 2),
// resolves their dependencies against four indices (Section 4.3), detects
// unreorderable cycles with bloom-filter reachability (Section 4.4,
// Theorem 2), emits a serializable commit order at block formation
// (Algorithm 3), restores write-write dependencies (Algorithm 5), and prunes
// the graph by snapshot staleness and age (Section 4.6).
//
// Record keys are interned (internal/intern): the Manager resolves each
// string key to a dense uint32 the first time it appears in the consensus
// stream, and every index and graph structure downstream operates on those
// KeyIDs — committed-index lookups become slice indexing instead of string
// hashing.
package core

import (
	"bytes"
	"fmt"
	"sort"

	"fabricsharp/internal/intern"
	"fabricsharp/internal/kvstore"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
)

// TxID aliases the protocol transaction identifier.
type TxID = protocol.TxID

// VersionIndex is the committed-transaction index shape of Section 4.3:
// CommittedWriteTxns (CW) and CommittedReadTxns (CR) both map a record key
// plus the commit sequence of the accessing transaction to that
// transaction's identifier, and support the point and range queries the
// dependency resolution needs. Keys are interned KeyIDs; implementations
// that persist (KVIndex) resolve them back to strings through the shared
// intern.Table, so the disk layout stays keyed by record-key bytes.
//
// Like the Manager that owns them, indices are confined to the orderer's
// single goroutine; they are not safe for concurrent use.
type VersionIndex interface {
	// Put records that transaction id accessed key at commit sequence seq.
	Put(key intern.Key, seq seqno.Seq, id TxID) error
	// After appends to dst, in commit order, every transaction that accessed
	// key with commit sequence >= from (the CW[key][from:] range query).
	// Passing a reusable dst buffer keeps the arrival path allocation-free.
	After(dst []TxID, key intern.Key, from seqno.Seq) ([]TxID, error)
	// Before returns the last transaction that accessed key strictly before
	// `before` (the CW.Before point query).
	Before(key intern.Key, before seqno.Seq) (TxID, bool, error)
	// Last returns the most recent transaction that accessed key
	// (the CW.Last point query).
	Last(key intern.Key) (TxID, bool, error)
	// All appends to dst, in commit order, every retained transaction that
	// accessed key (the CR[key] query).
	All(dst []TxID, key intern.Key) ([]TxID, error)
	// PruneBefore removes every entry whose commit sequence's block is
	// strictly below minBlock (Section 4.6's index pruning).
	PruneBefore(minBlock uint64) error
	// MarkLive sets live[k] = true for every KeyID with at least one
	// retained entry — the index's contribution to the liveness set of an
	// epoch compaction. Keys at or beyond len(live) are ignored (they were
	// interned after the caller sized the slice and are handled separately).
	MarkLive(live []bool) error
	// Remap informs the index that the shared intern table was compacted:
	// remap[old] is each old KeyID's new identity, or intern.Dropped.
	// In-memory implementations move their KeyID-indexed slots; disk-backed
	// ones whose layout is keyed by record-key bytes (KVIndex) have nothing
	// to move and only keep resolving through the compacted table.
	Remap(remap []intern.Key, newLen int) error
}

// ---------------------------------------------------------------------------
// In-memory index
// ---------------------------------------------------------------------------

type memEntry struct {
	seq seqno.Seq
	id  TxID
}

// MemIndex is a purely in-memory VersionIndex: per KeyID, an append-ordered
// slice of (commit seq, txn) entries — a plain slice lookup per query.
// Commit sequences arrive in increasing order, so the slices stay sorted
// without explicit sorting.
//
// Memory: pruning empties a key's slot but the slot itself (one slice
// header per KeyID ever issued) is retained — the cost of slice indexing
// over string hashing. See the trade-off note in docs/perf.md; workloads
// with unboundedly growing key spaces should cap the orderer's lifetime or
// restart on a horizon (the persistence/FastForward path).
type MemIndex struct {
	entries [][]memEntry // indexed by intern.Key
}

// NewMemIndex returns an empty in-memory index.
func NewMemIndex() *MemIndex { return &MemIndex{} }

// grow ensures the entry table covers key.
func (m *MemIndex) grow(key intern.Key) {
	for int(key) >= len(m.entries) {
		m.entries = append(m.entries, nil)
	}
}

// Put implements VersionIndex. Each (key, seq) pair must be written at most
// once — the Manager guarantees this, since commit sequences (block, pos)
// are unique. Distinct sequences may arrive out of order (the defensive
// branch below); replaying the SAME sequence is out of contract (MemIndex
// would keep both entries where KVIndex overwrites).
func (m *MemIndex) Put(key intern.Key, seq seqno.Seq, id TxID) error {
	m.grow(key)
	es := m.entries[key]
	if n := len(es); n > 0 && !es[n-1].seq.Less(seq) {
		// Defensive: out-of-order insert keeps the slice sorted. (The manager
		// always commits in increasing sequence order; this path mirrors
		// KVIndex, whose sorted on-disk layout gives the same behavior for
		// free — see TestIndexOutOfOrderInsertAgreement.)
		i := sort.Search(n, func(i int) bool { return !es[i].seq.Less(seq) })
		es = append(es, memEntry{})
		copy(es[i+1:], es[i:])
		es[i] = memEntry{seq: seq, id: id}
		m.entries[key] = es
		return nil
	}
	m.entries[key] = append(es, memEntry{seq: seq, id: id})
	return nil
}

// After implements VersionIndex.
func (m *MemIndex) After(dst []TxID, key intern.Key, from seqno.Seq) ([]TxID, error) {
	if int(key) >= len(m.entries) {
		return dst, nil
	}
	es := m.entries[key]
	i := sort.Search(len(es), func(i int) bool { return !es[i].seq.Less(from) })
	for ; i < len(es); i++ {
		dst = append(dst, es[i].id)
	}
	return dst, nil
}

// Before implements VersionIndex.
func (m *MemIndex) Before(key intern.Key, before seqno.Seq) (TxID, bool, error) {
	if int(key) >= len(m.entries) {
		return "", false, nil
	}
	es := m.entries[key]
	i := sort.Search(len(es), func(i int) bool { return !es[i].seq.Less(before) })
	if i == 0 {
		return "", false, nil
	}
	return es[i-1].id, true, nil
}

// Last implements VersionIndex.
func (m *MemIndex) Last(key intern.Key) (TxID, bool, error) {
	if int(key) >= len(m.entries) {
		return "", false, nil
	}
	es := m.entries[key]
	if len(es) == 0 {
		return "", false, nil
	}
	return es[len(es)-1].id, true, nil
}

// All implements VersionIndex.
func (m *MemIndex) All(dst []TxID, key intern.Key) ([]TxID, error) {
	if int(key) >= len(m.entries) {
		return dst, nil
	}
	for _, e := range m.entries[key] {
		dst = append(dst, e.id)
	}
	return dst, nil
}

// MarkLive implements VersionIndex.
func (m *MemIndex) MarkLive(live []bool) error {
	for key, es := range m.entries {
		if len(es) > 0 && key < len(live) {
			live[key] = true
		}
	}
	return nil
}

// Remap implements VersionIndex: slots of retained keys move to their new
// dense index (keeping their backing arrays), slots of dropped keys are
// released to the GC — this is where a churn workload's retired key slots
// are actually reclaimed.
func (m *MemIndex) Remap(remap []intern.Key, newLen int) error {
	m.entries = intern.RemapSlots(m.entries, remap, newLen)
	return nil
}

// Slots returns the number of KeyID slots currently held (tests, metrics):
// the quantity compaction bounds for churn workloads.
func (m *MemIndex) Slots() int { return len(m.entries) }

// PruneBefore implements VersionIndex.
func (m *MemIndex) PruneBefore(minBlock uint64) error {
	for key, es := range m.entries {
		i := 0
		for i < len(es) && es[i].seq.Block < minBlock {
			i++
		}
		if i == 0 {
			continue
		}
		if i == len(es) {
			m.entries[key] = nil
			continue
		}
		// Shift in place: the key slot keeps its backing array, so steady-
		// state pruning allocates nothing.
		n := copy(es, es[i:])
		for j := n; j < len(es); j++ {
			es[j] = memEntry{}
		}
		m.entries[key] = es[:n]
	}
	return nil
}

// ---------------------------------------------------------------------------
// kvstore-backed index
// ---------------------------------------------------------------------------

// KVIndex is a VersionIndex persisted in a kvstore.DB, mirroring the
// paper's LevelDB layout: the primary records are keyed
// "p/<record key>\x00<commit seq>" so that a prefix scan walks one record
// key's accesses in commit order, and a secondary family
// "b/<commit seq>\x00<record key>" supports pruning whole block ranges.
// KeyIDs are resolved back to record-key strings through the shared intern
// table, keeping the disk layout independent of any one process's interning
// order. Record keys must not contain NUL bytes (all workload keys are
// printable).
//
// Because the on-disk layout sorts by (record key, commit seq), an
// out-of-order Put lands in its sorted position automatically — the disk
// index gets MemIndex's defensive insert path for free.
type KVIndex struct {
	db   *kvstore.DB
	keys *intern.Table
}

// NewKVIndex wraps db as a VersionIndex resolving KeyIDs through keys (use
// the owning Manager's table, Manager.Keys()).
func NewKVIndex(db *kvstore.DB, keys *intern.Table) *KVIndex {
	return &KVIndex{db: db, keys: keys}
}

func kvPrimaryKey(key string, seq seqno.Seq) []byte {
	out := make([]byte, 0, 2+len(key)+1+seqno.EncodedLen())
	out = append(out, 'p', '/')
	out = append(out, key...)
	out = append(out, 0)
	return seq.AppendTo(out)
}

func kvPrimaryPrefix(key string) []byte {
	out := make([]byte, 0, 2+len(key)+1)
	out = append(out, 'p', '/')
	out = append(out, key...)
	return append(out, 0)
}

func kvSecondaryKey(key string, seq seqno.Seq) []byte {
	out := make([]byte, 0, 2+seqno.EncodedLen()+1+len(key))
	out = append(out, 'b', '/')
	out = seq.AppendTo(out)
	out = append(out, 0)
	return append(out, key...)
}

// Put implements VersionIndex.
func (k *KVIndex) Put(key intern.Key, seq seqno.Seq, id TxID) error {
	s := k.keys.Lookup(key)
	if err := k.db.Put(kvPrimaryKey(s, seq), []byte(id)); err != nil {
		return err
	}
	return k.db.Put(kvSecondaryKey(s, seq), nil)
}

// After implements VersionIndex.
func (k *KVIndex) After(dst []TxID, key intern.Key, from seqno.Seq) ([]TxID, error) {
	s := k.keys.Lookup(key)
	start := kvPrimaryKey(s, from)
	limit := kvstore.PrefixSuccessor(kvPrimaryPrefix(s))
	for it := k.db.NewIterator(start, limit); it.Valid(); it.Next() {
		dst = append(dst, TxID(it.Value()))
	}
	return dst, nil
}

// Before implements VersionIndex.
func (k *KVIndex) Before(key intern.Key, before seqno.Seq) (TxID, bool, error) {
	s := k.keys.Lookup(key)
	prefix := kvPrimaryPrefix(s)
	limit := kvPrimaryKey(s, before)
	var (
		id    TxID
		found bool
	)
	for it := k.db.NewIterator(prefix, limit); it.Valid(); it.Next() {
		id, found = TxID(it.Value()), true
	}
	return id, found, nil
}

// Last implements VersionIndex.
func (k *KVIndex) Last(key intern.Key) (TxID, bool, error) {
	var (
		id    TxID
		found bool
	)
	for it := k.db.NewPrefixIterator(kvPrimaryPrefix(k.keys.Lookup(key))); it.Valid(); it.Next() {
		id, found = TxID(it.Value()), true
	}
	return id, found, nil
}

// All implements VersionIndex.
func (k *KVIndex) All(dst []TxID, key intern.Key) ([]TxID, error) {
	for it := k.db.NewPrefixIterator(kvPrimaryPrefix(k.keys.Lookup(key))); it.Valid(); it.Next() {
		dst = append(dst, TxID(it.Value()))
	}
	return dst, nil
}

// PruneBefore implements VersionIndex. All deletions are collected into a
// single kvstore.ApplyBatch — one lock acquisition instead of one round-trip
// per entry, and no other mutation can interleave mid-prune. Primaries are
// deleted before their secondaries within the batch: if a crash replays only
// a WAL prefix, the survivors are dangling "b/" keys the next prune simply
// re-deletes, never orphaned primaries that no future prune would find.
func (k *KVIndex) PruneBefore(minBlock uint64) error {
	limit := []byte{'b', '/'}
	limit = (seqno.Seq{Block: minBlock}).AppendTo(limit)
	var primaries, secondaries [][]byte
	for it := k.db.NewIterator([]byte("b/"), limit); it.Valid(); it.Next() {
		sk := append([]byte(nil), it.Key()...)
		secondaries = append(secondaries, sk)
		// Decode "b/<seq>\x00<record key>" back into the primary key.
		body := sk[2:]
		seq, err := seqno.FromBytes(body)
		if err != nil {
			return err
		}
		rest := body[seqno.EncodedLen():]
		if len(rest) > 0 && rest[0] == 0 {
			rest = rest[1:]
		}
		primaries = append(primaries, kvPrimaryKey(string(rest), seq))
	}
	if len(secondaries) == 0 {
		return nil
	}
	ops := make([]kvstore.BatchOp, 0, len(primaries)+len(secondaries))
	for _, pk := range primaries {
		ops = append(ops, kvstore.BatchOp{Key: pk, Delete: true})
	}
	for _, sk := range secondaries {
		ops = append(ops, kvstore.BatchOp{Key: sk, Delete: true})
	}
	return k.db.ApplyBatch(ops)
}

// MarkLive implements VersionIndex: one scan over the primary family marks
// every record key that still has a retained entry. The on-disk layout is
// string-keyed, so keys resolve back to KeyIDs through the shared table —
// every key with disk entries was interned when it was Put, so Find always
// hits while the table and index are driven by the same manager.
func (k *KVIndex) MarkLive(live []bool) error {
	for it := k.db.NewPrefixIterator([]byte("p/")); it.Valid(); it.Next() {
		body := it.Key()[2:]
		i := bytes.IndexByte(body, 0)
		if i < 0 {
			return fmt.Errorf("core: malformed primary index key %q", it.Key())
		}
		if id, ok := k.keys.Find(string(body[:i])); ok && int(id) < len(live) {
			live[id] = true
		}
	}
	return nil
}

// Remap implements VersionIndex: nothing moves — the disk layout is keyed by
// record-key bytes, independent of any interning order, and queries resolve
// KeyIDs through the (now compacted) shared table.
func (k *KVIndex) Remap([]intern.Key, int) error { return nil }

// ensure interface compliance
var (
	_ VersionIndex = (*MemIndex)(nil)
	_ VersionIndex = (*KVIndex)(nil)
)

// CompactKeyState is the shared liveness+remap core of epoch compaction for
// schedulers whose interned-key state is (CW, CR, pending-writer/reader
// slot tables): a key is live iff some index retained an entry for it, some
// pending slot is non-empty, or extraLive marks it (the Manager adds live
// graph nodes' key sets there). The table is rebuilt with dense KeyIDs
// re-assigned in old-ID order, both indices are told to remap, and the slot
// tables are rebuilt. Keeping this protocol in one place is what keeps the
// per-scheduler compactions replica-deterministic in lockstep — callers add
// structure-specific steps (scratch truncation, stamp resets) on top.
func CompactKeyState[T any](tbl *intern.Table, cw, cr VersionIndex, pw, pr [][]T, extraLive func(live []bool)) (newPW, newPR [][]T, remap []intern.Key, err error) {
	live := make([]bool, tbl.Len())
	if err := cw.MarkLive(live); err != nil {
		return nil, nil, nil, err
	}
	if err := cr.MarkLive(live); err != nil {
		return nil, nil, nil, err
	}
	for k := range pw {
		if len(pw[k]) > 0 {
			live[k] = true
		}
	}
	for k := range pr {
		if len(pr[k]) > 0 {
			live[k] = true
		}
	}
	if extraLive != nil {
		extraLive(live)
	}
	remap = tbl.Compact(func(k intern.Key) bool { return live[k] })
	newLen := tbl.Len()
	if err := cw.Remap(remap, newLen); err != nil {
		return nil, nil, nil, err
	}
	if err := cr.Remap(remap, newLen); err != nil {
		return nil, nil, nil, err
	}
	return intern.RemapSlots(pw, remap, newLen), intern.RemapSlots(pr, remap, newLen), remap, nil
}
