// Package intern maps record-key strings to dense uint32 identifiers.
//
// The ordering-phase hot path (internal/core, internal/sched) resolves the
// same contract keys thousands of times per block: every map keyed by string
// re-hashes the full key bytes on every probe. Interning turns those probes
// into slice indexing — each scheduler owns one Table, interns a key the
// first time it appears in its consensus stream, and thereafter passes the
// uint32 Key around.
//
// Determinism: Keys are assigned in first-appearance order. Replicated
// orderers consume the same consensus stream in the same order, so every
// replica's table assigns identical Keys to identical strings — interning is
// a pure representation change and cannot alter scheduler decisions
// (asserted by the cross-peer agreement tests).
//
// Tables are not safe for concurrent use; every consumer in this repository
// is single-goroutine by construction (the serialized consensus stream).
package intern

// Key is a dense identifier for an interned string. Keys count up from 0 in
// first-appearance order.
type Key uint32

// Table is a string interner. The zero value is not usable; use NewTable.
type Table struct {
	ids  map[string]Key
	strs []string
}

// NewTable returns an empty interner.
func NewTable() *Table {
	return &Table{ids: make(map[string]Key)}
}

// Intern returns the Key for s, assigning the next dense Key on first sight.
func (t *Table) Intern(s string) Key {
	if k, ok := t.ids[s]; ok {
		return k
	}
	k := Key(len(t.strs))
	t.ids[s] = k
	t.strs = append(t.strs, s)
	return k
}

// InternAll interns every string of keys, appending the Keys to dst (pass a
// reusable scratch buffer to keep the hot path allocation-free).
func (t *Table) InternAll(dst []Key, keys []string) []Key {
	for _, s := range keys {
		dst = append(dst, t.Intern(s))
	}
	return dst
}

// Lookup resolves k back to its string. It panics on a Key the table never
// issued — that is a programming error, never data-dependent.
func (t *Table) Lookup(k Key) string { return t.strs[k] }

// Len returns the number of interned strings; Keys 0..Len()-1 are valid.
func (t *Table) Len() int { return len(t.strs) }
