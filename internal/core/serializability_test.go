package core

import (
	"fmt"
	"math/rand"
	"testing"

	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
)

// committedTx mirrors what a committed transaction exposes to the oracle.
type committedTx struct {
	id     string
	snap   uint64
	endTS  seqno.Seq
	reads  []string
	writes []string
}

// serializabilityOracle builds the exact precedence graph over committed
// transactions from first principles (no blooms, no pruning):
//
//	wr:      version-source writer -> reader
//	ww:      earlier writer -> later writer (by commit order)
//	anti-rw: reader -> any writer committing after the reader's snapshot
//
// and reports whether it is acyclic. An acyclic exact graph is precisely
// One-Copy Serializability of the committed schedule — the guarantee
// Theorem 2's filter is supposed to enforce.
func serializabilityOracle(txs []committedTx) (acyclic bool, cycleWitness []string) {
	writersOf := map[string][]*committedTx{}
	for i := range txs {
		for _, w := range txs[i].writes {
			writersOf[w] = append(writersOf[w], &txs[i])
		}
	}
	// Writers are appended in commit order because txs is commit-ordered.
	adj := map[string]map[string]bool{}
	addEdge := func(from, to string) {
		if from == to {
			return
		}
		if adj[from] == nil {
			adj[from] = map[string]bool{}
		}
		adj[from][to] = true
	}
	for i := range txs {
		t := &txs[i]
		for _, r := range t.reads {
			var source *committedTx
			for _, w := range writersOf[r] {
				if w.endTS.Block <= t.snap {
					source = w // last writer at or before the snapshot
				}
			}
			if source != nil {
				addEdge(source.id, t.id) // wr
			}
			for _, w := range writersOf[r] {
				if w.endTS.Block > t.snap && w.id != t.id {
					addEdge(t.id, w.id) // anti-rw: the read precedes the write
				}
			}
		}
	}
	for _, writers := range writersOf {
		for i := 0; i+1 < len(writers); i++ {
			addEdge(writers[i].id, writers[i+1].id) // ww in commit order
		}
	}
	// Cycle detection by coloring DFS.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	var dfs func(u string) bool
	dfs = func(u string) bool {
		color[u] = gray
		stack = append(stack, u)
		for v := range adj[u] {
			switch color[v] {
			case gray:
				stack = append(stack, v)
				return false
			case white:
				if !dfs(v) {
					return false
				}
			}
		}
		color[u] = black
		stack = stack[:len(stack)-1]
		return true
	}
	for i := range txs {
		if color[txs[i].id] == white {
			if !dfs(txs[i].id) {
				return false, stack
			}
		}
	}
	return true, nil
}

func TestOracleDetectsKnownCycle(t *testing.T) {
	// Sanity-check the oracle itself: the classic write-skew pair committed
	// together is unserializable.
	txs := []committedTx{
		{id: "t1", snap: 0, endTS: seqno.Commit(1, 1), reads: []string{"a"}, writes: []string{"b"}},
		{id: "t2", snap: 0, endTS: seqno.Commit(1, 2), reads: []string{"b"}, writes: []string{"a"}},
	}
	if ok, _ := serializabilityOracle(txs); ok {
		t.Fatal("oracle failed to flag write-skew cycle")
	}
	// And a clean pair passes.
	clean := []committedTx{
		{id: "t1", snap: 0, endTS: seqno.Commit(1, 1), reads: []string{"a"}, writes: []string{"b"}},
		{id: "t2", snap: 0, endTS: seqno.Commit(1, 2), reads: []string{"c"}, writes: []string{"d"}},
	}
	if ok, w := serializabilityOracle(clean); !ok {
		t.Fatalf("oracle flagged a clean schedule: %v", w)
	}
}

// runRandomWorkload drives a Manager with a seeded random stream and returns
// every committed transaction in commit order.
func runRandomWorkload(t *testing.T, seed int64, nTxs, nKeys, formEvery int, opts Options) []committedTx {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := NewManager(opts)
	byID := map[string]*committedTx{}
	var committed []committedTx
	height := uint64(0)

	randKeys := func(n int) []string {
		if n > nKeys {
			n = nKeys
		}
		seen := map[string]bool{}
		var out []string
		for len(out) < n {
			k := fmt.Sprintf("k%d", rng.Intn(nKeys))
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
		return out
	}

	for i := 0; i < nTxs; i++ {
		// Snapshot lags the formed height by a random amount, exercising
		// cross-block concurrency (Proposition 3).
		lag := uint64(rng.Intn(3))
		snap := height
		if lag < snap {
			snap -= lag
		} else {
			snap = 0
		}
		tx := committedTx{
			id:     fmt.Sprintf("tx%d", i),
			snap:   snap,
			reads:  randKeys(1 + rng.Intn(3)),
			writes: randKeys(1 + rng.Intn(3)),
		}
		code, err := m.OnArrival(TxID(tx.id), snap, tx.reads, tx.writes)
		if err != nil {
			t.Fatal(err)
		}
		if code == protocol.Valid {
			cp := tx
			byID[tx.id] = &cp
		}
		if (i+1)%formEvery == 0 {
			ids, block, err := m.OnBlockFormation()
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) > 0 {
				height = block
			}
			for pos, id := range ids {
				ct := byID[string(id)]
				ct.endTS = seqno.Commit(block, uint32(pos+1))
				committed = append(committed, *ct)
			}
		}
	}
	return committed
}

func TestCommittedScheduleAlwaysSerializable(t *testing.T) {
	// The headline property: under many random contended workloads, the
	// set of transactions Sharp admits is serializable — verified against
	// the exact oracle, independent of blooms, pruning and restoration.
	for seed := int64(0); seed < 15; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			committed := runRandomWorkload(t, seed, 600, 8, 23, Options{MaxSpan: 6, RelayBlocks: 4})
			if len(committed) == 0 {
				t.Fatal("nothing committed")
			}
			if ok, witness := serializabilityOracle(committed); !ok {
				t.Fatalf("unserializable committed schedule, cycle: %v", witness)
			}
		})
	}
}

func TestHighContentionStillSerializable(t *testing.T) {
	// Two keys, long spans, tiny filters (forcing bloom false positives and
	// relays): aborts rise, but never a serializability violation.
	committed := runRandomWorkload(t, 424242, 800, 2, 11, Options{
		MaxSpan:     4,
		RelayBlocks: 2,
		BloomBits:   256, // deliberately undersized
		BloomHashes: 2,
	})
	if ok, witness := serializabilityOracle(committed); !ok {
		t.Fatalf("unserializable schedule under tiny blooms, cycle: %v", witness)
	}
}

func TestThroughputAdvantageOverStrictPolicy(t *testing.T) {
	// Sharp must commit strictly more transactions than a strawman that
	// aborts on any stale read (vanilla Fabric's rule) on a contended
	// stream. This pins down that the machinery actually recovers
	// serializable-but-stale transactions instead of degenerating into the
	// preventive policy.
	rng := rand.New(rand.NewSource(7))
	m := NewManager(Options{})
	height := uint64(0)
	lastWriteBlock := map[string]uint64{} // block in which each key last committed a write
	var pendingWrites []string            // shared keys written by not-yet-formed transactions
	sharpCommitted, strictCommitted := 0, 0
	for i := 0; i < 500; i++ {
		snap := height
		if snap > 0 && rng.Intn(2) == 0 {
			snap-- // simulate against a slightly stale snapshot
		}
		var reads, writes []string
		shared := fmt.Sprintf("k%d", rng.Intn(4))
		if i%2 == 0 {
			// Blind writer to a shared key.
			writes = []string{shared}
			pendingWrites = append(pendingWrites, shared)
		} else {
			// Reader of a shared key writing only its private key: stale
			// reads here are anti-rw-only and serializable before the
			// writer; the strict (vanilla Fabric) rule aborts them anyway.
			reads = []string{shared}
			writes = []string{fmt.Sprintf("private%d", i)}
		}
		code, err := m.OnArrival(TxID(fmt.Sprintf("tx%d", i)), snap, reads, writes)
		if err != nil {
			t.Fatal(err)
		}
		if code == protocol.Valid {
			sharpCommitted++
		}
		// Strict policy: abort if any read key has a committed version
		// newer than the snapshot.
		stale := false
		for _, r := range reads {
			if lastWriteBlock[r] > snap {
				stale = true
			}
		}
		if !stale {
			strictCommitted++
		}
		if (i+1)%20 == 0 {
			ids, block, err := m.OnBlockFormation()
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) > 0 {
				height = block
				for _, w := range pendingWrites {
					lastWriteBlock[w] = block
				}
				pendingWrites = pendingWrites[:0]
			}
		}
	}
	if sharpCommitted <= strictCommitted {
		t.Errorf("sharp committed %d <= strict policy %d; reordering recovered nothing",
			sharpCommitted, strictCommitted)
	}
}
