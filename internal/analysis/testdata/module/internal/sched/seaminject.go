package sched

import (
	"math/rand"
	"time"
)

func flagInlineRand() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want seaminject "inline rand.New" want seaminject "inline rand.NewSource"
}

func flagRandLiteral() *rand.Rand {
	return &rand.Rand{} // want seaminject "rand.Rand literal"
}

func flagInlineTimer(d time.Duration) *time.Timer {
	return time.NewTimer(d) // want seaminject "inline time.NewTimer"
}

func flagAfter(d time.Duration) <-chan time.Time {
	return time.After(d) // want seaminject "inline time.After"
}

type options struct {
	RNG *rand.Rand
}

func okInjectedViaOptions(o options) int {
	return o.RNG.Intn(3)
}

func suppressedFixedSeed() *rand.Rand {
	//sharp:allow seaminject fixture: reviewed suppression — fixed seed shapes structure only
	return rand.New(rand.NewSource(7)) // wantsup seaminject "inline rand.New" wantsup seaminject "inline rand.NewSource"
}
