package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// hdrSubBits sizes the log-linear resolution: each power-of-two range is
// split into 2^(hdrSubBits-1) linear sub-buckets, bounding the relative
// quantile error at 1/2^(hdrSubBits-1) ≈ 3.2%.
const hdrSubBits = 6

const (
	hdrSubCount = 1 << hdrSubBits // values below this are exact
	hdrHalf     = hdrSubCount / 2 // linear sub-buckets per octave
	// hdrBuckets covers the full non-negative int64 range: the exact
	// low range plus (63 - hdrSubBits + 1) octaves of hdrHalf buckets.
	hdrBuckets = hdrSubCount + (63-hdrSubBits)*hdrHalf
)

// HDRHistogram is a lock-free fixed-bucket log-linear histogram over
// non-negative int64 values (latencies in ns or µs): recording is one
// atomic increment — safe from any number of goroutines with no locks and
// no allocation — and quantiles are exact up to the bucket resolution
// (≤ ~3.2% relative error, exact below 64). Memory is a fixed ~15KiB
// regardless of sample count, so it suits always-on open-loop load paths
// where a reservoir's mutex would serialize workers. The zero value is
// ready to use.
type HDRHistogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [hdrBuckets]atomic.Uint64
}

// hdrIndex maps a value to its bucket. Values below hdrSubCount map
// one-to-one; above, the top hdrSubBits bits select a linear sub-bucket
// within the value's octave, and octaves stack contiguously.
func hdrIndex(v uint64) int {
	if v < hdrSubCount {
		return int(v)
	}
	shift := bits.Len64(v) - hdrSubBits // ≥ 1
	return shift*hdrHalf + int(v>>uint(shift))
}

// hdrValue returns the midpoint value represented by bucket idx — the
// inverse of hdrIndex up to sub-bucket width.
func hdrValue(idx int) int64 {
	if idx < hdrSubCount {
		return int64(idx)
	}
	shift := idx/hdrHalf - 1
	sub := uint64(idx - shift*hdrHalf) // in [hdrHalf, hdrSubCount)
	return int64(sub<<uint(shift) + 1<<uint(shift)/2)
}

// Record adds one sample; negative values clamp to 0.
func (h *HDRHistogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[hdrIndex(uint64(v))].Add(1)
}

// Count returns the number of recorded samples (exact).
func (h *HDRHistogram) Count() uint64 { return h.count.Load() }

// Mean returns the arithmetic mean over all samples (exact), 0 if empty.
func (h *HDRHistogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the q-quantile (0 < q <= 1) as the matching bucket's
// midpoint, 0 if empty. Concurrent recording skews the answer by at most
// the in-flight samples; snapshot consistency is not required for
// monitoring quantiles.
func (h *HDRHistogram) Quantile(q float64) int64 {
	qs := h.Quantiles(q)
	return qs[0]
}

// Quantiles answers several quantiles over one pass of the bucket array.
func (h *HDRHistogram) Quantiles(qs ...float64) []int64 {
	var counts [hdrBuckets]uint64
	total := uint64(0)
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	out := make([]int64, len(qs))
	if total == 0 {
		return out
	}
	for i, q := range qs {
		rank := uint64(math.Ceil(q * float64(total)))
		if rank < 1 {
			rank = 1
		}
		if rank > total {
			rank = total
		}
		cum := uint64(0)
		for idx := range counts {
			cum += counts[idx]
			if cum >= rank {
				out[i] = hdrValue(idx)
				break
			}
		}
	}
	return out
}
