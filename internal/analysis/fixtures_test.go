package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture corpus under testdata/module is a standalone mini-module
// whose module path is also "fabricsharp", so the real scope rules apply
// verbatim. Expectations are written in the fixtures themselves:
//
//	// want <analyzer> "substr"     — an unsuppressed diagnostic on this line
//	// wantsup <analyzer> "substr"  — a suppressed diagnostic on this line
//
// A comment may carry several clauses for lines with multiple findings.
// The harness enforces exact agreement in both directions: every
// diagnostic must be expected, every expectation must be met. This is the
// hand-rolled stand-in for analysistest, which lives outside the stdlib.
var wantRE = regexp.MustCompile(`want(sup)?\s+([a-z]+)\s+"([^"]*)"`)

type expectation struct {
	file       string
	line       int
	analyzer   string
	substr     string
	suppressed bool
	met        bool
}

func TestFixtureCorpus(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "module"))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	res := Run(mod, Analyzers())
	for _, e := range res.Errors {
		t.Errorf("machinery error: %v", e)
	}

	exps := collectExpectations(t, mod)
	for _, d := range res.Diagnostics {
		if !meet(exps, d) {
			kind := "unsuppressed"
			if d.Suppressed {
				kind = "suppressed"
			}
			t.Errorf("unexpected %s diagnostic: %v", kind, d)
		}
	}
	for _, e := range exps {
		if !e.met {
			kind := "want"
			if e.suppressed {
				kind = "wantsup"
			}
			t.Errorf("%s:%d: %s %s %q: no matching diagnostic", e.file, e.line, kind, e.analyzer, e.substr)
		}
	}
}

// collectExpectations scans every fixture comment for want clauses.
func collectExpectations(t *testing.T, mod *Module) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
						if AnalyzerByName(m[2]) == nil {
							t.Fatalf("%s: want clause names unknown analyzer %q", fmtPos(mod.Fset.Position(c.Pos())), m[2])
						}
						pos := mod.Fset.Position(c.Pos())
						exps = append(exps, &expectation{
							file:       moduleRel(mod.Root, pos.Filename),
							line:       pos.Line,
							analyzer:   m[2],
							substr:     m[3],
							suppressed: m[1] == "sup",
						})
					}
				}
			}
		}
	}
	if len(exps) == 0 {
		t.Fatal("fixture corpus yielded no expectations — corpus missing or comment scan broken")
	}
	return exps
}

// meet consumes the first unmet expectation matching d, if any.
func meet(exps []*expectation, d Diagnostic) bool {
	for _, e := range exps {
		if e.met || e.file != d.Pos.Filename || e.line != d.Pos.Line {
			continue
		}
		if e.analyzer != d.Analyzer || e.suppressed != d.Suppressed {
			continue
		}
		if !strings.Contains(d.Message, e.substr) {
			continue
		}
		e.met = true
		return true
	}
	return false
}
