package transport

import (
	"math/rand"
	"sync"
	"time"

	"fabricsharp/internal/wire"
)

// FrameConn is the frame-level surface shared by *Conn and test doubles:
// what the Raft driver actually needs from a connection. *Conn satisfies it.
type FrameConn interface {
	Send(t wire.MsgType, payload []byte) error
	Recv() (wire.MsgType, []byte, error)
	Close() error
}

var _ FrameConn = (*Conn)(nil)

// FaultConn wraps a FrameConn and injects transmission faults on Send:
// frames are dropped, duplicated, or delayed with the configured
// probabilities. It models the failure surface a message-passing Raft must
// absorb — every protocol message is idempotent and term-guarded, so a
// dropped frame costs at most a retransmission interval and a duplicated or
// late frame is a no-op. Recv and Close pass through untouched.
//
// A dropped or delayed frame still reports success to the caller, exactly
// like a datagram handed to a congested network. The rng is owned
// exclusively (explicit seed, own lock), so fault sequences are reproducible
// per connection regardless of goroutine scheduling of other connections.
type FaultConn struct {
	inner FrameConn

	mu  sync.Mutex
	rng *rand.Rand

	// DropProb is the probability a Send is silently discarded.
	DropProb float64
	// DupProb is the probability a Send is transmitted twice.
	DupProb float64
	// MaxDelay, when non-zero, delays each transmitted frame uniformly in
	// [0, MaxDelay] (reordering frames relative to other connections).
	MaxDelay time.Duration
}

// NewFaultConn wraps inner with fault injection driven by the given seed.
func NewFaultConn(inner FrameConn, seed int64) *FaultConn {
	return &FaultConn{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// Send transmits the frame subject to the configured faults.
func (f *FaultConn) Send(t wire.MsgType, payload []byte) error {
	f.mu.Lock()
	drop := f.rng.Float64() < f.DropProb
	dup := !drop && f.rng.Float64() < f.DupProb
	var delay time.Duration
	if !drop && f.MaxDelay > 0 {
		delay = time.Duration(f.rng.Int63n(int64(f.MaxDelay) + 1))
	}
	f.mu.Unlock()
	if drop {
		return nil
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if err := f.inner.Send(t, payload); err != nil {
		return err
	}
	if dup {
		return f.inner.Send(t, payload)
	}
	return nil
}

// Recv passes through to the wrapped connection.
func (f *FaultConn) Recv() (wire.MsgType, []byte, error) { return f.inner.Recv() }

// Close passes through to the wrapped connection.
func (f *FaultConn) Close() error { return f.inner.Close() }
