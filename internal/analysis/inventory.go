package analysis

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// The suppression inventory is a checked-in ledger of every //sharp:
// directive in the tree: one line per directive, sorted, so a PR adding a
// suppression shows up in review as an inventory diff with its reason in
// plain sight. sharpvet verifies tree == inventory on every run and
// refuses to pass while they disagree; `sharpvet -write-inventory`
// regenerates the file.
//
// Format (tab-separated, '#' comments):
//
//	<module-relative file>\t<analyzer>\t<reason>
//
// Line numbers are deliberately absent: moving a suppressed site within
// its file must not churn the inventory.

const inventoryHeader = `# sharpvet suppression inventory — every //sharp: directive in the tree.
# Regenerate with: go run ./cmd/sharpvet -write-inventory ./...
# Format: <file>\t<analyzer>\t<reason>. See docs/determinism.md.
`

// InventoryEntry is one recorded suppression.
type InventoryEntry struct {
	File     string // module-relative path
	Analyzer string
	Reason   string
}

func (e InventoryEntry) line() string {
	return e.File + "\t" + e.Analyzer + "\t" + e.Reason
}

// FormatInventory renders directives as the canonical inventory text.
func FormatInventory(dirs []*Directive) string {
	entries := make([]string, 0, len(dirs))
	for _, d := range dirs {
		entries = append(entries, InventoryEntry{File: d.File, Analyzer: d.Analyzer, Reason: d.Reason}.line())
	}
	sort.Strings(entries)
	var b strings.Builder
	b.WriteString(inventoryHeader)
	for _, e := range entries {
		b.WriteString(e)
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseInventory reads inventory text back into sorted entry lines.
func ParseInventory(text string) ([]string, error) {
	var entries []string
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, "\t") != 2 {
			return nil, fmt.Errorf("inventory line %d: want <file>\\t<analyzer>\\t<reason>, got %q", i+1, line)
		}
		entries = append(entries, line)
	}
	sort.Strings(entries)
	return entries, nil
}

// DiffInventory compares the tree's directives against the checked-in
// inventory file and returns human-readable discrepancies (nil = in sync).
func DiffInventory(path string, dirs []*Directive) ([]string, error) {
	var have []string
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		// Missing file diffs as empty: every directive reports as
		// unrecorded, which tells the user exactly what to do.
	case err != nil:
		return nil, err
	default:
		if have, err = ParseInventory(string(data)); err != nil {
			return nil, err
		}
	}
	want, err := ParseInventory(FormatInventory(dirs))
	if err != nil {
		return nil, err
	}
	return diffSorted(have, want), nil
}

// diffSorted reports multiset differences between two sorted string slices.
func diffSorted(have, want []string) []string {
	var out []string
	i, j := 0, 0
	for i < len(have) || j < len(want) {
		switch {
		case j == len(want) || (i < len(have) && have[i] < want[j]):
			out = append(out, fmt.Sprintf("recorded but not in tree: %s", have[i]))
			i++
		case i == len(have) || have[i] > want[j]:
			out = append(out, fmt.Sprintf("in tree but not recorded: %s", want[j]))
			j++
		default:
			i++
			j++
		}
	}
	return out
}

// WriteInventory writes the canonical inventory for dirs to path.
func WriteInventory(path string, dirs []*Directive) error {
	return os.WriteFile(path, []byte(FormatInventory(dirs)), 0o644)
}
