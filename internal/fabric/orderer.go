package fabric

import (
	"fmt"
	"time"

	"fabricsharp/internal/consensus"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/sched"
)

// orderer is one replicated orderer: it consumes the consensus stream, runs
// its scheduler (Algorithm 2 on arrival, Algorithm 3 at formation for
// Sharp), seals blocks on its own hash chain, and — when it is the lead
// replica — fans them out to the peers' committers. Because every replica
// runs the same deterministic scheduler over the same stream, all orderer
// chains are identical (the agreement property of Section 3.5, asserted in
// tests).
//
// The orderer never touches peer state: delivery is a channel send, and the
// validation verdicts flow back asynchronously through the network's commit
// feed, so consensus-stream consumption is pipelined with peer commits.
type orderer struct {
	net       *Network
	name      string
	scheduler sched.Scheduler
	chain     *ledger.Chain
	deliver   bool
	seen      map[protocol.TxID]bool
	broker    *CommitmentBroker // non-nil when the network runs hash commitments
}

func (o *orderer) run() {
	defer o.net.wg.Done()
	stream, cancel := o.net.kafka.Subscribe()
	defer cancel()
	timer := time.NewTimer(o.net.opts.BlockTimeout)
	defer timer.Stop()
	timerArmed := false
	disarm := func() {
		if timerArmed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timerArmed = false
	}
	arm := func() {
		disarm()
		timer.Reset(o.net.opts.BlockTimeout)
		timerArmed = true
	}
	// Only the lead orderer receives commit feedback (it is the only one
	// that delivers, hence the only one whose scheduler sees verdicts — as
	// before the pipeline split). A nil queue leaves the select case dormant.
	var feedbackReady <-chan struct{}
	if o.deliver {
		feedbackReady = o.net.commitFeed.Ready()
	}

	for {
		// Fatal check first, non-blocking: select picks ready cases at
		// random, so without this a busy consensus stream could keep
		// winning over the closed fatalCh and the orderer would go on
		// driving a faulted scheduler.
		select {
		case <-o.net.fatalCh:
			return
		default:
		}
		select {
		case <-o.net.done:
			return
		case <-o.net.fatalCh:
			// A poisoned block or scheduler fault elsewhere: stop consuming
			// rather than extending a chain nobody will commit.
			return
		case <-feedbackReady:
			o.drainFeedback()
		case <-timer.C:
			timerArmed = false
			if o.scheduler.PendingCount() > 0 {
				// Do not cut locally: post a time-to-cut marker through
				// consensus so every replica cuts at the same stream
				// position (deterministic block boundaries).
				_ = o.net.kafka.Submit(consensusCutMarker(o.name, o.nextCutBlock()))
			}
		case seq, ok := <-stream:
			if !ok {
				// Consensus closed: cut the tail so waiters resolve.
				if o.scheduler.PendingCount() > 0 {
					o.cut()
				}
				return
			}
			if seq.Env.Commitment != "" {
				// Phase-1 hash commitment (Section 3.5): only the digest's
				// position is fixed now.
				if o.broker != nil {
					o.broker.Commit(seq.Env.Commitment)
				}
				continue
			}
			if seq.Env.Tx == nil {
				// Time-to-cut marker. Cut if it targets the block still
				// being assembled; stale markers (another replica already
				// triggered the cut, or the block filled up) are ignored.
				if seq.Env.CutBlock == o.nextCutBlock() && o.scheduler.PendingCount() > 0 {
					o.cut()
					disarm()
				}
				continue
			}
			if seq.Env.Disclosure && o.broker != nil {
				// Phase-2 payload reveal: process whatever became
				// releasable, in commitment order.
				released, err := o.broker.Disclose(seq.Env.Tx)
				if err != nil {
					// Disclosure without (or not matching) a commitment:
					// the client broke its security commitment.
					if o.deliver {
						o.net.resolve(seq.Env.Tx.ID, TxResult{TxID: seq.Env.Tx.ID, Code: protocol.EndorsementFailure})
					}
					continue
				}
				for _, tx := range released {
					o.processArrival(tx, arm, disarm)
				}
				continue
			}
			o.processArrival(seq.Env.Tx, arm, disarm)
		}
	}
}

// processArrival runs one transaction through dedup and the scheduler,
// cutting a block when the batch fills.
func (o *orderer) processArrival(tx *protocol.Transaction, arm, disarm func()) {
	if o.seen[tx.ID] {
		if o.deliver {
			o.net.resolve(tx.ID, TxResult{TxID: tx.ID, Code: protocol.AbortDuplicate})
		}
		return
	}
	o.seen[tx.ID] = true
	code, err := o.scheduler.OnArrival(tx)
	if err != nil {
		o.net.fail(fmt.Errorf("fabric: orderer %s arrival: %w", o.name, err))
		return
	}
	if code != protocol.Valid {
		if o.deliver {
			o.net.resolve(tx.ID, TxResult{TxID: tx.ID, Code: code})
		}
		return
	}
	if o.scheduler.PendingCount() >= o.net.opts.BlockSize {
		o.cut()
		disarm()
	} else if o.scheduler.PendingCount() == 1 {
		arm()
	}
}

// nextCutBlock returns the number of the block currently being assembled.
func (o *orderer) nextCutBlock() uint64 {
	return uint64(o.chain.Len()) + 1
}

// consensusCutMarker builds a TTC control envelope.
func consensusCutMarker(from string, block uint64) (env consensus.Envelope) {
	env.SubmittedBy = from
	env.CutBlock = block
	return env
}

// drainFeedback applies any commit verdicts that have already arrived to
// the scheduler (lead only). Feedback is best-effort by design: a block
// still in flight when the next one forms simply isn't reflected yet —
// schedulers use it as an optimization (Focc-l's doomed-transaction
// detection), never for correctness, which the validation phase enforces.
//
// Caveat (pre-dating the pipeline split, when feedback was synchronous but
// equally lead-only): follower orderers never receive verdicts, so for the
// one scheduler whose block contents depend on them (Focc-l) the agreement
// property above is best-effort rather than exact. Making feedback a
// deterministic function of the consensus stream is an open roadmap item.
func (o *orderer) drainFeedback() {
	if !o.deliver {
		return
	}
	for _, ev := range o.net.commitFeed.Drain() {
		o.scheduler.OnBlockCommitted(ev.block, ev.txs, ev.codes)
	}
}

// cut forms a block, seals it on the orderer's chain, and (lead only) fans
// it out to every peer's committer. Ordering never waits for validation:
// the only way this blocks is backpressure from a full delivery queue.
func (o *orderer) cut() {
	// Fold in every verdict that has already landed before deciding the
	// block's contents — minimizes the scheduler's committed-state lag
	// without ever blocking on in-flight commits.
	o.drainFeedback()
	res, err := o.scheduler.OnBlockFormation()
	if err != nil {
		o.net.fail(fmt.Errorf("fabric: orderer %s formation: %w", o.name, err))
		return
	}
	for _, d := range res.DroppedTxs {
		if o.deliver {
			o.net.resolve(d.Tx.ID, TxResult{TxID: d.Tx.ID, Code: d.Code})
		}
	}
	if len(res.Ordered) == 0 {
		return
	}
	blk, err := o.chain.Seal(res.Ordered, nil)
	if err != nil {
		o.net.fail(fmt.Errorf("fabric: orderer %s seal: %w", o.name, err))
		return
	}
	if !o.deliver {
		return
	}
	for _, p := range o.net.peers {
		p.committer.Deliver(blk)
	}
}
