package fabric

import (
	"fmt"
	"time"

	"fabricsharp/internal/consensus"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/validation"
)

// orderer is one replicated orderer: it consumes the consensus stream, runs
// its scheduler (Algorithm 2 on arrival, Algorithm 3 at formation for
// Sharp), seals blocks on its own hash chain, and — when it is the lead
// replica — delivers them to the peers. Because every replica runs the same
// deterministic scheduler over the same stream, all orderer chains are
// identical (the agreement property of Section 3.5, asserted in tests).
type orderer struct {
	net       *Network
	name      string
	scheduler sched.Scheduler
	chain     *ledger.Chain
	deliver   bool
	seen      map[protocol.TxID]bool
	broker    *CommitmentBroker // non-nil when the network runs hash commitments
}

func (o *orderer) run() {
	defer o.net.wg.Done()
	stream, cancel := o.net.kafka.Subscribe()
	defer cancel()
	timer := time.NewTimer(o.net.opts.BlockTimeout)
	defer timer.Stop()
	timerArmed := false
	disarm := func() {
		if timerArmed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timerArmed = false
	}
	arm := func() {
		disarm()
		timer.Reset(o.net.opts.BlockTimeout)
		timerArmed = true
	}

	for {
		select {
		case <-o.net.done:
			return
		case <-timer.C:
			timerArmed = false
			if o.scheduler.PendingCount() > 0 {
				// Do not cut locally: post a time-to-cut marker through
				// consensus so every replica cuts at the same stream
				// position (deterministic block boundaries).
				_ = o.net.kafka.Submit(consensusCutMarker(o.name, o.nextCutBlock()))
			}
		case seq, ok := <-stream:
			if !ok {
				// Consensus closed: cut the tail so waiters resolve.
				if o.scheduler.PendingCount() > 0 {
					o.cut()
				}
				return
			}
			if seq.Env.Commitment != "" {
				// Phase-1 hash commitment (Section 3.5): only the digest's
				// position is fixed now.
				if o.broker != nil {
					o.broker.Commit(seq.Env.Commitment)
				}
				continue
			}
			if seq.Env.Tx == nil {
				// Time-to-cut marker. Cut if it targets the block still
				// being assembled; stale markers (another replica already
				// triggered the cut, or the block filled up) are ignored.
				if seq.Env.CutBlock == o.nextCutBlock() && o.scheduler.PendingCount() > 0 {
					o.cut()
					disarm()
				}
				continue
			}
			if seq.Env.Disclosure && o.broker != nil {
				// Phase-2 payload reveal: process whatever became
				// releasable, in commitment order.
				released, err := o.broker.Disclose(seq.Env.Tx)
				if err != nil {
					// Disclosure without (or not matching) a commitment:
					// the client broke its security commitment.
					if o.deliver {
						o.net.resolve(seq.Env.Tx.ID, TxResult{TxID: seq.Env.Tx.ID, Code: protocol.EndorsementFailure})
					}
					continue
				}
				for _, tx := range released {
					o.processArrival(tx, arm, disarm)
				}
				continue
			}
			o.processArrival(seq.Env.Tx, arm, disarm)
		}
	}
}

// processArrival runs one transaction through dedup and the scheduler,
// cutting a block when the batch fills.
func (o *orderer) processArrival(tx *protocol.Transaction, arm, disarm func()) {
	if o.seen[tx.ID] {
		if o.deliver {
			o.net.resolve(tx.ID, TxResult{TxID: tx.ID, Code: protocol.AbortDuplicate})
		}
		return
	}
	o.seen[tx.ID] = true
	code, err := o.scheduler.OnArrival(tx)
	if err != nil {
		panic(fmt.Sprintf("fabric: orderer %s arrival: %v", o.name, err))
	}
	if code != protocol.Valid {
		if o.deliver {
			o.net.resolve(tx.ID, TxResult{TxID: tx.ID, Code: code})
		}
		return
	}
	if o.scheduler.PendingCount() >= o.net.opts.BlockSize {
		o.cut()
		disarm()
	} else if o.scheduler.PendingCount() == 1 {
		arm()
	}
}

// nextCutBlock returns the number of the block currently being assembled.
func (o *orderer) nextCutBlock() uint64 {
	return uint64(o.chain.Len()) + 1
}

// consensusCutMarker builds a TTC control envelope.
func consensusCutMarker(from string, block uint64) (env consensus.Envelope) {
	env.SubmittedBy = from
	env.CutBlock = block
	return env
}

// cut forms a block, seals it on the orderer's chain, and (lead only)
// validates and commits it on every peer.
func (o *orderer) cut() {
	res, err := o.scheduler.OnBlockFormation()
	if err != nil {
		panic(fmt.Sprintf("fabric: orderer %s formation: %v", o.name, err))
	}
	for _, d := range res.DroppedTxs {
		if o.deliver {
			o.net.resolve(d.Tx.ID, TxResult{TxID: d.Tx.ID, Code: d.Code})
		}
	}
	if len(res.Ordered) == 0 {
		return
	}
	blk, err := o.chain.Seal(res.Ordered, nil)
	if err != nil {
		panic(fmt.Sprintf("fabric: orderer %s seal: %v", o.name, err))
	}
	if !o.deliver {
		return
	}
	// Deliver to every peer; all validate identically. MVCC runs only for
	// the systems whose ordering phase does not already guarantee
	// serializability (Figure 8).
	var codes []protocol.ValidationCode
	for _, p := range o.net.peers {
		peerBlk := *blk
		if err := p.chain.Append(&peerBlk); err != nil {
			panic(fmt.Sprintf("fabric: peer append: %v", err))
		}
		cs, err := validation.ValidateAndCommit(p.state, &peerBlk, validation.Options{
			MVCC:   o.scheduler.NeedsMVCCValidation(),
			MSP:    o.net.msp,
			Policy: o.net.policy,
		})
		if err != nil {
			panic(fmt.Sprintf("fabric: peer commit: %v", err))
		}
		if err := p.chain.SetValidation(peerBlk.Header.Number, cs); err != nil {
			panic(err)
		}
		if codes == nil {
			codes = cs
		}
	}
	o.scheduler.OnBlockCommitted(blk.Header.Number, blk.Transactions, codes)
	for i, tx := range blk.Transactions {
		o.net.resolve(tx.ID, TxResult{TxID: tx.ID, Code: codes[i], Block: blk.Header.Number})
	}
}
