package main

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// validator lets the table below mix the per-command flag structs: each
// subcommand owns its shape, all expose the same testable validate().
type validator interface{ validate() error }

func TestValidateAcceptsWellFormedCommands(t *testing.T) {
	cluster := []string{"127.0.0.1:7050"}
	peers := []string{"127.0.0.1:7051", "127.0.0.1:7052"}
	for name, f := range map[string]validator{
		"demo":            demoFlags{Clients: 4, Txs: 200, Hot: 8},
		"load closed":     loadFlags{Orderers: cluster, Peers: peers, Clients: 4, Txs: 125, Accounts: 32},
		"load scenario":   loadFlags{Orderers: cluster, Peers: peers, Clients: 4, Txs: 125, Workload: "auction"},
		"load open loop":  loadFlags{Orderers: cluster, Peers: peers, TargetTPS: 500, Duration: 10 * time.Second},
		"load open pool":  loadFlags{Orderers: cluster, Peers: peers, TargetTPS: 500, Duration: time.Second, Workload: "token", Accounts: 100000},
		"status both":     statusFlags{Orderers: cluster, Peers: peers},
		"status orderers": statusFlags{Orderers: cluster},
		"check":           checkFlags{Orderers: cluster, Peers: peers, ExpectCommitted: 500, ConvergeTimeout: time.Minute},
		"check no tally":  checkFlags{Orderers: cluster, Peers: peers, ConvergeTimeout: time.Minute},
		"trace":           traceFlags{Orderers: cluster, Peers: peers},
		"trace peers":     traceFlags{Peers: peers},
	} {
		if err := f.validate(); err != nil {
			t.Errorf("%s: unexpected error: %v", name, err)
		}
	}
}

func TestValidateRejectsMisuse(t *testing.T) {
	cluster := []string{"127.0.0.1:7050"}
	peers := []string{"127.0.0.1:7051"}
	cases := map[string]struct {
		flags   validator
		wantErr string
	}{
		"demo zero clients":     {demoFlags{Txs: 1, Hot: 1}, "-clients must be positive"},
		"demo zero txs":         {demoFlags{Clients: 1, Hot: 1}, "-txs must be positive"},
		"demo zero hot":         {demoFlags{Clients: 1, Txs: 1}, "-hot must be positive"},
		"load without orderers": {loadFlags{Peers: peers, Clients: 1, Txs: 1, Accounts: 1}, "requires -orderer"},
		"load without peers":    {loadFlags{Orderers: cluster, Clients: 1, Txs: 1, Accounts: 1}, "requires -orderer and -peer-addrs"},
		"load zero accounts":    {loadFlags{Orderers: cluster, Peers: peers, Clients: 1, Txs: 1}, "-accounts must be positive"},
		"load unknown workload": {loadFlags{Orderers: cluster, Peers: peers, Clients: 1, Txs: 1, Workload: "nosuch"}, "unknown -workload"},
		"load negative pool":    {loadFlags{Orderers: cluster, Peers: peers, Clients: 1, Txs: 1, Workload: "token", Accounts: -1}, "non-negative"},
		"load stray duration":   {loadFlags{Orderers: cluster, Peers: peers, Clients: 1, Txs: 1, Accounts: 1, Duration: time.Second}, "requires -target-tps"},
		"open loop no duration": {loadFlags{Orderers: cluster, Peers: peers, TargetTPS: 100}, "positive duration"},
		"open loop bad workload": {
			loadFlags{Orderers: cluster, Peers: peers, TargetTPS: 100, Duration: time.Second, Workload: "nosuch"},
			"unknown workload",
		},
		"status no targets":  {statusFlags{}, "needs -orderer and/or -peer-addrs"},
		"check without peer": {checkFlags{Orderers: cluster, ConvergeTimeout: time.Minute}, "requires -orderer and -peer-addrs"},
		"check zero timeout": {checkFlags{Orderers: cluster, Peers: peers}, "-converge-timeout must be positive"},
		"trace no targets":   {traceFlags{}, "needs -orderer and/or -peer-addrs"},
	}
	for name, c := range cases {
		err := c.flags.validate()
		if err == nil {
			t.Errorf("%s: want error containing %q, got nil", name, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not contain %q", name, err, c.wantErr)
		}
	}
}

// TestLegacyArgs pins the deprecation shim: every pre-subcommand flag-soup
// invocation maps onto the matching subcommand with its flags intact, and
// subcommand-shaped invocations pass through untouched.
func TestLegacyArgs(t *testing.T) {
	cases := map[string]struct {
		in       []string
		want     []string
		wantMode string
	}{
		"subcommand passthrough": {
			in: []string{"load", "-orderer", "a"}, want: []string{"load", "-orderer", "a"}, wantMode: "",
		},
		"empty passthrough": {in: nil, want: nil, wantMode: ""},
		"mode pair": {
			in:       []string{"-mode", "load", "-orderer", "a", "-txs", "5"},
			want:     []string{"load", "-orderer", "a", "-txs", "5"},
			wantMode: "load",
		},
		"mode equals": {
			in:       []string{"-mode=check", "-expect-committed", "500"},
			want:     []string{"check", "-expect-committed", "500"},
			wantMode: "check",
		},
		"double dash mode": {
			in:       []string{"--mode", "status", "-orderer", "a"},
			want:     []string{"status", "-orderer", "a"},
			wantMode: "status",
		},
		"bare flags default to demo": {
			in:       []string{"-system", "fabric#", "-clients", "2"},
			want:     []string{"demo", "-system", "fabric#", "-clients", "2"},
			wantMode: "demo",
		},
		"mode mid-args": {
			in:       []string{"-orderer", "a", "-mode", "load", "-peer-addrs", "b"},
			want:     []string{"load", "-orderer", "a", "-peer-addrs", "b"},
			wantMode: "load",
		},
	}
	for name, c := range cases {
		got, mode := legacyArgs(c.in)
		if !reflect.DeepEqual(got, c.want) || mode != c.wantMode {
			t.Errorf("%s: legacyArgs(%v) = (%v, %q), want (%v, %q)",
				name, c.in, got, mode, c.want, c.wantMode)
		}
	}
}
