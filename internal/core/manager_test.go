package core

import (
	"fmt"
	"testing"

	"fabricsharp/internal/protocol"
)

// arrive is a test helper asserting the arrival outcome.
func arrive(t *testing.T, m *Manager, id string, snap uint64, reads, writes []string, want protocol.ValidationCode) {
	t.Helper()
	got, err := m.OnArrival(TxID(id), snap, reads, writes)
	if err != nil {
		t.Fatalf("OnArrival(%s): %v", id, err)
	}
	if got != want {
		t.Fatalf("OnArrival(%s) = %v, want %v", id, got, want)
	}
}

// form is a test helper forming a block and returning the order as strings.
func form(t *testing.T, m *Manager) []string {
	t.Helper()
	ids, _, err := m.OnBlockFormation()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

func indexOf(s []string, x string) int {
	for i, v := range s {
		if v == x {
			return i
		}
	}
	return -1
}

func TestNoConflictAllCommit(t *testing.T) {
	m := NewManager(Options{})
	arrive(t, m, "t1", 0, []string{"a"}, []string{"b"}, protocol.Valid)
	arrive(t, m, "t2", 0, []string{"c"}, []string{"d"}, protocol.Valid)
	order := form(t, m)
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	if m.NextBlock() != 2 {
		t.Errorf("NextBlock = %d", m.NextBlock())
	}
}

func TestTwoTxnUnreorderableCycle(t *testing.T) {
	// Figure 7a's essence: T1 reads a / writes b, T2 reads b / writes a.
	// Their rw and anti-rw conflicts form a cycle with no c-ww; Theorem 2
	// says no reordering fixes it, so the second arrival is dropped.
	m := NewManager(Options{})
	arrive(t, m, "t1", 0, []string{"a"}, []string{"b"}, protocol.Valid)
	arrive(t, m, "t2", 0, []string{"b"}, []string{"a"}, protocol.AbortCycle)
	order := form(t, m)
	if fmt.Sprint(order) != "[t1]" {
		t.Errorf("order = %v", order)
	}
}

func TestReorderableWWCycleCommitsAll(t *testing.T) {
	// Figure 7b: a cycle whose only "backward" conflict is a c-ww between
	// pending transactions is reorderable. Edges at arrival:
	//   T1 -> T2 (rw on k1), T3 -> T1 (rw on k2); T2 and T3 both write A
	//   (c-ww, deliberately ignored on arrival, restored after ordering).
	m := NewManager(Options{})
	arrive(t, m, "t1", 0, []string{"k1"}, []string{"k2"}, protocol.Valid)
	arrive(t, m, "t2", 0, nil, []string{"k1", "A"}, protocol.Valid)
	arrive(t, m, "t3", 0, []string{"k2"}, []string{"A", "t3only"}, protocol.Valid)
	order := form(t, m)
	if len(order) != 3 {
		t.Fatalf("want all three committed, got %v", order)
	}
	// The commit order must respect T3 -> T1 -> T2.
	if !(indexOf(order, "t3") < indexOf(order, "t1") && indexOf(order, "t1") < indexOf(order, "t2")) {
		t.Errorf("order %v violates dependencies t3<t1<t2", order)
	}
}

func TestRestoredWWDetectsLaterCycle(t *testing.T) {
	// Continuation of the Figure 7b scenario: the restored ww edge
	// (T3 -> T2 on key A) must participate in later cycle checks
	// (Section 3.4: "future unserializable transactions may encounter a
	// cycle with a c-ww dependency which involves committed transactions").
	//
	// T4 reads "t3only" from the pre-block snapshot (anti-rw: T4 -> T3) and
	// overwrites A (ww: T2 -> T4, T2 being the last writer). The cycle
	// T2 -> T4 -> T3 -> (restored ww) T2 closes only through the restored
	// edge.
	m := NewManager(Options{})
	arrive(t, m, "t1", 0, []string{"k1"}, []string{"k2"}, protocol.Valid)
	arrive(t, m, "t2", 0, nil, []string{"k1", "A"}, protocol.Valid)
	arrive(t, m, "t3", 0, []string{"k2"}, []string{"A", "t3only"}, protocol.Valid)
	order := form(t, m) // block 1; order t3 < t1 < t2 so CW.Last(A) == t2
	if indexOf(order, "t2") != 2 {
		t.Fatalf("precondition: t2 must commit last, got %v", order)
	}
	arrive(t, m, "t4", 0, []string{"t3only"}, []string{"A"}, protocol.AbortCycle)
}

func TestLostUpdateAborted(t *testing.T) {
	// Read-modify-write racing a committed writer of the same key: the
	// committed writer is both a successor (anti-rw on the read) and a
	// predecessor (ww on the write) — an unreorderable 2-cycle.
	m := NewManager(Options{})
	arrive(t, m, "writer", 0, nil, []string{"x"}, protocol.Valid)
	form(t, m) // block 1 commits writer
	arrive(t, m, "rmw", 0, []string{"x"}, []string{"x"}, protocol.AbortCycle)
}

func TestAntiRWAloneIsSerializable(t *testing.T) {
	// The Figure 15 "antiRW" gain: a transaction with a stale read but no
	// conflicting write serializes before the committed writer. Vanilla
	// Fabric's validation would abort it; Sharp commits it.
	m := NewManager(Options{})
	arrive(t, m, "writer", 0, nil, []string{"x"}, protocol.Valid)
	form(t, m) // block 1
	arrive(t, m, "staleReader", 0, []string{"x"}, []string{"y"}, protocol.Valid)
	order := form(t, m)
	if fmt.Sprint(order) != "[staleReader]" {
		t.Errorf("stale reader not committed: %v", order)
	}
}

func TestSnapshotConsistentCrossBlockRead(t *testing.T) {
	// Figure 3a, Txn1: reads A (written in block 1) and B (written in
	// block 2) against snapshot 2 — snapshot consistent, commits. Fabric++
	// would have early-aborted it for reading across blocks.
	m := NewManager(Options{})
	arrive(t, m, "initA", 0, nil, []string{"A"}, protocol.Valid)
	form(t, m) // block 1
	arrive(t, m, "initB", 0, nil, []string{"B"}, protocol.Valid)
	form(t, m) // block 2 (writes B)
	arrive(t, m, "txn1", 2, []string{"A", "B"}, []string{"C"}, protocol.Valid)
	order := form(t, m)
	if fmt.Sprint(order) != "[txn1]" {
		t.Errorf("snapshot-consistent reader aborted: %v", order)
	}

	// Figure 3a, Txn2: reads B against snapshot 1, but B was rewritten in
	// block 2 and Txn2 also derives a write to B's co-written key C — make
	// it the inconsistent variant: reads B@1 and writes B. Lost update.
	arrive(t, m, "txn2", 1, []string{"B"}, []string{"B"}, protocol.AbortCycle)
}

func TestStaleSnapshotAborted(t *testing.T) {
	m := NewManager(Options{MaxSpan: 3})
	for i := 0; i < 5; i++ {
		arrive(t, m, fmt.Sprintf("f%d", i), uint64(i), nil, []string{"k"}, protocol.Valid)
		form(t, m)
	}
	// nextBlock is now 6, horizon H = 3: snapshots <= 3 are stale.
	arrive(t, m, "tooOld", 3, []string{"k"}, nil, protocol.AbortStaleSnapshot)
	arrive(t, m, "okAge", 4, nil, nil, protocol.Valid)
	if got := m.Stats().AbortStale; got != 1 {
		t.Errorf("AbortStale = %d", got)
	}
	if min := m.MinRetainedSnapshot(); min != 4 {
		t.Errorf("MinRetainedSnapshot = %d want 4", min)
	}
}

func TestDuplicateAborted(t *testing.T) {
	m := NewManager(Options{})
	arrive(t, m, "dup", 0, nil, []string{"k"}, protocol.Valid)
	arrive(t, m, "dup", 0, nil, []string{"k"}, protocol.AbortDuplicate)
	form(t, m)
	// Still a duplicate after commit, while the node remains in G.
	arrive(t, m, "dup", 0, nil, nil, protocol.AbortDuplicate)
}

func TestFutureSnapshotRejected(t *testing.T) {
	m := NewManager(Options{})
	if _, err := m.OnArrival("bad", 1, nil, nil); err == nil {
		t.Fatal("snapshot at the unformed block accepted")
	}
}

func TestEmptyFormationDoesNotAdvance(t *testing.T) {
	m := NewManager(Options{})
	ids, block, err := m.OnBlockFormation()
	if err != nil || ids != nil || block != 1 {
		t.Fatalf("empty formation: %v %d %v", ids, block, err)
	}
	if m.NextBlock() != 1 {
		t.Error("empty formation consumed a block number")
	}
}

func TestPendingChainOrdering(t *testing.T) {
	// Pending reader must precede the pending writer it conflicts with
	// (rw), transitively across a chain.
	m := NewManager(Options{})
	arrive(t, m, "r1", 0, []string{"a"}, []string{"z1"}, protocol.Valid) // reads a
	arrive(t, m, "w1", 0, []string{"b"}, []string{"a"}, protocol.Valid)  // writes a, reads b
	arrive(t, m, "w2", 0, nil, []string{"b"}, protocol.Valid)            // writes b
	order := form(t, m)
	if !(indexOf(order, "r1") < indexOf(order, "w1") && indexOf(order, "w1") < indexOf(order, "w2")) {
		t.Errorf("order %v violates r1<w1<w2", order)
	}
}

func TestCrossBlockConcurrencyCycleViaCommitted(t *testing.T) {
	// Proposition 3 territory: dependencies spanning blocks. Pending T
	// reads k written by committed C1 after T's snapshot (T -> C1), and T
	// writes q that committed C1 read before (C1 -> T via rw recorded in
	// CR). Cycle through a committed transaction: unreorderable, because
	// C1's position is immutable (Lemma 1).
	m := NewManager(Options{})
	arrive(t, m, "c1", 0, []string{"q"}, []string{"k"}, protocol.Valid)
	form(t, m) // block 1 commits c1
	arrive(t, m, "t", 0, []string{"k"}, []string{"q"}, protocol.AbortCycle)
}

func TestBlockSpanStats(t *testing.T) {
	m := NewManager(Options{})
	arrive(t, m, "a", 0, nil, []string{"x1"}, protocol.Valid)
	form(t, m)                                                // block 1, span 1
	arrive(t, m, "b", 0, nil, []string{"x2"}, protocol.Valid) // snapshot 0, commits in block 2: span 2
	form(t, m)
	st := m.Stats()
	if st.SpanCount != 2 || st.SpanSum != 3 {
		t.Errorf("span stats = %d/%d want 3/2", st.SpanSum, st.SpanCount)
	}
	if st.MeanSpan() != 1.5 {
		t.Errorf("MeanSpan = %v", st.MeanSpan())
	}
}

func TestPruningBoundsGraph(t *testing.T) {
	m := NewManager(Options{MaxSpan: 4})
	for b := 0; b < 60; b++ {
		for j := 0; j < 5; j++ {
			id := fmt.Sprintf("t%d-%d", b, j)
			key := fmt.Sprintf("k%d", j)
			arrive(t, m, id, uint64(b), []string{key}, []string{key + "w"}, protocol.Valid)
		}
		form(t, m)
	}
	if size := m.GraphSize(); size > 60 {
		t.Errorf("graph grew to %d nodes despite pruning", size)
	}
	if m.Stats().PrunedNodes == 0 {
		t.Error("nothing was pruned")
	}
}

func TestStatsAccounting(t *testing.T) {
	m := NewManager(Options{})
	arrive(t, m, "ok", 0, []string{"a"}, []string{"b"}, protocol.Valid)
	arrive(t, m, "cyc", 0, []string{"b"}, []string{"a"}, protocol.AbortCycle)
	form(t, m)
	st := m.Stats()
	if st.Arrivals != 2 || st.Accepted != 1 || st.AbortCycle != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Formations != 1 || st.Committed != 1 {
		t.Errorf("formation stats = %+v", st)
	}
}

func TestDeterministicReplication(t *testing.T) {
	// Section 3.5 agreement: two managers fed the same consensus stream
	// must make identical decisions and emit identical block orders.
	type event struct {
		id     string
		snap   uint64
		reads  []string
		writes []string
	}
	mkStream := func() []event {
		var evs []event
		// A deliberately tangled deterministic stream.
		for i := 0; i < 400; i++ {
			k1 := fmt.Sprintf("k%d", (i*7)%13)
			k2 := fmt.Sprintf("k%d", (i*5)%13)
			k3 := fmt.Sprintf("k%d", (i*3)%13)
			evs = append(evs, event{
				id:     fmt.Sprintf("tx%d", i),
				reads:  []string{k1, k2},
				writes: []string{k3},
			})
		}
		return evs
	}
	run := func() []string {
		m := NewManager(Options{MaxSpan: 5, RelayBlocks: 3})
		var log []string
		height := uint64(0)
		for i, ev := range mkStream() {
			snap := height // always simulate against the latest formed block
			code, err := m.OnArrival(TxID(ev.id), snap, ev.reads, ev.writes)
			if err != nil {
				t.Fatal(err)
			}
			log = append(log, fmt.Sprintf("%s:%v", ev.id, code))
			if (i+1)%37 == 0 {
				ids, block, err := m.OnBlockFormation()
				if err != nil {
					t.Fatal(err)
				}
				if len(ids) > 0 {
					height = block
				}
				log = append(log, fmt.Sprintf("block%d:%v", block, ids))
			}
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("log lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replicas diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestRelayRebuildKeepsDetection(t *testing.T) {
	// With an aggressive relay period the filters are rebuilt constantly;
	// cycle detection must survive rebuilds.
	m := NewManager(Options{RelayBlocks: 1})
	arrive(t, m, "t1", 0, []string{"k1"}, []string{"k2"}, protocol.Valid)
	arrive(t, m, "t2", 0, nil, []string{"k1", "A"}, protocol.Valid)
	arrive(t, m, "t3", 0, []string{"k2"}, []string{"A", "t3only"}, protocol.Valid)
	form(t, m) // rebuild happens here
	arrive(t, m, "t4", 0, []string{"t3only"}, []string{"A"}, protocol.AbortCycle)
}

func TestReadOnlyAndWriteOnlyTransactions(t *testing.T) {
	m := NewManager(Options{})
	arrive(t, m, "blind", 0, nil, []string{"w"}, protocol.Valid)
	arrive(t, m, "reader", 0, []string{"r"}, nil, protocol.Valid)
	arrive(t, m, "noop", 0, nil, nil, protocol.Valid)
	order := form(t, m)
	if len(order) != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestManyBlindWritersAllCommit(t *testing.T) {
	// Pure c-ww load (the Create Account workload of Figure 15): everything
	// is serializable, nothing should abort.
	m := NewManager(Options{})
	for i := 0; i < 200; i++ {
		arrive(t, m, fmt.Sprintf("w%d", i), 0, nil, []string{"hotkey"}, protocol.Valid)
	}
	order := form(t, m)
	if len(order) != 200 {
		t.Errorf("committed %d of 200 blind writers", len(order))
	}
}

// TestArrivalStatsCountOnlyContractValidCalls pins the PR 4 fix: a call that
// violates the future-snapshot contract errors out before Algorithm 2 runs
// and must not count as an arrival — it previously inflated the MeanHops and
// abort-taxonomy denominators.
func TestArrivalStatsCountOnlyContractValidCalls(t *testing.T) {
	m := NewManager(Options{})
	if _, err := m.OnArrival("future", 5, []string{"a"}, nil); err == nil {
		t.Fatal("future snapshot accepted")
	}
	if got := m.Stats().Arrivals; got != 0 {
		t.Fatalf("contract-violating call counted: Arrivals = %d, want 0", got)
	}
	arrive(t, m, "ok", 0, []string{"a"}, []string{"a"}, protocol.Valid)
	if got := m.Stats().Arrivals; got != 1 {
		t.Fatalf("Arrivals = %d, want 1", got)
	}
	// An erroring call leaves no history either: FastForward still works on
	// a manager whose only activity was a rejected contract violation.
	m2 := NewManager(Options{})
	if _, err := m2.OnArrival("future", 9, nil, []string{"w"}); err == nil {
		t.Fatal("future snapshot accepted")
	}
	if err := m2.FastForward(42); err != nil {
		t.Fatalf("FastForward after contract-violating call: %v", err)
	}
}

// churnArrive feeds the manager a rotating key space: every block touches a
// fresh generation of keys, so without compaction the intern table grows
// with every block.
func churnArrive(t *testing.T, m *Manager, blocks, perBlock int) (distinct int) {
	t.Helper()
	height := uint64(0)
	n := 0
	for b := 0; b < blocks; b++ {
		for i := 0; i < perBlock; i++ {
			r := fmt.Sprintf("g%d:r%d", b, i)
			w := fmt.Sprintf("g%d:w%d", b, i)
			arrive(t, m, fmt.Sprintf("t%d", n), height, []string{r}, []string{w}, protocol.Valid)
			n++
			distinct += 2
		}
		ids, block, err := m.OnBlockFormation()
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) > 0 {
			height = block
		}
	}
	return distinct
}

// TestCompactionBoundsResidency is the acceptance criterion in miniature:
// under a churn workload spanning 60 blocks, a compacting manager holds its
// intern table and MemIndex slot count to a horizon-sized window while the
// total distinct-key universe keeps growing.
func TestCompactionBoundsResidency(t *testing.T) {
	cw, cr := NewMemIndex(), NewMemIndex()
	m := NewManager(Options{MaxSpan: 4, CompactEvery: 4, CW: cw, CR: cr})
	distinct := churnArrive(t, m, 60, 10)
	// Horizon window: MaxSpan blocks x 20 keys/block, plus up to
	// CompactEvery blocks of growth since the last compaction.
	bound := 20 * (4 + 4)
	if got := m.Keys().Len(); got > bound || got == 0 {
		t.Fatalf("resident keys = %d, want 1..%d (distinct keys seen: %d)", got, bound, distinct)
	}
	if got := cw.Slots(); got > bound {
		t.Fatalf("CW slots = %d, want <= %d", got, bound)
	}
	if got := cr.Slots(); got > bound {
		t.Fatalf("CR slots = %d, want <= %d", got, bound)
	}
	st := m.Stats()
	if st.Compactions == 0 || st.CompactedKeys == 0 {
		t.Fatalf("compactions did not run: %+v", st)
	}
	// Sanity: an identical manager without compaction really does grow.
	m0 := NewManager(Options{MaxSpan: 4})
	churnArrive(t, m0, 60, 10)
	if got := m0.Keys().Len(); got != distinct {
		t.Fatalf("append-only manager resident keys = %d, want %d", got, distinct)
	}
}

// TestCompactionDecisionEquivalence asserts compaction is decision-free: a
// dropped key has no retained entries anywhere, so every admission code and
// every formed block must be bit-identical between a compacting and an
// append-only manager over the same contended stream.
func TestCompactionDecisionEquivalence(t *testing.T) {
	run := func(compactEvery uint64) []string {
		m := NewManager(Options{MaxSpan: 4, CompactEvery: compactEvery})
		var log []string
		height := uint64(0)
		n := 0
		for b := 0; b < 40; b++ {
			for i := 0; i < 12; i++ {
				// Mix of churned generation keys and a persistent hot set so
				// real conflicts (and aborts) cross compaction boundaries.
				r := fmt.Sprintf("hot%d", (n*3)%5)
				w := fmt.Sprintf("g%d:w%d", b/3, i%4)
				if n%2 == 0 {
					r, w = w, r
				}
				code, err := m.OnArrival(TxID(fmt.Sprintf("t%d", n)), height, []string{r}, []string{w})
				if err != nil {
					t.Fatal(err)
				}
				log = append(log, fmt.Sprintf("%d:%v", n, code))
				n++
			}
			ids, block, err := m.OnBlockFormation()
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) > 0 {
				height = block
			}
			log = append(log, fmt.Sprint(ids))
		}
		return log
	}
	plain, compacted := run(0), run(4)
	for i := range plain {
		if plain[i] != compacted[i] {
			t.Fatalf("decisions diverged at step %d: %q vs %q", i, plain[i], compacted[i])
		}
	}
}
