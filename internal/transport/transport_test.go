package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/wire"
)

// echoServer answers every frame with the same type and payload.
func echoServer(t *testing.T) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0", func(c *Conn) {
		for {
			typ, p, err := c.Recv()
			if err != nil {
				return
			}
			if err := c.Send(typ, p); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConnCallRoundTrip(t *testing.T) {
	s := echoServer(t)
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	typ, p, err := c.Call(wire.MsgAck, []byte("ping"))
	if err != nil || typ != wire.MsgAck || string(p) != "ping" {
		t.Fatalf("call: %v %v %q", typ, err, p)
	}
	// Concurrent calls serialize rather than interleave responses.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("m%d", i))
			_, p, err := c.Call(wire.MsgAck, msg)
			if err != nil || string(p) != string(msg) {
				t.Errorf("call %d: %q, %v", i, p, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	errCh := make(chan error, 1)
	go func() {
		_, _, err := c.Recv() // no request sent: blocks until the server dies
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Recv returned nil after server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client hung after server close")
	}
}

func TestDoubleCloseIdempotence(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	sub := &Subscriber{Addrs: []string{s.Addr()}, Height: func() uint64 { return 0 },
		Deliver: DeliveryFunc(func(*ledger.Block) error { return nil })}
	sub.Start()
	for i := 0; i < 2; i++ {
		if err := s.Close(); err != nil {
			t.Fatalf("server close #%d: %v", i+1, err)
		}
		_ = c.Close()
		sub.Close()
	}
}

func TestDialRetryGivesUp(t *testing.T) {
	start := time.Now()
	// A port from the dynamic range with (almost certainly) no listener.
	if _, err := DialRetry("127.0.0.1:1", time.Now().Add(200*time.Millisecond)); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("DialRetry did not respect its timeout")
	}
}

// testChain seals n tiny blocks and returns them.
func testChain(t *testing.T, n int) []*ledger.Block {
	t.Helper()
	chain, err := ledger.NewChain(nil)
	if err != nil {
		t.Fatal(err)
	}
	blocks := make([]*ledger.Block, 0, n)
	for i := 0; i < n; i++ {
		tx := &protocol.Transaction{ID: protocol.TxID(fmt.Sprintf("t%d", i)), Contract: "kv", Function: "put"}
		blk, err := chain.Seal([]*protocol.Transaction{tx}, []protocol.ValidationCode{protocol.Valid})
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, blk)
	}
	return blocks
}

// TestSubscriberReconnectAndCatchUp drops the connection after every few
// delivered blocks; the subscriber must redial, resubscribe from its
// delivered height, and end up with every block exactly once, in order.
func TestSubscriberReconnectAndCatchUp(t *testing.T) {
	const total = 20
	blocks := testChain(t, total)
	const perConn = 3 // server hangs up after this many blocks
	srv, err := Listen("127.0.0.1:0", func(c *Conn) {
		typ, payload, err := c.Recv()
		if err != nil || typ != wire.MsgSubscribe {
			return
		}
		sub, err := wire.DecodeSubscribe(payload)
		if err != nil {
			return
		}
		sent := 0
		for next := sub.From + 1; next <= total && sent < perConn; next++ {
			if err := c.Send(wire.MsgBlock, wire.EncodeBlock(blocks[next-1])); err != nil {
				return
			}
			sent++
		}
		// Returning closes the connection mid-stream: the reconnect path is
		// the only way the subscriber can finish.
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var mu sync.Mutex
	var got []uint64
	height := uint64(0)
	done := make(chan struct{})
	sub := &Subscriber{
		Addrs:  []string{srv.Addr()},
		Height: func() uint64 { mu.Lock(); defer mu.Unlock(); return height },
		Deliver: DeliveryFunc(func(blk *ledger.Block) error {
			mu.Lock()
			defer mu.Unlock()
			if blk.Header.Number <= height {
				return nil // duplicate after reconnect: skip
			}
			if blk.Header.Number != height+1 {
				return fmt.Errorf("gap: got %d after %d", blk.Header.Number, height)
			}
			height = blk.Header.Number
			got = append(got, blk.Header.Number)
			if height == total {
				close(done)
			}
			return nil
		}),
		OnError: func(err error) { t.Errorf("subscriber error: %v", err) },
	}
	sub.Start()
	defer sub.Close()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		mu.Lock()
		t.Fatalf("caught up only to %d/%d: %v", height, total, got)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, n := range got {
		if n != uint64(i+1) {
			t.Fatalf("out-of-order delivery: %v", got)
		}
	}
}

// TestSubscriberSurvivesServerRestart takes the server away entirely and
// brings a new one up on the same address; the subscriber reconnects.
func TestSubscriberSurvivesServerRestart(t *testing.T) {
	blocks := testChain(t, 4)
	serveAll := func(upTo int) func(*Conn) {
		return func(c *Conn) {
			typ, payload, err := c.Recv()
			if err != nil || typ != wire.MsgSubscribe {
				return
			}
			sub, err := wire.DecodeSubscribe(payload)
			if err != nil {
				return
			}
			for next := sub.From + 1; next <= uint64(upTo); next++ {
				if err := c.Send(wire.MsgBlock, wire.EncodeBlock(blocks[next-1])); err != nil {
					return
				}
			}
			// Keep the conn open; nothing more will ever arrive.
			for {
				if _, _, err := c.Recv(); err != nil {
					return
				}
			}
		}
	}
	srv, err := Listen("127.0.0.1:0", serveAll(2))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	var mu sync.Mutex
	height := uint64(0)
	done := make(chan struct{})
	sub := &Subscriber{
		Addrs:  []string{addr},
		Height: func() uint64 { mu.Lock(); defer mu.Unlock(); return height },
		Deliver: DeliveryFunc(func(blk *ledger.Block) error {
			mu.Lock()
			defer mu.Unlock()
			if blk.Header.Number > height {
				height = blk.Header.Number
				if height == 4 {
					close(done)
				}
			}
			return nil
		}),
	}
	sub.Start()
	defer sub.Close()

	// Let the subscriber drain the first two blocks, then restart the
	// server on the same address with the full chain.
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return height == 2 })
	srv.Close()
	srv2, err := Listen(addr, serveAll(4))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		mu.Lock()
		t.Fatalf("stuck at height %d after server restart", height)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}
