// Package statedb implements the versioned key-value state of an
// execute-order-validate blockchain (paper Section 2.1) extended with the
// multi-version history and block-snapshot reads that FabricSharp's
// Algorithm 1 requires (Section 4.2).
//
// Every entry is a (key, version, value) tuple whose version is the
// (block, position) sequence number of the transaction that last wrote it.
// Unlike vanilla Fabric — which keeps only the latest version and therefore
// needs a read-write lock between simulation and commit — this store retains
// a bounded history per key, so contract simulations read a consistent
// snapshot "as of block M" while later blocks commit concurrently. Stale
// snapshots beyond the max_span horizon are pruned.
//
// # Concurrency
//
// The history is striped across fnv-hashed shards, each with its own
// read-write lock, so concurrent snapshot reads (simulations) and committer
// writes contend only when they touch the same stripe. Three lock classes
// compose the protocol:
//
//   - per-key readers (Get, GetAt, VersionCount, KeysInRange) take one
//     shard's read lock;
//   - mutators (ApplyBlock, PruneSnapshots) take applyMu plus each touched
//     shard's write lock;
//   - whole-database views (Clone, StateFingerprint, ForEachLatest, Keys)
//     take applyMu alone — it excludes every mutator, and concurrent shard
//     readers are harmless.
//
// Snapshot isolation does not depend on the locks: ApplyBlock publishes the
// new height only after every shard write of the block has landed, and
// snapshot reads filter versions by block, so a reader at any snapshot
// <= Height() can never observe a torn block (asserted by the -race stress
// test).
package statedb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"fabricsharp/internal/kvstore"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
)

// VersionedValue is one version of a key's value.
type VersionedValue struct {
	Value   []byte
	Version seqno.Seq
	Deleted bool
}

// BlockWrites carries one transaction's writes into ApplyBlock, tagged with
// the transaction's position (1-based) inside the block.
type BlockWrites struct {
	Pos    uint32
	Writes []protocol.WriteItem
}

// Options configures a state database.
type Options struct {
	// Backing, when non-nil, persists the latest version of every key (plus
	// the chain height) per block in one write batch, and is loaded on
	// construction.
	Backing *kvstore.DB
}

// numShards stripes the version history; a power of two so the shard pick is
// a mask. 32 stripes keep committer/simulator contention negligible at
// GOMAXPROCS values this repository targets.
const numShards = 32

// shard is one stripe of the version history.
type shard struct {
	mu   sync.RWMutex
	hist map[string][]VersionedValue // ascending by version
}

// shardFor hashes key onto a stripe (FNV-1a).
func shardFor(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h & (numShards - 1)
}

// DB is a multi-versioned state database. It is safe for concurrent use.
type DB struct {
	// applyMu serializes mutators against each other and against
	// whole-database views; see the package comment for the lock protocol.
	applyMu sync.Mutex
	shards  [numShards]shard
	height  atomic.Uint64 // last committed block number, published post-write
	hasAny  atomic.Bool   // whether any block has been applied
	backing *kvstore.DB
	batch   []kvstore.BatchOp // per-block persist batch, reused
}

const (
	backingStatePrefix = "s/"
	backingHeightKey   = "meta/height"
)

// New creates a state database, loading the latest state from
// opts.Backing when present.
func New(opts Options) (*DB, error) {
	db := &DB{backing: opts.Backing}
	for i := range db.shards {
		db.shards[i].hist = make(map[string][]VersionedValue)
	}
	if opts.Backing == nil {
		return db, nil
	}
	if raw, ok, err := opts.Backing.Get([]byte(backingHeightKey)); err != nil {
		return nil, err
	} else if ok {
		seq, err := seqno.FromBytes(raw)
		if err != nil {
			return nil, fmt.Errorf("statedb: corrupt height: %w", err)
		}
		db.height.Store(seq.Block)
		db.hasAny.Store(true)
	}
	it := opts.Backing.NewPrefixIterator([]byte(backingStatePrefix))
	for ; it.Valid(); it.Next() {
		key := string(it.Key()[len(backingStatePrefix):])
		raw := it.Value()
		if len(raw) < seqno.EncodedLen() {
			return nil, fmt.Errorf("statedb: corrupt record for %q", key)
		}
		ver, err := seqno.FromBytes(raw)
		if err != nil {
			return nil, err
		}
		val := append([]byte(nil), raw[seqno.EncodedLen():]...)
		sh := &db.shards[shardFor(key)]
		sh.hist[key] = []VersionedValue{{Value: val, Version: ver}}
	}
	return db, nil
}

// Height returns the number of the last committed block.
func (db *DB) Height() uint64 { return db.height.Load() }

// Get returns the latest version of key — a per-key point read. Cross-key
// consistency under concurrent commits needs GetAt/SnapshotAt.
func (db *DB) Get(key string) (VersionedValue, bool) {
	sh := &db.shards[shardFor(key)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	versions := sh.hist[key]
	if len(versions) == 0 {
		return VersionedValue{}, false
	}
	last := versions[len(versions)-1]
	if last.Deleted {
		return VersionedValue{}, false
	}
	return last, true
}

// GetAt returns the value of key as observed by the blockchain snapshot
// taken after block asOfBlock (Definition 1): the latest version whose
// block number is <= asOfBlock. Reads at snapshots at or below Height() are
// torn-free with respect to concurrently applying blocks.
func (db *DB) GetAt(key string, asOfBlock uint64) (VersionedValue, bool, error) {
	sh := &db.shards[shardFor(key)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	versions := sh.hist[key]
	// Binary search for the last version with Version.Block <= asOfBlock.
	lo, hi := 0, len(versions)
	for lo < hi {
		mid := (lo + hi) / 2
		if versions[mid].Version.Block <= asOfBlock {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		// The key did not exist at that snapshot (or its history was pruned
		// past it, which the caller bounds by max_span).
		return VersionedValue{}, false, nil
	}
	vv := versions[lo-1]
	if vv.Deleted {
		return VersionedValue{}, false, nil
	}
	return vv, true, nil
}

// Snapshot returns a read-only view of the state as of the given block.
type Snapshot struct {
	db    *DB
	block uint64
}

// SnapshotAt captures the snapshot identifier for block `block`. Reads
// through it resolve against the version history, so later commits do not
// disturb it (until pruning outruns it, which the caller bounds by
// max_span).
func (db *DB) SnapshotAt(block uint64) *Snapshot { return &Snapshot{db: db, block: block} }

// LatestSnapshot captures the snapshot after the last committed block.
func (db *DB) LatestSnapshot() *Snapshot { return db.SnapshotAt(db.Height()) }

// Block returns the snapshot's block number.
func (s *Snapshot) Block() uint64 { return s.block }

// Get reads key as of the snapshot.
func (s *Snapshot) Get(key string) (VersionedValue, bool, error) {
	return s.db.GetAt(key, s.block)
}

// ApplyBlock commits the writes of block `block`'s valid transactions, in
// order. Versions are assigned as (block, pos) per the EOV model. Blocks
// must be applied in strictly increasing order; an empty writes slice is
// fine (a block of aborted or read-only transactions).
//
// The new height is published only after every shard write (and the backing
// store's batch) has landed, so concurrent snapshot readers at or below the
// previous height never observe a partial block.
func (db *DB) ApplyBlock(block uint64, txWrites []BlockWrites) error {
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	if db.hasAny.Load() && block <= db.height.Load() {
		return fmt.Errorf("statedb: block %d applied out of order (height %d)", block, db.height.Load())
	}
	batch := db.batch[:0]
	for _, tw := range txWrites {
		ver := seqno.Commit(block, tw.Pos)
		for _, w := range tw.Writes {
			vv := VersionedValue{Version: ver, Deleted: w.Delete}
			if !w.Delete {
				vv.Value = append([]byte(nil), w.Value...)
			}
			sh := &db.shards[shardFor(w.Key)]
			sh.mu.Lock()
			sh.hist[w.Key] = append(sh.hist[w.Key], vv)
			sh.mu.Unlock()
			if db.backing != nil {
				batch = append(batch, persistOp(w.Key, vv))
			}
		}
	}
	if db.backing != nil {
		// One write batch per block: the height record rides along, so a
		// replayed WAL prefix is at worst a partially re-applied block below
		// the recorded height — identical to the pre-batching semantics.
		batch = append(batch, kvstore.BatchOp{
			Key:   []byte(backingHeightKey),
			Value: seqno.Seq{Block: block}.Bytes(),
		})
		if err := db.backing.ApplyBatch(batch); err != nil {
			db.batch = batch[:0]
			return err
		}
	}
	db.batch = batch[:0]
	db.height.Store(block)
	db.hasAny.Store(true)
	return nil
}

// persistOp encodes one latest-version record for the backing store.
func persistOp(key string, vv VersionedValue) kvstore.BatchOp {
	k := []byte(backingStatePrefix + key)
	if vv.Deleted {
		return kvstore.BatchOp{Key: k, Delete: true}
	}
	rec := vv.Version.AppendTo(nil)
	rec = append(rec, vv.Value...)
	return kvstore.BatchOp{Key: k, Value: rec}
}

// PruneSnapshots discards history no longer needed to serve snapshots at or
// after minSnapshotBlock: for each key it keeps the latest version at or
// before the horizon plus everything after it (Section 4.2's periodic
// pruning of staled snapshots).
func (db *DB) PruneSnapshots(minSnapshotBlock uint64) {
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.Lock()
		//sharp:orderinvariant per-key history truncation keyed by the unique range key; iterations are independent
		for key, versions := range sh.hist {
			// Find the last version with Block <= minSnapshotBlock.
			idx := -1
			for j, vv := range versions {
				if vv.Version.Block <= minSnapshotBlock {
					idx = j
				} else {
					break
				}
			}
			if idx <= 0 {
				continue
			}
			kept := versions[idx:]
			if len(kept) == 1 && kept[0].Deleted {
				// Latest is a tombstone and nothing newer: the key is gone.
				delete(sh.hist, key)
				continue
			}
			sh.hist[key] = append([]VersionedValue(nil), kept...)
		}
		sh.mu.Unlock()
	}
}

// VersionCount reports how many versions of key are retained (tests and
// metrics).
func (db *DB) VersionCount(key string) int {
	sh := &db.shards[shardFor(key)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.hist[key])
}

// Keys returns the number of live keys at the latest snapshot.
func (db *DB) Keys() int {
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	n := 0
	for i := range db.shards {
		for _, versions := range db.shards[i].hist {
			if len(versions) > 0 && !versions[len(versions)-1].Deleted {
				n++
			}
		}
	}
	return n
}

// ForEachLatest visits every live key with its latest version, in
// unspecified order. The callback must not mutate the database.
func (db *DB) ForEachLatest(fn func(key string, vv VersionedValue) bool) {
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	for i := range db.shards {
		//sharp:orderinvariant visitation API documented as unordered; deterministic consumers must sort (StateFingerprint does)
		for key, versions := range db.shards[i].hist {
			last := versions[len(versions)-1]
			if last.Deleted {
				continue
			}
			if !fn(key, last) {
				return
			}
		}
	}
}

// KeysInRange returns, sorted, every key in [start, end) that is live at
// the snapshot after block asOfBlock. The scan is linear in the key count —
// acceptable for the contract-visible state sizes this repository targets
// (the kvstore layer provides indexed range scans where volume matters).
func (db *DB) KeysInRange(start, end string, asOfBlock uint64) []string {
	var out []string
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		//sharp:orderinvariant matched keys are sorted once after the shard sweep, before return
		for key, versions := range sh.hist {
			if key < start || (end != "" && key >= end) {
				continue
			}
			// Last version at or before the snapshot.
			idx := -1
			for j, vv := range versions {
				if vv.Version.Block <= asOfBlock {
					idx = j
				} else {
					break
				}
			}
			if idx >= 0 && !versions[idx].Deleted {
				out = append(out, key)
			}
		}
		sh.mu.RUnlock()
	}
	sortStrings(out)
	return out
}

// Clone deep-copies the database (history and height). It backs the
// serializability verifier, which re-executes committed schedules against a
// fresh copy of the genesis state.
func (db *DB) Clone() *DB {
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	out := &DB{}
	out.height.Store(db.height.Load())
	out.hasAny.Store(db.hasAny.Load())
	for i := range db.shards {
		src := db.shards[i].hist
		dst := make(map[string][]VersionedValue, len(src))
		for k, versions := range src {
			cp := make([]VersionedValue, len(versions))
			for j, vv := range versions {
				cp[j] = VersionedValue{Version: vv.Version, Deleted: vv.Deleted, Value: append([]byte(nil), vv.Value...)}
			}
			dst[k] = cp
		}
		out.shards[i].hist = dst
	}
	return out
}

// StateFingerprint folds every live (key, value) pair into a deterministic
// digest, ignoring versions. Two databases with identical live contents
// produce identical fingerprints; the serializability property tests compare
// end states with it.
func (db *DB) StateFingerprint() string {
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	type kv struct {
		key string
		val []byte
	}
	var live []kv
	for i := range db.shards {
		//sharp:orderinvariant live set is sorted by key before hashing, washing iteration order
		for k, versions := range db.shards[i].hist {
			last := versions[len(versions)-1]
			if !last.Deleted {
				live = append(live, kv{key: k, val: last.Value})
			}
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].key < live[j].key })
	h := newFNV()
	for _, e := range live {
		h.writeString(e.key)
		h.write(e.val)
	}
	return h.sum()
}
