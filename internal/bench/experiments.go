package bench

import (
	"fmt"
	"math/rand"

	"fabricsharp/internal/network"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/sim"
	"fabricsharp/internal/workload"
)

// Params mirrors Table 2: the experiment parameter grid with the assumed
// defaults (the paper's underlining did not survive the text dump; see
// DESIGN.md).
var Params = struct {
	BlockSizes     []int
	WriteHotRatios []float64
	ReadHotRatios  []float64
	ClientDelaysMS []int
	ReadIntervalMS []int
	Defaults       struct {
		BlockSize                     int
		WriteHot, ReadHot             float64
		ClientDelayMS, ReadIntervalMS int
		RequestRate                   float64
		MaxSpan                       uint64
	}
}{
	BlockSizes:     []int{50, 100, 200, 300, 400, 500},
	WriteHotRatios: []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5},
	ReadHotRatios:  []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5},
	ClientDelaysMS: []int{0, 100, 200, 300, 400, 500},
	ReadIntervalMS: []int{0, 40, 80, 120, 160, 200},
}

func init() {
	Params.Defaults.BlockSize = 100
	Params.Defaults.WriteHot = 0.1
	Params.Defaults.ReadHot = 0.1
	Params.Defaults.ClientDelayMS = 100
	Params.Defaults.ReadIntervalMS = 40
	Params.Defaults.RequestRate = 700
	Params.Defaults.MaxSpan = 10
}

// Options tunes an experiment run.
type Options struct {
	// Quick shortens the measurement window (CI-friendly); full runs use
	// the window the absolute numbers in EXPERIMENTS.md were taken with.
	Quick bool
	// Seed for all randomness. Every random draw in the harness flows from
	// it through explicit *rand.Rand instances built by Rng — the global
	// math/rand source is never seeded or read, so concurrent harness use
	// (parallel CI shards, benchmarks running beside experiments) cannot
	// perturb a run's stream.
	Seed int64
}

// Rng is the harness's single *rand.Rand construction point. stream is the
// fully derived seed for one generator — call sites mix o.Seed with a
// per-experiment constant themselves (e.g. o.Rng(o.Seed*1000+7)), which is
// what keeps every historical derivation, and therefore every recorded
// result, byte-stable. The sequence depends on nothing but the argument:
// no goroutine scheduling, no process-global source.
func (o Options) Rng(stream int64) *rand.Rand {
	return rand.New(rand.NewSource(stream))
}

func (o Options) duration() sim.Time {
	if o.Quick {
		return 5 * sim.Second
	}
	return 20 * sim.Second
}

// msmallbankConfig assembles the modified-Smallbank configuration of
// Figures 10-14 with the given overrides.
func msmallbankConfig(o Options, system sched.System, readHot, writeHot float64,
	blockSize int, clientDelay, readInterval sim.Time) network.Config {
	rng := o.Rng(o.Seed*1000 + 7)
	return network.Config{
		System:       system,
		Workload:     mustGen(workload.NewModifiedSmallbank(rng, 0, readHot, writeHot)),
		Seed:         o.Seed,
		Duration:     o.duration(),
		RequestRate:  Params.Defaults.RequestRate,
		BlockSize:    blockSize,
		ClientDelay:  clientDelay,
		ReadInterval: readInterval,
		MaxSpan:      Params.Defaults.MaxSpan,
	}
}

// defaultClientDelay and defaultReadInterval render Table 2's defaults as
// virtual durations.
func defaultClientDelay() sim.Time {
	return sim.Time(Params.Defaults.ClientDelayMS) * sim.Millisecond
}

func defaultReadInterval() sim.Time {
	return sim.Time(Params.Defaults.ReadIntervalMS) * sim.Millisecond
}

// mustGen unwraps a validated workload constructor; the harness's fixed
// parameters are known-good, so a failure is a programming error.
func mustGen(g workload.Generator, err error) workload.Generator {
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return g
}

func run(cfg network.Config) *network.Result {
	res, err := network.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return res
}

// systemLabel renders the paper's names.
func systemLabel(s sched.System) string {
	switch s {
	case sched.SystemSharp:
		return "Fabric#"
	case sched.SystemFabricPP:
		return "Fabric++"
	case sched.SystemFabric:
		return "Fabric"
	case sched.SystemFoccS:
		return "Focc-s"
	case sched.SystemFoccL:
		return "Focc-l"
	}
	return string(s)
}

// Figure1 reproduces the motivation experiment: vanilla Fabric's raw
// vs effective throughput under no-op transactions and single-modification
// transactions of growing zipfian skew.
func Figure1(o Options) *Table {
	t := &Table{
		Title:   "Figure 1: Fabric raw vs effective throughput (no-op & single-mod, zipfian)",
		Columns: []string{"workload", "raw tps", "effective tps", "aborted tps"},
		Comment: "raw stays flat at the validation capacity; effective drops with skew",
	}
	mk := func(w workload.Generator) network.Config {
		return network.Config{
			System:      sched.SystemFabric,
			Workload:    w,
			Seed:        o.Seed,
			Duration:    o.duration(),
			RequestRate: Params.Defaults.RequestRate,
			BlockSize:   Params.Defaults.BlockSize,
			MaxSpan:     Params.Defaults.MaxSpan,
		}
	}
	res := run(mk(workload.NoOp{}))
	t.AddRow("no-op", res.RawTPS, res.EffectiveTPS, res.RawTPS-res.EffectiveTPS)
	for _, theta := range []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2} {
		rng := o.Rng(o.Seed*100 + int64(theta*10))
		res := run(mk(workload.NewSingleMod(rng, 10000, theta)))
		t.AddRow(fmt.Sprintf("θ=%.1f", theta), res.RawTPS, res.EffectiveTPS, res.RawTPS-res.EffectiveTPS)
	}
	return t
}

// Figure10 sweeps the block size for all five systems: throughput and mean
// end-to-end latency.
func Figure10(o Options) []*Table {
	tput := &Table{
		Title:   "Figure 10 (left): effective throughput vs block size",
		Columns: []string{"block size"},
	}
	lat := &Table{
		Title:   "Figure 10 (right): mean end-to-end latency (s) vs block size",
		Columns: []string{"block size"},
	}
	for _, s := range sched.Systems() {
		tput.Columns = append(tput.Columns, systemLabel(s))
		lat.Columns = append(lat.Columns, systemLabel(s))
	}
	for _, bs := range Params.BlockSizes {
		tputRow := []interface{}{bs}
		latRow := []interface{}{bs}
		for _, s := range sched.Systems() {
			res := run(msmallbankConfig(o, s, Params.Defaults.ReadHot, Params.Defaults.WriteHot, bs, defaultClientDelay(), defaultReadInterval()))
			tputRow = append(tputRow, res.EffectiveTPS)
			latRow = append(latRow, fmt.Sprintf("%.2f", res.Latency.Mean()))
		}
		tput.AddRow(tputRow...)
		lat.AddRow(latRow...)
	}
	return []*Table{tput, lat}
}

// Figure11 sweeps the write-hot ratio: throughput plus the reordering
// latency, with Sharp's real measured breakdown (compute order / restore ww
// / persist / prune).
func Figure11(o Options) []*Table {
	tput := &Table{
		Title:   "Figure 11 (left): effective throughput vs write hot ratio",
		Columns: []string{"write hot %"},
	}
	for _, s := range sched.Systems() {
		tput.Columns = append(tput.Columns, systemLabel(s))
	}
	reorder := &Table{
		Title: "Figure 11 (right): reorder latency per block formation (ms, measured)",
		Columns: []string{"write hot %", "Fabric++", "Focc-l", "Fabric#",
			"#: compute order", "#: restore ww", "#: persist", "#: prune"},
		Comment: "Fabric++/Focc-l/Fabric# columns are wall-clock means of the real implementations",
	}
	for _, wh := range Params.WriteHotRatios {
		row := []interface{}{fmt.Sprintf("%.0f", wh*100)}
		var ppMS, flMS, shMS float64
		var breakdown [4]float64
		for _, s := range sched.Systems() {
			res := run(msmallbankConfig(o, s, Params.Defaults.ReadHot, wh, Params.Defaults.BlockSize, defaultClientDelay(), defaultReadInterval()))
			row = append(row, res.EffectiveTPS)
			switch s {
			case sched.SystemFabricPP:
				ppMS = res.SchedulerTiming.MeanFormationMS()
			case sched.SystemFoccL:
				flMS = res.SchedulerTiming.MeanFormationMS()
			case sched.SystemSharp:
				shMS = res.SchedulerTiming.MeanFormationMS()
				if st := res.SharpStats; st != nil && st.Formations > 0 {
					f := float64(st.Formations) * 1e6
					breakdown = [4]float64{
						float64(st.ComputeOrderNS) / f,
						float64(st.RestoreWWNS) / f,
						float64(st.PersistNS) / f,
						float64(st.PruneNS) / f,
					}
				}
			}
		}
		tput.AddRow(row...)
		reorder.AddRow(fmt.Sprintf("%.0f", wh*100),
			fmt.Sprintf("%.3f", ppMS), fmt.Sprintf("%.3f", flMS), fmt.Sprintf("%.3f", shMS),
			fmt.Sprintf("%.3f", breakdown[0]), fmt.Sprintf("%.3f", breakdown[1]),
			fmt.Sprintf("%.3f", breakdown[2]), fmt.Sprintf("%.3f", breakdown[3]))
	}
	return []*Table{tput, reorder}
}

// Figure12 sweeps the read-hot ratio: throughput plus the per-arrival
// processing breakdown (identify conflict / update graph / index record).
func Figure12(o Options) []*Table {
	tput := &Table{
		Title:   "Figure 12 (left): effective throughput vs read hot ratio",
		Columns: []string{"read hot %"},
	}
	for _, s := range sched.Systems() {
		tput.Columns = append(tput.Columns, systemLabel(s))
	}
	arrival := &Table{
		Title: "Figure 12 (right): transaction processing latency per arrival (µs, measured)",
		Columns: []string{"read hot %", "Fabric++", "Focc-s", "Fabric#",
			"#: identify", "#: update graph", "#: index"},
	}
	for _, rh := range Params.ReadHotRatios {
		row := []interface{}{fmt.Sprintf("%.0f", rh*100)}
		var ppUS, fsUS, shUS float64
		var breakdown [3]float64
		for _, s := range sched.Systems() {
			res := run(msmallbankConfig(o, s, rh, Params.Defaults.WriteHot, Params.Defaults.BlockSize, defaultClientDelay(), defaultReadInterval()))
			row = append(row, res.EffectiveTPS)
			switch s {
			case sched.SystemFabricPP:
				ppUS = res.SchedulerTiming.MeanArrivalUS()
			case sched.SystemFoccS:
				fsUS = res.SchedulerTiming.MeanArrivalUS()
			case sched.SystemSharp:
				shUS = res.SchedulerTiming.MeanArrivalUS()
				if st := res.SharpStats; st != nil && st.Arrivals > 0 {
					a := float64(st.Arrivals) * 1e3
					breakdown = [3]float64{
						float64(st.IdentifyConflictNS) / a,
						float64(st.UpdateGraphNS) / a,
						float64(st.IndexRecordNS) / a,
					}
				}
			}
		}
		tput.AddRow(row...)
		arrival.AddRow(fmt.Sprintf("%.0f", rh*100),
			fmt.Sprintf("%.2f", ppUS), fmt.Sprintf("%.2f", fsUS), fmt.Sprintf("%.2f", shUS),
			fmt.Sprintf("%.2f", breakdown[0]), fmt.Sprintf("%.2f", breakdown[1]), fmt.Sprintf("%.2f", breakdown[2]))
	}
	return []*Table{tput, arrival}
}

// Figure13 sweeps the client delay: throughput plus Sharp's reachability
// hops and transaction block span.
func Figure13(o Options) []*Table {
	tput := &Table{
		Title:   "Figure 13 (left): effective throughput vs client delay",
		Columns: []string{"client delay ms"},
	}
	for _, s := range sched.Systems() {
		tput.Columns = append(tput.Columns, systemLabel(s))
	}
	stats := &Table{
		Title:   "Figure 13 (right): Fabric# statistics",
		Columns: []string{"client delay ms", "mean hops", "mean txn blk span"},
	}
	for _, ms := range Params.ClientDelaysMS {
		delay := sim.Time(ms) * sim.Millisecond
		row := []interface{}{ms}
		for _, s := range sched.Systems() {
			res := run(msmallbankConfig(o, s, Params.Defaults.ReadHot, Params.Defaults.WriteHot, Params.Defaults.BlockSize, delay, defaultReadInterval()))
			row = append(row, res.EffectiveTPS)
			if s == sched.SystemSharp && res.SharpStats != nil {
				stats.AddRow(ms, fmt.Sprintf("%.2f", res.SharpStats.MeanHops()),
					fmt.Sprintf("%.2f", res.SharpStats.MeanSpan()))
			}
		}
		tput.AddRow(row...)
	}
	return []*Table{tput, stats}
}

// Figure14 sweeps the read interval: throughput plus the abort-rate
// breakdown for Focc-s, Fabric++ and Fabric# (share of submitted
// transactions).
func Figure14(o Options) []*Table {
	tput := &Table{
		Title:   "Figure 14 (left): effective throughput vs read interval",
		Columns: []string{"read interval ms"},
	}
	for _, s := range sched.Systems() {
		tput.Columns = append(tput.Columns, systemLabel(s))
	}
	aborts := &Table{
		Title: "Figure 14 (right): abort rate breakdown (% of submitted)",
		Columns: []string{"read interval ms",
			"focc-s c-ww", "focc-s 2rw", "++ sim abort", "++ other", "# cycle", "# other"},
	}
	for _, ms := range Params.ReadIntervalMS {
		interval := sim.Time(ms) * sim.Millisecond
		row := []interface{}{ms}
		var abortRow [6]float64
		for _, s := range sched.Systems() {
			res := run(msmallbankConfig(o, s, Params.Defaults.ReadHot, Params.Defaults.WriteHot, Params.Defaults.BlockSize, defaultClientDelay(), interval))
			row = append(row, res.EffectiveTPS)
			pct := func(n uint64) float64 {
				if res.Submitted == 0 {
					return 0
				}
				return 100 * float64(n) / float64(res.Submitted)
			}
			switch s {
			case sched.SystemFoccS:
				abortRow[0] = pct(res.EarlyAborts[protocol.AbortConcurrentWW])
				abortRow[1] = pct(res.EarlyAborts[protocol.AbortDangerousStructure])
			case sched.SystemFabricPP:
				abortRow[2] = pct(res.EarlyAborts[protocol.AbortSimulation])
				abortRow[3] = pct(res.EarlyAborts[protocol.AbortReorderCycle] + res.LateAborts[protocol.MVCCConflict])
			case sched.SystemSharp:
				abortRow[4] = pct(res.EarlyAborts[protocol.AbortCycle])
				abortRow[5] = pct(res.EarlyAborts[protocol.AbortStaleSnapshot])
			}
		}
		tput.AddRow(row...)
		aborts.AddRow(ms,
			fmt.Sprintf("%.1f", abortRow[0]), fmt.Sprintf("%.1f", abortRow[1]),
			fmt.Sprintf("%.1f", abortRow[2]), fmt.Sprintf("%.1f", abortRow[3]),
			fmt.Sprintf("%.1f", abortRow[4]), fmt.Sprintf("%.1f", abortRow[5]))
	}
	return []*Table{tput, aborts}
}

// Figure15 compares FastFabric and FastFabricSharp on the contention-free
// Create Account workload and the mixed Smallbank workload across zipfian
// skews, reporting the anti-rw-rescued share of FastFabricSharp's commits.
func Figure15(o Options) *Table {
	t := &Table{
		Title: "Figure 15: FastFabric vs FastFabric# effective throughput",
		Columns: []string{"workload", "FastFabric", "FastFabric#",
			"#: anti-rw rescued tps", "gain %"},
	}
	mk := func(system sched.System, w workload.Generator) network.Config {
		return network.Config{
			System:      system,
			Profile:     network.ProfileFastFabric,
			Workload:    w,
			Seed:        o.Seed,
			Duration:    o.duration(),
			RequestRate: 3500,
			BlockSize:   Params.Defaults.BlockSize,
			// FastFabric seals ~31 blocks/s vs the Fabric profile's ~7, so
			// the same wall-clock snapshot horizon needs a proportionally
			// larger block span (the paper fixed max_span=10 at Fabric's
			// block rate).
			MaxSpan: 40,
		}
	}
	runPair := func(label string, mkw func() workload.Generator) {
		base := run(mk(sched.SystemFabric, mkw()))
		sharp := run(mk(sched.SystemSharp, mkw()))
		rescuedTPS := float64(sharp.RescuedAntiRW) / sharp.Config.Duration.Seconds()
		gain := 0.0
		if base.EffectiveTPS > 0 {
			gain = 100 * (sharp.EffectiveTPS - base.EffectiveTPS) / base.EffectiveTPS
		}
		t.AddRow(label, base.EffectiveTPS, sharp.EffectiveTPS,
			fmt.Sprintf("%.1f", rescuedTPS), fmt.Sprintf("%+.0f", gain))
	}
	runPair("create-account", func() workload.Generator { return &workload.CreateAccount{} })
	for _, theta := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		theta := theta
		runPair(fmt.Sprintf("mixed θ=%.2f", theta), func() workload.Generator {
			rng := o.Rng(o.Seed*10 + int64(theta*100))
			return mustGen(workload.NewMixedSmallbank(rng, 10000, theta))
		})
	}
	return t
}

// All runs every exhibit in paper order.
func All(o Options) []*Table {
	var out []*Table
	out = append(out, Figure1(o))
	out = append(out, Table1())
	out = append(out, Figure10(o)...)
	out = append(out, Figure11(o)...)
	out = append(out, Figure12(o)...)
	out = append(out, Figure13(o)...)
	out = append(out, Figure14(o)...)
	out = append(out, Figure15(o))
	out = append(out, ReorderCost())
	return out
}
