// Package metrics provides the small measurement toolkit the experiment
// harness reports with: latency histograms with percentiles, throughput
// accounting, abort-taxonomy tallies, and the concurrency-safe counters and
// gauges the commit pipeline instruments its stages with.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fabricsharp/internal/protocol"
)

// Stopwatch measures elapsed wall time for stage instrumentation. It lives
// here — outside the deterministic scope — so consensus-critical packages
// can time their stages without touching the wall clock directly: elapsed
// time feeds operator-facing stats only, never sealed output, and sharpvet's
// wallclock analyzer enforces that the raw clock stays behind this seam.
type Stopwatch struct{ t0 time.Time }

// StartWatch starts a stopwatch at the current instant.
func StartWatch() Stopwatch { return Stopwatch{t0: time.Now()} }

// ElapsedNS returns the nanoseconds elapsed since StartWatch.
func (s Stopwatch) ElapsedNS() int64 { return time.Since(s.t0).Nanoseconds() }

// Counter is a monotonically increasing, concurrency-safe event counter.
// The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc bumps the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add bumps the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a concurrency-safe instantaneous level (queue depths, in-flight
// work) that also tracks its high-water mark. The zero value is ready to use.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Add moves the gauge by delta and returns the new level.
func (g *Gauge) Add(delta int64) int64 {
	nv := g.v.Add(delta)
	for {
		m := g.max.Load()
		if nv <= m || g.max.CompareAndSwap(m, nv) {
			return nv
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Set pins the gauge to an absolute level (still tracking the high-water
// mark) — for externally-computed levels like a Raft term or replication
// lag, where deltas are not the natural unit.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Max returns the highest level ever observed.
func (g *Gauge) Max() int64 { return g.max.Load() }

// ConsensusMetrics instruments the fault-tolerance surface of a clustered
// ordering node: how often leadership moves, how far replication trails the
// log, and how often clients are redirected. All fields are concurrency-safe
// and the zero value is ready to use.
type ConsensusMetrics struct {
	// Elections counts elections this replica started (candidate
	// transitions, including re-elections after split votes).
	Elections Counter
	// Failovers counts observed leader-identity changes — a stable cluster
	// holds this at one (the initial election).
	Failovers Counter
	// Term tracks the replica's current Raft term.
	Term Gauge
	// ReplicationLag tracks, on the leader, how many log entries trail the
	// commit index (lastIndex − commitIndex); its Max is the worst backlog.
	ReplicationLag Gauge
	// SubmitRedirects counts client submissions answered with a NotLeader
	// redirect (client side: redirects followed).
	SubmitRedirects Counter
}

// maxRetainedSamples bounds a SyncHistogram's memory: beyond it, new
// samples reservoir-replace retained ones, keeping a uniform subsample.
const maxRetainedSamples = 4096

// SyncHistogram is a histogram safe for concurrent recording and for
// always-on collectors (the commit pipeline's per-peer latency stats): the
// total count and mean stay exact forever, while retained samples — and
// thus percentiles — are a bounded uniform reservoir, so a long-running
// network cannot grow it without bound. The zero value is ready to use.
type SyncHistogram struct {
	mu  sync.Mutex
	h   Histogram
	n   int     // total samples recorded
	sum float64 // exact running sum
	rng uint64  // xorshift state for reservoir replacement
}

// Add records one sample.
func (h *SyncHistogram) Add(v float64) {
	h.mu.Lock()
	h.n++
	h.sum += v
	if len(h.h.samples) < maxRetainedSamples {
		h.h.Add(v)
	} else {
		// Reservoir sampling: replace a random retained slot with
		// probability maxRetainedSamples/n.
		h.rng = h.rng*6364136223846793005 + 1442695040888963407
		if j := int(h.rng % uint64(h.n)); j < maxRetainedSamples {
			h.h.samples[j] = v
			h.h.sorted = false
		}
	}
	h.mu.Unlock()
}

// Snapshot copies the retained samples into a plain Histogram for
// percentile reporting (exact below maxRetainedSamples, a uniform
// subsample beyond).
func (h *SyncHistogram) Snapshot() Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Histogram{samples: append([]float64(nil), h.h.samples...)}
}

// N returns the total number of samples recorded (exact).
func (h *SyncHistogram) N() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the arithmetic mean over all recorded samples (exact),
// 0 if empty.
func (h *SyncHistogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantiles returns the q-quantiles (0 < q <= 1, e.g. 0.5, 0.99, 0.999)
// over one snapshot of the retained samples: a single copy + sort answers
// every requested quantile, instead of re-snapshotting per percentile.
// Exact below the reservoir bound, a uniform subsample beyond it.
func (h *SyncHistogram) Quantiles(qs ...float64) []float64 {
	snap := h.Snapshot()
	return snap.Quantiles(qs...)
}

// Histogram collects float64 samples (seconds, milliseconds — caller's
// choice) and answers summary statistics. The zero value is ready to use.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// N returns the sample count.
func (h *Histogram) N() int { return len(h.samples) }

// Mean returns the arithmetic mean, 0 if empty.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100), 0 if empty.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	idx := int(p/100*float64(len(h.samples))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Quantiles answers several quantiles (0 < q <= 1) with one sort: the
// samples are ordered once and every q indexes the sorted slice directly.
// Each result matches Percentile(100*q) exactly.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(h.samples) == 0 {
		return out
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	for i, q := range qs {
		idx := int(q*float64(len(h.samples))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(h.samples) {
			idx = len(h.samples) - 1
		}
		out[i] = h.samples[idx]
	}
	return out
}

// P50 is the median.
func (h *Histogram) P50() float64 { return h.Percentile(50) }

// P95 is the 95th percentile.
func (h *Histogram) P95() float64 { return h.Percentile(95) }

// P99 is the 99th percentile.
func (h *Histogram) P99() float64 { return h.Percentile(99) }

// Max returns the largest sample.
func (h *Histogram) Max() float64 { return h.Percentile(100) }

// AbortTally counts outcomes by validation code.
type AbortTally map[protocol.ValidationCode]uint64

// Inc bumps a code.
func (t AbortTally) Inc(c protocol.ValidationCode) { t[c]++ }

// Total sums every non-committed count (Valid and Rescued are not aborts).
func (t AbortTally) Total() uint64 {
	var sum uint64
	for c, n := range t {
		if !c.Committed() {
			sum += n
		}
	}
	return sum
}

// String renders the tally deterministically, busiest codes first.
func (t AbortTally) String() string {
	type kv struct {
		c protocol.ValidationCode
		n uint64
	}
	var items []kv
	for c, n := range t {
		if n > 0 {
			items = append(items, kv{c, n})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].n != items[j].n {
			return items[i].n > items[j].n
		}
		return items[i].c < items[j].c
	})
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = fmt.Sprintf("%s=%d", it.c, it.n)
	}
	return strings.Join(parts, " ")
}
