package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"fabricsharp/internal/protocol"
	"fabricsharp/internal/sched"
)

func newNet(t *testing.T, opts Options) *Network {
	t.Helper()
	if opts.BlockSize == 0 {
		opts.BlockSize = 5
	}
	if opts.BlockTimeout == 0 {
		opts.BlockTimeout = 50 * time.Millisecond
	}
	n, err := NewNetwork(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func TestEndToEndPutGet(t *testing.T) {
	n := newNet(t, Options{System: sched.SystemSharp})
	client, err := n.NewClient("alice")
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.MustSubmit("kv", "put", "greeting", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if res.Block == 0 {
		t.Error("committed transaction has no block")
	}
	val, err := client.Query("kv", "get", "greeting")
	if err != nil {
		t.Fatal(err)
	}
	if string(val) != "hello" {
		t.Errorf("query = %q", val)
	}
}

func TestAllSystemsEndToEnd(t *testing.T) {
	for _, system := range sched.Systems() {
		system := system
		t.Run(string(system), func(t *testing.T) {
			n := newNet(t, Options{System: system})
			client, err := n.NewClient("c")
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 12; i++ {
				if _, err := client.MustSubmit("kv", "put", fmt.Sprintf("k%d", i), "v"); err != nil {
					t.Fatal(err)
				}
			}
			// Every peer converged to the same state and chain.
			tip := n.Peer(0).Chain().TipHash()
			fp := n.Peer(0).State().StateFingerprint()
			for i := 1; i < 4; i++ {
				if !bytes.Equal(n.Peer(i).Chain().TipHash(), tip) {
					t.Errorf("peer %d chain diverged", i)
				}
				if n.Peer(i).State().StateFingerprint() != fp {
					t.Errorf("peer %d state diverged", i)
				}
				if err := n.Peer(i).Chain().Verify(); err != nil {
					t.Errorf("peer %d chain: %v", i, err)
				}
			}
		})
	}
}

func TestOrdererAgreement(t *testing.T) {
	// Section 3.5: replicated orderers running the deterministic reordering
	// over the same consensus stream produce identical ledgers.
	n := newNet(t, Options{System: sched.SystemSharp, Orderers: 3})
	client, _ := n.NewClient("c")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				client.Submit("kv", "rmw", fmt.Sprintf("acct%d", i%5), "1")
			}
		}(w)
	}
	wg.Wait()
	if !n.WaitIdle(5 * time.Second) {
		t.Fatal("network did not go idle")
	}
	// Lead and follower orderers sealed identical chains.
	tip := n.OrdererChain(0).TipHash()
	if tip == nil {
		t.Fatal("no blocks sealed")
	}
	for i := 1; i < n.Orderers(); i++ {
		// Followers may lag by the in-flight tail; compare the common
		// prefix block by block.
		lead, follower := n.OrdererChain(0), n.OrdererChain(i)
		common := lead.Len()
		if follower.Len() < common {
			common = follower.Len()
		}
		if common == 0 {
			t.Fatalf("orderer %d sealed no blocks", i)
		}
		for b := uint64(1); b <= uint64(common); b++ {
			lb, _ := lead.Get(b)
			fb, _ := follower.Get(b)
			if !bytes.Equal(lb.Hash(), fb.Hash()) {
				t.Fatalf("orderer %d diverged at block %d", i, b)
			}
		}
	}
}

func TestSmallbankTransfersConserveMoney(t *testing.T) {
	n := newNet(t, Options{System: sched.SystemSharp})
	client, _ := n.NewClient("bank")
	for _, id := range []string{"a", "b", "c"} {
		if _, err := client.MustSubmit("smallbank", "create_account", id, "100", "100"); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	pairs := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				client.Submit("smallbank", "send_payment", pairs[w][0], pairs[w][1], "1")
			}
		}(w)
	}
	wg.Wait()
	n.WaitIdle(5 * time.Second)

	total := 0
	for _, id := range []string{"a", "b", "c"} {
		raw, err := client.Query("smallbank", "query", id)
		if err != nil {
			t.Fatal(err)
		}
		var acct struct{ Checking, Savings int }
		if err := json.Unmarshal(raw, &acct); err != nil {
			t.Fatalf("query payload %q: %v", raw, err)
		}
		total += acct.Checking + acct.Savings
	}
	if total != 600 {
		t.Errorf("money not conserved: total = %d want 600", total)
	}
}

func TestConflictingTransactionsAbortButSerialize(t *testing.T) {
	// Hammer one hot key with read-modify-writes from many goroutines: some
	// abort (cycles), but the final counter equals the number of COMMITTED
	// increments — serializability, observably.
	n := newNet(t, Options{System: sched.SystemSharp, BlockSize: 8})
	client, _ := n.NewClient("c")
	var committed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := client.Submit("kv", "rmw", "hot", "1")
				if err == nil && res.Committed() {
					mu.Lock()
					committed++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	n.WaitIdle(5 * time.Second)
	raw, err := client.Query("kv", "get", "hot")
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != fmt.Sprint(committed) {
		t.Errorf("counter = %s, committed increments = %d", raw, committed)
	}
	if committed == 0 {
		t.Error("everything aborted")
	}
}

func TestDuplicateTxRejected(t *testing.T) {
	n := newNet(t, Options{System: sched.SystemFabric})
	client, _ := n.NewClient("c")
	id, ch, err := client.SubmitAsync("kv", "put", "x", "1")
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if !res.Committed() {
		t.Fatalf("first submission aborted: %v", res.Code)
	}
	_ = id
}

func TestUnknownContractFailsAtEndorsement(t *testing.T) {
	n := newNet(t, Options{})
	client, _ := n.NewClient("c")
	if _, err := client.Submit("nonexistent", "fn"); err == nil {
		t.Error("unknown contract accepted")
	}
	if _, err := client.Query("nonexistent", "fn"); err == nil {
		t.Error("unknown contract query accepted")
	}
}

func TestFailingInvocationRejected(t *testing.T) {
	n := newNet(t, Options{})
	client, _ := n.NewClient("c")
	// Overdraft fails during simulation: no endorsement, submit errors.
	if _, err := client.MustSubmit("smallbank", "create_account", "x", "10", "0"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Submit("smallbank", "query", "ghost"); err == nil {
		t.Error("simulation failure not surfaced")
	}
}

func TestSupplyChainScenario(t *testing.T) {
	n := newNet(t, Options{System: sched.SystemSharp})
	client, _ := n.NewClient("logistics")
	steps := [][]string{
		{"register", "crate-1", "acme", "shenzhen"},
		{"ship", "crate-1", "singapore"},
		{"inspect", "crate-1", "ok"},
		{"transfer", "crate-1", "globex"},
	}
	for _, s := range steps {
		if _, err := client.MustSubmit("supplychain", s[0], s[1:]...); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}
	raw, err := client.Query("supplychain", "track", "crate-1")
	if err != nil {
		t.Fatal(err)
	}
	var item struct{ Owner, Location string }
	if err := json.Unmarshal(raw, &item); err != nil {
		t.Fatal(err)
	}
	if item.Owner != "globex" || item.Location != "singapore" {
		t.Errorf("item = %+v", item)
	}
}

func TestVanillaFabricAbortsStaleReads(t *testing.T) {
	// With vanilla Fabric, concurrent rmw's on one key mostly MVCC-abort;
	// the aborts must be reported as MVCCConflict (not silently dropped).
	n := newNet(t, Options{System: sched.SystemFabric, BlockSize: 10})
	client, _ := n.NewClient("c")
	var wg sync.WaitGroup
	var aborted int64
	var mu sync.Mutex
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				res, err := client.Submit("kv", "rmw", "contended", "1")
				if err == nil && res.Code == protocol.MVCCConflict {
					mu.Lock()
					aborted++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if aborted == 0 {
		t.Error("no MVCC aborts under heavy contention — suspicious")
	}
}

func TestRaftConsensusBackend(t *testing.T) {
	n := newNet(t, Options{System: sched.SystemSharp, Consensus: "raft", RaftNodes: 3})
	client, err := n.NewClient("raft-client")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := client.MustSubmit("kv", "put", fmt.Sprintf("r%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(n.Peer(0).Chain().TipHash(), n.Peer(1).Chain().TipHash()) {
		t.Error("peers diverged under raft ordering")
	}
	if _, err := NewNetwork(Options{Consensus: "carrier-pigeon"}); err == nil {
		t.Error("unknown consensus backend accepted")
	}
}
