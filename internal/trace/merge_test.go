package trace

import (
	"math"
	"strings"
	"testing"
)

func ms(n float64) int64 { return int64(n * 1e6) }

func TestMergeJoinsByTxID(t *testing.T) {
	dumps := []Dump{
		{Node: "ord0", Role: "orderer", Events: []Event{
			{TxID: "a", Stage: StageSubmit, WallNS: ms(1)},
			{TxID: "a", Stage: StageOrder, WallNS: ms(2)},
			{TxID: "a", Stage: StageSeal, Block: 1, WallNS: ms(3)},
			{TxID: "b", Stage: StageSubmit, WallNS: ms(5)},
		}},
		// A follower replica records the same single-origin stages slightly
		// later; the merge must keep the earliest.
		{Node: "ord1", Role: "orderer", Events: []Event{
			{TxID: "a", Stage: StageOrder, WallNS: ms(2.5)},
			{TxID: "a", Stage: StageSeal, Block: 1, WallNS: ms(3.5)},
		}},
		// Two peers: replicated stages keep the latest (slowest peer).
		{Node: "peer0", Role: "peer", Events: []Event{
			{TxID: "a", Stage: StageDeliver, Block: 1, WallNS: ms(4)},
			{TxID: "a", Stage: StageCommit, Block: 1, WallNS: ms(6)},
		}},
		{Node: "peer1", Role: "peer", Events: []Event{
			{TxID: "a", Stage: StageDeliver, Block: 1, WallNS: ms(4.5)},
			{TxID: "a", Stage: StageCommit, Block: 1, WallNS: ms(7)},
		}},
	}
	tls := Merge(dumps)
	if len(tls) != 2 {
		t.Fatalf("got %d timelines, want 2 (a, b)", len(tls))
	}
	a := tls[0]
	if a.TxID != "a" {
		t.Fatalf("timelines not sorted: first is %q", a.TxID)
	}
	for _, tc := range []struct {
		stage Stage
		want  int64
	}{
		{StageSubmit, ms(1)},
		{StageOrder, ms(2)},     // earliest across replicas
		{StageSeal, ms(3)},      // earliest
		{StageDeliver, ms(4.5)}, // latest across peers
		{StageCommit, ms(7)},    // latest
	} {
		if got := a.Stamp[tc.stage]; got != tc.want {
			t.Errorf("a.%v = %d, want %d", tc.stage, got, tc.want)
		}
	}
	if a.Has(StageRaftCommit) {
		t.Error("a has a raft-commit stamp but none was recorded")
	}
}

func TestSummarizeGapsAndTotal(t *testing.T) {
	// Ten transactions: submit at 1ms, order at 2ms, seal at 3ms, commit
	// at 3+i ms — total latency i+2 ms for i in [0,10). (A zero stamp
	// means "stage missing", so the schedule starts at 1ms.)
	var dumps []Dump
	for i := 0; i < 10; i++ {
		id := string(rune('a' + i))
		dumps = append(dumps, Dump{Node: "n", Events: []Event{
			{TxID: id, Stage: StageSubmit, WallNS: ms(1)},
			{TxID: id, Stage: StageOrder, WallNS: ms(2)},
			{TxID: id, Stage: StageSeal, WallNS: ms(3)},
			{TxID: id, Stage: StageCommit, WallNS: ms(float64(3 + i))},
		}})
	}
	sum := Summarize(Merge(dumps))
	if sum.Timelines != 10 {
		t.Fatalf("Timelines = %d, want 10", sum.Timelines)
	}
	wantGaps := [][2]Stage{
		{StageSubmit, StageOrder},
		{StageOrder, StageSeal},
		{StageSeal, StageCommit},
	}
	if len(sum.Gaps) != len(wantGaps) {
		t.Fatalf("got %d gaps (%v), want %d", len(sum.Gaps), sum.Gaps, len(wantGaps))
	}
	for i, g := range sum.Gaps {
		if g.From != wantGaps[i][0] || g.To != wantGaps[i][1] {
			t.Errorf("gap %d = %v→%v, want %v→%v", i, g.From, g.To, wantGaps[i][0], wantGaps[i][1])
		}
	}
	// submit→order is exactly 1ms for every tx.
	if g := sum.Gaps[0]; g.N != 10 || g.P50 != 1 || g.P999 != 1 {
		t.Errorf("submit→order = %+v, want N=10 all-1ms", g.Quantiles)
	}
	// Totals are 2..11 ms; p50 of 10 sorted samples (index 4) = 6, max 11.
	if sum.Total.N != 10 || sum.Total.P50 != 6 || sum.Total.Max != 11 {
		t.Errorf("Total = %+v, want N=10 P50=6 Max=11", sum.Total)
	}
}

func TestSummarizeClampsClockSkew(t *testing.T) {
	dumps := []Dump{{Node: "n", Events: []Event{
		{TxID: "x", Stage: StageSubmit, WallNS: ms(5)},
		{TxID: "x", Stage: StageCommit, WallNS: ms(3)}, // skewed peer clock
	}}}
	sum := Summarize(Merge(dumps))
	if sum.Total.N != 1 || sum.Total.Max != 0 {
		t.Fatalf("Total = %+v, want one clamped-to-0 sample", sum.Total)
	}
}

func TestCoverage(t *testing.T) {
	tls := Merge([]Dump{{Node: "n", Events: []Event{
		{TxID: "a", Stage: StageSubmit, WallNS: 1},
		{TxID: "a", Stage: StageCommit, WallNS: 2},
		{TxID: "b", Stage: StageSubmit, WallNS: 1}, // never committed in the window
	}}})
	if got := Coverage(tls, []string{"a", "b"}, StageSubmit, StageCommit); got != 0.5 {
		t.Errorf("coverage = %v, want 0.5", got)
	}
	if got := Coverage(tls, []string{"a", "c"}, StageSubmit); got != 0.5 {
		t.Errorf("coverage with unknown id = %v, want 0.5", got)
	}
	if got := Coverage(tls, nil, StageSubmit); got != 1 {
		t.Errorf("vacuous coverage = %v, want 1", got)
	}
}

func TestQuantilesExactAgainstOracle(t *testing.T) {
	var samples []float64
	for i := 1; i <= 1000; i++ {
		samples = append(samples, float64(i))
	}
	q := quantiles(samples)
	for _, tc := range []struct{ got, want float64 }{
		{q.P50, 500}, {q.P90, 900}, {q.P99, 990}, {q.P999, 999}, {q.Max, 1000},
	} {
		if math.Abs(tc.got-tc.want) > 1e-9 {
			t.Errorf("quantile = %v, want %v", tc.got, tc.want)
		}
	}
}

func TestSummaryFormat(t *testing.T) {
	sum := Summarize(Merge([]Dump{{Node: "n", Events: []Event{
		{TxID: "a", Stage: StageSubmit, WallNS: ms(1)},
		{TxID: "a", Stage: StageCommit, WallNS: ms(4)},
	}}}))
	out := sum.Format()
	for _, want := range []string{"stage transition", "submit", "commit", "total submit→commit"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted summary missing %q:\n%s", want, out)
		}
	}
}
