// Package commit implements the validation/commit stage of the EOV pipeline
// as an independent, pipelined subsystem: each validating peer owns a
// Committer goroutine fed by a buffered delivery channel, so the ordering
// phase seals and fans out blocks without ever touching peer state
// (Section 2.1's phase independence), and peers commit concurrently with
// ordering and with each other.
//
// Inside a block, validation itself is parallel: transactions are
// partitioned into key-disjoint conflict groups (internal/conflict's
// union-find over read/write keys), each group validates sequentially in
// block order against its own overlay, and independent groups run on a
// worker pool sized by GOMAXPROCS. Systems whose ordering phase already
// guarantees serializability (Sharp, Focc-s) skip the MVCC partition
// entirely and go straight from parallel endorsement-signature checks to one
// batched statedb.ApplyBlock.
//
// When rescue is enabled, a third phase follows MVCC: the post-order
// speculative re-execution of internal/reexec flips recoverable
// MVCCConflict verdicts to Rescued, replacing their declared write sets
// with re-executed ones. Peers re-derive the rescue outcome locally and
// byte-assert its digest against the sealed block, the same agreement
// contract the verdict codes already follow.
package commit

import (
	"runtime"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/conflict"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/reexec"
	"fabricsharp/internal/seqno"
	"fabricsharp/internal/statedb"
	"fabricsharp/internal/validation"
)

// Options configures parallel block validation: the shared validation
// switches (MVCC, MSP, Policy — one struct with the sequential reference,
// so the two paths cannot drift apart) plus the parallelism cap and the
// post-order rescue switch.
type Options struct {
	validation.Options
	// Workers caps validation parallelism; 0 means GOMAXPROCS.
	Workers int
	// Rescue enables post-order speculative re-execution of MVCC-aborted
	// transactions (requires Registry; only meaningful with MVCC).
	Rescue bool
	// Registry resolves contracts for the rescue phase's re-execution.
	Registry *chaincode.Registry
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) rescueEnabled() bool { return o.Rescue && o.MVCC && o.Registry != nil }

// BlockResult is the outcome of validating one block.
type BlockResult struct {
	// Codes are the per-transaction validation codes, in block order.
	Codes []protocol.ValidationCode
	// Writes are the committed transactions' write sets (declared for Valid,
	// re-executed for Rescued), in block order, ready for one batched
	// statedb.ApplyBlock.
	Writes []statedb.BlockWrites
	// Groups is the number of key-disjoint conflict groups the MVCC phase
	// validated concurrently (0 when MVCC was skipped).
	Groups int
	// Rescue is the post-order re-execution outcome (zero value when the
	// rescue phase did not run). Its Digest must byte-match the sealed
	// block's RescueDigest.
	Rescue reexec.Outcome
}

// ValidateBlock validates every transaction of blk against db and returns
// the codes and the batched writes — it does not apply them. The result is
// byte-identical to the sequential validation.ValidateAndCommit (plus the
// deterministic rescue phase when enabled): endorsement checks are
// embarrassingly parallel, and the MVCC overlay rule only couples
// transactions that share a key, so key-disjoint groups validate
// independently without changing any verdict.
func ValidateBlock(db *statedb.DB, blk *ledger.Block, opts Options) BlockResult {
	n := len(blk.Transactions)
	codes := make([]protocol.ValidationCode, n)
	workers := opts.workers()

	// Phase 1: endorsement-signature checks — per-transaction, stateless,
	// and the dominant CPU cost (ed25519 verification) — across all workers.
	if opts.MSP != nil && opts.Policy != nil {
		conflict.ParallelFor(n, workers, func(i int) {
			if err := opts.MSP.CheckEndorsements(blk.Transactions[i], opts.Policy); err != nil {
				codes[i] = protocol.EndorsementFailure
			}
		})
	}

	// Phase 2: MVCC, partitioned by read/write-key overlap. Transactions
	// already failed by endorsement write nothing and constrain nothing, so
	// they stay out of the partition.
	groups := 0
	if opts.MVCC {
		groupList := conflict.Partition(blk.Transactions, func(i int) bool {
			return codes[i] == protocol.Valid
		})
		groups = len(groupList)
		base := validation.DBVersions(db)
		conflict.RunGroups(groupList, workers, func(group []int) {
			overlay := validation.NewOverlay()
			current := func(key string) (seqno.Seq, bool) {
				return overlay.Version(base, key)
			}
			for _, i := range group {
				tx := blk.Transactions[i]
				if !validation.ReadsFresh(tx, current) {
					codes[i] = protocol.MVCCConflict
					continue
				}
				overlay.Record(seqno.Commit(blk.Header.Number, uint32(i+1)), tx.RWSet.Writes)
			}
		})
	}

	// Phase 3: post-order rescue — re-execute MVCC casualties against the
	// committed state under the block's valid writes. db still sits at the
	// pre-block height here (writes apply after validation), matching the
	// orderer's shadow view at cut time.
	res := BlockResult{Groups: groups}
	if opts.rescueEnabled() {
		res.Rescue = reexec.Run(reexec.DBSource(db), blk.Header.Number, blk.Transactions, codes,
			reexec.Options{Registry: opts.Registry, Workers: workers})
		codes = res.Rescue.Codes
	}
	res.Codes = codes
	res.Writes = WritesForRescued(blk, codes, res.Rescue.Writes)
	return res
}

// WritesFor assembles the batched ApplyBlock input from a block and its
// final validation codes — the code path live commit and stored-chain
// replay share. Blocks carrying Rescued verdicts need the re-executed write
// sets too: use WritesForRescued.
func WritesFor(blk *ledger.Block, codes []protocol.ValidationCode) []statedb.BlockWrites {
	return WritesForRescued(blk, codes, nil)
}

// WritesForRescued is WritesFor plus the rescue outcome: rescued[i], when
// the slice is non-nil, holds the re-executed write set applied for each
// Rescued transaction. Positions follow protocol.CommitPositions: valid
// writes at their in-block position, rescued writes after the whole block
// (post-order), emitted in ascending position order so the state database's
// per-key history stays version-sorted.
func WritesForRescued(blk *ledger.Block, codes []protocol.ValidationCode, rescued [][]protocol.WriteItem) []statedb.BlockWrites {
	pos := protocol.CommitPositions(codes)
	var writes []statedb.BlockWrites
	for i, tx := range blk.Transactions {
		if codes[i] == protocol.Valid && len(tx.RWSet.Writes) > 0 {
			writes = append(writes, statedb.BlockWrites{Pos: pos[i], Writes: tx.RWSet.Writes})
		}
	}
	for i := range blk.Transactions {
		if codes[i] != protocol.Rescued {
			continue
		}
		if rescued == nil {
			panic("commit: WritesFor on a block with Rescued verdicts (use WritesForRescued)")
		}
		if len(rescued[i]) > 0 {
			writes = append(writes, statedb.BlockWrites{Pos: pos[i], Writes: rescued[i]})
		}
	}
	return writes
}
