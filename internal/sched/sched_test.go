package sched

import (
	"errors"
	"fmt"
	"testing"

	"fabricsharp/internal/core"
	"fabricsharp/internal/intern"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
)

// mkTx builds a transaction with the given snapshot and rw keys. Read
// versions default to the snapshot block (position 1) for keys of the form
// "k@b" parsed as key k read at version (b,1); plain keys read version
// (snapshot,1) if snapshot > 0, else the zero version.
func mkTx(id string, snap uint64, reads, writes []string) *protocol.Transaction {
	tx := &protocol.Transaction{ID: protocol.TxID(id), SnapshotBlock: snap}
	for _, r := range reads {
		item := protocol.ReadItem{Key: r}
		if snap > 0 {
			item.Version = seqno.Commit(snap, 1)
		}
		tx.RWSet.Reads = append(tx.RWSet.Reads, item)
	}
	for _, w := range writes {
		tx.RWSet.Writes = append(tx.RWSet.Writes, protocol.WriteItem{Key: w, Value: []byte("v")})
	}
	return tx
}

func orderIDs(res FormationResult) []string {
	out := make([]string, len(res.Ordered))
	for i, tx := range res.Ordered {
		out[i] = string(tx.ID)
	}
	return out
}

func mustArrive(t *testing.T, s Scheduler, tx *protocol.Transaction, want protocol.ValidationCode) {
	t.Helper()
	got, err := s.OnArrival(tx)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("%s OnArrival(%s) = %v want %v", s.System(), tx.ID, got, want)
	}
}

func TestNewConstructsAllSystems(t *testing.T) {
	for _, sys := range Systems() {
		s, err := New(sys, Options{})
		if err != nil {
			t.Fatalf("New(%s): %v", sys, err)
		}
		if s.System() != sys {
			t.Errorf("System() = %v want %v", s.System(), sys)
		}
	}
	if _, err := New("bogus", Options{}); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestFabricFIFO(t *testing.T) {
	f := NewFabric()
	for i := 0; i < 5; i++ {
		mustArrive(t, f, mkTx(fmt.Sprintf("t%d", i), 0, []string{"a"}, []string{"a"}), protocol.Valid)
	}
	res, err := f.OnBlockFormation()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(orderIDs(res)) != "[t0 t1 t2 t3 t4]" {
		t.Errorf("fabric reordered: %v", orderIDs(res))
	}
	if res.Block != 1 || !f.NeedsMVCCValidation() {
		t.Error("fabric block/validation flags wrong")
	}
	// Empty formation does not consume a block number.
	res2, _ := f.OnBlockFormation()
	if res2.Block != 2 || len(res2.Ordered) != 0 {
		t.Errorf("empty formation = %+v", res2)
	}
}

func TestReadsAcrossBlocks(t *testing.T) {
	tx := mkTx("t", 2, nil, nil)
	tx.RWSet.Reads = []protocol.ReadItem{
		{Key: "a", Version: seqno.Commit(1, 1)},
		{Key: "b", Version: seqno.Commit(2, 1)},
	}
	if ReadsAcrossBlocks(tx) {
		t.Error("reads at or before snapshot flagged as cross-block")
	}
	tx.RWSet.Reads = append(tx.RWSet.Reads, protocol.ReadItem{Key: "c", Version: seqno.Commit(3, 1)})
	if !ReadsAcrossBlocks(tx) {
		t.Error("read from block 3 against snapshot 2 not flagged")
	}
}

func TestFabricPPReordersReadersBeforeWriters(t *testing.T) {
	f := NewFabricPP(Options{})
	// Arrival order: writer first, reader second. The reader reads key "a"
	// which the writer overwrites; reordering must place the reader first.
	mustArrive(t, f, mkTx("writer", 1, nil, []string{"a"}), protocol.Valid)
	mustArrive(t, f, mkTx("reader", 1, []string{"a"}, []string{"b"}), protocol.Valid)
	res, _ := f.OnBlockFormation()
	if fmt.Sprint(orderIDs(res)) != "[reader writer]" {
		t.Errorf("order = %v", orderIDs(res))
	}
	if len(res.DroppedTxs) != 0 {
		t.Errorf("dropped = %v", res.DroppedTxs)
	}
}

func TestFabricPPDropsCycle(t *testing.T) {
	f := NewFabricPP(Options{})
	mustArrive(t, f, mkTx("t1", 1, []string{"a"}, []string{"b"}), protocol.Valid)
	mustArrive(t, f, mkTx("t2", 1, []string{"b"}, []string{"a"}), protocol.Valid)
	res, _ := f.OnBlockFormation()
	if len(res.Ordered)+len(res.DroppedTxs) != 2 || len(res.DroppedTxs) != 1 {
		t.Fatalf("ordered=%v dropped=%v", orderIDs(res), res.DroppedTxs)
	}
	if res.DroppedTxs[0].Code != protocol.AbortReorderCycle {
		t.Errorf("drop code = %v", res.DroppedTxs[0].Code)
	}
}

func TestFabricPPThreeWayCycleKeepsMajority(t *testing.T) {
	f := NewFabricPP(Options{})
	// t1 -> t2 -> t3 -> t1: dropping one transaction must fix it.
	mustArrive(t, f, mkTx("t1", 1, []string{"a"}, []string{"b"}), protocol.Valid)
	mustArrive(t, f, mkTx("t2", 1, []string{"b"}, []string{"c"}), protocol.Valid)
	mustArrive(t, f, mkTx("t3", 1, []string{"c"}, []string{"a"}), protocol.Valid)
	res, _ := f.OnBlockFormation()
	if len(res.Ordered) != 2 || len(res.DroppedTxs) != 1 {
		t.Fatalf("ordered=%v dropped=%d", orderIDs(res), len(res.DroppedTxs))
	}
}

func TestFabricPPIndependentTxsKeepFIFO(t *testing.T) {
	f := NewFabricPP(Options{})
	for i := 0; i < 4; i++ {
		mustArrive(t, f, mkTx(fmt.Sprintf("t%d", i), 1, []string{fmt.Sprintf("r%d", i)}, []string{fmt.Sprintf("w%d", i)}), protocol.Valid)
	}
	res, _ := f.OnBlockFormation()
	if fmt.Sprint(orderIDs(res)) != "[t0 t1 t2 t3]" {
		t.Errorf("independent txs reordered: %v", orderIDs(res))
	}
}

func TestFoccSConcurrentWWAborted(t *testing.T) {
	f := NewFoccS(Options{})
	mustArrive(t, f, mkTx("w1", 0, nil, []string{"hot"}), protocol.Valid)
	// Pending-pending ww.
	mustArrive(t, f, mkTx("w2", 0, nil, []string{"hot"}), protocol.AbortConcurrentWW)
	f.OnBlockFormation() // block 1 commits w1
	// Committed-concurrent ww: snapshot 0 predates w1's commit.
	mustArrive(t, f, mkTx("w3", 0, nil, []string{"hot"}), protocol.AbortConcurrentWW)
	// Non-concurrent ww: snapshot 1 is after w1's commit.
	mustArrive(t, f, mkTx("w4", 1, nil, []string{"hot"}), protocol.Valid)
}

func TestFoccSSingleAntiRWAllowed(t *testing.T) {
	// One rw conflict alone is not dangerous: Focc-s commits transactions
	// Fabric would abort (the Figure 12 crossover at high read-hot ratios).
	f := NewFoccS(Options{})
	mustArrive(t, f, mkTx("w1", 0, nil, []string{"k"}), protocol.Valid)
	f.OnBlockFormation()
	mustArrive(t, f, mkTx("staleReader", 0, []string{"k"}, []string{"private"}), protocol.Valid)
	if f.NeedsMVCCValidation() {
		t.Error("focc-s must skip MVCC validation")
	}
}

func TestFoccSDangerousStructureAborted(t *testing.T) {
	f := NewFoccS(Options{})
	mustArrive(t, f, mkTx("w1", 0, nil, []string{"k"}), protocol.Valid)
	f.OnBlockFormation() // block 1
	// t2: stale read of k (anti-rw out edge), writes z.
	mustArrive(t, f, mkTx("t2", 0, []string{"k"}, []string{"z"}), protocol.Valid)
	// t3 reads z (pending write of t2): t3 --rw--> t2 and t2 already has an
	// anti-rw out edge => t2 becomes a pivot with an anti-rw: abort t3.
	mustArrive(t, f, mkTx("t3", 1, []string{"z"}, nil), protocol.AbortDangerousStructure)
}

func TestFoccSPivotWithoutAntiAllowed(t *testing.T) {
	// Two consecutive c-rw conflicts with no anti-rw are not dangerous
	// under the paper's refinement ("with at least one anti-rw").
	f := NewFoccS(Options{})
	mustArrive(t, f, mkTx("A", 0, []string{"x"}, []string{"y"}), protocol.Valid)
	mustArrive(t, f, mkTx("B", 0, []string{"y"}, []string{"q1"}), protocol.Valid) // B -> A in-edge on A? B reads y, A writes y: B --rw--> A
	mustArrive(t, f, mkTx("C", 0, []string{"q2"}, []string{"x"}), protocol.Valid) // A --rw--> C on x
	res, _ := f.OnBlockFormation()
	if len(res.Ordered) != 3 {
		t.Errorf("committed %d of 3", len(res.Ordered))
	}
}

func TestFoccSWriteSkewPairAborted(t *testing.T) {
	// The classic write-skew: T1 reads a / writes b, T2 reads b / writes a,
	// both pending. T2's arrival gives T2 an anti-rw out edge (to T1, which
	// commits first in FIFO order) and an incoming rw from T1 — a dangerous
	// structure. Regression test for the end-to-end serializability hole
	// where pending-writer edges were not classified as anti-rw.
	f := NewFoccS(Options{})
	mustArrive(t, f, mkTx("t1", 0, []string{"a"}, []string{"b"}), protocol.Valid)
	mustArrive(t, f, mkTx("t2", 0, []string{"b"}, []string{"a"}), protocol.AbortDangerousStructure)
}

func TestFoccSStaleSnapshotAborted(t *testing.T) {
	f := NewFoccS(Options{MaxSpan: 2})
	for b := 0; b < 4; b++ {
		mustArrive(t, f, mkTx(fmt.Sprintf("filler%d", b), uint64(b), nil, []string{fmt.Sprintf("f%d", b)}), protocol.Valid)
		f.OnBlockFormation()
	}
	// nextBlock = 5, horizon = 3: snapshot 2 is stale.
	mustArrive(t, f, mkTx("old", 2, []string{"x"}, nil), protocol.AbortStaleSnapshot)
}

func TestFoccLMovesDoomedToBack(t *testing.T) {
	f := NewFoccL(Options{})
	// Feedback: key "hot" last validly written at (1,1).
	committedTx := mkTx("w", 1, nil, []string{"hot"})
	f.OnBlockCommitted(1, []*protocol.Transaction{committedTx}, []protocol.ValidationCode{protocol.Valid})

	doomed := mkTx("doomed", 0, []string{"hot"}, []string{"a"})
	doomed.RWSet.Reads[0].Version = seqno.Seq{} // read the pre-block absence: stale
	fresh := mkTx("fresh", 1, []string{"hot"}, []string{"b"})
	fresh.RWSet.Reads[0].Version = seqno.Commit(1, 1)

	mustArrive(t, f, doomed, protocol.Valid) // focc-l never filters
	mustArrive(t, f, fresh, protocol.Valid)
	res, _ := f.OnBlockFormation()
	if fmt.Sprint(orderIDs(res)) != "[fresh doomed]" {
		t.Errorf("order = %v", orderIDs(res))
	}
	if len(res.DroppedTxs) != 0 {
		t.Error("focc-l must not drop transactions")
	}
	if !f.NeedsMVCCValidation() {
		t.Error("focc-l relies on MVCC validation")
	}
}

func TestFoccLInvalidFeedbackIgnored(t *testing.T) {
	f := NewFoccL(Options{})
	tx := mkTx("w", 1, nil, []string{"hot"})
	f.OnBlockCommitted(1, []*protocol.Transaction{tx}, []protocol.ValidationCode{protocol.MVCCConflict})
	if len(f.committed) != 0 {
		t.Error("aborted transaction's writes tracked as committed")
	}
}

func TestFoccLKeepsCycleMembersInBlock(t *testing.T) {
	f := NewFoccL(Options{})
	mustArrive(t, f, mkTx("t1", 1, []string{"a"}, []string{"b"}), protocol.Valid)
	mustArrive(t, f, mkTx("t2", 1, []string{"b"}, []string{"a"}), protocol.Valid)
	res, _ := f.OnBlockFormation()
	if len(res.Ordered) != 2 || len(res.DroppedTxs) != 0 {
		t.Errorf("focc-l dropped cycle members: ordered=%v", orderIDs(res))
	}
}

func TestSharpSchedulerDelegation(t *testing.T) {
	s := NewSharp(Options{})
	mustArrive(t, s, mkTx("t1", 0, []string{"a"}, []string{"b"}), protocol.Valid)
	mustArrive(t, s, mkTx("t2", 0, []string{"b"}, []string{"a"}), protocol.AbortCycle)
	if s.PendingCount() != 1 {
		t.Errorf("pending = %d", s.PendingCount())
	}
	res, err := s.OnBlockFormation()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(orderIDs(res)) != "[t1]" || res.Block != 1 {
		t.Errorf("res = %v block %d", orderIDs(res), res.Block)
	}
	if s.NeedsMVCCValidation() {
		t.Error("sharp must skip MVCC validation")
	}
	if s.Manager().Stats().AbortCycle != 1 {
		t.Error("manager stats not wired")
	}
}

func TestSharpReordersAcrossArrivalOrder(t *testing.T) {
	s := NewSharp(Options{})
	// Same Figure 7b shape as the core test, through the Scheduler surface.
	mustArrive(t, s, mkTx("t1", 0, []string{"k1"}, []string{"k2"}), protocol.Valid)
	mustArrive(t, s, mkTx("t2", 0, nil, []string{"k1", "A"}), protocol.Valid)
	mustArrive(t, s, mkTx("t3", 0, []string{"k2"}, []string{"A"}), protocol.Valid)
	res, _ := s.OnBlockFormation()
	ids := orderIDs(res)
	if len(ids) != 3 {
		t.Fatalf("committed %v", ids)
	}
	pos := map[string]int{}
	for i, id := range ids {
		pos[id] = i
	}
	if !(pos["t3"] < pos["t1"] && pos["t1"] < pos["t2"]) {
		t.Errorf("order %v violates t3<t1<t2", ids)
	}
}

func TestSchedulerDeterminismAcrossReplicas(t *testing.T) {
	// Every scheduler must be a pure function of the consensus stream.
	stream := func() []*protocol.Transaction {
		var txs []*protocol.Transaction
		for i := 0; i < 120; i++ {
			r := fmt.Sprintf("k%d", (i*7)%5)
			w := fmt.Sprintf("k%d", (i*3)%5)
			txs = append(txs, mkTx(fmt.Sprintf("t%d", i), 0, []string{r}, []string{w}))
		}
		return txs
	}
	for _, sys := range Systems() {
		sys := sys
		t.Run(string(sys), func(t *testing.T) {
			run := func() []string {
				s, err := New(sys, Options{})
				if err != nil {
					t.Fatal(err)
				}
				var log []string
				for i, tx := range stream() {
					code, err := s.OnArrival(tx)
					if err != nil {
						t.Fatal(err)
					}
					log = append(log, fmt.Sprintf("%s=%v", tx.ID, code))
					if (i+1)%30 == 0 {
						res, err := s.OnBlockFormation()
						if err != nil {
							t.Fatal(err)
						}
						log = append(log, fmt.Sprintf("b%d:%v|dropped=%d", res.Block, orderIDs(res), len(res.DroppedTxs)))
					}
				}
				return log
			}
			a, b := run(), run()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s diverged at %d: %q vs %q", sys, i, a[i], b[i])
				}
			}
		})
	}
}

func TestTimingAccounting(t *testing.T) {
	s := NewSharp(Options{})
	mustArrive(t, s, mkTx("t", 0, []string{"a"}, []string{"b"}), protocol.Valid)
	if _, err := s.OnBlockFormation(); err != nil {
		t.Fatal(err)
	}
	tm := s.Timing()
	if tm.Arrivals != 1 || tm.Formations != 1 {
		t.Errorf("timing = %+v", tm)
	}
	if tm.MeanArrivalUS() < 0 || tm.MeanFormationMS() < 0 {
		t.Error("negative timing")
	}
	var zero Timing
	if zero.MeanArrivalUS() != 0 || zero.MeanFormationMS() != 0 {
		t.Error("zero-value timing should report zeros")
	}
}

func TestSortTxIDsHelper(t *testing.T) {
	txs := []*protocol.Transaction{mkTx("b", 0, nil, nil), mkTx("a", 0, nil, nil)}
	if got := sortTxIDs(txs); fmt.Sprint(got) != "[a b]" {
		t.Errorf("sortTxIDs = %v", got)
	}
}

// failingIndex wraps a VersionIndex and fails every operation once armed —
// the disk-fault model for the error-propagation tests.
type failingIndex struct {
	core.VersionIndex
	armed bool
}

var errIndexBoom = errors.New("index: injected disk fault")

func (f *failingIndex) Put(key intern.Key, seq seqno.Seq, id protocol.TxID) error {
	if f.armed {
		return errIndexBoom
	}
	return f.VersionIndex.Put(key, seq, id)
}

func (f *failingIndex) After(dst []protocol.TxID, key intern.Key, from seqno.Seq) ([]protocol.TxID, error) {
	if f.armed {
		return dst, errIndexBoom
	}
	return f.VersionIndex.After(dst, key, from)
}

func (f *failingIndex) PruneBefore(minBlock uint64) error {
	if f.armed {
		return errIndexBoom
	}
	return f.VersionIndex.PruneBefore(minBlock)
}

// TestFoccSIndexErrorPropagation pins the PR 4 bugfix: Focc-s used to
// swallow every index error (`_ = f.cw.Put(...)`), so a failing disk-backed
// index silently corrupted certification state. Errors must now surface from
// OnArrival and OnBlockFormation — the orderer turns them into a fatal
// Network.Err, the same policy as a validation divergence.
func TestFoccSIndexErrorPropagation(t *testing.T) {
	cw := &failingIndex{VersionIndex: core.NewMemIndex()}
	f := NewFoccS(Options{CW: cw})
	mustArrive(t, f, mkTx("t0", 0, []string{"a"}, []string{"b"}), protocol.Valid)

	// Arrival path: the certify queries hit the failing index.
	cw.armed = true
	if _, err := f.OnArrival(mkTx("t1", 0, []string{"b"}, []string{"c"})); !errors.Is(err, errIndexBoom) {
		t.Fatalf("OnArrival swallowed the index error: %v", err)
	}

	// Formation path: the commit bookkeeping hits the failing index.
	cw.armed = false
	mustArrive(t, f, mkTx("t2", 0, []string{"x"}, []string{"y"}), protocol.Valid)
	cw.armed = true
	if _, err := f.OnBlockFormation(); !errors.Is(err, errIndexBoom) {
		t.Fatalf("OnBlockFormation swallowed the index error: %v", err)
	}

	// Prune path: formation past the horizon prunes through the index too.
	cw.armed = false
	f2 := NewFoccS(Options{MaxSpan: 2, CW: &failingIndex{VersionIndex: core.NewMemIndex()}})
	for b := 0; b < 3; b++ {
		mustArrive(t, f2, mkTx(fmt.Sprintf("p%d", b), uint64(b), []string{"r"}, nil), protocol.Valid)
		if _, err := f2.OnBlockFormation(); err != nil {
			t.Fatal(err)
		}
	}
	// A read-only transaction touches cw only via PruneBefore at formation.
	mustArrive(t, f2, mkTx("p4", 3, []string{"r2"}, nil), protocol.Valid)
	f2.cw.(*failingIndex).armed = true
	if _, err := f2.OnBlockFormation(); !errors.Is(err, errIndexBoom) {
		t.Fatalf("prune error swallowed: %v", err)
	}
}

// driveChurn pushes a rotating-key-space stream through a scheduler,
// cutting a block every blockSize arrivals, and returns a decision log
// (admission codes + emitted block contents) plus the total distinct keys.
func driveChurn(t *testing.T, s Scheduler, blocks, blockSize int) ([]string, int) {
	t.Helper()
	var log []string
	height := uint64(0)
	distinct := map[string]bool{}
	n := 0
	for b := 0; b < blocks; b++ {
		for i := 0; i < blockSize; i++ {
			r := fmt.Sprintf("g%d:k%d", b, i%6)
			w := fmt.Sprintf("g%d:k%d", b, (i+1)%6)
			distinct[r], distinct[w] = true, true
			tx := mkTx(fmt.Sprintf("t%d", n), height, []string{r}, []string{w})
			code, err := s.OnArrival(tx)
			if err != nil {
				t.Fatal(err)
			}
			log = append(log, fmt.Sprintf("%d:%v", n, code))
			n++
		}
		res, err := s.OnBlockFormation()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Ordered) > 0 {
			height = res.Block
		}
		log = append(log, fmt.Sprint(orderIDs(res)))
		codes := make([]protocol.ValidationCode, len(res.Ordered))
		for i := range codes {
			codes[i] = protocol.Valid
		}
		s.OnBlockCommitted(res.Block, res.Ordered, codes)
	}
	return log, len(distinct)
}

// TestCompactionBoundsResidentKeys runs every key-interning scheduler over a
// churn workload with compaction on: resident keys must stay far below the
// distinct-key universe, and for the schedulers whose liveness set is
// exactly "keys with retained entries" (sharp, focc-s, fabric++) the
// decision log must be bit-identical to an append-only run.
func TestCompactionBoundsResidentKeys(t *testing.T) {
	const blocks, blockSize = 50, 8
	for _, sys := range []System{SystemSharp, SystemFoccS, SystemFabricPP, SystemFoccL} {
		sys := sys
		t.Run(string(sys), func(t *testing.T) {
			compacting, err := New(sys, Options{MaxSpan: 4, CompactEvery: 4})
			if err != nil {
				t.Fatal(err)
			}
			log, distinct := driveChurn(t, compacting, blocks, blockSize)
			resident := compacting.ResidentKeys()
			if resident == 0 && sys != SystemFabricPP {
				t.Fatalf("no resident keys tracked")
			}
			if bound := distinct / 4; resident > bound {
				t.Fatalf("resident keys %d not bounded (distinct %d, want <= %d)", resident, distinct, bound)
			}
			appendOnly, err := New(sys, Options{MaxSpan: 4})
			if err != nil {
				t.Fatal(err)
			}
			log0, _ := driveChurn(t, appendOnly, blocks, blockSize)
			if appendOnly.ResidentKeys() <= resident {
				t.Fatalf("append-only run did not grow past compacting run: %d vs %d",
					appendOnly.ResidentKeys(), resident)
			}
			// Focc-l's compaction narrows the doomed-detection window by
			// design; the all-Valid feedback here leaves no stale reads, so
			// its log matches too — but the invariant we pin is only for the
			// retained-entry liveness schedulers.
			for i := range log0 {
				if log[i] != log0[i] {
					if sys == SystemFoccL {
						t.Skipf("focc-l decision drift at %d (windowed doomed detection)", i)
					}
					t.Fatalf("decisions diverged at step %d: %q vs %q", i, log[i], log0[i])
				}
			}
		})
	}
}
