package scenario

import (
	"fmt"
	"sort"

	"fabricsharp/internal/chaincode"
)

// Registry maps scenario names to descriptors. Registration is explicit —
// no init() magic, no global mutable state: Builtin() constructs the stock
// registry fresh on every call, and embedders build their own the same way.
type Registry struct {
	byName map[string]Scenario
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]Scenario{}}
}

// Register adds a scenario, rejecting unnamed or incomplete descriptors and
// duplicate names.
func (r *Registry) Register(s Scenario) error {
	if s.Name == "" {
		return fmt.Errorf("scenario: descriptor needs a name")
	}
	if s.Contracts == nil || s.Generator == nil {
		return fmt.Errorf("scenario: %q needs Contracts and Generator", s.Name)
	}
	if _, dup := r.byName[s.Name]; dup {
		return fmt.Errorf("scenario: %q already registered", s.Name)
	}
	r.byName[s.Name] = s
	return nil
}

// Get looks a scenario up by name.
func (r *Registry) Get(name string) (Scenario, bool) {
	s, ok := r.byName[name]
	return s, ok
}

// Names returns every registered name, sorted — the registry's one
// deterministic ordering, used by flag help, listings, and the chaos matrix.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.byName))
	for name := range r.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Contracts returns the union of every registered scenario's contracts plus
// the given extras, deduplicated by contract name and sorted by it. This is
// the default contract set of every registry-backed consumer: a network
// booted from it can endorse any registered scenario.
func (r *Registry) Contracts(extra ...chaincode.Contract) []chaincode.Contract {
	byName := map[string]chaincode.Contract{}
	for _, name := range r.Names() {
		for _, c := range r.byName[name].Contracts() {
			byName[c.Name()] = c
		}
	}
	for _, c := range extra {
		byName[c.Name()] = c
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]chaincode.Contract, 0, len(names))
	for _, name := range names {
		out = append(out, byName[name])
	}
	return out
}
