// Package sim is a deterministic discrete-event simulation engine: a virtual
// clock, an event heap, FIFO service stations, a virtual readers-writer
// lock, and a coroutine bridge that lets ordinary imperative code (contract
// simulations) block on virtual time.
//
// The experiments of Section 5 run the real EOV pipeline — real contracts,
// real state, real schedulers — on this engine, with only service times
// (validation cost, consensus latency, client delay, read intervals)
// modelled. Determinism matters twice: experiments are reproducible, and the
// replicated-orderer agreement tests rely on identical event interleavings.
package sim

import "container/heap"

// Time is virtual time in microseconds.
type Time int64

// Convenient units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * Millisecond
)

// Seconds renders t in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis renders t in milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

type event struct {
	at  Time
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is the simulation core. Not safe for concurrent use: everything
// runs on the caller's goroutine (processes spawned via StartProcess hand
// control back and forth but never run concurrently).
type Engine struct {
	now  Time
	heap eventHeap
	seq  uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn at absolute virtual time t (>= now).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.heap, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d after now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step executes the earliest pending event. It reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run processes events until the clock would pass `until` or no events
// remain. Events scheduled exactly at `until` still run.
func (e *Engine) Run(until Time) {
	for len(e.heap) > 0 && e.heap[0].at <= until {
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll drains every pending event.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.heap) }

// ---------------------------------------------------------------------------
// Station: a FIFO multi-server queue
// ---------------------------------------------------------------------------

// Station models a service center with a fixed number of parallel servers
// and an unbounded FIFO queue — the validator pipeline, endorser CPU pool,
// and orderer front-end are all stations with different capacities and
// service times.
type Station struct {
	e    *Engine
	cap  int
	busy int
	q    []stationJob

	// Busy-time accounting for utilization metrics.
	busySince map[int]Time
	totalBusy Time
	served    uint64
}

type stationJob struct {
	d    Time
	done func()
}

// NewStation creates a station with the given server count.
func NewStation(e *Engine, servers int) *Station {
	if servers <= 0 {
		panic("sim: station needs at least one server")
	}
	return &Station{e: e, cap: servers}
}

// Submit enqueues a job with the given service time; done runs at
// completion.
func (s *Station) Submit(d Time, done func()) {
	s.q = append(s.q, stationJob{d: d, done: done})
	s.dispatch()
}

func (s *Station) dispatch() {
	for s.busy < s.cap && len(s.q) > 0 {
		job := s.q[0]
		s.q = s.q[1:]
		s.busy++
		start := s.e.Now()
		s.e.After(job.d, func() {
			s.busy--
			s.totalBusy += s.e.Now() - start
			s.served++
			if job.done != nil {
				job.done()
			}
			s.dispatch()
		})
	}
}

// QueueLen returns the number of jobs waiting (not in service).
func (s *Station) QueueLen() int { return len(s.q) }

// Served returns the number of completed jobs.
func (s *Station) Served() uint64 { return s.served }

// BusyTime returns the cumulative busy server-time.
func (s *Station) BusyTime() Time { return s.totalBusy }

// ---------------------------------------------------------------------------
// RWLock: a virtual readers-writer lock (writer-preferring)
// ---------------------------------------------------------------------------

// RWLock models vanilla Fabric's simulation/commit lock (Section 2.1): many
// concurrent contract simulations hold read locks while the block commit
// takes the write lock. Writer preference reproduces Fabric's behaviour of
// stalling new simulations while a commit waits — and the throughput
// collapse of Figure 14 once simulations grow long.
type RWLock struct {
	readers  int
	writer   bool
	waitingW []func()
	waitingR []func()
}

// NewRWLock returns an unlocked lock.
func NewRWLock() *RWLock { return &RWLock{} }

// AcquireRead grants a read lock, immediately or once compatible. grant runs
// in engine context.
func (l *RWLock) AcquireRead(grant func()) {
	if !l.writer && len(l.waitingW) == 0 {
		l.readers++
		grant()
		return
	}
	l.waitingR = append(l.waitingR, grant)
}

// ReleaseRead releases one read lock.
func (l *RWLock) ReleaseRead() {
	l.readers--
	l.grantNext()
}

// AcquireWrite grants the exclusive lock, immediately or once free.
func (l *RWLock) AcquireWrite(grant func()) {
	if !l.writer && l.readers == 0 {
		l.writer = true
		grant()
		return
	}
	l.waitingW = append(l.waitingW, grant)
}

// ReleaseWrite releases the exclusive lock.
func (l *RWLock) ReleaseWrite() {
	l.writer = false
	l.grantNext()
}

func (l *RWLock) grantNext() {
	if l.writer {
		return
	}
	if len(l.waitingW) > 0 {
		if l.readers == 0 {
			grant := l.waitingW[0]
			l.waitingW = l.waitingW[1:]
			l.writer = true
			grant()
		}
		return // readers drain; writer goes next
	}
	for len(l.waitingR) > 0 {
		grant := l.waitingR[0]
		l.waitingR = l.waitingR[1:]
		l.readers++
		grant()
	}
}

// Readers returns the current reader count (tests).
func (l *RWLock) Readers() int { return l.readers }

// ---------------------------------------------------------------------------
// Proc: coroutine bridge for imperative code on virtual time
// ---------------------------------------------------------------------------

// Proc lets a goroutine running ordinary imperative code (a contract
// simulation) block on virtual time. Exactly one goroutine — the engine's or
// one proc's — runs at any instant, so simulations stay deterministic.
type Proc struct {
	e      *Engine
	resume chan struct{}
	yield  chan struct{}
}

// StartProcess runs fn as a simulated process. It must be called from engine
// context (inside an event); it returns when fn finishes or first blocks.
func (e *Engine) StartProcess(fn func(p *Proc)) {
	p := &Proc{e: e, resume: make(chan struct{}), yield: make(chan struct{})}
	go func() {
		<-p.resume
		fn(p)
		p.yield <- struct{}{}
	}()
	p.transfer()
}

// transfer hands control to the proc goroutine and returns when it parks or
// finishes. Engine context only.
func (p *Proc) transfer() {
	p.resume <- struct{}{}
	<-p.yield
}

// park gives control back to the engine and blocks until resumed.
func (p *Proc) park() {
	p.yield <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Time) {
	p.e.After(d, func() { p.transfer() })
	p.park()
}

// Block suspends the process until the wake callback (handed to register)
// is invoked — used for virtual lock acquisition: register the wake as the
// lock's grant function. If the grant fires synchronously inside register
// (lock free), the process continues without parking; otherwise the wake
// later runs in engine context and transfers control back.
func (p *Proc) Block(register func(wake func())) {
	granted := false
	parked := false
	register(func() {
		if !parked {
			granted = true // synchronous grant: still on the proc goroutine
			return
		}
		p.transfer()
	})
	if granted {
		return
	}
	parked = true
	p.park()
}

// Now returns the virtual time (valid while the process runs).
func (p *Proc) Now() Time { return p.e.Now() }
