// Package identity implements the membership service of a permissioned
// blockchain: enrollment of clients, peers and orderers with ed25519 key
// pairs, signature verification, revocation, and the endorsement policies
// (AND / OR / K-of-N expression trees) that the validation phase evaluates.
package identity

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"

	"fabricsharp/internal/protocol"
)

// Role classifies a network member (Section 2.1's three node roles).
type Role int

const (
	// RoleClient submits transaction proposals.
	RoleClient Role = iota
	// RolePeer executes and validates transactions.
	RolePeer
	// RoleOrderer sequences transactions into blocks.
	RoleOrderer
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleClient:
		return "client"
	case RolePeer:
		return "peer"
	case RoleOrderer:
		return "orderer"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Identity is an enrolled member's credential, holding the private key.
type Identity struct {
	ID   string
	Role Role
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// Sign signs msg with the member's private key.
func (id *Identity) Sign(msg []byte) []byte { return ed25519.Sign(id.priv, msg) }

// Public returns the member's public key.
func (id *Identity) Public() ed25519.PublicKey { return id.pub }

// Service is the trusted membership service ("MSP"). Enrollment hands out
// identities; verification and role lookup use only public material.
type Service struct {
	mu      sync.RWMutex
	members map[string]memberRecord
}

type memberRecord struct {
	role    Role
	pub     ed25519.PublicKey
	revoked bool
}

// NewService creates an empty membership service.
func NewService() *Service { return &Service{members: make(map[string]memberRecord)} }

// Enroll registers a new member and returns its credential. Member IDs are
// unique; re-enrollment is rejected.
func (s *Service) Enroll(id string, role Role) (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("identity: keygen: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.members[id]; exists {
		return nil, fmt.Errorf("identity: %q already enrolled", id)
	}
	s.members[id] = memberRecord{role: role, pub: pub}
	return &Identity{ID: id, Role: role, pub: pub, priv: priv}, nil
}

// Register adds a member whose public key was produced elsewhere — the
// multi-process deployment's key distribution path, where each node process
// derives the cluster's well-known identities with Deterministic and
// registers their public halves. Duplicate registration with the same key
// and role is a no-op; a conflicting one is rejected.
func (s *Service) Register(id string, role Role, pub ed25519.PublicKey) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, exists := s.members[id]; exists {
		if rec.role == role && string(rec.pub) == string(pub) {
			return nil
		}
		return fmt.Errorf("identity: %q already enrolled with different credentials", id)
	}
	s.members[id] = memberRecord{role: role, pub: pub}
	return nil
}

// Deterministic derives a member's key pair from its name and role alone, so
// every process in a cluster computes identical credentials without any key
// exchange. This is the *development/test MSP* of the process-per-node mode:
// anyone who knows a node's name can derive its private key, so it provides
// wiring fidelity (real ed25519 signatures over real sockets), not
// confidentiality — a production deployment would replace this with
// provisioned keys. The derivation is versioned; changing it is a
// cluster-wide breaking change.
func Deterministic(id string, role Role) *Identity {
	seed := sha256.Sum256([]byte("fabricsharp-dev-msp-v1|" + role.String() + "|" + id))
	priv := ed25519.NewKeyFromSeed(seed[:])
	return &Identity{
		ID:   id,
		Role: role,
		pub:  priv.Public().(ed25519.PublicKey),
		priv: priv,
	}
}

// Revoke bans a member; its signatures stop verifying.
func (s *Service) Revoke(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, ok := s.members[id]; ok {
		rec.revoked = true
		s.members[id] = rec
	}
}

// RoleOf returns the member's role.
func (s *Service) RoleOf(id string) (Role, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.members[id]
	if !ok || rec.revoked {
		return 0, false
	}
	return rec.role, true
}

// Verify checks that sig is member id's signature over msg.
func (s *Service) Verify(id string, msg, sig []byte) bool {
	s.mu.RLock()
	rec, ok := s.members[id]
	s.mu.RUnlock()
	if !ok || rec.revoked {
		return false
	}
	return ed25519.Verify(rec.pub, msg, sig)
}

// Members lists enrolled, unrevoked member IDs with the given role, sorted.
func (s *Service) Members(role Role) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for id, rec := range s.members {
		if rec.role == role && !rec.revoked {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Policy is an endorsement policy: a predicate over the set of members that
// produced valid endorsement signatures.
type Policy interface {
	// Satisfied reports whether the set of verified endorser IDs meets the
	// policy.
	Satisfied(endorsers map[string]bool) bool
	// String renders the policy for diagnostics.
	String() string
}

type signedBy struct{ id string }

// SignedBy requires a specific member's endorsement.
func SignedBy(id string) Policy { return signedBy{id} }

func (p signedBy) Satisfied(e map[string]bool) bool { return e[p.id] }
func (p signedBy) String() string                   { return fmt.Sprintf("SignedBy(%s)", p.id) }

type kOutOf struct {
	k    int
	subs []Policy
}

// KOutOf requires at least k of the sub-policies to be satisfied.
func KOutOf(k int, subs ...Policy) Policy { return kOutOf{k: k, subs: subs} }

// And requires every sub-policy.
func And(subs ...Policy) Policy { return kOutOf{k: len(subs), subs: subs} }

// Or requires any sub-policy.
func Or(subs ...Policy) Policy { return kOutOf{k: 1, subs: subs} }

// AnyPeerOf requires an endorsement from any one of the given peers — the
// paper's experimental setup ("configure the smart contract to be endorsed
// by a single peer; any of the four peers can serve as the endorser").
func AnyPeerOf(ids ...string) Policy {
	subs := make([]Policy, len(ids))
	for i, id := range ids {
		subs[i] = SignedBy(id)
	}
	return Or(subs...)
}

func (p kOutOf) Satisfied(e map[string]bool) bool {
	n := 0
	for _, sub := range p.subs {
		if sub.Satisfied(e) {
			n++
			if n >= p.k {
				return true
			}
		}
	}
	return n >= p.k // covers k == 0
}

func (p kOutOf) String() string {
	return fmt.Sprintf("KOutOf(%d,%d subs)", p.k, len(p.subs))
}

// CheckEndorsements verifies every endorsement signature on tx against the
// membership service, then evaluates the policy over the set of valid
// endorsers. Non-peer or revoked signers never count.
func (s *Service) CheckEndorsements(tx *protocol.Transaction, policy Policy) error {
	digest := tx.Digest()
	valid := make(map[string]bool, len(tx.Endorsements))
	for _, e := range tx.Endorsements {
		role, ok := s.RoleOf(e.EndorserID)
		if !ok || role != RolePeer {
			continue
		}
		if s.Verify(e.EndorserID, digest, e.Signature) {
			valid[e.EndorserID] = true
		}
	}
	if !policy.Satisfied(valid) {
		return fmt.Errorf("identity: endorsement policy %s unsatisfied by %d valid endorsements", policy, len(valid))
	}
	return nil
}
