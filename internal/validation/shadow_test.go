package validation

import (
	"fmt"
	"math/rand"
	"testing"

	"fabricsharp/internal/identity"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
	"fabricsharp/internal/statedb"
)

// TestShadowMatchesDatabaseAcrossBlocks drives a randomized multi-block
// contended schedule through both derivations — ComputeVerdicts over a
// ShadowState on one side, ValidateAndCommit over a real statedb on the
// other — and asserts the verdicts are byte-identical at every block. This
// is the invariant the deterministic commit-feedback path rests on: the
// value-free shadow is indistinguishable from the full database as far as
// verdicts are concerned.
func TestShadowMatchesDatabaseAcrossBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := newState(t)
	shadow := NewShadowState()
	chain, err := ledger.NewChain(nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MVCC: true}

	keys := []string{"a", "b", "c", "d", "e"}
	conflicts := 0
	for block := 1; block <= 30; block++ {
		var txs []*protocol.Transaction
		for i := 0; i < 8; i++ {
			tx := &protocol.Transaction{ID: protocol.TxID(fmt.Sprintf("b%dt%d", block, i))}
			// Reads observe the shadow's committed versions, except for a
			// deliberately stale minority (a lagging endorsement).
			for _, k := range keys[:1+rng.Intn(3)] {
				item := protocol.ReadItem{Key: k}
				if ver, ok := shadow.Version(k); ok && rng.Intn(4) > 0 {
					item.Version = ver
				}
				tx.RWSet.Reads = append(tx.RWSet.Reads, item)
			}
			w := protocol.WriteItem{Key: keys[rng.Intn(len(keys))], Value: []byte("v")}
			if rng.Intn(8) == 0 {
				w.Delete = true
				w.Value = nil
			}
			tx.RWSet.Writes = []protocol.WriteItem{w}
			txs = append(txs, tx)
		}
		blk, err := chain.Seal(txs, nil)
		if err != nil {
			t.Fatal(err)
		}
		shadowCodes := ComputeVerdicts(shadow, blk.Header.Number, txs, opts)
		dbCodes, err := ValidateAndCommit(db, blk, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range txs {
			if shadowCodes[i] != dbCodes[i] {
				t.Fatalf("block %d tx %d: shadow %v, database %v", block, i, shadowCodes[i], dbCodes[i])
			}
			if dbCodes[i] != protocol.Valid {
				conflicts++
			}
		}
		shadow.Apply(blk.Header.Number, txs, shadowCodes)
		if shadow.Height() != blk.Header.Number {
			t.Fatalf("shadow height %d after block %d", shadow.Height(), blk.Header.Number)
		}
	}
	if conflicts == 0 {
		t.Error("no MVCC conflicts generated — the equivalence above is vacuous")
	}
}

// TestShadowTombstones checks deletes shadow exactly like the database
// reports them: a deleted key reads as absent, and a read carrying the
// pre-delete version is stale.
func TestShadowTombstones(t *testing.T) {
	shadow := NewShadowState()
	writer := &protocol.Transaction{
		ID:    "w",
		RWSet: protocol.RWSet{Writes: []protocol.WriteItem{{Key: "k", Value: []byte("v")}}},
	}
	shadow.Apply(1, []*protocol.Transaction{writer}, []protocol.ValidationCode{protocol.Valid})
	if ver, ok := shadow.Version("k"); !ok || ver != seqno.Commit(1, 1) {
		t.Fatalf("k = %v, %v", ver, ok)
	}

	deleter := &protocol.Transaction{
		ID:    "d",
		RWSet: protocol.RWSet{Writes: []protocol.WriteItem{{Key: "k", Delete: true}}},
	}
	shadow.Apply(2, []*protocol.Transaction{deleter}, []protocol.ValidationCode{protocol.Valid})
	if _, ok := shadow.Version("k"); ok {
		t.Error("deleted key still has a version")
	}

	// A reader that observed (1,1) is stale against the tombstone; a reader
	// observing absence is fresh — byte-for-byte what the database decides.
	staleReader := &protocol.Transaction{
		ID:    "stale",
		RWSet: protocol.RWSet{Reads: []protocol.ReadItem{{Key: "k", Version: seqno.Commit(1, 1)}}},
	}
	freshReader := &protocol.Transaction{
		ID:    "fresh",
		RWSet: protocol.RWSet{Reads: []protocol.ReadItem{{Key: "k"}}},
	}
	codes := ComputeVerdicts(shadow, 3, []*protocol.Transaction{staleReader, freshReader}, Options{MVCC: true})
	if codes[0] != protocol.MVCCConflict || codes[1] != protocol.Valid {
		t.Errorf("codes = %v", codes)
	}
}

// TestShadowInvalidWritesIgnored checks only Valid transactions advance the
// shadow, mirroring statedb.ApplyBlock's treatment of aborted writes.
func TestShadowInvalidWritesIgnored(t *testing.T) {
	shadow := NewShadowState()
	tx := &protocol.Transaction{
		ID:    "aborted",
		RWSet: protocol.RWSet{Writes: []protocol.WriteItem{{Key: "k", Value: []byte("v")}}},
	}
	shadow.Apply(1, []*protocol.Transaction{tx}, []protocol.ValidationCode{protocol.MVCCConflict})
	if _, ok := shadow.Version("k"); ok {
		t.Error("aborted transaction's write entered the shadow")
	}
	if shadow.Len() != 0 {
		t.Errorf("shadow tracks %d keys", shadow.Len())
	}
}

// TestComputeVerdictsEndorsementPolicy checks the endorsement half of the
// shared verdict function: the same MSP/policy switches the peers run.
func TestComputeVerdictsEndorsementPolicy(t *testing.T) {
	msp := identity.NewService()
	peer, err := msp.Enroll("peer1", identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	good := &protocol.Transaction{
		ID:    "good",
		RWSet: protocol.RWSet{Writes: []protocol.WriteItem{{Key: "x", Value: []byte("1")}}},
	}
	good.Endorsements = []protocol.Endorsement{{EndorserID: "peer1", Signature: peer.Sign(good.Digest())}}
	unsigned := &protocol.Transaction{
		ID:    "unsigned",
		RWSet: protocol.RWSet{Writes: []protocol.WriteItem{{Key: "y", Value: []byte("1")}}},
	}
	opts := Options{
		MVCC:   true,
		MSP:    msp,
		Policy: identity.SignedBy("peer1"),
	}
	txs := []*protocol.Transaction{good, unsigned}
	codes := ComputeVerdicts(NewShadowState(), 1, txs, opts)
	if codes[0] != protocol.Valid || codes[1] != protocol.EndorsementFailure {
		t.Errorf("codes = %v", codes)
	}
	// The parallel precheck the orderers use is verdict-identical to the
	// inline sequential pass, for any worker count.
	for _, workers := range []int{1, 2, 8} {
		failed := PrecheckEndorsements(txs, opts, workers)
		got := ComputeVerdictsPrechecked(NewShadowState(), 1, txs, opts, failed)
		for i := range codes {
			if got[i] != codes[i] {
				t.Errorf("workers=%d tx %d: %v want %v", workers, i, got[i], codes[i])
			}
		}
	}
	if PrecheckEndorsements(txs, Options{MVCC: true}, 4) != nil {
		t.Error("precheck without MSP/policy should report nothing to check")
	}
}

// TestDBVersionsAdapter pins the statedb adapter the peers' overlay
// resolution uses: latest version for live keys, absence for deletes.
func TestDBVersionsAdapter(t *testing.T) {
	db := newState(t)
	seed(t, db, 1, map[string]string{"a": "1"})
	src := DBVersions(db)
	if ver, ok := src.Version("a"); !ok || ver != seqno.Commit(1, 1) {
		t.Errorf("a = %v, %v", ver, ok)
	}
	if _, ok := src.Version("ghost"); ok {
		t.Error("absent key has a version")
	}
	if err := db.ApplyBlock(2, []statedb.BlockWrites{{Pos: 1, Writes: []protocol.WriteItem{{Key: "a", Delete: true}}}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := src.Version("a"); ok {
		t.Error("deleted key still has a version")
	}
}
