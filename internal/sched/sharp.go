package sched

import (
	"fmt"

	"fabricsharp/internal/core"
	"fabricsharp/internal/protocol"
)

// Sharp is the paper's scheduler: internal/core's fine-grained concurrency
// control wired into the Scheduler interface. Unserializable transactions
// are dropped before ordering (Algorithm 2) and the survivors are emitted in
// a serializable commit order at formation (Algorithm 3), so the validation
// phase runs no concurrency check at all.
type Sharp struct {
	mgr    *core.Manager
	byID   map[protocol.TxID]*protocol.Transaction
	timing Timing
}

// NewSharp returns the FabricSharp scheduler.
func NewSharp(opts Options) *Sharp {
	return &Sharp{
		mgr: core.NewManager(core.Options{
			MaxSpan:      opts.MaxSpan,
			BloomBits:    opts.BloomBits,
			BloomHashes:  opts.BloomHashes,
			RelayBlocks:  opts.RelayBlocks,
			CompactEvery: opts.CompactEvery,
			Keys:         opts.Keys,
			CW:           opts.CW,
			CR:           opts.CR,
		}),
		byID: map[protocol.TxID]*protocol.Transaction{},
	}
}

// System implements Scheduler.
func (s *Sharp) System() System { return SystemSharp }

// Manager exposes the underlying concurrency control (stats for the
// evaluation figures).
func (s *Sharp) Manager() *core.Manager { return s.mgr }

// OnArrival implements Scheduler: Algorithm 2.
func (s *Sharp) OnArrival(tx *protocol.Transaction) (protocol.ValidationCode, error) {
	w := startWatch()
	code, err := s.mgr.OnArrival(tx.ID, tx.SnapshotBlock, tx.RWSet.ReadKeys(), tx.RWSet.WriteKeys())
	s.timing.Arrivals++
	s.timing.ArrivalNS += w.elapsedNS()
	if err != nil {
		return 0, err
	}
	if code == protocol.Valid {
		s.byID[tx.ID] = tx
	}
	return code, nil
}

// OnBlockFormation implements Scheduler: Algorithm 3.
func (s *Sharp) OnBlockFormation() (FormationResult, error) {
	w := startWatch()
	ids, block, err := s.mgr.OnBlockFormation()
	if err != nil {
		return FormationResult{}, err
	}
	res := FormationResult{Block: block, Ordered: make([]*protocol.Transaction, 0, len(ids))}
	for _, id := range ids {
		tx, ok := s.byID[id]
		if !ok {
			return FormationResult{}, fmt.Errorf("sched: sharp lost transaction %s", id)
		}
		delete(s.byID, id)
		res.Ordered = append(res.Ordered, tx)
	}
	if len(ids) > 0 {
		s.timing.Formations++
		s.timing.FormationNS += w.elapsedNS()
	}
	return res, nil
}

// OnBlockCommitted implements Scheduler: formation already fixed everything.
func (s *Sharp) OnBlockCommitted(uint64, []*protocol.Transaction, []protocol.ValidationCode) {}

// NeedsMVCCValidation implements Scheduler: the ordering phase guarantees
// serializability (Figure 8: "No Concurrency Validation").
func (s *Sharp) NeedsMVCCValidation() bool { return false }

// PendingCount implements Scheduler.
func (s *Sharp) PendingCount() int { return s.mgr.PendingCount() }

// ResidentKeys implements Scheduler.
func (s *Sharp) ResidentKeys() int { return s.mgr.Keys().Len() }

// FastForward implements Scheduler.
func (s *Sharp) FastForward(height uint64) error {
	if err := s.mgr.FastForward(height); err != nil {
		return err
	}
	return nil
}

// Timing implements Scheduler.
func (s *Sharp) Timing() Timing { return s.timing }
