// Package kvstore stubs the durable-state surface the errdrop fixture
// exercises: ApplyBatch and Persist (both as a method and a func-valued
// hook field) are fatal-propagation entry points.
package kvstore

type Batch struct{}

type Store struct {
	// Persist is the durable-flush hook; errdrop polices calls through it.
	Persist func() error
}

func (s *Store) ApplyBatch(b Batch) error { return nil }
