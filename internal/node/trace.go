package node

import (
	"fmt"
	"time"

	"fabricsharp/internal/trace"
	"fabricsharp/internal/transport"
	"fabricsharp/internal/wire"
)

// dumpToWire converts a drained ring into its wire shape. The wire package
// stays leaf-level (no internal/trace import), so the node layer owns the
// conversion in both directions.
func dumpToWire(d trace.Dump) *wire.TraceDump {
	out := &wire.TraceDump{Node: d.Node, Role: d.Role, Recorded: d.Recorded}
	if len(d.Events) > 0 {
		out.Events = make([]wire.TraceEvent, len(d.Events))
		for i, ev := range d.Events {
			out.Events[i] = wire.TraceEvent{
				TxID:   ev.TxID,
				Stage:  uint8(ev.Stage),
				Block:  ev.Block,
				WallNS: ev.WallNS,
				Seq:    ev.Seq,
			}
		}
	}
	return out
}

// wireToDump is the inverse of dumpToWire.
func wireToDump(t *wire.TraceDump) trace.Dump {
	d := trace.Dump{Node: t.Node, Role: t.Role, Recorded: t.Recorded}
	if len(t.Events) > 0 {
		d.Events = make([]trace.Event, len(t.Events))
		for i, ev := range t.Events {
			d.Events[i] = trace.Event{
				TxID:   ev.TxID,
				Stage:  trace.Stage(ev.Stage),
				Block:  ev.Block,
				WallNS: ev.WallNS,
				Seq:    ev.Seq,
			}
		}
	}
	return d
}

// TraceAt drains one node's stage-tracing ring — any orderer or peer
// address — without the Client's failover machinery.
func TraceAt(addr string, timeout time.Duration) (trace.Dump, error) {
	conn, err := transport.DialRetry(addr, time.Now().Add(timeout))
	if err != nil {
		return trace.Dump{}, err
	}
	defer conn.Close()
	typ, resp, err := conn.Call(wire.MsgTraceReq, wire.EncodeTraceReq(wire.TraceReq{}))
	if err != nil {
		return trace.Dump{}, fmt.Errorf("node: trace: %w", err)
	}
	if typ != wire.MsgTraceDump {
		return trace.Dump{}, fmt.Errorf("node: trace answered with %v", typ)
	}
	dump, err := wire.DecodeTraceDump(resp)
	if err != nil {
		return trace.Dump{}, fmt.Errorf("node: trace: %w", err)
	}
	return wireToDump(dump), nil
}

// FetchTimelines drains every named node's ring and joins the per-node
// events by TxID into end-to-end timelines — the client side of the
// observability loop behind `sharpnet trace` and `sharpnet load`. Each
// address gets its own dial budget; the first failure aborts (a partial
// merge would silently understate stage coverage).
func FetchTimelines(addrs []string, timeout time.Duration) ([]trace.Timeline, []trace.Dump, error) {
	dumps := make([]trace.Dump, 0, len(addrs))
	for _, addr := range addrs {
		d, err := TraceAt(addr, timeout)
		if err != nil {
			return nil, nil, fmt.Errorf("node: fetch timelines from %s: %w", addr, err)
		}
		dumps = append(dumps, d)
	}
	return trace.Merge(dumps), dumps, nil
}
