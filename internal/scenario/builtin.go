package scenario

import (
	"fmt"
	"math/rand"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/statedb"
	"fabricsharp/internal/workload"
)

// Pool-size defaults. Each appears exactly once so a scenario's Generator
// and Genesis can never disagree about how much state the run assumes.
const (
	defaultAccounts = 10000 // single-mod, msmallbank, mixed (paper Section 5.2)
	defaultBidders  = 100   // auction
	defaultTokens   = 1000  // token
	defaultMetrics  = 200   // analytics
)

// Builtin returns the stock registry: the five evaluation workloads of
// Section 5.2 / Figure 1 plus the auction, token, and analytics scenarios.
// It builds the registry fresh on every call (descriptors are cheap values),
// keeping the package free of init-order and global-state concerns.
func Builtin() *Registry {
	r := NewRegistry()
	for _, s := range []Scenario{
		noop(), singleMod(), modifiedSmallbank(), createAccount(), mixedSmallbank(),
		auction(), token(), analytics(),
	} {
		if err := r.Register(s); err != nil {
			// Unreachable for the compile-time descriptors above; a failure
			// here is a programming error, not an input error.
			panic(err)
		}
	}
	return r
}

// Get resolves a name against the builtin registry.
func Get(name string) (Scenario, bool) { return Builtin().Get(name) }

// Names lists the builtin registry, sorted.
func Names() []string { return Builtin().Names() }

// AllContracts is the default contract set for registry-backed consumers:
// every builtin scenario's contracts plus the supply-chain demo contract
// (invoked by the examples, not by any generator).
func AllContracts() []chaincode.Contract {
	return Builtin().Contracts(chaincode.SupplyChain{})
}

func noop() Scenario {
	return Scenario{
		Name: "noop",
		Doc:  "transactions with no data access (Figure 1 baseline)",
		Contracts: func() []chaincode.Contract {
			return []chaincode.Contract{chaincode.KVContract{}}
		},
		Generator: func(rng *rand.Rand, p Params) (workload.Generator, error) {
			return workload.NoOp{}, nil
		},
	}
}

func singleMod() Scenario {
	return Scenario{
		Name: "singlemod",
		Doc:  "single zipfian read-modify-writes (Figure 1)",
		Contracts: func() []chaincode.Contract {
			return []chaincode.Contract{chaincode.KVContract{}}
		},
		Generator: func(rng *rand.Rand, p Params) (workload.Generator, error) {
			n := p.AccountsOr(defaultAccounts)
			if n < 1 {
				return nil, fmt.Errorf("scenario: singlemod needs at least one account, got %d", n)
			}
			return workload.NewSingleMod(rng, n, p.Theta), nil
		},
		Genesis: func(p Params) []protocol.WriteItem {
			return workload.AccountGenesis(p.AccountsOr(defaultAccounts))
		},
		Verify: func(db *statedb.DB, p Params) error {
			return wantIntPopulation(db, chaincode.AccountKey(""), p.AccountsOr(defaultAccounts))
		},
	}
}

func modifiedSmallbank() Scenario {
	return Scenario{
		Name: "msmallbank",
		Doc:  "Fabric++ modified Smallbank: 4 reads + 4 writes with hot ratios (Figures 10-14)",
		Contracts: func() []chaincode.Contract {
			return []chaincode.Contract{chaincode.ModifiedSmallbank{}}
		},
		Generator: func(rng *rand.Rand, p Params) (workload.Generator, error) {
			return workload.NewModifiedSmallbank(rng, p.AccountsOr(defaultAccounts), p.ReadHot, p.WriteHot)
		},
		Genesis: func(p Params) []protocol.WriteItem {
			return workload.AccountGenesis(p.AccountsOr(defaultAccounts))
		},
		Verify: func(db *statedb.DB, p Params) error {
			return wantIntPopulation(db, chaincode.AccountKey(""), p.AccountsOr(defaultAccounts))
		},
	}
}

func createAccount() Scenario {
	return Scenario{
		Name: "create",
		Doc:  "contention-free Smallbank account creation (Figure 15)",
		Contracts: func() []chaincode.Contract {
			return []chaincode.Contract{chaincode.Smallbank{}}
		},
		Generator: func(rng *rand.Rand, p Params) (workload.Generator, error) {
			return &workload.CreateAccount{}, nil
		},
		Verify: func(db *statedb.DB, p Params) error {
			// Each committed creation blind-writes one checking and one
			// savings balance in the same transaction.
			_, checking, err := prefixStats(db, chaincode.CheckingKey(""))
			if err != nil {
				return err
			}
			_, savings, err := prefixStats(db, chaincode.SavingsKey(""))
			if err != nil {
				return err
			}
			if checking != savings {
				return fmt.Errorf("scenario: %d checking vs %d savings accounts; creations must write both", checking, savings)
			}
			return nil
		},
	}
}

func mixedSmallbank() Scenario {
	return Scenario{
		Name: "mixed",
		Doc:  "Smallbank mix: 50% queries, 30% single-account, 20% two-account updates (Figure 15)",
		Contracts: func() []chaincode.Contract {
			return []chaincode.Contract{chaincode.Smallbank{}}
		},
		Generator: func(rng *rand.Rand, p Params) (workload.Generator, error) {
			return workload.NewMixedSmallbank(rng, p.AccountsOr(defaultAccounts), p.Theta)
		},
		Genesis: func(p Params) []protocol.WriteItem {
			return workload.SmallbankGenesis(p.AccountsOr(defaultAccounts))
		},
		Verify: func(db *statedb.DB, p Params) error {
			n := p.AccountsOr(defaultAccounts)
			if err := wantIntPopulation(db, chaincode.CheckingKey(""), n); err != nil {
				return err
			}
			return wantIntPopulation(db, chaincode.SavingsKey(""), n)
		},
	}
}

func auction() Scenario {
	return Scenario{
		Name: "auction",
		Doc:  "hot-key auction: every bid contends on one object",
		Contracts: func() []chaincode.Contract {
			return []chaincode.Contract{chaincode.Auction{}}
		},
		Generator: func(rng *rand.Rand, p Params) (workload.Generator, error) {
			return workload.NewAuction(rng, p.AccountsOr(defaultBidders))
		},
		Genesis: func(p Params) []protocol.WriteItem {
			return workload.AuctionGenesis()
		},
		Verify: func(db *statedb.DB, p Params) error {
			high, err := intAt(db, chaincode.AuctionHighKey)
			if err != nil {
				return err
			}
			best, err := maxPrefix(db, chaincode.BidKey(""))
			if err != nil {
				return err
			}
			// Every accepted bid raised the high-bid key in the same
			// transaction that recorded the bid, so under any serializable
			// schedule the standing high equals the best recorded bid (and
			// stays at its genesis 0 until the first acceptance).
			if high != best {
				return fmt.Errorf("scenario: standing high bid %d but best recorded bid %d", high, best)
			}
			if leader, ok := db.Get(chaincode.AuctionLeaderKey); ok {
				lb, err := intAt(db, chaincode.BidKey(string(leader.Value)))
				if err != nil {
					return err
				}
				if lb != high {
					return fmt.Errorf("scenario: leader %q recorded %d, standing high is %d", leader.Value, lb, high)
				}
			} else if high != 0 {
				return fmt.Errorf("scenario: high bid %d with no leader", high)
			}
			return nil
		},
	}
}

func token() Scenario {
	return Scenario{
		Name: "token",
		Doc:  "uniform token transfers under a fixed supply (money conservation)",
		Contracts: func() []chaincode.Contract {
			return []chaincode.Contract{chaincode.Token{}}
		},
		Generator: func(rng *rand.Rand, p Params) (workload.Generator, error) {
			return workload.NewTokenTransfer(rng, p.AccountsOr(defaultTokens))
		},
		Genesis: func(p Params) []protocol.WriteItem {
			return workload.TokenGenesis(p.AccountsOr(defaultTokens))
		},
		Verify: func(db *statedb.DB, p Params) error {
			n := p.AccountsOr(defaultTokens)
			sum, count, err := prefixStats(db, chaincode.TokenKey(""))
			if err != nil {
				return err
			}
			if count != n {
				return fmt.Errorf("scenario: %d token accounts, want %d", count, n)
			}
			supply := int64(n) * workload.TokenInitialBalance
			if sum != supply {
				return fmt.Errorf("scenario: total balance %d, issued supply %d — conservation violated", sum, supply)
			}
			return nil
		},
	}
}

func analytics() Scenario {
	return Scenario{
		Name: "analytics",
		Doc:  "read-heavy range scans with point updates under a running aggregate",
		Contracts: func() []chaincode.Contract {
			return []chaincode.Contract{chaincode.Analytics{}}
		},
		Generator: func(rng *rand.Rand, p Params) (workload.Generator, error) {
			return workload.NewAnalytics(rng, p.AccountsOr(defaultMetrics))
		},
		Genesis: func(p Params) []protocol.WriteItem {
			return workload.AnalyticsGenesis(p.AccountsOr(defaultMetrics))
		},
		Verify: func(db *statedb.DB, p Params) error {
			n := p.AccountsOr(defaultMetrics)
			sum, count, err := prefixStats(db, chaincode.MetricKey(""))
			if err != nil {
				return err
			}
			if count != n {
				return fmt.Errorf("scenario: %d metrics, want %d", count, n)
			}
			agg, err := intAt(db, chaincode.MetricSumKey)
			if err != nil {
				return err
			}
			if agg != sum {
				return fmt.Errorf("scenario: aggregate %d but metrics sum to %d", agg, sum)
			}
			return nil
		},
	}
}
