// Package core is the maporder fixture corpus: each function is one
// recognizer case. `// want <analyzer> "substr"` marks a line that must
// produce an unsuppressed diagnostic; `// wantsup` a suppressed one; a
// bare line must stay silent. The harness in fixtures_test.go enforces
// exact agreement both ways.
package core

import "sort"

func flagPlainCollect(m map[string]int) []string {
	var keys []string
	for k := range m { // want maporder "range over map"
		keys = append(keys, k)
	}
	return keys // order escapes unsorted
}

func okAppendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func okGuardedAppendThenSort(m map[string]int) []string {
	var keys []string
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

func flagAppendUsedBeforeSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want maporder "range over map"
		keys = append(keys, k)
	}
	first := keys[0] // order observed before any sort
	_ = first
	sort.Strings(keys)
	return keys
}

func okDeleteOnly(m, dead map[string]int) {
	for k := range dead {
		delete(m, k)
	}
}

func okSelfDelete(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

func okGuardedCounter(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

func okCommutativeAccum(m map[string]int) (sum int, bits int) {
	for _, v := range m {
		sum += v
		bits |= v
	}
	return sum, bits
}

func flagOrderDependentAssign(m map[string]int) int {
	last := 0
	for _, v := range m { // want maporder "range over map"
		last = v // plain overwrite: final value depends on visit order
	}
	return last
}

func flagReadAfterWriteAccum(m map[string]int) int {
	best := 0
	for _, v := range m { // want maporder "range over map"
		if v > best { // reads the accumulator another iteration wrote
			best = v
		}
	}
	return best
}

func okKeyedStoreByRangeKey(src map[string]int) map[string]int {
	dst := make(map[string]int, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

func okIdempotentStore(src map[string]int, hit map[int]bool) {
	for _, v := range src {
		hit[v] = true
	}
}

func flagCollidingStore(src map[string]int, last map[int]string) {
	for k, v := range src { // want maporder "range over map"
		last[v] = k // non-unique slot, non-idempotent value: last writer wins
	}
}

func flagCallInBody(m map[string]int) {
	for k := range m { // want maporder "range over map"
		observe(k) // arbitrary call: its side effects see visit order
	}
}

func observe(string) {}

func okNestedCommute(outer map[string]map[string]int) int {
	total := 0
	for _, inner := range outer {
		for _, v := range inner {
			total += v
		}
	}
	return total
}

func okLocalDefine(src map[string][]int) int {
	total := 0
	for _, vs := range src {
		n := len(vs)
		total += n
	}
	return total
}

func okSliceRangeIsNotAMap(xs []int) []int {
	var out []int
	for _, v := range xs {
		out = append(out, v)
	}
	return out
}

func suppressedVisit(m map[string]int) {
	//sharp:orderinvariant fixture: reviewed suppression — observe is order-blind in this corpus
	for k := range m { // wantsup maporder "range over map"
		observe(k)
	}
}
