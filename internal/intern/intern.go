// Package intern maps record-key strings to dense uint32 identifiers.
//
// The ordering-phase hot path (internal/core, internal/sched) resolves the
// same contract keys thousands of times per block: every map keyed by string
// re-hashes the full key bytes on every probe. Interning turns those probes
// into slice indexing — each scheduler owns one Table, interns a key the
// first time it appears in its consensus stream, and thereafter passes the
// uint32 Key around.
//
// Determinism: Keys are assigned in first-appearance order. Replicated
// orderers consume the same consensus stream in the same order, so every
// replica's table assigns identical Keys to identical strings — interning is
// a pure representation change and cannot alter scheduler decisions
// (asserted by the cross-peer agreement tests).
//
// Tables are not safe for concurrent use; every consumer in this repository
// is single-goroutine by construction (the serialized consensus stream).
package intern

// Key is a dense identifier for an interned string. Keys count up from 0 in
// first-appearance order.
type Key uint32

// Table is a string interner. The zero value is not usable; use NewTable.
type Table struct {
	ids  map[string]Key
	strs []string
}

// NewTable returns an empty interner.
func NewTable() *Table {
	return &Table{ids: make(map[string]Key)}
}

// Intern returns the Key for s, assigning the next dense Key on first sight.
func (t *Table) Intern(s string) Key {
	if k, ok := t.ids[s]; ok {
		return k
	}
	k := Key(len(t.strs))
	t.ids[s] = k
	t.strs = append(t.strs, s)
	return k
}

// InternAll interns every string of keys, appending the Keys to dst (pass a
// reusable scratch buffer to keep the hot path allocation-free).
func (t *Table) InternAll(dst []Key, keys []string) []Key {
	for _, s := range keys {
		dst = append(dst, t.Intern(s))
	}
	return dst
}

// Lookup resolves k back to its string. It panics on a Key the table never
// issued — that is a programming error, never data-dependent.
func (t *Table) Lookup(k Key) string { return t.strs[k] }

// Find returns the Key already assigned to s, without interning it.
func (t *Table) Find(s string) (Key, bool) {
	k, ok := t.ids[s]
	return k, ok
}

// Len returns the number of interned strings; Keys 0..Len()-1 are valid.
func (t *Table) Len() int { return len(t.strs) }

// Dropped marks, in the remap slice Compact returns, a Key the compaction
// discarded. It is never a valid Key (tables are bounded far below 2^32-1
// entries by memory alone).
const Dropped = Key(0xFFFFFFFF)

// Compact rebuilds the table in place, retaining only the keys for which
// live(k) is true and reassigning dense Keys in ascending old-Key order.
// It returns remap, indexed by old Key: remap[old] is the retained key's new
// Key, or Dropped.
//
// Determinism: the new assignment is a pure function of the old table and
// the live set. Replicated orderers compact at the same stream position with
// a liveness predicate derived from stream-determined state (retained index
// entries, pending sets, live graph nodes), so every replica produces a
// bit-identical remapping — the property the cross-replica compaction
// agreement tests assert.
//
// A dropped key that reappears later is simply re-interned under a fresh
// dense Key; callers must therefore never hold a Key across a compaction
// without translating it through remap.
func (t *Table) Compact(live func(Key) bool) []Key {
	remap := make([]Key, len(t.strs))
	kept := t.strs[:0] // new index <= old index, so in-place is safe
	for old, s := range t.strs {
		if live(Key(old)) {
			remap[old] = Key(len(kept))
			kept = append(kept, s)
		} else {
			remap[old] = Dropped
		}
	}
	for i := len(kept); i < len(t.strs); i++ {
		t.strs[i] = "" // release dropped strings to the GC
	}
	t.strs = kept
	// Rebuild the map outright: Go maps never shrink, and reclaiming the
	// bucket memory of dropped keys is the point of compacting.
	ids := make(map[string]Key, len(kept))
	for i, s := range kept {
		ids[s] = Key(i)
	}
	t.ids = ids
	return remap
}

// RemapInPlace rewrites every Key of keys through remap. It panics on a
// Dropped key — callers compact only after marking every key they still
// reference as live, so hitting a dropped key is a programming error.
func RemapInPlace(keys []Key, remap []Key) {
	for i, k := range keys {
		nk := remap[k]
		if nk == Dropped {
			panic("intern: live structure references a dropped key")
		}
		keys[i] = nk
	}
}

// RemapSlots rebuilds a KeyID-indexed slot table after a compaction:
// retained keys' slots move to their new index (keeping their backing
// arrays), dropped keys' slots are released. slots may be shorter than
// remap when trailing keys were interned but never indexed.
func RemapSlots[T any](slots [][]T, remap []Key, newLen int) [][]T {
	out := make([][]T, newLen)
	for old, s := range slots {
		if nk := remap[old]; nk != Dropped {
			out[nk] = s
		}
	}
	return out
}
