package core

import (
	"fmt"
	"math/rand"
	"testing"

	"fabricsharp/internal/intern"
	"fabricsharp/internal/kvstore"
	"fabricsharp/internal/seqno"
)

func newKVIndexForTest(t *testing.T, keys *intern.Table) *KVIndex {
	t.Helper()
	db, err := kvstore.Open(kvstore.Options{}) // in-memory
	if err != nil {
		t.Fatal(err)
	}
	return NewKVIndex(db, keys)
}

func testIndexBasics(t *testing.T, keys *intern.Table, idx VersionIndex) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	kA, kB, kMissing := keys.Intern("A"), keys.Intern("B"), keys.Intern("missing")
	must(idx.Put(kA, seqno.Commit(3, 2), "txn1"))
	must(idx.Put(kA, seqno.Commit(4, 1), "txn7"))
	must(idx.Put(kA, seqno.Commit(5, 3), "txn9"))
	must(idx.Put(kB, seqno.Commit(4, 2), "txn8"))

	// Last
	if id, ok, _ := idx.Last(kA); !ok || id != "txn9" {
		t.Errorf("Last(A) = %v,%v", id, ok)
	}
	if _, ok, _ := idx.Last(kMissing); ok {
		t.Error("Last(missing) found something")
	}
	// Before: the paper's CW.Before(key, seq) — last committed strictly
	// earlier than seq.
	if id, ok, _ := idx.Before(kA, seqno.Snapshot(3)); !ok || id != "txn1" {
		t.Errorf("Before(A,(4,0)) = %v,%v want txn1", id, ok)
	}
	if _, ok, _ := idx.Before(kA, seqno.Commit(3, 2)); ok {
		t.Error("Before at the exact first seq should be empty")
	}
	// After: CW[key][seq:].
	got, _ := idx.After(nil, kA, seqno.Snapshot(3))
	if fmt.Sprint(got) != "[txn7 txn9]" {
		t.Errorf("After(A,(4,0)) = %v", got)
	}
	got, _ = idx.After(nil, kA, seqno.Seq{})
	if fmt.Sprint(got) != "[txn1 txn7 txn9]" {
		t.Errorf("After(A,zero) = %v", got)
	}
	// After appends to the passed buffer.
	buf := []TxID{"sentinel"}
	got, _ = idx.After(buf, kA, seqno.Snapshot(3))
	if fmt.Sprint(got) != "[sentinel txn7 txn9]" {
		t.Errorf("After with buffer = %v", got)
	}
	// All
	got, _ = idx.All(nil, kB)
	if fmt.Sprint(got) != "[txn8]" {
		t.Errorf("All(B) = %v", got)
	}
	// PruneBefore drops block < 4.
	must(idx.PruneBefore(4))
	got, _ = idx.All(nil, kA)
	if fmt.Sprint(got) != "[txn7 txn9]" {
		t.Errorf("after prune All(A) = %v", got)
	}
	if id, ok, _ := idx.Last(kB); !ok || id != "txn8" {
		t.Errorf("prune damaged B: %v,%v", id, ok)
	}
}

func TestMemIndexBasics(t *testing.T) {
	testIndexBasics(t, intern.NewTable(), NewMemIndex())
}

func TestKVIndexBasics(t *testing.T) {
	keys := intern.NewTable()
	testIndexBasics(t, keys, newKVIndexForTest(t, keys))
}

func TestIndexDifferential(t *testing.T) {
	// MemIndex and KVIndex must agree on every query under a random
	// operation stream — the kvstore-backed index is the LevelDB-equivalent
	// layout, the memory index is the model.
	keys := intern.NewTable()
	mem := NewMemIndex()
	kv := newKVIndexForTest(t, keys)
	rng := rand.New(rand.NewSource(5))
	var ks []intern.Key
	for _, s := range []string{"A", "B", "acct:17", "checking:alice"} {
		ks = append(ks, keys.Intern(s))
	}
	seq := seqno.Seq{Block: 1, Pos: 1}
	for i := 0; i < 500; i++ {
		key := ks[rng.Intn(len(ks))]
		id := TxID(fmt.Sprintf("t%d", i))
		if err := mem.Put(key, seq, id); err != nil {
			t.Fatal(err)
		}
		if err := kv.Put(key, seq, id); err != nil {
			t.Fatal(err)
		}
		// advance commit seq
		if rng.Intn(3) == 0 {
			seq = seqno.Commit(seq.Block+1, 1)
		} else {
			seq = seqno.Commit(seq.Block, seq.Pos+1)
		}
		if rng.Intn(40) == 0 {
			h := seq.Block / 2
			if err := mem.PruneBefore(h); err != nil {
				t.Fatal(err)
			}
			if err := kv.PruneBefore(h); err != nil {
				t.Fatal(err)
			}
		}
		// Compare queries at random probe points.
		probe := seqno.Commit(uint64(rng.Intn(int(seq.Block)+1)), uint32(rng.Intn(4)))
		for _, k := range ks {
			ma, _ := mem.After(nil, k, probe)
			ka, _ := kv.After(nil, k, probe)
			if fmt.Sprint(ma) != fmt.Sprint(ka) {
				t.Fatalf("After(%d,%v) diverged: %v vs %v", k, probe, ma, ka)
			}
			mb, mok, _ := mem.Before(k, probe)
			kb, kok, _ := kv.Before(k, probe)
			if mok != kok || mb != kb {
				t.Fatalf("Before(%d,%v) diverged: %v,%v vs %v,%v", k, probe, mb, mok, kb, kok)
			}
			ml, mok2, _ := mem.Last(k)
			kl, kok2, _ := kv.Last(k)
			if mok2 != kok2 || ml != kl {
				t.Fatalf("Last(%d) diverged", k)
			}
			mall, _ := mem.All(nil, k)
			kall, _ := kv.All(nil, k)
			if fmt.Sprint(mall) != fmt.Sprint(kall) {
				t.Fatalf("All(%d) diverged: %v vs %v", k, mall, kall)
			}
		}
	}
}

// TestIndexOutOfOrderInsertAgreement covers MemIndex's defensive out-of-
// order insert branch and proves KVIndex takes the equivalent path "for
// free": its on-disk layout sorts by (record key, commit seq), so a late
// Put of an earlier sequence lands in sorted position without special
// casing. Both indices must answer every query identically afterwards.
func TestIndexOutOfOrderInsertAgreement(t *testing.T) {
	keys := intern.NewTable()
	mem := NewMemIndex()
	kv := newKVIndexForTest(t, keys)
	k := keys.Intern("K")
	// Arrive out of order: (5,1) then (3,1) then (4,2).
	inserts := []struct {
		seq seqno.Seq
		id  TxID
	}{
		{seqno.Commit(5, 1), "late"},
		{seqno.Commit(3, 1), "early"},
		{seqno.Commit(4, 2), "middle"},
	}
	for _, in := range inserts {
		if err := mem.Put(k, in.seq, in.id); err != nil {
			t.Fatal(err)
		}
		if err := kv.Put(k, in.seq, in.id); err != nil {
			t.Fatal(err)
		}
	}
	for _, idx := range []VersionIndex{mem, kv} {
		if got, _ := idx.All(nil, k); fmt.Sprint(got) != "[early middle late]" {
			t.Errorf("%T All = %v, want [early middle late]", idx, got)
		}
		if got, _ := idx.After(nil, k, seqno.Snapshot(3)); fmt.Sprint(got) != "[middle late]" {
			t.Errorf("%T After((4,0)) = %v, want [middle late]", idx, got)
		}
		if id, ok, _ := idx.Before(k, seqno.Snapshot(4)); !ok || id != "middle" {
			t.Errorf("%T Before((5,0)) = %v,%v, want middle", idx, id, ok)
		}
		if id, ok, _ := idx.Last(k); !ok || id != "late" {
			t.Errorf("%T Last = %v,%v, want late", idx, id, ok)
		}
	}
	// Pruning after an out-of-order insert keeps both aligned too.
	if err := mem.PruneBefore(4); err != nil {
		t.Fatal(err)
	}
	if err := kv.PruneBefore(4); err != nil {
		t.Fatal(err)
	}
	for _, idx := range []VersionIndex{mem, kv} {
		if got, _ := idx.All(nil, k); fmt.Sprint(got) != "[middle late]" {
			t.Errorf("%T post-prune All = %v, want [middle late]", idx, got)
		}
	}
}

// TestIndexMarkLiveRemapAgreement drives MemIndex and KVIndex through the
// compaction protocol side by side: after identical puts and pruning, both
// must report the same liveness set, and after the shared table compacts,
// both must answer every query identically through the remapped KeyIDs.
func TestIndexMarkLiveRemapAgreement(t *testing.T) {
	keys := intern.NewTable()
	mem := NewMemIndex()
	kv := newKVIndexForTest(t, keys)
	var ks []intern.Key
	for i := 0; i < 6; i++ {
		ks = append(ks, keys.Intern(fmt.Sprintf("key%d", i)))
	}
	// key0..key2 get entries in old blocks (pruned away), key3..key5 recent.
	for i, k := range ks {
		seq := seqno.Commit(uint64(i+1), 1)
		id := TxID(fmt.Sprintf("t%d", i))
		if err := mem.Put(k, seq, id); err != nil {
			t.Fatal(err)
		}
		if err := kv.Put(k, seq, id); err != nil {
			t.Fatal(err)
		}
	}
	for _, idx := range []VersionIndex{mem, kv} {
		if err := idx.PruneBefore(4); err != nil {
			t.Fatal(err)
		}
	}
	memLive := make([]bool, keys.Len())
	kvLive := make([]bool, keys.Len())
	if err := mem.MarkLive(memLive); err != nil {
		t.Fatal(err)
	}
	if err := kv.MarkLive(kvLive); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(memLive) != fmt.Sprint(kvLive) {
		t.Fatalf("liveness diverged: mem %v kv %v", memLive, kvLive)
	}
	if fmt.Sprint(memLive) != "[false false false true true true]" {
		t.Fatalf("liveness = %v", memLive)
	}

	remap := keys.Compact(func(k intern.Key) bool { return memLive[k] })
	for _, idx := range []VersionIndex{mem, kv} {
		if err := idx.Remap(remap, keys.Len()); err != nil {
			t.Fatal(err)
		}
	}
	if mem.Slots() != 3 {
		t.Fatalf("mem slots = %d, want 3 (retired slots reclaimed)", mem.Slots())
	}
	// Every retained key answers identically through its new KeyID; the
	// re-interned incarnation of a dropped key is empty in both.
	for i := 3; i < 6; i++ {
		nk, ok := keys.Find(fmt.Sprintf("key%d", i))
		if !ok {
			t.Fatalf("key%d lost by compaction", i)
		}
		for _, idx := range []VersionIndex{mem, kv} {
			id, found, err := idx.Last(nk)
			if err != nil {
				t.Fatal(err)
			}
			if !found || id != TxID(fmt.Sprintf("t%d", i)) {
				t.Errorf("%T Last(key%d) = %v,%v after remap", idx, i, id, found)
			}
		}
	}
	dropped := keys.Intern("key0")
	for _, idx := range []VersionIndex{mem, kv} {
		if got, _ := idx.All(nil, dropped); len(got) != 0 {
			t.Errorf("%T re-interned dropped key has entries: %v", idx, got)
		}
	}
}

// TestKVIndexPruneBatchAtomic pins the batched prune: a prune over many
// entries must leave no secondary "b/" key behind (they would otherwise
// resurrect as phantom prune work) and must keep retained entries intact —
// the all-or-nothing ApplyBatch path.
func TestKVIndexPruneBatchAtomic(t *testing.T) {
	keys := intern.NewTable()
	kv := newKVIndexForTest(t, keys)
	for b := uint64(1); b <= 10; b++ {
		for i := 0; i < 5; i++ {
			k := keys.Intern(fmt.Sprintf("k%d", i))
			if err := kv.Put(k, seqno.Commit(b, uint32(i+1)), TxID(fmt.Sprintf("t%d-%d", b, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := kv.PruneBefore(8); err != nil {
		t.Fatal(err)
	}
	live := make([]bool, keys.Len())
	if err := kv.MarkLive(live); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		k, _ := keys.Find(fmt.Sprintf("k%d", i))
		got, err := kv.All(nil, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3 { // blocks 8, 9, 10
			t.Errorf("k%d retained %d entries, want 3: %v", i, len(got), got)
		}
		if !live[k] {
			t.Errorf("k%d not marked live despite retained entries", i)
		}
	}
	// No stale secondaries: a second prune at the same horizon is a no-op
	// and must not fail decoding leftovers.
	if err := kv.PruneBefore(8); err != nil {
		t.Fatal(err)
	}
}

func TestManagerWithKVIndices(t *testing.T) {
	// The manager must behave identically over kvstore-backed indices.
	mkManager := func(kvBacked bool) *Manager {
		opts := Options{}
		if kvBacked {
			keys := intern.NewTable()
			dbw, _ := kvstore.Open(kvstore.Options{})
			dbr, _ := kvstore.Open(kvstore.Options{})
			opts.Keys = keys
			opts.CW = NewKVIndex(dbw, keys)
			opts.CR = NewKVIndex(dbr, keys)
		}
		return NewManager(opts)
	}
	run := func(m *Manager) []string {
		var log []string
		height := uint64(0)
		for i := 0; i < 150; i++ {
			r := fmt.Sprintf("k%d", (i*3)%7)
			w := fmt.Sprintf("k%d", (i*5)%7)
			code, err := m.OnArrival(TxID(fmt.Sprintf("t%d", i)), height, []string{r}, []string{w})
			if err != nil {
				t.Fatal(err)
			}
			log = append(log, fmt.Sprintf("%d:%v", i, code))
			if (i+1)%25 == 0 {
				ids, block, err := m.OnBlockFormation()
				if err != nil {
					t.Fatal(err)
				}
				if len(ids) > 0 {
					height = block
				}
				log = append(log, fmt.Sprint(ids))
			}
		}
		return log
	}
	a := run(mkManager(false))
	b := run(mkManager(true))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("kv-backed manager diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
