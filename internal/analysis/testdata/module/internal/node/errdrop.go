// Package node is the errdrop fixture corpus. errdrop's scope is the whole
// module, so these out-of-deterministic-scope callers are still policed.
package node

import (
	"fabricsharp/internal/kvstore"
	"fabricsharp/internal/wire"
)

func flagStatementDrop(t wire.Thing) {
	wire.EncodeThing(t) // want errdrop "error from wire.EncodeThing dropped"
}

func flagBlankDrop(b []byte) {
	_, _ = wire.DecodeThing(b) // want errdrop "error from wire.DecodeThing dropped"
}

func okErrorBound(t wire.Thing) error {
	_, err := wire.EncodeThing(t)
	return err
}

func okNoErrorResult(t wire.Thing) []byte {
	return wire.EncodeHint(t) // no error result: nothing to drop
}

func flagGoDrop(s *kvstore.Store, b kvstore.Batch) {
	go s.ApplyBatch(b) // want errdrop "error from ApplyBatch dropped"
}

func flagDeferPersist(s *kvstore.Store) {
	defer s.Persist() // want errdrop "error from Persist dropped"
}

func okHandled(s *kvstore.Store, b kvstore.Batch) error {
	if err := s.ApplyBatch(b); err != nil {
		return err
	}
	return s.Persist()
}

func flagInsideClosure(t wire.Thing) func() {
	return func() {
		wire.EncodeThing(t) // want errdrop "error from wire.EncodeThing dropped"
	}
}

func suppressedBestEffort(s *kvstore.Store) {
	//sharp:allow errdrop fixture: reviewed suppression — best-effort flush on shutdown path
	s.Persist() // wantsup errdrop "error from Persist dropped"
}
