// Package commit implements the validation/commit stage of the EOV pipeline
// as an independent, pipelined subsystem: each validating peer owns a
// Committer goroutine fed by a buffered delivery channel, so the ordering
// phase seals and fans out blocks without ever touching peer state
// (Section 2.1's phase independence), and peers commit concurrently with
// ordering and with each other.
//
// Inside a block, validation itself is parallel: transactions are
// partitioned into key-disjoint conflict groups (union-find over read/write
// keys), each group validates sequentially in block order against its own
// overlay, and independent groups run on a worker pool sized by GOMAXPROCS.
// Systems whose ordering phase already guarantees serializability (Sharp,
// Focc-s) skip the MVCC partition entirely and go straight from parallel
// endorsement-signature checks to one batched statedb.ApplyBlock.
package commit

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
	"fabricsharp/internal/statedb"
	"fabricsharp/internal/validation"
)

// Options configures parallel block validation: the shared validation
// switches (MVCC, MSP, Policy — one struct with the sequential reference,
// so the two paths cannot drift apart) plus the parallelism cap.
type Options struct {
	validation.Options
	// Workers caps validation parallelism; 0 means GOMAXPROCS.
	Workers int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// BlockResult is the outcome of validating one block.
type BlockResult struct {
	// Codes are the per-transaction validation codes, in block order.
	Codes []protocol.ValidationCode
	// Writes are the valid transactions' write sets, in block order, ready
	// for one batched statedb.ApplyBlock.
	Writes []statedb.BlockWrites
	// Groups is the number of key-disjoint conflict groups the MVCC phase
	// validated concurrently (0 when MVCC was skipped).
	Groups int
}

// ValidateBlock validates every transaction of blk against db and returns
// the codes and the batched writes — it does not apply them. The result is
// byte-identical to the sequential validation.ValidateAndCommit: endorsement
// checks are embarrassingly parallel, and the MVCC overlay rule only couples
// transactions that share a key, so key-disjoint groups validate
// independently without changing any verdict.
func ValidateBlock(db *statedb.DB, blk *ledger.Block, opts Options) BlockResult {
	n := len(blk.Transactions)
	codes := make([]protocol.ValidationCode, n)
	workers := opts.workers()

	// Phase 1: endorsement-signature checks — per-transaction, stateless,
	// and the dominant CPU cost (ed25519 verification) — across all workers.
	if opts.MSP != nil && opts.Policy != nil {
		parallelFor(n, workers, func(i int) {
			if err := opts.MSP.CheckEndorsements(blk.Transactions[i], opts.Policy); err != nil {
				codes[i] = protocol.EndorsementFailure
			}
		})
	}

	// Phase 2: MVCC, partitioned by read/write-key overlap. Transactions
	// already failed by endorsement write nothing and constrain nothing, so
	// they stay out of the partition.
	groups := 0
	if opts.MVCC {
		groupList := partitionByConflict(blk.Transactions, codes)
		groups = len(groupList)
		base := validation.DBVersions(db)
		runGroups(groupList, workers, func(group []int) {
			overlay := validation.NewOverlay()
			current := func(key string) (seqno.Seq, bool) {
				return overlay.Version(base, key)
			}
			for _, i := range group {
				tx := blk.Transactions[i]
				if !validation.ReadsFresh(tx, current) {
					codes[i] = protocol.MVCCConflict
					continue
				}
				overlay.Record(seqno.Commit(blk.Header.Number, uint32(i+1)), tx.RWSet.Writes)
			}
		})
	}

	return BlockResult{Codes: codes, Writes: WritesFor(blk, codes), Groups: groups}
}

// WritesFor assembles the batched ApplyBlock input from a block and its
// final validation codes — the one code path live commit and stored-chain
// replay share.
func WritesFor(blk *ledger.Block, codes []protocol.ValidationCode) []statedb.BlockWrites {
	var writes []statedb.BlockWrites
	for i, tx := range blk.Transactions {
		if codes[i] == protocol.Valid && len(tx.RWSet.Writes) > 0 {
			writes = append(writes, statedb.BlockWrites{Pos: uint32(i + 1), Writes: tx.RWSet.Writes})
		}
	}
	return writes
}

// partitionByConflict groups transaction indices by transitive read/write
// key overlap (union-find). Within a group, indices stay in block order, so
// group-sequential validation observes exactly the overlay the sequential
// whole-block pass would. Transactions with a non-Valid code are excluded.
//
// Reads only couple through keys some in-block transaction writes: a key
// nobody writes keeps its committed version for the whole block, so a hot
// read-only key (a config record every transaction consults) does not
// collapse the block into one serial group.
func partitionByConflict(txs []*protocol.Transaction, codes []protocol.ValidationCode) [][]int {
	written := map[string]bool{}
	for i, tx := range txs {
		if codes[i] != protocol.Valid {
			continue
		}
		for _, w := range tx.RWSet.Writes {
			written[w.Key] = true
		}
	}
	parent := make([]int, len(txs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]] // path halving
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			// Root at the smaller index so group identity is deterministic.
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}

	keyOwner := map[string]int{}
	claim := func(i int, key string) {
		if o, ok := keyOwner[key]; ok {
			union(o, i)
		} else {
			keyOwner[key] = i
		}
	}
	for i, tx := range txs {
		if codes[i] != protocol.Valid {
			continue
		}
		for _, r := range tx.RWSet.Reads {
			if written[r.Key] {
				claim(i, r.Key)
			}
		}
		for _, w := range tx.RWSet.Writes {
			claim(i, w.Key)
		}
	}

	byRoot := map[int][]int{}
	var roots []int
	for i := range txs {
		if codes[i] != protocol.Valid {
			continue
		}
		r := find(i)
		if _, seen := byRoot[r]; !seen {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], i) // ascending i: block order
	}
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}

// parallelFor runs fn(i) for i in [0, n) on up to `workers` goroutines.
func parallelFor(n, workers int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// runGroups dispatches conflict groups to up to `workers` goroutines. Groups
// touch disjoint key sets, so their overlays never interact and the shared
// statedb is only read (its RWMutex covers that).
func runGroups(groups [][]int, workers int, fn func(group []int)) {
	parallelFor(len(groups), workers, func(i int) { fn(groups[i]) })
}
