package network

import (
	"fmt"
	"math/rand"
	"testing"

	"fabricsharp/internal/protocol"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/sim"
	"fabricsharp/internal/workload"
)

// smallRun returns a quick contended configuration for tests.
func smallRun(system sched.System, seed int64) Config {
	rng := rand.New(rand.NewSource(seed))
	w, err := workload.NewModifiedSmallbank(rng, 500, 0.3, 0.3)
	if err != nil {
		panic(err)
	}
	w.HotFrac = 0.02
	return Config{
		System:      system,
		Workload:    w,
		Seed:        seed,
		Duration:    4 * sim.Second,
		RequestRate: 300,
		BlockSize:   50,
	}
}

func TestRunAllSystemsSmoke(t *testing.T) {
	for _, system := range sched.Systems() {
		system := system
		t.Run(string(system), func(t *testing.T) {
			res, err := Run(smallRun(system, 1))
			if err != nil {
				t.Fatal(err)
			}
			if res.Submitted == 0 || res.Blocks == 0 {
				t.Fatalf("nothing happened: %+v", res)
			}
			if res.Committed == 0 {
				t.Fatal("nothing committed")
			}
			if res.Committed > res.InLedger {
				t.Fatalf("committed %d > in-ledger %d", res.Committed, res.InLedger)
			}
			// Conservation: everything submitted is accounted for.
			accounted := res.InLedger + res.EarlyAborts.Total()
			if accounted > res.Submitted {
				t.Fatalf("accounted %d > submitted %d", accounted, res.Submitted)
			}
			// With a 20s drain everything should land.
			if accounted < res.Submitted {
				t.Errorf("%d transactions unaccounted (submitted %d, accounted %d)",
					res.Submitted-accounted, res.Submitted, accounted)
			}
			if err := res.Chain.Verify(); err != nil {
				t.Fatal(err)
			}
			if res.EffectiveTPS <= 0 || res.RawTPS < res.EffectiveTPS {
				t.Errorf("rates: raw %.1f effective %.1f", res.RawTPS, res.EffectiveTPS)
			}
			if res.Latency.N() == 0 || res.Latency.P50() <= 0 {
				t.Error("no latency samples")
			}
		})
	}
}

func TestSerializabilityAllSystems(t *testing.T) {
	// The headline safety property, end to end, per system, across seeds:
	// committed schedules are serializable and serial re-execution
	// reproduces the pipeline's final state exactly.
	for _, system := range sched.Systems() {
		system := system
		t.Run(string(system), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				res, err := Run(smallRun(system, seed))
				if err != nil {
					t.Fatal(err)
				}
				if err := VerifySerializability(res); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestSharpCommitsMoreThanFabric(t *testing.T) {
	// The paper's core claim, reproduced end to end on a contended
	// workload: Sharp's effective throughput exceeds vanilla Fabric's.
	fabric, err := Run(smallRun(sched.SystemFabric, 7))
	if err != nil {
		t.Fatal(err)
	}
	sharp, err := Run(smallRun(sched.SystemSharp, 7))
	if err != nil {
		t.Fatal(err)
	}
	if sharp.Committed <= fabric.Committed {
		t.Errorf("sharp committed %d <= fabric %d", sharp.Committed, fabric.Committed)
	}
	if sharp.SharpStats == nil || sharp.SharpStats.Accepted == 0 {
		t.Error("sharp stats missing")
	}
}

func TestVanillaCollapsesUnderLongSimulations(t *testing.T) {
	// Figure 14's stark effect: vanilla Fabric's simulation/commit lock
	// serializes long simulations against block commits.
	base := smallRun(sched.SystemFabric, 3)
	slow := base
	slow.ReadInterval = 100 * sim.Millisecond
	fast, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	slowRes, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if float64(slowRes.Committed) > 0.7*float64(fast.Committed) {
		t.Errorf("vanilla did not degrade: fast %d slow %d", fast.Committed, slowRes.Committed)
	}

	// Sharp under the same stress degrades far less.
	sharpSlow := slow
	sharpSlow.System = sched.SystemSharp
	sharpRes, err := Run(sharpSlow)
	if err != nil {
		t.Fatal(err)
	}
	if sharpRes.Committed <= slowRes.Committed {
		t.Errorf("sharp (%d) should beat vanilla (%d) under long simulations",
			sharpRes.Committed, slowRes.Committed)
	}
}

func TestFabricPPSimulationAborts(t *testing.T) {
	// With long read intervals Fabric++ aborts cross-block readers during
	// simulation (Figure 14's "Simulation abort" share).
	cfg := smallRun(sched.SystemFabricPP, 5)
	cfg.ReadInterval = 60 * sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EarlyAborts[protocol.AbortSimulation] == 0 {
		t.Error("no simulation aborts despite long reads")
	}
}

func TestDeterministicRuns(t *testing.T) {
	for _, system := range []sched.System{sched.SystemSharp, sched.SystemFabric} {
		a, err := Run(smallRun(system, 11))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(smallRun(system, 11))
		if err != nil {
			t.Fatal(err)
		}
		if a.Committed != b.Committed || a.InLedger != b.InLedger || a.Blocks != b.Blocks {
			t.Fatalf("%s runs diverged: %d/%d/%d vs %d/%d/%d", system,
				a.Committed, a.InLedger, a.Blocks, b.Committed, b.InLedger, b.Blocks)
		}
		if fmt.Sprintf("%x", a.Chain.TipHash()) != fmt.Sprintf("%x", b.Chain.TipHash()) {
			t.Fatalf("%s ledgers diverged", system)
		}
		if a.State.StateFingerprint() != b.State.StateFingerprint() {
			t.Fatalf("%s final states diverged", system)
		}
	}
}

func TestBatchTimeoutCutsPartialBlocks(t *testing.T) {
	cfg := smallRun(sched.SystemFabric, 2)
	cfg.RequestRate = 10 // far below the block size per second
	cfg.BlockSize = 1000
	cfg.BlockTimeout = 500 * sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks < 3 {
		t.Errorf("timeout cutter produced only %d blocks", res.Blocks)
	}
	if res.Committed == 0 {
		t.Error("nothing committed under timeout-driven blocks")
	}
}

func TestNoOpWorkloadNothingAborts(t *testing.T) {
	cfg := Config{
		System:      sched.SystemFabric,
		Workload:    workload.NoOp{},
		Seed:        1,
		Duration:    3 * sim.Second,
		RequestRate: 300,
		BlockSize:   50,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != res.InLedger || res.Committed == 0 {
		t.Errorf("no-op workload aborted transactions: %d of %d", res.Committed, res.InLedger)
	}
}

func TestFastFabricProfileFaster(t *testing.T) {
	mk := func(profile Profile) Config {
		return Config{
			System:      sched.SystemSharp,
			Profile:     profile,
			Workload:    &workload.CreateAccount{},
			Seed:        4,
			Duration:    4 * sim.Second,
			RequestRate: 2500,
			BlockSize:   100,
		}
	}
	fabric, err := Run(mk(ProfileFabric))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(mk(ProfileFastFabric))
	if err != nil {
		t.Fatal(err)
	}
	if fast.EffectiveTPS < 2*fabric.EffectiveTPS {
		t.Errorf("fastfabric profile not faster: %.0f vs %.0f", fast.EffectiveTPS, fabric.EffectiveTPS)
	}
}

func TestMissingWorkloadRejected(t *testing.T) {
	if _, err := Run(Config{System: sched.SystemFabric}); err == nil {
		t.Error("config without workload accepted")
	}
}

func TestAbortTaxonomyPerSystem(t *testing.T) {
	// Each system's aborts land in its own taxonomy bucket.
	res, err := Run(smallRun(sched.SystemFoccS, 9))
	if err != nil {
		t.Fatal(err)
	}
	if res.EarlyAborts[protocol.AbortConcurrentWW] == 0 {
		t.Error("focc-s produced no concurrent-ww aborts on a contended workload")
	}
	res, err = Run(smallRun(sched.SystemFabric, 9))
	if err != nil {
		t.Fatal(err)
	}
	if res.LateAborts[protocol.MVCCConflict] == 0 {
		t.Error("fabric produced no MVCC aborts on a contended workload")
	}
}
