package core

import (
	"fmt"
	"math/rand"
	"testing"

	"fabricsharp/internal/intern"
	"fabricsharp/internal/kvstore"
	"fabricsharp/internal/seqno"
)

func newKVIndexForTest(t *testing.T, keys *intern.Table) *KVIndex {
	t.Helper()
	db, err := kvstore.Open(kvstore.Options{}) // in-memory
	if err != nil {
		t.Fatal(err)
	}
	return NewKVIndex(db, keys)
}

func testIndexBasics(t *testing.T, keys *intern.Table, idx VersionIndex) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	kA, kB, kMissing := keys.Intern("A"), keys.Intern("B"), keys.Intern("missing")
	must(idx.Put(kA, seqno.Commit(3, 2), "txn1"))
	must(idx.Put(kA, seqno.Commit(4, 1), "txn7"))
	must(idx.Put(kA, seqno.Commit(5, 3), "txn9"))
	must(idx.Put(kB, seqno.Commit(4, 2), "txn8"))

	// Last
	if id, ok, _ := idx.Last(kA); !ok || id != "txn9" {
		t.Errorf("Last(A) = %v,%v", id, ok)
	}
	if _, ok, _ := idx.Last(kMissing); ok {
		t.Error("Last(missing) found something")
	}
	// Before: the paper's CW.Before(key, seq) — last committed strictly
	// earlier than seq.
	if id, ok, _ := idx.Before(kA, seqno.Snapshot(3)); !ok || id != "txn1" {
		t.Errorf("Before(A,(4,0)) = %v,%v want txn1", id, ok)
	}
	if _, ok, _ := idx.Before(kA, seqno.Commit(3, 2)); ok {
		t.Error("Before at the exact first seq should be empty")
	}
	// After: CW[key][seq:].
	got, _ := idx.After(nil, kA, seqno.Snapshot(3))
	if fmt.Sprint(got) != "[txn7 txn9]" {
		t.Errorf("After(A,(4,0)) = %v", got)
	}
	got, _ = idx.After(nil, kA, seqno.Seq{})
	if fmt.Sprint(got) != "[txn1 txn7 txn9]" {
		t.Errorf("After(A,zero) = %v", got)
	}
	// After appends to the passed buffer.
	buf := []TxID{"sentinel"}
	got, _ = idx.After(buf, kA, seqno.Snapshot(3))
	if fmt.Sprint(got) != "[sentinel txn7 txn9]" {
		t.Errorf("After with buffer = %v", got)
	}
	// All
	got, _ = idx.All(nil, kB)
	if fmt.Sprint(got) != "[txn8]" {
		t.Errorf("All(B) = %v", got)
	}
	// PruneBefore drops block < 4.
	must(idx.PruneBefore(4))
	got, _ = idx.All(nil, kA)
	if fmt.Sprint(got) != "[txn7 txn9]" {
		t.Errorf("after prune All(A) = %v", got)
	}
	if id, ok, _ := idx.Last(kB); !ok || id != "txn8" {
		t.Errorf("prune damaged B: %v,%v", id, ok)
	}
}

func TestMemIndexBasics(t *testing.T) {
	testIndexBasics(t, intern.NewTable(), NewMemIndex())
}

func TestKVIndexBasics(t *testing.T) {
	keys := intern.NewTable()
	testIndexBasics(t, keys, newKVIndexForTest(t, keys))
}

func TestIndexDifferential(t *testing.T) {
	// MemIndex and KVIndex must agree on every query under a random
	// operation stream — the kvstore-backed index is the LevelDB-equivalent
	// layout, the memory index is the model.
	keys := intern.NewTable()
	mem := NewMemIndex()
	kv := newKVIndexForTest(t, keys)
	rng := rand.New(rand.NewSource(5))
	var ks []intern.Key
	for _, s := range []string{"A", "B", "acct:17", "checking:alice"} {
		ks = append(ks, keys.Intern(s))
	}
	seq := seqno.Seq{Block: 1, Pos: 1}
	for i := 0; i < 500; i++ {
		key := ks[rng.Intn(len(ks))]
		id := TxID(fmt.Sprintf("t%d", i))
		if err := mem.Put(key, seq, id); err != nil {
			t.Fatal(err)
		}
		if err := kv.Put(key, seq, id); err != nil {
			t.Fatal(err)
		}
		// advance commit seq
		if rng.Intn(3) == 0 {
			seq = seqno.Commit(seq.Block+1, 1)
		} else {
			seq = seqno.Commit(seq.Block, seq.Pos+1)
		}
		if rng.Intn(40) == 0 {
			h := seq.Block / 2
			if err := mem.PruneBefore(h); err != nil {
				t.Fatal(err)
			}
			if err := kv.PruneBefore(h); err != nil {
				t.Fatal(err)
			}
		}
		// Compare queries at random probe points.
		probe := seqno.Commit(uint64(rng.Intn(int(seq.Block)+1)), uint32(rng.Intn(4)))
		for _, k := range ks {
			ma, _ := mem.After(nil, k, probe)
			ka, _ := kv.After(nil, k, probe)
			if fmt.Sprint(ma) != fmt.Sprint(ka) {
				t.Fatalf("After(%d,%v) diverged: %v vs %v", k, probe, ma, ka)
			}
			mb, mok, _ := mem.Before(k, probe)
			kb, kok, _ := kv.Before(k, probe)
			if mok != kok || mb != kb {
				t.Fatalf("Before(%d,%v) diverged: %v,%v vs %v,%v", k, probe, mb, mok, kb, kok)
			}
			ml, mok2, _ := mem.Last(k)
			kl, kok2, _ := kv.Last(k)
			if mok2 != kok2 || ml != kl {
				t.Fatalf("Last(%d) diverged", k)
			}
			mall, _ := mem.All(nil, k)
			kall, _ := kv.All(nil, k)
			if fmt.Sprint(mall) != fmt.Sprint(kall) {
				t.Fatalf("All(%d) diverged: %v vs %v", k, mall, kall)
			}
		}
	}
}

// TestIndexOutOfOrderInsertAgreement covers MemIndex's defensive out-of-
// order insert branch and proves KVIndex takes the equivalent path "for
// free": its on-disk layout sorts by (record key, commit seq), so a late
// Put of an earlier sequence lands in sorted position without special
// casing. Both indices must answer every query identically afterwards.
func TestIndexOutOfOrderInsertAgreement(t *testing.T) {
	keys := intern.NewTable()
	mem := NewMemIndex()
	kv := newKVIndexForTest(t, keys)
	k := keys.Intern("K")
	// Arrive out of order: (5,1) then (3,1) then (4,2).
	inserts := []struct {
		seq seqno.Seq
		id  TxID
	}{
		{seqno.Commit(5, 1), "late"},
		{seqno.Commit(3, 1), "early"},
		{seqno.Commit(4, 2), "middle"},
	}
	for _, in := range inserts {
		if err := mem.Put(k, in.seq, in.id); err != nil {
			t.Fatal(err)
		}
		if err := kv.Put(k, in.seq, in.id); err != nil {
			t.Fatal(err)
		}
	}
	for _, idx := range []VersionIndex{mem, kv} {
		if got, _ := idx.All(nil, k); fmt.Sprint(got) != "[early middle late]" {
			t.Errorf("%T All = %v, want [early middle late]", idx, got)
		}
		if got, _ := idx.After(nil, k, seqno.Snapshot(3)); fmt.Sprint(got) != "[middle late]" {
			t.Errorf("%T After((4,0)) = %v, want [middle late]", idx, got)
		}
		if id, ok, _ := idx.Before(k, seqno.Snapshot(4)); !ok || id != "middle" {
			t.Errorf("%T Before((5,0)) = %v,%v, want middle", idx, id, ok)
		}
		if id, ok, _ := idx.Last(k); !ok || id != "late" {
			t.Errorf("%T Last = %v,%v, want late", idx, id, ok)
		}
	}
	// Pruning after an out-of-order insert keeps both aligned too.
	if err := mem.PruneBefore(4); err != nil {
		t.Fatal(err)
	}
	if err := kv.PruneBefore(4); err != nil {
		t.Fatal(err)
	}
	for _, idx := range []VersionIndex{mem, kv} {
		if got, _ := idx.All(nil, k); fmt.Sprint(got) != "[middle late]" {
			t.Errorf("%T post-prune All = %v, want [middle late]", idx, got)
		}
	}
}

func TestManagerWithKVIndices(t *testing.T) {
	// The manager must behave identically over kvstore-backed indices.
	mkManager := func(kvBacked bool) *Manager {
		opts := Options{}
		if kvBacked {
			keys := intern.NewTable()
			dbw, _ := kvstore.Open(kvstore.Options{})
			dbr, _ := kvstore.Open(kvstore.Options{})
			opts.Keys = keys
			opts.CW = NewKVIndex(dbw, keys)
			opts.CR = NewKVIndex(dbr, keys)
		}
		return NewManager(opts)
	}
	run := func(m *Manager) []string {
		var log []string
		height := uint64(0)
		for i := 0; i < 150; i++ {
			r := fmt.Sprintf("k%d", (i*3)%7)
			w := fmt.Sprintf("k%d", (i*5)%7)
			code, err := m.OnArrival(TxID(fmt.Sprintf("t%d", i)), height, []string{r}, []string{w})
			if err != nil {
				t.Fatal(err)
			}
			log = append(log, fmt.Sprintf("%d:%v", i, code))
			if (i+1)%25 == 0 {
				ids, block, err := m.OnBlockFormation()
				if err != nil {
					t.Fatal(err)
				}
				if len(ids) > 0 {
					height = block
				}
				log = append(log, fmt.Sprint(ids))
			}
		}
		return log
	}
	a := run(mkManager(false))
	b := run(mkManager(true))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("kv-backed manager diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
