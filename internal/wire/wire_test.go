package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
)

// sampleTx builds a transaction exercising every field: multiple args,
// reads with versions, writes with values and deletes, endorsements.
func sampleTx(i int) *protocol.Transaction {
	return &protocol.Transaction{
		ID:            protocol.TxID([]byte{byte('a' + i), '-', 0xff, 0x00}), // non-UTF8 on purpose
		ClientID:      "client0",
		Contract:      "smallbank",
		Function:      "send_payment",
		Args:          []string{"acct1", "acct2", "25"},
		SnapshotBlock: uint64(40 + i),
		RWSet: protocol.RWSet{
			Reads: []protocol.ReadItem{
				{Key: "checking:acct1", Version: seqno.Commit(39, 4)},
				{Key: "checking:acct2", Version: seqno.Commit(uint64(40+i), 1)},
			},
			Writes: []protocol.WriteItem{
				{Key: "checking:acct1", Value: []byte("975")},
				{Key: "checking:acct2", Value: []byte("1025")},
				{Key: "tombstone", Delete: true},
			},
		},
		Endorsements: []protocol.Endorsement{
			{EndorserID: "peer1", Signature: bytes.Repeat([]byte{0xAB}, 64)},
		},
	}
}

func TestTransactionRoundTrip(t *testing.T) {
	cases := []*protocol.Transaction{
		sampleTx(0),
		{}, // zero value
		{ID: "only-id", Args: nil, RWSet: protocol.RWSet{}},
	}
	for i, tx := range cases {
		enc := EncodeTransaction(tx)
		got, err := DecodeTransaction(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		// Field-for-field round trip: digests (what endorsers signed and
		// what the merkle data hash binds) must survive exactly.
		if !bytes.Equal(got.Digest(), tx.Digest()) {
			t.Fatalf("case %d: digest changed across round trip", i)
		}
		if got.ID != tx.ID || got.ClientID != tx.ClientID || got.Contract != tx.Contract ||
			got.Function != tx.Function || got.SnapshotBlock != tx.SnapshotBlock {
			t.Fatalf("case %d: scalar fields diverged: %+v vs %+v", i, got, tx)
		}
		if !reflect.DeepEqual(got.Args, tx.Args) && len(got.Args)+len(tx.Args) > 0 {
			t.Fatalf("case %d: args diverged", i)
		}
		if !reflect.DeepEqual(got.Endorsements, tx.Endorsements) && len(got.Endorsements)+len(tx.Endorsements) > 0 {
			t.Fatalf("case %d: endorsements diverged", i)
		}
		// Byte identity: re-encoding reproduces the input exactly.
		if re := EncodeTransaction(got); !bytes.Equal(re, enc) {
			t.Fatalf("case %d: re-encode diverged", i)
		}
		// The decode site precomputes the key caches.
		if len(tx.RWSet.Reads) > 0 && got.RWSet.ReadKeys() == nil {
			t.Fatalf("case %d: read keys not precomputed", i)
		}
	}
}

func TestTransactionDecodeRejectsMutations(t *testing.T) {
	enc := EncodeTransaction(sampleTx(0))
	if _, err := DecodeTransaction(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated input decoded")
	}
	if _, err := DecodeTransaction(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	var empty []byte
	if _, err := DecodeTransaction(empty); err == nil {
		t.Fatal("empty input decoded as transaction")
	}
}

// sealChain builds a short, structurally valid chain whose blocks carry
// sealed verdicts, exactly as the lead orderer emits them.
func sealChain(t *testing.T, blocks int) []*ledger.Block {
	t.Helper()
	chain, err := ledger.NewChain(nil)
	if err != nil {
		t.Fatal(err)
	}
	var out []*ledger.Block
	for b := 0; b < blocks; b++ {
		txs := []*protocol.Transaction{sampleTx(2 * b), sampleTx(2*b + 1)}
		codes := []protocol.ValidationCode{protocol.Valid, protocol.MVCCConflict}
		blk, err := chain.Seal(txs, codes)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, blk)
	}
	return out
}

func TestBlockRoundTrip(t *testing.T) {
	for _, blk := range sealChain(t, 3) {
		enc := EncodeBlock(blk)
		got, err := DecodeBlock(enc)
		if err != nil {
			t.Fatalf("decode block %d: %v", blk.Header.Number, err)
		}
		// The header hash — the value cross-replica agreement compares —
		// must be bit-identical after the round trip.
		if !bytes.Equal(got.Hash(), blk.Hash()) {
			t.Fatalf("block %d: header hash changed", blk.Header.Number)
		}
		if !bytes.Equal(ledger.DataHash(got.Transactions), got.Header.DataHash) {
			t.Fatalf("block %d: decoded transactions no longer match data hash", blk.Header.Number)
		}
		if !reflect.DeepEqual(got.Validation, blk.Validation) {
			t.Fatalf("block %d: sealed verdicts diverged", blk.Header.Number)
		}
		if re := EncodeBlock(got); !bytes.Equal(re, enc) {
			t.Fatalf("block %d: re-encode diverged", blk.Header.Number)
		}
	}
}

func TestBlockWithoutValidationRoundTrip(t *testing.T) {
	blk := &ledger.Block{
		Header:       ledger.Header{Number: 7, PrevHash: []byte{1, 2}, DataHash: []byte{3}},
		Transactions: []*protocol.Transaction{sampleTx(0)},
	}
	got, err := DecodeBlock(EncodeBlock(blk))
	if err != nil {
		t.Fatal(err)
	}
	if got.Validation != nil {
		t.Fatalf("nil validation decoded as %v", got.Validation)
	}
}

func TestBlockRescueDigestRoundTrip(t *testing.T) {
	digest := bytes.Repeat([]byte{0x5c}, 32)
	blk := &ledger.Block{
		Header:       ledger.Header{Number: 9, PrevHash: []byte{1}, DataHash: []byte{2}},
		Transactions: []*protocol.Transaction{sampleTx(0), sampleTx(1)},
		Validation:   []protocol.ValidationCode{protocol.Valid, protocol.Rescued},
		RescueDigest: digest,
	}
	got, err := DecodeBlock(EncodeBlock(blk))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.RescueDigest, digest) {
		t.Fatalf("rescue digest round-trip: %x != %x", got.RescueDigest, digest)
	}
	if !reflect.DeepEqual(got.Validation, blk.Validation) {
		t.Fatalf("verdicts diverged: %v", got.Validation)
	}
	// nil and empty must both decode to nil — the digest's presence is the
	// "block had rescues" signal, so a phantom empty slice would desync the
	// replicas' nil checks.
	blk.RescueDigest = nil
	blk.Validation = []protocol.ValidationCode{protocol.Valid, protocol.MVCCConflict}
	got, err = DecodeBlock(EncodeBlock(blk))
	if err != nil {
		t.Fatal(err)
	}
	if got.RescueDigest != nil {
		t.Fatalf("nil rescue digest decoded as %v", got.RescueDigest)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), nil, bytes.Repeat([]byte{7}, 1000)}
	types := []MsgType{MsgSubmit, MsgStatusReq, MsgBlock}
	for i := range payloads {
		if err := WriteFrame(&buf, types[i], payloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range payloads {
		typ, p, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != types[i] || !bytes.Equal(p, payloads[i]) {
			t.Fatalf("frame %d: got (%v, %d bytes)", i, typ, len(p))
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected EOF on drained stream, got %v", err)
	}
}

func TestFrameRejectsVersionSkewAndOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgAck, []byte("x")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = Version + 1
	if _, _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("version skew accepted")
	}
	// A length prefix beyond the limit is rejected before any allocation.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, Version, byte(MsgAck)}
	if _, _, err := ReadFrame(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	if err := WriteFrame(io.Discard, MsgBlock, make([]byte, MaxFrameSize+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestControlMessageRoundTrips(t *testing.T) {
	prop := &Proposal{ClientID: "c", TxID: "c-000001", Contract: "kv", Function: "rmw", Args: []string{"k", "1"}}
	gotP, err := DecodeProposal(EncodeProposal(prop))
	if err != nil || !reflect.DeepEqual(gotP, prop) {
		t.Fatalf("proposal round trip: %v, %+v", err, gotP)
	}
	for _, a := range []Ack{{OK: true}, {OK: false, Err: "boom"}} {
		got, err := DecodeAck(EncodeAck(a))
		if err != nil || got != a {
			t.Fatalf("ack round trip: %v, %+v", err, got)
		}
	}
	for _, r := range []Result{{}, {Found: true, TxID: "t", Code: protocol.MVCCConflict, Block: 9}} {
		got, err := DecodeResult(EncodeResult(r))
		if err != nil || got != r {
			t.Fatalf("result round trip: %v, %+v", err, got)
		}
	}
	for _, pr := range []*ProposalResp{
		{OK: true, Tx: sampleTx(1)},
		{Err: "unknown contract"},
	} {
		enc := EncodeProposalResp(pr)
		got, err := DecodeProposalResp(enc)
		if err != nil {
			t.Fatalf("proposal-resp decode: %v", err)
		}
		if got.OK != pr.OK || got.Err != pr.Err {
			t.Fatalf("proposal-resp round trip: %+v", got)
		}
		if pr.OK && !bytes.Equal(got.Tx.Digest(), pr.Tx.Digest()) {
			t.Fatal("proposal-resp transaction digest changed")
		}
		if re := EncodeProposalResp(got); !bytes.Equal(re, enc) {
			t.Fatal("proposal-resp re-encode diverged")
		}
	}
	// A forged "success" byte outside {0,1} must be rejected, not treated
	// as truthy.
	bad := EncodeProposalResp(&ProposalResp{OK: true, Tx: sampleTx(0)})
	bad[0] = 2
	if _, err := DecodeProposalResp(bad); err == nil {
		t.Fatal("non-canonical ok byte accepted")
	}
	s := Subscribe{From: 41}
	if got, err := DecodeSubscribe(EncodeSubscribe(s)); err != nil || got != s {
		t.Fatalf("subscribe round trip: %v, %+v", err, got)
	}
	st := Status{Role: "peer", Name: "peer1", Height: 12, Blocks: 12, TipHash: []byte{9, 9}, StateHash: "abcd"}
	got, err := DecodeStatus(EncodeStatus(st))
	if err != nil || !reflect.DeepEqual(got, st) {
		t.Fatalf("status round trip: %v, %+v", err, got)
	}
}

func TestDecodeBoundsHostileCounts(t *testing.T) {
	// A count field claiming 2^32-1 elements with no bytes behind it must
	// fail cleanly (no huge allocation, no panic).
	hostile := appendString(nil, "id")
	hostile = appendString(hostile, "client")
	hostile = appendString(hostile, "contract")
	hostile = appendString(hostile, "fn")
	hostile = appendU32(hostile, 0xFFFFFFFF) // args count
	if _, err := DecodeTransaction(hostile); err == nil {
		t.Fatal("hostile count accepted")
	}
}
