package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fabricsharp/internal/node"
	"fabricsharp/internal/wire"
)

// statusFlags configures `sharpnet status`: one probe per listed member.
type statusFlags struct {
	Orderers    []string
	Peers       []string
	DialTimeout time.Duration
}

func (f statusFlags) validate() error {
	if len(f.Orderers) == 0 && len(f.Peers) == 0 {
		return fmt.Errorf("status needs -orderer and/or -peer-addrs to probe")
	}
	return nil
}

func cmdStatus(args []string) int {
	fs := flag.NewFlagSet("sharpnet status", flag.ExitOnError)
	var f statusFlags
	var orderers, peers string
	fs.StringVar(&orderers, "orderer", "", "comma-separated orderer addresses")
	fs.StringVar(&peers, "peer-addrs", "", "comma-separated peer addresses")
	fs.DurationVar(&f.DialTimeout, "dial-timeout", 30*time.Second, "per-member probe budget")
	_ = fs.Parse(args)
	f.Orderers, f.Peers = splitAddrs(orderers), splitAddrs(peers)
	if err := f.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "sharpnet status:", err)
		return 2
	}
	statusMode(f.Orderers, f.Peers, f.DialTimeout)
	return 0
}

// statusMode prints one line per reachable cluster member; unreachable
// members are reported but not fatal (the chaos smoke probes mid-kill).
// Probes ride StatusAtRetry, so a member whose listener is up but whose
// pipeline is still restarting reads as live, not down.
func statusMode(orderers, peers []string, dialTimeout time.Duration) {
	for _, addr := range orderers {
		st, err := node.StatusAtRetry(addr, time.Now().Add(dialTimeout))
		if err != nil {
			fmt.Printf("orderer %s down (%v)\n", addr, err)
			continue
		}
		fmt.Printf("orderer %s name=%s term=%d leader=%s blocks=%d height=%d committed=%d tip=%x\n",
			addr, st.Name, st.Term, st.Leader, st.Blocks, st.Height, st.CommittedTx, st.TipHash)
	}
	for _, addr := range peers {
		st, err := node.StatusAtRetry(addr, time.Now().Add(dialTimeout))
		if err != nil {
			fmt.Printf("peer %s down (%v)\n", addr, err)
			continue
		}
		fmt.Printf("peer %s name=%s blocks=%d height=%d committed=%d tip=%x state=%s\n",
			addr, st.Name, st.Blocks, st.Height, st.CommittedTx, st.TipHash, st.StateHash)
	}
}

// checkFlags configures `sharpnet check`: the cluster-agreement assertion.
type checkFlags struct {
	Orderers        []string
	Peers           []string
	ExpectCommitted uint64
	ConvergeTimeout time.Duration
}

func (f checkFlags) validate() error {
	if len(f.Orderers) == 0 || len(f.Peers) == 0 {
		return fmt.Errorf("check requires -orderer and -peer-addrs")
	}
	if f.ConvergeTimeout <= 0 {
		return fmt.Errorf("-converge-timeout must be positive, got %s", f.ConvergeTimeout)
	}
	return nil
}

func cmdCheck(args []string) int {
	fs := flag.NewFlagSet("sharpnet check", flag.ExitOnError)
	var f checkFlags
	var orderers, peers string
	fs.StringVar(&orderers, "orderer", "", "comma-separated orderer addresses")
	fs.StringVar(&peers, "peer-addrs", "", "comma-separated peer addresses")
	fs.Uint64Var(&f.ExpectCommitted, "expect-committed", 0, "minimum committed-transaction tally the ledger must hold")
	fs.DurationVar(&f.ConvergeTimeout, "converge-timeout", 60*time.Second, "how long to wait for the cluster to agree")
	_ = fs.Parse(args)
	f.Orderers, f.Peers = splitAddrs(orderers), splitAddrs(peers)
	if err := f.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "sharpnet check:", err)
		return 2
	}
	if why := awaitAgreement(f.Orderers, f.Peers, f.ExpectCommitted, f.ConvergeTimeout); why != "" {
		fmt.Fprintf(os.Stderr, "CHECK FAILED after %v: %s\n", f.ConvergeTimeout, why)
		return 1
	}
	fmt.Println("CHECK OK: survivors agree bit for bit and no committed transaction was lost")
	return 0
}

// awaitAgreement polls agreementProbe until it holds or timeout passes,
// returning "" on success and the last failure reason otherwise.
func awaitAgreement(orderers, peers []string, expectCommitted uint64, timeout time.Duration) string {
	deadline := time.Now().Add(timeout)
	for {
		why := agreementProbe(orderers, peers, expectCommitted, 2*time.Second)
		if why == "" {
			return ""
		}
		if time.Now().After(deadline) {
			return why
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// agreementProbe takes one cluster snapshot and returns "" when the
// agreement invariants hold, else a reason to keep waiting. Every live
// orderer (a freshly restarted replica may still be catching up the
// replicated log) and every peer must agree bit for bit; unreachable
// orderers are skipped — the chaos smoke runs this with a member killed —
// but at least one must answer. Probes use StatusAtRetry so a member
// mid-restart is retried within the probe budget rather than misread as
// down or failing the probe outright.
func agreementProbe(orderers, peers []string, expectCommitted uint64, probeBudget time.Duration) string {
	type member struct {
		addr string
		st   wire.Status
	}
	var live []member
	for _, addr := range orderers {
		st, err := node.StatusAtRetry(addr, time.Now().Add(probeBudget))
		if err != nil {
			continue // killed member: survivors carry the invariant
		}
		live = append(live, member{addr, st})
	}
	if len(live) == 0 {
		return "no orderer reachable"
	}
	ref := live[0].st
	for _, m := range live[1:] {
		if m.st.Blocks != ref.Blocks || string(m.st.TipHash) != string(ref.TipHash) {
			return fmt.Sprintf("orderers %s and %s disagree (%d/%x vs %d/%x)",
				live[0].addr, m.addr, ref.Blocks, ref.TipHash, m.st.Blocks, m.st.TipHash)
		}
	}
	if ref.CommittedTx < expectCommitted {
		return fmt.Sprintf("ledger holds %d committed transactions, clients observed %d",
			ref.CommittedTx, expectCommitted)
	}
	var refState string
	for i, addr := range peers {
		st, err := node.StatusAtRetry(addr, time.Now().Add(probeBudget))
		if err != nil {
			return fmt.Sprintf("peer %s unreachable (%v)", addr, err)
		}
		if st.Blocks != ref.Blocks || string(st.TipHash) != string(ref.TipHash) {
			return fmt.Sprintf("peer %s at %d/%x, orderers at %d/%x",
				addr, st.Blocks, st.TipHash, ref.Blocks, ref.TipHash)
		}
		if st.CommittedTx != ref.CommittedTx {
			return fmt.Sprintf("peer %s counts %d committed, orderers %d", addr, st.CommittedTx, ref.CommittedTx)
		}
		if i == 0 {
			refState = st.StateHash
		} else if st.StateHash != refState {
			return fmt.Sprintf("peer state fingerprints diverge (%s: %.16s… vs %.16s…)", addr, st.StateHash, refState)
		}
	}
	return ""
}
