// Package wire is the canonical binary codec for everything that crosses a
// process boundary: transactions, sealed blocks (including the orderer's
// embedded shadow verdicts), and the client/peer/orderer control messages of
// the process-per-node deployment mode.
//
// The encoding is *canonical*: fixed-width big-endian integers, u32
// length-prefixed strings and byte slices, deterministic field order, strict
// boolean bytes (0 or 1 only), and no trailing bytes accepted. Every value
// therefore has exactly one encoding, which gives two properties the rest of
// the repository leans on:
//
//   - Round-trip exactness: Decode(Encode(v)) reproduces v field for field,
//     so the cross-replica byte-equality assertions (sealed verdicts, chain
//     hashes) survive serialization — a block validated on a remote peer is
//     bit-identical to the block the orderer sealed.
//   - Decode∘Encode identity on bytes: if Decode accepts an input, re-encoding
//     the result reproduces the input exactly (the fuzz targets pin this).
//
// Decoding is defensive: it never panics, bounds every count by the bytes
// actually remaining (so hostile length fields cannot force huge
// allocations), and fails cleanly on truncation, version skew, or oversized
// frames.
//
// Versioning rules: Frames carry a version byte (wire.Version). A node
// rejects frames from a different version — the deployment unit is the
// cluster, upgraded atomically. Any change to a message layout (field added,
// reordered, or re-typed) MUST bump Version; purely additive message *types*
// keep the version, since unknown types already fail loudly at dispatch.
// See docs/transport.md for the full specification.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
)

// Version is the wire-format version carried in every frame header.
// History: v1 original; v2 added the block rescue-digest field; v3 added the
// Raft consensus messages, the Ack leader-redirect fields, and the Status
// term/leader/committed-tx fields.
const Version = 3

// MaxFrameSize bounds a frame's payload (64 MiB): far above any realistic
// block, small enough that a corrupt length prefix cannot OOM a node.
const MaxFrameSize = 64 << 20

// MsgType tags a frame's payload.
type MsgType uint8

// The message vocabulary of the process-per-node deployment.
const (
	// MsgSubmit carries an endorsed Transaction from a client to the
	// ordering service.
	MsgSubmit MsgType = 1
	// MsgAck answers MsgSubmit (and other fire-and-forget requests).
	MsgAck MsgType = 2
	// MsgProposal asks a peer to simulate and endorse an invocation.
	MsgProposal MsgType = 3
	// MsgProposalResp answers MsgProposal with the endorsed Transaction.
	MsgProposalResp MsgType = 4
	// MsgResultPoll asks the orderer for a transaction's fate.
	MsgResultPoll MsgType = 5
	// MsgResult answers MsgResultPoll.
	MsgResult MsgType = 6
	// MsgSubscribe opens a block-delivery stream from the given height.
	MsgSubscribe MsgType = 7
	// MsgBlock carries one sealed Block on a delivery stream.
	MsgBlock MsgType = 8
	// MsgStatusReq asks a node for its chain/state position.
	MsgStatusReq MsgType = 9
	// MsgStatus answers MsgStatusReq.
	MsgStatus MsgType = 10
	// MsgRaftAppend carries a Raft AppendEntries request (replication and,
	// with no entries, the leader heartbeat) between orderer replicas.
	MsgRaftAppend MsgType = 11
	// MsgRaftAppendResp answers MsgRaftAppend.
	MsgRaftAppendResp MsgType = 12
	// MsgRaftVote carries a Raft RequestVote between orderer replicas.
	MsgRaftVote MsgType = 13
	// MsgRaftVoteResp answers MsgRaftVote.
	MsgRaftVoteResp MsgType = 14
	// MsgTraceReq asks a node to drain its stage-tracing ring.
	MsgTraceReq MsgType = 15
	// MsgTraceDump answers MsgTraceReq with the drained timeline events.
	MsgTraceDump MsgType = 16
)

// String names the message type for diagnostics.
func (t MsgType) String() string {
	switch t {
	case MsgSubmit:
		return "submit"
	case MsgAck:
		return "ack"
	case MsgProposal:
		return "proposal"
	case MsgProposalResp:
		return "proposal-resp"
	case MsgResultPoll:
		return "result-poll"
	case MsgResult:
		return "result"
	case MsgSubscribe:
		return "subscribe"
	case MsgBlock:
		return "block"
	case MsgStatusReq:
		return "status-req"
	case MsgStatus:
		return "status"
	case MsgRaftAppend:
		return "raft-append"
	case MsgRaftAppendResp:
		return "raft-append-resp"
	case MsgRaftVote:
		return "raft-vote"
	case MsgRaftVoteResp:
		return "raft-vote-resp"
	case MsgTraceReq:
		return "trace-req"
	case MsgTraceDump:
		return "trace-dump"
	default:
		return fmt.Sprintf("msg(%d)", uint8(t))
	}
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

// frameHeaderLen is u32 length + u8 version + u8 type.
const frameHeaderLen = 6

// WriteFrame writes one length-prefixed frame: u32 payload length, u8
// version, u8 message type, payload.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("wire: frame payload %d exceeds limit %d", len(payload), MaxFrameSize)
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	hdr[4] = Version
	hdr[5] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, enforcing the version and the size limit.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("wire: frame payload %d exceeds limit %d", n, MaxFrameSize)
	}
	if hdr[4] != Version {
		return 0, nil, fmt.Errorf("wire: version %d, want %d", hdr[4], Version)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: short frame payload: %w", err)
	}
	return MsgType(hdr[5]), payload, nil
}

// ---------------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------------

func appendU8(dst []byte, v uint8) []byte { return append(dst, v) }
func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendBytes(dst, b []byte) []byte {
	dst = appendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

func appendSeq(dst []byte, s seqno.Seq) []byte {
	dst = appendU64(dst, s.Block)
	return appendU32(dst, uint32(s.Pos))
}

// decoder is a bounds-checked cursor over an input buffer. Every read either
// succeeds or records the first error; subsequent reads are no-ops. Nothing
// here panics on hostile input.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.remaining() < n {
		d.fail("truncated: need %d bytes, have %d", n, d.remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("boolean byte not 0 or 1")
		return false
	}
}

// bytes reads a u32 length-prefixed byte slice. Zero length decodes to nil —
// the canonical form Encode emits for empty slices.
func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if uint64(n) > uint64(d.remaining()) {
		d.fail("length %d exceeds remaining %d bytes", n, d.remaining())
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.take(int(n)))
	return out
}

func (d *decoder) string() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if uint64(n) > uint64(d.remaining()) {
		d.fail("length %d exceeds remaining %d bytes", n, d.remaining())
		return ""
	}
	return string(d.take(int(n)))
}

func (d *decoder) seq() seqno.Seq {
	return seqno.Seq{Block: d.u64(), Pos: d.u32()}
}

// count reads a u32 element count and bounds it by the bytes remaining given
// a minimum encoded size per element, so a hostile count cannot force a huge
// allocation before truncation is detected.
func (d *decoder) count(minElemSize int) int {
	n := d.u32()
	if d.err != nil {
		return 0
	}
	if minElemSize < 1 {
		minElemSize = 1
	}
	if uint64(n) > uint64(d.remaining()/minElemSize) {
		d.fail("count %d exceeds remaining %d bytes", n, d.remaining())
		return 0
	}
	return int(n)
}

// finish enforces that the whole input was consumed — trailing garbage would
// break the decode∘encode identity.
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.remaining() != 0 {
		return fmt.Errorf("wire: %d trailing bytes", d.remaining())
	}
	return nil
}

// ---------------------------------------------------------------------------
// Transaction
// ---------------------------------------------------------------------------

// AppendTransaction appends the canonical encoding of tx to dst.
func AppendTransaction(dst []byte, tx *protocol.Transaction) []byte {
	dst = appendString(dst, string(tx.ID))
	dst = appendString(dst, tx.ClientID)
	dst = appendString(dst, tx.Contract)
	dst = appendString(dst, tx.Function)
	dst = appendU32(dst, uint32(len(tx.Args)))
	for _, a := range tx.Args {
		dst = appendString(dst, a)
	}
	dst = appendU64(dst, tx.SnapshotBlock)
	dst = appendU32(dst, uint32(len(tx.RWSet.Reads)))
	for _, r := range tx.RWSet.Reads {
		dst = appendString(dst, r.Key)
		dst = appendSeq(dst, r.Version)
	}
	dst = appendU32(dst, uint32(len(tx.RWSet.Writes)))
	for _, w := range tx.RWSet.Writes {
		dst = appendString(dst, w.Key)
		dst = appendBytes(dst, w.Value)
		dst = appendBool(dst, w.Delete)
	}
	dst = appendU32(dst, uint32(len(tx.Endorsements)))
	for _, e := range tx.Endorsements {
		dst = appendString(dst, e.EndorserID)
		dst = appendBytes(dst, e.Signature)
	}
	return dst
}

// EncodeTransaction renders tx in the canonical encoding.
func EncodeTransaction(tx *protocol.Transaction) []byte {
	return AppendTransaction(nil, tx)
}

func decodeTransactionBody(d *decoder) *protocol.Transaction {
	tx := &protocol.Transaction{}
	tx.ID = protocol.TxID(d.string())
	tx.ClientID = d.string()
	tx.Contract = d.string()
	tx.Function = d.string()
	if n := d.count(4); n > 0 {
		tx.Args = make([]string, n)
		for i := range tx.Args {
			tx.Args[i] = d.string()
		}
	}
	tx.SnapshotBlock = d.u64()
	if n := d.count(4 + 12); n > 0 {
		tx.RWSet.Reads = make([]protocol.ReadItem, n)
		for i := range tx.RWSet.Reads {
			tx.RWSet.Reads[i] = protocol.ReadItem{Key: d.string(), Version: d.seq()}
		}
	}
	if n := d.count(4 + 4 + 1); n > 0 {
		tx.RWSet.Writes = make([]protocol.WriteItem, n)
		for i := range tx.RWSet.Writes {
			tx.RWSet.Writes[i] = protocol.WriteItem{Key: d.string(), Value: d.bytes(), Delete: d.bool()}
		}
	}
	if n := d.count(4 + 4); n > 0 {
		tx.Endorsements = make([]protocol.Endorsement, n)
		for i := range tx.Endorsements {
			tx.Endorsements[i] = protocol.Endorsement{EndorserID: d.string(), Signature: d.bytes()}
		}
	}
	return tx
}

// DecodeTransaction decodes a canonical transaction encoding. The decoded
// transaction's distinct-key caches are precomputed (the decode site has
// exclusive access — the same contract the in-process build sites follow),
// so hot paths downstream share them safely.
func DecodeTransaction(b []byte) (*protocol.Transaction, error) {
	d := &decoder{buf: b}
	tx := decodeTransactionBody(d)
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("transaction: %w", err)
	}
	tx.RWSet.Precompute()
	return tx, nil
}

// ---------------------------------------------------------------------------
// Block
// ---------------------------------------------------------------------------

// AppendBlock appends the canonical encoding of blk — header, transactions,
// and, when present, the sealed validation verdicts — to dst.
func AppendBlock(dst []byte, blk *ledger.Block) []byte {
	dst = appendU64(dst, blk.Header.Number)
	dst = appendBytes(dst, blk.Header.PrevHash)
	dst = appendBytes(dst, blk.Header.DataHash)
	dst = appendU32(dst, uint32(len(blk.Transactions)))
	for _, tx := range blk.Transactions {
		// Each transaction is itself length-prefixed so a decoder can skip
		// or bound-check entries without parsing them.
		dst = appendBytes(dst, EncodeTransaction(tx))
	}
	if blk.Validation == nil {
		dst = appendBool(dst, false)
	} else {
		dst = appendBool(dst, true)
		dst = appendU32(dst, uint32(len(blk.Validation)))
		for _, c := range blk.Validation {
			dst = appendU8(dst, uint8(c))
		}
	}
	// The rescue digest is always present (length 0 encodes nil), keeping
	// the encoding canonical: one layout, one byte string per block.
	return appendBytes(dst, blk.RescueDigest)
}

// EncodeBlock renders blk in the canonical encoding.
func EncodeBlock(blk *ledger.Block) []byte {
	return AppendBlock(nil, blk)
}

// DecodeBlock decodes a canonical block encoding. Structural soundness
// (hash linkage, verdict-count agreement) is *not* checked here — the
// ledger's Append enforces it, so a decoded block cannot reach a chain
// without passing the same checks an in-process block does.
func DecodeBlock(b []byte) (*ledger.Block, error) {
	d := &decoder{buf: b}
	blk := &ledger.Block{}
	blk.Header.Number = d.u64()
	blk.Header.PrevHash = d.bytes()
	blk.Header.DataHash = d.bytes()
	if n := d.count(4); n > 0 {
		blk.Transactions = make([]*protocol.Transaction, n)
		for i := range blk.Transactions {
			body := d.take(int(d.u32()))
			if d.err != nil {
				break
			}
			sub := &decoder{buf: body}
			tx := decodeTransactionBody(sub)
			if err := sub.finish(); err != nil {
				return nil, fmt.Errorf("block tx %d: %w", i, err)
			}
			tx.RWSet.Precompute()
			blk.Transactions[i] = tx
		}
	}
	if d.bool() {
		n := d.count(1)
		blk.Validation = make([]protocol.ValidationCode, n)
		for i := range blk.Validation {
			blk.Validation[i] = protocol.ValidationCode(d.u8())
		}
	}
	blk.RescueDigest = d.bytes()
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("block: %w", err)
	}
	return blk, nil
}

// ---------------------------------------------------------------------------
// Control messages
// ---------------------------------------------------------------------------

// Proposal asks a peer to simulate and endorse one invocation. The client
// mints the transaction ID so it can poll for the result by ID regardless of
// which peer endorsed.
type Proposal struct {
	ClientID string
	TxID     string
	Contract string
	Function string
	Args     []string
}

// EncodeProposal renders p canonically.
func EncodeProposal(p *Proposal) []byte {
	dst := appendString(nil, p.ClientID)
	dst = appendString(dst, p.TxID)
	dst = appendString(dst, p.Contract)
	dst = appendString(dst, p.Function)
	dst = appendU32(dst, uint32(len(p.Args)))
	for _, a := range p.Args {
		dst = appendString(dst, a)
	}
	return dst
}

// DecodeProposal decodes a Proposal.
func DecodeProposal(b []byte) (*Proposal, error) {
	d := &decoder{buf: b}
	p := &Proposal{
		ClientID: d.string(),
		TxID:     d.string(),
		Contract: d.string(),
		Function: d.string(),
	}
	if n := d.count(4); n > 0 {
		p.Args = make([]string, n)
		for i := range p.Args {
			p.Args[i] = d.string()
		}
	}
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("proposal: %w", err)
	}
	return p, nil
}

// ProposalResp answers a Proposal: the endorsed transaction on success, a
// refusal reason otherwise.
type ProposalResp struct {
	OK  bool
	Err string
	// Tx is the endorsed transaction; non-nil exactly when OK.
	Tx *protocol.Transaction
}

// EncodeProposalResp renders r canonically. The transaction body occupies
// the remainder of the payload (present exactly when OK).
func EncodeProposalResp(r *ProposalResp) []byte {
	dst := appendBool(nil, r.OK)
	dst = appendString(dst, r.Err)
	if r.OK {
		dst = AppendTransaction(dst, r.Tx)
	}
	return dst
}

// DecodeProposalResp decodes a ProposalResp.
func DecodeProposalResp(b []byte) (*ProposalResp, error) {
	d := &decoder{buf: b}
	r := &ProposalResp{OK: d.bool(), Err: d.string()}
	if r.OK {
		r.Tx = decodeTransactionBody(d)
	}
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("proposal-resp: %w", err)
	}
	if r.OK {
		r.Tx.RWSet.Precompute()
	}
	return r, nil
}

// Ack is a generic success/error response. NotLeader distinguishes the one
// retryable refusal in the vocabulary: the contacted orderer is a Raft
// follower, and Leader (when known) is the address the client should submit
// to instead. Clients treat it as a redirect, not a failure.
type Ack struct {
	OK        bool
	Err       string
	NotLeader bool
	// Leader is the advertised client address of the last known leader; ""
	// when the cluster is mid-election.
	Leader string
}

// EncodeAck renders a canonically.
func EncodeAck(a Ack) []byte {
	dst := appendBool(nil, a.OK)
	dst = appendString(dst, a.Err)
	dst = appendBool(dst, a.NotLeader)
	return appendString(dst, a.Leader)
}

// DecodeAck decodes an Ack.
func DecodeAck(b []byte) (Ack, error) {
	d := &decoder{buf: b}
	a := Ack{OK: d.bool(), Err: d.string(), NotLeader: d.bool(), Leader: d.string()}
	if err := d.finish(); err != nil {
		return Ack{}, fmt.Errorf("ack: %w", err)
	}
	return a, nil
}

// Result reports a transaction's fate to a polling client. Found is false
// while the transaction is still in flight (or unknown).
type Result struct {
	Found bool
	TxID  string
	Code  protocol.ValidationCode
	Block uint64
}

// EncodeResult renders r canonically.
func EncodeResult(r Result) []byte {
	dst := appendBool(nil, r.Found)
	dst = appendString(dst, r.TxID)
	dst = appendU8(dst, uint8(r.Code))
	return appendU64(dst, r.Block)
}

// DecodeResult decodes a Result.
func DecodeResult(b []byte) (Result, error) {
	d := &decoder{buf: b}
	r := Result{Found: d.bool(), TxID: d.string(), Code: protocol.ValidationCode(d.u8()), Block: d.u64()}
	if err := d.finish(); err != nil {
		return Result{}, fmt.Errorf("result: %w", err)
	}
	return r, nil
}

// Subscribe opens a block-delivery stream. The server sends every sealed
// block with number > From, in order, forever — history first (catch-up),
// then the live tail.
type Subscribe struct {
	From uint64
}

// EncodeSubscribe renders s canonically.
func EncodeSubscribe(s Subscribe) []byte { return appendU64(nil, s.From) }

// DecodeSubscribe decodes a Subscribe.
func DecodeSubscribe(b []byte) (Subscribe, error) {
	d := &decoder{buf: b}
	s := Subscribe{From: d.u64()}
	if err := d.finish(); err != nil {
		return Subscribe{}, fmt.Errorf("subscribe: %w", err)
	}
	return s, nil
}

// Status reports a node's chain/state position — what the convergence checks
// compare across peers.
type Status struct {
	// Role is "orderer" or "peer".
	Role string
	// Name is the node's enrolled identity.
	Name string
	// Height is the committed block height (peers: state height; orderers:
	// sealed-chain height).
	Height uint64
	// Blocks is the chain length.
	Blocks uint64
	// TipHash is the hash of the chain's last header — bit-identical across
	// converged replicas.
	TipHash []byte
	// StateHash fingerprints every live (key, value) pair (peers only).
	StateHash string
	// Term is the node's current Raft term (orderers in cluster mode; 0
	// otherwise).
	Term uint64
	// Leader is the advertised client address of the last known Raft leader
	// ("" when unknown or not clustered).
	Leader string
	// CommittedTx counts committed transaction verdicts across the chain —
	// the chaos smoke's zero-loss ledger-side tally.
	CommittedTx uint64
}

// EncodeStatus renders s canonically.
func EncodeStatus(s Status) []byte {
	dst := appendString(nil, s.Role)
	dst = appendString(dst, s.Name)
	dst = appendU64(dst, s.Height)
	dst = appendU64(dst, s.Blocks)
	dst = appendBytes(dst, s.TipHash)
	dst = appendString(dst, s.StateHash)
	dst = appendU64(dst, s.Term)
	dst = appendString(dst, s.Leader)
	return appendU64(dst, s.CommittedTx)
}

// DecodeStatus decodes a Status.
func DecodeStatus(b []byte) (Status, error) {
	d := &decoder{buf: b}
	s := Status{
		Role:   d.string(),
		Name:   d.string(),
		Height: d.u64(),
		Blocks: d.u64(),
	}
	s.TipHash = d.bytes()
	s.StateHash = d.string()
	s.Term = d.u64()
	s.Leader = d.string()
	s.CommittedTx = d.u64()
	if err := d.finish(); err != nil {
		return Status{}, fmt.Errorf("status: %w", err)
	}
	return s, nil
}
