package bench

import (
	"fmt"

	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/seqno"
	"fabricsharp/internal/statedb"
	"fabricsharp/internal/validation"
)

// figure2State builds the state after block 2 of Figure 2a:
//
//	block 1: A=100 (1,1), B=101 (1,2), C=102 (1,3)
//	block 2: B=201 (2,1), C=201 (2,1)
func figure2State() *statedb.DB {
	db, err := statedb.New(statedb.Options{})
	if err != nil {
		panic(err)
	}
	mustApply := func(block uint64, ws []statedb.BlockWrites) {
		if err := db.ApplyBlock(block, ws); err != nil {
			panic(err)
		}
	}
	mustApply(1, []statedb.BlockWrites{
		{Pos: 1, Writes: []protocol.WriteItem{{Key: "A", Value: []byte("100")}}},
		{Pos: 2, Writes: []protocol.WriteItem{{Key: "B", Value: []byte("101")}}},
		{Pos: 3, Writes: []protocol.WriteItem{{Key: "C", Value: []byte("102")}}},
	})
	mustApply(2, []statedb.BlockWrites{
		{Pos: 1, Writes: []protocol.WriteItem{
			{Key: "B", Value: []byte("201")},
			{Key: "C", Value: []byte("201")},
		}},
	})
	return db
}

// figure2Txns builds Txn1..Txn5 with the exact read/write sets of Table 1.
func figure2Txns() map[string]*protocol.Transaction {
	tx := func(id string, snap uint64, reads []protocol.ReadItem, writes []protocol.WriteItem) *protocol.Transaction {
		return &protocol.Transaction{ID: protocol.TxID(id), SnapshotBlock: snap,
			RWSet: protocol.RWSet{Reads: reads, Writes: writes}}
	}
	r := func(key string, b uint64, p uint32) protocol.ReadItem {
		return protocol.ReadItem{Key: key, Version: seqno.Commit(b, p)}
	}
	w := func(key, val string) protocol.WriteItem {
		return protocol.WriteItem{Key: key, Value: []byte(val)}
	}
	return map[string]*protocol.Transaction{
		// Txn1 starts after block 1 and finishes after block 2: it read B
		// from block 1 and C from block 2 (a cross-block read).
		"Txn1": tx("Txn1", 1, []protocol.ReadItem{r("B", 1, 2), r("C", 2, 1)}, nil),
		"Txn2": tx("Txn2", 1, []protocol.ReadItem{r("A", 1, 1), r("B", 1, 2)}, []protocol.WriteItem{w("C", "301")}),
		"Txn3": tx("Txn3", 2, []protocol.ReadItem{r("B", 2, 1)}, []protocol.WriteItem{w("C", "302")}),
		"Txn4": tx("Txn4", 2, []protocol.ReadItem{r("C", 2, 1)}, []protocol.WriteItem{w("B", "303")}),
		"Txn5": tx("Txn5", 2, []protocol.ReadItem{r("C", 2, 1)}, []protocol.WriteItem{w("A", "304")}),
	}
}

// Table1Statuses computes each system's commit decision for Txn1..Txn5 of
// Figure 2a. Keys of the outer map: "Fabric", "Fabric++", "Fabric#".
func Table1Statuses() map[string]map[string]string {
	out := map[string]map[string]string{
		"Fabric":   {},
		"Fabric++": {},
		"Fabric#":  {},
	}

	// --- Vanilla Fabric: Txn1 is not allowed (the simulation lock forbids
	// reading across blocks); Txn2-5 are ordered FIFO into block 3 and
	// MVCC-validated.
	{
		txs := figure2Txns()
		out["Fabric"]["Txn1"] = "N.A."
		db := figure2State()
		s := sched.NewFabric()
		order := []string{"Txn2", "Txn3", "Txn4", "Txn5"}
		for _, id := range order {
			if code, _ := s.OnArrival(txs[id]); code != protocol.Valid {
				out["Fabric"][id] = mark(false)
			}
		}
		res, _ := s.OnBlockFormation()
		applyBlock(db, 3, res.Ordered, true, out["Fabric"])
	}

	// --- Fabric++: Txn1 aborts during simulation (cross-block read); the
	// rest are reordered before block formation, then MVCC-validated.
	{
		txs := figure2Txns()
		db := figure2State()
		s := sched.NewFabricPP(sched.Options{})
		for _, id := range []string{"Txn1", "Txn2", "Txn3", "Txn4", "Txn5"} {
			if sched.ReadsAcrossBlocks(txs[id]) {
				out["Fabric++"][id] = mark(false) // simulation abort
				continue
			}
			if code, _ := s.OnArrival(txs[id]); code != protocol.Valid {
				out["Fabric++"][id] = mark(false)
			}
		}
		res, _ := s.OnBlockFormation()
		for _, d := range res.DroppedTxs {
			out["Fabric++"][string(d.Tx.ID)] = mark(false)
		}
		applyBlock(db, 3, res.Ordered, true, out["Fabric++"])
	}

	// --- FabricSharp: Algorithm 1's snapshot reads mean Txn1 executes
	// against snapshot 2 (reads B(2,1), C(2,1) — Figure 3a's point: a
	// legitimate cross-block reader is snapshot consistent); the others
	// carry the same intents. Unserializable arrivals drop before
	// ordering; the rest commit without MVCC validation.
	{
		txs := figure2Txns()
		txs["Txn1"].RWSet.Reads = []protocol.ReadItem{
			{Key: "B", Version: seqno.Commit(2, 1)},
			{Key: "C", Version: seqno.Commit(2, 1)},
		}
		txs["Txn1"].SnapshotBlock = 2
		db := figure2State()
		s := sched.NewSharp(sched.Options{})
		// Seed the committed indices with blocks 1 and 2.
		seed := []*protocol.Transaction{
			{ID: "b1a", SnapshotBlock: 0, RWSet: protocol.RWSet{Writes: []protocol.WriteItem{{Key: "A"}}}},
			{ID: "b1b", SnapshotBlock: 0, RWSet: protocol.RWSet{Writes: []protocol.WriteItem{{Key: "B"}}}},
			{ID: "b1c", SnapshotBlock: 0, RWSet: protocol.RWSet{Writes: []protocol.WriteItem{{Key: "C"}}}},
		}
		for _, tx := range seed {
			s.OnArrival(tx)
		}
		s.OnBlockFormation() // block 1
		b2 := &protocol.Transaction{ID: "b2", SnapshotBlock: 1, RWSet: protocol.RWSet{
			Writes: []protocol.WriteItem{{Key: "B"}, {Key: "C"}}}}
		s.OnArrival(b2)
		s.OnBlockFormation() // block 2
		for _, id := range []string{"Txn1", "Txn2", "Txn3", "Txn4", "Txn5"} {
			if code, _ := s.OnArrival(txs[id]); code != protocol.Valid {
				out["Fabric#"][id] = mark(false)
			}
		}
		res, _ := s.OnBlockFormation()
		applyBlock(db, 3, res.Ordered, false, out["Fabric#"])
	}
	return out
}

func mark(committed bool) string {
	if committed {
		return "COMMIT"
	}
	return "abort"
}

// applyBlock validates a formed block against db and records each
// transaction's fate.
func applyBlock(db *statedb.DB, number uint64, ordered []*protocol.Transaction, mvcc bool, out map[string]string) {
	if len(ordered) == 0 {
		return
	}
	chain, _ := ledger.NewChain(nil)
	blk, err := chain.Seal(ordered, nil)
	if err != nil {
		panic(err)
	}
	blk.Header.Number = number
	codes, err := validation.ValidateAndCommit(db, blk, validation.Options{MVCC: mvcc})
	if err != nil {
		panic(err)
	}
	for i, tx := range ordered {
		out[string(tx.ID)] = mark(codes[i] == protocol.Valid)
	}
}

// Table1 renders the commit-status matrix of the paper's Table 1, extended
// with a FabricSharp row (which recovers Txn1 via snapshot-consistent
// cross-block reads and commits strictly more than both baselines).
func Table1() *Table {
	t := &Table{
		Title:   "Table 1: commit status of Figure 2's transactions",
		Columns: []string{"system", "Txn1", "Txn2", "Txn3", "Txn4", "Txn5", "#committed"},
		Comment: "paper: Fabric commits {Txn3}; Fabric++ commits two of {Txn3,Txn4,Txn5}; Fabric# commits three",
	}
	statuses := Table1Statuses()
	for _, system := range []string{"Fabric", "Fabric++", "Fabric#"} {
		row := []interface{}{system}
		committed := 0
		for _, id := range []string{"Txn1", "Txn2", "Txn3", "Txn4", "Txn5"} {
			st := statuses[system][id]
			if st == "" {
				st = "?"
			}
			if st == "COMMIT" {
				committed++
			}
			row = append(row, st)
		}
		row = append(row, committed)
		t.AddRow(row...)
	}
	return t
}

// ReorderCost measures the real wall-clock cost of each reordering
// implementation on synthetic conflicting batches — the Section 5.3 numbers
// (Fabric++ 4.3 ms at 50 txns to 401 ms at 500; Focc-l 0.12 ms to 5.19 ms).
func ReorderCost() *Table {
	t := &Table{
		Title:   "Section 5.3: block-formation (reorder) cost vs batch size (ms, measured)",
		Columns: []string{"batch size", "Fabric++", "Focc-l", "Fabric#"},
		Comment: "wall-clock of this repository's implementations; the paper's ratios, not its absolute values, are the target",
	}
	for _, n := range []int{50, 100, 200, 300, 400, 500} {
		row := []interface{}{n}
		for _, system := range []sched.System{sched.SystemFabricPP, sched.SystemFoccL, sched.SystemSharp} {
			s, err := sched.New(system, sched.Options{})
			if err != nil {
				panic(err)
			}
			for i := 0; i < n; i++ {
				tx := &protocol.Transaction{
					ID:            protocol.TxID(fmt.Sprintf("t%d", i)),
					SnapshotBlock: 0,
					RWSet: protocol.RWSet{
						Reads:  []protocol.ReadItem{{Key: fmt.Sprintf("k%d", (i*7)%25)}},
						Writes: []protocol.WriteItem{{Key: fmt.Sprintf("k%d", (i*3)%25)}},
					},
				}
				s.OnArrival(tx)
			}
			if _, err := s.OnBlockFormation(); err != nil {
				panic(err)
			}
			row = append(row, fmt.Sprintf("%.3f", s.Timing().MeanFormationMS()))
		}
		t.AddRow(row...)
	}
	return t
}
