package fabric

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/sched"
)

// TestShadowVerdictsMatchPeerValidation runs a contended workload through
// every system and asserts the tentpole invariant end to end: the verdicts
// the orderer's shadow validator sealed into each block are byte-identical
// to the codes the peers derived during validation. (The committers also
// assert this per block at runtime — a divergence would surface through
// n.Err() — but this test checks the recorded chains directly, for all five
// systems.)
func TestShadowVerdictsMatchPeerValidation(t *testing.T) {
	for _, system := range sched.Systems() {
		system := system
		t.Run(string(system), func(t *testing.T) {
			n := newNet(t, Options{System: system, BlockSize: 8})
			client, err := n.NewClient("shadow")
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < 6; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 12; i++ {
						switch i % 3 {
						case 0:
							client.Submit("kv", "rmw", "hot", "1")
						case 1:
							client.Submit("kv", "put", fmt.Sprintf("cold-%d-%d", w, i), "v")
						default:
							client.Submit("kv", "rmw", fmt.Sprintf("warm%d", i%4), "1")
						}
					}
				}(w)
			}
			wg.Wait()
			if !n.WaitIdle(10 * time.Second) {
				t.Fatalf("network did not go idle (err=%v)", n.Err())
			}
			if err := n.Err(); err != nil {
				t.Fatal(err)
			}

			peer := n.Peer(0)
			if peer.Chain().Len() == 0 {
				t.Fatal("no blocks committed")
			}
			aborts := 0
			peer.Chain().ForEach(func(pb *ledger.Block) bool {
				ob, ok := n.OrdererChain(0).Get(pb.Header.Number)
				if !ok {
					t.Fatalf("orderer chain missing block %d", pb.Header.Number)
				}
				if len(ob.Validation) != len(pb.Validation) {
					t.Fatalf("block %d: orderer sealed %d verdicts, peer derived %d",
						pb.Header.Number, len(ob.Validation), len(pb.Validation))
				}
				for i := range pb.Validation {
					if ob.Validation[i] != pb.Validation[i] {
						t.Fatalf("block %d tx %d: orderer shadow verdict %v, peer verdict %v",
							pb.Header.Number, i, ob.Validation[i], pb.Validation[i])
					}
					if pb.Validation[i] != protocol.Valid {
						aborts++
					}
				}
				return true
			})
			// Systems that let conflicts reach the ledger (Fabric's FIFO,
			// Focc-l's reorder-only batches) must have actually exercised
			// the abort path, or the equality above says nothing. Fabric++
			// reorders/drops conflicts before sealing, so its blocks can
			// legitimately be clean.
			if (system == sched.SystemFabric || system == sched.SystemFoccL) && aborts == 0 {
				t.Error("no validation aborts under contention — workload not contended?")
			}
		})
	}
}

// TestFoccLLeadFollowerAgreement pins the agreement property this PR turned
// from best-effort into exact: Focc-l is the one scheduler whose block
// contents depend on commit feedback, so before feedback became a
// deterministic function of the stream, lead and follower orderers could
// seal different chains under contention. Now every replica derives
// identical verdicts at identical stream positions, and the chains —
// contents, hashes, and sealed verdicts — must match bit for bit.
func TestFoccLLeadFollowerAgreement(t *testing.T) {
	n := newNet(t, Options{System: sched.SystemFoccL, Orderers: 3, BlockSize: 8})
	client, err := n.NewClient("bank")
	if err != nil {
		t.Fatal(err)
	}
	// A contended SmallBank stream: a small hot account pool hammered by
	// concurrent transfers, so doomed transactions (stale reads beyond
	// intra-batch repair) actually occur and the reordering reads feedback.
	for i := 0; i < 4; i++ {
		if _, err := client.MustSubmit("smallbank", "create_account", fmt.Sprintf("h%d", i), "100000", "100000"); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				src := fmt.Sprintf("h%d", (w+i)%4)
				dst := fmt.Sprintf("h%d", (w+i+1)%4)
				client.Submit("smallbank", "send_payment", src, dst, "1")
			}
		}(w)
	}
	wg.Wait()
	if !n.WaitIdle(10 * time.Second) {
		t.Fatalf("network did not go idle (err=%v)", n.Err())
	}
	if err := n.Err(); err != nil {
		t.Fatal(err)
	}

	// Followers consume the same stream asynchronously; give them a bounded
	// moment to reach the lead's tip before demanding exact agreement.
	awaitFollowers(n, 5*time.Second)
	lead := n.OrdererChain(0)

	if lead.Len() < 2 {
		t.Fatalf("only %d blocks sealed — stream not contended enough", lead.Len())
	}
	conflicts := 0
	lead.ForEach(func(lb *ledger.Block) bool {
		for _, c := range lb.Validation {
			if c == protocol.MVCCConflict {
				conflicts++
			}
		}
		return true
	})
	if conflicts == 0 {
		t.Error("no MVCC conflicts on the lead chain — Focc-l's doomed path not exercised")
	}

	assertOrderersAgree(t, n)
}

// awaitFollowers gives the follower orderers (which consume the same stream
// asynchronously) a bounded moment to reach the lead's tip.
func awaitFollowers(n *Network, timeout time.Duration) {
	lead := n.OrdererChain(0)
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		caughtUp := true
		for i := 1; i < n.Orderers(); i++ {
			if !bytes.Equal(n.OrdererChain(i).TipHash(), lead.TipHash()) {
				caughtUp = false
			}
		}
		if caughtUp {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertOrderersAgree demands bit-identical chains — lengths, hashes, block
// contents, sealed verdicts — on every orderer replica.
func assertOrderersAgree(t *testing.T, n *Network) {
	t.Helper()
	lead := n.OrdererChain(0)
	for i := 1; i < n.Orderers(); i++ {
		follower := n.OrdererChain(i)
		if follower.Len() != lead.Len() {
			t.Fatalf("orderer %d sealed %d blocks, lead %d", i, follower.Len(), lead.Len())
		}
		if !bytes.Equal(follower.TipHash(), lead.TipHash()) {
			t.Fatalf("orderer %d tip diverged from lead", i)
		}
		lead.ForEach(func(lb *ledger.Block) bool {
			fb, ok := follower.Get(lb.Header.Number)
			if !ok {
				t.Fatalf("orderer %d missing block %d", i, lb.Header.Number)
			}
			if !bytes.Equal(fb.Hash(), lb.Hash()) {
				t.Fatalf("orderer %d block %d hash diverged", i, lb.Header.Number)
			}
			// The rescue digest is block metadata (outside the header hash),
			// so agreement on it must be asserted separately.
			if !bytes.Equal(fb.RescueDigest, lb.RescueDigest) {
				t.Fatalf("orderer %d block %d rescue digest diverged: %x vs lead %x",
					i, lb.Header.Number, fb.RescueDigest, lb.RescueDigest)
			}
			for j := range lb.Transactions {
				if fb.Transactions[j].ID != lb.Transactions[j].ID {
					t.Fatalf("orderer %d block %d position %d: tx %s vs lead %s",
						i, lb.Header.Number, j, fb.Transactions[j].ID, lb.Transactions[j].ID)
				}
				if fb.Validation[j] != lb.Validation[j] {
					t.Fatalf("orderer %d block %d tx %d: verdict %v vs lead %v",
						i, lb.Header.Number, j, fb.Validation[j], lb.Validation[j])
				}
			}
			return true
		})
	}
}

// TestRescueLeadFollowerAgreement pins the determinism of the post-order
// rescue phase: with Rescue enabled, every orderer replica re-executes the
// block's MVCC casualties against its own shadow state and must seal
// bit-identical verdicts AND bit-identical rescue write-set digests — the
// digest is a hash of the re-executed values themselves, so agreement means
// the speculative parallel executor converged to the same bytes on every
// replica. Peers re-derive the same digest during commit (a mismatch would
// surface through n.Err()), and their chains must carry the same Rescued
// verdicts the orderers sealed.
func TestRescueLeadFollowerAgreement(t *testing.T) {
	for _, system := range []sched.System{sched.SystemFabric, sched.SystemFoccL} {
		system := system
		t.Run(string(system), func(t *testing.T) {
			n := newNet(t, Options{System: system, Orderers: 3, BlockSize: 8, Rescue: true})
			client, err := n.NewClient("bank")
			if err != nil {
				t.Fatal(err)
			}
			const hot = 4
			const seedBal = 100000
			for i := 0; i < hot; i++ {
				if _, err := client.MustSubmit("smallbank", "create_account", fmt.Sprintf("h%d", i), fmt.Sprint(seedBal), fmt.Sprint(seedBal)); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			for w := 0; w < 6; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 15; i++ {
						src := fmt.Sprintf("h%d", (w+i)%hot)
						dst := fmt.Sprintf("h%d", (w+i+1)%hot)
						client.Submit("smallbank", "send_payment", src, dst, fmt.Sprint(1+i%7))
					}
				}(w)
			}
			wg.Wait()
			if !n.WaitIdle(10 * time.Second) {
				t.Fatalf("network did not go idle (err=%v)", n.Err())
			}
			if err := n.Err(); err != nil {
				t.Fatal(err)
			}
			awaitFollowers(n, 5*time.Second)

			// The contended stream must actually have exercised the rescue
			// path, or the agreement below says nothing about it.
			rescued, digests := 0, 0
			lead := n.OrdererChain(0)
			lead.ForEach(func(lb *ledger.Block) bool {
				for _, c := range lb.Validation {
					if c == protocol.Rescued {
						rescued++
					}
				}
				if lb.RescueDigest != nil {
					digests++
				}
				return true
			})
			if rescued == 0 {
				t.Fatal("no Rescued verdicts sealed — workload not contended enough")
			}
			if digests == 0 {
				t.Fatal("Rescued verdicts present but no block carries a rescue digest")
			}

			assertOrderersAgree(t, n)

			// Peers derived the same verdicts (including Rescued) from the
			// sealed blocks.
			peer := n.Peer(0)
			peer.Chain().ForEach(func(pb *ledger.Block) bool {
				ob, ok := lead.Get(pb.Header.Number)
				if !ok {
					t.Fatalf("orderer chain missing block %d", pb.Header.Number)
				}
				for i := range pb.Validation {
					if ob.Validation[i] != pb.Validation[i] {
						t.Fatalf("block %d tx %d: orderer sealed %v, peer derived %v",
							pb.Header.Number, i, ob.Validation[i], pb.Validation[i])
					}
				}
				if !bytes.Equal(ob.RescueDigest, pb.RescueDigest) {
					t.Fatalf("block %d: peer rescue digest diverged from orderer", pb.Header.Number)
				}
				return true
			})

			// Money conservation: send_payment moves value between checking
			// accounts; rescued re-executions must preserve the invariant
			// exactly. Any double-applied or stale-value rescue breaks this.
			total := 0
			for i := 0; i < hot; i++ {
				for _, key := range []string{chaincode.CheckingKey(fmt.Sprintf("h%d", i)), chaincode.SavingsKey(fmt.Sprintf("h%d", i))} {
					vv, ok := peer.State().Get(key)
					if !ok {
						t.Fatalf("account key %s missing from peer state", key)
					}
					bal, err := strconv.Atoi(string(vv.Value))
					if err != nil {
						t.Fatalf("account key %s holds %q: %v", key, vv.Value, err)
					}
					total += bal
				}
			}
			if want := hot * 2 * seedBal; total != want {
				t.Fatalf("money not conserved across rescues: accounts sum to %d, want %d", total, want)
			}
		})
	}
}

// TestCompactionLeadFollowerAgreement is the hard invariant of PR 4's epoch
// compaction: lead and follower orderers compact their intern tables at cut
// time — remapping every KeyID — and must still seal bit-identical chains.
// The workload churns through a rotating key space (every round touches a
// fresh generation, retiring the previous one past the horizon) alongside a
// persistent hot set, across at least two compaction boundaries, for the
// schedulers whose committed-key state actually participates in decisions.
func TestCompactionLeadFollowerAgreement(t *testing.T) {
	for _, system := range []sched.System{sched.SystemSharp, sched.SystemFoccS} {
		system := system
		t.Run(string(system), func(t *testing.T) {
			n := newNet(t, Options{
				System:       system,
				Orderers:     3,
				BlockSize:    4,
				MaxSpan:      4,
				CompactEvery: 2,
			})
			client, err := n.NewClient("churn")
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 12; i++ {
						gen := i / 3 // rotate the key space every few rounds
						switch i % 3 {
						case 0:
							client.Submit("kv", "rmw", "hot", "1")
						case 1:
							client.Submit("kv", "put", fmt.Sprintf("g%d:w%d:%d", gen, w, i), "v")
						default:
							client.Submit("kv", "rmw", fmt.Sprintf("g%d:warm%d", gen, i%2), "1")
						}
					}
				}(w)
			}
			wg.Wait()
			if !n.WaitIdle(10 * time.Second) {
				t.Fatalf("network did not go idle (err=%v)", n.Err())
			}
			if err := n.Err(); err != nil {
				t.Fatal(err)
			}
			awaitFollowers(n, 5*time.Second)
			// ≥2 compaction boundaries: with CompactEvery=2 that means at
			// least 4 sealed blocks.
			if sealed := n.OrdererChain(0).Len(); sealed < 4 {
				t.Fatalf("only %d blocks sealed — fewer than two compaction epochs", sealed)
			}
			assertOrderersAgree(t, n)
		})
	}
}

// TestDedupSeenEviction checks the orderers' duplicate-suppression memory is
// bounded by DedupHorizon: TxIDs resolved more than the horizon ago are
// forgotten, recent ones retained.
func TestDedupSeenEviction(t *testing.T) {
	n := newNet(t, Options{System: sched.SystemSharp, BlockSize: 2, DedupHorizon: 2})
	client, err := n.NewClient("dedup")
	if err != nil {
		t.Fatal(err)
	}
	var firstID, lastID protocol.TxID
	for i := 0; i < 12; i++ {
		id, ch, err := client.SubmitAsync("kv", "put", fmt.Sprintf("k%d", i), "v")
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			firstID = id
		}
		lastID = id
		if res := <-ch; !res.Committed() {
			t.Fatalf("tx %d aborted: %v", i, res.Code)
		}
	}
	if !n.WaitIdle(5 * time.Second) {
		t.Fatal("network did not go idle")
	}
	sealed := uint64(n.OrdererChain(0).Len())
	if sealed < 4 {
		t.Fatalf("only %d blocks sealed", sealed)
	}
	// Orderer goroutines must be quiesced before inspecting their maps.
	n.Close()
	for _, o := range n.orderers {
		if o.seen[firstID] {
			t.Errorf("orderer %s: first TxID still deduped after %d blocks (horizon 2)", o.name, sealed)
		}
		if !o.seen[lastID] {
			t.Errorf("orderer %s: most recent TxID evicted", o.name)
		}
		if len(o.seenByBlock) > 3 {
			t.Errorf("orderer %s: %d dedup buckets retained (horizon 2)", o.name, len(o.seenByBlock))
		}
		if o.seenFloor+2 < sealed {
			t.Errorf("orderer %s: eviction floor %d lags sealed height %d", o.name, o.seenFloor, sealed)
		}
	}
}
