package network

import (
	"fmt"
	"sort"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/scenario"
	"fabricsharp/internal/seqno"
	"fabricsharp/internal/statedb"
)

// VerifySerializability is the end-to-end correctness check for a run: it
// rebuilds the exact precedence graph of the committed transactions from
// their recorded read versions and commit positions (wr, ww and anti-rw
// dependencies), demands it be acyclic, then re-executes the real contracts
// serially in a topological order against a copy of the genesis state and
// requires the final contents to equal the pipeline's final state
// byte-for-byte. That is precisely One-Copy Serializability — the guarantee
// Theorem 1/2 promise for every system under comparison.
//
// For the strongly serializable systems (fabric, fabric++, focc-l) the
// ledger order itself is the serial order, which the topological sort
// reproduces because every dependency there follows commit order.
//
// Rescued transactions (post-order re-execution) are committed too, at their
// protocol.CommitPositions version — after the whole block. Their recorded
// read set describes the endorsement-time simulation, NOT the re-execution,
// so no precedence edges are derived from it; instead a rescued transaction
// is pinned into version order against every committed writer of a key in
// its declared read/write sets (a superset of what the re-execution touched,
// by the rescue phase's containment rule). Rescue only runs on the strongly
// serializable systems, where every dependency follows version order, so
// these extra order-following edges can never create a cycle.
func VerifySerializability(res *Result) error {
	type committedTx struct {
		tx      *protocol.Transaction
		ver     seqno.Seq
		rescued bool
	}
	var committed []committedTx
	var walkErr error
	res.Chain.ForEach(func(b *ledger.Block) bool {
		if len(b.Validation) != len(b.Transactions) {
			walkErr = fmt.Errorf("network: block %d missing validation metadata", b.Header.Number)
			return false
		}
		pos := protocol.CommitPositions(b.Validation)
		for i, tx := range b.Transactions {
			if b.Validation[i].Committed() {
				committed = append(committed, committedTx{
					tx:      tx,
					ver:     seqno.Commit(b.Header.Number, pos[i]),
					rescued: b.Validation[i] == protocol.Rescued,
				})
			}
		}
		return true
	})
	if walkErr != nil {
		return walkErr
	}
	// Rescued commit positions sit above the in-block positions, so the walk
	// order above is not version order; the graph construction below (ww
	// edges, ledger-order tie-breaks) relies on index order == version order.
	sort.Slice(committed, func(i, j int) bool { return committed[i].ver.Less(committed[j].ver) })
	n := len(committed)
	byVersion := map[seqno.Seq]int{}
	writersOf := map[string][]int{} // ledger order == version order
	for i, c := range committed {
		byVersion[c.ver] = i
		for _, k := range c.tx.RWSet.WriteKeys() {
			writersOf[k] = append(writersOf[k], i)
		}
	}

	succ := make([]map[int]struct{}, n)
	indeg := make([]int, n)
	addEdge := func(from, to int) {
		if from == to {
			return
		}
		if succ[from] == nil {
			succ[from] = map[int]struct{}{}
		}
		if _, dup := succ[from][to]; !dup {
			succ[from][to] = struct{}{}
			indeg[to]++
		}
	}
	for i, c := range committed {
		if c.rescued {
			// The recorded reads are pre-rescue; pin the transaction into
			// version order against every committed writer of its declared
			// keys instead (see the function comment).
			for _, k := range append(c.tx.RWSet.ReadKeys(), c.tx.RWSet.WriteKeys()...) {
				for _, w := range writersOf[k] {
					if w < i {
						addEdge(w, i)
					} else if w > i {
						addEdge(i, w)
					}
				}
			}
			continue
		}
		for _, r := range c.tx.RWSet.Reads {
			// wr: the writer of the version read precedes the reader.
			// Genesis versions (block 0) and absent reads have no writer.
			if r.Version.Block > 0 {
				if w, ok := byVersion[r.Version]; ok {
					addEdge(w, i)
				}
			}
			// anti-rw: the reader precedes every later writer of the key.
			for _, w := range writersOf[r.Key] {
				if r.Version.Less(committed[w].ver) {
					addEdge(i, w)
				}
			}
		}
	}
	for _, ws := range writersOf {
		for i := 0; i+1 < len(ws); i++ {
			addEdge(ws[i], ws[i+1]) // ww in commit order
		}
	}

	// Kahn topological sort with ledger-order tie-break.
	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Ints(ready)
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for s := range succ[v] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != n {
		var stuck []protocol.TxID
		for i := 0; i < n && len(stuck) < 8; i++ {
			if indeg[i] > 0 {
				stuck = append(stuck, committed[i].tx.ID)
			}
		}
		return fmt.Errorf("network: committed schedule has a dependency cycle (system %s, %d of %d unordered, e.g. %v)",
			res.Config.System, n-len(order), n, stuck)
	}

	// Serial re-execution of the real contracts in the equivalent order,
	// against the same contract set the run deployed (the registry-backed
	// default covers every registered scenario).
	replay := res.Genesis.Clone()
	contracts := res.Config.Contracts
	if len(contracts) == 0 {
		contracts = scenario.AllContracts()
	}
	registry := chaincode.NewRegistry(contracts...)
	for step, idx := range order {
		c := committed[idx]
		contract, ok := registry.Get(c.tx.Contract)
		if !ok {
			return fmt.Errorf("network: unknown contract %q", c.tx.Contract)
		}
		rwset, err := chaincode.Simulate(contract, c.tx.Function, c.tx.Args, serialReader{db: replay})
		if err != nil {
			return fmt.Errorf("network: serial re-execution of %s failed: %w", c.tx.ID, err)
		}
		if err := replay.ApplyBlock(replay.Height()+1, []statedb.BlockWrites{{Pos: 1, Writes: rwset.Writes}}); err != nil {
			return fmt.Errorf("network: replay apply at step %d: %w", step, err)
		}
	}
	if got, want := replay.StateFingerprint(), res.State.StateFingerprint(); got != want {
		return fmt.Errorf("network: serial re-execution diverged from pipeline state (system %s): %s != %s",
			res.Config.System, got, want)
	}
	return nil
}

// serialReader reads the latest state during serial re-execution.
type serialReader struct{ db *statedb.DB }

func (r serialReader) Read(key string) ([]byte, seqno.Seq, bool, error) {
	vv, ok := r.db.Get(key)
	if !ok {
		return nil, seqno.Seq{}, false, nil
	}
	return vv.Value, vv.Version, true, nil
}

// ReadRange implements chaincode.RangeReader for contracts using range
// scans.
func (r serialReader) ReadRange(start, end string) ([]string, error) {
	return r.db.KeysInRange(start, end, r.db.Height()), nil
}
