package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags dropped errors on fatal-propagation paths, module-wide:
// the wire codec (Encode*/Decode* in internal/wire), kvstore ApplyBatch,
// and Persist hooks. Each of these failing means a replica is about to
// diverge from the sealed chain or lose durable state — per the epoch
// compaction PR these errors must ride the fatal Network.Err path, never
// vanish into an ignored return. A call counts as dropped when it stands
// alone as a statement, runs under go/defer, or binds its error result to
// the blank identifier.
var ErrDrop = &Analyzer{
	Name:  "errdrop",
	Doc:   "flags unchecked errors from wire Encode/Decode, kvstore.ApplyBatch, and Persist hooks",
	Scope: ModuleScope,
	Run:   runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, file := range pass.Files {
		if !pass.InScope(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					reportDropped(pass, call, nil)
				}
			case *ast.GoStmt:
				reportDropped(pass, s.Call, nil)
			case *ast.DeferStmt:
				reportDropped(pass, s.Call, nil)
			case *ast.AssignStmt:
				if len(s.Rhs) == 1 {
					if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
						reportDropped(pass, call, s.Lhs)
					}
				}
			}
			return true
		})
	}
}

// reportDropped flags call if it is a target whose error results are all
// discarded. lhs is nil for statement/go/defer position (everything
// discarded) or the assignment's left-hand sides.
func reportDropped(pass *Pass, call *ast.CallExpr, lhs []ast.Expr) {
	name, ok := errDropTarget(pass, call)
	if !ok {
		return
	}
	sig, ok := calleeSignature(pass, call)
	if !ok {
		return
	}
	errIdx := errorResultIndexes(sig)
	if len(errIdx) == 0 {
		return
	}
	if lhs != nil {
		// Tuple-aware: result i binds to lhs[i]. A mismatched arity means
		// the compiler already complains; stay quiet.
		if len(lhs) != sig.Results().Len() {
			return
		}
		for _, i := range errIdx {
			id, isIdent := lhs[i].(*ast.Ident)
			if !isIdent || id.Name != "_" {
				return // error is bound to a real variable: checked enough
			}
		}
	}
	pass.Reportf(call.Pos(), "error from %s dropped: this is a fatal-propagation path (replica divergence or durable-state loss); propagate it to Network.Err", name)
}

// errDropTarget reports whether call's callee is one of the policed
// fatal-propagation entry points, returning a display name.
func errDropTarget(pass *Pass, call *ast.CallExpr) (string, bool) {
	obj := calleeObject(pass, call)
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	pkgPath := obj.Pkg().Path()
	inModule := pkgPath == ModulePath || strings.HasPrefix(pkgPath, ModulePath+"/")
	name := obj.Name()
	switch {
	case pkgPath == ModulePath+"/internal/wire" &&
		(strings.HasPrefix(name, "Encode") || strings.HasPrefix(name, "Decode")):
		return "wire." + name, true
	case inModule && name == "ApplyBatch":
		return "ApplyBatch", true
	case inModule && name == "Persist":
		return "Persist", true
	}
	return "", false
}

// calleeObject resolves the called function, method, or func-valued field.
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		return pass.Info.Uses[fun.Sel]
	}
	return nil
}

func calleeSignature(pass *Pass, call *ast.CallExpr) (*types.Signature, bool) {
	t := pass.Info.Types[call.Fun].Type
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func errorResultIndexes(sig *types.Signature) []int {
	var out []int
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			out = append(out, i)
		}
	}
	return out
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
