package sched

import (
	"fmt"
	"sort"

	"fabricsharp/internal/intern"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
)

// FoccL adapts Ding et al.'s batch reordering [12]: nothing is filtered on
// arrival, and at block formation a sort-based greedy pass permutes the
// batch to minimize validation-phase aborts. The greedy works in rounds: it
// repeatedly emits transactions whose intra-batch read-before-write
// constraints are satisfied, pruning the most conflicted transaction to the
// back whenever the remaining graph is cyclic ("keeps pruning transactions
// until there are only transactions without dependencies", Section 5.3).
// Unsalvageable transactions stay in the block and fail MVCC validation —
// the ledger still carries unserializable transactions, exactly like
// Fabric.
// With Options.CompactEvery set, the committed-version tracking is bounded
// to a sliding window: entries whose version fell MaxSpan blocks behind the
// sealed height are dropped (with their interned keys) at compaction
// boundaries. Doomed-detection then only catches reads stale within the
// window — older stale reads are simply left for the validation phase,
// which runs for Focc-l regardless — in exchange for memory proportional to
// the recently written key set instead of every key ever written. Eviction
// happens at stream-determined positions, so replicas stay in agreement.
type FoccL struct {
	pending      []*protocol.Transaction
	keys         *intern.Table
	committed    []seqno.Seq // latest valid version per KeyID, from feedback (zero = none)
	maxSpan      uint64
	compactEvery uint64
	nextBlock    uint64
	timing       Timing
}

// NewFoccL returns the Focc-l scheduler.
func NewFoccL(opts Options) *FoccL {
	if opts.MaxSpan == 0 {
		opts.MaxSpan = 10
	}
	return &FoccL{
		keys:         intern.NewTable(),
		maxSpan:      opts.MaxSpan,
		compactEvery: opts.CompactEvery,
		nextBlock:    1,
	}
}

// committedAt returns the latest valid version recorded for key.
func (f *FoccL) committedAt(k intern.Key) (seqno.Seq, bool) {
	if int(k) >= len(f.committed) {
		return seqno.Seq{}, false
	}
	seq := f.committed[k]
	return seq, seq != seqno.Seq{}
}

// System implements Scheduler.
func (f *FoccL) System() System { return SystemFoccL }

// OnArrival implements Scheduler: everything is admitted
// ("Focc-l does not filter any transactions in Algorithm 2").
func (f *FoccL) OnArrival(tx *protocol.Transaction) (protocol.ValidationCode, error) {
	w := startWatch()
	f.pending = append(f.pending, tx)
	f.timing.Arrivals++
	f.timing.ArrivalNS += w.elapsedNS()
	return protocol.Valid, nil
}

// OnBlockFormation implements Scheduler: the sort-based greedy reordering.
func (f *FoccL) OnBlockFormation() (FormationResult, error) {
	if len(f.pending) == 0 {
		return FormationResult{Block: f.nextBlock}, nil
	}
	w := startWatch()
	ordered := f.greedyOrder(f.pending)
	block := f.nextBlock
	res := FormationResult{Block: block, Ordered: ordered}
	f.pending = nil
	f.nextBlock++
	if f.compactEvery > 0 && block%f.compactEvery == 0 {
		f.compact(block)
	}
	f.timing.Formations++
	f.timing.FormationNS += w.elapsedNS()
	return res, nil
}

// compact drops committed-version entries that fell out of the MaxSpan
// window ending at the just-sealed block, and rebuilds the intern table
// around the survivors. Keys interned only for reads (staleAgainstCommitted
// probes) never acquire a committed entry and are dropped too; they
// re-intern on next sight.
func (f *FoccL) compact(sealed uint64) {
	var h uint64
	if sealed > f.maxSpan {
		h = sealed - f.maxSpan
	}
	old := f.committed
	remap := f.keys.Compact(func(k intern.Key) bool {
		return int(k) < len(old) && old[k] != (seqno.Seq{}) && old[k].Block >= h
	})
	f.committed = make([]seqno.Seq, f.keys.Len())
	for ok, nk := range remap {
		if nk != intern.Dropped {
			f.committed[nk] = old[ok]
		}
	}
}

// greedyOrder permutes the batch. Doomed transactions — whose reads are
// already stale against committed state, so no permutation can save them —
// are moved to the back first (they will fail validation and their writes
// will not apply). The rest are ordered readers-before-writers; cycles are
// broken by deferring the highest-degree transaction to the doomed tail.
func (f *FoccL) greedyOrder(batch []*protocol.Transaction) []*protocol.Transaction {
	var viable []*protocol.Transaction
	var tail []*protocol.Transaction
	for _, tx := range batch {
		if f.staleAgainstCommitted(tx) {
			tail = append(tail, tx)
		} else {
			viable = append(viable, tx)
		}
	}
	ordered, dropped := reorderBatch(f.keys, viable) // same graph machinery as Fabric++
	// Deferred (cycle-breaking) transactions go to the back: some may still
	// pass validation if the writes that would doom them belong to
	// transactions that themselves abort.
	ordered = append(ordered, dropped...)
	ordered = append(ordered, tail...)
	return ordered
}

// staleAgainstCommitted reports whether some read version already lags the
// latest committed (valid) version — beyond intra-batch repair.
func (f *FoccL) staleAgainstCommitted(tx *protocol.Transaction) bool {
	for _, r := range tx.RWSet.Reads {
		if latest, ok := f.committedAt(f.keys.Intern(r.Key)); ok && r.Version.Less(latest) {
			return true
		}
	}
	return false
}

// OnBlockCommitted implements Scheduler: track latest committed versions so
// the next formation knows which pending transactions are already doomed.
// Rescued transactions committed too — their re-executed writes land on the
// declared write keys (key sets are argument-determined for every shipped
// contract, and the rescue phase's containment rule deterministically drops
// any execution that escapes them), so the declared keys are the right
// version bump; the version itself comes from protocol.CommitPositions
// (rescued writes serialize after the whole block).
func (f *FoccL) OnBlockCommitted(block uint64, txs []*protocol.Transaction, codes []protocol.ValidationCode) {
	pos := protocol.CommitPositions(codes)
	for i, tx := range txs {
		if !codes[i].Committed() {
			continue
		}
		seq := seqno.Commit(block, pos[i])
		for _, s := range tx.RWSet.WriteKeys() {
			k := f.keys.Intern(s)
			for int(k) >= len(f.committed) {
				f.committed = append(f.committed, seqno.Seq{})
			}
			f.committed[k] = seq
		}
	}
}

// NeedsMVCCValidation implements Scheduler: reordering is best-effort; the
// validator still enforces serializability.
func (f *FoccL) NeedsMVCCValidation() bool { return true }

// PendingCount implements Scheduler.
func (f *FoccL) PendingCount() int { return len(f.pending) }

// ResidentKeys implements Scheduler.
func (f *FoccL) ResidentKeys() int { return f.keys.Len() }

// FastForward implements Scheduler. A scheduler that has absorbed commit
// feedback has history just like one that has processed arrivals: fast-
// forwarding it would silently keep committed-version state from before the
// jump, and staleAgainstCommitted would judge post-restart transactions
// against a world the restart semantics say no longer exists.
func (f *FoccL) FastForward(height uint64) error {
	if f.timing.Arrivals > 0 || len(f.committed) > 0 {
		return fmt.Errorf("sched: cannot fast-forward a scheduler with history")
	}
	f.nextBlock = height + 1
	return nil
}

// Timing implements Scheduler.
func (f *FoccL) Timing() Timing { return f.timing }

// sortTxIDs is a deterministic helper used in tests.
func sortTxIDs(txs []*protocol.Transaction) []string {
	out := make([]string, len(txs))
	for i, tx := range txs {
		out[i] = string(tx.ID)
	}
	sort.Strings(out)
	return out
}
