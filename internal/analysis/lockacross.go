package analysis

import (
	"go/ast"
	"go/types"
)

// LockAcross flags blocking communication performed while a sync.Mutex or
// RWMutex is held, in the transport and node packages: a channel send, a
// consensus Submit, or a socket write (transport.Conn / net.Conn
// Send/Write) executed between Lock and Unlock. This is the deadlock shape
// the Raft outboxes exist to avoid — a blocked receiver (or a dead TCP
// peer) wedges the lock, and every other goroutine needing it wedges
// behind it, including the one that would have drained the channel.
//
// Tracking is linear per function body (source order, branch bodies
// inherited, defer'd Unlock pinning the lock for the rest of the
// function); goroutine and closure bodies are analyzed with their own
// empty lock set, since they run on a different stack. Channel sends in a
// select carrying a default clause are non-blocking and stay silent.
var LockAcross = &Analyzer{
	Name:  "lockacross",
	Doc:   "flags channel sends, Submit, and socket writes performed while a sync mutex is held (transport, node, trace)",
	Scope: PackageScope("internal/transport", "internal/node", "internal/trace"),
	Run:   runLockAcross,
}

func runLockAcross(pass *Pass) {
	for _, file := range pass.Files {
		if !pass.InScope(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			w := &lockWalker{pass: pass, held: map[string]bool{}}
			w.walkStmts(fd.Body.List)
			return false // nested FuncLits get fresh walkers from within
		})
	}
}

type lockWalker struct {
	pass *Pass
	held map[string]bool // receiver expression -> locked
}

// anyHeld returns the lexicographically first held lock (deterministic
// tool output even when several are held at once).
func (w *lockWalker) anyHeld() (string, bool) {
	best := ""
	for k, v := range w.held {
		if v && (best == "" || k < best) {
			best = k
		}
	}
	return best, best != ""
}

func (w *lockWalker) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		w.walkStmt(s)
	}
}

func (w *lockWalker) walkStmt(stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if recv, kind, ok := mutexOp(w.pass, s.X); ok {
			switch kind {
			case lockOp:
				w.held[recv] = true
			case unlockOp:
				delete(w.held, recv)
			}
			return
		}
		w.checkExpr(s.X)
	case *ast.DeferStmt:
		if _, kind, ok := mutexOp(w.pass, s.Call); ok && kind == unlockOp {
			return // held until return: keep it in the set
		}
		w.checkExpr(s.Call)
	case *ast.GoStmt:
		// The spawned body runs on its own stack without our locks; its
		// sends are its own problem (fresh walker via checkExpr's FuncLit
		// handling). The go statement itself doesn't block.
		w.checkFuncLits(s.Call)
	case *ast.SendStmt:
		w.flagSend(s, false)
		w.checkExpr(s.Chan)
		w.checkExpr(s.Value)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.checkExpr(s.Cond)
		w.walkStmts(s.Body.List)
		if s.Else != nil {
			w.walkStmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond)
		}
		w.walkStmts(s.Body.List)
		if s.Post != nil {
			w.walkStmt(s.Post)
		}
	case *ast.RangeStmt:
		w.checkExpr(s.X)
		w.walkStmts(s.Body.List)
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok {
				w.flagSend(send, hasDefault)
			}
			w.walkStmts(cc.Body)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.IncDecStmt:
		w.checkExpr(s.X)
	}
}

func (w *lockWalker) flagSend(s *ast.SendStmt, nonBlocking bool) {
	if nonBlocking {
		return
	}
	if lock, held := w.anyHeld(); held {
		w.pass.Reportf(s.Arrow, "channel send while %s is held: a blocked receiver wedges the lock and everything queued behind it; release the lock or use a bounded non-blocking outbox", lock)
	}
}

// checkExpr scans an expression for blocking target calls under a held
// lock, giving nested function literals their own fresh walker.
func (w *lockWalker) checkExpr(expr ast.Expr) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			inner := &lockWalker{pass: w.pass, held: map[string]bool{}}
			inner.walkStmts(x.Body.List)
			return false
		case *ast.CallExpr:
			if lock, held := w.anyHeld(); held {
				if name, bad := blockingTargetCall(w.pass, x); bad {
					w.pass.Reportf(x.Pos(), "%s while %s is held: a slow or dead peer wedges the lock; move the I/O outside the critical section", name, lock)
				}
			}
		}
		return true
	})
}

// checkFuncLits only descends into function literals (used for go
// statements, whose immediate call does not block the current goroutine).
func (w *lockWalker) checkFuncLits(call *ast.CallExpr) {
	ast.Inspect(call, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			inner := &lockWalker{pass: w.pass, held: map[string]bool{}}
			inner.walkStmts(fl.Body.List)
			return false
		}
		return true
	})
}

type mutexOpKind int

const (
	lockOp mutexOpKind = iota
	unlockOp
)

// mutexOp recognizes x.Lock / x.RLock / x.Unlock / x.RUnlock on
// sync.Mutex/RWMutex (directly or through embedding), returning a stable
// key for the receiver expression.
func mutexOp(pass *Pass, expr ast.Expr) (string, mutexOpKind, bool) {
	call, ok := unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", 0, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", 0, false
	}
	recvType := sig.Recv().Type()
	if ptr, isPtr := recvType.(*types.Pointer); isPtr {
		recvType = ptr.Elem()
	}
	named, ok := recvType.(*types.Named)
	if !ok || named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex" {
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return exprString(sel.X), lockOp, true
	case "Unlock", "RUnlock":
		return exprString(sel.X), unlockOp, true
	}
	return "", 0, false
}

// blockingTargetCall reports calls that block on a remote party: Submit on
// a module type (consensus commit-wait), and Send/Write on transport or
// net connections.
func blockingTargetCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := pass.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recvPkg := typePackage(sig.Recv().Type())
	if recvPkg == "" {
		return "", false
	}
	inModule := recvPkg == ModulePath || len(recvPkg) > len(ModulePath) && recvPkg[:len(ModulePath)+1] == ModulePath+"/"
	switch fn.Name() {
	case "Submit":
		if inModule {
			return "Submit (commit-wait)", true
		}
	case "Send", "Write", "SendMsg":
		if recvPkg == "net" || recvPkg == ModulePath+"/internal/transport" {
			return fn.Name() + " (socket write)", true
		}
	}
	return "", false
}

// typePackage returns the defining package path of a (possibly pointer)
// named or interface receiver type.
func typePackage(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path()
}
