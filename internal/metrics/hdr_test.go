package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestHDRIndexRoundTrip(t *testing.T) {
	// Exact range: bucket midpoint IS the value.
	for v := int64(0); v < hdrSubCount; v++ {
		if got := hdrValue(hdrIndex(uint64(v))); got != v {
			t.Fatalf("hdrValue(hdrIndex(%d)) = %d", v, got)
		}
	}
	// Log range: the midpoint must sit within the bucket's relative error
	// bound, and indices must be monotone in the value.
	prev := -1
	for _, v := range []uint64{64, 65, 100, 1000, 12345, 1 << 20, 1<<40 + 12345, 1 << 62, math.MaxInt64} {
		idx := hdrIndex(v)
		if idx < prev {
			t.Fatalf("hdrIndex not monotone at %d", v)
		}
		if idx >= hdrBuckets {
			t.Fatalf("hdrIndex(%d) = %d out of range %d", v, idx, hdrBuckets)
		}
		prev = idx
		mid := float64(hdrValue(idx))
		if rel := math.Abs(mid-float64(v)) / float64(v); rel > 1.0/float64(hdrHalf) {
			t.Errorf("bucket midpoint %v for %d off by %.2f%%", mid, v, 100*rel)
		}
	}
}

// TestHDRQuantilesAgainstOracle records log-uniform samples and compares
// every quantile against the exact sorted-slice answer: the histogram's
// bucket resolution bounds the relative error.
func TestHDRQuantilesAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h HDRHistogram
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over [1, 2^30): exercises many octaves, like
		// latencies spanning µs to minutes.
		v := int64(math.Exp(rng.Float64() * math.Log(float64(1<<30))))
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	qs := []float64{0.5, 0.9, 0.99, 0.999}
	got := h.Quantiles(qs...)
	for i, q := range qs {
		rank := int(math.Ceil(q * float64(len(samples))))
		exact := float64(samples[rank-1])
		if rel := math.Abs(float64(got[i])-exact) / exact; rel > 1.0/float64(hdrHalf) {
			t.Errorf("q%.3f = %d, exact %v: relative error %.2f%% exceeds bucket resolution", q, got[i], exact, 100*rel)
		}
	}
	if h.Count() != 20000 {
		t.Errorf("Count = %d", h.Count())
	}
	var sum float64
	for _, v := range samples {
		sum += float64(v)
	}
	if mean := h.Mean(); math.Abs(mean-sum/20000) > 1e-6 {
		t.Errorf("Mean = %v, want %v", mean, sum/20000)
	}
}

func TestHDRSmallAndEdgeCases(t *testing.T) {
	var h HDRHistogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must answer zeros")
	}
	h.Record(-5) // clamps to 0
	h.Record(3)
	h.Record(60) // still in the exact range
	if got := h.Quantiles(0.0, 0.5, 1.0); got[0] != 0 || got[1] != 3 || got[2] != 60 {
		t.Errorf("quantiles = %v, want [0 3 60] (exact range)", got)
	}
}

func TestHDRConcurrentRecord(t *testing.T) {
	var h HDRHistogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				h.Record(int64(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
	// p50 of 8×[1..1000] is 500; allow bucket resolution.
	if got := h.Quantile(0.5); math.Abs(float64(got)-500)/500 > 1.0/float64(hdrHalf) {
		t.Errorf("p50 = %d, want ≈500", got)
	}
}

func TestHDRRecordZeroAllocs(t *testing.T) {
	var h HDRHistogram
	if allocs := testing.AllocsPerRun(1000, func() { h.Record(12345) }); allocs != 0 {
		t.Fatalf("Record allocates %.1f objects/op, want 0", allocs)
	}
}

// TestHistogramQuantilesMatchOracle pins Quantiles to the sorted-slice
// oracle (and to the legacy Percentile) below the reservoir bound.
func TestHistogramQuantilesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var h Histogram
	var sh SyncHistogram
	samples := make([]float64, 0, 2000)
	for i := 0; i < 2000; i++ {
		v := rng.Float64() * 100
		samples = append(samples, v)
		h.Add(v)
		sh.Add(v)
	}
	sort.Float64s(samples)
	qs := []float64{0.5, 0.9, 0.99, 0.999, 1}
	got := h.Quantiles(qs...)
	gotSync := sh.Quantiles(qs...)
	for i, q := range qs {
		idx := int(q*float64(len(samples))) - 1
		if idx < 0 {
			idx = 0
		}
		if got[i] != samples[idx] {
			t.Errorf("Histogram q%v = %v, oracle %v", q, got[i], samples[idx])
		}
		if gotSync[i] != samples[idx] {
			t.Errorf("SyncHistogram q%v = %v, oracle %v", q, gotSync[i], samples[idx])
		}
		if p := h.Percentile(100 * q); p != got[i] {
			t.Errorf("Quantiles(%v) = %v disagrees with Percentile = %v", q, got[i], p)
		}
	}
	if empty := (&Histogram{}).Quantiles(0.5, 0.99); empty[0] != 0 || empty[1] != 0 {
		t.Errorf("empty Quantiles = %v, want zeros", empty)
	}
}
