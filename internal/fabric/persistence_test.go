package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/sched"
)

func TestRestartFromPersistedChain(t *testing.T) {
	dir := t.TempDir()
	boot := func() *Network {
		n, err := NewNetwork(Options{
			System:       sched.SystemSharp,
			BlockSize:    3,
			BlockTimeout: 50 * time.Millisecond,
			DataDir:      dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	// Session 1: write some state, remember the tip.
	n1 := boot()
	c1, err := n1.NewClient("alice")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := c1.MustSubmit("kv", "put", fmt.Sprintf("durable%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	height1 := n1.Height()
	tip1 := n1.Peer(0).Chain().TipHash()
	fp1 := n1.Peer(0).State().StateFingerprint()
	n1.Close()
	if height1 == 0 {
		t.Fatal("no blocks in session 1")
	}

	// Session 2: resume from the same directory.
	n2 := boot()
	defer n2.Close()
	if got := n2.Height(); got != height1 {
		t.Fatalf("resumed height %d want %d", got, height1)
	}
	if !bytes.Equal(n2.Peer(0).Chain().TipHash(), tip1) {
		t.Fatal("resumed chain tip differs")
	}
	if n2.Peer(0).State().StateFingerprint() != fp1 {
		t.Fatal("resumed state differs")
	}
	// Every replica (including in-memory peers) replayed to the same point.
	for i := 1; i < 4; i++ {
		if n2.Peer(i).State().StateFingerprint() != fp1 {
			t.Fatalf("peer %d did not replay the stored chain", i)
		}
		if err := n2.Peer(i).Chain().Verify(); err != nil {
			t.Fatalf("peer %d chain: %v", i, err)
		}
	}

	// The chain continues: new transactions extend the stored one.
	c2, err := n2.NewClient("bob")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c2.MustSubmit("kv", "put", "after-restart", "yes")
	if err != nil {
		t.Fatal(err)
	}
	if res.Block <= height1 {
		t.Fatalf("new block %d does not extend stored height %d", res.Block, height1)
	}
	// Old state is still readable.
	val, err := c2.Query("kv", "get", "durable3")
	if err != nil || string(val) != "v3" {
		t.Fatalf("durable read = %q, %v", val, err)
	}
	if err := n2.Peer(0).Chain().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRestartPreservesVersionsForMVCC(t *testing.T) {
	// After a restart, version tuples must still match what the stored
	// chain assigned — otherwise MVCC systems would misvalidate.
	dir := t.TempDir()
	n1, err := NewNetwork(Options{System: sched.SystemFabric, BlockSize: 2,
		BlockTimeout: 50 * time.Millisecond, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := n1.NewClient("c")
	if _, err := c1.MustSubmit("kv", "rmw", "counter", "5"); err != nil {
		t.Fatal(err)
	}
	n1.Close()

	n2, err := NewNetwork(Options{System: sched.SystemFabric, BlockSize: 2,
		BlockTimeout: 50 * time.Millisecond, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	c2, _ := n2.NewClient("c2")
	// An rmw reads the restored version and must validate cleanly.
	if _, err := c2.MustSubmit("kv", "rmw", "counter", "2"); err != nil {
		t.Fatal(err)
	}
	val, err := c2.Query("kv", "get", "counter")
	if err != nil || string(val) != "7" {
		t.Fatalf("counter = %q, %v", val, err)
	}
}

// TestRestartWithRescuedBlocks persists a chain that contains Rescued
// verdicts and resumes it. Rescued transactions carry no write sets in the
// block, so the replay path must re-derive them with the same executor
// (commit.ReplayRescue on the peers, the orderer's shadow walk for
// OnBlockCommitted) — and must refuse to replay such a chain with Rescue
// disabled.
func TestRestartWithRescuedBlocks(t *testing.T) {
	dir := t.TempDir()
	boot := func(rescue bool) (*Network, error) {
		return NewNetwork(Options{
			System:       sched.SystemFabric,
			BlockSize:    4,
			BlockTimeout: 50 * time.Millisecond,
			DataDir:      dir,
			Rescue:       rescue,
		})
	}

	// Session 1: contended transfers so rescued verdicts land on disk.
	n1, err := boot(true)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := n1.NewClient("bank")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c1.MustSubmit("smallbank", "create_account", fmt.Sprintf("h%d", i), "1000", "1000"); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				c1.Submit("smallbank", "send_payment", fmt.Sprintf("h%d", (w+i)%3), fmt.Sprintf("h%d", (w+i+1)%3), "1")
			}
		}(w)
	}
	wg.Wait()
	if !n1.WaitIdle(10 * time.Second) {
		t.Fatalf("network did not go idle (err=%v)", n1.Err())
	}
	rescued := 0
	n1.Peer(0).Chain().ForEach(func(b *ledger.Block) bool {
		for _, c := range b.Validation {
			if c == protocol.Rescued {
				rescued++
			}
		}
		return true
	})
	height1 := n1.Height()
	tip1 := n1.Peer(0).Chain().TipHash()
	fp1 := n1.Peer(0).State().StateFingerprint()
	n1.Close()
	if rescued == 0 {
		t.Fatal("no Rescued verdicts persisted — fixture not contended enough")
	}

	// Rescue disabled: the stored chain is unreplayable and boot must say so.
	if n, err := boot(false); err == nil {
		n.Close()
		t.Fatal("boot with Rescue disabled replayed a chain holding rescued verdicts")
	}

	// Session 2: resume with Rescue on; replay re-derives the rescued writes.
	n2, err := boot(true)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	if got := n2.Height(); got != height1 {
		t.Fatalf("resumed height %d want %d", got, height1)
	}
	if !bytes.Equal(n2.Peer(0).Chain().TipHash(), tip1) {
		t.Fatal("resumed chain tip differs")
	}
	for i := 0; i < 4; i++ {
		if got := n2.Peer(i).State().StateFingerprint(); got != fp1 {
			t.Fatalf("peer %d resumed state %s, want %s", i, got, fp1)
		}
	}
	// The chain keeps extending, and committed money survived the replay.
	c2, err := n2.NewClient("auditor")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 3; i++ {
		raw, err := c2.Query("smallbank", "query", fmt.Sprintf("h%d", i))
		if err != nil {
			t.Fatal(err)
		}
		var bal struct{ Checking, Savings int }
		if err := json.Unmarshal(raw, &bal); err != nil {
			t.Fatalf("balance %q: %v", raw, err)
		}
		total += bal.Checking + bal.Savings
	}
	if total != 3*2000 {
		t.Fatalf("money not conserved across restart: %d, want %d", total, 3*2000)
	}
}

func TestRangeQueryManifest(t *testing.T) {
	n := newNet(t, Options{System: sched.SystemSharp})
	client, _ := n.NewClient("c")
	for _, id := range []string{"c3", "a1", "b2"} {
		if _, err := client.MustSubmit("supplychain", "register", id, "acme", "loc"); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := client.Query("supplychain", "manifest")
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	if err := json.Unmarshal(raw, &ids); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ids) != "[a1 b2 c3]" {
		t.Errorf("manifest = %v", ids)
	}
}

func TestRangeQueryAsTransactionSerializes(t *testing.T) {
	// A manifest submitted as a transaction records per-key read versions;
	// it must commit and the run must stay serializable end to end.
	n := newNet(t, Options{System: sched.SystemSharp})
	client, _ := n.NewClient("c")
	for i := 0; i < 3; i++ {
		if _, err := client.MustSubmit("supplychain", "register", fmt.Sprintf("it%d", i), "o", "l"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.MustSubmit("supplychain", "manifest"); err != nil {
		t.Fatal(err)
	}
}

// TestRestartAcrossCompactionEpoch restarts a persisted network whose
// orderers compact their intern tables every 2 sealed blocks. FastForward
// restores the sealed block counter, and the compaction trigger is a pure
// function of it, so the restarted replicas rejoin the same epoch schedule:
// the chain keeps extending across further compaction boundaries, state
// survives, and the orderer replicas stay in exact agreement.
func TestRestartAcrossCompactionEpoch(t *testing.T) {
	dir := t.TempDir()
	boot := func() *Network {
		n, err := NewNetwork(Options{
			System:       sched.SystemSharp,
			Orderers:     2,
			BlockSize:    2,
			MaxSpan:      4,
			CompactEvery: 2,
			BlockTimeout: 50 * time.Millisecond,
			DataDir:      dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	// Session 1: churn through rotating keys across >= 2 compaction epochs.
	n1 := boot()
	c1, err := n1.NewClient("alice")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := c1.MustSubmit("kv", "put", fmt.Sprintf("g%d:k%d", i/4, i), "v1"); err != nil {
			t.Fatal(err)
		}
	}
	height1 := n1.Height()
	tip1 := n1.Peer(0).Chain().TipHash()
	n1.Close()
	if height1 < 4 {
		t.Fatalf("session 1 sealed %d blocks, need >= 4 (two compaction epochs)", height1)
	}

	// Session 2: resume, then cross more compaction boundaries.
	n2 := boot()
	defer n2.Close()
	if got := n2.Height(); got != height1 {
		t.Fatalf("resumed height %d want %d", got, height1)
	}
	if !bytes.Equal(n2.Peer(0).Chain().TipHash(), tip1) {
		t.Fatal("resumed chain tip differs")
	}
	c2, err := n2.NewClient("bob")
	if err != nil {
		t.Fatal(err)
	}
	var last TxResult
	for i := 0; i < 10; i++ {
		if last, err = c2.MustSubmit("kv", "put", fmt.Sprintf("h%d:k%d", i/4, i), "v2"); err != nil {
			t.Fatal(err)
		}
	}
	if last.Block < height1+4 {
		t.Fatalf("session 2 reached block %d, need >= %d to cross another epoch", last.Block, height1+4)
	}
	// Pre-restart state survived both the restart and the post-restart
	// compactions (compaction touches orderer key state, never the ledger).
	val, err := c2.Query("kv", "get", "g0:k0")
	if err != nil || string(val) != "v1" {
		t.Fatalf("pre-restart read = %q, %v", val, err)
	}
	if err := n2.Peer(0).Chain().Verify(); err != nil {
		t.Fatal(err)
	}
	awaitFollowers(n2, 5*time.Second)
	assertOrderersAgree(t, n2)
}

func TestFastForwardRejectsDirtyScheduler(t *testing.T) {
	for _, sys := range sched.Systems() {
		s, err := sched.New(sys, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.FastForward(10); err != nil {
			t.Fatalf("%s: clean fast-forward failed: %v", sys, err)
		}
		res, err := s.OnBlockFormation()
		if err != nil {
			t.Fatal(err)
		}
		if res.Block != 11 {
			t.Errorf("%s: next block = %d want 11", sys, res.Block)
		}
	}
	// Dirty scheduler refuses.
	s, _ := sched.New(sched.SystemSharp, sched.Options{})
	if _, err := s.OnArrival(&protocol.Transaction{ID: "t1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.FastForward(10); err == nil {
		t.Error("fast-forward of a dirty scheduler accepted")
	}
}

// TestFastForwardRejectsFedScheduler is the regression companion to the
// arrivals check above: a scheduler that has absorbed commit feedback has
// history too, even with zero arrivals. Focc-l used to fast-forward in that
// state, silently keeping stale committed-version tracking across the jump.
func TestFastForwardRejectsFedScheduler(t *testing.T) {
	writer := &protocol.Transaction{
		ID:    "w",
		RWSet: protocol.RWSet{Writes: []protocol.WriteItem{{Key: "hot", Value: []byte("v")}}},
	}
	fed, _ := sched.New(sched.SystemFoccL, sched.Options{})
	fed.OnBlockCommitted(1, []*protocol.Transaction{writer}, []protocol.ValidationCode{protocol.Valid})
	if err := fed.FastForward(10); err == nil {
		t.Error("fast-forward accepted after commit feedback recorded committed versions")
	}
	// Feedback that recorded nothing (no valid writes) leaves no history:
	// fast-forward must still be allowed.
	clean, _ := sched.New(sched.SystemFoccL, sched.Options{})
	clean.OnBlockCommitted(1, []*protocol.Transaction{writer}, []protocol.ValidationCode{protocol.MVCCConflict})
	if err := clean.FastForward(10); err != nil {
		t.Errorf("fast-forward rejected with no committed state: %v", err)
	}
}
