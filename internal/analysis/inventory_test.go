package analysis

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func fixtureDirs() []*Directive {
	return []*Directive{
		{File: "internal/core/graph.go", Analyzer: "maporder", Reason: "bloom union commutes", Pos: token.Position{Filename: "g.go", Line: 3}},
		{File: "internal/transport/transport.go", Analyzer: "lockacross", Reason: "request/response pairing", Pos: token.Position{Filename: "t.go", Line: 9}},
	}
}

func TestInventoryRoundTrip(t *testing.T) {
	dirs := fixtureDirs()
	path := filepath.Join(t.TempDir(), "sharpvet.inventory")
	if err := WriteInventory(path, dirs); err != nil {
		t.Fatal(err)
	}
	diffs, err := DiffInventory(path, dirs)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("fresh inventory should diff clean, got %v", diffs)
	}
}

func TestInventoryDetectsDrift(t *testing.T) {
	dirs := fixtureDirs()
	path := filepath.Join(t.TempDir(), "sharpvet.inventory")
	if err := WriteInventory(path, dirs); err != nil {
		t.Fatal(err)
	}

	// A new, unrecorded directive in the tree.
	grown := append(fixtureDirs(), &Directive{File: "internal/sched/sched.go", Analyzer: "wallclock", Reason: "new one"})
	diffs, err := DiffInventory(path, grown)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 || !strings.Contains(diffs[0], "in tree but not recorded") {
		t.Fatalf("want one in-tree-only drift, got %v", diffs)
	}

	// A recorded suppression whose directive was deleted from the tree.
	diffs, err = DiffInventory(path, dirs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 || !strings.Contains(diffs[0], "recorded but not in tree") {
		t.Fatalf("want one recorded-only drift, got %v", diffs)
	}
}

func TestInventoryMissingFileReportsEveryDirective(t *testing.T) {
	dirs := fixtureDirs()
	diffs, err := DiffInventory(filepath.Join(t.TempDir(), "absent"), dirs)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != len(dirs) {
		t.Fatalf("missing inventory should report every directive, got %v", diffs)
	}
}

func TestParseInventoryRejectsMalformedLine(t *testing.T) {
	if _, err := ParseInventory("a.go\tonly-one-tab\n"); err == nil {
		t.Fatal("malformed line should not parse")
	}
}
