package transport

import (
	"fmt"
	"sync"
	"time"

	"fabricsharp/internal/wire"
)

// reconnectBackoffMax bounds the delay between subscriber redial attempts.
const reconnectBackoffMax = 2 * time.Second

// subscriberDialBudget bounds one DialRetry attempt at one address before
// the subscriber rotates to the next — short, because with a cluster of
// orderers the fastest path to fresh blocks is usually a different address,
// not patience with a dead one.
const subscriberDialBudget = 300 * time.Millisecond

// Subscriber maintains a block-delivery stream from the ordering service:
// dial, subscribe from the current height, deliver each received block in
// order, and — on any connection failure — reconnect and resubscribe from
// wherever delivery had progressed to. The server replays history from the
// requested height, so a subscriber that was down for a thousand blocks
// catches up through exactly the same code path as a live one.
//
// With multiple addresses the subscriber fails over: every replica of a
// Raft-ordered cluster seals the identical chain, so after losing one
// orderer the stream resumes from any other, still gap-free and
// byte-identical. Reconnect dialing reuses DialRetry's jittered backoff,
// with an outer jittered ramp between full rotations so a dead cluster is
// probed gently.
type Subscriber struct {
	// Addrs lists ordering-service delivery addresses, tried in rotation.
	Addrs []string
	// Height reports the highest block already delivered; resubscription
	// starts just above it.
	Height func() uint64
	// Deliver consumes blocks in order. An error is fatal: the subscriber
	// stops and reports it through OnError.
	Deliver Delivery
	// OnError, when set, observes the fatal delivery error.
	OnError func(error)
	// OnFailover, when set, is called each time the subscriber abandons one
	// address and connects to a different one (metrics hook).
	OnFailover func()
	// Dial, when non-nil, opens delivery connections in place of the default
	// DialRetry — the seam fault-injection tests wrap. The subscribe/stream
	// protocol has no retransmission: the one Subscribe frame the subscriber
	// sends is never re-sent, so a wrapper that can DROP frames leaves the
	// stream waiting forever on a subscription the server never saw.
	// Wrappers here must only duplicate or delay.
	Dial func(addr string) (FrameConn, error)

	done      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	closeOnce sync.Once

	mu   sync.Mutex
	conn FrameConn
}

// Start launches the subscriber loop. Idempotent.
func (s *Subscriber) Start() {
	s.startOnce.Do(func() {
		s.done = make(chan struct{})
		s.wg.Add(1)
		go s.run()
	})
}

// Close stops the loop and waits for it to exit. Idempotent; safe to call
// concurrently with a delivery in flight.
func (s *Subscriber) Close() {
	s.startOnce.Do(func() { s.done = make(chan struct{}) }) // Close before Start
	s.closeOnce.Do(func() {
		close(s.done)
		s.mu.Lock()
		if s.conn != nil {
			_ = s.conn.Close() // unblock a Recv in flight
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
}

// closedNow reports whether Close has been requested.
func (s *Subscriber) closedNow() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

func (s *Subscriber) run() {
	defer s.wg.Done()
	bo := NewBackoff(10*time.Millisecond, reconnectBackoffMax, 0)
	next := 0      // rotation cursor into Addrs
	lastAddr := "" // address of the last established stream
	failures := 0  // consecutive addresses that failed to connect
	for !s.closedNow() {
		addr := s.Addrs[next%len(s.Addrs)]
		next++
		var conn FrameConn
		var err error
		if s.Dial != nil {
			conn, err = s.Dial(addr)
		} else {
			conn, err = DialRetry(addr, time.Now().Add(subscriberDialBudget))
		}
		if err != nil {
			failures++
			if failures%len(s.Addrs) == 0 {
				// Full rotation without a connection: the whole cluster is
				// unreachable — ramp up the pause between probes.
				select {
				case <-s.done:
					return
				case <-time.After(bo.Next()):
				}
			}
			continue
		}
		failures = 0
		bo.Reset()
		if lastAddr != "" && lastAddr != addr && s.OnFailover != nil {
			s.OnFailover()
		}
		lastAddr = addr
		s.mu.Lock()
		if s.closedNow() {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conn = conn
		s.mu.Unlock()
		if s.stream(conn, addr) {
			return // fatal delivery error; loop ends
		}
		_ = conn.Close()
		s.mu.Lock()
		s.conn = nil
		s.mu.Unlock()
		// Resume preference: stay on the address that was just streaming
		// (it may have only hiccuped) before rotating onward.
		next--
	}
}

// stream subscribes and consumes blocks until the connection breaks
// (returns false: reconnect) or delivery fails fatally (returns true: stop).
func (s *Subscriber) stream(conn FrameConn, addr string) bool {
	if err := conn.Send(wire.MsgSubscribe, wire.EncodeSubscribe(wire.Subscribe{From: s.Height()})); err != nil {
		return false
	}
	for {
		t, payload, err := conn.Recv()
		if err != nil {
			return false // connection broke: reconnect and catch up
		}
		if t != wire.MsgBlock {
			return false // protocol confusion: tear down and resync
		}
		blk, err := wire.DecodeBlock(payload)
		if err != nil {
			return false // corrupt frame: drop the conn, resync from Height
		}
		if err := s.Deliver.Deliver(blk); err != nil {
			if s.OnError != nil {
				s.OnError(fmt.Errorf("transport: subscriber %s: %w", addr, err))
			}
			return true
		}
	}
}
