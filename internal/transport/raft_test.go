package transport

import (
	"fmt"
	"net"
	"testing"
	"time"

	"fabricsharp/internal/consensus"
	"fabricsharp/internal/metrics"
)

// reserveAddrs grabs n distinct ephemeral 127.0.0.1 ports and releases them,
// so a cluster's full membership is known before any member starts. The
// window between release and rebind is racy in principle; in practice the
// kernel does not hand the port out again this quickly.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		_ = l.Close()
	}
	return addrs
}

// startRaftCluster boots n members with fast timers. mutate, when non-nil,
// adjusts each member's config before start (fault seams, state dirs).
func startRaftCluster(t *testing.T, n int, mutate func(i int, cfg *RaftConfig)) []*RaftService {
	t.Helper()
	addrs := reserveAddrs(t, n)
	svcs := make([]*RaftService, n)
	for i, addr := range addrs {
		cfg := RaftConfig{
			ID:              addr,
			Cluster:         addrs,
			ElectionTimeout: 100 * time.Millisecond,
			Seed:            int64(1000 * (i + 1)),
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s, err := StartRaft(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		svcs[i] = s
	}
	return svcs
}

// waitLeader polls until exactly one live member leads, returning its index.
func waitLeader(t *testing.T, svcs []*RaftService, timeout time.Duration) int {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		leader := -1
		for i, s := range svcs {
			if s != nil && s.IsLeader() {
				leader = i
			}
		}
		if leader >= 0 {
			return leader
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no leader elected")
	return -1
}

// waitCommit polls until every live member's commit index reaches idx.
func waitCommit(t *testing.T, svcs []*RaftService, idx uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		behind := false
		for _, s := range svcs {
			if s != nil && s.CommitIndex() < idx {
				behind = true
			}
		}
		if !behind {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, s := range svcs {
		if s != nil {
			t.Logf("member %d: commit %d (want %d)", i, s.CommitIndex(), idx)
		}
	}
	t.Fatalf("replication did not converge to index %d", idx)
}

// collectStream reads the first n committed envelopes from one member.
func collectStream(t *testing.T, s *RaftService, n int, timeout time.Duration) []consensus.Envelope {
	t.Helper()
	ch, cancel := s.Subscribe()
	defer cancel()
	out := make([]consensus.Envelope, 0, n)
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case seq, ok := <-ch:
			if !ok {
				t.Fatalf("stream closed after %d/%d entries", len(out), n)
			}
			if seq.Offset != uint64(len(out)) {
				t.Fatalf("offset %d at position %d", seq.Offset, len(out))
			}
			out = append(out, seq.Env)
		case <-deadline:
			t.Fatalf("stream stalled at %d/%d entries", len(out), n)
		}
	}
	return out
}

// envKey reduces an envelope to a comparable identity for stream equality.
func envKey(e consensus.Envelope) string {
	return fmt.Sprintf("%s|%s|%d|%v", e.SubmittedBy, e.Commitment, e.CutBlock, e.Disclosure)
}

// TestWireRaftElectsAndReplicates: three OS-socket members elect one leader,
// replicate submissions, and every member's subscription yields the
// identical committed stream — the agreement property block sealing relies
// on.
func TestWireRaftElectsAndReplicates(t *testing.T) {
	svcs := startRaftCluster(t, 3, nil)
	lead := waitLeader(t, svcs, 10*time.Second)

	const n = 20
	for i := 0; i < n; i++ {
		if err := svcs[lead].Submit(consensus.Envelope{
			SubmittedBy: "client", Commitment: fmt.Sprintf("c%d", i),
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	idx := svcs[lead].CommitIndex()
	waitCommit(t, svcs, idx, 10*time.Second)

	want := collectStream(t, svcs[lead], int(idx), 10*time.Second)
	for i, s := range svcs {
		got := collectStream(t, s, int(idx), 10*time.Second)
		for j := range want {
			if envKey(got[j]) != envKey(want[j]) {
				t.Fatalf("member %d stream diverges at %d: %q vs %q",
					i, j, envKey(got[j]), envKey(want[j]))
			}
		}
	}
}

// TestWireRaftNotLeaderRedirect: a follower refuses submissions with
// ErrNotLeader carrying the leader's identity — the redirect the node layer
// hands to clients.
func TestWireRaftNotLeaderRedirect(t *testing.T) {
	svcs := startRaftCluster(t, 3, nil)
	lead := waitLeader(t, svcs, 10*time.Second)
	// Let leadership propagate to the followers via a heartbeat.
	deadline := time.Now().Add(5 * time.Second)
	for i, s := range svcs {
		if i == lead {
			continue
		}
		for s.Leader() != svcs[lead].cfg.ID && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		err := s.Submit(consensus.Envelope{SubmittedBy: "client", Commitment: "x"})
		var nl consensus.ErrNotLeader
		if !asErrNotLeader(err, &nl) {
			t.Fatalf("follower %d: got %v, want ErrNotLeader", i, err)
		}
		if nl.LeaderID != svcs[lead].cfg.ID {
			t.Fatalf("follower %d redirects to %q, leader is %q", i, nl.LeaderID, svcs[lead].cfg.ID)
		}
	}
}

func asErrNotLeader(err error, nl *consensus.ErrNotLeader) bool {
	e, ok := err.(consensus.ErrNotLeader)
	if ok {
		*nl = e
	}
	return ok
}

// TestWireRaftLeaderFailover: killing the leader mid-stream elects a new one
// among the survivors; committed entries survive and new submissions land on
// the same log. Metrics record the election and failover.
func TestWireRaftLeaderFailover(t *testing.T) {
	var ms [3]metrics.ConsensusMetrics
	svcs := startRaftCluster(t, 3, func(i int, cfg *RaftConfig) {
		cfg.Metrics = &ms[i]
	})
	lead := waitLeader(t, svcs, 10*time.Second)

	for i := 0; i < 10; i++ {
		if err := svcs[lead].Submit(consensus.Envelope{
			SubmittedBy: "client", Commitment: fmt.Sprintf("pre%d", i),
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	before := svcs[lead].CommitIndex()
	waitCommit(t, svcs, before, 10*time.Second)

	svcs[lead].Close()
	old := lead
	svcs[old] = nil
	lead = waitLeader(t, svcs, 15*time.Second)

	for i := 0; i < 10; i++ {
		if err := svcs[lead].Submit(consensus.Envelope{
			SubmittedBy: "client", Commitment: fmt.Sprintf("post%d", i),
		}); err != nil {
			t.Fatalf("post-failover submit %d: %v", i, err)
		}
	}
	after := svcs[lead].CommitIndex()
	if after < before+10 {
		t.Fatalf("commit index went backwards: %d before kill, %d after", before, after)
	}
	waitCommit(t, svcs, after, 10*time.Second)

	// The survivors agree on the whole stream, old entries included.
	var streams [][]consensus.Envelope
	for _, s := range svcs {
		if s != nil {
			streams = append(streams, collectStream(t, s, int(after), 10*time.Second))
		}
	}
	for j := range streams[0] {
		if envKey(streams[0][j]) != envKey(streams[1][j]) {
			t.Fatalf("survivors diverge at %d", j)
		}
	}
	pre := 0
	for _, e := range streams[0] {
		if len(e.Commitment) > 3 && e.Commitment[:3] == "pre" {
			pre++
		}
	}
	if pre != 10 {
		t.Fatalf("lost committed entries: %d/10 pre-failover commitments survive", pre)
	}
	if ms[lead].Failovers.Value() == 0 {
		t.Fatal("new leader's failover counter never moved")
	}
	if ms[lead].Elections.Value() == 0 {
		t.Fatal("new leader won without an election being counted")
	}
}

// TestWireRaftReplicationUnderFrameLoss: every outbound connection drops a
// quarter of its frames, duplicates some, and delays others — replication
// must still converge, because every protocol message is idempotent and the
// tick loop regenerates lost state.
func TestWireRaftReplicationUnderFrameLoss(t *testing.T) {
	svcs := startRaftCluster(t, 3, func(i int, cfg *RaftConfig) {
		seed := int64(7000 + i)
		cfg.Dial = func(addr string) (FrameConn, error) {
			inner, err := Dial(addr)
			if err != nil {
				return nil, err
			}
			fc := NewFaultConn(inner, seed)
			fc.DropProb = 0.25
			fc.DupProb = 0.15
			fc.MaxDelay = 2 * time.Millisecond
			return fc, nil
		}
	})
	lead := waitLeader(t, svcs, 30*time.Second)

	const n = 30
	for i := 0; i < n; i++ {
		if err := svcs[lead].Submit(consensus.Envelope{
			SubmittedBy: "client", Commitment: fmt.Sprintf("lossy%d", i),
		}); err != nil {
			// The leader may lose its lease under heavy loss; find the new
			// one and keep going — the client retry path in miniature.
			lead = waitLeader(t, svcs, 30*time.Second)
			i--
			continue
		}
	}
	idx := svcs[lead].CommitIndex()
	waitCommit(t, svcs, idx, 30*time.Second)

	want := collectStream(t, svcs[lead], int(idx), 10*time.Second)
	for i, s := range svcs {
		got := collectStream(t, s, int(idx), 10*time.Second)
		for j := range want {
			if envKey(got[j]) != envKey(want[j]) {
				t.Fatalf("member %d diverges at %d under frame loss", i, j)
			}
		}
	}
}

// TestWireRaftRestartCatchesUp: a member restarted with its persisted term
// and vote (but an empty log) rejoins, catches up from the leader in batched
// appends, and resumes serving the identical stream.
func TestWireRaftRestartCatchesUp(t *testing.T) {
	dirs := make([]string, 3)
	svcs := startRaftCluster(t, 3, func(i int, cfg *RaftConfig) {
		dirs[i] = t.TempDir()
		cfg.Dir = dirs[i]
	})
	lead := waitLeader(t, svcs, 10*time.Second)
	follower := (lead + 1) % 3

	cfgCopy := svcs[follower].cfg
	termBefore := svcs[follower].Term()
	svcs[follower].Close()
	svcs[follower] = nil

	for i := 0; i < 15; i++ {
		if err := svcs[lead].Submit(consensus.Envelope{
			SubmittedBy: "client", Commitment: fmt.Sprintf("while-down%d", i),
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	idx := svcs[lead].CommitIndex()

	reborn, err := StartRaft(cfgCopy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reborn.Close)
	if reborn.Term() < termBefore {
		t.Fatalf("restart forgot its term: %d < %d", reborn.Term(), termBefore)
	}
	svcs[follower] = reborn
	waitCommit(t, svcs, idx, 15*time.Second)

	want := collectStream(t, svcs[lead], int(idx), 10*time.Second)
	got := collectStream(t, reborn, int(idx), 10*time.Second)
	for j := range want {
		if envKey(got[j]) != envKey(want[j]) {
			t.Fatalf("restarted member diverges at %d", j)
		}
	}
}
