// Package core implements the paper's primary contribution: the
// fine-grained, reordering-based concurrency control for execute-order-
// validate blockchains (Sections 3.4 and 4).
//
// The Manager ingests transactions in consensus order (Algorithm 2),
// resolves their dependencies against four indices (Section 4.3), detects
// unreorderable cycles with bloom-filter reachability (Section 4.4,
// Theorem 2), emits a serializable commit order at block formation
// (Algorithm 3), restores write-write dependencies (Algorithm 5), and prunes
// the graph by snapshot staleness and age (Section 4.6).
package core

import (
	"sort"
	"sync"

	"fabricsharp/internal/kvstore"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
)

// TxID aliases the protocol transaction identifier.
type TxID = protocol.TxID

// VersionIndex is the committed-transaction index shape of Section 4.3:
// CommittedWriteTxns (CW) and CommittedReadTxns (CR) both map a record key
// plus the commit sequence of the accessing transaction to that
// transaction's identifier, and support the point and range queries the
// dependency resolution needs.
type VersionIndex interface {
	// Put records that transaction id accessed key at commit sequence seq.
	Put(key string, seq seqno.Seq, id TxID) error
	// After returns, in commit order, every transaction that accessed key
	// with commit sequence >= from (the CW[key][from:] range query).
	After(key string, from seqno.Seq) ([]TxID, error)
	// Before returns the last transaction that accessed key strictly before
	// `before` (the CW.Before point query).
	Before(key string, before seqno.Seq) (TxID, bool, error)
	// Last returns the most recent transaction that accessed key
	// (the CW.Last point query).
	Last(key string) (TxID, bool, error)
	// All returns, in commit order, every retained transaction that
	// accessed key (the CR[key] query).
	All(key string) ([]TxID, error)
	// PruneBefore removes every entry whose commit sequence's block is
	// strictly below minBlock (Section 4.6's index pruning).
	PruneBefore(minBlock uint64) error
}

// ---------------------------------------------------------------------------
// In-memory index
// ---------------------------------------------------------------------------

type memEntry struct {
	seq seqno.Seq
	id  TxID
}

// MemIndex is a purely in-memory VersionIndex: per key, an append-ordered
// slice of (commit seq, txn) entries. Commit sequences arrive in increasing
// order, so the slices stay sorted without explicit sorting.
type MemIndex struct {
	mu      sync.RWMutex
	entries map[string][]memEntry
}

// NewMemIndex returns an empty in-memory index.
func NewMemIndex() *MemIndex { return &MemIndex{entries: make(map[string][]memEntry)} }

// Put implements VersionIndex.
func (m *MemIndex) Put(key string, seq seqno.Seq, id TxID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	es := m.entries[key]
	if n := len(es); n > 0 && !es[n-1].seq.Less(seq) {
		// Defensive: out-of-order insert keeps the slice sorted.
		i := sort.Search(n, func(i int) bool { return !es[i].seq.Less(seq) })
		es = append(es, memEntry{})
		copy(es[i+1:], es[i:])
		es[i] = memEntry{seq: seq, id: id}
		m.entries[key] = es
		return nil
	}
	m.entries[key] = append(es, memEntry{seq: seq, id: id})
	return nil
}

// After implements VersionIndex.
func (m *MemIndex) After(key string, from seqno.Seq) ([]TxID, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	es := m.entries[key]
	i := sort.Search(len(es), func(i int) bool { return !es[i].seq.Less(from) })
	if i == len(es) {
		return nil, nil
	}
	out := make([]TxID, 0, len(es)-i)
	for ; i < len(es); i++ {
		out = append(out, es[i].id)
	}
	return out, nil
}

// Before implements VersionIndex.
func (m *MemIndex) Before(key string, before seqno.Seq) (TxID, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	es := m.entries[key]
	i := sort.Search(len(es), func(i int) bool { return !es[i].seq.Less(before) })
	if i == 0 {
		return "", false, nil
	}
	return es[i-1].id, true, nil
}

// Last implements VersionIndex.
func (m *MemIndex) Last(key string) (TxID, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	es := m.entries[key]
	if len(es) == 0 {
		return "", false, nil
	}
	return es[len(es)-1].id, true, nil
}

// All implements VersionIndex.
func (m *MemIndex) All(key string) ([]TxID, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	es := m.entries[key]
	out := make([]TxID, len(es))
	for i, e := range es {
		out[i] = e.id
	}
	return out, nil
}

// PruneBefore implements VersionIndex.
func (m *MemIndex) PruneBefore(minBlock uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for key, es := range m.entries {
		i := 0
		for i < len(es) && es[i].seq.Block < minBlock {
			i++
		}
		if i == 0 {
			continue
		}
		if i == len(es) {
			delete(m.entries, key)
			continue
		}
		m.entries[key] = append([]memEntry(nil), es[i:]...)
	}
	return nil
}

// ---------------------------------------------------------------------------
// kvstore-backed index
// ---------------------------------------------------------------------------

// KVIndex is a VersionIndex persisted in a kvstore.DB, mirroring the
// paper's LevelDB layout: the primary records are keyed
// "p/<record key>\x00<commit seq>" so that a prefix scan walks one record
// key's accesses in commit order, and a secondary family
// "b/<commit seq>\x00<record key>" supports pruning whole block ranges.
// Record keys must not contain NUL bytes (all workload keys are printable).
type KVIndex struct {
	db *kvstore.DB
}

// NewKVIndex wraps db as a VersionIndex.
func NewKVIndex(db *kvstore.DB) *KVIndex { return &KVIndex{db: db} }

func kvPrimaryKey(key string, seq seqno.Seq) []byte {
	out := make([]byte, 0, 2+len(key)+1+seqno.EncodedLen())
	out = append(out, 'p', '/')
	out = append(out, key...)
	out = append(out, 0)
	return seq.AppendTo(out)
}

func kvPrimaryPrefix(key string) []byte {
	out := make([]byte, 0, 2+len(key)+1)
	out = append(out, 'p', '/')
	out = append(out, key...)
	return append(out, 0)
}

func kvSecondaryKey(key string, seq seqno.Seq) []byte {
	out := make([]byte, 0, 2+seqno.EncodedLen()+1+len(key))
	out = append(out, 'b', '/')
	out = seq.AppendTo(out)
	out = append(out, 0)
	return append(out, key...)
}

// Put implements VersionIndex.
func (k *KVIndex) Put(key string, seq seqno.Seq, id TxID) error {
	if err := k.db.Put(kvPrimaryKey(key, seq), []byte(id)); err != nil {
		return err
	}
	return k.db.Put(kvSecondaryKey(key, seq), nil)
}

// After implements VersionIndex.
func (k *KVIndex) After(key string, from seqno.Seq) ([]TxID, error) {
	start := kvPrimaryKey(key, from)
	limit := kvstore.PrefixSuccessor(kvPrimaryPrefix(key))
	var out []TxID
	for it := k.db.NewIterator(start, limit); it.Valid(); it.Next() {
		out = append(out, TxID(it.Value()))
	}
	return out, nil
}

// Before implements VersionIndex.
func (k *KVIndex) Before(key string, before seqno.Seq) (TxID, bool, error) {
	prefix := kvPrimaryPrefix(key)
	limit := kvPrimaryKey(key, before)
	var (
		id    TxID
		found bool
	)
	for it := k.db.NewIterator(prefix, limit); it.Valid(); it.Next() {
		id, found = TxID(it.Value()), true
	}
	return id, found, nil
}

// Last implements VersionIndex.
func (k *KVIndex) Last(key string) (TxID, bool, error) {
	var (
		id    TxID
		found bool
	)
	for it := k.db.NewPrefixIterator(kvPrimaryPrefix(key)); it.Valid(); it.Next() {
		id, found = TxID(it.Value()), true
	}
	return id, found, nil
}

// All implements VersionIndex.
func (k *KVIndex) All(key string) ([]TxID, error) {
	var out []TxID
	for it := k.db.NewPrefixIterator(kvPrimaryPrefix(key)); it.Valid(); it.Next() {
		out = append(out, TxID(it.Value()))
	}
	return out, nil
}

// PruneBefore implements VersionIndex.
func (k *KVIndex) PruneBefore(minBlock uint64) error {
	limit := []byte{'b', '/'}
	limit = (seqno.Seq{Block: minBlock}).AppendTo(limit)
	var primaries, secondaries [][]byte
	for it := k.db.NewIterator([]byte("b/"), limit); it.Valid(); it.Next() {
		sk := append([]byte(nil), it.Key()...)
		secondaries = append(secondaries, sk)
		// Decode "b/<seq>\x00<record key>" back into the primary key.
		body := sk[2:]
		seq, err := seqno.FromBytes(body)
		if err != nil {
			return err
		}
		rest := body[seqno.EncodedLen():]
		if len(rest) > 0 && rest[0] == 0 {
			rest = rest[1:]
		}
		primaries = append(primaries, kvPrimaryKey(string(rest), seq))
	}
	for _, pk := range primaries {
		if err := k.db.Delete(pk); err != nil {
			return err
		}
	}
	for _, sk := range secondaries {
		if err := k.db.Delete(sk); err != nil {
			return err
		}
	}
	return nil
}

// ensure interface compliance
var (
	_ VersionIndex = (*MemIndex)(nil)
	_ VersionIndex = (*KVIndex)(nil)
)
