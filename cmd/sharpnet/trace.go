package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fabricsharp/internal/node"
	"fabricsharp/internal/trace"
)

// traceFlags configures `sharpnet trace`: drain every listed node's
// stage-tracing ring and print the merged latency table.
type traceFlags struct {
	Orderers    []string
	Peers       []string
	DialTimeout time.Duration
}

func (f traceFlags) validate() error {
	if len(f.Orderers) == 0 && len(f.Peers) == 0 {
		return fmt.Errorf("trace needs -orderer and/or -peer-addrs to drain")
	}
	return nil
}

func cmdTrace(args []string) int {
	fs := flag.NewFlagSet("sharpnet trace", flag.ExitOnError)
	var f traceFlags
	var orderers, peers string
	fs.StringVar(&orderers, "orderer", "", "comma-separated orderer addresses")
	fs.StringVar(&peers, "peer-addrs", "", "comma-separated peer addresses")
	fs.DurationVar(&f.DialTimeout, "dial-timeout", 30*time.Second, "per-node drain budget")
	_ = fs.Parse(args)
	f.Orderers, f.Peers = splitAddrs(orderers), splitAddrs(peers)
	if err := f.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "sharpnet trace:", err)
		return 2
	}
	addrs := append(append([]string{}, f.Orderers...), f.Peers...)
	tls, dumps, err := node.FetchTimelines(addrs, f.DialTimeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sharpnet trace:", err)
		return 1
	}
	for _, d := range dumps {
		fmt.Printf("node %-10s role %-8s recorded %8d  retained %8d\n",
			d.Node, d.Role, d.Recorded, len(d.Events))
	}
	fmt.Println()
	fmt.Print(trace.Summarize(tls).Format())
	fmt.Printf("TIMELINES %d\n", len(tls))
	return 0
}
