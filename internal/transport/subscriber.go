package transport

import (
	"fmt"
	"sync"
	"time"

	"fabricsharp/internal/wire"
)

// reconnectBackoffMax bounds the delay between subscriber redial attempts.
const reconnectBackoffMax = 2 * time.Second

// Subscriber maintains a block-delivery stream from an orderer: dial,
// subscribe from the current height, deliver each received block in order,
// and — on any connection failure — redial with backoff and resubscribe
// from wherever delivery had progressed to. The server replays history from
// the requested height, so a subscriber that was down for a thousand blocks
// catches up through exactly the same code path as a live one.
type Subscriber struct {
	// Addr is the orderer's delivery address.
	Addr string
	// Height reports the highest block already delivered; resubscription
	// starts just above it.
	Height func() uint64
	// Deliver consumes blocks in order. An error is fatal: the subscriber
	// stops and reports it through OnError.
	Deliver Delivery
	// OnError, when set, observes the fatal delivery error.
	OnError func(error)

	done      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	closeOnce sync.Once

	mu   sync.Mutex
	conn *Conn
}

// Start launches the subscriber loop. Idempotent.
func (s *Subscriber) Start() {
	s.startOnce.Do(func() {
		s.done = make(chan struct{})
		s.wg.Add(1)
		go s.run()
	})
}

// Close stops the loop and waits for it to exit. Idempotent; safe to call
// concurrently with a delivery in flight.
func (s *Subscriber) Close() {
	s.startOnce.Do(func() { s.done = make(chan struct{}) }) // Close before Start
	s.closeOnce.Do(func() {
		close(s.done)
		s.mu.Lock()
		if s.conn != nil {
			_ = s.conn.Close() // unblock a Recv in flight
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
}

// closedNow reports whether Close has been requested.
func (s *Subscriber) closedNow() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

func (s *Subscriber) run() {
	defer s.wg.Done()
	backoff := 10 * time.Millisecond
	for !s.closedNow() {
		conn, err := Dial(s.Addr)
		if err != nil {
			// Orderer unreachable: back off and retry until Close.
			select {
			case <-s.done:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > reconnectBackoffMax {
				backoff = reconnectBackoffMax
			}
			continue
		}
		s.mu.Lock()
		if s.closedNow() {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conn = conn
		s.mu.Unlock()
		if s.stream(conn) {
			return // fatal delivery error; loop ends
		}
		_ = conn.Close()
		s.mu.Lock()
		s.conn = nil
		s.mu.Unlock()
		backoff = 10 * time.Millisecond
	}
}

// stream subscribes and consumes blocks until the connection breaks
// (returns false: redial) or delivery fails fatally (returns true: stop).
func (s *Subscriber) stream(conn *Conn) bool {
	if err := conn.Send(wire.MsgSubscribe, wire.EncodeSubscribe(wire.Subscribe{From: s.Height()})); err != nil {
		return false
	}
	for {
		t, payload, err := conn.Recv()
		if err != nil {
			return false // connection broke: reconnect and catch up
		}
		if t != wire.MsgBlock {
			return false // protocol confusion: tear down and resync
		}
		blk, err := wire.DecodeBlock(payload)
		if err != nil {
			return false // corrupt frame: drop the conn, resync from Height
		}
		if err := s.Deliver.Deliver(blk); err != nil {
			if s.OnError != nil {
				s.OnError(fmt.Errorf("transport: subscriber %s: %w", s.Addr, err))
			}
			return true
		}
	}
}
