package node

import (
	"fmt"
	"time"

	"fabricsharp/internal/metrics"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/transport"
	"fabricsharp/internal/wire"
)

// clientDialBudget bounds one reconnect attempt at one orderer address
// before the client rotates to the next — failover should move on quickly,
// not wait out a dead address.
const clientDialBudget = 500 * time.Millisecond

// Client drives a process-per-node cluster over TCP: proposals to peers
// (round-robin), submits to the ordering cluster, result polling by TxID. A
// Client is single-goroutine (use one per worker); Dial absorbs cluster
// startup with bounded retry.
//
// Submission survives orderer failover: a connection failure rotates to the
// next orderer address with jittered exponential backoff, and a NotLeader
// ack follows the redirect hint to the current leader. Retried submissions
// reuse the transaction ID, so the orderer's dedup horizon absorbs any
// duplicate that slips through (at most one verdict per ID is ever sealed).
type Client struct {
	name         string
	ordererAddrs []string
	ordIdx       int
	orderer      *transport.Conn
	peers        []*transport.Conn
	bo           *transport.Backoff
	rr           uint64
	seq          uint64
	// PollInterval is the result-poll cadence (default 2ms).
	PollInterval time.Duration
	// SubmitTimeout bounds Submit waiting for a result, and SubmitTx/poll
	// retrying across failovers (default 30s).
	SubmitTimeout time.Duration
	// Redirects counts NotLeader redirects this client followed.
	Redirects metrics.Counter
}

// DialClient connects to at least one orderer of the given cluster and
// every peer, retrying for up to dialTimeout.
func DialClient(name string, ordererAddrs, peerAddrs []string, dialTimeout time.Duration) (*Client, error) {
	if err := nonEmpty(ordererAddrs, "orderer addresses"); err != nil {
		return nil, err
	}
	if err := nonEmpty(peerAddrs, "peer addresses"); err != nil {
		return nil, err
	}
	c := &Client{
		name:          name,
		ordererAddrs:  ordererAddrs,
		bo:            transport.NewBackoff(10*time.Millisecond, time.Second, 0),
		PollInterval:  2 * time.Millisecond,
		SubmitTimeout: 30 * time.Second,
	}
	deadline := time.Now().Add(dialTimeout)
	if _, err := c.ordererConn(deadline); err != nil {
		return nil, err
	}
	for _, addr := range peerAddrs {
		conn, err := transport.DialRetry(addr, deadline)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.peers = append(c.peers, conn)
	}
	return c, nil
}

// Close tears down every connection. Idempotent.
func (c *Client) Close() {
	if c.orderer != nil {
		_ = c.orderer.Close()
	}
	for _, p := range c.peers {
		_ = p.Close()
	}
}

// ordererConn returns the live orderer connection, dialing through the
// address rotation until one answers or the deadline passes.
func (c *Client) ordererConn(deadline time.Time) (*transport.Conn, error) {
	if c.orderer != nil {
		return c.orderer, nil
	}
	var lastErr error
	for {
		addr := c.ordererAddrs[c.ordIdx%len(c.ordererAddrs)]
		budget := time.Now().Add(clientDialBudget)
		if budget.After(deadline) {
			budget = deadline
		}
		conn, err := transport.DialRetry(addr, budget)
		if err == nil {
			c.orderer = conn
			c.bo.Reset()
			return conn, nil
		}
		lastErr = err
		c.ordIdx++
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("node: no reachable orderer in %v: %w", c.ordererAddrs, lastErr)
		}
	}
}

// dropOrderer abandons the current connection; rotate moves to the next
// address (connection errors), while a redirect picks the hinted leader
// instead.
func (c *Client) dropOrderer(rotate bool) {
	if c.orderer != nil {
		_ = c.orderer.Close()
		c.orderer = nil
	}
	if rotate {
		c.ordIdx++
	}
}

// preferOrderer points the rotation at addr if it is a known cluster
// address (a NotLeader redirect hint); unknown hints fall back to rotation.
func (c *Client) preferOrderer(addr string) bool {
	for i, a := range c.ordererAddrs {
		if a == addr {
			c.ordIdx = i
			return true
		}
	}
	return false
}

// pause sleeps one jittered backoff step, bounded by the deadline.
func (c *Client) pause(deadline time.Time) {
	d := c.bo.Next()
	if r := time.Until(deadline); d > r {
		d = r
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// nextTxID mints a client-unique transaction identifier.
func (c *Client) nextTxID() string {
	c.seq++
	return fmt.Sprintf("%s-%06d", c.name, c.seq)
}

// Endorse runs the execution phase on the next peer (round-robin): the peer
// simulates the invocation and signs the effects.
func (c *Client) Endorse(contract, function string, args ...string) (*protocol.Transaction, error) {
	peer := c.peers[c.rr%uint64(len(c.peers))]
	c.rr++
	payload := wire.EncodeProposal(&wire.Proposal{
		ClientID: c.name,
		TxID:     c.nextTxID(),
		Contract: contract,
		Function: function,
		Args:     args,
	})
	typ, resp, err := peer.Call(wire.MsgProposal, payload)
	if err != nil {
		return nil, fmt.Errorf("node: proposal: %w", err)
	}
	if typ != wire.MsgProposalResp {
		return nil, fmt.Errorf("node: proposal answered with %v", typ)
	}
	pr, err := wire.DecodeProposalResp(resp)
	if err != nil {
		return nil, fmt.Errorf("node: endorsed transaction: %w", err)
	}
	if !pr.OK {
		return nil, fmt.Errorf("node: endorsement refused: %s", pr.Err)
	}
	return pr.Tx, nil
}

// SubmitTx broadcasts an endorsed transaction to the ordering cluster,
// surviving leader failover: connection errors rotate to the next orderer,
// NotLeader acks follow the redirect hint, and every retry backs off with
// jitter. A nil return means the ordering service durably accepted the
// transaction (Raft clusters ack only after quorum commit).
func (c *Client) SubmitTx(tx *protocol.Transaction) error {
	payload := wire.EncodeTransaction(tx)
	deadline := time.Now().Add(c.SubmitTimeout)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 && !time.Now().Before(deadline) {
			return fmt.Errorf("node: submit %s: gave up after %s: %w", tx.ID, c.SubmitTimeout, lastErr)
		}
		conn, err := c.ordererConn(deadline)
		if err != nil {
			lastErr = err
			continue
		}
		typ, resp, err := conn.Call(wire.MsgSubmit, payload)
		if err != nil {
			// Connection died (possibly the leader we were talking to):
			// rotate and retry. The transaction may or may not have been
			// accepted; resubmission is dedup-safe.
			lastErr = fmt.Errorf("node: submit: %w", err)
			c.dropOrderer(true)
			c.pause(deadline)
			continue
		}
		if typ != wire.MsgAck {
			return fmt.Errorf("node: submit answered with %v", typ)
		}
		ack, err := wire.DecodeAck(resp)
		if err != nil {
			return err
		}
		switch {
		case ack.OK:
			return nil
		case ack.NotLeader:
			// Redirect: reconnect to the hinted leader (or rotate while the
			// cluster is mid-election).
			c.Redirects.Inc()
			lastErr = fmt.Errorf("node: submit: not leader (hint %q)", ack.Leader)
			followed := ack.Leader != "" && c.preferOrderer(ack.Leader)
			c.dropOrderer(!followed)
			c.pause(deadline)
		default:
			return fmt.Errorf("node: submit rejected: %s", ack.Err)
		}
	}
}

// PollResult asks the ordering cluster once for a transaction's fate; a
// broken connection fails over to the next orderer (every replica resolves
// identical results, so any of them can answer).
func (c *Client) PollResult(txID string) (wire.Result, error) {
	deadline := time.Now().Add(c.SubmitTimeout)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 && !time.Now().Before(deadline) {
			return wire.Result{}, fmt.Errorf("node: poll %s: %w", txID, lastErr)
		}
		conn, err := c.ordererConn(deadline)
		if err != nil {
			lastErr = err
			continue
		}
		typ, resp, err := conn.Call(wire.MsgResultPoll, []byte(txID))
		if err != nil {
			lastErr = fmt.Errorf("node: poll: %w", err)
			c.dropOrderer(true)
			c.pause(deadline)
			continue
		}
		if typ != wire.MsgResult {
			return wire.Result{}, fmt.Errorf("node: poll answered with %v", typ)
		}
		return wire.DecodeResult(resp)
	}
}

// Submit is the full client lifecycle: endorse on a peer, submit to the
// ordering cluster, poll until the transaction resolves (committed or
// aborted).
func (c *Client) Submit(contract, function string, args ...string) (wire.Result, error) {
	tx, err := c.Endorse(contract, function, args...)
	if err != nil {
		return wire.Result{}, err
	}
	if err := c.SubmitTx(tx); err != nil {
		return wire.Result{}, err
	}
	deadline := time.Now().Add(c.SubmitTimeout)
	for {
		res, err := c.PollResult(string(tx.ID))
		if err != nil {
			return wire.Result{}, err
		}
		if res.Found {
			return res, nil
		}
		if time.Now().After(deadline) {
			return wire.Result{}, fmt.Errorf("node: transaction %s timed out", tx.ID)
		}
		time.Sleep(c.PollInterval)
	}
}

// OrdererStatus fetches the connected orderer's chain position, failing
// over on a dead connection.
func (c *Client) OrdererStatus() (wire.Status, error) {
	deadline := time.Now().Add(c.SubmitTimeout)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 && !time.Now().Before(deadline) {
			return wire.Status{}, fmt.Errorf("node: status: %w", lastErr)
		}
		conn, err := c.ordererConn(deadline)
		if err != nil {
			lastErr = err
			continue
		}
		st, err := status(conn)
		if err != nil {
			lastErr = err
			c.dropOrderer(true)
			c.pause(deadline)
			continue
		}
		return st, nil
	}
}

// PeerStatus fetches peer i's chain/state position.
func (c *Client) PeerStatus(i int) (wire.Status, error) {
	return status(c.peers[i])
}

// Peers returns how many peers the client is connected to.
func (c *Client) Peers() int { return len(c.peers) }

// StatusAt fetches a single node's status directly — any orderer or peer
// address — without the Client's failover machinery. Tools use it to probe
// cluster members individually (e.g. to find the Raft leader or compare
// replica tips during a chaos run).
func StatusAt(addr string, timeout time.Duration) (wire.Status, error) {
	conn, err := transport.DialRetry(addr, time.Now().Add(timeout))
	if err != nil {
		return wire.Status{}, err
	}
	defer conn.Close()
	return status(conn)
}

// statusAttemptBudget bounds one StatusAtRetry dial+call attempt so a
// connection a restarting node resets mid-call fails fast and retries
// instead of eating the whole deadline.
const statusAttemptBudget = 2 * time.Second

// StatusAtRetry is StatusAt hardened for probing a cluster mid-restart: a
// node that answers the dial but resets the in-flight status call (its
// listener is up before its pipeline) gets retried with jittered backoff
// until deadline instead of failing the whole probe on one refused
// connection.
func StatusAtRetry(addr string, deadline time.Time) (wire.Status, error) {
	bo := transport.NewBackoff(10*time.Millisecond, 500*time.Millisecond, 0)
	var st wire.Status
	err := transport.Retry(deadline, bo, func() error {
		budget := time.Until(deadline)
		if budget > statusAttemptBudget {
			budget = statusAttemptBudget
		}
		var err error
		st, err = StatusAt(addr, budget)
		return err
	})
	if err != nil {
		return wire.Status{}, err
	}
	return st, nil
}

func status(conn *transport.Conn) (wire.Status, error) {
	typ, resp, err := conn.Call(wire.MsgStatusReq, nil)
	if err != nil {
		return wire.Status{}, fmt.Errorf("node: status: %w", err)
	}
	if typ != wire.MsgStatus {
		return wire.Status{}, fmt.Errorf("node: status answered with %v", typ)
	}
	return wire.DecodeStatus(resp)
}
