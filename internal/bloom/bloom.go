// Package bloom implements the bloom filters used by the dependency graph's
// reachability sets (paper Section 4.4).
//
// The filters are tuned for two operations the reordering algorithm performs
// constantly: membership tests (cycle detection probes) and unions
// (propagating ancestor sets along dependency edges, computed as a bitwise OR
// over the underlying bit vectors). False positives are tolerated — they
// translate into preventively aborted transactions, which is safe — but
// false negatives must never occur, since a missed cycle would admit an
// unserializable schedule into the ledger.
package bloom

import (
	"fmt"
	"hash/fnv"
	"math"
	mathbits "math/bits"
)

// Filter is a fixed-size bloom filter over string keys. The zero value is
// not usable; construct filters with New or NewWithEstimate. Filters are not
// safe for concurrent mutation.
type Filter struct {
	bits   []uint64
	nbits  uint64
	hashes int
	n      uint64 // number of Add calls, for fill-ratio estimation
}

// New returns a filter with the given number of bits (rounded up to a
// multiple of 64) and hash functions. It panics on non-positive arguments,
// since a zero-bit filter silently reports everything present.
func New(nbits uint64, hashes int) *Filter {
	if nbits == 0 || hashes <= 0 {
		panic("bloom: filter requires nbits > 0 and hashes > 0")
	}
	words := (nbits + 63) / 64
	return &Filter{
		bits:   make([]uint64, words),
		nbits:  words * 64,
		hashes: hashes,
	}
}

// NewWithEstimate sizes a filter for n expected entries at false-positive
// rate p using the standard optimal formulas.
func NewWithEstimate(n uint64, p float64) *Filter {
	if n == 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("bloom: invalid false-positive rate %v", p))
	}
	m := math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2))
	k := int(math.Round(m / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return New(uint64(m), k)
}

// indexes derives the k bit positions for a key with double hashing
// (Kirsch-Mitzenmauer): h_i = h1 + i*h2. Positions are appended to out.
func (f *Filter) indexes(key string, out []uint64) []uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	h1 := h.Sum64()
	h2 := h1>>33 | h1<<31 // a second, decorrelated 64-bit stream
	h2 |= 1               // keep h2 odd so probes cycle through all bits
	x := h1
	for i := 0; i < f.hashes; i++ {
		out = append(out, x%f.nbits)
		x += h2
	}
	return out
}

// Add inserts key into the filter.
func (f *Filter) Add(key string) {
	var buf [16]uint64
	for _, idx := range f.indexes(key, buf[:0]) {
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.n++
}

// MayContain reports whether key may be present. A false result is
// definitive: the key was never added.
func (f *Filter) MayContain(key string) bool {
	var buf [16]uint64
	for _, idx := range f.indexes(key, buf[:0]) {
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Positions appends key's k bit positions to out. Positions depend only on
// the filter's geometry (bit count, hash count), so positions computed
// against one filter are valid for every filter with identical geometry —
// the dependency graph computes each node's positions once and reuses them
// for every Add and MayContain probe instead of re-hashing the key.
func (f *Filter) Positions(out []uint64, key string) []uint64 {
	return f.indexes(key, out)
}

// AddPositions inserts the key whose positions were precomputed by Positions
// on a filter with identical geometry.
func (f *Filter) AddPositions(pos []uint64) {
	if len(pos) != f.hashes {
		panic(fmt.Sprintf("bloom: AddPositions with %d positions on a %d-hash filter", len(pos), f.hashes))
	}
	for _, idx := range pos {
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.n++
}

// MayContainPositions is MayContain for a key whose positions were
// precomputed by Positions on a filter with identical geometry.
func (f *Filter) MayContainPositions(pos []uint64) bool {
	if len(pos) != f.hashes {
		panic(fmt.Sprintf("bloom: MayContainPositions with %d positions on a %d-hash filter", len(pos), f.hashes))
	}
	for _, idx := range pos {
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Union ORs other into f. Both filters must have identical geometry (bit
// count and hash count); the dependency graph guarantees this by minting all
// reachability filters from one configuration.
func (f *Filter) Union(other *Filter) {
	if other == nil {
		return
	}
	if f.nbits != other.nbits || f.hashes != other.hashes {
		panic(fmt.Sprintf("bloom: union of incompatible filters (%d/%d bits, %d/%d hashes)",
			f.nbits, other.nbits, f.hashes, other.hashes))
	}
	for i, w := range other.bits {
		f.bits[i] |= w
	}
	f.n += other.n
}

// Reset clears the filter to empty without reallocating.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// Clone returns an independent copy of f.
func (f *Filter) Clone() *Filter {
	c := &Filter{
		bits:   make([]uint64, len(f.bits)),
		nbits:  f.nbits,
		hashes: f.hashes,
		n:      f.n,
	}
	copy(c.bits, f.bits)
	return c
}

// ApproxItems returns an upper bound on the number of Add/Union operations
// the filter has absorbed. Unions double-count shared members, which is fine
// for its only use: deciding when a relay epoch should rotate.
func (f *Filter) ApproxItems() uint64 { return f.n }

// FillRatio returns the fraction of set bits, a direct proxy for the
// false-positive rate ((fill)^k).
func (f *Filter) FillRatio() float64 {
	set := 0
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.nbits)
}

// EstimatedFalsePositiveRate derives the current false-positive probability
// from the fill ratio.
func (f *Filter) EstimatedFalsePositiveRate() float64 {
	return math.Pow(f.FillRatio(), float64(f.hashes))
}

// Bits returns the filter geometry (bit count, hash count).
func (f *Filter) Bits() (nbits uint64, hashes int) { return f.nbits, f.hashes }

func popcount(x uint64) int { return mathbits.OnesCount64(x) }
