package kvstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"fabricsharp/internal/bloom"
)

// SSTable file format (all integers little-endian):
//
//	entry region:  repeated  op byte | keyLen uvarint | key | valLen uvarint | val
//	index region:  repeated  offset uint64 | keyLen uvarint | key   (one per indexInterval entries)
//	footer:        indexOffset uint64 | indexLen uint64 | entryCount uint64 | crc32(index) uint32 | magic uint64
//
// Tables are immutable once written. On open the whole table is read into
// memory: tables are bounded by the memtable flush threshold (a few MB), and
// an in-memory slice keeps the read path free of I/O error handling — a
// deliberate simplification relative to LevelDB's block cache that preserves
// identical query semantics.

const (
	sstMagic      = 0x5348415250544142 // "SHARPTAB"
	indexInterval = 16
	footerSize    = 8 + 8 + 8 + 4 + 8
)

type indexEntry struct {
	offset uint64
	key    []byte
}

// sstable is an immutable sorted table loaded in memory.
type sstable struct {
	path    string
	data    []byte // entry region only
	index   []indexEntry
	entries uint64
	// filter short-circuits point lookups for absent keys (LevelDB's
	// per-table bloom filter). Rebuilt at open from the entries — cheaper
	// than a filter block given tables are memory-resident anyway.
	filter *bloom.Filter
}

// writeSSTable persists the ascending (key, value, tombstone) stream from it
// into a new table file at path. The iterator must yield strictly increasing
// keys; tombstones are preserved so newer tables can shadow older ones until
// a full merge drops them.
func writeSSTable(path string, it *skiplistIterator) (retErr error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: create sstable: %w", err)
	}
	defer func() {
		if cerr := f.Close(); retErr == nil {
			retErr = cerr
		}
	}()

	w := bufio.NewWriter(f)
	var (
		offset  uint64
		count   uint64
		index   []byte
		idxCRC  = crc32.NewIEEE()
		scratch []byte
	)
	for ; it.valid(); it.next() {
		key, value, tombstone := it.entry()
		op := walOpPut
		if tombstone {
			op = walOpDelete
		}
		scratch = scratch[:0]
		scratch = append(scratch, op)
		scratch = binary.AppendUvarint(scratch, uint64(len(key)))
		scratch = append(scratch, key...)
		scratch = binary.AppendUvarint(scratch, uint64(len(value)))
		scratch = append(scratch, value...)
		if _, err := w.Write(scratch); err != nil {
			return err
		}
		if count%indexInterval == 0 {
			var ent []byte
			ent = binary.LittleEndian.AppendUint64(ent, offset)
			ent = binary.AppendUvarint(ent, uint64(len(key)))
			ent = append(ent, key...)
			index = append(index, ent...)
			_, _ = idxCRC.Write(ent)
		}
		offset += uint64(len(scratch))
		count++
	}
	if _, err := w.Write(index); err != nil {
		return err
	}
	var footer [footerSize]byte
	binary.LittleEndian.PutUint64(footer[0:8], offset)
	binary.LittleEndian.PutUint64(footer[8:16], uint64(len(index)))
	binary.LittleEndian.PutUint64(footer[16:24], count)
	binary.LittleEndian.PutUint32(footer[24:28], idxCRC.Sum32())
	binary.LittleEndian.PutUint64(footer[28:36], sstMagic)
	if _, err := w.Write(footer[:]); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

// openSSTable loads the table at path.
func openSSTable(path string) (*sstable, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open sstable: %w", err)
	}
	if len(raw) < footerSize {
		return nil, fmt.Errorf("kvstore: sstable %s truncated", path)
	}
	footer := raw[len(raw)-footerSize:]
	indexOffset := binary.LittleEndian.Uint64(footer[0:8])
	indexLen := binary.LittleEndian.Uint64(footer[8:16])
	entryCount := binary.LittleEndian.Uint64(footer[16:24])
	wantCRC := binary.LittleEndian.Uint32(footer[24:28])
	magic := binary.LittleEndian.Uint64(footer[28:36])
	if magic != sstMagic {
		return nil, fmt.Errorf("kvstore: sstable %s bad magic", path)
	}
	if indexOffset+indexLen > uint64(len(raw)-footerSize) {
		return nil, fmt.Errorf("kvstore: sstable %s bad index bounds", path)
	}
	indexRaw := raw[indexOffset : indexOffset+indexLen]
	if crc32.ChecksumIEEE(indexRaw) != wantCRC {
		return nil, fmt.Errorf("kvstore: sstable %s index checksum mismatch", path)
	}
	t := &sstable{path: path, data: raw[:indexOffset], entries: entryCount}
	n := entryCount
	if n == 0 {
		n = 1
	}
	t.filter = bloom.NewWithEstimate(n, 0.01)
	for off := uint64(0); off < uint64(len(t.data)); {
		key, _, _, next, err := t.decodeEntry(off)
		if err != nil {
			return nil, fmt.Errorf("kvstore: sstable %s corrupt while building filter: %w", path, err)
		}
		t.filter.Add(string(key))
		off = next
	}
	for len(indexRaw) > 0 {
		if len(indexRaw) < 8 {
			return nil, fmt.Errorf("kvstore: sstable %s corrupt index", path)
		}
		off := binary.LittleEndian.Uint64(indexRaw[:8])
		indexRaw = indexRaw[8:]
		klen, n := binary.Uvarint(indexRaw)
		if n <= 0 || uint64(len(indexRaw[n:])) < klen {
			return nil, fmt.Errorf("kvstore: sstable %s corrupt index key", path)
		}
		t.index = append(t.index, indexEntry{offset: off, key: indexRaw[n : n+int(klen)]})
		indexRaw = indexRaw[n+int(klen):]
	}
	return t, nil
}

// decodeEntry parses one entry at data[off:], returning the parsed fields
// and the offset of the next entry.
func (t *sstable) decodeEntry(off uint64) (key, value []byte, tombstone bool, next uint64, err error) {
	data := t.data
	if off >= uint64(len(data)) {
		return nil, nil, false, 0, errors.New("kvstore: entry offset out of range")
	}
	op := data[off]
	pos := off + 1
	klen, n := binary.Uvarint(data[pos:])
	if n <= 0 || pos+uint64(n)+klen > uint64(len(data)) {
		return nil, nil, false, 0, errors.New("kvstore: corrupt entry key")
	}
	pos += uint64(n)
	key = data[pos : pos+klen]
	pos += klen
	vlen, n := binary.Uvarint(data[pos:])
	if n <= 0 || pos+uint64(n)+vlen > uint64(len(data)) {
		return nil, nil, false, 0, errors.New("kvstore: corrupt entry value")
	}
	pos += uint64(n)
	value = data[pos : pos+vlen]
	pos += vlen
	return key, value, op == walOpDelete, pos, nil
}

// seekOffset returns the entry-region offset at which a forward scan for
// target should begin: the index entry with the greatest key <= target.
func (t *sstable) seekOffset(target []byte) uint64 {
	lo, hi := 0, len(t.index) // first index entry with key > target
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.index[mid].key, target) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return t.index[lo-1].offset
}

// get performs a point lookup. ok reports whether the key exists in this
// table (possibly as a tombstone).
func (t *sstable) get(target []byte) (value []byte, tombstone, ok bool) {
	if t.filter != nil && !t.filter.MayContain(string(target)) {
		return nil, false, false
	}
	off := t.seekOffset(target)
	for off < uint64(len(t.data)) {
		key, val, tomb, next, err := t.decodeEntry(off)
		if err != nil {
			return nil, false, false
		}
		switch bytes.Compare(key, target) {
		case 0:
			return val, tomb, true
		case 1:
			return nil, false, false
		}
		off = next
	}
	return nil, false, false
}

// sstableIterator scans a table in ascending key order.
type sstableIterator struct {
	t         *sstable
	off       uint64
	key, val  []byte
	tombstone bool
	done      bool
}

func (t *sstable) iteratorFrom(start []byte) *sstableIterator {
	it := &sstableIterator{t: t}
	if start != nil {
		it.off = t.seekOffset(start)
	}
	it.advance()
	if start != nil {
		for !it.done && bytes.Compare(it.key, start) < 0 {
			it.advance()
		}
	}
	return it
}

func (it *sstableIterator) advance() {
	if it.off >= uint64(len(it.t.data)) {
		it.done = true
		return
	}
	key, val, tomb, next, err := it.t.decodeEntry(it.off)
	if err != nil {
		it.done = true
		return
	}
	it.key, it.val, it.tombstone, it.off = key, val, tomb, next
}

func (it *sstableIterator) valid() bool { return !it.done }
func (it *sstableIterator) next()       { it.advance() }
func (it *sstableIterator) entry() (key, value []byte, tombstone bool) {
	return it.key, it.val, it.tombstone
}
