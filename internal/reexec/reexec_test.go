package reexec

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/scenario"
	"fabricsharp/internal/seqno"
)

// mapSource is an in-memory StateSource: the committed state below the block
// under rescue.
type mapSource map[string]mapEntry

type mapEntry struct {
	value string
	ver   seqno.Seq
}

func (m mapSource) Read(key string) ([]byte, seqno.Seq, bool) {
	e, ok := m[key]
	if !ok {
		return nil, seqno.Seq{}, false
	}
	return []byte(e.value), e.ver, true
}

// payment builds a send_payment transaction with the declared (stale)
// read/write set the endorsement phase would have produced.
func payment(id, from, to, amount string, readVer seqno.Seq) *protocol.Transaction {
	fromKey, toKey := chaincode.CheckingKey(from), chaincode.CheckingKey(to)
	tx := &protocol.Transaction{
		ID:       protocol.TxID(id),
		Contract: "smallbank",
		Function: "send_payment",
		Args:     []string{from, to, amount},
		RWSet: protocol.RWSet{
			Reads: []protocol.ReadItem{
				{Key: fromKey, Version: readVer},
				{Key: toKey, Version: readVer},
			},
			Writes: []protocol.WriteItem{
				{Key: fromKey, Value: []byte("stale")},
				{Key: toKey, Value: []byte("stale")},
			},
		},
	}
	tx.RWSet.Precompute()
	return tx
}

func registry() *chaincode.Registry {
	sc, ok := scenario.Get("mixed")
	if !ok {
		panic("reexec test: mixed scenario not registered")
	}
	return chaincode.NewRegistry(sc.Contracts()...)
}

// TestRescueReadsFinalValidState: a rescued transaction serializes after the
// whole block — its re-execution must observe the block's final valid
// writes, including ones at higher in-block positions.
func TestRescueReadsFinalValidState(t *testing.T) {
	base := mapSource{
		chaincode.CheckingKey("a"): {value: "100", ver: seqno.Commit(1, 1)},
		chaincode.CheckingKey("b"): {value: "100", ver: seqno.Commit(1, 2)},
		chaincode.CheckingKey("c"): {value: "100", ver: seqno.Commit(1, 3)},
	}
	// Position 1: the candidate (aborted at ordering). Position 2: a valid
	// transaction writing one of the candidate's read keys AFTER it in block
	// order — post-order, the candidate must still see its value.
	cand := payment("t1", "a", "b", "10", seqno.Commit(1, 1))
	valid := payment("t2", "b", "c", "5", seqno.Commit(1, 2))
	valid.RWSet.Writes = []protocol.WriteItem{
		{Key: chaincode.CheckingKey("b"), Value: []byte("95")},
		{Key: chaincode.CheckingKey("c"), Value: []byte("105")},
	}
	valid.RWSet.Precompute()
	txs := []*protocol.Transaction{cand, valid}
	codes := []protocol.ValidationCode{protocol.MVCCConflict, protocol.Valid}

	out := Run(base, 2, txs, codes, Options{Registry: registry()})
	if out.Attempted != 1 || out.Rescued != 1 {
		t.Fatalf("attempted %d rescued %d, want 1/1", out.Attempted, out.Rescued)
	}
	if out.Codes[0] != protocol.Rescued || out.Codes[1] != protocol.Valid {
		t.Fatalf("codes = %v", out.Codes)
	}
	// a: 100-10=90; b: the VALID write 95 is what the rescue reads, +10=105.
	want := []protocol.WriteItem{
		{Key: chaincode.CheckingKey("a"), Value: []byte("90")},
		{Key: chaincode.CheckingKey("b"), Value: []byte("105")},
	}
	if !reflect.DeepEqual(out.Writes[0], want) {
		t.Fatalf("rescued writes = %v, want %v", out.Writes[0], want)
	}
	if out.Digest == nil {
		t.Fatal("digest nil despite a rescue")
	}
}

// TestRescueChainWithinGroup: two candidates over the same hot key rescue in
// block order, the second reading the first's re-executed write.
func TestRescueChainWithinGroup(t *testing.T) {
	base := mapSource{
		chaincode.CheckingKey("a"): {value: "100", ver: seqno.Commit(1, 1)},
		chaincode.CheckingKey("b"): {value: "100", ver: seqno.Commit(1, 2)},
		chaincode.CheckingKey("c"): {value: "100", ver: seqno.Commit(1, 3)},
	}
	txs := []*protocol.Transaction{
		payment("t1", "a", "b", "10", seqno.Commit(1, 1)),
		payment("t2", "b", "c", "20", seqno.Commit(1, 1)),
	}
	codes := []protocol.ValidationCode{protocol.MVCCConflict, protocol.MVCCConflict}
	out := Run(base, 2, txs, codes, Options{Registry: registry()})
	if out.Rescued != 2 {
		t.Fatalf("rescued %d, want 2 (codes %v)", out.Rescued, out.Codes)
	}
	if out.Groups != 1 {
		t.Fatalf("groups = %d, want 1 (b couples both)", out.Groups)
	}
	// t1: a=90, b=110. t2 reads t1's b=110: b=90, c=120.
	wantT2 := []protocol.WriteItem{
		{Key: chaincode.CheckingKey("b"), Value: []byte("90")},
		{Key: chaincode.CheckingKey("c"), Value: []byte("120")},
	}
	if !reflect.DeepEqual(out.Writes[1], wantT2) {
		t.Fatalf("t2 writes = %v, want %v", out.Writes[1], wantT2)
	}
}

// TestRescueDeterministicAcrossWorkers: the outcome is a pure function of
// (base, block, txs, codes) regardless of parallelism.
func TestRescueDeterministicAcrossWorkers(t *testing.T) {
	base := mapSource{}
	for i := 0; i < 8; i++ {
		base[chaincode.CheckingKey(fmt.Sprintf("h%d", i))] = mapEntry{value: "1000", ver: seqno.Commit(3, uint32(i+1))}
	}
	var txs []*protocol.Transaction
	var codes []protocol.ValidationCode
	for i := 0; i < 40; i++ {
		from := fmt.Sprintf("h%d", i%8)
		to := fmt.Sprintf("h%d", (i*3+1)%8)
		if from == to {
			to = fmt.Sprintf("h%d", (i*3+2)%8)
		}
		tx := payment(fmt.Sprintf("t%d", i), from, to, fmt.Sprint(i+1), seqno.Commit(3, 1))
		if i%3 == 0 {
			// Valid txs seed the scratch with their declared writes, which the
			// rescues then read — so they must carry real balances.
			tx.RWSet.Writes = []protocol.WriteItem{
				{Key: chaincode.CheckingKey(from), Value: []byte(fmt.Sprint(900 + i))},
				{Key: chaincode.CheckingKey(to), Value: []byte(fmt.Sprint(1100 - i))},
			}
			tx.RWSet.Precompute()
			codes = append(codes, protocol.Valid)
		} else {
			codes = append(codes, protocol.MVCCConflict)
		}
		txs = append(txs, tx)
	}
	var ref Outcome
	for _, workers := range []int{1, 2, 4, 13} {
		out := Run(base, 4, txs, codes, Options{Registry: registry(), Workers: workers})
		if workers == 1 {
			ref = out
			if out.Rescued == 0 {
				t.Fatal("nothing rescued — the fixture is not exercising the phase")
			}
			continue
		}
		if !reflect.DeepEqual(out.Codes, ref.Codes) {
			t.Errorf("workers=%d: codes diverged", workers)
		}
		if !reflect.DeepEqual(out.Writes, ref.Writes) {
			t.Errorf("workers=%d: writes diverged", workers)
		}
		if !bytes.Equal(out.Digest, ref.Digest) {
			t.Errorf("workers=%d: digest diverged", workers)
		}
	}
}

// TestRescueErrorStaysAborted: a re-execution that fails on final reads (a
// transfer touching an account that does not exist) is a deterministic
// abort, and candidates after it in the group still rescue.
func TestRescueErrorStaysAborted(t *testing.T) {
	base := mapSource{
		chaincode.CheckingKey("a"): {value: "100", ver: seqno.Commit(1, 1)},
		chaincode.CheckingKey("b"): {value: "100", ver: seqno.Commit(1, 2)},
	}
	txs := []*protocol.Transaction{
		payment("t1", "a", "ghost", "10", seqno.Commit(1, 1)), // ghost: never created
		payment("t2", "a", "b", "10", seqno.Commit(1, 1)),
	}
	codes := []protocol.ValidationCode{protocol.MVCCConflict, protocol.MVCCConflict}
	out := Run(base, 2, txs, codes, Options{Registry: registry()})
	if out.Codes[0] != protocol.MVCCConflict {
		t.Errorf("ghost transfer code = %v, want it to stay aborted", out.Codes[0])
	}
	if out.Codes[1] != protocol.Rescued {
		t.Errorf("t2 code = %v, want rescued", out.Codes[1])
	}
	if out.StillAborted() != 1 || out.Rescued != 1 {
		t.Errorf("attempted %d rescued %d stillAborted %d", out.Attempted, out.Rescued, out.StillAborted())
	}
}

// escapeContract writes a key outside its declared write set.
type escapeContract struct{}

func (escapeContract) Name() string { return "escape" }
func (escapeContract) Invoke(stub chaincode.Stub) error {
	return stub.PutState("undeclared", []byte("x"))
}

// TestRescueContainmentViolationStaysAborted: a re-execution escaping its
// declared key set would break group disjointness, so it stays aborted.
func TestRescueContainmentViolationStaysAborted(t *testing.T) {
	tx := &protocol.Transaction{
		ID:       "esc",
		Contract: "escape",
		Function: "go",
		Args:     []string{},
		RWSet: protocol.RWSet{
			Writes: []protocol.WriteItem{{Key: "declared", Value: []byte("v")}},
		},
	}
	tx.RWSet.Precompute()
	out := Run(mapSource{}, 2, []*protocol.Transaction{tx},
		[]protocol.ValidationCode{protocol.MVCCConflict},
		Options{Registry: chaincode.NewRegistry(escapeContract{})})
	if out.Codes[0] != protocol.MVCCConflict {
		t.Errorf("escaping execution code = %v, want it to stay aborted", out.Codes[0])
	}
	if out.Digest != nil {
		t.Error("digest must be nil when nothing was rescued")
	}
}

// TestRescueNoCandidates: blocks without MVCC casualties (or without carried
// invocations) pass through untouched with a nil digest, keeping their wire
// encoding byte-identical to the pre-rescue format.
func TestRescueNoCandidates(t *testing.T) {
	txs := []*protocol.Transaction{payment("t1", "a", "b", "1", seqno.Seq{})}
	out := Run(mapSource{}, 2, txs, []protocol.ValidationCode{protocol.Valid}, Options{Registry: registry()})
	if out.Attempted != 0 || out.Digest != nil || out.Codes[0] != protocol.Valid {
		t.Fatalf("outcome = %+v", out)
	}
	// No invocation carried: an MVCC casualty without Function stays aborted.
	bare := &protocol.Transaction{ID: "bare"}
	bare.RWSet.Precompute()
	out = Run(mapSource{}, 2, []*protocol.Transaction{bare}, []protocol.ValidationCode{protocol.MVCCConflict}, Options{Registry: registry()})
	if out.Attempted != 0 || out.Digest != nil {
		t.Fatalf("bare outcome = %+v", out)
	}
}

// TestWriteSetDigestSensitivity: the digest must commit to positions, keys,
// values, and delete flags.
func TestWriteSetDigestSensitivity(t *testing.T) {
	codes := []protocol.ValidationCode{protocol.Rescued, protocol.Valid}
	writes := [][]protocol.WriteItem{{{Key: "k", Value: []byte("v")}}, nil}
	d1 := WriteSetDigest(codes, writes)
	if d1 == nil {
		t.Fatal("digest nil")
	}
	if !bytes.Equal(d1, WriteSetDigest(codes, writes)) {
		t.Error("digest not stable")
	}
	writes2 := [][]protocol.WriteItem{{{Key: "k", Value: []byte("w")}}, nil}
	if bytes.Equal(d1, WriteSetDigest(codes, writes2)) {
		t.Error("digest ignores values")
	}
	writes3 := [][]protocol.WriteItem{{{Key: "k", Value: []byte("v"), Delete: true}}, nil}
	if bytes.Equal(d1, WriteSetDigest(codes, writes3)) {
		t.Error("digest ignores delete flags")
	}
	codes4 := []protocol.ValidationCode{protocol.Valid, protocol.Rescued}
	writes4 := [][]protocol.WriteItem{nil, {{Key: "k", Value: []byte("v")}}}
	if bytes.Equal(d1, WriteSetDigest(codes4, writes4)) {
		t.Error("digest ignores positions")
	}
}
