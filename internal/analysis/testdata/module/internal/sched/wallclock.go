// Package sched is the wallclock + seaminject fixture corpus (the sched
// package path sits inside the deterministic scope, so both analyzers
// police these files).
package sched

import (
	"math/rand"
	"os"
	"time"
)

func flagNow() int64 {
	return time.Now().UnixNano() // want wallclock "time.Now in deterministic code"
}

func flagSince(t0 time.Time) int64 {
	return time.Since(t0).Nanoseconds() // want wallclock "time.Since in deterministic code"
}

func flagUntil(t time.Time) time.Duration {
	return time.Until(t) // want wallclock "time.Until in deterministic code"
}

func flagEnvRead() string {
	return os.Getenv("SHARP_DEBUG") // want wallclock "os.Getenv in deterministic code"
}

func flagGlobalRand() int {
	return rand.Intn(10) // want wallclock "rand.Intn in deterministic code"
}

func okInjectedRandMethod(r *rand.Rand) int {
	return r.Intn(10) // a *rand.Rand method is the injected seam working
}

func okTimeArithmetic(a, b time.Time) time.Duration {
	return b.Sub(a) // pure arithmetic on values already in hand
}

func suppressedDebugEnv() bool {
	//sharp:allow wallclock fixture: reviewed suppression — debug toggle read at startup, never sealed
	return os.Getenv("SHARP_TRACE") != "" // wantsup wallclock "os.Getenv"
}
