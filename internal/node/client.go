package node

import (
	"fmt"
	"time"

	"fabricsharp/internal/protocol"
	"fabricsharp/internal/transport"
	"fabricsharp/internal/wire"
)

// Client drives a process-per-node cluster over TCP: proposals to peers
// (round-robin), submits to the orderer, result polling by TxID. A Client
// is single-goroutine (use one per worker); Dial absorbs cluster startup
// with bounded retry.
type Client struct {
	name    string
	orderer *transport.Conn
	peers   []*transport.Conn
	rr      uint64
	seq     uint64
	// PollInterval is the result-poll cadence (default 2ms).
	PollInterval time.Duration
	// SubmitTimeout bounds Submit waiting for a result (default 30s).
	SubmitTimeout time.Duration
}

// DialClient connects to an orderer and at least one peer, retrying each
// address for up to dialTimeout.
func DialClient(name, ordererAddr string, peerAddrs []string, dialTimeout time.Duration) (*Client, error) {
	if err := nonEmpty(peerAddrs, "peer addresses"); err != nil {
		return nil, err
	}
	c := &Client{name: name, PollInterval: 2 * time.Millisecond, SubmitTimeout: 30 * time.Second}
	var err error
	if c.orderer, err = transport.DialRetry(ordererAddr, dialTimeout); err != nil {
		return nil, err
	}
	for _, addr := range peerAddrs {
		conn, err := transport.DialRetry(addr, dialTimeout)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.peers = append(c.peers, conn)
	}
	return c, nil
}

// Close tears down every connection. Idempotent.
func (c *Client) Close() {
	if c.orderer != nil {
		_ = c.orderer.Close()
	}
	for _, p := range c.peers {
		_ = p.Close()
	}
}

// nextTxID mints a client-unique transaction identifier.
func (c *Client) nextTxID() string {
	c.seq++
	return fmt.Sprintf("%s-%06d", c.name, c.seq)
}

// Endorse runs the execution phase on the next peer (round-robin): the peer
// simulates the invocation and signs the effects.
func (c *Client) Endorse(contract, function string, args ...string) (*protocol.Transaction, error) {
	peer := c.peers[c.rr%uint64(len(c.peers))]
	c.rr++
	payload := wire.EncodeProposal(&wire.Proposal{
		ClientID: c.name,
		TxID:     c.nextTxID(),
		Contract: contract,
		Function: function,
		Args:     args,
	})
	typ, resp, err := peer.Call(wire.MsgProposal, payload)
	if err != nil {
		return nil, fmt.Errorf("node: proposal: %w", err)
	}
	if typ != wire.MsgProposalResp {
		return nil, fmt.Errorf("node: proposal answered with %v", typ)
	}
	pr, err := wire.DecodeProposalResp(resp)
	if err != nil {
		return nil, fmt.Errorf("node: endorsed transaction: %w", err)
	}
	if !pr.OK {
		return nil, fmt.Errorf("node: endorsement refused: %s", pr.Err)
	}
	return pr.Tx, nil
}

// SubmitTx broadcasts an endorsed transaction to the ordering service.
func (c *Client) SubmitTx(tx *protocol.Transaction) error {
	typ, resp, err := c.orderer.Call(wire.MsgSubmit, wire.EncodeTransaction(tx))
	if err != nil {
		return fmt.Errorf("node: submit: %w", err)
	}
	if typ != wire.MsgAck {
		return fmt.Errorf("node: submit answered with %v", typ)
	}
	ack, err := wire.DecodeAck(resp)
	if err != nil {
		return err
	}
	if !ack.OK {
		return fmt.Errorf("node: submit rejected: %s", ack.Err)
	}
	return nil
}

// PollResult asks the orderer once for a transaction's fate.
func (c *Client) PollResult(txID string) (wire.Result, error) {
	typ, resp, err := c.orderer.Call(wire.MsgResultPoll, []byte(txID))
	if err != nil {
		return wire.Result{}, fmt.Errorf("node: poll: %w", err)
	}
	if typ != wire.MsgResult {
		return wire.Result{}, fmt.Errorf("node: poll answered with %v", typ)
	}
	return wire.DecodeResult(resp)
}

// Submit is the full client lifecycle: endorse on a peer, submit to the
// orderer, poll until the transaction resolves (committed or aborted).
func (c *Client) Submit(contract, function string, args ...string) (wire.Result, error) {
	tx, err := c.Endorse(contract, function, args...)
	if err != nil {
		return wire.Result{}, err
	}
	if err := c.SubmitTx(tx); err != nil {
		return wire.Result{}, err
	}
	deadline := time.Now().Add(c.SubmitTimeout)
	for {
		res, err := c.PollResult(string(tx.ID))
		if err != nil {
			return wire.Result{}, err
		}
		if res.Found {
			return res, nil
		}
		if time.Now().After(deadline) {
			return wire.Result{}, fmt.Errorf("node: transaction %s timed out", tx.ID)
		}
		time.Sleep(c.PollInterval)
	}
}

// OrdererStatus fetches the orderer's chain position.
func (c *Client) OrdererStatus() (wire.Status, error) {
	return status(c.orderer)
}

// PeerStatus fetches peer i's chain/state position.
func (c *Client) PeerStatus(i int) (wire.Status, error) {
	return status(c.peers[i])
}

// Peers returns how many peers the client is connected to.
func (c *Client) Peers() int { return len(c.peers) }

func status(conn *transport.Conn) (wire.Status, error) {
	typ, resp, err := conn.Call(wire.MsgStatusReq, nil)
	if err != nil {
		return wire.Status{}, fmt.Errorf("node: status: %w", err)
	}
	if typ != wire.MsgStatus {
		return wire.Status{}, fmt.Errorf("node: status answered with %v", typ)
	}
	return wire.DecodeStatus(resp)
}
