package fabricsharp

import (
	"fmt"
	"testing"
	"time"

	"fabricsharp/internal/protocol"
)

// mkBenchTx builds a deterministic contended transaction for benchmarks.
func mkBenchTx(id string, i int) *protocol.Transaction {
	return &protocol.Transaction{
		ID:            protocol.TxID(id),
		SnapshotBlock: 0,
		RWSet: protocol.RWSet{
			Reads:  []protocol.ReadItem{{Key: fmt.Sprintf("k%d", (i*7)%40)}},
			Writes: []protocol.WriteItem{{Key: fmt.Sprintf("k%d", (i*3)%40), Value: []byte("v")}},
		},
	}
}

func TestPublicAPILibraryMode(t *testing.T) {
	net, err := NewNetwork(NetworkOptions{
		System:       SystemSharp,
		BlockSize:    4,
		BlockTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	client, err := net.NewClient("api-test")
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Submit("kv", "put", "k", "v")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed() {
		t.Fatalf("code = %v", res.Code)
	}
	val, err := client.Query("kv", "get", "k")
	if err != nil || string(val) != "v" {
		t.Fatalf("query = %q, %v", val, err)
	}
}

func TestPublicAPIExperimentMode(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		System:      SystemSharp,
		Workload:    NoOpWorkload(),
		Seed:        1,
		Duration:    2 * Second,
		RequestRate: 200,
		BlockSize:   20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if err := VerifySerializability(res); err != nil {
		t.Fatal(err)
	}
}
