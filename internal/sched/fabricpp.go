package sched

import (
	"fmt"
	"sort"

	"fabricsharp/internal/intern"
	"fabricsharp/internal/protocol"
)

// FabricPP models Fabric++ [26]: transactions that read across blocks were
// already aborted during simulation (the endorser applies
// ReadsAcrossBlocks); the orderer then reorders each block's transactions so
// that intra-block read-write conflicts serialize (readers before writers),
// aborting the transactions caught in conflict cycles. Reordering is
// strictly block-local — the limitation Proposition 3 exposes and Sharp
// removes.
type FabricPP struct {
	pending      []*protocol.Transaction
	keys         *intern.Table
	compactEvery uint64
	nextBlock    uint64
	timing       Timing
}

// NewFabricPP returns the Fabric++ scheduler.
func NewFabricPP(opts Options) *FabricPP {
	return &FabricPP{keys: intern.NewTable(), compactEvery: opts.CompactEvery, nextBlock: 1}
}

// System implements Scheduler.
func (f *FabricPP) System() System { return SystemFabricPP }

// OnArrival implements Scheduler. Cross-block readers never get here (the
// endorser aborts them), so everything is admitted.
func (f *FabricPP) OnArrival(tx *protocol.Transaction) (protocol.ValidationCode, error) {
	w := startWatch()
	f.pending = append(f.pending, tx)
	f.timing.Arrivals++
	f.timing.ArrivalNS += w.elapsedNS()
	return protocol.Valid, nil
}

// OnBlockFormation implements Scheduler: builds the intra-block conflict
// graph (edge R -> W whenever W writes a key R reads, meaning R must
// serialize before W), eliminates cycles by dropping the most conflicted
// transactions, and emits a topological order of the survivors.
func (f *FabricPP) OnBlockFormation() (FormationResult, error) {
	if len(f.pending) == 0 {
		return FormationResult{Block: f.nextBlock}, nil
	}
	w := startWatch()
	ordered, dropped := reorderBatch(f.keys, f.pending)
	block := f.nextBlock
	res := FormationResult{Block: block, Ordered: ordered}
	for _, tx := range dropped {
		res.DroppedTxs = append(res.DroppedTxs, Dropped{Tx: tx, Code: protocol.AbortReorderCycle})
	}
	f.pending = nil
	f.nextBlock++
	// Fabric++'s conflict indices are strictly per-batch: nothing keyed by
	// KeyID survives a formation, so epoch compaction degenerates to
	// starting a fresh table — still at a stream-determined boundary, so
	// replicas agree, and reordering decisions are untouched.
	if f.compactEvery > 0 && block%f.compactEvery == 0 {
		f.keys = intern.NewTable()
	}
	f.timing.Formations++
	f.timing.FormationNS += w.elapsedNS()
	return res, nil
}

// OnBlockCommitted implements Scheduler (no feedback needed).
func (f *FabricPP) OnBlockCommitted(uint64, []*protocol.Transaction, []protocol.ValidationCode) {}

// NeedsMVCCValidation implements Scheduler: cross-block staleness still
// reaches the ledger and must be validated.
func (f *FabricPP) NeedsMVCCValidation() bool { return true }

// PendingCount implements Scheduler.
func (f *FabricPP) PendingCount() int { return len(f.pending) }

// ResidentKeys implements Scheduler.
func (f *FabricPP) ResidentKeys() int { return f.keys.Len() }

// FastForward implements Scheduler.
func (f *FabricPP) FastForward(height uint64) error {
	if f.timing.Arrivals > 0 {
		return fmt.Errorf("sched: cannot fast-forward a scheduler with history")
	}
	f.nextBlock = height + 1
	return nil
}

// Timing implements Scheduler.
func (f *FabricPP) Timing() Timing { return f.timing }

// reorderBatch performs Fabric++-style cycle elimination and topological
// reordering over one batch. Keys are interned through the scheduler's
// table, so the per-batch conflict indices hash a uint32 rather than the key
// bytes. It returns the serializable order and the transactions dropped to
// break cycles.
func reorderBatch(tbl *intern.Table, batch []*protocol.Transaction) (ordered, dropped []*protocol.Transaction) {
	n := len(batch)
	readers := map[intern.Key][]int{} // key -> batch indices reading it
	writers := map[intern.Key][]int{} // key -> batch indices writing it
	for i, tx := range batch {
		for _, s := range tx.RWSet.ReadKeys() {
			k := tbl.Intern(s)
			readers[k] = append(readers[k], i)
		}
		for _, s := range tx.RWSet.WriteKeys() {
			k := tbl.Intern(s)
			writers[k] = append(writers[k], i)
		}
	}
	// succ[i] holds j whenever i must precede j (i reads a key j writes).
	succ := make([]map[int]struct{}, n)
	pred := make([]map[int]struct{}, n)
	for i := range succ {
		succ[i] = map[int]struct{}{}
		pred[i] = map[int]struct{}{}
	}
	for key, rs := range readers {
		for _, r := range rs {
			for _, w := range writers[key] {
				if r == w {
					continue
				}
				succ[r][w] = struct{}{}
				pred[w][r] = struct{}{}
			}
		}
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	// Iteratively drop the highest-degree member of any remaining cycle
	// (Fabric++ computes all cycles and aborts greedily; degree-based
	// elimination is the standard approximation and is deterministic).
	for {
		cyclic := cyclicNodes(n, alive, succ)
		if len(cyclic) == 0 {
			break
		}
		worst, worstDeg := -1, -1
		for _, i := range cyclic {
			deg := 0
			for j := range succ[i] {
				if alive[j] {
					deg++
				}
			}
			for j := range pred[i] {
				if alive[j] {
					deg++
				}
			}
			if deg > worstDeg || (deg == worstDeg && i < worst) {
				worst, worstDeg = i, deg
			}
		}
		alive[worst] = false
		dropped = append(dropped, batch[worst])
	}
	// Kahn topological sort of the survivors, FIFO tie-break.
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		if !alive[i] {
			continue
		}
		for j := range succ[i] {
			if alive[j] {
				indeg[j]++
			}
		}
	}
	var ready []int
	for i := 0; i < n; i++ {
		if alive[i] && indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		sort.Ints(ready)
		i := ready[0]
		ready = ready[1:]
		ordered = append(ordered, batch[i])
		//sharp:orderinvariant indegree decrements commute; ready candidates are re-sorted before every pop, washing visit order
		for j := range succ[i] {
			if !alive[j] {
				continue
			}
			indeg[j]--
			if indeg[j] == 0 {
				ready = append(ready, j)
			}
		}
	}
	return ordered, dropped
}

// cyclicNodes returns the indices that belong to some non-trivial strongly
// connected component of the alive sub-graph (iterative Tarjan).
func cyclicNodes(n int, alive []bool, succ []map[int]struct{}) []int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		counter int
		stack   []int
		cyclic  []int
	)
	type frame struct {
		v     int
		iter  []int
		child int
	}
	neighbors := func(v int) []int {
		out := make([]int, 0, len(succ[v]))
		for w := range succ[v] {
			if alive[w] {
				out = append(out, w)
			}
		}
		sort.Ints(out)
		return out
	}
	for start := 0; start < n; start++ {
		if !alive[start] || index[start] != unvisited {
			continue
		}
		frames := []frame{{v: start, iter: neighbors(start)}}
		index[start], low[start] = counter, counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.child < len(f.iter) {
				w := f.iter[f.child]
				f.child++
				if index[w] == unvisited {
					index[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, iter: neighbors(w)})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			// Pop the frame; maybe emit an SCC rooted here.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				if len(scc) > 1 {
					cyclic = append(cyclic, scc...)
				} else {
					// Single node: cyclic only if it self-loops, which the
					// edge construction excludes (r == w skipped).
					v := scc[0]
					if _, self := succ[v][v]; self {
						cyclic = append(cyclic, v)
					}
				}
			}
		}
	}
	sort.Ints(cyclic)
	return cyclic
}
