package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fabricsharp/internal/node"
	"fabricsharp/internal/scenario"
	"fabricsharp/internal/trace"
	"fabricsharp/internal/wire"
	"fabricsharp/internal/workload"
)

// loadFlags configures `sharpnet load`. TargetTPS > 0 selects the open-loop
// generator (rate-paced submissions, stage-trace report); TargetTPS == 0
// runs the legacy closed-loop -clients/-txs mix.
type loadFlags struct {
	Orderers    []string
	Peers       []string
	DialTimeout time.Duration

	// Closed-loop shape.
	Clients int
	Txs     int

	// Shared workload shape.
	Accounts int
	Workload string
	Seed     int64

	// Open-loop shape.
	TargetTPS int
	Duration  time.Duration
	Workers   int
	Theta     float64
	ReadHot   float64
	WriteHot  float64
}

func (f loadFlags) openLoop() bool { return f.TargetTPS > 0 }

// loadOptions maps the open-loop flag shape onto the library surface.
func (f loadFlags) loadOptions() node.LoadOptions {
	return node.LoadOptions{
		Orderers:    f.Orderers,
		Peers:       f.Peers,
		TargetTPS:   f.TargetTPS,
		Duration:    f.Duration,
		Workload:    f.Workload,
		Accounts:    f.Accounts,
		Theta:       f.Theta,
		ReadHot:     f.ReadHot,
		WriteHot:    f.WriteHot,
		Workers:     f.Workers,
		Seed:        f.Seed,
		DialTimeout: f.DialTimeout,
	}
}

func (f loadFlags) validate() error {
	if len(f.Orderers) == 0 || len(f.Peers) == 0 {
		return fmt.Errorf("load requires -orderer and -peer-addrs")
	}
	if f.openLoop() {
		return f.loadOptions().Validate()
	}
	if f.Duration != 0 {
		return fmt.Errorf("-duration paces the open-loop generator; it requires -target-tps")
	}
	if f.Clients <= 0 {
		return fmt.Errorf("-clients must be positive, got %d", f.Clients)
	}
	if f.Txs <= 0 {
		return fmt.Errorf("-txs must be positive, got %d", f.Txs)
	}
	if f.Workload != "" {
		if _, ok := scenario.Get(f.Workload); !ok {
			return fmt.Errorf("unknown -workload %q (have %s)", f.Workload, strings.Join(scenario.Names(), ", "))
		}
		if f.Accounts < 0 {
			return fmt.Errorf("-accounts must be non-negative with -workload (0 = scenario default), got %d", f.Accounts)
		}
	} else if f.Accounts <= 0 {
		return fmt.Errorf("-accounts must be positive, got %d", f.Accounts)
	}
	return nil
}

func cmdLoad(args []string) int {
	fs := flag.NewFlagSet("sharpnet load", flag.ExitOnError)
	var f loadFlags
	var orderers, peers string
	fs.StringVar(&orderers, "orderer", "", "comma-separated orderer addresses")
	fs.StringVar(&peers, "peer-addrs", "", "comma-separated peer addresses")
	fs.DurationVar(&f.DialTimeout, "dial-timeout", 30*time.Second, "how long to retry dialing the cluster")
	fs.IntVar(&f.Clients, "clients", 4, "closed-loop concurrent clients")
	fs.IntVar(&f.Txs, "txs", 125, "closed-loop transactions per client")
	fs.IntVar(&f.Accounts, "accounts", 32, "account pool: SmallBank accounts to create, or with -workload the scenario pool override")
	fs.StringVar(&f.Workload, "workload", "", "registered scenario to drive instead of the built-in SmallBank mix; the cluster must have been booted with the same -workload/-accounts genesis (open loop defaults to msmallbank)")
	fs.Int64Var(&f.Seed, "seed", 42, "base seed; worker i draws from an explicit rand.Rand seeded with seed+i")
	fs.IntVar(&f.TargetTPS, "target-tps", 0, "open-loop offered rate in tx/s (0 = legacy closed loop)")
	fs.DurationVar(&f.Duration, "duration", 0, "open-loop run length (default 10s; requires -target-tps)")
	fs.IntVar(&f.Workers, "workers", 0, "open-loop submission concurrency (0 = 4×GOMAXPROCS)")
	fs.Float64Var(&f.Theta, "theta", 0, "open-loop zipfian skew over the account pool (0 = scenario default)")
	fs.Float64Var(&f.ReadHot, "read-hot", 0, "open-loop modified-SmallBank hot-read ratio (0 = scenario default)")
	fs.Float64Var(&f.WriteHot, "write-hot", 0, "open-loop modified-SmallBank hot-write ratio (0 = scenario default)")
	_ = fs.Parse(args)
	f.Orderers, f.Peers = splitAddrs(orderers), splitAddrs(peers)
	if f.openLoop() && f.Duration == 0 {
		f.Duration = 10 * time.Second
	}
	if err := f.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "sharpnet load:", err)
		return 2
	}
	if f.openLoop() {
		return openLoopLoad(f)
	}
	return closedLoopLoad(f)
}

// ---------------------------------------------------------------------------
// open loop: rate-paced generation plus the stage-trace report
// ---------------------------------------------------------------------------

// fullPipelineStages is the stage set every committed transaction must
// exhibit for the coverage assertion (raft-commit is omitted: standalone
// orderers never record it).
var fullPipelineStages = []trace.Stage{
	trace.StageSubmit, trace.StageOrder, trace.StageSeal,
	trace.StageDeliver, trace.StageValidate, trace.StageCommit,
}

func openLoopLoad(f loadFlags) int {
	opts := f.loadOptions()
	report, err := node.RunLoad(context.Background(), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sharpnet load:", err)
		return 1
	}
	workloadName := opts.Workload
	if workloadName == "" {
		workloadName = "msmallbank"
	}
	fmt.Printf("target     %d tx/s for %s (workload %s)\n", report.TargetTPS, opts.Duration, workloadName)
	fmt.Printf("offered    %d scheduled, %d dropped\n", report.Offered, report.Dropped)
	fmt.Printf("completed  %d committed, %d aborted, %d failed in %.1fs\n",
		report.Committed, report.Aborted, report.Failed, report.Elapsed.Seconds())
	fmt.Printf("achieved   %.0f tx/s\n", report.AchievedTPS)
	fmt.Printf("latency    p50 %.1fms  p90 %.1fms  p99 %.1fms  p99.9 %.1fms  max %.1fms (from scheduled instant)\n",
		report.LatencyP50MS, report.LatencyP90MS, report.LatencyP99MS, report.LatencyP999MS, report.LatencyMaxMS)

	// Convergence before draining the rings: peers may still be applying
	// delivered blocks, and commit-stage events trail the client acks.
	if why := awaitAgreement(f.Orderers, f.Peers, 0, 60*time.Second); why != "" {
		fmt.Fprintf(os.Stderr, "CONVERGENCE FAILED: %s\n", why)
		return 1
	}
	addrs := append(append([]string{}, f.Orderers...), f.Peers...)
	deadline := time.Now().Add(30 * time.Second)
	var tls []trace.Timeline
	var cov float64
	for {
		var err error
		tls, _, err = node.FetchTimelines(addrs, f.DialTimeout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sharpnet load:", err)
			return 1
		}
		cov = trace.Coverage(tls, report.CommittedIDs, fullPipelineStages...)
		if cov >= 0.995 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println()
	fmt.Print(trace.Summarize(tls).Format())

	// Machine-readable tally for harnesses (the cluster smoke asserts all
	// four; check mode re-asserts COMMITTED_TOTAL against the ledger).
	fmt.Printf("COMMITTED_TOTAL %d\n", report.Committed)
	fmt.Printf("ACHIEVED_TPS %.1f\n", report.AchievedTPS)
	fmt.Printf("LATENCY_P50_MS %.2f\n", report.LatencyP50MS)
	fmt.Printf("LATENCY_P99_MS %.2f\n", report.LatencyP99MS)
	fmt.Printf("TRACE_COVERAGE_PCT %.2f\n", 100*cov)
	if report.Failed > 0 {
		fmt.Fprintln(os.Stderr, "LOAD FAILED: some submissions errored")
		return 1
	}
	fmt.Println("CONVERGED: all peers at bit-identical chain tips and state fingerprints")
	return 0
}

// ---------------------------------------------------------------------------
// closed loop: the legacy fixed-count wire client
// ---------------------------------------------------------------------------

// smallbankOp draws one contended SmallBank operation from an explicit rng
// (never the global math/rand: each worker owns a deterministic stream, so
// runs are reproducible regardless of scheduling or parallel harnesses).
func smallbankOp(rng *rand.Rand, accounts int) (string, []string) {
	a := fmt.Sprintf("acct%d", rng.Intn(accounts))
	b := fmt.Sprintf("acct%d", rng.Intn(accounts))
	amount := fmt.Sprint(1 + rng.Intn(50))
	switch rng.Intn(5) {
	case 0:
		return "deposit_checking", []string{a, amount}
	case 1:
		return "transact_savings", []string{a, amount}
	case 2:
		return "write_check", []string{a, amount}
	case 3:
		return "amalgamate", []string{a, b}
	default:
		return "send_payment", []string{a, b, amount}
	}
}

func closedLoopLoad(f loadFlags) int {
	var sc scenario.Scenario
	if f.Workload != "" {
		sc, _ = scenario.Get(f.Workload) // existence validated already
	}
	start := time.Now()

	// Phase 0 (built-in SmallBank mix only): seed the account pool with
	// blind, contention-free writes. A named scenario skips this — its
	// genesis was installed by every fabricnode booted with the same
	// -workload/-accounts pair.
	seeded := int64(0)
	if f.Workload == "" {
		seeder, err := node.DialClient("seeder", f.Orderers, f.Peers, f.DialTimeout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for i := 0; i < f.Accounts; i++ {
			res, err := seeder.Submit("smallbank", "create_account", fmt.Sprintf("acct%d", i), "1000", "1000")
			if err != nil {
				fmt.Fprintf(os.Stderr, "seeding account %d: %v\n", i, err)
				return 1
			}
			if !res.Code.Committed() {
				fmt.Fprintf(os.Stderr, "seeding account %d aborted: %s\n", i, res.Code)
				return 1
			}
		}
		seeder.Close()
		seeded = int64(f.Accounts)
	}

	// Phase 1: contended traffic from independent workers.
	var committed, aborted, failed int64
	var wg sync.WaitGroup
	for c := 0; c < f.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(f.Seed + int64(c)))
			var gen workload.Generator
			if f.Workload != "" {
				var err error
				if gen, err = sc.Generator(rng, scenario.Params{Accounts: f.Accounts}); err != nil {
					fmt.Fprintf(os.Stderr, "client %d: %v\n", c, err)
					atomic.AddInt64(&failed, int64(f.Txs))
					return
				}
			}
			client, err := node.DialClient(fmt.Sprintf("load%d", c), f.Orderers, f.Peers, f.DialTimeout)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				atomic.AddInt64(&failed, int64(f.Txs))
				return
			}
			defer client.Close()
			for i := 0; i < f.Txs; i++ {
				contract := "smallbank"
				var function string
				var args []string
				if gen != nil {
					op := gen.Next()
					contract, function, args = op.Contract, op.Function, op.Args
				} else {
					function, args = smallbankOp(rng, f.Accounts)
				}
				res, err := client.Submit(contract, function, args...)
				switch {
				case err != nil && strings.Contains(err.Error(), "endorsement refused"):
					// The contract itself rejected the invocation (e.g. a
					// losing auction bid): an abort by design, not a failure.
					atomic.AddInt64(&aborted, 1)
				case err != nil:
					atomic.AddInt64(&failed, 1)
					fmt.Fprintf(os.Stderr, "client %d: %v\n", c, err)
				case res.Code.Committed():
					atomic.AddInt64(&committed, 1)
				default:
					atomic.AddInt64(&aborted, 1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Phase 2: convergence. Every peer must reach the orderer's sealed
	// chain and agree bit for bit. Status probes ride StatusAtRetry so a
	// node mid-restart (chaos smoke) costs a retry, not the whole run.
	var ordStatus wire.Status
	var stErr error
	for _, addr := range f.Orderers {
		if ordStatus, stErr = node.StatusAtRetry(addr, time.Now().Add(f.DialTimeout)); stErr == nil {
			break
		}
	}
	if stErr != nil {
		fmt.Fprintln(os.Stderr, stErr)
		return 1
	}
	fmt.Printf("\norderer    %d blocks sealed, tip %x\n", ordStatus.Blocks, ordStatus.TipHash)
	fmt.Printf("submitted  %d (%d committed, %d aborted, %d failed) in %.1fs\n",
		seeded+committed+aborted+failed, committed, aborted, failed, elapsed.Seconds())
	fmt.Printf("throughput %.0f tx/s end-to-end over TCP\n",
		float64(seeded+committed+aborted)/elapsed.Seconds())

	if why := awaitAgreement(f.Orderers, f.Peers, 0, 60*time.Second); why != "" {
		fmt.Fprintf(os.Stderr, "CONVERGENCE FAILED: %s\n", why)
		return 1
	}
	for _, addr := range f.Peers {
		st, err := node.StatusAtRetry(addr, time.Now().Add(f.DialTimeout))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("peer %-8s %d blocks, height %d, tip %x, state %.16s…\n",
			st.Name, st.Blocks, st.Height, st.TipHash, st.StateHash)
	}
	if failed > 0 {
		fmt.Fprintln(os.Stderr, "LOAD FAILED: some submissions errored")
		return 1
	}
	// Machine-readable tally for the chaos smoke: every one of these
	// transactions was acked committed to a client, so the surviving
	// cluster's ledger must account for all of them (check mode asserts it).
	fmt.Printf("COMMITTED_TOTAL %d\n", seeded+committed)
	fmt.Println("CONVERGED: all peers at bit-identical chain tips and state fingerprints")
	return 0
}
