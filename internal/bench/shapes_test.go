package bench

// Shape tests: quick-window runs asserting the *qualitative* results the
// paper reports — the claims EXPERIMENTS.md documents quantitatively.

import (
	"testing"

	"fabricsharp/internal/network"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/sim"
)

var shapeOpts = Options{Quick: true, Seed: 7}

func runQuick(t *testing.T, system sched.System, readHot, writeHot float64,
	clientDelay, readInterval sim.Time) *network.Result {
	t.Helper()
	return run(msmallbankConfig(shapeOpts, system, readHot, writeHot,
		Params.Defaults.BlockSize, clientDelay, readInterval))
}

func TestShapeSharpDominatesAtDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// The headline comparison at Table 2 defaults: Fabric# beats every
	// other system's effective throughput.
	sharp := runQuick(t, sched.SystemSharp, 0.1, 0.1, defaultClientDelay(), defaultReadInterval())
	for _, other := range []sched.System{sched.SystemFabric, sched.SystemFabricPP, sched.SystemFoccS, sched.SystemFoccL} {
		res := runQuick(t, other, 0.1, 0.1, defaultClientDelay(), defaultReadInterval())
		if sharp.EffectiveTPS <= res.EffectiveTPS {
			t.Errorf("fabric# (%.0f) did not beat %s (%.0f)", sharp.EffectiveTPS, other, res.EffectiveTPS)
		}
	}
}

func TestShapeFoccSCollapsesWithWriteHot(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// Figure 11: Focc-s's c-ww prevention costs it dearly as write-hot
	// grows, while Fabric# degrades gracefully (c-ww is reorderable).
	foccsLo := runQuick(t, sched.SystemFoccS, 0.1, 0.0, 0, 0)
	foccsHi := runQuick(t, sched.SystemFoccS, 0.1, 0.5, 0, 0)
	if foccsHi.EffectiveTPS > 0.5*foccsLo.EffectiveTPS {
		t.Errorf("focc-s did not collapse: %.0f -> %.0f", foccsLo.EffectiveTPS, foccsHi.EffectiveTPS)
	}
	sharpLo := runQuick(t, sched.SystemSharp, 0.1, 0.0, 0, 0)
	sharpHi := runQuick(t, sched.SystemSharp, 0.1, 0.5, 0, 0)
	if sharpHi.EffectiveTPS < 0.5*sharpLo.EffectiveTPS {
		t.Errorf("fabric# collapsed on write-hot: %.0f -> %.0f", sharpLo.EffectiveTPS, sharpHi.EffectiveTPS)
	}
}

func TestShapeFoccSCrossoverAtHighReadHot(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// Figure 12: at 50% read-hot, Focc-s overtakes vanilla Fabric (it
	// recovers serializable transactions with single rw conflicts).
	foccs := runQuick(t, sched.SystemFoccS, 0.5, 0.1, defaultClientDelay(), defaultReadInterval())
	fabric := runQuick(t, sched.SystemFabric, 0.5, 0.1, defaultClientDelay(), defaultReadInterval())
	if foccs.EffectiveTPS <= fabric.EffectiveTPS {
		t.Errorf("no crossover: focc-s %.0f <= fabric %.0f", foccs.EffectiveTPS, fabric.EffectiveTPS)
	}
}

func TestShapeFigure15Overhead(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// On the contention-free Create Account workload FastFabric# pays at
	// most a few percent vs FastFabric (paper: <5%).
	tbl := Figure15(shapeOpts)
	// Row 0 is create-account: columns are [workload, FastFabric, FastFabric#, rescued, gain].
	var base, sharp float64
	if _, err := fmtSscan(tbl.Rows[0][1], &base); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tbl.Rows[0][2], &sharp); err != nil {
		t.Fatal(err)
	}
	if sharp < 0.95*base {
		t.Errorf("create-account overhead too high: %.0f vs %.0f", sharp, base)
	}
	// Last row is θ=1.0: the Sharp gain must be large.
	last := tbl.Rows[len(tbl.Rows)-1]
	if _, err := fmtSscan(last[1], &base); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(last[2], &sharp); err != nil {
		t.Fatal(err)
	}
	if sharp < 1.3*base {
		t.Errorf("θ=1 gain too small: %.0f vs %.0f", sharp, base)
	}
}

func TestShapeAblationMaxSpanTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	tbl := AblationMaxSpan(shapeOpts)
	// Tiny horizon: high stale-abort share; large horizon: zero.
	var tiny, large float64
	if _, err := fmtSscan(tbl.Rows[0][2], &tiny); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tbl.Rows[len(tbl.Rows)-1][2], &large); err != nil {
		t.Fatal(err)
	}
	if tiny < 10 || large > 1 {
		t.Errorf("max_span tradeoff shape wrong: tiny=%.1f%% large=%.1f%%", tiny, large)
	}
}

func TestShapeBloomAblationMonotone(t *testing.T) {
	tbl := AblationBloomBits()
	// Smaller filters can only abort more (false positives are one-sided).
	var first, last float64
	if _, err := fmtSscan(tbl.Rows[0][3], &first); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tbl.Rows[len(tbl.Rows)-1][3], &last); err != nil {
		t.Fatal(err)
	}
	if first < last {
		t.Errorf("smaller blooms aborted less: %.2f%% < %.2f%%", first, last)
	}
}
