package sim

import (
	"fmt"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var log []string
	e.At(30, func() { log = append(log, "c") })
	e.At(10, func() { log = append(log, "a") })
	e.At(20, func() { log = append(log, "b") })
	// Same-time events keep submission order.
	e.At(20, func() { log = append(log, "b2") })
	e.RunAll()
	if fmt.Sprint(log) != "[a b b2 c]" {
		t.Errorf("log = %v", log)
	}
	if e.Now() != 30 {
		t.Errorf("now = %d", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	for i := 1; i <= 5; i++ {
		e.At(Time(i*10), func() { ran++ })
	}
	e.Run(30)
	if ran != 3 {
		t.Errorf("ran %d events, want 3", ran)
	}
	if e.Now() != 30 {
		t.Errorf("now = %d", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.At(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.RunAll()
	if fmt.Sprint(hits) != "[10 15]" {
		t.Errorf("hits = %v", hits)
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.At(100, func() {
		e.At(50, func() { at = e.Now() }) // in the past: runs "now"
	})
	e.RunAll()
	if at != 100 {
		t.Errorf("past event ran at %d", at)
	}
}

func TestStationCapacityAndFIFO(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, 2)
	var done []string
	finish := func(name string) func() { return func() { done = append(done, fmt.Sprintf("%s@%d", name, e.Now())) } }
	e.At(0, func() {
		s.Submit(10, finish("j1"))
		s.Submit(10, finish("j2"))
		s.Submit(10, finish("j3")) // queues behind the two servers
	})
	e.RunAll()
	if fmt.Sprint(done) != "[j1@10 j2@10 j3@20]" {
		t.Errorf("done = %v", done)
	}
	if s.Served() != 3 {
		t.Errorf("served = %d", s.Served())
	}
	if s.BusyTime() != 30 {
		t.Errorf("busy = %d", s.BusyTime())
	}
}

func TestStationQueueLen(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, 1)
	e.At(0, func() {
		for i := 0; i < 5; i++ {
			s.Submit(100, nil)
		}
	})
	e.Run(0)
	if got := s.QueueLen(); got != 4 {
		t.Errorf("queue = %d want 4", got)
	}
	e.RunAll()
	if got := s.QueueLen(); got != 0 {
		t.Errorf("queue after drain = %d", got)
	}
}

func TestRWLockWriterPreference(t *testing.T) {
	l := NewRWLock()
	var log []string
	l.AcquireRead(func() { log = append(log, "r1") })
	l.AcquireRead(func() { log = append(log, "r2") })
	l.AcquireWrite(func() { log = append(log, "w") })
	// New readers queue behind the waiting writer.
	l.AcquireRead(func() { log = append(log, "r3") })
	if fmt.Sprint(log) != "[r1 r2]" {
		t.Fatalf("log = %v", log)
	}
	l.ReleaseRead()
	l.ReleaseRead() // writer granted now
	if fmt.Sprint(log) != "[r1 r2 w]" {
		t.Fatalf("log = %v", log)
	}
	l.ReleaseWrite() // queued reader granted
	if fmt.Sprint(log) != "[r1 r2 w r3]" {
		t.Fatalf("log = %v", log)
	}
	if l.Readers() != 1 {
		t.Errorf("readers = %d", l.Readers())
	}
}

func TestRWLockWritersSerialize(t *testing.T) {
	l := NewRWLock()
	var log []string
	l.AcquireWrite(func() { log = append(log, "w1") })
	l.AcquireWrite(func() { log = append(log, "w2") })
	if fmt.Sprint(log) != "[w1]" {
		t.Fatalf("log = %v", log)
	}
	l.ReleaseWrite()
	if fmt.Sprint(log) != "[w1 w2]" {
		t.Fatalf("log = %v", log)
	}
}

func TestProcessSleep(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.At(5, func() {
		e.StartProcess(func(p *Proc) {
			trace = append(trace, fmt.Sprintf("start@%d", p.Now()))
			p.Sleep(10)
			trace = append(trace, fmt.Sprintf("mid@%d", p.Now()))
			p.Sleep(20)
			trace = append(trace, fmt.Sprintf("end@%d", p.Now()))
		})
	})
	// An interleaved plain event.
	e.At(12, func() { trace = append(trace, "tick@12") })
	e.RunAll()
	want := "[start@5 tick@12 mid@15 end@35]"
	if fmt.Sprint(trace) != want {
		t.Errorf("trace = %v want %v", trace, want)
	}
}

func TestProcessBlockOnLock(t *testing.T) {
	e := NewEngine()
	l := NewRWLock()
	var trace []string
	e.At(0, func() {
		e.StartProcess(func(p *Proc) {
			p.Block(l.AcquireWrite)
			trace = append(trace, fmt.Sprintf("locked@%d", p.Now()))
			p.Sleep(10)
			l.ReleaseWrite()
			trace = append(trace, fmt.Sprintf("released@%d", p.Now()))
		})
	})
	e.At(1, func() {
		e.StartProcess(func(p *Proc) {
			p.Block(l.AcquireWrite) // waits for the first process
			trace = append(trace, fmt.Sprintf("locked2@%d", p.Now()))
			l.ReleaseWrite()
		})
	})
	e.RunAll()
	want := "[locked@0 locked2@10 released@10]"
	if fmt.Sprint(trace) != want {
		t.Errorf("trace = %v want %v", trace, want)
	}
}

func TestManyProcessesDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for i := 0; i < 20; i++ {
			i := i
			e.At(Time(i%3), func() {
				e.StartProcess(func(p *Proc) {
					p.Sleep(Time(10 + i%5))
					log = append(log, fmt.Sprintf("p%d@%d", i, p.Now()))
				})
			})
		}
		e.RunAll()
		return log
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("nondeterministic process interleaving:\n%v\n%v", a, b)
	}
}

func TestTimeUnits(t *testing.T) {
	if Second != 1_000_000*Microsecond || Millisecond != 1000*Microsecond {
		t.Error("unit arithmetic wrong")
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Error("Seconds wrong")
	}
	if (1500 * Microsecond).Millis() != 1.5 {
		t.Error("Millis wrong")
	}
}

func TestStationPanicsOnZeroServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewStation(NewEngine(), 0)
}
