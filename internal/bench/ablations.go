package bench

import (
	"fmt"

	"fabricsharp/internal/core"
	"fabricsharp/internal/network"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/workload"
)

// Ablations exercise the design choices Section 4 calls out: the max_span
// pruning horizon (staleness aborts vs graph size), the reachability bloom
// sizing (false positives become preventive aborts), and the filter relay
// period (false-positive control vs rebuild cost).
func Ablations(o Options) []*Table {
	return []*Table{
		AblationMaxSpan(o),
		AblationBloomBits(),
		AblationRelayPeriod(),
	}
}

// AblationMaxSpan sweeps the pruning horizon on the full pipeline: small
// horizons abort laggard transactions as stale and keep the graph tiny;
// large horizons accept more but track more.
func AblationMaxSpan(o Options) *Table {
	t := &Table{
		Title:   "Ablation: max_span (Section 4.6) on Fabric#",
		Columns: []string{"max_span", "effective tps", "stale aborts %", "cycle aborts %", "max graph size"},
		Comment: "long client delays make snapshots lag; small horizons turn lag into stale aborts",
	}
	for _, span := range []uint64{2, 4, 6, 10, 20, 40} {
		rng := o.Rng(o.Seed)
		res := run(network.Config{
			System:      sched.SystemSharp,
			Workload:    mustGen(workload.NewModifiedSmallbank(rng, 0, Params.Defaults.ReadHot, Params.Defaults.WriteHot)),
			Seed:        o.Seed,
			Duration:    o.duration(),
			RequestRate: Params.Defaults.RequestRate,
			BlockSize:   Params.Defaults.BlockSize,
			ClientDelay: defaultClientDelay() * 3, // stress the horizon
			MaxSpan:     span,
		})
		pct := func(n uint64) string {
			return fmt.Sprintf("%.2f", 100*float64(n)/float64(res.Submitted))
		}
		graph := 0
		if res.SharpStats != nil {
			graph = res.SharpStats.MaxGraphSize
		}
		t.AddRow(span, res.EffectiveTPS,
			pct(res.EarlyAborts[protocol.AbortStaleSnapshot]),
			pct(res.EarlyAborts[protocol.AbortCycle]),
			graph)
	}
	return t
}

// ablationStream drives a manager with a fixed contended stream and reports
// accept/abort counts.
func ablationStream(opts core.Options) (accepted, cycleAborts uint64) {
	m := core.NewManager(opts)
	height := uint64(0)
	for i := 0; i < 4000; i++ {
		r1 := fmt.Sprintf("k%d", (i*7)%40)
		r2 := fmt.Sprintf("k%d", (i*11)%40)
		w := fmt.Sprintf("k%d", (i*3)%40)
		snap := height
		if snap > 0 && i%3 == 0 {
			snap--
		}
		code, err := m.OnArrival(core.TxID(fmt.Sprintf("t%d", i)), snap, []string{r1, r2}, []string{w})
		if err != nil {
			panic(err)
		}
		switch code {
		case protocol.Valid:
			accepted++
		case protocol.AbortCycle:
			cycleAborts++
		}
		if (i+1)%100 == 0 {
			if ids, block, err := m.OnBlockFormation(); err != nil {
				panic(err)
			} else if len(ids) > 0 {
				height = block
			}
		}
	}
	return accepted, cycleAborts
}

// AblationBloomBits shows undersized reachability filters converting false
// positives into preventive aborts: safety holds, throughput pays.
func AblationBloomBits() *Table {
	t := &Table{
		Title:   "Ablation: reachability filter size (Section 4.4)",
		Columns: []string{"bloom bits", "accepted", "cycle aborts", "abort %"},
		Comment: "identical contended stream of 4000 txns; extra aborts at small sizes are bloom false positives",
	}
	for _, bits := range []uint64{128, 256, 1024, 4096, 16384, 65536} {
		accepted, cycles := ablationStream(core.Options{BloomBits: bits, BloomHashes: 4})
		t.AddRow(bits, accepted, cycles, fmt.Sprintf("%.2f", 100*float64(cycles)/4000))
	}
	return t
}

// AblationRelayPeriod shows the filter relay (rebuild) period's effect: rare
// relays let fill ratios — and false-positive aborts — creep up.
func AblationRelayPeriod() *Table {
	t := &Table{
		Title:   "Ablation: filter relay period (Section 4.4)",
		Columns: []string{"relay every N blocks", "accepted", "cycle aborts", "abort %"},
		Comment: "small filters (1024 bits) make the relay's false-positive control visible",
	}
	for _, relay := range []uint64{1, 2, 5, 10, 20, 50} {
		accepted, cycles := ablationStream(core.Options{BloomBits: 1024, BloomHashes: 4, RelayBlocks: relay})
		t.AddRow(relay, accepted, cycles, fmt.Sprintf("%.2f", 100*float64(cycles)/4000))
	}
	return t
}
