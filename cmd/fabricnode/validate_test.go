package main

import (
	"strings"
	"testing"
	"time"
)

func ordererFlags() nodeFlags {
	return nodeFlags{
		Role:      "orderer",
		PeerNames: []string{"peer0", "peer1"},
	}
}

func raftOrdererFlags() nodeFlags {
	f := ordererFlags()
	f.RaftID = "127.0.0.1:9001"
	f.RaftCluster = []string{"127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"}
	f.RaftRedirects = map[string]string{
		"127.0.0.1:9001": "127.0.0.1:7001",
		"127.0.0.1:9002": "127.0.0.1:7002",
		"127.0.0.1:9003": "127.0.0.1:7003",
	}
	f.RaftDir = "/tmp/raft"
	f.RaftElection = 150 * time.Millisecond
	return f
}

func peerFlags() nodeFlags {
	return nodeFlags{
		Role:         "peer",
		Name:         "peer0",
		OrdererAddrs: []string{"127.0.0.1:7050"},
		PeerNames:    []string{"peer0", "peer1"},
	}
}

func TestValidateAcceptsWellFormedConfigs(t *testing.T) {
	for name, f := range map[string]nodeFlags{
		"standalone orderer": ordererFlags(),
		"raft orderer":       raftOrdererFlags(),
		"peer":               peerFlags(),
		"peer multi-orderer": func() nodeFlags {
			f := peerFlags()
			f.OrdererAddrs = []string{"127.0.0.1:7050", "127.0.0.1:7060"}
			return f
		}(),
		"raft orderer without redirects": func() nodeFlags {
			f := raftOrdererFlags()
			f.RaftRedirects = nil
			return f
		}(),
		"orderer with workload": func() nodeFlags {
			f := ordererFlags()
			f.Workload = "token"
			return f
		}(),
		"peer with workload and accounts": func() nodeFlags {
			f := peerFlags()
			f.Workload = "analytics"
			f.Accounts = 64
			return f
		}(),
	} {
		if err := f.validate(); err != nil {
			t.Errorf("%s: unexpected error: %v", name, err)
		}
	}
}

func TestValidateRejectsBrokenConfigs(t *testing.T) {
	cases := map[string]struct {
		mutate  func(*nodeFlags)
		base    func() nodeFlags
		wantErr string
	}{
		"missing role": {
			base:    func() nodeFlags { f := ordererFlags(); f.Role = ""; return f },
			wantErr: "-role is required",
		},
		"unknown role": {
			base:    func() nodeFlags { f := ordererFlags(); f.Role = "auditor"; return f },
			wantErr: "unknown -role",
		},
		"no peers": {
			base:    func() nodeFlags { f := ordererFlags(); f.PeerNames = nil; return f },
			wantErr: "at least one validating peer",
		},
		"duplicate peers": {
			base:    func() nodeFlags { f := ordererFlags(); f.PeerNames = []string{"peer0", "peer0"}; return f },
			wantErr: "twice",
		},
		"orderer with peer name": {
			base:    func() nodeFlags { f := ordererFlags(); f.Name = "peer0"; return f },
			wantErr: "-name is a peer flag",
		},
		"peer without name": {
			base:    func() nodeFlags { f := peerFlags(); f.Name = ""; return f },
			wantErr: "requires -name",
		},
		"peer name not in cluster list": {
			base:    func() nodeFlags { f := peerFlags(); f.Name = "peer9"; return f },
			wantErr: "does not appear in -peers",
		},
		"peer without orderer": {
			base:    func() nodeFlags { f := peerFlags(); f.OrdererAddrs = nil; return f },
			wantErr: "requires -orderer",
		},
		"peer with raft flags": {
			base:    func() nodeFlags { f := peerFlags(); f.RaftCluster = []string{"127.0.0.1:9001"}; return f },
			wantErr: "role peer does not accept them",
		},
		"raft id without cluster": {
			base:    func() nodeFlags { f := ordererFlags(); f.RaftID = "127.0.0.1:9001"; return f },
			wantErr: "without -raft-cluster",
		},
		"raft dir without cluster": {
			base:    func() nodeFlags { f := ordererFlags(); f.RaftDir = "/tmp/raft"; return f },
			wantErr: "without -raft-cluster",
		},
		"raft election without cluster": {
			base:    func() nodeFlags { f := ordererFlags(); f.RaftElection = time.Second; return f },
			wantErr: "without -raft-cluster",
		},
		"redirects without cluster": {
			base: func() nodeFlags {
				f := ordererFlags()
				f.RaftRedirects = map[string]string{"a": "b"}
				return f
			},
			wantErr: "without -raft-cluster",
		},
		"cluster without id": {
			base:    func() nodeFlags { f := raftOrdererFlags(); f.RaftID = ""; return f },
			wantErr: "requires -raft-id",
		},
		"id not in cluster": {
			base:    func() nodeFlags { f := raftOrdererFlags(); f.RaftID = "127.0.0.1:9999"; return f },
			wantErr: "does not appear in -raft-cluster",
		},
		"duplicate cluster member": {
			base: func() nodeFlags {
				f := raftOrdererFlags()
				f.RaftCluster = []string{"127.0.0.1:9001", "127.0.0.1:9001"}
				f.RaftRedirects = nil
				return f
			},
			wantErr: "twice",
		},
		"single-member cluster": {
			base: func() nodeFlags {
				f := raftOrdererFlags()
				f.RaftCluster = []string{"127.0.0.1:9001"}
				f.RaftRedirects = nil
				return f
			},
			wantErr: "at least two members",
		},
		"redirect for unknown member": {
			base: func() nodeFlags {
				f := raftOrdererFlags()
				f.RaftRedirects["127.0.0.1:9999"] = "127.0.0.1:7999"
				return f
			},
			wantErr: "not in -raft-cluster",
		},
		"redirects omit self": {
			base: func() nodeFlags {
				f := raftOrdererFlags()
				delete(f.RaftRedirects, f.RaftID)
				return f
			},
			wantErr: "omits the local member",
		},
		"unknown workload": {
			base:    func() nodeFlags { f := ordererFlags(); f.Workload = "nosuch"; return f },
			wantErr: "unknown -workload",
		},
		"accounts without workload": {
			base:    func() nodeFlags { f := peerFlags(); f.Accounts = 64; return f },
			wantErr: "requires -workload",
		},
		"negative accounts": {
			base:    func() nodeFlags { f := ordererFlags(); f.Workload = "token"; f.Accounts = -1; return f },
			wantErr: "non-negative",
		},
	}
	for name, c := range cases {
		f := c.base()
		if c.mutate != nil {
			c.mutate(&f)
		}
		err := f.validate()
		if err == nil {
			t.Errorf("%s: want error containing %q, got nil", name, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not contain %q", name, err, c.wantErr)
		}
	}
}

func TestParseRedirects(t *testing.T) {
	got, err := parseRedirects("a=1,b=2")
	if err != nil || len(got) != 2 || got["a"] != "1" || got["b"] != "2" {
		t.Fatalf("parseRedirects = %v, %v", got, err)
	}
	if got, err := parseRedirects(""); err != nil || got != nil {
		t.Fatalf("empty input should yield nil map, got %v, %v", got, err)
	}
	for _, bad := range []string{"a", "a=", "=1", "a=1,b"} {
		if _, err := parseRedirects(bad); err == nil {
			t.Errorf("parseRedirects(%q): want error", bad)
		}
	}
}
