// Command sharpnet drives the EOV blockchain two ways:
//
//   - -mode demo (default): boots the in-process network (library mode) and
//     runs a short contended counter workload against it — a zero-setup way
//     to watch the execute-order-validate pipeline and the Sharp reordering
//     at work.
//   - -mode load: acts as a pure wire client against a process-per-node
//     cluster (cmd/fabricnode): endorses SmallBank traffic on real peers
//     over TCP, submits to the orderer, polls results, and finally asserts
//     that every peer converged to bit-identical chain tip hashes and state
//     fingerprints. Exit status 0 means converged; anything else is a
//     failed run. This is what the CI cluster-smoke job runs against three
//     separate OS processes.
//
// Two auxiliary modes support the chaos smoke against a Raft ordering
// cluster:
//
//   - -mode status: prints one machine-readable line per orderer and peer
//     (role, name, term, leader, blocks, tip, committed count).
//   - -mode check: polls until every live orderer and every peer agree on a
//     bit-identical chain tip and state fingerprint, then asserts the
//     ledger's committed-transaction tally covers -expect-committed.
//
// Usage:
//
//	sharpnet [-system fabric#] [-clients 4] [-txs 200]
//	sharpnet -mode load -orderer 127.0.0.1:7050,127.0.0.1:7060 \
//	         -peer-addrs 127.0.0.1:7051,127.0.0.1:7052 \
//	         [-clients 4] [-txs 125] [-accounts 32] [-seed 42]
//	sharpnet -mode check -orderer ... -peer-addrs ... -expect-committed 500
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fabricsharp/internal/fabric"
	"fabricsharp/internal/node"
	"fabricsharp/internal/scenario"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/wire"
	"fabricsharp/internal/workload"
)

func main() {
	mode := flag.String("mode", "demo", "demo (in-process network) | load (wire client against a fabricnode cluster)")
	system := flag.String("system", "fabric#", "fabric | fabric++ | fabric# | focc-s | focc-l (demo mode)")
	clients := flag.Int("clients", 4, "concurrent clients")
	txs := flag.Int("txs", 200, "transactions per client")
	hotKeys := flag.Int("hot", 8, "number of contended counters (demo mode)")
	ordererAddr := flag.String("orderer", "", "comma-separated orderer addresses (load/status/check modes)")
	peerAddrs := flag.String("peer-addrs", "", "comma-separated peer addresses (load/status/check modes)")
	accounts := flag.Int("accounts", 32, "account pool: SmallBank accounts to create, or with -workload the scenario pool override (load mode)")
	workloadName := flag.String("workload", "", "registered scenario to drive instead of the built-in SmallBank mix; the cluster must have been booted with the same -workload/-accounts genesis (load mode)")
	seed := flag.Int64("seed", 42, "base seed; client i draws from an explicit rand.Rand seeded with seed+i (load mode)")
	dialTimeout := flag.Duration("dial-timeout", 30*time.Second, "how long to retry dialing the cluster (load mode)")
	expectCommitted := flag.Uint64("expect-committed", 0, "minimum committed-transaction tally the ledger must hold (check mode)")
	convergeTimeout := flag.Duration("converge-timeout", 60*time.Second, "how long check mode waits for the cluster to agree")
	flag.Parse()

	cf := clientFlags{
		Mode:            *mode,
		Orderers:        splitAddrs(*ordererAddr),
		Peers:           splitAddrs(*peerAddrs),
		Clients:         *clients,
		Txs:             *txs,
		Accounts:        *accounts,
		Workload:        *workloadName,
		ExpectCommitted: *expectCommitted,
	}
	if err := cf.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "sharpnet:", err)
		flag.PrintDefaults()
		os.Exit(2)
	}
	switch cf.Mode {
	case "demo":
		demo(*system, cf.Clients, cf.Txs, *hotKeys)
	case "load":
		load(cf.Orderers, cf.Peers, cf.Clients, cf.Txs, cf.Accounts, cf.Workload, *seed, *dialTimeout)
	case "status":
		statusMode(cf.Orderers, cf.Peers, *dialTimeout)
	case "check":
		check(cf.Orderers, cf.Peers, cf.ExpectCommitted, *convergeTimeout)
	}
}

func splitAddrs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// demo mode: the original in-process session
// ---------------------------------------------------------------------------

func demo(system string, clients, txs, hotKeys int) {
	net, err := fabric.NewNetwork(fabric.Options{
		System:       sched.System(system),
		BlockSize:    50,
		BlockTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer net.Close()

	var committed, aborted int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, err := net.NewClient(fmt.Sprintf("client%d", c))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			for i := 0; i < txs; i++ {
				key := fmt.Sprintf("counter%d", (c+i)%hotKeys)
				res, err := client.Submit("kv", "rmw", key, "1")
				switch {
				case err != nil:
					fmt.Fprintf(os.Stderr, "submit error: %v\n", err)
				case res.Committed():
					atomic.AddInt64(&committed, 1)
				default:
					atomic.AddInt64(&aborted, 1)
					if aborted <= 5 {
						fmt.Printf("  aborted %s: %s\n", res.TxID, res.Code)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	net.WaitIdle(5 * time.Second)
	elapsed := time.Since(start)

	fmt.Printf("\nsystem     %s\n", system)
	fmt.Printf("committed  %d\n", committed)
	fmt.Printf("aborted    %d (%.1f%%)\n", aborted,
		100*float64(aborted)/float64(committed+aborted))
	fmt.Printf("throughput %.0f tx/s (wall clock)\n", float64(committed)/elapsed.Seconds())
	fmt.Printf("height     %d blocks\n", net.Height())

	// Serializability, observably: the counters must sum to the committed
	// increments.
	client, _ := net.NewClient("auditor")
	total := int64(0)
	for k := 0; k < hotKeys; k++ {
		raw, err := client.Query("kv", "get", fmt.Sprintf("counter%d", k))
		if err == nil && raw != nil {
			var v int64
			fmt.Sscan(string(raw), &v)
			total += v
		}
	}
	fmt.Printf("audit      counters sum to %d (committed increments: %d)\n", total, committed)
	if total != committed {
		fmt.Fprintln(os.Stderr, "AUDIT FAILED: state does not match committed transactions")
		os.Exit(1)
	}
}

// ---------------------------------------------------------------------------
// load mode: wire client against a process-per-node cluster
// ---------------------------------------------------------------------------

// smallbankOp draws one contended SmallBank operation from an explicit rng
// (never the global math/rand: each worker owns a deterministic stream, so
// runs are reproducible regardless of scheduling or parallel harnesses).
func smallbankOp(rng *rand.Rand, accounts int) (string, []string) {
	a := fmt.Sprintf("acct%d", rng.Intn(accounts))
	b := fmt.Sprintf("acct%d", rng.Intn(accounts))
	amount := fmt.Sprint(1 + rng.Intn(50))
	switch rng.Intn(5) {
	case 0:
		return "deposit_checking", []string{a, amount}
	case 1:
		return "transact_savings", []string{a, amount}
	case 2:
		return "write_check", []string{a, amount}
	case 3:
		return "amalgamate", []string{a, b}
	default:
		return "send_payment", []string{a, b, amount}
	}
}

func load(orderers, peers []string, clients, txs, accounts int, workloadName string, seed int64, dialTimeout time.Duration) {
	if len(orderers) == 0 || len(peers) == 0 {
		fmt.Fprintln(os.Stderr, "load mode requires -orderer and -peer-addrs")
		os.Exit(2)
	}
	var sc scenario.Scenario
	if workloadName != "" {
		var ok bool
		if sc, ok = scenario.Get(workloadName); !ok {
			fmt.Fprintf(os.Stderr, "unknown -workload %q (have %s)\n", workloadName, strings.Join(scenario.Names(), ", "))
			os.Exit(2)
		}
	}
	start := time.Now()

	// Phase 0 (built-in SmallBank mix only): seed the account pool with
	// blind, contention-free writes. A named scenario skips this — its
	// genesis was installed by every fabricnode booted with the same
	// -workload/-accounts pair.
	seeded := int64(0)
	if workloadName == "" {
		seeder, err := node.DialClient("seeder", orderers, peers, dialTimeout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i := 0; i < accounts; i++ {
			res, err := seeder.Submit("smallbank", "create_account", fmt.Sprintf("acct%d", i), "1000", "1000")
			if err != nil {
				fmt.Fprintf(os.Stderr, "seeding account %d: %v\n", i, err)
				os.Exit(1)
			}
			if !res.Code.Committed() {
				fmt.Fprintf(os.Stderr, "seeding account %d aborted: %s\n", i, res.Code)
				os.Exit(1)
			}
		}
		seeder.Close()
		seeded = int64(accounts)
	}

	// Phase 1: contended traffic from independent workers.
	var committed, aborted, failed int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			var gen workload.Generator
			if workloadName != "" {
				var err error
				if gen, err = sc.Generator(rng, scenario.Params{Accounts: accounts}); err != nil {
					fmt.Fprintf(os.Stderr, "client %d: %v\n", c, err)
					atomic.AddInt64(&failed, int64(txs))
					return
				}
			}
			client, err := node.DialClient(fmt.Sprintf("load%d", c), orderers, peers, dialTimeout)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				atomic.AddInt64(&failed, int64(txs))
				return
			}
			defer client.Close()
			for i := 0; i < txs; i++ {
				contract := "smallbank"
				var function string
				var args []string
				if gen != nil {
					op := gen.Next()
					contract, function, args = op.Contract, op.Function, op.Args
				} else {
					function, args = smallbankOp(rng, accounts)
				}
				res, err := client.Submit(contract, function, args...)
				switch {
				case err != nil && strings.Contains(err.Error(), "endorsement refused"):
					// The contract itself rejected the invocation (e.g. a
					// losing auction bid): an abort by design, not a failure.
					atomic.AddInt64(&aborted, 1)
				case err != nil:
					atomic.AddInt64(&failed, 1)
					fmt.Fprintf(os.Stderr, "client %d: %v\n", c, err)
				case res.Code.Committed():
					atomic.AddInt64(&committed, 1)
				default:
					atomic.AddInt64(&aborted, 1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Phase 2: convergence. Every peer must reach the orderer's sealed
	// chain and agree bit for bit.
	checker, err := node.DialClient("checker", orderers, peers, dialTimeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer checker.Close()
	ordStatus, err := checker.OrdererStatus()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\norderer    %d blocks sealed, tip %x\n", ordStatus.Blocks, ordStatus.TipHash)
	fmt.Printf("submitted  %d (%d committed, %d aborted, %d failed) in %.1fs\n",
		seeded+committed+aborted+failed, committed, aborted, failed, elapsed.Seconds())
	fmt.Printf("throughput %.0f tx/s end-to-end over TCP\n",
		float64(seeded+committed+aborted)/elapsed.Seconds())

	// The probe retries until every live orderer (a freshly restarted
	// replica may still be catching up the replicated log) and every peer
	// agree bit for bit.
	deadline := time.Now().Add(60 * time.Second)
	for {
		why := agreementProbe(orderers, peers, 0, 2*time.Second)
		if why == "" {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "CONVERGENCE FAILED: %s\n", why)
			os.Exit(1)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i := range peers {
		st, err := checker.PeerStatus(i)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("peer %-8s %d blocks, height %d, tip %x, state %.16s…\n",
			st.Name, st.Blocks, st.Height, st.TipHash, st.StateHash)
	}
	if failed > 0 {
		fmt.Fprintln(os.Stderr, "LOAD FAILED: some submissions errored")
		os.Exit(1)
	}
	// Machine-readable tally for the chaos smoke: every one of these
	// transactions was acked committed to a client, so the surviving
	// cluster's ledger must account for all of them (check mode asserts it).
	fmt.Printf("COMMITTED_TOTAL %d\n", seeded+committed)
	fmt.Println("CONVERGED: all peers at bit-identical chain tips and state fingerprints")
}

// ---------------------------------------------------------------------------
// status / check modes: cluster-wide agreement probes for the chaos smoke
// ---------------------------------------------------------------------------

// statusMode prints one line per reachable cluster member; unreachable
// members are reported but not fatal (the chaos smoke probes mid-kill).
func statusMode(orderers, peers []string, dialTimeout time.Duration) {
	for _, addr := range orderers {
		st, err := node.StatusAt(addr, dialTimeout)
		if err != nil {
			fmt.Printf("orderer %s down (%v)\n", addr, err)
			continue
		}
		fmt.Printf("orderer %s name=%s term=%d leader=%s blocks=%d height=%d committed=%d tip=%x\n",
			addr, st.Name, st.Term, st.Leader, st.Blocks, st.Height, st.CommittedTx, st.TipHash)
	}
	for _, addr := range peers {
		st, err := node.StatusAt(addr, dialTimeout)
		if err != nil {
			fmt.Printf("peer %s down (%v)\n", addr, err)
			continue
		}
		fmt.Printf("peer %s name=%s blocks=%d height=%d committed=%d tip=%x state=%s\n",
			addr, st.Name, st.Blocks, st.Height, st.CommittedTx, st.TipHash, st.StateHash)
	}
}

// check polls until every live orderer and every peer agree on a
// bit-identical chain tip (peers additionally on the state fingerprint),
// then asserts the replicated ledger's committed tally covers
// expectCommitted. Unreachable orderers are skipped — the chaos smoke runs
// this with a member killed — but at least one must answer; peers must all
// answer (none are killed).
func check(orderers, peers []string, expectCommitted uint64, timeout time.Duration) {
	if len(orderers) == 0 || len(peers) == 0 {
		fmt.Fprintln(os.Stderr, "check mode requires -orderer and -peer-addrs")
		os.Exit(2)
	}
	deadline := time.Now().Add(timeout)
	probe := 2 * time.Second
	var lastWhy string
	for {
		why := agreementProbe(orderers, peers, expectCommitted, probe)
		if why == "" {
			fmt.Println("CHECK OK: survivors agree bit for bit and no committed transaction was lost")
			return
		}
		lastWhy = why
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "CHECK FAILED after %v: %s\n", timeout, lastWhy)
			os.Exit(1)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// agreementProbe takes one cluster snapshot and returns "" when the
// agreement invariants hold, else a reason to keep waiting.
func agreementProbe(orderers, peers []string, expectCommitted uint64, dialTimeout time.Duration) string {
	type member struct {
		addr string
		st   wire.Status
	}
	var live []member
	for _, addr := range orderers {
		st, err := node.StatusAt(addr, dialTimeout)
		if err != nil {
			continue // killed member: survivors carry the invariant
		}
		live = append(live, member{addr, st})
	}
	if len(live) == 0 {
		return "no orderer reachable"
	}
	ref := live[0].st
	for _, m := range live[1:] {
		if m.st.Blocks != ref.Blocks || string(m.st.TipHash) != string(ref.TipHash) {
			return fmt.Sprintf("orderers %s and %s disagree (%d/%x vs %d/%x)",
				live[0].addr, m.addr, ref.Blocks, ref.TipHash, m.st.Blocks, m.st.TipHash)
		}
	}
	if ref.CommittedTx < expectCommitted {
		return fmt.Sprintf("ledger holds %d committed transactions, clients observed %d",
			ref.CommittedTx, expectCommitted)
	}
	var refState string
	for i, addr := range peers {
		st, err := node.StatusAt(addr, dialTimeout)
		if err != nil {
			return fmt.Sprintf("peer %s unreachable (%v)", addr, err)
		}
		if st.Blocks != ref.Blocks || string(st.TipHash) != string(ref.TipHash) {
			return fmt.Sprintf("peer %s at %d/%x, orderers at %d/%x",
				addr, st.Blocks, st.TipHash, ref.Blocks, ref.TipHash)
		}
		if st.CommittedTx != ref.CommittedTx {
			return fmt.Sprintf("peer %s counts %d committed, orderers %d", addr, st.CommittedTx, ref.CommittedTx)
		}
		if i == 0 {
			refState = st.StateHash
		} else if st.StateHash != refState {
			return fmt.Sprintf("peer state fingerprints diverge (%s: %.16s… vs %.16s…)", addr, st.StateHash, refState)
		}
	}
	return ""
}
