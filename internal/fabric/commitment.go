package fabric

import (
	"fmt"
	"sync"

	"fabricsharp/internal/consensus"
	"fabricsharp/internal/protocol"
)

// This file implements the Section 3.5 mitigation against reordering abuse.
//
// The attack: the consensus leader (or any party controlling proposal order)
// observes an undesirable transaction TxnT reading and writing a record
// against snapshot N, forges TxnT' touching the same record, and sequences
// TxnT' first. TxnT' passes the reorderability test; TxnT then forms an
// unreorderable cycle with it (c-rw one way, anti-rw the other) and every
// honest orderer aborts TxnT — censorship through the public reordering
// algorithm.
//
// The mitigation: clients first publish only the transaction's digest; once
// consensus has fixed the digest's position, the client discloses the
// payload. Orderers process disclosed transactions in the order their
// digests were sequenced, so an adversary must commit to its own
// transactions before seeing anyone else's read/write sets. (It also stops
// clients from mutating content after sequencing: the disclosure must match
// the committed digest.)

// CommitmentBroker sequences hash commitments and releases payloads to the
// scheduler in commitment order. It sits between the consensus stream and a
// scheduler; the fabric orderer uses it when Options.HashCommitment is set.
type CommitmentBroker struct {
	mu        sync.Mutex
	order     []string                         // digests in consensus order
	disclosed map[string]*protocol.Transaction // digest -> payload
	released  int                              // prefix of order already released
}

// NewCommitmentBroker returns an empty broker.
func NewCommitmentBroker() *CommitmentBroker {
	return &CommitmentBroker{disclosed: map[string]*protocol.Transaction{}}
}

// Commit records a sequenced digest commitment.
func (b *CommitmentBroker) Commit(digest string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.order = append(b.order, digest)
}

// Disclose delivers a payload for a previously committed digest. It returns
// the transactions that became releasable, in commitment order, and an error
// if the payload does not hash to the claimed digest (a client mutating its
// transaction after sequencing).
func (b *CommitmentBroker) Disclose(tx *protocol.Transaction) ([]*protocol.Transaction, error) {
	digest := tx.DigestHex()
	b.mu.Lock()
	defer b.mu.Unlock()
	found := false
	for _, d := range b.order[b.released:] {
		if d == digest {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("fabric: disclosure without commitment (digest %.12s...)", digest)
	}
	if _, dup := b.disclosed[digest]; dup {
		return nil, fmt.Errorf("fabric: duplicate disclosure (digest %.12s...)", digest)
	}
	b.disclosed[digest] = tx
	// Release the longest disclosed prefix.
	var out []*protocol.Transaction
	for b.released < len(b.order) {
		next, ok := b.disclosed[b.order[b.released]]
		if !ok {
			break
		}
		delete(b.disclosed, b.order[b.released])
		b.released++
		out = append(out, next)
	}
	return out, nil
}

// PendingCommitments returns how many sequenced digests still await
// disclosure.
func (b *CommitmentBroker) PendingCommitments() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.order) - b.released
}

// SubmitCommitted runs the two-phase submission: the digest commitment is
// sequenced first; once it is in the stream, the payload is disclosed. With
// Options.HashCommitment enabled the orderers only act on the disclosure,
// in commitment order.
func (c *Client) SubmitCommitted(contract, function string, args ...string) (TxResult, error) {
	if !c.net.opts.HashCommitment {
		return TxResult{}, fmt.Errorf("fabric: network does not run the hash-commitment protocol")
	}
	tx := &protocol.Transaction{
		ID:       c.net.nextTxID(c.id.ID),
		ClientID: c.id.ID,
		Contract: contract,
		Function: function,
		Args:     args,
	}
	peer := c.net.peers[0]
	if _, err := peer.Endorse(c.net.registry, tx); err != nil {
		return TxResult{}, err
	}
	tx.RWSet.Precompute()
	ch := make(chan TxResult, 1)
	c.net.waitersMu.Lock()
	c.net.waiters[tx.ID] = ch
	c.net.waitersMu.Unlock()
	dropWaiter := func() {
		c.net.waitersMu.Lock()
		delete(c.net.waiters, tx.ID)
		c.net.waitersMu.Unlock()
	}
	// Phase 1: publish only the digest.
	if err := c.net.submission.Submit(consensus.Envelope{
		SubmittedBy: c.id.ID,
		Commitment:  tx.DigestHex(),
	}); err != nil {
		dropWaiter()
		return TxResult{}, err
	}
	// Phase 2: disclose the payload (a separate consensus message).
	if err := c.net.submission.Submit(consensus.Envelope{
		SubmittedBy: c.id.ID,
		Tx:          tx,
		Disclosure:  true,
	}); err != nil {
		dropWaiter()
		return TxResult{}, err
	}
	return c.net.awaitResult(tx.ID, ch)
}
