package wire

import (
	"reflect"
	"testing"

	"fabricsharp/internal/consensus"
)

func TestRaftAppendRoundTrip(t *testing.T) {
	tx := sampleTx(0)
	// Decoded transactions come back with the distinct-key caches filled;
	// precompute the original so DeepEqual compares like with like.
	tx.RWSet.Precompute()
	req := &consensus.AppendRequest{
		Term:         7,
		LeaderID:     "orderer2",
		PrevIndex:    41,
		PrevTerm:     6,
		LeaderCommit: 40,
		Entries: []consensus.LogEntry{
			{Term: 6, Env: consensus.Envelope{Tx: tx, SubmittedBy: "client1"}},
			{Term: 7, Env: consensus.Envelope{SubmittedBy: "orderer2"}}, // leader no-op
			{Term: 7, Env: consensus.Envelope{SubmittedBy: "orderer1", CutBlock: 3}},
			{Term: 7, Env: consensus.Envelope{SubmittedBy: "clientX", Commitment: "abc123"}},
			{Term: 7, Env: consensus.Envelope{Tx: tx, SubmittedBy: "clientX", Disclosure: true}},
		},
	}
	got, err := DecodeRaftAppend(EncodeRaftAppend(req))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, req)
	}
	// Byte identity: re-encoding the decode reproduces the input.
	if string(EncodeRaftAppend(got)) != string(EncodeRaftAppend(req)) {
		t.Fatal("re-encode is not byte-identical")
	}
}

func TestRaftAppendHeartbeatRoundTrip(t *testing.T) {
	req := &consensus.AppendRequest{Term: 3, LeaderID: "orderer1", PrevIndex: 9, PrevTerm: 3, LeaderCommit: 9}
	got, err := DecodeRaftAppend(EncodeRaftAppend(req))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("heartbeat mismatch: %+v != %+v", got, req)
	}
}

func TestRaftAppendRespRoundTrip(t *testing.T) {
	for _, resp := range []consensus.AppendResponse{
		{From: "orderer3", Term: 7, Success: true, MatchIndex: 42},
		{From: "orderer1", Term: 8, Success: false, MatchIndex: 12},
	} {
		got, err := DecodeRaftAppendResp(EncodeRaftAppendResp(resp))
		if err != nil {
			t.Fatal(err)
		}
		if got != resp {
			t.Fatalf("round trip mismatch: %+v != %+v", got, resp)
		}
	}
}

func TestRaftVoteRoundTrip(t *testing.T) {
	req := consensus.VoteRequest{Term: 9, CandidateID: "orderer2", LastIndex: 100, LastTerm: 8}
	got, err := DecodeRaftVote(EncodeRaftVote(req))
	if err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Fatalf("round trip mismatch: %+v != %+v", got, req)
	}
}

func TestRaftVoteRespRoundTrip(t *testing.T) {
	for _, resp := range []consensus.VoteResponse{
		{From: "orderer1", Term: 9, Granted: true},
		{From: "orderer3", Term: 10, Granted: false},
	} {
		got, err := DecodeRaftVoteResp(EncodeRaftVoteResp(resp))
		if err != nil {
			t.Fatal(err)
		}
		if got != resp {
			t.Fatalf("round trip mismatch: %+v != %+v", got, resp)
		}
	}
}

func TestRaftAppendDecodeRejectsTruncation(t *testing.T) {
	req := &consensus.AppendRequest{
		Term: 1, LeaderID: "a",
		Entries: []consensus.LogEntry{{Term: 1, Env: consensus.Envelope{Tx: sampleTx(0), SubmittedBy: "c"}}},
	}
	b := EncodeRaftAppend(req)
	for cut := 1; cut < len(b); cut += 7 {
		if _, err := DecodeRaftAppend(b[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(b))
		}
	}
	// Trailing garbage is rejected too.
	if _, err := DecodeRaftAppend(append(append([]byte(nil), b...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestRaftAppendDecodeBoundsHostileCount(t *testing.T) {
	// A frame claiming 2^32-1 entries with almost no payload must fail
	// cleanly, not allocate.
	dst := appendU64(nil, 1)
	dst = appendString(dst, "a")
	dst = appendU64(dst, 0)
	dst = appendU64(dst, 0)
	dst = appendU64(dst, 0)
	dst = appendU32(dst, 0xFFFFFFFF)
	if _, err := DecodeRaftAppend(dst); err == nil {
		t.Fatal("hostile entry count accepted")
	}
}

func TestAckRedirectRoundTrip(t *testing.T) {
	for _, a := range []Ack{
		{OK: true},
		{OK: false, Err: "boom"},
		{OK: false, NotLeader: true, Leader: "127.0.0.1:7050"},
		{OK: false, NotLeader: true}, // mid-election: no leader known
	} {
		got, err := DecodeAck(EncodeAck(a))
		if err != nil {
			t.Fatal(err)
		}
		if got != a {
			t.Fatalf("round trip mismatch: %+v != %+v", got, a)
		}
	}
}

func TestStatusRaftFieldsRoundTrip(t *testing.T) {
	s := Status{
		Role: "orderer", Name: "orderer2", Height: 12, Blocks: 12,
		TipHash: []byte{1, 2, 3}, StateHash: "",
		Term: 4, Leader: "127.0.0.1:7050", CommittedTx: 480,
	}
	got, err := DecodeStatus(EncodeStatus(s))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, s)
	}
}
