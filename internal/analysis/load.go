package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A Package is one loaded, type-checked module package.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors collects type-checker complaints. The driver treats a
	// non-empty slice as fatal: analyzers must run over fully resolved
	// types or their silence proves nothing.
	TypeErrors []error
}

// A Module is the whole loaded module: every non-test package below Root,
// type-checked against each other and the standard library.
type Module struct {
	Root     string // absolute path of the directory holding go.mod
	Path     string // module path from go.mod
	Fset     *token.FileSet
	Packages []*Package // sorted by import path
}

// FindModuleRoot walks up from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}

// LoadModule parses and type-checks every non-test package under root.
// Test files (_test.go) and testdata/vendor/hidden directories are skipped:
// the determinism contract binds shipped code; tests exercise it.
func LoadModule(root string) (*Module, error) {
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := &Module{Root: root, Path: modPath, Fset: token.NewFileSet()}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*Package, len(dirs))
	for _, dir := range dirs {
		pkg, err := parseDir(mod.Fset, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable non-test Go files
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			pkg.PkgPath = modPath
		} else {
			pkg.PkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		byPath[pkg.PkgPath] = pkg
		mod.Packages = append(mod.Packages, pkg)
	}
	sort.Slice(mod.Packages, func(i, j int) bool { return mod.Packages[i].PkgPath < mod.Packages[j].PkgPath })

	imp := &moduleImporter{
		mod:      mod,
		byPath:   byPath,
		std:      importer.ForCompiler(mod.Fset, "source", nil),
		checking: map[string]bool{},
	}
	for _, pkg := range mod.Packages {
		if err := imp.check(pkg); err != nil {
			return nil, err
		}
	}
	return mod, nil
}

// TypeErrors flattens every package's type errors.
func (m *Module) TypeErrors() []error {
	var out []error
	for _, pkg := range m.Packages {
		out = append(out, pkg.TypeErrors...)
	}
	return out
}

// packageDirs returns every directory under root that may hold a package.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// parseDir parses the non-test Go files of one directory as a package.
// Returns nil if the directory holds no such files.
func parseDir(fset *token.FileSet, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// moduleImporter resolves module-internal imports by type-checking them
// from source in dependency order (with cycle detection) and delegates
// everything else — the standard library — to go/importer's source mode.
type moduleImporter struct {
	mod      *Module
	byPath   map[string]*Package
	std      types.Importer
	checking map[string]bool
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := mi.byPath[path]; ok {
		if mi.checking[path] {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		if err := mi.check(pkg); err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return mi.std.Import(path)
}

// check type-checks pkg once, memoized.
func (mi *moduleImporter) check(pkg *Package) error {
	if pkg.Types != nil {
		return nil
	}
	mi.checking[pkg.PkgPath] = true
	defer delete(mi.checking, pkg.PkgPath)

	pkg.Info = NewInfo()
	conf := types.Config{
		Importer: mi,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(pkg.PkgPath, mi.mod.Fset, pkg.Files, pkg.Info)
	if tpkg == nil {
		return fmt.Errorf("analysis: type-checking %s: %v", pkg.PkgPath, err)
	}
	pkg.Types = tpkg
	return nil
}

// NewInfo allocates the types.Info maps every analyzer relies on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(rest); err == nil {
				rest = unq
			}
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}
