// Package statedb implements the versioned key-value state of an
// execute-order-validate blockchain (paper Section 2.1) extended with the
// multi-version history and block-snapshot reads that FabricSharp's
// Algorithm 1 requires (Section 4.2).
//
// Every entry is a (key, version, value) tuple whose version is the
// (block, position) sequence number of the transaction that last wrote it.
// Unlike vanilla Fabric — which keeps only the latest version and therefore
// needs a read-write lock between simulation and commit — this store retains
// a bounded history per key, so contract simulations read a consistent
// snapshot "as of block M" while later blocks commit concurrently. Stale
// snapshots beyond the max_span horizon are pruned.
package statedb

import (
	"fmt"
	"sync"

	"fabricsharp/internal/kvstore"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
)

// VersionedValue is one version of a key's value.
type VersionedValue struct {
	Value   []byte
	Version seqno.Seq
	Deleted bool
}

// BlockWrites carries one transaction's writes into ApplyBlock, tagged with
// the transaction's position (1-based) inside the block.
type BlockWrites struct {
	Pos    uint32
	Writes []protocol.WriteItem
}

// Options configures a state database.
type Options struct {
	// Backing, when non-nil, persists the latest version of every key (plus
	// the chain height) write-through, and is loaded on construction.
	Backing *kvstore.DB
}

// DB is a multi-versioned state database. It is safe for concurrent use.
type DB struct {
	mu      sync.RWMutex
	hist    map[string][]VersionedValue // ascending by version
	height  uint64                      // last committed block number
	hasAny  bool                        // whether any block has been applied
	backing *kvstore.DB
}

const (
	backingStatePrefix = "s/"
	backingHeightKey   = "meta/height"
)

// New creates a state database, loading the latest state from
// opts.Backing when present.
func New(opts Options) (*DB, error) {
	db := &DB{hist: make(map[string][]VersionedValue), backing: opts.Backing}
	if opts.Backing == nil {
		return db, nil
	}
	if raw, ok, err := opts.Backing.Get([]byte(backingHeightKey)); err != nil {
		return nil, err
	} else if ok {
		seq, err := seqno.FromBytes(raw)
		if err != nil {
			return nil, fmt.Errorf("statedb: corrupt height: %w", err)
		}
		db.height = seq.Block
		db.hasAny = true
	}
	it := opts.Backing.NewPrefixIterator([]byte(backingStatePrefix))
	for ; it.Valid(); it.Next() {
		key := string(it.Key()[len(backingStatePrefix):])
		raw := it.Value()
		if len(raw) < seqno.EncodedLen() {
			return nil, fmt.Errorf("statedb: corrupt record for %q", key)
		}
		ver, err := seqno.FromBytes(raw)
		if err != nil {
			return nil, err
		}
		val := append([]byte(nil), raw[seqno.EncodedLen():]...)
		db.hist[key] = []VersionedValue{{Value: val, Version: ver}}
	}
	return db, nil
}

// Height returns the number of the last committed block.
func (db *DB) Height() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.height
}

// Get returns the latest version of key.
func (db *DB) Get(key string) (VersionedValue, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	versions := db.hist[key]
	if len(versions) == 0 {
		return VersionedValue{}, false
	}
	last := versions[len(versions)-1]
	if last.Deleted {
		return VersionedValue{}, false
	}
	return last, true
}

// GetAt returns the value of key as observed by the blockchain snapshot
// taken after block asOfBlock (Definition 1): the latest version whose
// block number is <= asOfBlock. It reports an error if that part of the
// history has been pruned away.
func (db *DB) GetAt(key string, asOfBlock uint64) (VersionedValue, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	versions := db.hist[key]
	// Binary search for the last version with Version.Block <= asOfBlock.
	lo, hi := 0, len(versions)
	for lo < hi {
		mid := (lo + hi) / 2
		if versions[mid].Version.Block <= asOfBlock {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		// Either the key did not exist at that snapshot, or history was
		// pruned past it. Distinguish: if an even-older version would have
		// been pruned, the oldest retained version tells us.
		if len(versions) > 0 && versions[0].Version.Block <= asOfBlock {
			// unreachable given the search, defensive
			return VersionedValue{}, false, nil
		}
		return VersionedValue{}, false, nil
	}
	vv := versions[lo-1]
	if vv.Deleted {
		return VersionedValue{}, false, nil
	}
	return vv, true, nil
}

// Snapshot returns a read-only view of the state as of the given block.
type Snapshot struct {
	db    *DB
	block uint64
}

// SnapshotAt captures the snapshot identifier for block `block`. Reads
// through it resolve against the version history, so later commits do not
// disturb it (until pruning outruns it, which the caller bounds by
// max_span).
func (db *DB) SnapshotAt(block uint64) *Snapshot { return &Snapshot{db: db, block: block} }

// LatestSnapshot captures the snapshot after the last committed block.
func (db *DB) LatestSnapshot() *Snapshot { return db.SnapshotAt(db.Height()) }

// Block returns the snapshot's block number.
func (s *Snapshot) Block() uint64 { return s.block }

// Get reads key as of the snapshot.
func (s *Snapshot) Get(key string) (VersionedValue, bool, error) {
	return s.db.GetAt(key, s.block)
}

// ApplyBlock commits the writes of block `block`'s valid transactions, in
// order. Versions are assigned as (block, pos) per the EOV model. Blocks
// must be applied in strictly increasing order; an empty writes slice is
// fine (a block of aborted or read-only transactions).
func (db *DB) ApplyBlock(block uint64, txWrites []BlockWrites) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.hasAny && block <= db.height {
		return fmt.Errorf("statedb: block %d applied out of order (height %d)", block, db.height)
	}
	for _, tw := range txWrites {
		ver := seqno.Commit(block, tw.Pos)
		for _, w := range tw.Writes {
			vv := VersionedValue{Version: ver, Deleted: w.Delete}
			if !w.Delete {
				vv.Value = append([]byte(nil), w.Value...)
			}
			db.hist[w.Key] = append(db.hist[w.Key], vv)
			if db.backing != nil {
				if err := db.persist(w.Key, vv); err != nil {
					return err
				}
			}
		}
	}
	db.height = block
	db.hasAny = true
	if db.backing != nil {
		return db.backing.Put([]byte(backingHeightKey), seqno.Seq{Block: block}.Bytes())
	}
	return nil
}

func (db *DB) persist(key string, vv VersionedValue) error {
	k := []byte(backingStatePrefix + key)
	if vv.Deleted {
		return db.backing.Delete(k)
	}
	rec := vv.Version.AppendTo(nil)
	rec = append(rec, vv.Value...)
	return db.backing.Put(k, rec)
}

// PruneSnapshots discards history no longer needed to serve snapshots at or
// after minSnapshotBlock: for each key it keeps the latest version at or
// before the horizon plus everything after it (Section 4.2's periodic
// pruning of staled snapshots).
func (db *DB) PruneSnapshots(minSnapshotBlock uint64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for key, versions := range db.hist {
		// Find the last version with Block <= minSnapshotBlock.
		idx := -1
		for i, vv := range versions {
			if vv.Version.Block <= minSnapshotBlock {
				idx = i
			} else {
				break
			}
		}
		if idx <= 0 {
			continue
		}
		kept := versions[idx:]
		if len(kept) == 1 && kept[0].Deleted {
			// Latest is a tombstone and nothing newer: the key is gone.
			delete(db.hist, key)
			continue
		}
		db.hist[key] = append([]VersionedValue(nil), kept...)
	}
}

// VersionCount reports how many versions of key are retained (tests and
// metrics).
func (db *DB) VersionCount(key string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.hist[key])
}

// Keys returns the number of live keys at the latest snapshot.
func (db *DB) Keys() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, versions := range db.hist {
		if len(versions) > 0 && !versions[len(versions)-1].Deleted {
			n++
		}
	}
	return n
}

// ForEachLatest visits every live key with its latest version, in
// unspecified order. The callback must not mutate the database.
func (db *DB) ForEachLatest(fn func(key string, vv VersionedValue) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for key, versions := range db.hist {
		last := versions[len(versions)-1]
		if last.Deleted {
			continue
		}
		if !fn(key, last) {
			return
		}
	}
}

// KeysInRange returns, sorted, every key in [start, end) that is live at
// the snapshot after block asOfBlock. The scan is linear in the key count —
// acceptable for the contract-visible state sizes this repository targets
// (the kvstore layer provides indexed range scans where volume matters).
func (db *DB) KeysInRange(start, end string, asOfBlock uint64) []string {
	db.mu.RLock()
	var out []string
	for key, versions := range db.hist {
		if key < start || (end != "" && key >= end) {
			continue
		}
		// Last version at or before the snapshot.
		idx := -1
		for i, vv := range versions {
			if vv.Version.Block <= asOfBlock {
				idx = i
			} else {
				break
			}
		}
		if idx >= 0 && !versions[idx].Deleted {
			out = append(out, key)
		}
	}
	db.mu.RUnlock()
	sortStrings(out)
	return out
}

// Clone deep-copies the database (history and height). It backs the
// serializability verifier, which re-executes committed schedules against a
// fresh copy of the genesis state.
func (db *DB) Clone() *DB {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := &DB{hist: make(map[string][]VersionedValue, len(db.hist)), height: db.height, hasAny: db.hasAny}
	for k, versions := range db.hist {
		cp := make([]VersionedValue, len(versions))
		for i, vv := range versions {
			cp[i] = VersionedValue{Version: vv.Version, Deleted: vv.Deleted, Value: append([]byte(nil), vv.Value...)}
		}
		out.hist[k] = cp
	}
	return out
}

// StateFingerprint folds every live (key, value) pair into a deterministic
// digest, ignoring versions. Two databases with identical live contents
// produce identical fingerprints; the serializability property tests compare
// end states with it.
func (db *DB) StateFingerprint() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	keys := make([]string, 0, len(db.hist))
	for k, versions := range db.hist {
		if len(versions) > 0 && !versions[len(versions)-1].Deleted {
			keys = append(keys, k)
		}
	}
	sortStrings(keys)
	h := newFNV()
	for _, k := range keys {
		vv := db.hist[k][len(db.hist[k])-1]
		h.writeString(k)
		h.write(vv.Value)
	}
	return h.sum()
}
