package analysis

import (
	"fmt"
	"path/filepath"
	"sort"
)

// A Result is one full run of the suite over a module.
type Result struct {
	// Diagnostics holds every finding, suppressed or not, sorted by
	// position. Unsuppressed() filters the gating subset.
	Diagnostics []Diagnostic
	// Directives holds every //sharp: directive found in the tree, with
	// File set module-relative (inventory key order).
	Directives []*Directive
	// Errors are contract violations of the machinery itself: malformed
	// or stale directives, type-check failures. Any entry fails the run
	// regardless of diagnostics.
	Errors []error
}

// Unsuppressed returns the findings no directive covers.
func (r *Result) Unsuppressed() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// Suppressed returns the findings a directive covers.
func (r *Result) Suppressed() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// Run executes every analyzer over every loaded package, matches
// suppression directives, and flags stale ones. It is the single entry
// point shared by cmd/sharpvet and the integration tests.
func Run(mod *Module, analyzers []*Analyzer) *Result {
	res := &Result{}
	for _, err := range mod.TypeErrors() {
		res.Errors = append(res.Errors, fmt.Errorf("type error: %v", err))
	}

	var dirs []*Directive
	for _, pkg := range mod.Packages {
		pkgDirs, errs := collectDirectives(mod.Fset, pkg.Files)
		res.Errors = append(res.Errors, errs...)
		for _, d := range pkgDirs {
			d.File = moduleRel(mod.Root, d.Pos.Filename)
		}
		dirs = append(dirs, pkgDirs...)

		for _, a := range analyzers {
			if !packageInScope(mod, pkg, a) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     mod.Fset,
				PkgPath:  pkg.PkgPath,
				Files:    pkg.Files,
				Types:    pkg.Types,
				Info:     pkg.Info,
				report: func(diag Diagnostic) {
					res.Diagnostics = append(res.Diagnostics, diag)
				},
			}
			a.Run(pass)
		}
	}

	// Match directives to diagnostics. A directive may cover several
	// findings on its line (e.g. two map ranges in one statement); every
	// directive must cover at least one.
	for i := range res.Diagnostics {
		diag := &res.Diagnostics[i]
		for _, d := range dirs {
			if d.covers(diag.Analyzer, diag.Pos) {
				diag.Suppressed = true
				diag.Reason = d.Reason
				d.used = true
				break
			}
		}
	}
	for _, d := range dirs {
		if !d.used {
			res.Errors = append(res.Errors, fmt.Errorf(
				"%s: stale suppression: //sharp: directive for %q silences no diagnostic", fmtPos(d.Pos), d.Analyzer))
		}
	}
	res.Directives = dirs

	// Normalize diagnostic paths module-relative and order the report.
	for i := range res.Diagnostics {
		res.Diagnostics[i].Pos.Filename = moduleRel(mod.Root, res.Diagnostics[i].Pos.Filename)
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return res
}

// packageInScope reports whether any of pkg's files fall under a's scope,
// so out-of-contract packages skip the analyzer entirely.
func packageInScope(mod *Module, pkg *Package, a *Analyzer) bool {
	for _, f := range pkg.Files {
		if a.Scope(pkg.PkgPath, baseFilename(mod.Fset, f)) {
			return true
		}
	}
	return false
}

func moduleRel(root, filename string) string {
	if rel, err := filepath.Rel(root, filename); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return filepath.ToSlash(rel)
	}
	return filename
}
