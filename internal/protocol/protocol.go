// Package protocol defines the transaction types flowing through the
// execute-order-validate pipeline: proposals, read/write sets, endorsements,
// envelopes, and the validation/abort taxonomy the evaluation reports on.
package protocol

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"fabricsharp/internal/seqno"
)

// TxID uniquely identifies a transaction.
type TxID string

// Version identifies the (block, position) that last wrote a state entry.
type Version = seqno.Seq

// ReadItem records one key read during simulation together with the version
// observed — the version dependency the validator (or the Sharp orderer)
// checks.
type ReadItem struct {
	Key     string
	Version Version
}

// WriteItem records one state update produced by simulation.
type WriteItem struct {
	Key    string
	Value  []byte
	Delete bool
}

// RWSet is the complete simulation effect of a transaction.
type RWSet struct {
	Reads  []ReadItem
	Writes []WriteItem

	// readKeys/writeKeys cache the deduplicated key sets. Every scheduler
	// needs them at least twice (arrival and formation), and rebuilding the
	// dedup map each call was a measurable share of the ordering hot path.
	// They are filled only by Precompute — the accessors never write, so a
	// transaction precomputed before fan-out is safe to share across
	// validator goroutines.
	readKeys  []string
	writeKeys []string
}

// ReadKeys returns the distinct read keys in deterministic order. The cache
// fills via Precompute; without it each call recomputes (correct, slower).
// Callers must not mutate the returned slice.
func (rw *RWSet) ReadKeys() []string {
	if rw.readKeys != nil {
		return rw.readKeys
	}
	return dedupKeys(rw.Reads, func(r ReadItem) string { return r.Key })
}

// WriteKeys returns the distinct written keys in deterministic order.
// Callers must not mutate the returned slice.
func (rw *RWSet) WriteKeys() []string {
	if rw.writeKeys != nil {
		return rw.writeKeys
	}
	return dedupKeys(rw.Writes, func(w WriteItem) string { return w.Key })
}

// Precompute fills the distinct-key caches consumed by ReadKeys/WriteKeys.
// Call it once where the transaction is built (or any other point with
// exclusive access); concurrent readers after publication then share the
// cached slices. Precompute is intentionally not called lazily from the
// accessors — a lazy fill from two goroutines would race.
func (rw *RWSet) Precompute() {
	rw.readKeys = dedupKeys(rw.Reads, func(r ReadItem) string { return r.Key })
	rw.writeKeys = dedupKeys(rw.Writes, func(w WriteItem) string { return w.Key })
}

func dedupKeys[T any](items []T, key func(T) string) []string {
	seen := make(map[string]bool, len(items))
	out := make([]string, 0, len(items))
	for _, it := range items {
		k := key(it)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Endorsement is one peer's signature over a proposal response.
type Endorsement struct {
	EndorserID string
	Signature  []byte
}

// Transaction is an endorsed transaction submitted to the ordering service.
type Transaction struct {
	ID       TxID
	ClientID string
	Contract string
	Function string
	Args     []string
	// SnapshotBlock is the block whose post-commit state the simulation read
	// (Algorithm 1). StartTs = (SnapshotBlock+1, 0) per Definition 3.
	SnapshotBlock uint64
	RWSet         RWSet
	Endorsements  []Endorsement
}

// StartTS returns the transaction's start timestamp (Definition 3).
func (t *Transaction) StartTS() seqno.Seq { return seqno.Snapshot(t.SnapshotBlock) }

// Digest computes a deterministic hash over the transaction's identity and
// simulation effects. It is what endorsers sign and what the hash-commitment
// scheme of Section 3.5 publishes before disclosure.
func (t *Transaction) Digest() []byte {
	h := sha256.New()
	writeLenPrefixed := func(s string) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeLenPrefixed(string(t.ID))
	writeLenPrefixed(t.ClientID)
	writeLenPrefixed(t.Contract)
	writeLenPrefixed(t.Function)
	for _, a := range t.Args {
		writeLenPrefixed(a)
	}
	var blk [8]byte
	binary.BigEndian.PutUint64(blk[:], t.SnapshotBlock)
	h.Write(blk[:])
	for _, r := range t.RWSet.Reads {
		writeLenPrefixed(r.Key)
		h.Write(r.Version.Bytes())
	}
	for _, w := range t.RWSet.Writes {
		writeLenPrefixed(w.Key)
		writeLenPrefixed(string(w.Value))
		if w.Delete {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	return h.Sum(nil)
}

// DigestHex is Digest rendered as a hex string, used as the pre-disclosure
// commitment identifier.
func (t *Transaction) DigestHex() string { return hex.EncodeToString(t.Digest()) }

// ValidationCode classifies a transaction's final fate. The codes double as
// the abort taxonomy of Figure 14.
type ValidationCode uint8

const (
	// Valid marks a committed transaction.
	Valid ValidationCode = iota
	// MVCCConflict marks a transaction aborted by the validation-phase
	// serializability (stale read) check.
	MVCCConflict
	// EndorsementFailure marks a transaction whose endorsements do not
	// satisfy the chaincode's policy.
	EndorsementFailure
	// AbortCycle marks a transaction dropped before ordering because it
	// would close a dependency cycle that no reordering can fix
	// (Theorem 2) — including bloom-filter false positives, which abort
	// preventively.
	AbortCycle
	// AbortStaleSnapshot marks a transaction dropped because its snapshot
	// fell behind the max_span pruning horizon (Section 4.6).
	AbortStaleSnapshot
	// AbortConcurrentWW marks a transaction dropped by Focc-s's
	// first-committer-wins rule on concurrent write-write conflicts.
	AbortConcurrentWW
	// AbortDangerousStructure marks a transaction dropped by Focc-s's
	// two-consecutive-rw (Cahill et al.) rule.
	AbortDangerousStructure
	// AbortSimulation marks a transaction aborted during execution because
	// it read across blocks (Fabric++'s early abort).
	AbortSimulation
	// AbortReorderCycle marks a transaction dropped at block formation by a
	// batch reordering scheme (Fabric++ in-block cycle elimination).
	AbortReorderCycle
	// AbortDuplicate marks a replayed transaction identifier.
	AbortDuplicate
	// Rescued marks a transaction that failed the MVCC check but was
	// deterministically re-executed by the post-order rescue phase
	// (internal/reexec) against the block's committed prefix and committed
	// with its re-executed write set. New codes must be appended here: the
	// numeric values are sealed into blocks and asserted byte-equal across
	// replicas.
	Rescued
)

// String renders the code using the evaluation's vocabulary.
func (c ValidationCode) String() string {
	switch c {
	case Valid:
		return "valid"
	case MVCCConflict:
		return "mvcc-conflict"
	case EndorsementFailure:
		return "endorsement-failure"
	case AbortCycle:
		return "cycle"
	case AbortStaleSnapshot:
		return "stale-snapshot"
	case AbortConcurrentWW:
		return "concurrent-ww"
	case AbortDangerousStructure:
		return "2-consecutive-rw"
	case AbortSimulation:
		return "simulation-abort"
	case AbortReorderCycle:
		return "reorder-cycle"
	case AbortDuplicate:
		return "duplicate"
	case Rescued:
		return "rescued"
	default:
		return fmt.Sprintf("code(%d)", uint8(c))
	}
}

// Committed reports whether the transaction's effects reach the state
// database: either it validated cleanly (Valid, declared write set applied)
// or the post-order rescue phase re-executed it (Rescued, re-executed write
// set applied).
func (c ValidationCode) Committed() bool { return c == Valid || c == Rescued }

// CommitPositions maps one block's verdicts to the 1-based positions its
// committed write sets apply at — the block's serial order. Valid
// transactions commit at their in-block position i+1; Rescued ones serialize
// after the whole block (post-order re-execution), at N+1..N+R in block
// order for a block of N transactions; every other code yields 0 (nothing
// applied). Every layer that assigns versions to a sealed block's writes
// (state database application, shadow state, scheduler feedback) derives
// them from this one function, so the version a key carries is
// replica-independent by construction.
func CommitPositions(codes []ValidationCode) []uint32 {
	out := make([]uint32, len(codes))
	rank := uint32(len(codes))
	for i, c := range codes {
		switch c {
		case Valid:
			out[i] = uint32(i + 1)
		case Rescued:
			rank++
			out[i] = rank
		}
	}
	return out
}

// IsEarlyAbort reports whether the code is decided before the transaction
// reaches the ledger (so the transaction consumes no block space and no
// validation work).
func (c ValidationCode) IsEarlyAbort() bool {
	switch c {
	case AbortCycle, AbortStaleSnapshot, AbortConcurrentWW,
		AbortDangerousStructure, AbortSimulation, AbortReorderCycle, AbortDuplicate:
		return true
	}
	return false
}
