package fabric

import (
	"fmt"
	"testing"
	"time"

	"fabricsharp/internal/protocol"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/seqno"
)

// TestFrontRunningAttack demonstrates the Section 3.5 vulnerability the
// hash-commitment protocol exists for: a party controlling proposal order
// observes TxnT (read-modify-write on a record against snapshot N), forges
// TxnT' touching the same record, and sequences TxnT' first. TxnT' passes
// the reorderability test; TxnT then closes an unreorderable cycle (c-rw one
// way, anti-rw the other) and every honest orderer aborts it.
func TestFrontRunningAttack(t *testing.T) {
	s := sched.NewSharp(sched.Options{})
	victim := &protocol.Transaction{
		ID:            "TxnT",
		SnapshotBlock: 0,
		RWSet: protocol.RWSet{
			Reads:  []protocol.ReadItem{{Key: "record"}},
			Writes: []protocol.WriteItem{{Key: "record", Value: []byte("victim")}},
		},
	}
	// The attacker sees the victim's read/write set and mirrors it.
	attacker := &protocol.Transaction{
		ID:            "TxnT-prime",
		SnapshotBlock: 0,
		RWSet: protocol.RWSet{
			Reads:  []protocol.ReadItem{{Key: "record"}},
			Writes: []protocol.WriteItem{{Key: "record", Value: []byte("attacker")}},
		},
	}
	// Malicious ordering: attacker first.
	code, err := s.OnArrival(attacker)
	if err != nil || code != protocol.Valid {
		t.Fatalf("attacker tx: %v %v", code, err)
	}
	code, err = s.OnArrival(victim)
	if err != nil {
		t.Fatal(err)
	}
	if code != protocol.AbortCycle {
		t.Fatalf("victim should be censored via cycle abort, got %v", code)
	}
	// Had the victim been sequenced first, it would have been admitted —
	// the attack is purely about ordering, which is why hiding contents
	// until the order is fixed (hash commitment) mitigates it.
	s2 := sched.NewSharp(sched.Options{})
	if code, _ := s2.OnArrival(victim); code != protocol.Valid {
		t.Fatalf("victim first should be admitted, got %v", code)
	}
}

func TestHashCommitmentEndToEnd(t *testing.T) {
	n := newNet(t, Options{System: sched.SystemSharp, HashCommitment: true})
	client, err := n.NewClient("committed-client")
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.SubmitCommitted("kv", "put", "sealed", "envelope")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed() {
		t.Fatalf("code = %v", res.Code)
	}
	val, err := client.Query("kv", "get", "sealed")
	if err != nil || string(val) != "envelope" {
		t.Fatalf("query = %q, %v", val, err)
	}
}

func TestHashCommitmentRequiresOption(t *testing.T) {
	n := newNet(t, Options{System: sched.SystemSharp})
	client, _ := n.NewClient("c")
	if _, err := client.SubmitCommitted("kv", "put", "x", "y"); err == nil {
		t.Error("SubmitCommitted worked without the protocol enabled")
	}
}

func TestCommitmentBrokerOrdering(t *testing.T) {
	b := NewCommitmentBroker()
	tx := func(id string) *protocol.Transaction {
		return &protocol.Transaction{ID: protocol.TxID(id), SnapshotBlock: 1,
			RWSet: protocol.RWSet{Reads: []protocol.ReadItem{{Key: id, Version: seqno.Commit(1, 1)}}}}
	}
	t1, t2, t3 := tx("t1"), tx("t2"), tx("t3")
	// Commitments sequenced t1, t2, t3; disclosures arrive out of order.
	b.Commit(t1.DigestHex())
	b.Commit(t2.DigestHex())
	b.Commit(t3.DigestHex())
	if b.PendingCommitments() != 3 {
		t.Fatalf("pending = %d", b.PendingCommitments())
	}
	rel, err := b.Disclose(t2)
	if err != nil || len(rel) != 0 {
		t.Fatalf("t2 disclosure released %v, %v (t1 still sealed)", rel, err)
	}
	rel, err = b.Disclose(t1)
	if err != nil || len(rel) != 2 || rel[0].ID != "t1" || rel[1].ID != "t2" {
		t.Fatalf("t1 disclosure released %v, %v", ids(rel), err)
	}
	rel, err = b.Disclose(t3)
	if err != nil || len(rel) != 1 || rel[0].ID != "t3" {
		t.Fatalf("t3 disclosure released %v, %v", ids(rel), err)
	}
	if b.PendingCommitments() != 0 {
		t.Fatalf("pending = %d", b.PendingCommitments())
	}
}

func ids(txs []*protocol.Transaction) []string {
	out := make([]string, len(txs))
	for i, tx := range txs {
		out[i] = string(tx.ID)
	}
	return out
}

func TestCommitmentBrokerRejectsTampering(t *testing.T) {
	b := NewCommitmentBroker()
	honest := &protocol.Transaction{ID: "tx", RWSet: protocol.RWSet{
		Writes: []protocol.WriteItem{{Key: "k", Value: []byte("promised")}}}}
	b.Commit(honest.DigestHex())
	// The client mutates the payload after sequencing the commitment.
	tampered := &protocol.Transaction{ID: "tx", RWSet: protocol.RWSet{
		Writes: []protocol.WriteItem{{Key: "k", Value: []byte("mutated")}}}}
	if _, err := b.Disclose(tampered); err == nil {
		t.Error("tampered disclosure accepted")
	}
	// The honest disclosure still goes through.
	if rel, err := b.Disclose(honest); err != nil || len(rel) != 1 {
		t.Errorf("honest disclosure: %v %v", rel, err)
	}
	// Replayed disclosure rejected.
	if _, err := b.Disclose(honest); err == nil {
		t.Error("replayed disclosure accepted")
	}
}

func TestCommitmentBrokerRejectsUncommittedDisclosure(t *testing.T) {
	b := NewCommitmentBroker()
	if _, err := b.Disclose(&protocol.Transaction{ID: "ghost"}); err == nil {
		t.Error("disclosure without commitment accepted")
	}
}

func TestHashCommitmentConcurrentClients(t *testing.T) {
	n := newNet(t, Options{System: sched.SystemSharp, HashCommitment: true, BlockSize: 6})
	done := make(chan error, 3)
	for c := 0; c < 3; c++ {
		go func(c int) {
			client, err := n.NewClient(fmt.Sprintf("cc%d", c))
			if err != nil {
				done <- err
				return
			}
			for i := 0; i < 8; i++ {
				if _, err := client.SubmitCommitted("kv", "put", fmt.Sprintf("k%d-%d", c, i), "v"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(c)
	}
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if !n.WaitIdle(5 * time.Second) {
		t.Fatal("network did not go idle")
	}
}
