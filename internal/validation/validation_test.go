package validation

import (
	"testing"

	"fabricsharp/internal/identity"
	"fabricsharp/internal/ledger"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
	"fabricsharp/internal/statedb"
)

func newState(t *testing.T) *statedb.DB {
	t.Helper()
	db, err := statedb.New(statedb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func seed(t *testing.T, db *statedb.DB, block uint64, kv map[string]string) {
	t.Helper()
	var writes []protocol.WriteItem
	for k, v := range kv {
		writes = append(writes, protocol.WriteItem{Key: k, Value: []byte(v)})
	}
	if err := db.ApplyBlock(block, []statedb.BlockWrites{{Pos: 1, Writes: writes}}); err != nil {
		t.Fatal(err)
	}
}

func sealBlock(t *testing.T, prev *ledger.Chain, txs ...*protocol.Transaction) (*ledger.Chain, *ledger.Block) {
	t.Helper()
	if prev == nil {
		var err error
		prev, err = ledger.NewChain(nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	blk, err := prev.Seal(txs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return prev, blk
}

func TestMVCCFreshCommitsStaleAborts(t *testing.T) {
	db := newState(t)
	seed(t, db, 1, map[string]string{"a": "1"})

	fresh := &protocol.Transaction{
		ID: "fresh",
		RWSet: protocol.RWSet{
			Reads:  []protocol.ReadItem{{Key: "a", Version: seqno.Commit(1, 1)}},
			Writes: []protocol.WriteItem{{Key: "b", Value: []byte("x")}},
		},
	}
	stale := &protocol.Transaction{
		ID: "stale",
		RWSet: protocol.RWSet{
			Reads:  []protocol.ReadItem{{Key: "a", Version: seqno.Commit(0, 9)}},
			Writes: []protocol.WriteItem{{Key: "c", Value: []byte("y")}},
		},
	}
	_, blk := sealBlock(t, nil, fresh, stale)
	blk.Header.Number = 2 // chain starts at 1; bump to follow the seeded block
	codes, err := ValidateAndCommit(db, blk, Options{MVCC: true})
	if err != nil {
		t.Fatal(err)
	}
	if codes[0] != protocol.Valid || codes[1] != protocol.MVCCConflict {
		t.Errorf("codes = %v", codes)
	}
	if _, ok := db.Get("b"); !ok {
		t.Error("valid writes not applied")
	}
	if _, ok := db.Get("c"); ok {
		t.Error("invalid transaction's writes applied")
	}
}

func TestIntraBlockStaleness(t *testing.T) {
	// Fabric's rule: a transaction whose read was overwritten by an earlier
	// valid transaction IN THE SAME BLOCK is invalid.
	db := newState(t)
	seed(t, db, 1, map[string]string{"k": "0"})

	writer := &protocol.Transaction{
		ID:    "writer",
		RWSet: protocol.RWSet{Writes: []protocol.WriteItem{{Key: "k", Value: []byte("1")}}},
	}
	reader := &protocol.Transaction{
		ID: "reader",
		RWSet: protocol.RWSet{
			Reads:  []protocol.ReadItem{{Key: "k", Version: seqno.Commit(1, 1)}},
			Writes: []protocol.WriteItem{{Key: "out", Value: []byte("x")}},
		},
	}
	// writer first: reader's observed version (1,1) is stale by then.
	_, blk := sealBlock(t, nil, writer, reader)
	blk.Header.Number = 2
	codes, err := ValidateAndCommit(db, blk, Options{MVCC: true})
	if err != nil {
		t.Fatal(err)
	}
	if codes[0] != protocol.Valid || codes[1] != protocol.MVCCConflict {
		t.Errorf("codes = %v", codes)
	}

	// Opposite order in a fresh world: reader before writer both commit —
	// the very reordering Fabric++ performs.
	db2 := newState(t)
	seed(t, db2, 1, map[string]string{"k": "0"})
	_, blk2 := sealBlock(t, nil, reader, writer)
	blk2.Header.Number = 2
	codes, err = ValidateAndCommit(db2, blk2, Options{MVCC: true})
	if err != nil {
		t.Fatal(err)
	}
	if codes[0] != protocol.Valid || codes[1] != protocol.Valid {
		t.Errorf("reordered codes = %v", codes)
	}
}

func TestAbsentKeyReads(t *testing.T) {
	db := newState(t)
	seed(t, db, 1, map[string]string{"exists": "1"})
	// Reading an absent key with zero version is fresh; after someone
	// creates it, the same read is stale.
	phantomRead := func(id string) *protocol.Transaction {
		return &protocol.Transaction{
			ID: protocol.TxID(id),
			RWSet: protocol.RWSet{
				Reads:  []protocol.ReadItem{{Key: "ghost"}},
				Writes: []protocol.WriteItem{{Key: "w" + id, Value: []byte("x")}},
			},
		}
	}
	creator := &protocol.Transaction{
		ID:    "creator",
		RWSet: protocol.RWSet{Writes: []protocol.WriteItem{{Key: "ghost", Value: []byte("now")}}},
	}
	_, blk := sealBlock(t, nil, phantomRead("p1"), creator, phantomRead("p2"))
	blk.Header.Number = 2
	codes, err := ValidateAndCommit(db, blk, Options{MVCC: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []protocol.ValidationCode{protocol.Valid, protocol.Valid, protocol.MVCCConflict}
	for i := range want {
		if codes[i] != want[i] {
			t.Errorf("codes[%d] = %v want %v", i, codes[i], want[i])
		}
	}
}

func TestDeleteThenReadInBlock(t *testing.T) {
	db := newState(t)
	seed(t, db, 1, map[string]string{"victim": "1"})
	deleter := &protocol.Transaction{
		ID:    "deleter",
		RWSet: protocol.RWSet{Writes: []protocol.WriteItem{{Key: "victim", Delete: true}}},
	}
	reader := &protocol.Transaction{
		ID: "reader",
		RWSet: protocol.RWSet{
			Reads: []protocol.ReadItem{{Key: "victim", Version: seqno.Commit(1, 1)}},
		},
	}
	_, blk := sealBlock(t, nil, deleter, reader)
	blk.Header.Number = 2
	codes, err := ValidateAndCommit(db, blk, Options{MVCC: true})
	if err != nil {
		t.Fatal(err)
	}
	if codes[0] != protocol.Valid || codes[1] != protocol.MVCCConflict {
		t.Errorf("codes = %v", codes)
	}
	if _, ok := db.Get("victim"); ok {
		t.Error("deleted key survived")
	}
}

func TestNoMVCCCommitsEverything(t *testing.T) {
	// Sharp / Focc-s mode: the ordering phase guaranteed serializability;
	// the peer applies everything.
	db := newState(t)
	seed(t, db, 1, map[string]string{"a": "1"})
	stale := &protocol.Transaction{
		ID: "stale",
		RWSet: protocol.RWSet{
			Reads:  []protocol.ReadItem{{Key: "a", Version: seqno.Commit(0, 5)}},
			Writes: []protocol.WriteItem{{Key: "b", Value: []byte("x")}},
		},
	}
	_, blk := sealBlock(t, nil, stale)
	blk.Header.Number = 2
	codes, err := ValidateAndCommit(db, blk, Options{MVCC: false})
	if err != nil {
		t.Fatal(err)
	}
	if codes[0] != protocol.Valid {
		t.Errorf("codes = %v", codes)
	}
}

func TestEndorsementPolicyEnforced(t *testing.T) {
	msp := identity.NewService()
	peer, _ := msp.Enroll("peer1", identity.RolePeer)
	db := newState(t)

	good := &protocol.Transaction{
		ID:    "good",
		RWSet: protocol.RWSet{Writes: []protocol.WriteItem{{Key: "x", Value: []byte("1")}}},
	}
	good.Endorsements = []protocol.Endorsement{{EndorserID: "peer1", Signature: peer.Sign(good.Digest())}}
	unsigned := &protocol.Transaction{
		ID:    "unsigned",
		RWSet: protocol.RWSet{Writes: []protocol.WriteItem{{Key: "y", Value: []byte("1")}}},
	}
	_, blk := sealBlock(t, nil, good, unsigned)
	codes, err := ValidateAndCommit(db, blk, Options{
		MVCC:   true,
		MSP:    msp,
		Policy: identity.SignedBy("peer1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if codes[0] != protocol.Valid || codes[1] != protocol.EndorsementFailure {
		t.Errorf("codes = %v", codes)
	}
	if _, ok := db.Get("y"); ok {
		t.Error("unendorsed transaction committed")
	}
}

func TestVersionsAssignedByBlockPosition(t *testing.T) {
	db := newState(t)
	t1 := &protocol.Transaction{ID: "t1", RWSet: protocol.RWSet{Writes: []protocol.WriteItem{{Key: "k", Value: []byte("1")}}}}
	t2 := &protocol.Transaction{ID: "t2", RWSet: protocol.RWSet{Writes: []protocol.WriteItem{{Key: "k", Value: []byte("2")}}}}
	_, blk := sealBlock(t, nil, t1, t2)
	if _, err := ValidateAndCommit(db, blk, Options{MVCC: true}); err != nil {
		t.Fatal(err)
	}
	vv, ok := db.Get("k")
	if !ok || string(vv.Value) != "2" || vv.Version != seqno.Commit(1, 2) {
		t.Errorf("k = %q @ %v", vv.Value, vv.Version)
	}
}

func TestStaleHelper(t *testing.T) {
	db := newState(t)
	seed(t, db, 1, map[string]string{"a": "1"})
	fresh := &protocol.Transaction{RWSet: protocol.RWSet{Reads: []protocol.ReadItem{{Key: "a", Version: seqno.Commit(1, 1)}}}}
	stale := &protocol.Transaction{RWSet: protocol.RWSet{Reads: []protocol.ReadItem{{Key: "a"}}}}
	if Stale(db, fresh) {
		t.Error("fresh flagged stale")
	}
	if !Stale(db, stale) {
		t.Error("stale not flagged")
	}
}
