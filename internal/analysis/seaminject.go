package analysis

import (
	"go/ast"
	"go/types"
)

// SeamInject enforces the injected-seam discipline for randomness and
// clocks in deterministic files: a *rand.Rand or timer must flow in from
// an Options field owned by the caller, never be constructed inline.
// Inline construction either hides a nondeterministic seed or plants a
// wall-clock-driven event source in code whose output must be a pure
// function of the consensus stream.
//
// Flagged constructors: math/rand New/NewSource/NewZipf and rand.Rand
// composite literals; time.NewTimer/NewTicker/After/Tick/AfterFunc.
var SeamInject = &Analyzer{
	Name:  "seaminject",
	Doc:   "flags inline rand.Rand/clock construction in deterministic packages (inject via Options instead)",
	Scope: DeterministicScope,
	Run:   runSeamInject,
}

var seamBans = map[string]map[string]bool{
	"math/rand":    {"New": true, "NewSource": true, "NewZipf": true},
	"math/rand/v2": {"New": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true},
	"time":         {"NewTimer": true, "NewTicker": true, "After": true, "Tick": true, "AfterFunc": true},
}

func runSeamInject(pass *Pass) {
	for _, file := range pass.Files {
		if !pass.InScope(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				obj := pass.Info.Uses[x]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				if _, isFunc := obj.(*types.Func); !isFunc {
					return true
				}
				if banned := seamBans[obj.Pkg().Path()]; banned[obj.Name()] {
					pass.Reportf(x.Pos(), "inline %s.%s in deterministic code: randomness and clocks must arrive via an injected Options seam, not be constructed here", obj.Pkg().Name(), obj.Name())
				}
			case *ast.CompositeLit:
				if t := pass.Info.Types[x].Type; t != nil && isRandRand(t) {
					pass.Reportf(x.Pos(), "inline rand.Rand literal in deterministic code: inject the generator via an Options seam")
				}
			}
			return true
		})
	}
}

func isRandRand(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg := named.Obj().Pkg().Path()
	return (pkg == "math/rand" || pkg == "math/rand/v2") && named.Obj().Name() == "Rand"
}
