package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Write-ahead log format, one record per mutation:
//
//	crc32(payload) uint32 | payloadLen uint32 | payload
//	payload = op byte | keyLen uvarint | key | valLen uvarint | val
//
// A torn tail (short read or checksum mismatch on the final record) is
// tolerated during replay, matching the crash the WAL exists to survive;
// corruption anywhere earlier is reported as an error.

const (
	walOpPut    byte = 1
	walOpDelete byte = 2
)

// errTornTail internally marks a truncated final record during replay.
var errTornTail = errors.New("kvstore: torn WAL tail")

type wal struct {
	f    *os.File
	w    *bufio.Writer
	sync bool
}

func openWAL(path string, sync bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open wal: %w", err)
	}
	return &wal{f: f, w: bufio.NewWriter(f), sync: sync}, nil
}

func (w *wal) append(op byte, key, value []byte) error {
	payload := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(key)+len(value))
	payload = append(payload, op)
	payload = binary.AppendUvarint(payload, uint64(len(key)))
	payload = append(payload, key...)
	payload = binary.AppendUvarint(payload, uint64(len(value)))
	payload = append(payload, value...)

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	if w.sync {
		if err := w.w.Flush(); err != nil {
			return err
		}
		return w.f.Sync()
	}
	return nil
}

func (w *wal) flush() error { return w.w.Flush() }

func (w *wal) close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// replayWAL streams every intact record of the log at path into fn. It
// returns the number of records applied. A torn final record is silently
// dropped; mid-log corruption is an error.
func replayWAL(path string, fn func(op byte, key, value []byte)) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()

	r := bufio.NewReader(f)
	applied := 0
	for {
		op, key, value, err := readWALRecord(r)
		if err == io.EOF {
			return applied, nil
		}
		if err == errTornTail {
			// A crash mid-append leaves a truncated tail; everything before
			// it is intact, so recovery proceeds with what we have.
			return applied, nil
		}
		if err != nil {
			return applied, fmt.Errorf("kvstore: wal record %d: %w", applied, err)
		}
		fn(op, key, value)
		applied++
	}
}

func readWALRecord(r *bufio.Reader) (op byte, key, value []byte, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, nil, io.EOF
		}
		return 0, nil, nil, errTornTail
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[0:4])
	payloadLen := binary.LittleEndian.Uint32(hdr[4:8])
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, nil, errTornTail
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return 0, nil, nil, errTornTail
	}
	if len(payload) < 1 {
		return 0, nil, nil, errors.New("empty payload")
	}
	op = payload[0]
	rest := payload[1:]
	keyLen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest[n:])) < keyLen {
		return 0, nil, nil, errors.New("bad key length")
	}
	key = rest[n : n+int(keyLen)]
	rest = rest[n+int(keyLen):]
	valLen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest[n:])) < valLen {
		return 0, nil, nil, errors.New("bad value length")
	}
	value = rest[n : n+int(valLen)]
	return op, key, value, nil
}
