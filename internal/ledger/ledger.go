// Package ledger implements the blockchain itself: blocks of ordered
// transactions chained by header hashes, a merkle accumulator over the
// transaction digests, and an append-only block store.
//
// The paper's safety argument (Section 3.5) leans on four properties of this
// layer — hash chain integrity, no skipping, no creation, agreement — which
// the chain enforces structurally: a block only appends if its number is
// next and its PrevHash matches the current tip, and the data hash binds the
// exact transaction sequence the (replicated, deterministic) reordering
// emitted.
package ledger

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sync"

	"fabricsharp/internal/kvstore"
	"fabricsharp/internal/protocol"
)

// Header is a block header. Hash(Header_n) == Block_{n+1}.PrevHash.
type Header struct {
	Number   uint64
	PrevHash []byte
	DataHash []byte
}

// Block is a sealed batch of ordered transactions plus the validation codes
// assigned by the validation phase (Fabric keeps these as block metadata so
// that raw ledger throughput counts aborted transactions too — exactly the
// raw-vs-effective distinction of Figure 1).
type Block struct {
	Header       Header
	Transactions []*protocol.Transaction
	Validation   []protocol.ValidationCode
	// RescueDigest commits to the post-order rescue outcome
	// (reexec.WriteSetDigest over the Rescued positions' re-executed write
	// sets); nil when no transaction was rescued. Like Validation it is
	// metadata, not part of DataHash: every replica re-derives it
	// deterministically and byte-asserts against the sealed value.
	RescueDigest []byte
}

// Hash returns the block's header hash.
func (b *Block) Hash() []byte { return HashHeader(b.Header) }

// HashHeader hashes a header deterministically.
func HashHeader(h Header) []byte {
	sum := sha256.New()
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], h.Number)
	sum.Write(n[:])
	sum.Write(h.PrevHash)
	sum.Write(h.DataHash)
	return sum.Sum(nil)
}

// DataHash computes the merkle root over the transactions' digests. An empty
// block hashes to the digest of the empty string, keeping genesis well
// defined.
func DataHash(txs []*protocol.Transaction) []byte {
	if len(txs) == 0 {
		empty := sha256.Sum256(nil)
		return empty[:]
	}
	level := make([][]byte, len(txs))
	for i, tx := range txs {
		level[i] = tx.Digest()
	}
	return merkleRoot(level)
}

func merkleRoot(level [][]byte) []byte {
	for len(level) > 1 {
		next := make([][]byte, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				// Odd node promotes unchanged (Bitcoin duplicates; promotion
				// avoids the duplication ambiguity).
				next = append(next, level[i])
				continue
			}
			h := sha256.New()
			h.Write(level[i])
			h.Write(level[i+1])
			next = append(next, h.Sum(nil))
		}
		level = next
	}
	return level[0]
}

// ValidCount returns the number of transactions that validated cleanly
// (code Valid; rescued transactions are counted by CommittedCount).
func (b *Block) ValidCount() int {
	n := 0
	for _, c := range b.Validation {
		if c == protocol.Valid {
			n++
		}
	}
	return n
}

// CommittedCount returns the number of transactions whose effects reached
// the state database: valid plus rescued.
func (b *Block) CommittedCount() int {
	n := 0
	for _, c := range b.Validation {
		if c.Committed() {
			n++
		}
	}
	return n
}

// Chain is an append-only hash chain of blocks, optionally persisted to a
// kvstore. Safe for concurrent use.
type Chain struct {
	mu     sync.RWMutex
	blocks []*Block
	store  *kvstore.DB
}

const blockKeyPrefix = "b/"

func blockKey(n uint64) []byte {
	k := []byte(blockKeyPrefix)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], n)
	return append(k, b[:]...)
}

// NewChain creates a chain. A non-nil store persists blocks and reloads any
// existing chain from it (verifying linkage).
func NewChain(store *kvstore.DB) (*Chain, error) {
	c := &Chain{store: store}
	if store == nil {
		return c, nil
	}
	it := store.NewPrefixIterator([]byte(blockKeyPrefix))
	for ; it.Valid(); it.Next() {
		var blk Block
		if err := gob.NewDecoder(bytes.NewReader(it.Value())).Decode(&blk); err != nil {
			return nil, fmt.Errorf("ledger: decode block: %w", err)
		}
		b := blk
		c.blocks = append(c.blocks, &b)
	}
	// Keys are big-endian block numbers, so iteration order is block order.
	if err := c.verifyLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// Height returns the number of the last block, and whether any block exists.
func (c *Chain) Height() (uint64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.blocks) == 0 {
		return 0, false
	}
	return c.blocks[len(c.blocks)-1].Header.Number, true
}

// Len returns the number of blocks.
func (c *Chain) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.blocks)
}

// Get returns block n.
func (c *Chain) Get(n uint64) (*Block, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.blocks) == 0 {
		return nil, false
	}
	first := c.blocks[0].Header.Number
	idx := int(n) - int(first)
	if idx < 0 || idx >= len(c.blocks) {
		return nil, false
	}
	return c.blocks[idx], true
}

// Tip returns the last block.
func (c *Chain) Tip() (*Block, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.blocks) == 0 {
		return nil, false
	}
	return c.blocks[len(c.blocks)-1], true
}

// Seal assembles a block from ordered transactions, linking it to the
// current tip, and appends it. It returns the sealed block.
func (c *Chain) Seal(txs []*protocol.Transaction, validation []protocol.ValidationCode) (*Block, error) {
	return c.SealRescued(txs, validation, nil)
}

// SealRescued is Seal plus the post-order rescue digest committed alongside
// the validation codes (nil when no transaction was rescued).
func (c *Chain) SealRescued(txs []*protocol.Transaction, validation []protocol.ValidationCode, rescueDigest []byte) (*Block, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var number uint64 = 1
	var prev []byte
	if len(c.blocks) > 0 {
		tip := c.blocks[len(c.blocks)-1]
		number = tip.Header.Number + 1
		prev = HashHeader(tip.Header)
	} else {
		genesis := sha256.Sum256([]byte("fabricsharp-genesis"))
		prev = genesis[:]
	}
	blk := &Block{
		Header:       Header{Number: number, PrevHash: prev, DataHash: DataHash(txs)},
		Transactions: txs,
		Validation:   validation,
		RescueDigest: rescueDigest,
	}
	if err := c.appendLocked(blk); err != nil {
		return nil, err
	}
	return blk, nil
}

// Append adds an externally assembled block, enforcing linkage (agreement,
// no skipping) before accepting it.
func (c *Chain) Append(blk *Block) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.appendLocked(blk)
}

func (c *Chain) appendLocked(blk *Block) error {
	if len(c.blocks) > 0 {
		tip := c.blocks[len(c.blocks)-1]
		if blk.Header.Number != tip.Header.Number+1 {
			return fmt.Errorf("ledger: block %d skips height (tip %d)", blk.Header.Number, tip.Header.Number)
		}
		if !bytes.Equal(blk.Header.PrevHash, HashHeader(tip.Header)) {
			return fmt.Errorf("ledger: block %d prev-hash mismatch", blk.Header.Number)
		}
	}
	if want := DataHash(blk.Transactions); !bytes.Equal(blk.Header.DataHash, want) {
		return fmt.Errorf("ledger: block %d data-hash mismatch", blk.Header.Number)
	}
	if blk.Validation != nil && len(blk.Validation) != len(blk.Transactions) {
		return fmt.Errorf("ledger: block %d validation metadata length mismatch", blk.Header.Number)
	}
	c.blocks = append(c.blocks, blk)
	if c.store != nil {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(blk); err != nil {
			return fmt.Errorf("ledger: encode block: %w", err)
		}
		if err := c.store.Put(blockKey(blk.Header.Number), buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// SetValidation records validation codes on an already appended block (the
// validation phase runs after delivery) and re-persists it. The block's
// rescue digest, if any, is left untouched.
func (c *Chain) SetValidation(number uint64, codes []protocol.ValidationCode) error {
	return c.setValidation(number, codes, false, nil)
}

// SetValidationRescued is SetValidation plus the re-derived rescue digest
// (nil when no transaction was rescued).
func (c *Chain) SetValidationRescued(number uint64, codes []protocol.ValidationCode, rescueDigest []byte) error {
	return c.setValidation(number, codes, true, rescueDigest)
}

func (c *Chain) setValidation(number uint64, codes []protocol.ValidationCode, setDigest bool, rescueDigest []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.blocks) == 0 {
		return fmt.Errorf("ledger: empty chain")
	}
	first := c.blocks[0].Header.Number
	idx := int(number) - int(first)
	if idx < 0 || idx >= len(c.blocks) {
		return fmt.Errorf("ledger: block %d not found", number)
	}
	blk := c.blocks[idx]
	if len(codes) != len(blk.Transactions) {
		return fmt.Errorf("ledger: validation metadata length mismatch")
	}
	blk.Validation = codes
	if setDigest {
		blk.RescueDigest = rescueDigest
	}
	if c.store != nil {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(blk); err != nil {
			return err
		}
		return c.store.Put(blockKey(number), buf.Bytes())
	}
	return nil
}

// Verify walks the whole chain checking linkage and data hashes. It returns
// nil for a structurally sound chain.
func (c *Chain) Verify() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.verifyLocked()
}

func (c *Chain) verifyLocked() error {
	for i, blk := range c.blocks {
		if want := DataHash(blk.Transactions); !bytes.Equal(blk.Header.DataHash, want) {
			return fmt.Errorf("ledger: block %d data hash corrupt", blk.Header.Number)
		}
		if i == 0 {
			continue
		}
		prev := c.blocks[i-1]
		if blk.Header.Number != prev.Header.Number+1 {
			return fmt.Errorf("ledger: gap between %d and %d", prev.Header.Number, blk.Header.Number)
		}
		if !bytes.Equal(blk.Header.PrevHash, HashHeader(prev.Header)) {
			return fmt.Errorf("ledger: chain broken at block %d", blk.Header.Number)
		}
	}
	return nil
}

// TipHash returns the hash of the last header, identifying the entire chain
// content (agreement checks compare tip hashes).
func (c *Chain) TipHash() []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.blocks) == 0 {
		return nil
	}
	return HashHeader(c.blocks[len(c.blocks)-1].Header)
}

// ForEach visits blocks in order.
func (c *Chain) ForEach(fn func(*Block) bool) {
	c.mu.RLock()
	blocks := append([]*Block(nil), c.blocks...)
	c.mu.RUnlock()
	for _, b := range blocks {
		if !fn(b) {
			return
		}
	}
}
