package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/reexec"
	"fabricsharp/internal/scenario"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/seqno"
	"fabricsharp/internal/validation"
)

// OrderingShape describes a synthetic consensus stream fed straight into a
// scheduler — the ordering-phase hot path (Algorithm 2 + Algorithm 3) with no
// simulation, consensus transport, or commit pipeline around it. Shapes model
// SmallBank's SendPayment: each transaction reads two checking accounts and
// overwrites both.
type OrderingShape struct {
	// Name labels the shape in tables and JSON records.
	Name string
	// Hot is the size of the contended account pool; 0 means conflict-free
	// (every transaction touches its own disjoint accounts).
	Hot int
	// HotProb is the probability that an account is drawn from the hot pool.
	HotProb float64
	// Accounts is the cold key-space size.
	Accounts int
	// Rotate, when positive, rotates the whole account pool every Rotate
	// transactions: generation i/Rotate draws from a disjoint key space —
	// the churn workload whose total key universe grows without bound while
	// its working set stays Accounts-sized.
	Rotate int
	// CompactEvery is the scheduler's epoch-compaction period for this
	// shape (0 = append-only tables, the default for the legacy shapes).
	CompactEvery uint64
}

// OrderingShapes are the canonical shapes of the perf trajectory: a
// conflict-free stream (pure data-structure cost, no dependency edges), a
// contended stream (the graph, reachability, and reordering machinery under
// load), and — since PR 4 — a churn stream (rotating key space with epoch
// compaction on, proving interned-key residency stays bounded).
func OrderingShapes() []OrderingShape {
	return []OrderingShape{
		{Name: "conflict-free", Accounts: 1 << 20},
		{Name: "contended", Hot: 64, HotProb: 0.5, Accounts: 1 << 20},
		{Name: "churn", Accounts: 2048, Rotate: 2000, CompactEvery: 10},
	}
}

// Stream pre-generates n transactions of this shape. Each carries a full
// smallbank send_payment invocation (contract, function, args) so the
// post-order rescue phase can re-execute it; the account ids are chosen so
// chaincode.CheckingKey reproduces the historical key strings byte-for-byte
// ("checking:h5", "checking:c17", "checking:g3:9"). SnapshotBlock is filled
// in by the driver at submission time (it must track the scheduler's height).
func (s OrderingShape) Stream(n int, seed int64) []*protocol.Transaction {
	rng := rand.New(rand.NewSource(seed))
	account := func(i int, slot int) string {
		if s.Rotate > 0 {
			// Churn: every generation is a fresh, disjoint key space.
			return fmt.Sprintf("g%d:%d", i/s.Rotate, rng.Intn(s.Accounts))
		}
		if s.Hot > 0 && rng.Float64() < s.HotProb {
			return fmt.Sprintf("h%d", rng.Intn(s.Hot))
		}
		if s.Hot == 0 {
			// Conflict-free: accounts derived from the transaction index.
			return fmt.Sprintf("c%d", 2*i+slot)
		}
		return fmt.Sprintf("c%d", rng.Intn(s.Accounts))
	}
	txs := make([]*protocol.Transaction, n)
	for i := range txs {
		src, dst := account(i, 0), account(i, 1)
		srcKey, dstKey := chaincode.CheckingKey(src), chaincode.CheckingKey(dst)
		tx := &protocol.Transaction{
			ID:       protocol.TxID(fmt.Sprintf("ord%d", i)),
			Contract: "smallbank",
			Function: "send_payment",
			Args:     []string{src, dst, "1"},
			RWSet: protocol.RWSet{
				Reads: []protocol.ReadItem{{Key: srcKey}, {Key: dstKey}},
				Writes: []protocol.WriteItem{
					{Key: srcKey, Value: []byte("balance")},
					{Key: dstKey, Value: []byte("balance")},
				},
			},
		}
		tx.RWSet.Precompute()
		txs[i] = tx
	}
	return txs
}

// OrderingResult is one (system, shape) measurement of the ordering hot path.
type OrderingResult struct {
	System string `json:"system"`
	Shape  string `json:"shape"`
	Txs    int    `json:"txs"`
	Blocks int    `json:"blocks"`
	// Admitted counts transactions surviving OnArrival; Committed counts
	// transactions emitted in formed blocks; Valid counts the transactions
	// the shadow validator judged Valid (the effective-throughput numerator
	// — for MVCC systems the emitted blocks still carry doomed
	// transactions).
	// omitempty keeps pre-PR-3 trajectory records (which never measured
	// validity) from being rewritten with a spurious zero.
	Admitted  int `json:"admitted"`
	Committed int `json:"committed"`
	Valid     int `json:"valid,omitempty"`
	// Rescue marks a run with the post-order re-execution phase enabled;
	// Rescued counts MVCC casualties it returned to the committed set (they
	// add to Valid in the effective-throughput numerator).
	Rescue  bool `json:"rescue,omitempty"`
	Rescued int  `json:"rescued,omitempty"`
	// ArrivalUSPerTx is the scheduler-reported mean arrival latency (µs).
	ArrivalUSPerTx float64 `json:"arrival_us_per_tx"`
	// FormationMSPerBlock is the scheduler-reported mean formation latency.
	FormationMSPerBlock float64 `json:"formation_ms_per_block"`
	// AllocsPerTx and BytesPerTx cover the whole drive loop (arrivals plus
	// amortized formations), mallocs and bytes per submitted transaction.
	AllocsPerTx float64 `json:"allocs_per_tx"`
	BytesPerTx  float64 `json:"bytes_per_tx"`
	// TPS is submitted transactions per wall-clock second through the
	// scheduler (ordering-phase ceiling, not end-to-end throughput).
	TPS float64 `json:"tps"`
	// Goodput is committed transactions (Valid + Rescued) per wall-clock
	// second — the number the rescue phase exists to raise: it trades some
	// raw TPS (re-execution work) for a larger committed numerator.
	Goodput float64 `json:"goodput,omitempty"`
	// MaxResidentKeys is the peak intern-table size observed across the run
	// (sampled after every cut) — the memory-residency figure the churn
	// shape exists to bound. omitempty keeps pre-PR-4 records intact.
	MaxResidentKeys int `json:"max_resident_keys,omitempty"`
	// Open-loop wire-cluster columns: populated by records captured from
	// `sharpnet load -target-tps` runs (offered rate, achieved completion
	// rate, and scheduled-instant submit→commit latency quantiles), absent
	// for the in-process ordering microbenchmarks.
	TargetTPS   int     `json:"target_tps,omitempty"`
	AchievedTPS float64 `json:"achieved_tps,omitempty"`
	P50CommitMS float64 `json:"p50_commit_ms,omitempty"`
	P99CommitMS float64 `json:"p99_commit_ms,omitempty"`
}

// RunOrdering drives one scheduler over a pre-generated stream, cutting a
// block every blockSize arrivals, and reports wall-clock and allocation
// costs. Commit feedback is the orderer's real path: after each formation
// the shadow validator (validation.ComputeVerdicts over a value-free
// ShadowState) derives the deterministic verdicts the peers would compute,
// and those — not a blanket all-Valid — feed OnBlockCommitted, so Focc-l's
// doomed-transaction detection actually fires on the contended shape.
//
// Transactions are "endorsed" in a sliding window two blocks deep: their
// read versions and snapshot come from the shadow state as of the window's
// start, modelling the execution phase running concurrently with ordering
// (a transaction can land in a block formed after its snapshot, which is
// exactly what makes reads go stale under contention).
//
// With rescue enabled the run models the full orderer cut path of the rescue
// design: endorsement is a real chaincode simulation against a value-tracking
// shadow (pre-seeded with every account at a large balance), and each cut
// runs the post-order re-execution phase over the MVCC casualties before the
// verdicts feed back into the scheduler.
func RunOrdering(system sched.System, shape OrderingShape, txCount, blockSize int, seed int64, rescue bool) (OrderingResult, error) {
	txs := shape.Stream(txCount, seed)
	sc, err := sched.New(system, sched.Options{CompactEvery: shape.CompactEvery})
	if err != nil {
		return OrderingResult{}, err
	}
	res := OrderingResult{System: string(system), Shape: shape.Name, Txs: txCount, Rescue: rescue}
	height := uint64(0)
	shadow := validation.NewShadowState()
	vopts := validation.Options{MVCC: sc.NeedsMVCCValidation()}

	var registry *chaincode.Registry
	var contract chaincode.Contract
	if rescue {
		// Value-tracking shadow plus the real contract: the rescue phase
		// re-executes send_payment, so the stream's balances must be genuine
		// decimal integers, not placeholder bytes. Seeding happens before the
		// timed window; seed versions sit below every real block.
		shadow = validation.NewValueShadowState()
		msc, ok := scenario.Get("mixed")
		if !ok {
			return OrderingResult{}, fmt.Errorf("bench: mixed scenario not registered")
		}
		registry = chaincode.NewRegistry(msc.Contracts()...)
		var found bool
		contract, found = registry.Get("smallbank")
		if !found {
			return OrderingResult{}, fmt.Errorf("bench: mixed scenario no longer deploys smallbank")
		}
		seeded := map[string]bool{}
		for _, tx := range txs {
			for _, id := range tx.Args[:2] {
				key := chaincode.CheckingKey(id)
				if !seeded[key] {
					seeded[key] = true
					shadow.Seed(key, []byte("1000000"), seqno.Commit(0, 1))
				}
			}
		}
	}

	endorsed := 0
	endorse := func(upTo int) {
		if upTo > len(txs) {
			upTo = len(txs)
		}
		for ; endorsed < upTo; endorsed++ {
			tx := txs[endorsed]
			tx.SnapshotBlock = height
			if rescue {
				// Real execution phase: simulate against the committed values
				// as of the window's start. Key sets match the declared ones
				// by construction (send_payment's keys are argument-derived).
				rwset, err := chaincode.Simulate(contract, tx.Function, tx.Args, shadowReader{shadow})
				if err != nil {
					panic(fmt.Sprintf("bench: endorsement simulation failed: %v", err))
				}
				tx.RWSet = rwset
				tx.RWSet.Precompute()
				continue
			}
			reads := tx.RWSet.Reads
			for j := range reads {
				ver, ok := shadow.Version(reads[j].Key)
				if !ok {
					ver = seqno.Seq{}
				}
				reads[j].Version = ver
			}
		}
	}

	sampleResidency := func() {
		if n := sc.ResidentKeys(); n > res.MaxResidentKeys {
			res.MaxResidentKeys = n
		}
	}
	cut := func() error {
		// Peak residency is sampled around each cut: before it (the maximum
		// since the last compaction for arrival-interning schedulers) and
		// after it (catching schedulers that intern at formation time, like
		// Focc-l's greedy pass — only their growth inside the compacting
		// call itself goes unobserved).
		sampleResidency()
		fr, err := sc.OnBlockFormation()
		if err != nil {
			return err
		}
		sampleResidency()
		if len(fr.Ordered) == 0 {
			return nil
		}
		height = fr.Block
		res.Blocks++
		res.Committed += len(fr.Ordered)
		codes := validation.ComputeVerdicts(shadow, fr.Block, fr.Ordered, vopts)
		var rescuedWrites [][]protocol.WriteItem
		if rescue {
			out := reexec.Run(shadow, fr.Block, fr.Ordered, codes,
				reexec.Options{Registry: registry, Workers: runtime.GOMAXPROCS(0)})
			codes = out.Codes
			rescuedWrites = out.Writes
		}
		shadow.ApplyRescued(fr.Block, fr.Ordered, codes, rescuedWrites)
		for _, c := range codes {
			switch c {
			case protocol.Valid:
				res.Valid++
			case protocol.Rescued:
				res.Rescued++
			}
		}
		sc.OnBlockCommitted(fr.Block, fr.Ordered, codes)
		return nil
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i, tx := range txs {
		if i >= endorsed {
			endorse(i + 2*blockSize)
		}
		code, err := sc.OnArrival(tx)
		if err != nil {
			return OrderingResult{}, err
		}
		if code == protocol.Valid {
			res.Admitted++
		}
		if sc.PendingCount() >= blockSize {
			if err := cut(); err != nil {
				return OrderingResult{}, err
			}
		}
	}
	if err := cut(); err != nil {
		return OrderingResult{}, err
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)

	timing := sc.Timing()
	res.ArrivalUSPerTx = timing.MeanArrivalUS()
	res.FormationMSPerBlock = timing.MeanFormationMS()
	res.AllocsPerTx = float64(after.Mallocs-before.Mallocs) / float64(txCount)
	res.BytesPerTx = float64(after.TotalAlloc-before.TotalAlloc) / float64(txCount)
	if s := wall.Seconds(); s > 0 {
		res.TPS = float64(txCount) / s
		res.Goodput = float64(res.Valid+res.Rescued) / s
	}
	return res, nil
}

// shadowReader adapts a value-tracking ShadowState to chaincode.StateReader
// for the benchmark's endorsement simulations.
type shadowReader struct{ shadow *validation.ShadowState }

func (r shadowReader) Read(key string) ([]byte, seqno.Seq, bool, error) {
	v, ver, ok := r.shadow.Read(key)
	return v, ver, ok, nil
}

// orderingTxCount sizes the drive loop: long enough to amortize warm-up and
// cross several pruning horizons.
func orderingTxCount(o Options) int {
	if o.Quick {
		return 20000
	}
	return 100000
}

// rescueShapes are the shapes whose MVCC abort rate makes the rescue phase
// worth measuring (conflict-free has nothing to rescue).
var rescueShapes = map[string]bool{"contended": true, "churn": true}

// Ordering runs the ordering-phase hot-path benchmark for every system and
// shape and renders the table of the perf trajectory (PR 2 onwards). Systems
// that validate with MVCC additionally run the contended and churn shapes
// with the post-order rescue phase enabled ("+rescue" rows, PR 6).
func Ordering(o Options) (*Table, []OrderingResult, error) {
	t := &Table{
		Title: "Ordering-phase hot path: scheduler cost per submitted transaction",
		Columns: []string{"system", "shape", "arrival µs/tx", "formation ms/blk",
			"allocs/tx", "bytes/tx", "admitted", "valid", "rescued", "tps", "goodput", "max keys"},
		Comment: "schedulers driven directly with shadow-validator feedback (no consensus/commit around them); allocs amortize formations + verdicts; goodput = committed (valid+rescued) tx/s; +rescue rows re-execute MVCC casualties post-order; max keys = peak interned-key residency (the churn shape runs with epoch compaction on)",
	}
	var all []OrderingResult
	addRow := func(system sched.System, r OrderingResult) {
		label := systemLabel(system)
		if r.Rescue {
			label += "+rescue"
		}
		t.AddRow(label, r.Shape,
			fmt.Sprintf("%.2f", r.ArrivalUSPerTx),
			fmt.Sprintf("%.3f", r.FormationMSPerBlock),
			fmt.Sprintf("%.1f", r.AllocsPerTx),
			fmt.Sprintf("%.0f", r.BytesPerTx),
			fmt.Sprintf("%d/%d", r.Admitted, r.Txs),
			fmt.Sprintf("%d", r.Valid),
			fmt.Sprintf("%d", r.Rescued),
			fmt.Sprintf("%.0f", r.TPS),
			fmt.Sprintf("%.0f", r.Goodput),
			fmt.Sprintf("%d", r.MaxResidentKeys))
	}
	for _, system := range sched.Systems() {
		probe, err := sched.New(system, sched.Options{})
		if err != nil {
			return nil, nil, err
		}
		mvcc := probe.NeedsMVCCValidation()
		for _, shape := range OrderingShapes() {
			rescues := []bool{false}
			if mvcc && rescueShapes[shape.Name] {
				rescues = append(rescues, true)
			}
			for _, rescue := range rescues {
				r, err := RunOrdering(system, shape, orderingTxCount(o), Params.Defaults.BlockSize, o.Seed, rescue)
				if err != nil {
					return nil, nil, err
				}
				all = append(all, r)
				addRow(system, r)
			}
		}
	}
	return t, all, nil
}

// BenchRecord is one entry of the repository's benchmark trajectory file:
// a labelled snapshot of the ordering-phase results on one machine. The
// committed history lives in BENCH_PR2.json at the repo root — the name
// records the PR that introduced the file, not its scope; it is the ongoing
// append-only trajectory, and every PR appends records rather than
// overwriting them.
type BenchRecord struct {
	Label      string           `json:"label"`
	Captured   string           `json:"captured"`
	GoVersion  string           `json:"go"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	TxCount    int              `json:"tx_count"`
	BlockSize  int              `json:"block_size"`
	Seed       int64            `json:"seed"`
	Results    []OrderingResult `json:"results"`
}

// BenchFile is the trajectory file layout.
type BenchFile struct {
	Comment string        `json:"comment"`
	Records []BenchRecord `json:"records"`
}

// AppendBenchRecord loads path (if it exists), appends rec, and writes the
// file back, preserving earlier records — the append-only perf history.
func AppendBenchRecord(path string, rec BenchRecord) error {
	file := BenchFile{
		Comment: "Ordering-phase hot-path benchmark trajectory; append one record per PR (cmd/benchall -fig ordering -json <path> -label <pr>).",
	}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &file); err != nil {
			return fmt.Errorf("bench: corrupt trajectory file %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	file.Records = append(file.Records, rec)
	out, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// NewBenchRecord assembles a record for the current machine and options.
func NewBenchRecord(label string, o Options, results []OrderingResult) BenchRecord {
	return BenchRecord{
		Label:      label,
		Captured:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		TxCount:    orderingTxCount(o),
		BlockSize:  Params.Defaults.BlockSize,
		Seed:       o.Seed,
		Results:    results,
	}
}
