package validation

import (
	"sync"
	"sync/atomic"

	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
	"fabricsharp/internal/statedb"
)

// VersionSource resolves a key's latest committed version. It is the
// value-free slice of the state database that the verdict logic actually
// consumes: endorsement and MVCC checks never read values, only versions.
// Both the peers' full state (via DBVersions) and the orderers' ShadowState
// implement it, so one verdict function serves both sides of the pipeline.
type VersionSource interface {
	// Version returns the latest version of key, and false when the key is
	// absent (never written, or deleted).
	Version(key string) (seqno.Seq, bool)
}

// dbVersions adapts a statedb.DB's latest-version view to VersionSource.
type dbVersions struct{ db *statedb.DB }

// DBVersions exposes db's latest committed versions as a VersionSource.
func DBVersions(db *statedb.DB) VersionSource { return dbVersions{db: db} }

func (s dbVersions) Version(key string) (seqno.Seq, bool) {
	vv, ok := s.db.Get(key)
	if !ok {
		return seqno.Seq{}, false
	}
	return vv.Version, true
}

// ShadowState is a value-free replica of the committed version state: for
// every live key, the (block, position) version of its last valid write;
// deletes are tombstoned exactly like the state database reports them
// (absent). Orderers maintain one per replica and advance it with the
// verdicts ComputeVerdicts derives at each cut, so commit feedback becomes a
// pure function of the consensus stream — no peer, no timing, no values.
//
// A ShadowState is confined to its orderer goroutine; it is not safe for
// concurrent mutation (the read-only fan-out of a rescue run is fine — see
// Read).
type ShadowState struct {
	entries map[string]shadowEntry
	height  uint64
	// values enables value tracking (NewValueShadowState): the post-order
	// rescue phase re-executes chaincode at the orderer, which needs the
	// committed values, not just their versions. Values still come purely
	// from the consensus stream (declared write sets of valid transactions
	// plus re-executed write sets of rescued ones), so the shadow remains a
	// deterministic function of the stream.
	values bool
}

type shadowEntry struct {
	version seqno.Seq
	value   []byte
	deleted bool
}

// NewShadowState returns an empty value-free shadow (the genesis version
// state).
func NewShadowState() *ShadowState {
	return &ShadowState{entries: map[string]shadowEntry{}}
}

// NewValueShadowState returns an empty shadow that also tracks committed
// values, as required to re-execute chaincode at the orderer (reexec's
// StateSource).
func NewValueShadowState() *ShadowState {
	return &ShadowState{entries: map[string]shadowEntry{}, values: true}
}

// TracksValues reports whether the shadow stores committed values.
func (s *ShadowState) TracksValues() bool { return s.values }

// Read resolves key to its committed value and version (reexec.StateSource).
// Only value-tracking shadows (NewValueShadowState) support it. Read never
// mutates the shadow, so the concurrent readers of a rescue run are safe as
// long as nothing applies a block mid-run (the orderer's cut path is
// serial). Callers must not mutate the returned value.
func (s *ShadowState) Read(key string) ([]byte, seqno.Seq, bool) {
	if !s.values {
		panic("validation: Read on a value-free ShadowState (use NewValueShadowState)")
	}
	e, ok := s.entries[key]
	if !ok || e.deleted {
		return nil, seqno.Seq{}, false
	}
	return e.value, e.version, true
}

// Seed installs a committed key directly, bypassing block application —
// benchmark and test initialization for value shadows. ver must be from a
// block at or below the shadow's height.
func (s *ShadowState) Seed(key string, value []byte, ver seqno.Seq) {
	s.entries[key] = shadowEntry{version: ver, value: value}
}

// Version implements VersionSource.
func (s *ShadowState) Version(key string) (seqno.Seq, bool) {
	e, ok := s.entries[key]
	if !ok || e.deleted {
		return seqno.Seq{}, false
	}
	return e.version, true
}

// Apply folds one sealed block's verdicts into the shadow: the writes of
// every valid transaction land at version (block, position), deletes as
// tombstones — mirroring what statedb.ApplyBlock will do on the peers with
// the same codes. codes[i] corresponds to txs[i]. Blocks carrying Rescued
// verdicts must go through ApplyRescued instead (the rescued write sets are
// not derivable from the transactions alone).
func (s *ShadowState) Apply(block uint64, txs []*protocol.Transaction, codes []protocol.ValidationCode) {
	s.ApplyRescued(block, txs, codes, nil)
}

// ApplyRescued is Apply plus the post-order rescue outcome: rescued[i], when
// the slice is non-nil, holds the re-executed write set of each Rescued
// transaction. Valid transactions commit their declared writes at their
// in-block position; Rescued ones commit their re-executed writes after the
// whole block (protocol.CommitPositions) — the valid pass runs first so a
// rescued write of the same key lands last, exactly like the state
// database's version-ordered history.
func (s *ShadowState) ApplyRescued(block uint64, txs []*protocol.Transaction, codes []protocol.ValidationCode, rescued [][]protocol.WriteItem) {
	pos := protocol.CommitPositions(codes)
	apply := func(i int, writes []protocol.WriteItem) {
		ver := seqno.Commit(block, pos[i])
		for _, w := range writes {
			e := shadowEntry{version: ver, deleted: w.Delete}
			if s.values {
				e.value = w.Value
			}
			s.entries[w.Key] = e
		}
	}
	for i, tx := range txs {
		if codes[i] == protocol.Valid {
			apply(i, tx.RWSet.Writes)
		}
	}
	for i := range txs {
		if codes[i] != protocol.Rescued {
			continue
		}
		if rescued == nil {
			// Applying a rescued block without its write sets would
			// silently desynchronize the shadow from the peers.
			panic("validation: Apply on a block with Rescued verdicts (use ApplyRescued)")
		}
		apply(i, rescued[i])
	}
	s.height = block
}

// Height returns the last applied block number.
func (s *ShadowState) Height() uint64 { return s.height }

// Len returns the number of tracked keys, tombstones included (tests,
// metrics).
func (s *ShadowState) Len() int { return len(s.entries) }

// ComputeVerdicts derives the validation codes for one block of ordered
// transactions against base — the shared, sequential verdict function of
// the whole repository. ValidateAndCommit wraps it for the peer reference
// path, commit.ValidateBlock is asserted byte-identical to it, and every
// orderer runs it over its ShadowState right after a cut, so the codes a
// block carries out of ordering equal the codes the peers compute during
// validation by construction, not by luck.
func ComputeVerdicts(base VersionSource, block uint64, txs []*protocol.Transaction, opts Options) []protocol.ValidationCode {
	return ComputeVerdictsPrechecked(base, block, txs, opts, PrecheckEndorsements(txs, opts, 1))
}

// PrecheckEndorsements runs opts' endorsement policy over every transaction
// on up to `workers` goroutines and returns the failure mask
// ComputeVerdictsPrechecked consumes, or nil when the options disable
// endorsement checking. Each verdict is an independent pure function of its
// transaction, so the mask is deterministic regardless of scheduling — this
// is how the orderers keep the dominant CPU cost of shadow validation
// (ed25519 verification) off the serial part of the cut path.
func PrecheckEndorsements(txs []*protocol.Transaction, opts Options, workers int) []bool {
	if opts.MSP == nil || opts.Policy == nil {
		return nil
	}
	failed := make([]bool, len(txs))
	check := func(i int) {
		failed[i] = opts.MSP.CheckEndorsements(txs[i], opts.Policy) != nil
	}
	if workers > len(txs) {
		workers = len(txs)
	}
	if workers <= 1 {
		for i := range txs {
			check(i)
		}
		return failed
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(txs) {
					return
				}
				check(i)
			}
		}()
	}
	wg.Wait()
	return failed
}

// ComputeVerdictsPrechecked is ComputeVerdicts with the endorsement phase
// already done: endorseFailed[i], when the slice is non-nil, is the
// (order-independent) endorsement verdict for txs[i]. The sequential pass
// here is only the overlay-coupled MVCC rule.
func ComputeVerdictsPrechecked(base VersionSource, block uint64, txs []*protocol.Transaction, opts Options, endorseFailed []bool) []protocol.ValidationCode {
	codes := make([]protocol.ValidationCode, len(txs))
	overlay := NewOverlay()
	current := func(key string) (seqno.Seq, bool) {
		return overlay.Version(base, key)
	}
	for i, tx := range txs {
		if endorseFailed != nil && endorseFailed[i] {
			codes[i] = protocol.EndorsementFailure
			continue
		}
		if opts.MVCC && !ReadsFresh(tx, current) {
			codes[i] = protocol.MVCCConflict
			continue
		}
		codes[i] = protocol.Valid
		overlay.Record(seqno.Commit(block, uint32(i+1)), tx.RWSet.Writes)
	}
	return codes
}
