package statedb

import (
	"fmt"
	"math/rand"
	"testing"

	"fabricsharp/internal/kvstore"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
)

func mustNew(t *testing.T) *DB {
	t.Helper()
	db, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func apply(t *testing.T, db *DB, block uint64, writes ...BlockWrites) {
	t.Helper()
	if err := db.ApplyBlock(block, writes); err != nil {
		t.Fatal(err)
	}
}

func put(key, value string) protocol.WriteItem {
	return protocol.WriteItem{Key: key, Value: []byte(value)}
}

func TestPaperFigure2Example(t *testing.T) {
	// Reconstructs the states after blocks 1-3 of Figure 2a.
	db := mustNew(t)
	apply(t, db, 1,
		BlockWrites{Pos: 1, Writes: []protocol.WriteItem{put("A", "100")}},
		BlockWrites{Pos: 2, Writes: []protocol.WriteItem{put("B", "101")}},
		BlockWrites{Pos: 3, Writes: []protocol.WriteItem{put("C", "102")}},
	)
	apply(t, db, 2, BlockWrites{Pos: 1, Writes: []protocol.WriteItem{put("B", "201"), put("C", "201")}})
	apply(t, db, 3, BlockWrites{Pos: 3, Writes: []protocol.WriteItem{put("C", "303")}})

	// State after block 3 per the figure: A=(1,1)/100, B=(2,1)/201, C=(3,3)/303.
	checks := []struct {
		key string
		ver seqno.Seq
		val string
	}{
		{"A", seqno.Commit(1, 1), "100"},
		{"B", seqno.Commit(2, 1), "201"},
		{"C", seqno.Commit(3, 3), "303"},
	}
	for _, c := range checks {
		vv, ok := db.Get(c.key)
		if !ok || vv.Version != c.ver || string(vv.Value) != c.val {
			t.Errorf("Get(%s) = %v/%q ok=%v, want %v/%q", c.key, vv.Version, vv.Value, ok, c.ver, c.val)
		}
	}
	// Snapshot after block 2 per the figure: C=(2,1)/201.
	vv, ok, err := db.GetAt("C", 2)
	if err != nil || !ok || vv.Version != seqno.Commit(2, 1) || string(vv.Value) != "201" {
		t.Errorf("GetAt(C, 2) = %v/%q, want (2,1)/201", vv.Version, vv.Value)
	}
	// Snapshot after block 1: C=(1,3)/102.
	vv, _, _ = db.GetAt("C", 1)
	if vv.Version != seqno.Commit(1, 3) || string(vv.Value) != "102" {
		t.Errorf("GetAt(C, 1) = %v/%q, want (1,3)/102", vv.Version, vv.Value)
	}
}

func TestGetAtBeforeCreation(t *testing.T) {
	db := mustNew(t)
	apply(t, db, 1, BlockWrites{Pos: 1, Writes: []protocol.WriteItem{put("K", "v")}})
	if _, ok, _ := db.GetAt("K", 0); ok {
		t.Error("key visible before it was written")
	}
	if _, ok, _ := db.GetAt("missing", 1); ok {
		t.Error("absent key visible")
	}
}

func TestDeleteVisibility(t *testing.T) {
	db := mustNew(t)
	apply(t, db, 1, BlockWrites{Pos: 1, Writes: []protocol.WriteItem{put("K", "v")}})
	apply(t, db, 2, BlockWrites{Pos: 1, Writes: []protocol.WriteItem{{Key: "K", Delete: true}}})
	if _, ok := db.Get("K"); ok {
		t.Error("deleted key still visible at latest")
	}
	if vv, ok, _ := db.GetAt("K", 1); !ok || string(vv.Value) != "v" {
		t.Error("historical read of deleted key failed")
	}
	if _, ok, _ := db.GetAt("K", 2); ok {
		t.Error("deleted key visible at deletion snapshot")
	}
}

func TestOutOfOrderBlocksRejected(t *testing.T) {
	db := mustNew(t)
	apply(t, db, 1)
	if err := db.ApplyBlock(1, nil); err == nil {
		t.Error("duplicate block accepted")
	}
	if err := db.ApplyBlock(0, nil); err == nil {
		t.Error("older block accepted")
	}
	// Gaps are fine (blocks with no writes still advance height elsewhere).
	if err := db.ApplyBlock(5, nil); err != nil {
		t.Errorf("gap block rejected: %v", err)
	}
	if db.Height() != 5 {
		t.Errorf("height = %d want 5", db.Height())
	}
}

func TestSnapshotIsolation(t *testing.T) {
	db := mustNew(t)
	apply(t, db, 1, BlockWrites{Pos: 1, Writes: []protocol.WriteItem{put("X", "old")}})
	snap := db.LatestSnapshot()
	apply(t, db, 2, BlockWrites{Pos: 1, Writes: []protocol.WriteItem{put("X", "new")}})
	vv, ok, err := snap.Get("X")
	if err != nil || !ok || string(vv.Value) != "old" {
		t.Errorf("snapshot read = %q, want old", vv.Value)
	}
	if snap.Block() != 1 {
		t.Errorf("snapshot block = %d", snap.Block())
	}
	if vv, _ := db.Get("X"); string(vv.Value) != "new" {
		t.Error("latest read should see the new value")
	}
}

func TestPruneSnapshots(t *testing.T) {
	db := mustNew(t)
	for b := uint64(1); b <= 20; b++ {
		apply(t, db, b, BlockWrites{Pos: 1, Writes: []protocol.WriteItem{put("hot", fmt.Sprintf("v%d", b))}})
	}
	if n := db.VersionCount("hot"); n != 20 {
		t.Fatalf("expected 20 versions, got %d", n)
	}
	db.PruneSnapshots(15)
	// Versions 15..20 remain (the version at block 15 serves snapshot 15).
	if n := db.VersionCount("hot"); n != 6 {
		t.Fatalf("after prune: %d versions, want 6", n)
	}
	for b := uint64(15); b <= 20; b++ {
		vv, ok, err := db.GetAt("hot", b)
		if err != nil || !ok || string(vv.Value) != fmt.Sprintf("v%d", b) {
			t.Errorf("GetAt(hot,%d) = %q ok=%v err=%v", b, vv.Value, ok, err)
		}
	}
}

func TestPruneDropsDeletedKeys(t *testing.T) {
	db := mustNew(t)
	apply(t, db, 1, BlockWrites{Pos: 1, Writes: []protocol.WriteItem{put("gone", "v")}})
	apply(t, db, 2, BlockWrites{Pos: 1, Writes: []protocol.WriteItem{{Key: "gone", Delete: true}}})
	db.PruneSnapshots(3)
	if db.VersionCount("gone") != 0 {
		t.Error("fully deleted key should be garbage collected")
	}
}

func TestBackingPersistence(t *testing.T) {
	kv, err := kvstore.Open(kvstore.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	db, err := New(Options{Backing: kv})
	if err != nil {
		t.Fatal(err)
	}
	apply(t, db, 1, BlockWrites{Pos: 2, Writes: []protocol.WriteItem{put("persist", "me")}})
	apply(t, db, 2, BlockWrites{Pos: 1, Writes: []protocol.WriteItem{put("persist", "me2"), put("other", "x")}})

	// Reload from the same backing store.
	db2, err := New(Options{Backing: kv})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Height() != 2 {
		t.Errorf("reloaded height = %d want 2", db2.Height())
	}
	vv, ok := db2.Get("persist")
	if !ok || string(vv.Value) != "me2" || vv.Version != seqno.Commit(2, 1) {
		t.Errorf("reloaded value = %q/%v", vv.Value, vv.Version)
	}
	if _, ok := db2.Get("other"); !ok {
		t.Error("second key lost")
	}
}

func TestBackingDeletePersisted(t *testing.T) {
	kv, err := kvstore.Open(kvstore.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	db, _ := New(Options{Backing: kv})
	apply(t, db, 1, BlockWrites{Pos: 1, Writes: []protocol.WriteItem{put("k", "v")}})
	apply(t, db, 2, BlockWrites{Pos: 1, Writes: []protocol.WriteItem{{Key: "k", Delete: true}}})
	db2, _ := New(Options{Backing: kv})
	if _, ok := db2.Get("k"); ok {
		t.Error("deleted key resurrected from backing store")
	}
}

func TestCloneIndependence(t *testing.T) {
	db := mustNew(t)
	apply(t, db, 1, BlockWrites{Pos: 1, Writes: []protocol.WriteItem{put("a", "1")}})
	clone := db.Clone()
	apply(t, db, 2, BlockWrites{Pos: 1, Writes: []protocol.WriteItem{put("a", "2")}})
	if vv, _ := clone.Get("a"); string(vv.Value) != "1" {
		t.Error("clone observed mutation of original")
	}
	if err := clone.ApplyBlock(2, []BlockWrites{{Pos: 1, Writes: []protocol.WriteItem{put("b", "9")}}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Get("b"); ok {
		t.Error("original observed mutation of clone")
	}
}

func TestStateFingerprint(t *testing.T) {
	a := mustNew(t)
	b := mustNew(t)
	apply(t, a, 1, BlockWrites{Pos: 1, Writes: []protocol.WriteItem{put("x", "1"), put("y", "2")}})
	// Same contents via a different block/version history.
	apply(t, b, 3, BlockWrites{Pos: 7, Writes: []protocol.WriteItem{put("y", "2")}})
	apply(t, b, 4, BlockWrites{Pos: 2, Writes: []protocol.WriteItem{put("x", "1")}})
	if a.StateFingerprint() != b.StateFingerprint() {
		t.Error("fingerprint should ignore versions and depend on content only")
	}
	apply(t, a, 2, BlockWrites{Pos: 1, Writes: []protocol.WriteItem{put("x", "other")}})
	if a.StateFingerprint() == b.StateFingerprint() {
		t.Error("fingerprint should change with content")
	}
}

func TestKeysAndForEach(t *testing.T) {
	db := mustNew(t)
	apply(t, db, 1, BlockWrites{Pos: 1, Writes: []protocol.WriteItem{put("a", "1"), put("b", "2"), put("c", "3")}})
	apply(t, db, 2, BlockWrites{Pos: 1, Writes: []protocol.WriteItem{{Key: "b", Delete: true}}})
	if db.Keys() != 2 {
		t.Errorf("Keys = %d want 2", db.Keys())
	}
	seen := map[string]bool{}
	db.ForEachLatest(func(k string, vv VersionedValue) bool {
		seen[k] = true
		return true
	})
	if len(seen) != 2 || !seen["a"] || !seen["c"] {
		t.Errorf("ForEachLatest visited %v", seen)
	}
}

func TestHistoryRandomizedAgainstModel(t *testing.T) {
	// Property: GetAt(key, b) always equals a model rebuilt from the write
	// log truncated at block b.
	db := mustNew(t)
	rng := rand.New(rand.NewSource(99))
	type write struct {
		block uint64
		key   string
		val   string
	}
	var log []write
	for b := uint64(1); b <= 30; b++ {
		var ws []protocol.WriteItem
		for i := 0; i < 5; i++ {
			k := fmt.Sprintf("k%d", rng.Intn(8))
			v := fmt.Sprintf("v%d-%d", b, i)
			ws = append(ws, put(k, v))
			log = append(log, write{b, k, v})
		}
		apply(t, db, b, BlockWrites{Pos: 1, Writes: ws})
	}
	for trial := 0; trial < 200; trial++ {
		b := uint64(rng.Intn(31))
		k := fmt.Sprintf("k%d", rng.Intn(8))
		want := ""
		found := false
		for _, w := range log {
			if w.block <= b && w.key == k {
				want = w.val
				found = true
			}
		}
		vv, ok, err := db.GetAt(k, b)
		if err != nil {
			t.Fatal(err)
		}
		if ok != found || (ok && string(vv.Value) != want) {
			t.Fatalf("GetAt(%s,%d) = %q,%v want %q,%v", k, b, vv.Value, ok, want, found)
		}
	}
}
