// Paperexample walks through the paper's running example (Figure 2 /
// Table 1): five transactions with fixed read/write sets are pushed through
// vanilla Fabric, Fabric++ and FabricSharp, printing who commits what — the
// motivating demonstration that the fine-grained reordering recovers
// transactions both baselines abort.
//
//	go run ./examples/paperexample
package main

import (
	"fmt"
	"math/rand"

	fabricsharp "fabricsharp"
)

func main() {
	fmt.Println(`Figure 2's scenario: after block 2 the state is
  A = 100 @ (1,1)   B = 201 @ (2,1)   C = 201 @ (2,1)
and five transactions are in flight:
  Txn1: R(B) R(C)           (reads across blocks 1 and 2)
  Txn2: R(A) R(B@1,2) W(C)  (stale read of B)
  Txn3: R(B) W(C)
  Txn4: R(C) W(B)
  Txn5: R(C) W(A)`)
	fmt.Println()
	fmt.Println(fabricsharp.Table1())
	fmt.Println(`Reading the table:
  - Vanilla Fabric forbids Txn1 outright (simulation holds the state lock),
    and its strict validation commits only Txn3: Txn4 and Txn5 read the
    version of C that Txn3 just overwrote.
  - Fabric++ reorders inside the block and saves one more transaction, but
    its simulation-phase rule still kills the cross-block reader Txn1.
  - FabricSharp executes Txn1 against the block-2 snapshot (it is snapshot
    consistent - Proposition 1), drops only the truly unreorderable
    conflicts before ordering (Theorem 2), and commits three transactions.`)

	// The same experiment at scale: run all five systems on the contended
	// modified-Smallbank workload and print the throughput ordering.
	fmt.Println("\nSame effect at scale (5s simulated, 700 tps offered, defaults of Table 2):")
	for _, system := range fabricsharp.Systems() {
		gen, err := fabricsharp.NewModifiedSmallbankWorkload(rand.New(rand.NewSource(7)), 0, 0.1, 0.1)
		if err != nil {
			fmt.Println(err)
			return
		}
		res, err := fabricsharp.RunExperiment(fabricsharp.ExperimentConfig{
			System:      system,
			Workload:    gen,
			Seed:        42,
			Duration:    5 * fabricsharp.Second,
			RequestRate: 700,
			BlockSize:   100,
		})
		if err != nil {
			fmt.Println(err)
			return
		}
		if err := fabricsharp.VerifySerializability(res); err != nil {
			fmt.Printf("  %-9s SERIALIZABILITY VIOLATION: %v\n", system, err)
			continue
		}
		fmt.Printf("  %-9s effective %6.1f tps  raw %6.1f tps  abort %4.1f%%  (serializability verified)\n",
			system, res.EffectiveTPS, res.RawTPS, 100*res.AbortRate())
	}
}
