package seqno

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Seq
		want int
	}{
		{Seq{1, 1}, Seq{1, 2}, -1},
		{Seq{1, 2}, Seq{1, 1}, 1},
		{Seq{2, 1}, Seq{2, 1}, 0},
		{Seq{2, 2}, Seq{3, 0}, -1},
		{Seq{3, 0}, Seq{2, 9}, 1},
		{Seq{0, 0}, Seq{0, 0}, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPaperOrderingExample(t *testing.T) {
	// Section 3.1: (2,1) < (2,2) = (2,2) < (3,0).
	if !Commit(2, 1).Less(Commit(2, 2)) {
		t.Error("(2,1) should be < (2,2)")
	}
	if Commit(2, 2).Compare(Commit(2, 2)) != 0 {
		t.Error("(2,2) should equal (2,2)")
	}
	if !Commit(2, 2).Less(Snapshot(2)) {
		t.Error("(2,2) should be < (3,0)")
	}
}

func TestSnapshot(t *testing.T) {
	s := Snapshot(5)
	if s != (Seq{6, 0}) {
		t.Fatalf("Snapshot(5)=%v want (6,0)", s)
	}
	if !s.IsSnapshot() {
		t.Error("snapshot must report IsSnapshot")
	}
	if got := s.SnapshotBlock(); got != 5 {
		t.Errorf("SnapshotBlock=%d want 5", got)
	}
	if Commit(4, 2).IsSnapshot() {
		t.Error("commit seq must not report IsSnapshot")
	}
}

func TestSnapshotBlockGenesis(t *testing.T) {
	if got := (Seq{0, 0}).SnapshotBlock(); got != 0 {
		t.Errorf("genesis snapshot block = %d want 0", got)
	}
}

func TestSnapshotBlockPanicsOnCommitSeq(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-snapshot sequence")
		}
	}()
	_ = Commit(3, 1).SnapshotBlock()
}

func TestString(t *testing.T) {
	if got := Commit(3, 2).String(); got != "(3,2)" {
		t.Errorf("String=%q", got)
	}
}

func TestEncodingRoundTrip(t *testing.T) {
	f := func(block uint64, pos uint32) bool {
		s := Seq{Block: block, Pos: pos}
		got, err := FromBytes(s.Bytes())
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodingOrderPreserving(t *testing.T) {
	f := func(a0, b0 uint64, a1, b1 uint32) bool {
		a := Seq{Block: a0, Pos: a1}
		b := Seq{Block: b0, Pos: b1}
		cmp := a.Compare(b)
		bcmp := bytes.Compare(a.Bytes(), b.Bytes())
		return sign(cmp) == sign(bcmp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestFromBytesShort(t *testing.T) {
	if _, err := FromBytes([]byte{1, 2, 3}); err == nil {
		t.Error("expected error for short encoding")
	}
}

func TestSortConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seqs := make([]Seq, 200)
	for i := range seqs {
		seqs[i] = Seq{Block: uint64(rng.Intn(10)), Pos: uint32(rng.Intn(10))}
	}
	byCompare := append([]Seq(nil), seqs...)
	sort.Slice(byCompare, func(i, j int) bool { return byCompare[i].Less(byCompare[j]) })
	byBytes := append([]Seq(nil), seqs...)
	sort.Slice(byBytes, func(i, j int) bool {
		return bytes.Compare(byBytes[i].Bytes(), byBytes[j].Bytes()) < 0
	})
	for i := range byCompare {
		if byCompare[i] != byBytes[i] {
			t.Fatalf("sort mismatch at %d: %v vs %v", i, byCompare[i], byBytes[i])
		}
	}
}

func TestMaxMin(t *testing.T) {
	a, b := Commit(1, 2), Commit(2, 1)
	if Max(a, b) != b || Max(b, a) != b {
		t.Error("Max wrong")
	}
	if Min(a, b) != a || Min(b, a) != a {
		t.Error("Min wrong")
	}
	if Max(a, a) != a || Min(a, a) != a {
		t.Error("Max/Min of equal values wrong")
	}
}
