package statedb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"fabricsharp/internal/protocol"
)

// TestConcurrentSnapshotReadsNeverTorn hammers the sharded store with a
// committer applying blocks (and periodically pruning) while reader
// goroutines take snapshots and read through GetAt, SnapshotAt, and
// KeysInRange. Every block writes the SAME set of keys (striped across
// shards) with the block number as value, so a snapshot at height h must
// observe value h for every key — any mix of old and new values is a torn
// block. Run under -race this also proves the lock protocol has no data
// races.
func TestConcurrentSnapshotReadsNeverTorn(t *testing.T) {
	const (
		numKeys   = 16
		numBlocks = 400
		readers   = 4
		pruneLag  = 32 // blocks of history retained behind the tip
	)
	db, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, numKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("t:%02d", i)
	}

	var (
		wg       sync.WaitGroup
		stop     atomic.Bool
		failures atomic.Int32
	)
	fail := func(format string, args ...interface{}) {
		if failures.Add(1) <= 5 {
			t.Errorf(format, args...)
		}
		stop.Store(true)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !stop.Load() {
				h := db.Height()
				if h == 0 {
					continue
				}
				// A reader can fall behind the committer; only assert while
				// the snapshot is safely inside the retained history.
				behindHorizon := func() bool {
					tip := db.Height()
					return tip > pruneLag/2 && h < tip-pruneLag/2
				}
				switch r % 3 {
				case 0: // GetAt across all keys
					for _, k := range keys {
						vv, ok, err := db.GetAt(k, h)
						if err != nil {
							fail("GetAt(%q,%d): %v", k, h, err)
							return
						}
						if behindHorizon() {
							break
						}
						if !ok {
							fail("GetAt(%q,%d): key missing at snapshot", k, h)
							return
						}
						if got := string(vv.Value); got != fmt.Sprint(h) {
							fail("torn block: GetAt(%q,%d) = %q, want %d", k, h, got, h)
							return
						}
						if vv.Version.Block != h {
							fail("torn block: GetAt(%q,%d) version block %d", k, h, vv.Version.Block)
							return
						}
					}
				case 1: // SnapshotAt + reads through the snapshot
					snap := db.SnapshotAt(h)
					for _, k := range keys {
						vv, ok, err := snap.Get(k)
						if err != nil {
							fail("snapshot Get(%q,%d): %v", k, h, err)
							return
						}
						if behindHorizon() {
							break
						}
						if !ok || string(vv.Value) != fmt.Sprint(h) {
							fail("torn block via snapshot: Get(%q,%d) = %q,%v", k, h, vv.Value, ok)
							return
						}
					}
				case 2: // KeysInRange must see the full live key set
					got := db.KeysInRange("t:", "t;", h)
					if behindHorizon() {
						break
					}
					if len(got) != numKeys {
						fail("KeysInRange at %d returned %d keys, want %d", h, len(got), numKeys)
						return
					}
				}
			}
		}(r)
	}

	// Committer: every block rewrites every key with the block number,
	// split across several transactions so positions vary, pruning history
	// on a cadence.
	for b := uint64(1); b <= numBlocks && !stop.Load(); b++ {
		var txs []BlockWrites
		for pos := 0; pos < 4; pos++ {
			var ws []protocol.WriteItem
			for i := pos; i < numKeys; i += 4 {
				ws = append(ws, protocol.WriteItem{Key: keys[i], Value: []byte(fmt.Sprint(b))})
			}
			txs = append(txs, BlockWrites{Pos: uint32(pos + 1), Writes: ws})
		}
		if err := db.ApplyBlock(b, txs); err != nil {
			t.Fatalf("ApplyBlock(%d): %v", b, err)
		}
		if b%8 == 0 && b > pruneLag {
			db.PruneSnapshots(b - pruneLag)
		}
	}
	stop.Store(true)
	wg.Wait()

	if db.Height() != numBlocks && failures.Load() == 0 {
		t.Fatalf("height = %d, want %d", db.Height(), numBlocks)
	}
}
