// The auction, token, and analytics workloads open contention profiles the
// Section 5.2 benchmarks do not cover: a single globally-hot object, uniform
// low-contention transfers with a conservation law, and read-heavy range
// scans over a stable key population. They exist to exercise the scheduler
// comparison across conflict structures, not to reproduce a paper figure.

package workload

import (
	"fmt"
	"math/rand"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/statedb"
)

// ---------------------------------------------------------------------------
// Hot-key auction
// ---------------------------------------------------------------------------

// Auction bids on a single auction object: every writing transaction reads
// and writes the same high-bid key, the worst case for MVCC validation and
// the best case for ordering-aware schedulers. Bid amounts ratchet upward
// with occasional ties, so a deterministic share of bids loses at
// endorsement time.
type Auction struct {
	// Bidders is the size of the bidder pool.
	Bidders int
	rng     *rand.Rand
	ceiling int
}

// NewAuction builds the workload over `bidders` bidders (0 means 100).
func NewAuction(rng *rand.Rand, bidders int) (*Auction, error) {
	if bidders == 0 {
		bidders = 100
	}
	if bidders < 1 {
		return nil, fmt.Errorf("workload: auction needs at least one bidder, got %d", bidders)
	}
	return &Auction{Bidders: bidders, rng: rng}, nil
}

// Name implements Generator.
func (a *Auction) Name() string { return "auction" }

// Next implements Generator: 80% bids against the single object, 20%
// read-only watches of the current leader.
func (a *Auction) Next() Op {
	if a.rng.Float64() < 0.20 {
		return Op{Contract: "auction", Function: "watch"}
	}
	bidder := fmt.Sprintf("b%d", a.rng.Intn(a.Bidders))
	// The ceiling ratchets by 0–3 per bid: increments of zero produce bids
	// that cannot beat the current high and fail at endorsement.
	a.ceiling += a.rng.Intn(4)
	return Op{Contract: "auction", Function: "bid", Args: []string{bidder, fmt.Sprint(a.ceiling)}}
}

// Seed implements Generator.
func (a *Auction) Seed(db *statedb.DB) error {
	return SeedGenesis(db, AuctionGenesis())
}

// AuctionGenesis opens the auction: a single object with a zero high bid.
func AuctionGenesis() []protocol.WriteItem {
	return []protocol.WriteItem{{Key: chaincode.AuctionHighKey, Value: []byte("0")}}
}

// ---------------------------------------------------------------------------
// Uniform token transfers
// ---------------------------------------------------------------------------

// TokenTransfer moves tokens between uniformly drawn account pairs — low,
// evenly spread contention under a strict conservation law: no transfer mints
// or burns, so the total supply is invariant whatever the scheduler does.
type TokenTransfer struct {
	// Accounts is the size of the account pool.
	Accounts int
	rng      *rand.Rand
}

// NewTokenTransfer builds the workload over `accounts` accounts (0 means
// 1000). Transfers draw distinct pairs, so a pool of one is rejected.
func NewTokenTransfer(rng *rand.Rand, accounts int) (*TokenTransfer, error) {
	if accounts == 0 {
		accounts = 1000
	}
	if accounts < 2 {
		return nil, fmt.Errorf("workload: token transfers draw distinct account pairs, got a pool of %d", accounts)
	}
	return &TokenTransfer{Accounts: accounts, rng: rng}, nil
}

// Name implements Generator.
func (t *TokenTransfer) Name() string { return "token" }

// Next implements Generator: 90% transfers between distinct uniform
// accounts, 10% balance queries.
func (t *TokenTransfer) Next() Op {
	a := t.rng.Intn(t.Accounts)
	if t.rng.Float64() < 0.10 {
		return Op{Contract: "token", Function: "balance", Args: []string{fmt.Sprint(a)}}
	}
	b := t.rng.Intn(t.Accounts)
	for b == a {
		b = t.rng.Intn(t.Accounts)
	}
	amount := 1 + t.rng.Intn(5)
	return Op{Contract: "token", Function: "transfer", Args: []string{fmt.Sprint(a), fmt.Sprint(b), fmt.Sprint(amount)}}
}

// Seed implements Generator.
func (t *TokenTransfer) Seed(db *statedb.DB) error {
	return SeedGenesis(db, TokenGenesis(t.Accounts))
}

// TokenInitialBalance is every account's genesis balance; the conservation
// invariant checks the live sum against Accounts times this.
const TokenInitialBalance = 1000

// TokenGenesis issues the full supply: n accounts holding
// TokenInitialBalance each.
func TokenGenesis(n int) []protocol.WriteItem {
	writes := make([]protocol.WriteItem, 0, n)
	for i := 0; i < n; i++ {
		writes = append(writes, protocol.WriteItem{
			Key:   chaincode.TokenKey(fmt.Sprint(i)),
			Value: []byte(fmt.Sprint(TokenInitialBalance)),
		})
	}
	return writes
}

// ---------------------------------------------------------------------------
// Read-heavy analytics
// ---------------------------------------------------------------------------

// Analytics mixes read-only range scans over a stable metric population with
// point updates that also maintain a running aggregate: reads dominate, and
// the aggregate key turns every update into a hot-key writer whose lost
// updates the invariant would expose.
type Analytics struct {
	// Items is the size of the metric population.
	Items int
	rng   *rand.Rand
}

// NewAnalytics builds the workload over `items` metrics (0 means 200).
func NewAnalytics(rng *rand.Rand, items int) (*Analytics, error) {
	if items == 0 {
		items = 200
	}
	if items < 1 {
		return nil, fmt.Errorf("workload: analytics needs at least one metric, got %d", items)
	}
	return &Analytics{Items: items, rng: rng}, nil
}

// Name implements Generator.
func (a *Analytics) Name() string { return "analytics" }

// Next implements Generator: 50% full range scans, 20% audits (scan plus
// aggregate read), 30% point updates.
func (a *Analytics) Next() Op {
	switch r := a.rng.Float64(); {
	case r < 0.50:
		return Op{Contract: "analytics", Function: "scan"}
	case r < 0.70:
		return Op{Contract: "analytics", Function: "audit"}
	default:
		id := fmt.Sprint(a.rng.Intn(a.Items))
		delta := 1 + a.rng.Intn(9)
		if a.rng.Intn(2) == 0 {
			delta = -delta
		}
		return Op{Contract: "analytics", Function: "update", Args: []string{id, fmt.Sprint(delta)}}
	}
}

// Seed implements Generator.
func (a *Analytics) Seed(db *statedb.DB) error {
	return SeedGenesis(db, AnalyticsGenesis(a.Items))
}

// AnalyticsInitialValue is every metric's genesis value.
const AnalyticsInitialValue = 100

// AnalyticsGenesis seeds n metrics plus the matching aggregate.
func AnalyticsGenesis(n int) []protocol.WriteItem {
	writes := make([]protocol.WriteItem, 0, n+1)
	for i := 0; i < n; i++ {
		writes = append(writes, protocol.WriteItem{
			Key:   chaincode.MetricKey(fmt.Sprint(i)),
			Value: []byte(fmt.Sprint(AnalyticsInitialValue)),
		})
	}
	writes = append(writes, protocol.WriteItem{
		Key:   chaincode.MetricSumKey,
		Value: []byte(fmt.Sprint(n * AnalyticsInitialValue)),
	})
	return writes
}
