// Package scenario unifies what a workload needs to run end to end — the
// contracts it invokes, the generator that drives it, the genesis state it
// assumes, and the invariant its history must preserve — behind one
// registered descriptor. Every consumer (the discrete-event simulator, the
// loopback fabric network, the process-per-node cluster, the benchmarks, and
// the command-line tools) resolves workloads from the same registry, so a
// scenario added here is immediately runnable everywhere, including the
// chaos convergence matrix.
package scenario

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/statedb"
	"fabricsharp/internal/workload"
)

// Params tunes a scenario. The zero value asks for each scenario's defaults;
// note that Theta, ReadHot, and WriteHot pass through verbatim (zero is a
// legitimate swept value for all three), while Accounts == 0 selects the
// scenario's default pool size.
type Params struct {
	// Accounts sizes the account/bidder/metric pool (0 = scenario default).
	Accounts int
	// Theta is the zipfian skew for scenarios that sample accounts.
	Theta float64
	// ReadHot and WriteHot are the modified-Smallbank hot-access ratios.
	ReadHot  float64
	WriteHot float64
}

// AccountsOr returns the configured pool size, or def when unset.
func (p Params) AccountsOr(def int) int {
	if p.Accounts > 0 {
		return p.Accounts
	}
	return def
}

// Scenario bundles contracts, generator, genesis, and invariant under one
// name. Descriptors are values: registering one never runs code, and every
// field except Verify and Genesis is required.
type Scenario struct {
	// Name is the registry key (also the -workload flag value).
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Contracts returns the chaincode the scenario invokes.
	Contracts func() []chaincode.Contract
	// Generator builds the operation stream. It validates p and owns all
	// randomness through rng (no global sources — determinism contract).
	Generator func(rng *rand.Rand, p Params) (workload.Generator, error)
	// Genesis returns the block-0 write set the scenario assumes, nil/empty
	// when it starts from an empty state. Every replica — in-process
	// databases, wire-cluster peers, and orderer shadow states — installs
	// exactly these writes at workload.GenesisVersion.
	Genesis func(p Params) []protocol.WriteItem
	// Verify checks the scenario's invariant against a post-run state (e.g.
	// money conservation); nil when the scenario has none.
	Verify func(db *statedb.DB, p Params) error
}

// GenesisWrites returns the scenario's genesis write set (nil-safe).
func (s Scenario) GenesisWrites(p Params) []protocol.WriteItem {
	if s.Genesis == nil {
		return nil
	}
	return s.Genesis(p)
}

// Seed installs the scenario's genesis into db through the shared
// workload.SeedGenesis helper — the same path every other replica uses.
func (s Scenario) Seed(db *statedb.DB, p Params) error {
	return workload.SeedGenesis(db, s.GenesisWrites(p))
}

// CheckInvariant runs Verify when the scenario declares one.
func (s Scenario) CheckInvariant(db *statedb.DB, p Params) error {
	if s.Verify == nil {
		return nil
	}
	return s.Verify(db, p)
}

// ---------------------------------------------------------------------------
// Invariant helpers
// ---------------------------------------------------------------------------

// prefixStats sums and counts every live value under prefix, requiring each
// to parse as a signed integer. Summation commutes, so the unordered
// ForEachLatest visit yields a deterministic result.
func prefixStats(db *statedb.DB, prefix string) (sum int64, count int, err error) {
	db.ForEachLatest(func(key string, vv statedb.VersionedValue) bool {
		if !strings.HasPrefix(key, prefix) {
			return true
		}
		v, perr := strconv.ParseInt(string(vv.Value), 10, 64)
		if perr != nil {
			err = fmt.Errorf("scenario: key %q holds %q, not an integer", key, vv.Value)
			return false
		}
		sum += v
		count++
		return true
	})
	return sum, count, err
}

// maxPrefix returns the maximum integer value under prefix (0 when empty).
func maxPrefix(db *statedb.DB, prefix string) (highest int64, err error) {
	db.ForEachLatest(func(key string, vv statedb.VersionedValue) bool {
		if !strings.HasPrefix(key, prefix) {
			return true
		}
		v, perr := strconv.ParseInt(string(vv.Value), 10, 64)
		if perr != nil {
			err = fmt.Errorf("scenario: key %q holds %q, not an integer", key, vv.Value)
			return false
		}
		if v > highest {
			highest = v
		}
		return true
	})
	return highest, err
}

// intAt reads one key as an integer.
func intAt(db *statedb.DB, key string) (int64, error) {
	vv, ok := db.Get(key)
	if !ok {
		return 0, fmt.Errorf("scenario: key %q missing", key)
	}
	v, err := strconv.ParseInt(string(vv.Value), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("scenario: key %q holds %q, not an integer", key, vv.Value)
	}
	return v, nil
}

// wantIntPopulation asserts that exactly `want` keys live under prefix and
// that every value parses as an integer — the structural invariant of the
// fixed-population account scenarios.
func wantIntPopulation(db *statedb.DB, prefix string, want int) error {
	_, count, err := prefixStats(db, prefix)
	if err != nil {
		return err
	}
	if count != want {
		return fmt.Errorf("scenario: %d keys under %q, want %d", count, prefix, want)
	}
	return nil
}
