// Package bench regenerates every table and figure of the paper's
// evaluation (Section 5): one function per exhibit, each assembling the
// pipeline configurations, running them on the simulator, and returning the
// series the paper plots as an ASCII table. The cmd/benchall binary and the
// top-level Benchmark* functions drive these.
package bench

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Comment string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	if t.Comment != "" {
		fmt.Fprintf(&sb, "-- %s\n", t.Comment)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
