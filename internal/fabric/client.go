package fabric

import (
	"fmt"
	"sync/atomic"

	"fabricsharp/internal/consensus"
	"fabricsharp/internal/identity"
	"fabricsharp/internal/protocol"
)

// Client submits transactions to the network.
type Client struct {
	net      *Network
	id       *identity.Identity
	endorser uint64 // round-robin cursor over peers
}

// NewClient enrolls a client with the membership service. An ordering-only
// network has no local peers to endorse, so its clients live in other
// processes and speak the wire protocol instead.
func (n *Network) NewClient(name string) (*Client, error) {
	if len(n.peers) == 0 {
		return nil, fmt.Errorf("fabric: network has no local peers to endorse; submit over the wire instead")
	}
	id, err := n.msp.Enroll(name, identity.RoleClient)
	if err != nil {
		return nil, err
	}
	return &Client{net: n, id: id}, nil
}

// nextTxID mints a network-unique transaction identifier.
func (n *Network) nextTxID(client string) protocol.TxID {
	n.seqMu.Lock()
	n.txSeq++
	seq := n.txSeq
	n.seqMu.Unlock()
	return protocol.TxID(fmt.Sprintf("%s-%06d", client, seq))
}

// SubmitAsync runs the execution phase (endorsement on a round-robin peer)
// and broadcasts the endorsed transaction to the ordering service. It
// returns immediately with the transaction ID and a channel that yields the
// final TxResult.
func (c *Client) SubmitAsync(contract, function string, args ...string) (protocol.TxID, <-chan TxResult, error) {
	tx := &protocol.Transaction{
		ID:       c.net.nextTxID(c.id.ID),
		ClientID: c.id.ID,
		Contract: contract,
		Function: function,
		Args:     args,
	}
	// Execution phase: any one peer endorses (Section 5.1's policy);
	// clients rotate to spread load.
	peer := c.net.peers[atomic.AddUint64(&c.endorser, 1)%uint64(len(c.net.peers))]
	if _, err := peer.Endorse(c.net.registry, tx); err != nil {
		return "", nil, err
	}
	// Fill the key caches while the client still has exclusive access: every
	// orderer and validator downstream reads them.
	tx.RWSet.Precompute()
	ch := make(chan TxResult, 1)
	c.net.waitersMu.Lock()
	c.net.waiters[tx.ID] = ch
	c.net.waitersMu.Unlock()
	if err := c.net.submission.Submit(consensus.Envelope{Tx: tx, SubmittedBy: c.id.ID}); err != nil {
		c.net.waitersMu.Lock()
		delete(c.net.waiters, tx.ID)
		c.net.waitersMu.Unlock()
		return "", nil, err
	}
	return tx.ID, ch, nil
}

// Submit is SubmitAsync plus waiting for the commit (or early abort).
func (c *Client) Submit(contract, function string, args ...string) (TxResult, error) {
	id, ch, err := c.SubmitAsync(contract, function, args...)
	if err != nil {
		return TxResult{}, err
	}
	return c.net.awaitResult(id, ch)
}

// MustSubmit is Submit that fails on abort — convenient in examples.
func (c *Client) MustSubmit(contract, function string, args ...string) (TxResult, error) {
	res, err := c.Submit(contract, function, args...)
	if err != nil {
		return res, err
	}
	if !res.Committed() {
		return res, fmt.Errorf("fabric: transaction %s aborted: %s", res.TxID, res.Code)
	}
	return res, nil
}

// Query evaluates a read-only invocation on one peer without ordering it —
// Fabric's query path. The result payload is whatever the contract set via
// SetResult.
func (c *Client) Query(contract, function string, args ...string) ([]byte, error) {
	peer := c.net.peers[atomic.AddUint64(&c.endorser, 1)%uint64(len(c.net.peers))]
	cc, ok := c.net.registry.Get(contract)
	if !ok {
		return nil, fmt.Errorf("fabric: unknown contract %q", contract)
	}
	_, result, err := simulateOnPeer(cc, function, args, peer)
	return result, err
}
