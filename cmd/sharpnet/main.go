// Command sharpnet boots the in-process blockchain network (library mode)
// and drives a short interactive-style demo workload against it, printing
// the transaction lifecycle — a zero-setup way to watch the
// execute-order-validate pipeline and the Sharp reordering at work.
//
// Usage:
//
//	sharpnet [-system fabric#] [-clients 4] [-txs 200]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"fabricsharp/internal/fabric"
	"fabricsharp/internal/sched"
)

func main() {
	system := flag.String("system", "fabric#", "fabric | fabric++ | fabric# | focc-s | focc-l")
	clients := flag.Int("clients", 4, "concurrent clients")
	txs := flag.Int("txs", 200, "transactions per client")
	hotKeys := flag.Int("hot", 8, "number of contended counters")
	flag.Parse()

	net, err := fabric.NewNetwork(fabric.Options{
		System:       sched.System(*system),
		BlockSize:    50,
		BlockTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer net.Close()

	var committed, aborted int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, err := net.NewClient(fmt.Sprintf("client%d", c))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			for i := 0; i < *txs; i++ {
				key := fmt.Sprintf("counter%d", (c+i)%*hotKeys)
				res, err := client.Submit("kv", "rmw", key, "1")
				switch {
				case err != nil:
					fmt.Fprintf(os.Stderr, "submit error: %v\n", err)
				case res.Committed():
					atomic.AddInt64(&committed, 1)
				default:
					atomic.AddInt64(&aborted, 1)
					if aborted <= 5 {
						fmt.Printf("  aborted %s: %s\n", res.TxID, res.Code)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	net.WaitIdle(5 * time.Second)
	elapsed := time.Since(start)

	fmt.Printf("\nsystem     %s\n", *system)
	fmt.Printf("committed  %d\n", committed)
	fmt.Printf("aborted    %d (%.1f%%)\n", aborted,
		100*float64(aborted)/float64(committed+aborted))
	fmt.Printf("throughput %.0f tx/s (wall clock)\n", float64(committed)/elapsed.Seconds())
	fmt.Printf("height     %d blocks\n", net.Height())

	// Serializability, observably: the counters must sum to the committed
	// increments.
	client, _ := net.NewClient("auditor")
	total := int64(0)
	for k := 0; k < *hotKeys; k++ {
		raw, err := client.Query("kv", "get", fmt.Sprintf("counter%d", k))
		if err == nil && raw != nil {
			var v int64
			fmt.Sscan(string(raw), &v)
			total += v
		}
	}
	fmt.Printf("audit      counters sum to %d (committed increments: %d)\n", total, committed)
	if total != committed {
		fmt.Fprintln(os.Stderr, "AUDIT FAILED: state does not match committed transactions")
		os.Exit(1)
	}
}
