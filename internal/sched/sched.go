// Package sched implements the five ordering-phase concurrency control
// schemes the paper compares (Section 5.1):
//
//	fabric    — vanilla Fabric: FIFO ordering, validation-phase MVCC aborts
//	fabricpp  — Fabric++ [26]: simulation-phase cross-block abort plus
//	            in-block cycle elimination and reordering before formation
//	foccs     — Focc-s: Cahill et al.'s serializable OCC [10] adapted to the
//	            ordering phase (abort on concurrent ww or dangerous rw-rw)
//	foccl     — Focc-l: Ding et al.'s batch reordering [12] (sort-based
//	            greedy, reorder-only, nothing filtered on arrival)
//	sharp     — FabricSharp: the paper's fine-grained reordering
//	            (internal/core)
//
// All schedulers consume the same consensus-ordered transaction stream and
// are deterministic, so replicated orderers running the same scheduler build
// identical ledgers (Section 3.5's agreement property).
package sched

import (
	"fabricsharp/internal/core"
	"fabricsharp/internal/intern"
	"fabricsharp/internal/metrics"
	"fabricsharp/internal/protocol"
)

// System names the five comparable systems.
type System string

// The five systems of the evaluation.
const (
	SystemFabric   System = "fabric"
	SystemFabricPP System = "fabric++"
	SystemFoccS    System = "focc-s"
	SystemFoccL    System = "focc-l"
	SystemSharp    System = "fabric#"
)

// Systems lists all systems in the paper's presentation order.
func Systems() []System {
	return []System{SystemFabric, SystemFabricPP, SystemSharp, SystemFoccS, SystemFoccL}
}

// Dropped records a transaction discarded at block formation.
type Dropped struct {
	Tx   *protocol.Transaction
	Code protocol.ValidationCode
}

// FormationResult is the outcome of cutting one block.
type FormationResult struct {
	// Block is the sealed block number.
	Block uint64
	// Ordered are the transactions to include, in final order.
	Ordered []*protocol.Transaction
	// DroppedTxs were eliminated by the formation-time reordering
	// (Fabric++'s cycle elimination); they never reach the ledger.
	DroppedTxs []Dropped
}

// Scheduler is the pluggable ordering-phase concurrency control. Methods
// are invoked from a single goroutine, mirroring the serialized consensus
// output an orderer consumes.
type Scheduler interface {
	// System identifies the scheme.
	System() System
	// OnArrival processes one transaction in consensus order. It returns
	// protocol.Valid to admit the transaction to the pending set or an
	// early-abort code to drop it before ordering.
	OnArrival(tx *protocol.Transaction) (protocol.ValidationCode, error)
	// OnBlockFormation seals the pending set into the next block. With no
	// pending transactions it returns an empty result without consuming a
	// block number.
	OnBlockFormation() (FormationResult, error)
	// OnBlockCommitted feeds back the validation phase's verdicts, letting
	// schedulers that model committed state (focc-l) stay current. codes[i]
	// corresponds to txs[i].
	OnBlockCommitted(block uint64, txs []*protocol.Transaction, codes []protocol.ValidationCode)
	// NeedsMVCCValidation reports whether the validation phase must still
	// run the stale-read serializability check. Sharp and Focc-s guarantee
	// serializability before ordering, so their peers skip it (Figure 8,
	// "No Concurrency Validation").
	NeedsMVCCValidation() bool
	// PendingCount returns the size of the pending set.
	PendingCount() int
	// FastForward informs a fresh scheduler that blocks 1..height already
	// exist (a restart from a persisted chain): subsequent formations
	// continue from height+1. Clean-shutdown semantics apply — nothing was
	// pending across the restart, and every future snapshot is at or above
	// height, so starting from an empty dependency history is sound. It
	// fails on a scheduler that has already processed transactions.
	// Compaction epochs need no special handling: the trigger is a pure
	// function of sealed block numbers, which FastForward restores, so a
	// restarted replica compacts at the same stream positions as one that
	// ran through.
	FastForward(height uint64) error
	// ResidentKeys returns the number of record keys the scheduler currently
	// holds interned (0 for schedulers that keep no key state). With
	// Options.CompactEvery set this is the quantity epoch compaction bounds;
	// the churn benchmark reports its maximum.
	ResidentKeys() int
	// Timing returns accumulated wall-clock costs of the scheduler itself.
	Timing() Timing
}

// Timing aggregates the scheduler's own processing cost — the quantities
// behind the reordering-latency discussion of Section 5.3.
type Timing struct {
	Arrivals    uint64
	ArrivalNS   int64
	Formations  uint64
	FormationNS int64
}

// MeanFormationMS returns the mean block-formation (reordering) latency in
// milliseconds.
func (t Timing) MeanFormationMS() float64 {
	if t.Formations == 0 {
		return 0
	}
	return float64(t.FormationNS) / float64(t.Formations) / 1e6
}

// MeanArrivalUS returns the mean per-arrival processing latency in
// microseconds.
func (t Timing) MeanArrivalUS() float64 {
	if t.Arrivals == 0 {
		return 0
	}
	return float64(t.ArrivalNS) / float64(t.Arrivals) / 1e3
}

// stopwatch feeds the Timing counters through the metrics seam — the raw
// wall clock stays out of this package (enforced by sharpvet's wallclock
// analyzer); elapsed time is stats-only and never reaches sealed output.
type stopwatch struct{ w metrics.Stopwatch }

func startWatch() stopwatch          { return stopwatch{w: metrics.StartWatch()} }
func (s stopwatch) elapsedNS() int64 { return s.w.ElapsedNS() }

// New constructs a scheduler for the given system with the given options.
func New(system System, opts Options) (Scheduler, error) {
	switch system {
	case SystemFabric:
		return NewFabric(), nil
	case SystemFabricPP:
		return NewFabricPP(opts), nil
	case SystemFoccS:
		return NewFoccS(opts), nil
	case SystemFoccL:
		return NewFoccL(opts), nil
	case SystemSharp:
		return NewSharp(opts), nil
	}
	return nil, errUnknownSystem(system)
}

type errUnknownSystem System

func (e errUnknownSystem) Error() string { return "sched: unknown system " + string(e) }

// Options carries cross-scheduler tunables.
type Options struct {
	// MaxSpan bounds transaction block spans (sharp, focc-s) and sizes the
	// committed-version retention window focc-l's compaction keeps.
	// Default 10.
	MaxSpan uint64
	// BloomBits / BloomHashes size sharp's reachability filters.
	BloomBits   uint64
	BloomHashes int
	// RelayBlocks is sharp's filter relay period.
	RelayBlocks uint64
	// CompactEvery enables deterministic epoch compaction of the
	// key-interning schedulers' tables every CompactEvery sealed blocks
	// (see core.Options.CompactEvery). 0 (default) keeps tables append-only.
	CompactEvery uint64
	// Keys, CW and CR wire an external intern table and committed
	// write/read indices into the schedulers that keep committed key state
	// (sharp, focc-s) — pass core.KVIndex-backed indices resolving through
	// Keys for persistence. nil means fresh in-memory state.
	Keys   *intern.Table
	CW, CR core.VersionIndex
}

// ReadsAcrossBlocks reports whether the simulation read versions from a
// block later than its snapshot — Fabric++'s early-abort criterion (a
// transaction that "reads across blocks", Section 2.1). Vanilla Fabric's
// simulation lock makes this impossible; Fabric++ detects it at the end of
// the (lock-free) simulation and aborts.
func ReadsAcrossBlocks(tx *protocol.Transaction) bool {
	for _, r := range tx.RWSet.Reads {
		if r.Version.Block > tx.SnapshotBlock {
			return true
		}
	}
	return false
}
