package node

import (
	"bytes"
	"testing"
	"time"

	"fabricsharp/internal/sched"
)

// TestPeerRestartCatchesUp kills a peer process mid-run, keeps traffic
// flowing, then boots a replacement with the same identity: the newcomer
// must replay the whole chain over the wire (the subscription's catch-up
// path) and land bit-identical with the surviving peer.
func TestPeerRestartCatchesUp(t *testing.T) {
	ord, peers := bootCluster(t, sched.SystemSharp, 2)
	client, err := DialClient("restart", []string{ord.Addr()}, []string{peers[0].Addr()}, dialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	driveContended(t, client, 30, 2)

	// Take peer1 down mid-stream and keep committing without it.
	if err := peers[1].Close(); err != nil {
		t.Fatal(err)
	}
	driveContended(t, client, 30, 2)

	// A replacement peer1 starts empty and must catch up from block 1.
	reborn, err := StartPeer(PeerConfig{
		Name:         "peer1",
		Listen:       "127.0.0.1:0",
		OrdererAddrs: []string{ord.Addr()},
		System:       sched.SystemSharp,
		PeerNames:    []string{"peer0", "peer1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reborn.Close() })

	checker, err := DialClient("checker", []string{ord.Addr()}, []string{peers[0].Addr(), reborn.Addr()}, dialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer checker.Close()
	awaitConvergence(t, checker, ord)
	if !bytes.Equal(reborn.Chain().TipHash(), peers[0].Chain().TipHash()) {
		t.Fatal("reborn peer's chain diverges from the survivor's")
	}
	if reborn.State().StateFingerprint() != peers[0].State().StateFingerprint() {
		t.Fatal("reborn peer's state diverges from the survivor's")
	}
}

// TestOrdererCloseFailsInFlightSubmits pins the listener-shutdown contract:
// clients with submits in flight get errors within their retry budget —
// never a hang. (SubmitTx retries across failovers, so with the only
// orderer gone the error arrives when SubmitTimeout expires.)
func TestOrdererCloseFailsInFlightSubmits(t *testing.T) {
	ord, peers := bootCluster(t, sched.SystemSharp, 2)
	client, err := DialClient("inflight", []string{ord.Addr()}, peerAddrs(peers), dialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SubmitTimeout = 2 * time.Second

	// Pre-endorse so the submit loop needs only the orderer.
	tx, err := client.Endorse("kv", "put", "k", "v")
	if err != nil {
		t.Fatal(err)
	}

	errCh := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			if err := client.SubmitTx(tx); err != nil {
				errCh <- err
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond) // let some submits land
	if err := ord.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("submit after orderer close reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("submit loop hung after orderer close")
	}
}

// TestNodeDoubleCloseIdempotence: closing any node (or the client) twice is
// safe and returns promptly.
func TestNodeDoubleCloseIdempotence(t *testing.T) {
	ord, peers := bootCluster(t, sched.SystemFabric, 2)
	client, err := DialClient("dc", []string{ord.Addr()}, peerAddrs(peers), dialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2; i++ {
			for _, p := range peers {
				if err := p.Close(); err != nil {
					t.Errorf("peer close #%d: %v", i+1, err)
				}
			}
			if err := ord.Close(); err != nil {
				t.Errorf("orderer close #%d: %v", i+1, err)
			}
			client.Close()
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("double close hung")
	}
}
