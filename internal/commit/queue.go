package commit

import "sync"

// Queue is an unbounded, concurrency-safe FIFO with a channel-based ready
// signal. It carries commit events from peer committers back into the lead
// orderer's select loop: a bounded channel there could deadlock the pipeline
// (orderer blocked fanning out a block while the committer blocks feeding
// results back), so pushes never block and the consumer drains in batches.
type Queue[T any] struct {
	mu    sync.Mutex
	items []T
	ready chan struct{}
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] {
	return &Queue[T]{ready: make(chan struct{}, 1)}
}

// Push appends v. It never blocks.
func (q *Queue[T]) Push(v T) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
	select {
	case q.ready <- struct{}{}:
	default:
	}
}

// Ready returns a channel that receives after a Push. A receive means "the
// queue may be non-empty"; consumers follow it with Drain (a spurious wake
// drains nothing, which is harmless).
func (q *Queue[T]) Ready() <-chan struct{} { return q.ready }

// Drain removes and returns everything queued, in push order.
func (q *Queue[T]) Drain() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.items
	q.items = nil
	return out
}
