// Package fabricsharp is a from-scratch Go reproduction of "A Transactional
// Perspective on Execute-order-validate Blockchains" (Ruan et al., SIGMOD
// 2020): FabricSharp's fine-grained, reordering-based concurrency control
// for EOV blockchains, together with every substrate it runs on — a
// permissioned blockchain (peers, orderers, Kafka-model consensus, ed25519
// membership, chaincode runtime, MVCC state, hash-chained ledger), four
// baseline concurrency controls (Fabric, Fabric++, Focc-s, Focc-l), the
// Smallbank workloads, and a deterministic network simulator that
// regenerates every figure of the paper's evaluation.
//
// Two entry points:
//
//   - Library mode: NewNetwork boots a real, in-process blockchain network;
//     clients submit transactions through the full
//     execute-order-validate pipeline.
//
//     net, _ := fabricsharp.NewNetwork(fabricsharp.NetworkOptions{
//     System: fabricsharp.SystemSharp,
//     })
//     defer net.Close()
//     client, _ := net.NewClient("alice")
//     res, _ := client.Submit("kv", "put", "greeting", "hello")
//
//   - Experiment mode: RunExperiment executes a configuration on the
//     discrete-event simulator and returns throughput/latency/abort
//     measurements; the Figure*/Table* functions regenerate the paper's
//     exhibits.
package fabricsharp

import (
	"context"
	"time"

	"fabricsharp/internal/bench"
	"fabricsharp/internal/chaincode"
	"fabricsharp/internal/core"
	"fabricsharp/internal/fabric"
	"fabricsharp/internal/network"
	"fabricsharp/internal/node"
	"fabricsharp/internal/protocol"
	"fabricsharp/internal/scenario"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/sim"
	"fabricsharp/internal/trace"
	"fabricsharp/internal/workload"
)

// The five systems of the evaluation (Section 5.1).
const (
	// SystemFabric is vanilla Hyperledger Fabric: FIFO ordering and
	// validation-phase MVCC aborts.
	SystemFabric = sched.SystemFabric
	// SystemFabricPP is Fabric++: simulation-phase cross-block aborts plus
	// in-block reordering.
	SystemFabricPP = sched.SystemFabricPP
	// SystemFoccS is the serializable-OCC certifier of Cahill et al.
	// adapted to the ordering phase.
	SystemFoccS = sched.SystemFoccS
	// SystemFoccL is Ding et al.'s batch reordering.
	SystemFoccL = sched.SystemFoccL
	// SystemSharp is the paper's contribution: fine-grained reordering with
	// pre-ordering aborts of unreorderable transactions (Theorem 2).
	SystemSharp = sched.SystemSharp
)

// System identifies a concurrency-control scheme.
type System = sched.System

// Systems lists every scheme.
func Systems() []System { return sched.Systems() }

// ---------------------------------------------------------------------------
// Library mode
// ---------------------------------------------------------------------------

// NetworkOptions configures an in-process blockchain network.
type NetworkOptions = fabric.Options

// Network is a running in-process blockchain network.
type Network = fabric.Network

// Client submits transactions to a Network.
type Client = fabric.Client

// TxResult is a transaction's final fate.
type TxResult = fabric.TxResult

// NewNetwork boots an in-process blockchain network.
func NewNetwork(opts NetworkOptions) (*Network, error) { return fabric.NewNetwork(opts) }

// Contract is a deployable smart contract; Stub is the API it programs
// against. Custom contracts implement Contract and are deployed via
// NetworkOptions.Contracts.
type (
	Contract = chaincode.Contract
	Stub     = chaincode.Stub
)

// ValidationCode classifies a transaction's fate (commit or abort reason).
type ValidationCode = protocol.ValidationCode

// Valid marks a committed transaction.
const Valid = protocol.Valid

// ---------------------------------------------------------------------------
// Experiment mode
// ---------------------------------------------------------------------------

// ExperimentConfig describes one simulated run (system, workload, rates,
// block size, delays).
type ExperimentConfig = network.Config

// ExperimentResult carries a run's measurements.
type ExperimentResult = network.Result

// Time is virtual time; Second / Millisecond are its units.
type Time = sim.Time

// Virtual-time units for ExperimentConfig fields.
const (
	Second      = sim.Second
	Millisecond = sim.Millisecond
)

// RunExperiment executes one configuration on the simulator.
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) { return network.Run(cfg) }

// VerifySerializability checks a run end to end: the committed schedule's
// exact precedence graph must be acyclic and serial re-execution must
// reproduce the final state (Theorems 1 and 2, observably).
func VerifySerializability(res *ExperimentResult) error { return network.VerifySerializability(res) }

// WorkloadGenerator produces the operations clients submit.
type WorkloadGenerator = workload.Generator

// NoOpWorkload returns Figure 1's no-data-access workload.
func NoOpWorkload() WorkloadGenerator { return workload.NoOp{} }

// Workload constructors for the paper's benchmark drivers (Section 5.2).
var (
	// NewSingleModWorkload: single read-modify-writes over n accounts with
	// zipfian skew theta (Figure 1).
	NewSingleModWorkload = workload.NewSingleMod
	// NewModifiedSmallbankWorkload: the Fabric++ evaluation workload —
	// 4 reads + 4 writes over the account pool (0 = the paper's 10k) with
	// read/write hot ratios (Figures 10-14). Errors on parameters that
	// cannot produce the required distinct accounts.
	NewModifiedSmallbankWorkload = workload.NewModifiedSmallbank
	// NewMixedSmallbankWorkload: 50% queries / 30% single-account /
	// 20% two-account with zipfian skew (Figure 15). Errors on pools too
	// small for distinct account pairs.
	NewMixedSmallbankWorkload = workload.NewMixedSmallbank
)

// Scenario bundles a workload's contracts, generator, genesis state, and
// post-run invariant behind one registered name; the registry drives the
// simulator (ExperimentConfig.Scenario), the in-process network, and every
// command-line front end from the same definitions.
type Scenario = scenario.Scenario

// ScenarioParams tunes a named scenario (pool size, skew, hot ratios).
type ScenarioParams = scenario.Params

// Scenarios lists the registered scenario names, sorted.
func Scenarios() []string { return scenario.Names() }

// GetScenario resolves a registered scenario by name.
func GetScenario(name string) (Scenario, bool) { return scenario.Get(name) }

// ExperimentTable is a rendered paper exhibit.
type ExperimentTable = bench.Table

// BenchOptions tunes the exhibit regeneration (Quick shortens windows).
type BenchOptions = bench.Options

// The paper's exhibits, regenerated. See EXPERIMENTS.md for paper-vs-
// measured numbers.
var (
	Figure1  = bench.Figure1
	Table1   = bench.Table1
	Figure10 = bench.Figure10
	Figure11 = bench.Figure11
	Figure12 = bench.Figure12
	Figure13 = bench.Figure13
	Figure14 = bench.Figure14
	Figure15 = bench.Figure15
	// ReorderCost measures the real reordering implementations
	// (Section 5.3's cost-scaling numbers).
	ReorderCost = bench.ReorderCost
	// AllExperiments runs everything in paper order.
	AllExperiments = bench.All
)

// SharpManagerStats exposes the core concurrency-control statistics type
// (hops, spans, phase timings) reported by ExperimentResult.SharpStats.
type SharpManagerStats = core.Stats

// ---------------------------------------------------------------------------
// Cluster mode: open-loop load generation and stage tracing over the wire
// ---------------------------------------------------------------------------

// LoadOptions configures an open-loop load run against a process-per-node
// cluster (cmd/fabricnode): a rate controller paces submissions at
// TargetTPS regardless of completion latency. LoadReport carries the run's
// throughput and scheduled-instant latency quantiles.
type (
	LoadOptions = node.LoadOptions
	LoadReport  = node.LoadReport
)

// RunLoad drives an open-loop load run; cancel ctx to stop early.
func RunLoad(ctx context.Context, opts LoadOptions) (LoadReport, error) {
	return node.RunLoad(ctx, opts)
}

// Stage tracing: every cluster node keeps an always-on ring of per-
// transaction stage timestamps (submit → order → seal → deliver → validate
// → commit). TraceDump is one node's drained ring; TraceTimeline is one
// transaction's cross-node timeline; TraceSummary holds per-stage latency
// quantiles over a merged timeline set.
type (
	TraceStage    = trace.Stage
	TraceEvent    = trace.Event
	TraceDump     = trace.Dump
	TraceTimeline = trace.Timeline
	TraceSummary  = trace.Summary
)

// TraceAt drains one node's stage-tracing ring over the wire.
func TraceAt(addr string, timeout time.Duration) (TraceDump, error) {
	return node.TraceAt(addr, timeout)
}

// FetchTimelines drains every named node's ring and joins the events by
// transaction ID into end-to-end timelines (plus the raw per-node dumps).
func FetchTimelines(addrs []string, timeout time.Duration) ([]TraceTimeline, []TraceDump, error) {
	return node.FetchTimelines(addrs, timeout)
}

// SummarizeTimelines computes stage-transition and submit→commit latency
// quantiles from merged timelines.
func SummarizeTimelines(timelines []TraceTimeline) TraceSummary {
	return trace.Summarize(timelines)
}
