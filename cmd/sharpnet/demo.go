package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"fabricsharp/internal/fabric"
	"fabricsharp/internal/sched"
)

// demoFlags configures `sharpnet demo`: the in-process network session.
type demoFlags struct {
	System  string
	Clients int
	Txs     int
	Hot     int
}

func (f demoFlags) validate() error {
	if f.Clients <= 0 {
		return fmt.Errorf("-clients must be positive, got %d", f.Clients)
	}
	if f.Txs <= 0 {
		return fmt.Errorf("-txs must be positive, got %d", f.Txs)
	}
	if f.Hot <= 0 {
		return fmt.Errorf("-hot must be positive, got %d", f.Hot)
	}
	return nil
}

func cmdDemo(args []string) int {
	fs := flag.NewFlagSet("sharpnet demo", flag.ExitOnError)
	var f demoFlags
	fs.StringVar(&f.System, "system", "fabric#", "fabric | fabric++ | fabric# | focc-s | focc-l")
	fs.IntVar(&f.Clients, "clients", 4, "concurrent clients")
	fs.IntVar(&f.Txs, "txs", 200, "transactions per client")
	fs.IntVar(&f.Hot, "hot", 8, "number of contended counters")
	_ = fs.Parse(args)
	if err := f.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "sharpnet demo:", err)
		return 2
	}
	return demo(f)
}

func demo(f demoFlags) int {
	net, err := fabric.NewNetwork(fabric.Options{
		System:       sched.System(f.System),
		BlockSize:    50,
		BlockTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer net.Close()

	var committed, aborted int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < f.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, err := net.NewClient(fmt.Sprintf("client%d", c))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			for i := 0; i < f.Txs; i++ {
				key := fmt.Sprintf("counter%d", (c+i)%f.Hot)
				res, err := client.Submit("kv", "rmw", key, "1")
				switch {
				case err != nil:
					fmt.Fprintf(os.Stderr, "submit error: %v\n", err)
				case res.Committed():
					atomic.AddInt64(&committed, 1)
				default:
					atomic.AddInt64(&aborted, 1)
					if aborted <= 5 {
						fmt.Printf("  aborted %s: %s\n", res.TxID, res.Code)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	net.WaitIdle(5 * time.Second)
	elapsed := time.Since(start)

	fmt.Printf("\nsystem     %s\n", f.System)
	fmt.Printf("committed  %d\n", committed)
	fmt.Printf("aborted    %d (%.1f%%)\n", aborted,
		100*float64(aborted)/float64(committed+aborted))
	fmt.Printf("throughput %.0f tx/s (wall clock)\n", float64(committed)/elapsed.Seconds())
	fmt.Printf("height     %d blocks\n", net.Height())

	// Serializability, observably: the counters must sum to the committed
	// increments.
	client, _ := net.NewClient("auditor")
	total := int64(0)
	for k := 0; k < f.Hot; k++ {
		raw, err := client.Query("kv", "get", fmt.Sprintf("counter%d", k))
		if err == nil && raw != nil {
			var v int64
			fmt.Sscan(string(raw), &v)
			total += v
		}
	}
	fmt.Printf("audit      counters sum to %d (committed increments: %d)\n", total, committed)
	if total != committed {
		fmt.Fprintln(os.Stderr, "AUDIT FAILED: state does not match committed transactions")
		return 1
	}
	return 0
}
