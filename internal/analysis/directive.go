package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A Directive is one //sharp: suppression comment. Two forms exist:
//
//	//sharp:orderinvariant <reason>   — silences maporder at this site
//	//sharp:allow <analyzer> <reason> — silences the named analyzer
//
// A directive covers diagnostics on its own line (end-of-line comment) or,
// when it stands alone, on the line immediately below (comment-above
// style). The reason is mandatory prose — it is what lands in the
// checked-in suppression inventory, so "temporary" or "" do not review
// well. A directive that silences nothing is itself an error (stale
// suppressions rot the inventory).
type Directive struct {
	Analyzer string // analyzer it silences
	Reason   string
	Pos      token.Position
	File     string // module-relative path (set by the driver)

	used bool
}

const (
	orderInvariantPrefix = "//sharp:orderinvariant"
	allowPrefix          = "//sharp:allow"
	directivePrefix      = "//sharp:"
)

// collectDirectives extracts every //sharp: directive from the package's
// comments. Malformed directives (unknown verb, missing analyzer, missing
// reason) are returned as errors — a typo must not silently un-suppress.
func collectDirectives(fset *token.FileSet, files []*ast.File) ([]*Directive, []error) {
	var dirs []*Directive
	var errs []error
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				d, err := parseDirective(text, fset.Position(c.Pos()))
				if err != nil {
					errs = append(errs, err)
					continue
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, errs
}

func parseDirective(text string, pos token.Position) (*Directive, error) {
	switch {
	case strings.HasPrefix(text, orderInvariantPrefix):
		reason := strings.TrimSpace(text[len(orderInvariantPrefix):])
		if reason == "" {
			return nil, fmt.Errorf("%s: //sharp:orderinvariant needs a reason", fmtPos(pos))
		}
		return &Directive{Analyzer: "maporder", Reason: reason, Pos: pos}, nil
	case strings.HasPrefix(text, allowPrefix):
		rest := strings.TrimSpace(text[len(allowPrefix):])
		name, reason, _ := strings.Cut(rest, " ")
		reason = strings.TrimSpace(reason)
		if name == "" || reason == "" {
			return nil, fmt.Errorf("%s: //sharp:allow needs an analyzer name and a reason", fmtPos(pos))
		}
		if AnalyzerByName(name) == nil {
			return nil, fmt.Errorf("%s: //sharp:allow names unknown analyzer %q", fmtPos(pos), name)
		}
		return &Directive{Analyzer: name, Reason: reason, Pos: pos}, nil
	default:
		return nil, fmt.Errorf("%s: unknown //sharp: directive %q", fmtPos(pos), firstField(text))
	}
}

// covers reports whether d suppresses a diagnostic from analyzer at pos:
// same file, same line or the line directly beneath the directive.
func (d *Directive) covers(analyzer string, pos token.Position) bool {
	if d.Analyzer != analyzer || d.Pos.Filename != pos.Filename {
		return false
	}
	return pos.Line == d.Pos.Line || pos.Line == d.Pos.Line+1
}

func fmtPos(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

func firstField(s string) string {
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i]
	}
	return s
}
