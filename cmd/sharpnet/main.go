// Command sharpnet drives the EOV blockchain two ways:
//
//   - -mode demo (default): boots the in-process network (library mode) and
//     runs a short contended counter workload against it — a zero-setup way
//     to watch the execute-order-validate pipeline and the Sharp reordering
//     at work.
//   - -mode load: acts as a pure wire client against a process-per-node
//     cluster (cmd/fabricnode): endorses SmallBank traffic on real peers
//     over TCP, submits to the orderer, polls results, and finally asserts
//     that every peer converged to bit-identical chain tip hashes and state
//     fingerprints. Exit status 0 means converged; anything else is a
//     failed run. This is what the CI cluster-smoke job runs against three
//     separate OS processes.
//
// Usage:
//
//	sharpnet [-system fabric#] [-clients 4] [-txs 200]
//	sharpnet -mode load -orderer 127.0.0.1:7050 \
//	         -peer-addrs 127.0.0.1:7051,127.0.0.1:7052 \
//	         [-clients 4] [-txs 125] [-accounts 32] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fabricsharp/internal/fabric"
	"fabricsharp/internal/node"
	"fabricsharp/internal/sched"
)

func main() {
	mode := flag.String("mode", "demo", "demo (in-process network) | load (wire client against a fabricnode cluster)")
	system := flag.String("system", "fabric#", "fabric | fabric++ | fabric# | focc-s | focc-l (demo mode)")
	clients := flag.Int("clients", 4, "concurrent clients")
	txs := flag.Int("txs", 200, "transactions per client")
	hotKeys := flag.Int("hot", 8, "number of contended counters (demo mode)")
	ordererAddr := flag.String("orderer", "", "orderer address (load mode)")
	peerAddrs := flag.String("peer-addrs", "", "comma-separated peer addresses (load mode)")
	accounts := flag.Int("accounts", 32, "SmallBank account pool (load mode)")
	seed := flag.Int64("seed", 42, "base seed; client i draws from an explicit rand.Rand seeded with seed+i (load mode)")
	dialTimeout := flag.Duration("dial-timeout", 30*time.Second, "how long to retry dialing the cluster (load mode)")
	flag.Parse()

	switch *mode {
	case "demo":
		demo(*system, *clients, *txs, *hotKeys)
	case "load":
		load(*ordererAddr, splitAddrs(*peerAddrs), *clients, *txs, *accounts, *seed, *dialTimeout)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func splitAddrs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// demo mode: the original in-process session
// ---------------------------------------------------------------------------

func demo(system string, clients, txs, hotKeys int) {
	net, err := fabric.NewNetwork(fabric.Options{
		System:       sched.System(system),
		BlockSize:    50,
		BlockTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer net.Close()

	var committed, aborted int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, err := net.NewClient(fmt.Sprintf("client%d", c))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			for i := 0; i < txs; i++ {
				key := fmt.Sprintf("counter%d", (c+i)%hotKeys)
				res, err := client.Submit("kv", "rmw", key, "1")
				switch {
				case err != nil:
					fmt.Fprintf(os.Stderr, "submit error: %v\n", err)
				case res.Committed():
					atomic.AddInt64(&committed, 1)
				default:
					atomic.AddInt64(&aborted, 1)
					if aborted <= 5 {
						fmt.Printf("  aborted %s: %s\n", res.TxID, res.Code)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	net.WaitIdle(5 * time.Second)
	elapsed := time.Since(start)

	fmt.Printf("\nsystem     %s\n", system)
	fmt.Printf("committed  %d\n", committed)
	fmt.Printf("aborted    %d (%.1f%%)\n", aborted,
		100*float64(aborted)/float64(committed+aborted))
	fmt.Printf("throughput %.0f tx/s (wall clock)\n", float64(committed)/elapsed.Seconds())
	fmt.Printf("height     %d blocks\n", net.Height())

	// Serializability, observably: the counters must sum to the committed
	// increments.
	client, _ := net.NewClient("auditor")
	total := int64(0)
	for k := 0; k < hotKeys; k++ {
		raw, err := client.Query("kv", "get", fmt.Sprintf("counter%d", k))
		if err == nil && raw != nil {
			var v int64
			fmt.Sscan(string(raw), &v)
			total += v
		}
	}
	fmt.Printf("audit      counters sum to %d (committed increments: %d)\n", total, committed)
	if total != committed {
		fmt.Fprintln(os.Stderr, "AUDIT FAILED: state does not match committed transactions")
		os.Exit(1)
	}
}

// ---------------------------------------------------------------------------
// load mode: wire client against a process-per-node cluster
// ---------------------------------------------------------------------------

// smallbankOp draws one contended SmallBank operation from an explicit rng
// (never the global math/rand: each worker owns a deterministic stream, so
// runs are reproducible regardless of scheduling or parallel harnesses).
func smallbankOp(rng *rand.Rand, accounts int) (string, []string) {
	a := fmt.Sprintf("acct%d", rng.Intn(accounts))
	b := fmt.Sprintf("acct%d", rng.Intn(accounts))
	amount := fmt.Sprint(1 + rng.Intn(50))
	switch rng.Intn(5) {
	case 0:
		return "deposit_checking", []string{a, amount}
	case 1:
		return "transact_savings", []string{a, amount}
	case 2:
		return "write_check", []string{a, amount}
	case 3:
		return "amalgamate", []string{a, b}
	default:
		return "send_payment", []string{a, b, amount}
	}
}

func load(ordererAddr string, peers []string, clients, txs, accounts int, seed int64, dialTimeout time.Duration) {
	if ordererAddr == "" || len(peers) == 0 {
		fmt.Fprintln(os.Stderr, "load mode requires -orderer and -peer-addrs")
		os.Exit(2)
	}
	start := time.Now()

	// Phase 0: seed the account pool (blind writes, contention-free).
	seeder, err := node.DialClient("seeder", ordererAddr, peers, dialTimeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i := 0; i < accounts; i++ {
		res, err := seeder.Submit("smallbank", "create_account", fmt.Sprintf("acct%d", i), "1000", "1000")
		if err != nil {
			fmt.Fprintf(os.Stderr, "seeding account %d: %v\n", i, err)
			os.Exit(1)
		}
		if !res.Code.Committed() {
			fmt.Fprintf(os.Stderr, "seeding account %d aborted: %s\n", i, res.Code)
			os.Exit(1)
		}
	}
	seeder.Close()

	// Phase 1: contended SmallBank traffic from independent workers.
	var committed, aborted, failed int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			client, err := node.DialClient(fmt.Sprintf("load%d", c), ordererAddr, peers, dialTimeout)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				atomic.AddInt64(&failed, int64(txs))
				return
			}
			defer client.Close()
			for i := 0; i < txs; i++ {
				function, args := smallbankOp(rng, accounts)
				res, err := client.Submit("smallbank", function, args...)
				switch {
				case err != nil:
					atomic.AddInt64(&failed, 1)
					fmt.Fprintf(os.Stderr, "client %d: %v\n", c, err)
				case res.Code.Committed():
					atomic.AddInt64(&committed, 1)
				default:
					atomic.AddInt64(&aborted, 1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Phase 2: convergence. Every peer must reach the orderer's sealed
	// chain and agree bit for bit.
	checker, err := node.DialClient("checker", ordererAddr, peers, dialTimeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer checker.Close()
	ordStatus, err := checker.OrdererStatus()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\norderer    %d blocks sealed, tip %x\n", ordStatus.Blocks, ordStatus.TipHash)
	fmt.Printf("submitted  %d (%d committed, %d aborted, %d failed) in %.1fs\n",
		int64(accounts)+committed+aborted+failed, committed, aborted, failed, elapsed.Seconds())
	fmt.Printf("throughput %.0f tx/s end-to-end over TCP\n",
		(float64(accounts)+float64(committed+aborted))/elapsed.Seconds())

	deadline := time.Now().Add(60 * time.Second)
	converged := true
	var refState string
	for i := range peers {
		for {
			st, err := checker.PeerStatus(i)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if st.Blocks >= ordStatus.Blocks {
				match := string(st.TipHash) == string(ordStatus.TipHash)
				if i == 0 {
					refState = st.StateHash
				}
				fmt.Printf("peer %-8s %d blocks, height %d, tip %x, state %.16s… match=%v\n",
					st.Name, st.Blocks, st.Height, st.TipHash, st.StateHash, match)
				if !match || st.StateHash != refState {
					converged = false
				}
				break
			}
			if time.Now().After(deadline) {
				fmt.Fprintf(os.Stderr, "peer %d stuck at %d/%d blocks\n", i, st.Blocks, ordStatus.Blocks)
				os.Exit(1)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if failed > 0 {
		fmt.Fprintln(os.Stderr, "LOAD FAILED: some submissions errored")
		os.Exit(1)
	}
	if !converged {
		fmt.Fprintln(os.Stderr, "CONVERGENCE FAILED: peers disagree on chain or state")
		os.Exit(1)
	}
	fmt.Println("CONVERGED: all peers at bit-identical chain tips and state fingerprints")
}
