package identity

import (
	"testing"

	"fabricsharp/internal/protocol"
)

func TestEnrollSignVerify(t *testing.T) {
	svc := NewService()
	alice, err := svc.Enroll("alice", RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello")
	sig := alice.Sign(msg)
	if !svc.Verify("alice", msg, sig) {
		t.Error("valid signature rejected")
	}
	if svc.Verify("alice", []byte("tampered"), sig) {
		t.Error("tampered message accepted")
	}
	if svc.Verify("bob", msg, sig) {
		t.Error("unknown member accepted")
	}
}

func TestDuplicateEnrollmentRejected(t *testing.T) {
	svc := NewService()
	if _, err := svc.Enroll("x", RolePeer); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Enroll("x", RoleClient); err == nil {
		t.Error("duplicate enrollment accepted")
	}
}

func TestRevocation(t *testing.T) {
	svc := NewService()
	p, _ := svc.Enroll("peer1", RolePeer)
	msg := []byte("m")
	sig := p.Sign(msg)
	if !svc.Verify("peer1", msg, sig) {
		t.Fatal("pre-revocation verify failed")
	}
	svc.Revoke("peer1")
	if svc.Verify("peer1", msg, sig) {
		t.Error("revoked member's signature accepted")
	}
	if _, ok := svc.RoleOf("peer1"); ok {
		t.Error("revoked member still has a role")
	}
}

func TestMembersListing(t *testing.T) {
	svc := NewService()
	svc.Enroll("p2", RolePeer)
	svc.Enroll("p1", RolePeer)
	svc.Enroll("c1", RoleClient)
	got := svc.Members(RolePeer)
	if len(got) != 2 || got[0] != "p1" || got[1] != "p2" {
		t.Errorf("Members = %v", got)
	}
}

func TestPolicyTrees(t *testing.T) {
	e := func(ids ...string) map[string]bool {
		m := map[string]bool{}
		for _, id := range ids {
			m[id] = true
		}
		return m
	}
	cases := []struct {
		name   string
		policy Policy
		have   map[string]bool
		want   bool
	}{
		{"signedby-yes", SignedBy("a"), e("a"), true},
		{"signedby-no", SignedBy("a"), e("b"), false},
		{"and-yes", And(SignedBy("a"), SignedBy("b")), e("a", "b"), true},
		{"and-partial", And(SignedBy("a"), SignedBy("b")), e("a"), false},
		{"or-yes", Or(SignedBy("a"), SignedBy("b")), e("b"), true},
		{"or-no", Or(SignedBy("a"), SignedBy("b")), e("c"), false},
		{"2of3-yes", KOutOf(2, SignedBy("a"), SignedBy("b"), SignedBy("c")), e("a", "c"), true},
		{"2of3-no", KOutOf(2, SignedBy("a"), SignedBy("b"), SignedBy("c")), e("c"), false},
		{"nested", And(SignedBy("root"), Or(SignedBy("a"), SignedBy("b"))), e("root", "b"), true},
		{"anypeer", AnyPeerOf("p1", "p2", "p3"), e("p2"), true},
		{"empty-and", And(), e(), true},
	}
	for _, c := range cases {
		if got := c.policy.Satisfied(c.have); got != c.want {
			t.Errorf("%s: Satisfied=%v want %v", c.name, got, c.want)
		}
	}
}

func endorse(t *testing.T, svc *Service, tx *protocol.Transaction, peer *Identity) {
	t.Helper()
	tx.Endorsements = append(tx.Endorsements, protocol.Endorsement{
		EndorserID: peer.ID,
		Signature:  peer.Sign(tx.Digest()),
	})
}

func TestCheckEndorsements(t *testing.T) {
	svc := NewService()
	p1, _ := svc.Enroll("p1", RolePeer)
	p2, _ := svc.Enroll("p2", RolePeer)
	client, _ := svc.Enroll("c", RoleClient)

	tx := &protocol.Transaction{ID: "tx1", Contract: "kv", Function: "put"}
	endorse(t, svc, tx, p1)

	if err := svc.CheckEndorsements(tx, SignedBy("p1")); err != nil {
		t.Errorf("single endorsement rejected: %v", err)
	}
	if err := svc.CheckEndorsements(tx, And(SignedBy("p1"), SignedBy("p2"))); err == nil {
		t.Error("AND policy satisfied with one endorsement")
	}
	endorse(t, svc, tx, p2)
	if err := svc.CheckEndorsements(tx, And(SignedBy("p1"), SignedBy("p2"))); err != nil {
		t.Errorf("two endorsements rejected: %v", err)
	}

	// Clients cannot endorse even with a valid signature.
	tx2 := &protocol.Transaction{ID: "tx2"}
	tx2.Endorsements = []protocol.Endorsement{{EndorserID: "c", Signature: client.Sign(tx2.Digest())}}
	if err := svc.CheckEndorsements(tx2, SignedBy("c")); err == nil {
		t.Error("client endorsement counted")
	}
}

func TestEndorsementBindsRWSet(t *testing.T) {
	// An endorsement signs the digest of the simulation results; mutating
	// the write set afterwards must invalidate it (no-creation property).
	svc := NewService()
	p1, _ := svc.Enroll("p1", RolePeer)
	tx := &protocol.Transaction{
		ID:    "tx",
		RWSet: protocol.RWSet{Writes: []protocol.WriteItem{{Key: "k", Value: []byte("honest")}}},
	}
	endorse(t, svc, tx, p1)
	tx.RWSet.Writes[0].Value = []byte("tampered")
	if err := svc.CheckEndorsements(tx, SignedBy("p1")); err == nil {
		t.Error("tampered rwset passed endorsement check")
	}
}

func TestRevokedEndorserDoesNotCount(t *testing.T) {
	svc := NewService()
	p1, _ := svc.Enroll("p1", RolePeer)
	tx := &protocol.Transaction{ID: "tx"}
	endorse(t, svc, tx, p1)
	svc.Revoke("p1")
	if err := svc.CheckEndorsements(tx, SignedBy("p1")); err == nil {
		t.Error("revoked endorser satisfied policy")
	}
}
