package chaincode

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"testing"

	"fabricsharp/internal/protocol"
	"fabricsharp/internal/seqno"
)

// mapReader is a StateReader over a plain map with a fixed version.
type mapReader struct {
	m     map[string]string
	ver   seqno.Seq
	reads int
	fail  error
}

func (r *mapReader) Read(key string) ([]byte, seqno.Seq, bool, error) {
	r.reads++
	if r.fail != nil {
		return nil, seqno.Seq{}, false, r.fail
	}
	v, ok := r.m[key]
	if !ok {
		return nil, seqno.Seq{}, false, nil
	}
	return []byte(v), r.ver, true, nil
}

func simulate(t *testing.T, c Contract, fn string, args []string, state map[string]string) protocol.RWSet {
	t.Helper()
	rw, err := Simulate(c, fn, args, &mapReader{m: state, ver: seqno.Commit(1, 1)})
	if err != nil {
		t.Fatalf("Simulate(%s %s): %v", fn, args, err)
	}
	return rw
}

func writesAsMap(rw protocol.RWSet) map[string]string {
	out := map[string]string{}
	for _, w := range rw.Writes {
		if !w.Delete {
			out[w.Key] = string(w.Value)
		}
	}
	return out
}

func TestKVNoop(t *testing.T) {
	rw := simulate(t, KVContract{}, "noop", nil, nil)
	if len(rw.Reads) != 0 || len(rw.Writes) != 0 {
		t.Errorf("noop produced rwset %v", rw)
	}
}

func TestKVPutGetDel(t *testing.T) {
	rw := simulate(t, KVContract{}, "put", []string{"k", "v"}, nil)
	if len(rw.Reads) != 0 || len(rw.Writes) != 1 || string(rw.Writes[0].Value) != "v" {
		t.Errorf("put rwset = %+v", rw)
	}
	rw = simulate(t, KVContract{}, "get", []string{"k"}, map[string]string{"k": "v"})
	if len(rw.Reads) != 1 || rw.Reads[0].Version != seqno.Commit(1, 1) {
		t.Errorf("get rwset = %+v", rw)
	}
	rw = simulate(t, KVContract{}, "del", []string{"k"}, nil)
	if len(rw.Writes) != 1 || !rw.Writes[0].Delete {
		t.Errorf("del rwset = %+v", rw)
	}
}

func TestKVRmw(t *testing.T) {
	rw := simulate(t, KVContract{}, "rmw", []string{"counter", "5"}, map[string]string{"counter": "37"})
	if got := writesAsMap(rw)["counter"]; got != "42" {
		t.Errorf("rmw wrote %q want 42", got)
	}
	// Absent key treated as zero.
	rw = simulate(t, KVContract{}, "rmw", []string{"fresh", "7"}, nil)
	if got := writesAsMap(rw)["fresh"]; got != "7" {
		t.Errorf("rmw on absent wrote %q want 7", got)
	}
	// The read of the absent key must still be recorded (phantom check).
	if len(rw.Reads) != 1 || rw.Reads[0].Key != "fresh" {
		t.Errorf("absent read not recorded: %+v", rw.Reads)
	}
}

func TestKVTransfer(t *testing.T) {
	state := map[string]string{"a": "100", "b": "10"}
	rw := simulate(t, KVContract{}, "transfer", []string{"a", "b", "30"}, state)
	w := writesAsMap(rw)
	if w["a"] != "70" || w["b"] != "40" {
		t.Errorf("transfer writes = %v", w)
	}
	if _, err := Simulate(KVContract{}, "transfer", []string{"a", "b", "1000"}, &mapReader{m: state}); err == nil {
		t.Error("overdraft accepted")
	}
}

func TestUnknownFunctionAndArity(t *testing.T) {
	for _, c := range []Contract{KVContract{}, Smallbank{}, ModifiedSmallbank{}, SupplyChain{}} {
		if _, err := Simulate(c, "no_such_fn", nil, &mapReader{}); err == nil {
			t.Errorf("%s accepted unknown function", c.Name())
		}
	}
	if _, err := Simulate(KVContract{}, "put", []string{"only-key"}, &mapReader{}); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestReadYourFirstObservation(t *testing.T) {
	// Fabric semantics: repeated reads return the first observation and
	// record a single readset entry; reads never observe own writes.
	c := KVContract{}
	_ = c
	reader := &mapReader{m: map[string]string{"k": "1"}, ver: seqno.Commit(2, 3)}
	stub := &recordingStub{
		reader:    reader,
		function:  "custom",
		readCache: map[string]cachedRead{},
		writeIdx:  map[string]int{},
	}
	v1, _ := stub.GetState("k")
	if err := stub.PutState("k", []byte("99")); err != nil {
		t.Fatal(err)
	}
	v2, _ := stub.GetState("k")
	if string(v1) != "1" || string(v2) != "1" {
		t.Errorf("reads = %q,%q want 1,1 (no read-your-writes)", v1, v2)
	}
	if reader.reads != 1 {
		t.Errorf("reader hit %d times, want 1", reader.reads)
	}
	if len(stub.reads) != 1 {
		t.Errorf("readset has %d entries, want 1", len(stub.reads))
	}
}

func TestWriteSetKeepsFinalValue(t *testing.T) {
	stub := &recordingStub{
		reader:    &mapReader{},
		readCache: map[string]cachedRead{},
		writeIdx:  map[string]int{},
	}
	stub.PutState("k", []byte("v1"))
	stub.PutState("k", []byte("v2"))
	stub.DelState("x")
	stub.PutState("x", []byte("back"))
	if len(stub.writes) != 2 {
		t.Fatalf("writeset has %d entries, want 2", len(stub.writes))
	}
	w := writesAsMap(protocol.RWSet{Writes: stub.writes})
	if w["k"] != "v2" || w["x"] != "back" {
		t.Errorf("final writes = %v", w)
	}
}

func TestSimulationErrorPropagates(t *testing.T) {
	boom := errors.New("disk on fire")
	_, err := Simulate(KVContract{}, "get", []string{"k"}, &mapReader{fail: boom})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestSmallbankLifecycle(t *testing.T) {
	sb := Smallbank{}
	state := map[string]string{}
	apply := func(fn string, args ...string) {
		t.Helper()
		rw := simulate(t, sb, fn, args, state)
		for k, v := range writesAsMap(rw) {
			state[k] = v
		}
	}
	apply("create_account", "alice", "100", "50")
	apply("create_account", "bob", "20", "5")
	apply("deposit_checking", "alice", "10") // alice checking 110
	apply("write_check", "alice", "30")      // alice checking 80
	apply("transact_savings", "bob", "45")   // bob savings 50
	apply("send_payment", "alice", "bob", "25")
	apply("amalgamate", "bob", "alice")

	if state[CheckingKey("alice")] != "105" { // 80-25 + (bob savings 50)
		t.Errorf("alice checking = %s", state[CheckingKey("alice")])
	}
	if state[SavingsKey("bob")] != "0" {
		t.Errorf("bob savings = %s", state[SavingsKey("bob")])
	}
	if state[CheckingKey("bob")] != "45" {
		t.Errorf("bob checking = %s", state[CheckingKey("bob")])
	}
	// Query is read-only.
	rw := simulate(t, sb, "query", []string{"alice"}, state)
	if len(rw.Writes) != 0 || len(rw.Reads) != 2 {
		t.Errorf("query rwset = %+v", rw)
	}
}

func TestSmallbankMoneyConservation(t *testing.T) {
	// send_payment and amalgamate conserve total funds.
	state := map[string]string{
		CheckingKey("a"): "70", SavingsKey("a"): "30",
		CheckingKey("b"): "40", SavingsKey("b"): "60",
	}
	total := func(m map[string]string) int64 {
		var sum int64
		for _, v := range m {
			var x int64
			fmt.Sscanf(v, "%d", &x)
			sum += x
		}
		return sum
	}
	before := total(state)
	for _, op := range [][]string{
		{"send_payment", "a", "b", "15"},
		{"amalgamate", "a", "b"},
		{"send_payment", "b", "a", "5"},
	} {
		rw := simulate(t, Smallbank{}, op[0], op[1:], state)
		for k, v := range writesAsMap(rw) {
			state[k] = v
		}
	}
	if after := total(state); after != before {
		t.Errorf("money not conserved: %d -> %d", before, after)
	}
}

func TestSmallbankMissingAccount(t *testing.T) {
	if _, err := Simulate(Smallbank{}, "query", []string{"ghost"}, &mapReader{m: map[string]string{}}); err == nil {
		t.Error("query of missing account succeeded")
	}
}

func TestModifiedSmallbankOp(t *testing.T) {
	state := map[string]string{}
	for i := 0; i < 8; i++ {
		state[AccountKey(fmt.Sprint(i))] = fmt.Sprint((i + 1) * 100)
	}
	rw := simulate(t, ModifiedSmallbank{}, "op",
		[]string{"0", "1", "2", "3", "4", "5", "6", "7"}, state)
	if len(rw.Reads) != 4 {
		t.Errorf("reads = %d want 4", len(rw.Reads))
	}
	if len(rw.Writes) != 4 {
		t.Errorf("writes = %d want 4", len(rw.Writes))
	}
	// sum = 100+200+300+400 = 1000; writes are sum/4 + i for i in 4..7.
	w := writesAsMap(rw)
	for i := 4; i < 8; i++ {
		want := fmt.Sprint(250 + i)
		if got := w[AccountKey(fmt.Sprint(i))]; got != want {
			t.Errorf("write %d = %q want %q", i, got, want)
		}
	}
}

func TestModifiedSmallbankDeterministic(t *testing.T) {
	// Same reads => same writes: required by the serializability
	// re-execution check.
	state := map[string]string{}
	for i := 0; i < 4; i++ {
		state[AccountKey(fmt.Sprint(i))] = "10"
	}
	args := []string{"0", "1", "2", "3", "0", "1", "2", "3"}
	a := simulate(t, ModifiedSmallbank{}, "op", args, state)
	b := simulate(t, ModifiedSmallbank{}, "op", args, state)
	if fmt.Sprint(writesAsMap(a)) != fmt.Sprint(writesAsMap(b)) {
		t.Error("op is not deterministic")
	}
}

func TestSupplyChainLifecycle(t *testing.T) {
	state := map[string]string{}
	apply := func(fn string, args ...string) {
		t.Helper()
		rw := simulate(t, SupplyChain{}, fn, args, state)
		for k, v := range writesAsMap(rw) {
			state[k] = v
		}
	}
	apply("register", "crate-7", "acme", "shenzhen")
	apply("ship", "crate-7", "singapore")
	apply("ship", "crate-7", "rotterdam")
	apply("transfer", "crate-7", "globex")
	apply("inspect", "crate-7", "customs-cleared")

	rw := simulate(t, SupplyChain{}, "track", []string{"crate-7"}, state)
	if len(rw.Writes) != 0 {
		t.Error("track must be read-only")
	}
	var it Item
	if err := jsonUnmarshal(state[ItemKey("crate-7")], &it); err != nil {
		t.Fatal(err)
	}
	if it.Owner != "globex" || it.Location != "rotterdam" || it.Hops != 2 || it.Status != "customs-cleared" {
		t.Errorf("item = %+v", it)
	}
	if _, err := Simulate(SupplyChain{}, "ship", []string{"ghost", "nowhere"}, &mapReader{m: state}); err == nil {
		t.Error("shipping unknown item succeeded")
	}
}

func jsonUnmarshal(s string, v any) error {
	return json.Unmarshal([]byte(s), v)
}

// rangeMapReader adds RangeReader to mapReader.
type rangeMapReader struct{ mapReader }

func (r *rangeMapReader) ReadRange(start, end string) ([]string, error) {
	var keys []string
	for k := range r.m {
		if k >= start && (end == "" || k < end) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

func TestGetStateRangeRecordsReads(t *testing.T) {
	reader := &rangeMapReader{mapReader{m: map[string]string{
		"item:a": "1", "item:b": "2", "other:z": "9",
	}, ver: seqno.Commit(2, 1)}}
	stub := &recordingStub{
		reader:    reader,
		readCache: map[string]cachedRead{},
		writeIdx:  map[string]int{},
	}
	out, err := stub.GetStateRange("item:", "item;")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || string(out["item:a"]) != "1" || string(out["item:b"]) != "2" {
		t.Errorf("range = %v", out)
	}
	// Each returned key became a versioned readset entry.
	if len(stub.reads) != 2 {
		t.Fatalf("readset = %+v", stub.reads)
	}
	for _, r := range stub.reads {
		if r.Version != seqno.Commit(2, 1) {
			t.Errorf("read %s version %v", r.Key, r.Version)
		}
	}
}

func TestGetStateRangeWithoutSupportFails(t *testing.T) {
	stub := &recordingStub{
		reader:    &mapReader{m: map[string]string{}},
		readCache: map[string]cachedRead{},
		writeIdx:  map[string]int{},
	}
	if _, err := stub.GetStateRange("a", "z"); err == nil {
		t.Error("range scan on a non-range reader succeeded")
	}
}

func TestSupplyChainManifest(t *testing.T) {
	state := map[string]string{}
	apply := func(fn string, args ...string) {
		t.Helper()
		rw := simulate(t, SupplyChain{}, fn, args, state)
		for k, v := range writesAsMap(rw) {
			state[k] = v
		}
	}
	apply("register", "beta", "o", "l")
	apply("register", "alpha", "o", "l")
	reader := &rangeMapReader{mapReader{m: state, ver: seqno.Commit(1, 1)}}
	rw, result, err := SimulateFull(SupplyChain{}, "manifest", nil, reader)
	if err != nil {
		t.Fatal(err)
	}
	if string(result) != `["alpha","beta"]` {
		t.Errorf("manifest = %s", result)
	}
	if len(rw.Writes) != 0 || len(rw.Reads) != 2 {
		t.Errorf("manifest rwset = %+v", rw)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry(KVContract{}, Smallbank{}, ModifiedSmallbank{}, SupplyChain{})
	if _, ok := r.Get("smallbank"); !ok {
		t.Error("smallbank missing")
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("phantom contract found")
	}
	names := r.Names()
	if len(names) != 4 || names[0] != "kv" {
		t.Errorf("Names = %v", names)
	}
}

func TestRWSetKeyHelpers(t *testing.T) {
	rw := protocol.RWSet{
		Reads: []protocol.ReadItem{{Key: "b"}, {Key: "a"}, {Key: "b"}},
		Writes: []protocol.WriteItem{
			{Key: "z"}, {Key: "y"}, {Key: "z"},
		},
	}
	if got := rw.ReadKeys(); fmt.Sprint(got) != "[a b]" {
		t.Errorf("ReadKeys = %v", got)
	}
	if got := rw.WriteKeys(); fmt.Sprint(got) != "[y z]" {
		t.Errorf("WriteKeys = %v", got)
	}
}
