package fabricsharp

// One benchmark per table/figure of the paper's evaluation. Each runs the
// corresponding experiment sweep on the deterministic simulator (quick
// windows) and reports the headline series as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. cmd/benchall prints the full tables.

import (
	"fmt"
	"math/rand"
	"testing"

	"fabricsharp/internal/bench"
	"fabricsharp/internal/network"
	"fabricsharp/internal/sched"
	"fabricsharp/internal/sim"
	"fabricsharp/internal/workload"
)

var benchOpts = bench.Options{Quick: true, Seed: 42}

func reportTable(b *testing.B, tables ...*bench.Table) {
	b.Helper()
	for _, t := range tables {
		b.Log("\n" + t.String())
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, Figure1(benchOpts))
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, Table1())
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, Figure10(benchOpts)...)
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, Figure11(benchOpts)...)
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, Figure12(benchOpts)...)
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, Figure13(benchOpts)...)
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, Figure14(benchOpts)...)
	}
}

func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, Figure15(benchOpts))
	}
}

func BenchmarkReorderCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, ReorderCost())
	}
}

// BenchmarkSingleRunPerSystem measures one default-configuration run per
// system and reports effective throughput — the quickest way to see the
// paper's headline ordering (Fabric# > Fabric++ > Fabric > Focc-l > Focc-s
// at the default contention).
func BenchmarkSingleRunPerSystem(b *testing.B) {
	for _, system := range sched.Systems() {
		system := system
		b.Run(string(system), func(b *testing.B) {
			var eff float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(42))
				res, err := network.Run(network.Config{
					System:      system,
					Workload:    workload.NewModifiedSmallbank(rng, 0.1, 0.1),
					Seed:        42,
					Duration:    5 * sim.Second,
					RequestRate: 700,
					BlockSize:   100,
				})
				if err != nil {
					b.Fatal(err)
				}
				eff = res.EffectiveTPS
			}
			b.ReportMetric(eff, "effective-tps")
		})
	}
}

// BenchmarkSharpArrival micro-benchmarks the core manager's arrival path
// (Algorithm 2 + Algorithm 4) under a contended stream.
func BenchmarkSharpArrival(b *testing.B) {
	s := sched.NewSharp(sched.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := mkBenchTx(fmt.Sprintf("t%d", i), i)
		if _, err := s.OnArrival(tx); err != nil {
			b.Fatal(err)
		}
		if s.PendingCount() >= 100 {
			if _, err := s.OnBlockFormation(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkValidationMVCC micro-benchmarks the validation phase.
func BenchmarkValidationMVCC(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := workload.NewModifiedSmallbank(rng, 0.1, 0.1)
	res, err := network.Run(network.Config{
		System: sched.SystemFabric, Workload: w, Seed: 1,
		Duration: 2 * sim.Second, RequestRate: 400, BlockSize: 50,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := network.VerifySerializability(res); err != nil {
			b.Fatal(err)
		}
	}
}
