package node

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fabricsharp/internal/metrics"
	"fabricsharp/internal/scenario"
)

// LoadOptions configures an open-loop load run against a process-per-node
// cluster. Open-loop means submissions are scheduled by a rate controller at
// TargetTPS regardless of how long earlier submissions take to complete —
// the arrival process a real client population generates — so rising
// latency shows up as rising latency, not as a silently collapsing offered
// rate (the closed-loop artifact known as coordinated omission).
type LoadOptions struct {
	// Orderers and Peers are the cluster's wire addresses.
	Orderers []string
	Peers    []string
	// TargetTPS is the offered submission rate (required, > 0).
	TargetTPS int
	// Duration is how long the generator offers load (required, > 0).
	Duration time.Duration
	// Workload names a registered scenario (default "msmallbank"). The
	// cluster must have been booted with the same workload/accounts genesis:
	// scenario genesis seeds the whole account pool at block 0, which is
	// what makes multi-million-account pools practical — no per-account
	// setup transactions.
	Workload string
	// Accounts sizes the scenario's account pool (0 = scenario default).
	Accounts int
	// Theta is the zipfian skew over the account pool; ReadHot/WriteHot are
	// the modified-SmallBank hot-access ratios. All pass through to
	// scenario.Params verbatim.
	Theta    float64
	ReadHot  float64
	WriteHot float64
	// Workers bounds submission concurrency (default 4×GOMAXPROCS). Each
	// worker owns one wire client and one explicit rng (Seed+worker), so a
	// run is reproducible regardless of scheduling.
	Workers int
	// Seed is the base workload seed (worker w draws from Seed+w).
	Seed int64
	// DialTimeout bounds each worker's cluster dial (default 30s).
	DialTimeout time.Duration
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Workload == "" {
		o.Workload = "msmallbank"
	}
	if o.Workers <= 0 {
		o.Workers = 4 * runtime.GOMAXPROCS(0)
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 30 * time.Second
	}
	return o
}

// Validate checks the option shape without touching the network.
func (o LoadOptions) Validate() error {
	o = o.withDefaults()
	if len(o.Orderers) == 0 || len(o.Peers) == 0 {
		return fmt.Errorf("node: load needs orderer and peer addresses")
	}
	if o.TargetTPS <= 0 {
		return fmt.Errorf("node: load needs a positive target TPS, got %d", o.TargetTPS)
	}
	if o.Duration <= 0 {
		return fmt.Errorf("node: load needs a positive duration, got %s", o.Duration)
	}
	if _, ok := scenario.Get(o.Workload); !ok {
		return fmt.Errorf("node: unknown workload %q (have %s)", o.Workload, strings.Join(scenario.Names(), ", "))
	}
	return nil
}

// LoadReport summarizes one open-loop run.
type LoadReport struct {
	// TargetTPS echoes the configured rate; Offered counts submissions the
	// pacer scheduled; Dropped counts scheduled submissions that could not
	// even enqueue (the cluster fell catastrophically behind — nonzero
	// Dropped means the achieved numbers understate the overload).
	TargetTPS int
	Offered   uint64
	Dropped   uint64
	// Committed, Aborted, and Failed partition the completed submissions.
	Committed uint64
	Aborted   uint64
	Failed    uint64
	// Elapsed is the wall time from first scheduled submission to last
	// completion; AchievedTPS is completed submissions (committed+aborted)
	// over Elapsed.
	Elapsed     time.Duration
	AchievedTPS float64
	// Latency quantiles (milliseconds), end to end from each submission's
	// *scheduled* instant to its resolved verdict — queueing delay counts,
	// so the numbers stay honest under overload.
	LatencyP50MS  float64
	LatencyP90MS  float64
	LatencyP99MS  float64
	LatencyP999MS float64
	LatencyMaxMS  float64
	// CommittedIDs lists every transaction ID acked committed — the ground
	// truth trace coverage is asserted against.
	CommittedIDs []string
}

// loadJobBuffer bounds the pacer→worker queue. At the cap, ~1M scheduled
// stamps (8MiB) can back up before the pacer counts drops; below it the
// buffer holds the whole run, so the pacer never blocks and the offered
// rate never degrades to closed-loop.
const loadJobBuffer = 1 << 20

// RunLoad drives an open-loop load run: a token-bucket pacer schedules
// submissions at TargetTPS onto a deep queue, and a fixed worker pool
// executes them (endorse → submit → poll) against the cluster. Latency is
// measured from the scheduled instant, and an HDR histogram (lock-free,
// fixed memory) absorbs any sample volume. Cancel ctx to stop early; the
// report covers whatever completed.
func RunLoad(ctx context.Context, opts LoadOptions) (LoadReport, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return LoadReport{}, err
	}
	sc, _ := scenario.Get(opts.Workload)
	params := scenario.Params{
		Accounts: opts.Accounts,
		Theta:    opts.Theta,
		ReadHot:  opts.ReadHot,
		WriteHot: opts.WriteHot,
	}
	// Fail fast on a bad workload shape before dialing anything.
	if _, err := sc.Generator(rand.New(rand.NewSource(opts.Seed)), params); err != nil {
		return LoadReport{}, fmt.Errorf("node: load workload: %w", err)
	}

	total := uint64(float64(opts.TargetTPS) * opts.Duration.Seconds())
	if total == 0 {
		total = 1
	}
	depth := total
	if depth > loadJobBuffer {
		depth = loadJobBuffer
	}
	jobs := make(chan time.Time, depth)

	var (
		offered, dropped           atomic.Uint64
		committed, aborted, failed atomic.Uint64
		latency                    metrics.HDRHistogram
		idsMu                      sync.Mutex
		committedIDs               []string
		errOnce                    sync.Once
		firstErr                   error
	)
	setErr := func(err error) { errOnce.Do(func() { firstErr = err }) }

	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)))
			gen, err := sc.Generator(rng, params)
			if err != nil {
				setErr(fmt.Errorf("node: load worker %d: %w", w, err))
				return
			}
			client, err := DialClient(fmt.Sprintf("load%d", w), opts.Orderers, opts.Peers, opts.DialTimeout)
			if err != nil {
				setErr(fmt.Errorf("node: load worker %d: %w", w, err))
				return
			}
			defer client.Close()
			for scheduled := range jobs {
				op := gen.Next()
				res, err := client.Submit(op.Contract, op.Function, op.Args...)
				latency.Record(time.Since(scheduled).Nanoseconds())
				switch {
				case err != nil && strings.Contains(err.Error(), "endorsement refused"):
					// The contract itself refused (e.g. a losing auction
					// bid): an abort by design, not a failure.
					aborted.Add(1)
				case err != nil:
					failed.Add(1)
				case res.Code.Committed():
					committed.Add(1)
					idsMu.Lock()
					committedIDs = append(committedIDs, res.TxID)
					idsMu.Unlock()
				default:
					aborted.Add(1)
				}
			}
		}(w)
	}

	// The pacer: schedule submission i at start + i/TargetTPS, catching up
	// in bursts after oversleeps so the offered rate holds at TargetTPS on
	// average. A full queue (the workers are hopelessly behind) counts a
	// drop rather than blocking — blocking here would quietly turn the run
	// closed-loop.
	start := time.Now()
	period := time.Second / time.Duration(opts.TargetTPS)
	if period <= 0 {
		period = time.Nanosecond
	}
	tick := period
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
pace:
	for i := uint64(0); i < total; {
		now := time.Now()
		due := uint64(now.Sub(start)/period) + 1
		if due > total {
			due = total
		}
		for ; i < due; i++ {
			scheduled := start.Add(time.Duration(i) * period)
			select {
			case jobs <- scheduled:
				offered.Add(1)
			default:
				dropped.Add(1)
			}
		}
		if i >= total {
			break
		}
		select {
		case <-ctx.Done():
			break pace
		case <-time.After(tick):
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	if firstErr != nil {
		return LoadReport{}, firstErr
	}
	done := committed.Load() + aborted.Load()
	qs := latency.Quantiles(0.5, 0.9, 0.99, 0.999, 1)
	toMS := func(ns int64) float64 { return float64(ns) / 1e6 }
	return LoadReport{
		TargetTPS:     opts.TargetTPS,
		Offered:       offered.Load(),
		Dropped:       dropped.Load(),
		Committed:     committed.Load(),
		Aborted:       aborted.Load(),
		Failed:        failed.Load(),
		Elapsed:       elapsed,
		AchievedTPS:   float64(done) / elapsed.Seconds(),
		LatencyP50MS:  toMS(qs[0]),
		LatencyP90MS:  toMS(qs[1]),
		LatencyP99MS:  toMS(qs[2]),
		LatencyP999MS: toMS(qs[3]),
		LatencyMaxMS:  toMS(qs[4]),
		CommittedIDs:  committedIDs,
	}, nil
}
