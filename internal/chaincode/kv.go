package chaincode

import "fmt"

// KVContract is a generic key-value contract. Besides basic operations it
// provides the two micro-workloads of Figure 1: "noop" (no data access) and
// "rmw" (a single read-modify-write used as the single-modification
// transaction with varying skewness).
type KVContract struct{}

// Name implements Contract.
func (KVContract) Name() string { return "kv" }

// Invoke implements Contract.
//
// Functions:
//
//	noop                       — no reads, no writes
//	get k                      — read k
//	put k v                    — blind write
//	del k                      — delete
//	rmw k delta                — read k (integer, 0 if absent), write k+delta
//	transfer from to amount    — move integer balance between keys
func (KVContract) Invoke(stub Stub) error {
	switch stub.Function() {
	case "noop":
		return nil
	case "get":
		if err := needArgs(stub, 1); err != nil {
			return err
		}
		v, err := stub.GetState(stub.Args()[0])
		if err != nil {
			return err
		}
		stub.SetResult(v)
		return nil
	case "put":
		if err := needArgs(stub, 2); err != nil {
			return err
		}
		return stub.PutState(stub.Args()[0], []byte(stub.Args()[1]))
	case "del":
		if err := needArgs(stub, 1); err != nil {
			return err
		}
		return stub.DelState(stub.Args()[0])
	case "rmw":
		if err := needArgs(stub, 2); err != nil {
			return err
		}
		key := stub.Args()[0]
		delta, err := parseInt(stub.Args()[1])
		if err != nil {
			return err
		}
		var cur int64
		if raw, err := stub.GetState(key); err != nil {
			return err
		} else if raw != nil {
			if cur, err = parseInt(string(raw)); err != nil {
				return err
			}
		}
		return stub.PutState(key, formatInt(cur+delta))
	case "transfer":
		if err := needArgs(stub, 3); err != nil {
			return err
		}
		from, to := stub.Args()[0], stub.Args()[1]
		amount, err := parseInt(stub.Args()[2])
		if err != nil {
			return err
		}
		fromBal, err := readInt(stub, from)
		if err != nil {
			return err
		}
		toBal, err := readInt(stub, to)
		if err != nil {
			return err
		}
		if fromBal < amount {
			return fmt.Errorf("chaincode: insufficient funds in %q", from)
		}
		if err := stub.PutState(from, formatInt(fromBal-amount)); err != nil {
			return err
		}
		return stub.PutState(to, formatInt(toBal+amount))
	default:
		return fmt.Errorf("chaincode: kv has no function %q", stub.Function())
	}
}
