package consensus

import (
	"fmt"
	"testing"
	"time"
)

func TestRaftBasicReplication(t *testing.T) {
	r := NewRaft(3)
	defer r.Close()
	ch, cancel := r.Subscribe()
	defer cancel()
	for i := 0; i < 10; i++ {
		if err := r.Submit(env(fmt.Sprintf("t%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, ch, 10)
	for i, s := range got {
		if string(s.Env.Tx.ID) != fmt.Sprintf("t%d", i) {
			t.Fatalf("order broken at %d: %s", i, s.Env.Tx.ID)
		}
	}
	if r.Len() != 10 {
		t.Errorf("committed = %d", r.Len())
	}
}

func TestRaftLeaderFailover(t *testing.T) {
	r := NewRaft(3)
	defer r.Close()
	ch, cancel := r.Subscribe()
	defer cancel()

	for i := 0; i < 5; i++ {
		if err := r.Submit(env(fmt.Sprintf("pre%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	r.Crash(r.Leader())
	if err := r.Submit(env("stalled")); err == nil {
		t.Fatal("submit succeeded with a dead leader")
	}
	leader, err := r.Elect()
	if err != nil {
		t.Fatal(err)
	}
	if leader == 0 {
		t.Fatalf("dead node re-elected")
	}
	// Committed entries survive the failover; new submissions continue.
	for i := 0; i < 5; i++ {
		if err := r.Submit(env(fmt.Sprintf("post%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, ch, 10)
	if string(got[4].Env.Tx.ID) != "pre4" || string(got[5].Env.Tx.ID) != "post0" {
		t.Fatalf("log around failover: %s then %s", got[4].Env.Tx.ID, got[5].Env.Tx.ID)
	}
}

func TestRaftQuorumLoss(t *testing.T) {
	r := NewRaft(3)
	defer r.Close()
	r.Crash(1)
	r.Crash(2)
	if err := r.Submit(env("no-quorum")); err == nil {
		t.Fatal("committed without a majority")
	}
	r.Restart(1)
	if err := r.Submit(env("quorum-back")); err != nil {
		t.Fatalf("submit after restart: %v", err)
	}
}

func TestRaftFollowerCatchUp(t *testing.T) {
	r := NewRaft(3)
	defer r.Close()
	r.Crash(2)
	for i := 0; i < 5; i++ {
		if err := r.Submit(env(fmt.Sprintf("while-down%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	r.Restart(2)
	if err := r.Submit(env("after")); err != nil {
		t.Fatal(err)
	}
	// Node 2 can now win an election only with the full log.
	r.Crash(0)
	r.Crash(1)
	leader, err := r.Elect()
	if err != nil || leader != 2 {
		t.Fatalf("leader = %d, %v", leader, err)
	}
	ch, cancel := r.Subscribe()
	defer cancel()
	got := collect(t, ch, 6)
	if string(got[5].Env.Tx.ID) != "after" {
		t.Fatalf("caught-up log wrong: %v", got[5].Env.Tx.ID)
	}
}

func TestRaftElectionNeedsLiveNode(t *testing.T) {
	r := NewRaft(1)
	defer r.Close()
	r.Crash(0)
	if _, err := r.Elect(); err == nil {
		t.Fatal("elected a leader from zero live nodes")
	}
}

func TestRaftSingleNode(t *testing.T) {
	r := NewRaft(1)
	defer r.Close()
	if err := r.Submit(env("solo")); err != nil {
		t.Fatal(err)
	}
	ch, cancel := r.Subscribe()
	defer cancel()
	got := collect(t, ch, 1)
	if string(got[0].Env.Tx.ID) != "solo" {
		t.Fatal("single-node log broken")
	}
}

func TestRaftSubmitAfterClose(t *testing.T) {
	r := NewRaft(3)
	r.Close()
	if err := r.Submit(env("late")); err == nil {
		t.Fatal("submit after close succeeded")
	}
}

func TestRaftTwoSubscribersAgree(t *testing.T) {
	r := NewRaft(5)
	defer r.Close()
	a, cancelA := r.Subscribe()
	defer cancelA()
	for i := 0; i < 20; i++ {
		if err := r.Submit(env(fmt.Sprintf("x%d", i))); err != nil {
			t.Fatal(err)
		}
		if i == 10 {
			r.Crash(4)
		}
	}
	b, cancelB := r.Subscribe() // late subscriber replays
	defer cancelB()
	ga := collect(t, a, 20)
	gb := collect(t, b, 20)
	for i := range ga {
		if ga[i].Env.Tx.ID != gb[i].Env.Tx.ID {
			t.Fatalf("subscribers diverge at %d", i)
		}
	}
	select {
	case <-time.After(10 * time.Millisecond):
	}
}
