package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Timeline is one transaction's cross-node stage timeline: per stage, the
// merged wall-clock stamp (UnixNano), 0 when no node recorded it.
type Timeline struct {
	TxID string
	// Stamp is indexed by Stage (index 0 unused).
	Stamp [NumStages + 1]int64
}

// Has reports whether stage was observed.
func (t *Timeline) Has(s Stage) bool { return t.Stamp[s] != 0 }

// Merge joins per-node dumps by TxID into one timeline per transaction,
// sorted by TxID. Single-origin stages (submit, order, raft-commit, seal)
// keep the earliest stamp — duplicates come from orderer replicas recording
// the same stream position, and the first observation is the stage
// boundary. Replicated stages (deliver, validate, commit, rescue) keep the
// latest stamp across peers: end-to-end latency means every observed peer
// settled the transaction, matching the cluster's convergence contract.
//
// Joining assumes the nodes' clocks are comparable (same host, or tightly
// synchronized); cross-host skew shows up as distorted — never negative,
// Summarize clamps — stage gaps.
func Merge(dumps []Dump) []Timeline {
	byID := make(map[string]*Timeline)
	for _, d := range dumps {
		for _, ev := range d.Events {
			tl := byID[ev.TxID]
			if tl == nil {
				tl = &Timeline{TxID: ev.TxID}
				byID[ev.TxID] = tl
			}
			cur := tl.Stamp[ev.Stage]
			switch ev.Stage {
			case StageDeliver, StageValidate, StageCommit, StageRescue:
				if cur == 0 || ev.WallNS > cur {
					tl.Stamp[ev.Stage] = ev.WallNS
				}
			default:
				if cur == 0 || ev.WallNS < cur {
					tl.Stamp[ev.Stage] = ev.WallNS
				}
			}
		}
	}
	out := make([]Timeline, 0, len(byID))
	for _, tl := range byID {
		out = append(out, *tl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TxID < out[j].TxID })
	return out
}

// Quantiles is the latency summary shape shared by stage gaps and totals,
// in milliseconds.
type Quantiles struct {
	N    int
	P50  float64
	P90  float64
	P99  float64
	P999 float64
	Max  float64
}

// StageGap summarizes the latency between two adjacent observed stages.
type StageGap struct {
	From, To Stage
	Quantiles
}

// Summary is the end-to-end latency report over a merged timeline set.
type Summary struct {
	// Timelines is the number of joined transactions.
	Timelines int
	// Gaps holds per-stage-transition latency quantiles, pipeline order,
	// only transitions that at least one transaction exhibited.
	Gaps []StageGap
	// Total is submit → commit latency over transactions observed at both
	// boundaries (seal → commit only exists when peers were dumped).
	Total Quantiles
}

// Summarize computes stage-transition and total latency quantiles from
// merged timelines. For each transaction, a gap is taken between every
// pair of *consecutively observed* stages (a standalone orderer has no
// raft-commit stamp, so its gap runs order → seal directly). Negative gaps
// — cross-node clock skew — clamp to zero.
func Summarize(timelines []Timeline) Summary {
	gapSamples := make(map[[2]Stage][]float64)
	var totals []float64
	for i := range timelines {
		tl := &timelines[i]
		prev := Stage(0)
		for s := StageSubmit; s < stageEnd; s++ {
			if !tl.Has(s) {
				continue
			}
			if prev != 0 {
				d := float64(tl.Stamp[s]-tl.Stamp[prev]) / 1e6
				if d < 0 {
					d = 0
				}
				k := [2]Stage{prev, s}
				gapSamples[k] = append(gapSamples[k], d)
			}
			prev = s
		}
		if tl.Has(StageSubmit) && tl.Has(StageCommit) {
			d := float64(tl.Stamp[StageCommit]-tl.Stamp[StageSubmit]) / 1e6
			if d < 0 {
				d = 0
			}
			totals = append(totals, d)
		}
	}
	sum := Summary{Timelines: len(timelines), Total: quantiles(totals)}
	keys := make([][2]Stage, 0, len(gapSamples))
	for k := range gapSamples {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		sum.Gaps = append(sum.Gaps, StageGap{From: k[0], To: k[1], Quantiles: quantiles(gapSamples[k])})
	}
	return sum
}

// Coverage reports the fraction of ids whose timeline carries every
// required stage — the smoke's "≥99% of committed transactions have full
// timelines" assertion. With no ids it returns 1 (vacuous).
func Coverage(timelines []Timeline, ids []string, required ...Stage) float64 {
	if len(ids) == 0 {
		return 1
	}
	byID := make(map[string]*Timeline, len(timelines))
	for i := range timelines {
		byID[timelines[i].TxID] = &timelines[i]
	}
	covered := 0
	for _, id := range ids {
		tl := byID[id]
		if tl == nil {
			continue
		}
		ok := true
		for _, s := range required {
			if !tl.Has(s) {
				ok = false
				break
			}
		}
		if ok {
			covered++
		}
	}
	return float64(covered) / float64(len(ids))
}

// quantiles computes the exact order statistics of ms samples (sorting a
// drained sample set once — this is drain-time reporting, not a hot path).
func quantiles(ms []float64) Quantiles {
	if len(ms) == 0 {
		return Quantiles{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		idx := int(q*float64(len(sorted))) - 1
		if idx < 0 {
			idx = 0
		}
		return sorted[idx]
	}
	return Quantiles{
		N:    len(sorted),
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		P999: at(0.999),
		Max:  sorted[len(sorted)-1],
	}
}

// Format renders the summary as the fixed-width table `sharpnet load` and
// `sharpnet trace` print.
func (s Summary) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stage transition      count     p50ms     p90ms     p99ms    p999ms     maxms\n")
	for _, g := range s.Gaps {
		fmt.Fprintf(&b, "%-9s→ %-9s %7d %9.2f %9.2f %9.2f %9.2f %9.2f\n",
			g.From, g.To, g.N, g.P50, g.P90, g.P99, g.P999, g.Max)
	}
	if s.Total.N > 0 {
		fmt.Fprintf(&b, "%-20s %7d %9.2f %9.2f %9.2f %9.2f %9.2f\n",
			"total submit→commit", s.Total.N, s.Total.P50, s.Total.P90, s.Total.P99, s.Total.P999, s.Total.Max)
	}
	return b.String()
}
