// Package consensus implements the totally-ordered broadcast that backs the
// ordering phase. Fabric outsources this to Kafka (Section 2.1); the Kafka
// type reproduces the properties the schedulers rely on — a single durable,
// totally ordered, replayable stream that every orderer consumes
// identically — using an in-process broker.
package consensus

import (
	"fmt"
	"sync"

	"fabricsharp/internal/protocol"
)

// Envelope is a payload submitted for ordering.
type Envelope struct {
	// Tx is the endorsed transaction; nil for control markers.
	Tx *protocol.Transaction
	// SubmittedBy identifies the submitting client or orderer (Orderer1 and
	// Orderer2 in Figure 2a may receive different transactions; the stream
	// they read back is identical).
	SubmittedBy string
	// CutBlock, when non-zero, marks a time-to-cut control message: the
	// submitting orderer's batch timeout fired while block CutBlock was
	// pending. Replicated orderers cut on the first marker for a block,
	// making timeout-driven block boundaries deterministic across replicas
	// (the Kafka-based Fabric TTC mechanism).
	CutBlock uint64
	// Commitment, when non-empty, is a phase-1 hash commitment of the
	// Section 3.5 anti-front-running protocol: the transaction's digest is
	// sequenced before its content is revealed.
	Commitment string
	// Disclosure marks a phase-2 payload reveal for a prior Commitment.
	Disclosure bool
}

// Sequenced is an envelope with its consensus position.
type Sequenced struct {
	Offset uint64
	Env    Envelope
}

// Service is a totally-ordered broadcast service.
type Service interface {
	// Submit appends an envelope to the stream.
	Submit(env Envelope) error
	// Subscribe returns a channel delivering the entire stream from offset
	// zero (replay plus live tail) — Kafka consumer semantics.
	Subscribe() (<-chan Sequenced, func())
	// Close stops the service; subscribers' channels are closed after the
	// last delivered offset.
	Close()
}

// Kafka is the in-process ordering service. The log is retained so that
// late subscribers (a recovering orderer) replay from the beginning.
type Kafka struct {
	mu     sync.Mutex
	cond   *sync.Cond
	log    []Envelope
	closed bool
}

// NewKafka creates the broker.
func NewKafka() *Kafka {
	k := &Kafka{}
	k.cond = sync.NewCond(&k.mu)
	return k
}

// Submit implements Service.
func (k *Kafka) Submit(env Envelope) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return fmt.Errorf("consensus: service closed")
	}
	k.log = append(k.log, env)
	k.cond.Broadcast()
	return nil
}

// Subscribe implements Service. The returned cancel function detaches the
// subscriber; the channel is closed afterwards.
func (k *Kafka) Subscribe() (<-chan Sequenced, func()) {
	ch := make(chan Sequenced, 128)
	done := make(chan struct{})
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			close(done)
			k.mu.Lock()
			k.cond.Broadcast()
			k.mu.Unlock()
		})
	}
	go func() {
		defer close(ch)
		next := uint64(0)
		for {
			k.mu.Lock()
			for int(next) >= len(k.log) && !k.closed {
				select {
				case <-done:
					k.mu.Unlock()
					return
				default:
				}
				k.cond.Wait()
			}
			if int(next) >= len(k.log) && k.closed {
				k.mu.Unlock()
				return
			}
			env := k.log[next]
			k.mu.Unlock()
			select {
			case ch <- Sequenced{Offset: next, Env: env}:
				next++
			case <-done:
				return
			}
		}
	}()
	return ch, cancel
}

// Close implements Service.
func (k *Kafka) Close() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.closed = true
	k.cond.Broadcast()
}

// Len returns the current log length (tests, metrics).
func (k *Kafka) Len() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.log)
}
