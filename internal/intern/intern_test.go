package intern

import (
	"fmt"
	"testing"
)

func TestInternDenseAndStable(t *testing.T) {
	tbl := NewTable()
	if got := tbl.Intern("a"); got != 0 {
		t.Fatalf("first key = %d, want 0", got)
	}
	if got := tbl.Intern("b"); got != 1 {
		t.Fatalf("second key = %d, want 1", got)
	}
	if got := tbl.Intern("a"); got != 0 {
		t.Fatalf("re-intern = %d, want 0", got)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tbl.Len())
	}
	if tbl.Lookup(0) != "a" || tbl.Lookup(1) != "b" {
		t.Fatalf("Lookup roundtrip broken: %q %q", tbl.Lookup(0), tbl.Lookup(1))
	}
}

func TestInternAllAppendsToScratch(t *testing.T) {
	tbl := NewTable()
	scratch := make([]Key, 0, 8)
	out := tbl.InternAll(scratch, []string{"x", "y", "x"})
	if fmt.Sprint(out) != "[0 1 0]" {
		t.Fatalf("InternAll = %v", out)
	}
	// Reusing the scratch must not leak earlier contents.
	out = tbl.InternAll(out[:0], []string{"z"})
	if fmt.Sprint(out) != "[2]" {
		t.Fatalf("InternAll reuse = %v", out)
	}
}

func TestDeterministicAcrossTables(t *testing.T) {
	// Two tables fed the same stream assign identical keys — the replica
	// agreement property interning relies on.
	stream := []string{"k3", "k1", "k3", "k2", "k1", "k4"}
	a, b := NewTable(), NewTable()
	for _, s := range stream {
		if ka, kb := a.Intern(s), b.Intern(s); ka != kb {
			t.Fatalf("tables diverged on %q: %d vs %d", s, ka, kb)
		}
	}
}
